//===- amg/Interp.cpp - Direct interpolation ------------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/Interp.h"

#include <cmath>

using namespace smat;

CsrMatrix<double> smat::directInterpolation(const CsrMatrix<double> &A,
                                            const CsrMatrix<double> &S,
                                            const std::vector<CfPoint> &Split) {
  index_t N = A.NumRows;
  assert(Split.size() == static_cast<std::size_t>(N) &&
         "splitting size mismatch");

  // Coarse numbering.
  std::vector<index_t> CoarseId(static_cast<std::size_t>(N), -1);
  index_t NumCoarse = 0;
  for (index_t I = 0; I < N; ++I)
    if (Split[static_cast<std::size_t>(I)] == CfPoint::C)
      CoarseId[static_cast<std::size_t>(I)] = NumCoarse++;

  CsrMatrix<double> P(N, NumCoarse);

  // Mark the strong C columns of the current row for O(1) membership tests.
  std::vector<index_t> StrongCMark(static_cast<std::size_t>(N), -1);

  for (index_t Row = 0; Row < N; ++Row) {
    if (Split[static_cast<std::size_t>(Row)] == CfPoint::C) {
      P.ColIdx.push_back(CoarseId[static_cast<std::size_t>(Row)]);
      P.Values.push_back(1.0);
      ++P.RowPtr[Row + 1];
      continue;
    }

    // Strong C neighbours of this F row.
    for (index_t J = S.RowPtr[Row]; J < S.RowPtr[Row + 1]; ++J) {
      index_t Col = S.ColIdx[J];
      if (Split[static_cast<std::size_t>(Col)] == CfPoint::C)
        StrongCMark[static_cast<std::size_t>(Col)] = Row;
    }

    double Diag = 0.0, OffDiagSum = 0.0, StrongCSum = 0.0;
    for (index_t J = A.RowPtr[Row]; J < A.RowPtr[Row + 1]; ++J) {
      index_t Col = A.ColIdx[J];
      double Val = A.Values[J];
      if (Col == Row) {
        Diag = Val;
        continue;
      }
      OffDiagSum += Val;
      if (StrongCMark[static_cast<std::size_t>(Col)] == Row)
        StrongCSum += Val;
    }

    // Truly isolated F row (enforceInterpolationCover guarantees donors for
    // every connected F point): contributes no coarse correction.
    if (StrongCSum == 0.0 || Diag == 0.0)
      continue;

    double Alpha = OffDiagSum / StrongCSum;
    for (index_t J = A.RowPtr[Row]; J < A.RowPtr[Row + 1]; ++J) {
      index_t Col = A.ColIdx[J];
      if (Col == Row || StrongCMark[static_cast<std::size_t>(Col)] != Row)
        continue;
      double Weight = -Alpha * A.Values[J] / Diag;
      if (Weight == 0.0)
        continue;
      P.ColIdx.push_back(CoarseId[static_cast<std::size_t>(Col)]);
      P.Values.push_back(Weight);
      ++P.RowPtr[Row + 1];
    }
  }
  for (index_t Row = 0; Row < N; ++Row)
    P.RowPtr[Row + 1] += P.RowPtr[Row];
  return P;
}
