//===- amg/Strength.h - Strength-of-connection graph ------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classical strength-of-connection: entry (i, j), j != i, is a strong
/// connection when |a_ij| >= Theta * max_{k != i} |a_ik|. The strength graph
/// drives both coarsening algorithms and the interpolation stencil.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_AMG_STRENGTH_H
#define SMAT_AMG_STRENGTH_H

#include "matrix/CsrMatrix.h"

namespace smat {

/// The strength pattern S of \p A: a CSR boolean pattern (values all 1.0)
/// with one row per variable and the strong off-diagonal connections as
/// entries. \p Theta is the classical strength threshold (0.25 default).
CsrMatrix<double> strengthGraph(const CsrMatrix<double> &A,
                                double Theta = 0.25);

} // namespace smat

#endif // SMAT_AMG_STRENGTH_H
