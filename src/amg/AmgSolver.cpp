//===- amg/AmgSolver.cpp - AMG V-cycle solver with SMAT backend -----------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/AmgSolver.h"

#include "kernels/KernelRegistry.h"
#include "matrix/Validate.h"
#include "support/Timer.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

using namespace smat;

namespace {

double norm2(const double *X, std::size_t N) {
  double Sum = 0.0;
  for (std::size_t I = 0; I != N; ++I)
    Sum += X[I] * X[I];
  return std::sqrt(Sum);
}

double dot(const double *X, const double *Y, std::size_t N) {
  double Sum = 0.0;
  for (std::size_t I = 0; I != N; ++I)
    Sum += X[I] * Y[I];
  return Sum;
}

/// The FixedCsr backend's operator application: the basic CSR kernel, which
/// is what Hypre-style always-CSR solvers run.
SpmvFn bindFixedCsr(const CsrMatrix<double> &A) {
  const auto &Basic = kernelTable<double>().Csr.front();
  return [&A, Fn = Basic.Fn](const double *X, double *Y) { Fn(A, X, Y); };
}

} // namespace

Status AmgSolver::trySetup(const CsrMatrix<double> &A,
                           const AmgOptions &Opts) {
  if (Status S = validateCsr(A); !S.ok())
    return S;
  if (A.NumRows != A.NumCols)
    return Status::error(ErrorCode::InvalidMatrix,
                         formatString("AMG requires a square operator, got "
                                      "%d x %d",
                                      A.NumRows, A.NumCols));
  if (Opts.Backend == SpmvBackendKind::Smat && !Opts.Tuner)
    return Status::error(ErrorCode::InvalidArgument,
                         "AmgOptions: the Smat backend requires a tuner");
  setupImpl(A, Opts);
  return Status::success();
}

void AmgSolver::setup(const CsrMatrix<double> &A, const AmgOptions &Opts) {
  if (Status S = trySetup(A, Opts); !S.ok())
    throw std::invalid_argument("AMG setup rejected input: " + S.message());
}

void AmgSolver::setupImpl(const CsrMatrix<double> &A, const AmgOptions &Opts) {
  WallTimer Timer;
  Options = Opts;
  Hier.build(A, Opts.Hierarchy);

  std::size_t NumLevels = Hier.numLevels();
  Ops.clear();
  Ops.resize(NumLevels);
  Decisions.clear();
  Tuned.clear();
  // Three operators per level at most; reserving up front keeps the lambdas'
  // pointers into Tuned stable.
  Tuned.reserve(3 * NumLevels);

  // One plan cache for the whole hierarchy: operators on neighbouring
  // levels repeat structure, so tuning a class once covers its recurrences.
  // The caller's tuning knobs (budgets, measurement floors, ...) are
  // forwarded per operator; the bindings borrow the hierarchy's matrices,
  // so CsrMode stays Borrowed regardless of what the caller set.
  TuneOptions TuneOpts = Options.Tune;
  TuneOpts.CsrMode = CsrStorage::Borrowed;
  if (Options.Backend == SpmvBackendKind::Smat) {
    if (!TuneOpts.Cache)
      TuneOpts.Cache = Options.Cache;
    if (!TuneOpts.Cache) {
      if (!OwnedCache)
        OwnedCache = std::make_unique<PlanCache>();
      TuneOpts.Cache = OwnedCache.get();
    }
  }

  auto Bind = [&](const CsrMatrix<double> &M, std::size_t Level,
                  const char *Name) -> SpmvFn {
    LevelFormatInfo Info;
    Info.Level = Level;
    Info.Operator = Name;
    Info.Rows = M.NumRows;
    Info.Nnz = M.nnz();
    if (Options.Backend == SpmvBackendKind::Smat) {
      assert(Options.Tuner && "Smat backend requires a tuner");
      Tuned.push_back(Options.Tuner->tune(M, TuneOpts));
      TunedSpmv<double> *Op = &Tuned.back();
      Info.Format = Op->format();
      Info.Kernel = Op->kernelName();
      Info.Degradation = Op->report().Degradation;
      Decisions.push_back(Info);
      return [Op](const double *X, double *Y) { Op->apply(X, Y); };
    }
    Info.Format = FormatKind::CSR;
    Info.Kernel = kernelTable<double>().Csr.front().Name;
    Decisions.push_back(Info);
    return bindFixedCsr(M);
  };

  for (std::size_t L = 0; L != NumLevels; ++L) {
    const AmgLevel &Level = Hier.level(L);
    LevelOps &Bound = Ops[L];
    Bound.ApplyA = Bind(Level.A, L, "A");
    if (L + 1 != NumLevels) {
      Bound.ApplyP = Bind(Level.P, L, "P");
      Bound.ApplyR = Bind(Level.R, L, "R");
    }
    std::vector<double> Diag = extractDiagonal(Level.A);
    Bound.InvDiag.resize(Diag.size());
    for (std::size_t I = 0; I != Diag.size(); ++I)
      Bound.InvDiag[I] = Diag[I] != 0.0 ? 1.0 / Diag[I] : 0.0;
    std::size_t N = static_cast<std::size_t>(Level.A.NumRows);
    Bound.X.assign(N, 0.0);
    Bound.B.assign(N, 0.0);
    Bound.Scratch.assign(N, 0.0);
  }

  // Coarsest-level solver.
  const CsrMatrix<double> &Coarsest = Hier.level(NumLevels - 1).A;
  UseCoarseLu = Coarsest.NumRows <= Options.DenseCoarseLimit;
  if (UseCoarseLu)
    CoarseLu.factor(Coarsest);

  SetupTime = Timer.seconds();
}

void AmgSolver::runVcycle(std::size_t L, const double *B, double *X) const {
  const LevelOps &Bound = Ops[L];
  const AmgLevel &Level = Hier.level(L);
  index_t N = Level.A.NumRows;

  if (L + 1 == Hier.numLevels()) {
    if (UseCoarseLu) {
      std::memcpy(X, B, sizeof(double) * static_cast<std::size_t>(N));
      CoarseLu.solve(X);
    } else {
      // Fall back to heavy smoothing on an oversized coarsest grid.
      std::memset(X, 0, sizeof(double) * static_cast<std::size_t>(N));
      for (int Sweep = 0; Sweep < 50; ++Sweep)
        jacobiSweep(Bound.ApplyA, Bound.InvDiag, B, X,
                    Bound.Scratch.data(), N, Options.JacobiOmega);
    }
    return;
  }

  // Pre-smoothing.
  for (int Sweep = 0; Sweep < Options.PreSweeps; ++Sweep)
    jacobiSweep(Bound.ApplyA, Bound.InvDiag, B, X, Bound.Scratch.data(), N,
                Options.JacobiOmega);

  // Restrict the residual.
  residual(Bound.ApplyA, B, X, Bound.Scratch.data(), N);
  const LevelOps &CoarseOps = Ops[L + 1];
  Bound.ApplyR(Bound.Scratch.data(), CoarseOps.B.data());

  // Coarse-grid correction.
  std::memset(CoarseOps.X.data(), 0,
              sizeof(double) * CoarseOps.X.size());
  runVcycle(L + 1, CoarseOps.B.data(), CoarseOps.X.data());

  // Prolongate and correct. ApplyP writes a full fine-level vector.
  Bound.ApplyP(CoarseOps.X.data(), Bound.Scratch.data());
  for (index_t I = 0; I < N; ++I)
    X[I] += Bound.Scratch[I];

  // Post-smoothing.
  for (int Sweep = 0; Sweep < Options.PostSweeps; ++Sweep)
    jacobiSweep(Bound.ApplyA, Bound.InvDiag, B, X, Bound.Scratch.data(), N,
                Options.JacobiOmega);
}

SolveStats AmgSolver::solve(const std::vector<double> &B,
                            std::vector<double> &X) const {
  assert(!Ops.empty() && "solve() before setup()");
  SolveStats Stats;
  Stats.SetupSeconds = SetupTime;
  WallTimer Timer;

  std::size_t N = B.size();
  X.resize(N, 0.0);
  double BNorm = norm2(B.data(), N);
  if (BNorm == 0.0)
    BNorm = 1.0;

  std::vector<double> R(N);
  for (int Iter = 0; Iter < Options.MaxIterations; ++Iter) {
    runVcycle(0, B.data(), X.data());
    ++Stats.Iterations;
    residual(Ops[0].ApplyA, B.data(), X.data(), R.data(),
             static_cast<index_t>(N));
    Stats.RelResidual = norm2(R.data(), N) / BNorm;
    if (Stats.RelResidual <= Options.RelTol) {
      Stats.Converged = true;
      break;
    }
  }
  Stats.SolveSeconds = Timer.seconds();
  return Stats;
}

SolveStats AmgSolver::solvePcg(const std::vector<double> &B,
                               std::vector<double> &X) const {
  assert(!Ops.empty() && "solvePcg() before setup()");
  SolveStats Stats;
  Stats.SetupSeconds = SetupTime;
  WallTimer Timer;

  std::size_t N = B.size();
  index_t Ni = static_cast<index_t>(N);
  X.assign(N, 0.0);
  double BNorm = norm2(B.data(), N);
  if (BNorm == 0.0)
    BNorm = 1.0;

  std::vector<double> R(B), Z(N, 0.0), P(N), Ap(N);
  // z = M^-1 r via one V-cycle from a zero guess.
  runVcycle(0, R.data(), Z.data());
  P = Z;
  double RzOld = dot(R.data(), Z.data(), N);

  for (int Iter = 0; Iter < Options.MaxIterations; ++Iter) {
    Ops[0].ApplyA(P.data(), Ap.data());
    double PAp = dot(P.data(), Ap.data(), N);
    if (PAp == 0.0)
      break;
    double Alpha = RzOld / PAp;
    for (std::size_t I = 0; I != N; ++I) {
      X[I] += Alpha * P[I];
      R[I] -= Alpha * Ap[I];
    }
    ++Stats.Iterations;
    Stats.RelResidual = norm2(R.data(), N) / BNorm;
    if (Stats.RelResidual <= Options.RelTol) {
      Stats.Converged = true;
      break;
    }
    std::fill(Z.begin(), Z.end(), 0.0);
    runVcycle(0, R.data(), Z.data());
    double RzNew = dot(R.data(), Z.data(), N);
    double Beta = RzNew / RzOld;
    RzOld = RzNew;
    for (std::size_t I = 0; I != N; ++I)
      P[I] = Z[I] + Beta * P[I];
  }
  (void)Ni;
  Stats.SolveSeconds = Timer.seconds();
  return Stats;
}
