//===- amg/SpGemm.cpp - Sparse matrix-matrix products ---------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/SpGemm.h"

#include "matrix/FormatConvert.h"

#include <algorithm>

using namespace smat;

template <typename T>
CsrMatrix<T> smat::spgemm(const CsrMatrix<T> &A, const CsrMatrix<T> &B) {
  assert(A.NumCols == B.NumRows && "spgemm shape mismatch");
  CsrMatrix<T> C(A.NumRows, B.NumCols);

  // Gustavson with a dense accumulator and row-stamped marker, both reused
  // across rows (the marker makes exact mid-row cancellation harmless).
  std::vector<T> Accumulator(static_cast<std::size_t>(B.NumCols), T(0));
  std::vector<index_t> Marker(static_cast<std::size_t>(B.NumCols), -1);
  std::vector<index_t> Pattern; // Touched columns of the current row.

  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    Pattern.clear();
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
      index_t K = A.ColIdx[I];
      T AVal = A.Values[I];
      for (index_t J = B.RowPtr[K]; J < B.RowPtr[K + 1]; ++J) {
        index_t Col = B.ColIdx[J];
        if (Marker[static_cast<std::size_t>(Col)] != Row) {
          Marker[static_cast<std::size_t>(Col)] = Row;
          Pattern.push_back(Col);
          Accumulator[static_cast<std::size_t>(Col)] = AVal * B.Values[J];
        } else {
          Accumulator[static_cast<std::size_t>(Col)] += AVal * B.Values[J];
        }
      }
    }
    std::sort(Pattern.begin(), Pattern.end());
    for (index_t Col : Pattern) {
      T Val = Accumulator[static_cast<std::size_t>(Col)];
      C.ColIdx.push_back(Col);
      C.Values.push_back(Val);
      ++C.RowPtr[Row + 1];
    }
  }
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    C.RowPtr[Row + 1] += C.RowPtr[Row];
  return C;
}

template <typename T>
CsrMatrix<T> smat::galerkinProduct(const CsrMatrix<T> &R, const CsrMatrix<T> &A,
                                   const CsrMatrix<T> &P) {
  return spgemm(spgemm(R, A), P);
}

template <typename T>
CsrMatrix<T> smat::dropSmallEntries(const CsrMatrix<T> &A, T Threshold) {
  CsrMatrix<T> B(A.NumRows, A.NumCols);
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
      T Val = A.Values[I];
      if (A.ColIdx[I] != Row && std::abs(Val) <= Threshold)
        continue;
      B.ColIdx.push_back(A.ColIdx[I]);
      B.Values.push_back(Val);
      ++B.RowPtr[Row + 1];
    }
  }
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    B.RowPtr[Row + 1] += B.RowPtr[Row];
  return B;
}

template CsrMatrix<float> smat::spgemm(const CsrMatrix<float> &,
                                       const CsrMatrix<float> &);
template CsrMatrix<double> smat::spgemm(const CsrMatrix<double> &,
                                        const CsrMatrix<double> &);
template CsrMatrix<float> smat::galerkinProduct(const CsrMatrix<float> &,
                                                const CsrMatrix<float> &,
                                                const CsrMatrix<float> &);
template CsrMatrix<double> smat::galerkinProduct(const CsrMatrix<double> &,
                                                 const CsrMatrix<double> &,
                                                 const CsrMatrix<double> &);
template CsrMatrix<float> smat::dropSmallEntries(const CsrMatrix<float> &,
                                                 float);
template CsrMatrix<double> smat::dropSmallEntries(const CsrMatrix<double> &,
                                                  double);
