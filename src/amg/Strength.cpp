//===- amg/Strength.cpp - Strength-of-connection graph --------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/Strength.h"

#include <cmath>

using namespace smat;

CsrMatrix<double> smat::strengthGraph(const CsrMatrix<double> &A,
                                      double Theta) {
  assert(A.NumRows == A.NumCols && "strength graph needs a square operator");
  CsrMatrix<double> S(A.NumRows, A.NumCols);

  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    double MaxOffDiag = 0.0;
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      if (A.ColIdx[I] != Row)
        MaxOffDiag = std::max(MaxOffDiag, std::abs(A.Values[I]));
    double Bar = Theta * MaxOffDiag;
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
      index_t Col = A.ColIdx[I];
      if (Col == Row || std::abs(A.Values[I]) < Bar || MaxOffDiag == 0.0)
        continue;
      S.ColIdx.push_back(Col);
      S.Values.push_back(1.0);
      ++S.RowPtr[Row + 1];
    }
  }
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    S.RowPtr[Row + 1] += S.RowPtr[Row];
  return S;
}
