//===- amg/Hierarchy.cpp - AMG grid hierarchy -----------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/Hierarchy.h"

#include "amg/Interp.h"
#include "amg/SpGemm.h"
#include "amg/Strength.h"
#include "matrix/FormatConvert.h"

using namespace smat;

void AmgHierarchy::build(CsrMatrix<double> A, const HierarchyOptions &Opts) {
  Levels.clear();
  Levels.push_back(AmgLevel{std::move(A), {}, {}});

  while (static_cast<int>(Levels.size()) < Opts.MaxLevels) {
    AmgLevel &Fine = Levels.back();
    index_t N = Fine.A.NumRows;
    if (N <= Opts.MinCoarseSize)
      break;

    CsrMatrix<double> S = strengthGraph(Fine.A, Opts.StrengthTheta);
    std::vector<CfPoint> Split =
        coarsen(S, Opts.Coarsening, Opts.Seed + Levels.size());
    index_t NumCoarse = countCoarse(Split);
    if (NumCoarse == 0 || NumCoarse >= static_cast<index_t>(
                                           Opts.MaxCoarseningRatio *
                                           static_cast<double>(N)))
      break; // Coarsening stalled.

    CsrMatrix<double> P = directInterpolation(Fine.A, S, Split);
    CsrMatrix<double> R = transposeCsr(P);
    CsrMatrix<double> Coarse = galerkinProduct(R, Fine.A, P);
    if (Opts.GalerkinDropTol > 0.0)
      Coarse = dropSmallEntries(Coarse, Opts.GalerkinDropTol);

    Fine.P = std::move(P);
    Fine.R = std::move(R);
    Levels.push_back(AmgLevel{std::move(Coarse), {}, {}});
  }
}

double AmgHierarchy::operatorComplexity() const {
  if (Levels.empty() || Levels.front().A.nnz() == 0)
    return 0.0;
  double Total = 0.0;
  for (const AmgLevel &L : Levels)
    Total += static_cast<double>(L.A.nnz());
  return Total / static_cast<double>(Levels.front().A.nnz());
}
