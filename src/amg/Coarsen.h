//===- amg/Coarsen.h - C/F splitting algorithms -----------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two coarsening algorithms the paper's Table 4 exercises:
///  - "rugeL": classical Ruge–Stüben first-pass greedy coarsening driven by
///    the number of points each point strongly influences;
///  - "cljp": a CLJP/PMIS-style parallel independent-set coarsening with
///    randomized tie-breaking measures.
/// Both are followed by a second pass guaranteeing every F point keeps at
/// least one strong C neighbour (required by direct interpolation).
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_AMG_COARSEN_H
#define SMAT_AMG_COARSEN_H

#include "matrix/CsrMatrix.h"

#include <vector>

namespace smat {

/// Point classification produced by coarsening.
enum class CfPoint : std::uint8_t { F = 0, C = 1 };

/// Which coarsening algorithm to run.
enum class CoarsenKind { RugeL, Cljp };

/// Computes a C/F splitting of the variables of strength graph \p S.
/// \p Seed randomizes CLJP's tie-breaking (ignored by RugeL).
std::vector<CfPoint> coarsen(const CsrMatrix<double> &S, CoarsenKind Kind,
                             std::uint64_t Seed = 7);

/// \returns the number of C points in \p Split.
index_t countCoarse(const std::vector<CfPoint> &Split);

} // namespace smat

#endif // SMAT_AMG_COARSEN_H
