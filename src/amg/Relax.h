//===- amg/Relax.h - Smoothers and dense coarse solve -----------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relaxation methods for the AMG V-cycle. Weighted Jacobi is expressed in
/// terms of a pluggable SpMV operator (x += omega * D^-1 * (b - A x)), so
/// the solver's dominant cost is exactly the SpMV kernel SMAT tunes — the
/// property the paper's Table 4 experiment relies on. Gauss–Seidel and a
/// dense LU coarse-grid solve are also provided.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_AMG_RELAX_H
#define SMAT_AMG_RELAX_H

#include "matrix/CsrMatrix.h"

#include <functional>
#include <vector>

namespace smat {

/// A bound y := A*x operator (either a plain CSR kernel or a SMAT-tuned
/// kernel).
using SpmvFn = std::function<void(const double *X, double *Y)>;

/// Extracts the diagonal of \p A (zeros where absent).
std::vector<double> extractDiagonal(const CsrMatrix<double> &A);

/// One weighted-Jacobi sweep: X += Omega * D^-1 * (B - A*X), with the A*X
/// product supplied by \p Spmv and \p Scratch an N-sized work array.
void jacobiSweep(const SpmvFn &Spmv, const std::vector<double> &InvDiag,
                 const double *B, double *X, double *Scratch, index_t N,
                 double Omega);

/// One forward Gauss–Seidel sweep on \p A (used for comparison smoothing;
/// inherently sequential, no SpMV involved).
void gaussSeidelSweep(const CsrMatrix<double> &A, const double *B, double *X);

/// Residual R = B - A*X via \p Spmv.
void residual(const SpmvFn &Spmv, const double *B, const double *X, double *R,
              index_t N);

/// Dense LU solver for the coarsest grid.
class DenseLu {
public:
  /// Factors \p A (partial pivoting). \p A must be square and small.
  void factor(const CsrMatrix<double> &A);

  /// Solves A*X = B in place: X starts as B.
  void solve(double *X) const;

  index_t size() const { return N; }

private:
  index_t N = 0;
  std::vector<double> Lu;    ///< Row-major packed factors.
  std::vector<index_t> Perm; ///< Pivot row permutation.
};

} // namespace smat

#endif // SMAT_AMG_RELAX_H
