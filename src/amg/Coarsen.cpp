//===- amg/Coarsen.cpp - C/F splitting algorithms -------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/Coarsen.h"

#include "matrix/FormatConvert.h"
#include "support/Rng.h"

#include <algorithm>
#include <queue>

using namespace smat;

namespace {

/// Ruge–Stüben first pass: points are picked as C in decreasing order of the
/// number of points they strongly influence (|S^T row|); unassigned strong
/// dependents become F, and each new F point bumps the measure of the other
/// points it depends on, steering the sweep towards good covers.
std::vector<CfPoint> coarsenRugeL(const CsrMatrix<double> &S,
                                  const CsrMatrix<double> &St) {
  index_t N = S.NumRows;
  constexpr std::uint8_t Unassigned = 2;
  std::vector<std::uint8_t> State(static_cast<std::size_t>(N), Unassigned);
  std::vector<double> Measure(static_cast<std::size_t>(N));
  for (index_t I = 0; I < N; ++I)
    Measure[static_cast<std::size_t>(I)] =
        static_cast<double>(St.rowDegree(I));

  // Lazy max-priority queue (stale entries skipped on pop).
  using Entry = std::pair<double, index_t>;
  std::priority_queue<Entry> Queue;
  for (index_t I = 0; I < N; ++I)
    Queue.push({Measure[static_cast<std::size_t>(I)], I});

  while (!Queue.empty()) {
    auto [Priority, Point] = Queue.top();
    Queue.pop();
    if (State[static_cast<std::size_t>(Point)] != Unassigned ||
        Priority != Measure[static_cast<std::size_t>(Point)])
      continue;
    if (Priority <= 0.0) {
      // Influences no one: keep it fine (classical RS leaves these F).
      State[static_cast<std::size_t>(Point)] =
          static_cast<std::uint8_t>(CfPoint::F);
      continue;
    }
    State[static_cast<std::size_t>(Point)] =
        static_cast<std::uint8_t>(CfPoint::C);
    // Unassigned points strongly depending on this new C point become F.
    for (index_t I = St.RowPtr[Point]; I < St.RowPtr[Point + 1]; ++I) {
      index_t Dependent = St.ColIdx[I];
      if (State[static_cast<std::size_t>(Dependent)] != Unassigned)
        continue;
      State[static_cast<std::size_t>(Dependent)] =
          static_cast<std::uint8_t>(CfPoint::F);
      // Each point the new F point depends on becomes more attractive.
      for (index_t J = S.RowPtr[Dependent]; J < S.RowPtr[Dependent + 1];
           ++J) {
        index_t Influencer = S.ColIdx[J];
        if (State[static_cast<std::size_t>(Influencer)] != Unassigned)
          continue;
        Measure[static_cast<std::size_t>(Influencer)] += 1.0;
        Queue.push({Measure[static_cast<std::size_t>(Influencer)],
                    Influencer});
      }
    }
  }

  std::vector<CfPoint> Split(static_cast<std::size_t>(N));
  for (index_t I = 0; I < N; ++I)
    Split[static_cast<std::size_t>(I)] =
        State[static_cast<std::size_t>(I)] ==
                static_cast<std::uint8_t>(CfPoint::C)
            ? CfPoint::C
            : CfPoint::F;
  return Split;
}

/// CLJP/PMIS-style splitting: measure = strong-influence count plus a random
/// tie-breaker in [0, 1); every point that is a local maximum among its
/// undecided strong neighbours becomes C, its undecided strong neighbours
/// become F; repeat until all points are decided. Isolated points (no strong
/// connections at all) become F.
std::vector<CfPoint> coarsenCljp(const CsrMatrix<double> &S,
                                 const CsrMatrix<double> &St,
                                 std::uint64_t Seed) {
  index_t N = S.NumRows;
  constexpr std::uint8_t Unassigned = 2;
  std::vector<std::uint8_t> State(static_cast<std::size_t>(N), Unassigned);
  std::vector<double> Measure(static_cast<std::size_t>(N));
  Rng Rng(Seed);
  for (index_t I = 0; I < N; ++I)
    Measure[static_cast<std::size_t>(I)] =
        static_cast<double>(St.rowDegree(I)) + Rng.uniform();

  // Points with no strong connections in either direction never interpolate
  // from anyone: make them F immediately (they smooth perfectly).
  for (index_t I = 0; I < N; ++I)
    if (S.rowDegree(I) == 0 && St.rowDegree(I) == 0)
      State[static_cast<std::size_t>(I)] =
          static_cast<std::uint8_t>(CfPoint::F);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Independent-set sweep over undecided points.
    std::vector<index_t> NewC;
    for (index_t I = 0; I < N; ++I) {
      if (State[static_cast<std::size_t>(I)] != Unassigned)
        continue;
      double Mine = Measure[static_cast<std::size_t>(I)];
      bool IsMax = true;
      auto CheckNeighbors = [&](const CsrMatrix<double> &Graph) {
        for (index_t J = Graph.RowPtr[I]; J < Graph.RowPtr[I + 1]; ++J) {
          index_t Neighbor = Graph.ColIdx[J];
          if (State[static_cast<std::size_t>(Neighbor)] == Unassigned &&
              Measure[static_cast<std::size_t>(Neighbor)] > Mine)
            return false;
        }
        return true;
      };
      IsMax = CheckNeighbors(S) && CheckNeighbors(St);
      if (IsMax)
        NewC.push_back(I);
    }
    for (index_t Point : NewC) {
      if (State[static_cast<std::size_t>(Point)] != Unassigned)
        continue;
      State[static_cast<std::size_t>(Point)] =
          static_cast<std::uint8_t>(CfPoint::C);
      Changed = true;
      // Undecided points that strongly depend on a new C point become F.
      for (index_t I = St.RowPtr[Point]; I < St.RowPtr[Point + 1]; ++I) {
        index_t Dependent = St.ColIdx[I];
        if (State[static_cast<std::size_t>(Dependent)] == Unassigned) {
          State[static_cast<std::size_t>(Dependent)] =
              static_cast<std::uint8_t>(CfPoint::F);
        }
      }
    }
    if (!Changed)
      break;
  }
  // Anything left undecided (isolated cliques of equal measure cannot occur
  // thanks to the random tie-breaker, but stay safe): make it C.
  std::vector<CfPoint> Split(static_cast<std::size_t>(N));
  for (index_t I = 0; I < N; ++I)
    Split[static_cast<std::size_t>(I)] =
        State[static_cast<std::size_t>(I)] ==
                static_cast<std::uint8_t>(CfPoint::F)
            ? CfPoint::F
            : CfPoint::C;
  return Split;
}

/// Second pass shared by both algorithms: any F point with at least one
/// strong connection but no strong C neighbour is promoted to C so direct
/// interpolation always has a donor.
void enforceInterpolationCover(const CsrMatrix<double> &S,
                               std::vector<CfPoint> &Split) {
  for (index_t I = 0; I < S.NumRows; ++I) {
    if (Split[static_cast<std::size_t>(I)] == CfPoint::C)
      continue;
    if (S.rowDegree(I) == 0)
      continue; // Truly isolated; interpolates to zero correction.
    bool HasCoarseDonor = false;
    for (index_t J = S.RowPtr[I]; J < S.RowPtr[I + 1] && !HasCoarseDonor; ++J)
      HasCoarseDonor =
          Split[static_cast<std::size_t>(S.ColIdx[J])] == CfPoint::C;
    if (!HasCoarseDonor)
      Split[static_cast<std::size_t>(I)] = CfPoint::C;
  }
}

} // namespace

std::vector<CfPoint> smat::coarsen(const CsrMatrix<double> &S,
                                   CoarsenKind Kind, std::uint64_t Seed) {
  CsrMatrix<double> St = transposeCsr(S);
  std::vector<CfPoint> Split = Kind == CoarsenKind::RugeL
                                   ? coarsenRugeL(S, St)
                                   : coarsenCljp(S, St, Seed);
  enforceInterpolationCover(S, Split);
  return Split;
}

index_t smat::countCoarse(const std::vector<CfPoint> &Split) {
  index_t Count = 0;
  for (CfPoint P : Split)
    Count += P == CfPoint::C ? 1 : 0;
  return Count;
}
