//===- amg/Hierarchy.h - AMG grid hierarchy ---------------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AMG setup phase: builds the sequence of grid operators
/// (A_0, ..., A_{N-1}) and transfer operators (P_0, ..., P_{N-2}) via
/// strength -> coarsening -> direct interpolation -> Galerkin product.
/// These are exactly the "two series of sparse matrices [that] dynamically
/// show different sparse features from the original input matrix A" that
/// motivate SMAT's use inside AMG (paper Section 7.4 / Figure 1).
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_AMG_HIERARCHY_H
#define SMAT_AMG_HIERARCHY_H

#include "amg/Coarsen.h"

#include <vector>

namespace smat {

/// One grid level. P/R are present on every level except the coarsest:
/// P maps coarse (level L+1) vectors up to level L, R = P^T restricts.
struct AmgLevel {
  CsrMatrix<double> A;
  CsrMatrix<double> P;
  CsrMatrix<double> R;
};

/// Setup-phase knobs.
struct HierarchyOptions {
  double StrengthTheta = 0.25;
  CoarsenKind Coarsening = CoarsenKind::RugeL;
  int MaxLevels = 25;
  index_t MinCoarseSize = 64; ///< Stop when a level has this few rows.
  /// Stop when coarsening stalls (coarse size > ratio * fine size).
  double MaxCoarseningRatio = 0.9;
  /// Drop Galerkin entries below this magnitude to bound operator growth.
  double GalerkinDropTol = 0.0;
  std::uint64_t Seed = 7;
};

/// The built hierarchy.
class AmgHierarchy {
public:
  /// Builds levels from fine operator \p A (consumed by value).
  void build(CsrMatrix<double> A, const HierarchyOptions &Opts);

  std::size_t numLevels() const { return Levels.size(); }
  const AmgLevel &level(std::size_t L) const { return Levels[L]; }
  AmgLevel &level(std::size_t L) { return Levels[L]; }

  /// Grid complexity: sum of level nnz over finest nnz.
  double operatorComplexity() const;

private:
  std::vector<AmgLevel> Levels;
};

} // namespace smat

#endif // SMAT_AMG_HIERARCHY_H
