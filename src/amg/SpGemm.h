//===- amg/SpGemm.h - Sparse matrix-matrix products -------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSR sparse matrix-matrix multiplication (Gustavson's algorithm) and the
/// Galerkin triple product R*A*P that builds AMG coarse-grid operators —
/// the machinery that produces the level-by-level structure drift shown in
/// paper Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_AMG_SPGEMM_H
#define SMAT_AMG_SPGEMM_H

#include "matrix/CsrMatrix.h"

namespace smat {

/// C = A * B (Gustavson row-merge). Column indices of each output row are
/// sorted. Requires A.NumCols == B.NumRows.
template <typename T>
CsrMatrix<T> spgemm(const CsrMatrix<T> &A, const CsrMatrix<T> &B);

/// The Galerkin product A_c = R * A * P.
template <typename T>
CsrMatrix<T> galerkinProduct(const CsrMatrix<T> &R, const CsrMatrix<T> &A,
                             const CsrMatrix<T> &P);

/// Drops entries with |value| <= Threshold (never the diagonal); used to
/// keep coarse operators from densifying.
template <typename T>
CsrMatrix<T> dropSmallEntries(const CsrMatrix<T> &A, T Threshold);

extern template CsrMatrix<float> spgemm(const CsrMatrix<float> &,
                                        const CsrMatrix<float> &);
extern template CsrMatrix<double> spgemm(const CsrMatrix<double> &,
                                         const CsrMatrix<double> &);
extern template CsrMatrix<float> galerkinProduct(const CsrMatrix<float> &,
                                                 const CsrMatrix<float> &,
                                                 const CsrMatrix<float> &);
extern template CsrMatrix<double> galerkinProduct(const CsrMatrix<double> &,
                                                  const CsrMatrix<double> &,
                                                  const CsrMatrix<double> &);
extern template CsrMatrix<float> dropSmallEntries(const CsrMatrix<float> &,
                                                  float);
extern template CsrMatrix<double> dropSmallEntries(const CsrMatrix<double> &,
                                                   double);

} // namespace smat

#endif // SMAT_AMG_SPGEMM_H
