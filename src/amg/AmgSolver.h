//===- amg/AmgSolver.h - AMG V-cycle solver with SMAT backend ---*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AMG solver of paper Section 7.4: a V-cycle with weighted-Jacobi
/// smoothing whose every operator application (A on each level, P, R) goes
/// through a pluggable SpMV backend. The FixedCsr backend mirrors Hypre's
/// always-CSR behaviour; the Smat backend replaces each operator's SpMV
/// with a SMAT-tuned kernel — "we simply replace the SpMV kernel codes with
/// SMAT interfaces with no changes to the original CSR data structure".
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_AMG_AMGSOLVER_H
#define SMAT_AMG_AMGSOLVER_H

#include "amg/Hierarchy.h"
#include "amg/Relax.h"
#include "core/Smat.h"

#include <string>

namespace smat {

/// Which SpMV implementation the solver binds per operator.
enum class SpmvBackendKind {
  FixedCsr, ///< Basic CSR kernel everywhere (the Hypre-style baseline).
  Smat,     ///< SMAT-tuned format + kernel per operator.
};

/// Solver configuration.
struct AmgOptions {
  HierarchyOptions Hierarchy;
  int PreSweeps = 1;
  int PostSweeps = 1;
  double JacobiOmega = 2.0 / 3.0;
  double RelTol = 1e-8;
  int MaxIterations = 100;
  /// Coarsest grids at or below this size use a dense LU solve; larger
  /// coarsest grids fall back to repeated smoothing.
  index_t DenseCoarseLimit = 512;
  SpmvBackendKind Backend = SpmvBackendKind::FixedCsr;
  /// Required when Backend == Smat.
  const Smat<double> *Tuner = nullptr;
  /// Optional plan cache shared across every operator tuned during setup
  /// (Smat backend only). Coarse-grid operators repeat structure level
  /// after level, so sharing pays the full tuning cost once per structural
  /// class. When null the solver creates and owns a private cache.
  PlanCache *Cache = nullptr;
  /// Tuning knobs forwarded to every per-operator tune (Smat backend only):
  /// measurement floors, the resilience budgets, ForceMeasure, ... . The
  /// cache is resolved separately — Tune.Cache wins when set, then Cache,
  /// then the solver-owned cache — and CsrMode is forced to Borrowed (the
  /// hierarchy owns its operators and outlives the bindings).
  TuneOptions Tune;
};

/// Outcome of a solve.
struct SolveStats {
  bool Converged = false;
  int Iterations = 0;
  double RelResidual = 0.0;
  double SetupSeconds = 0.0;
  double SolveSeconds = 0.0;
};

/// Per-operator format decisions (for the Table-4 style reporting).
struct LevelFormatInfo {
  std::size_t Level = 0;
  std::string Operator; ///< "A", "P" or "R".
  index_t Rows = 0;
  std::int64_t Nnz = 0;
  FormatKind Format = FormatKind::CSR;
  std::string Kernel;
  /// Degradation ladder rung this operator's tune took (always None for the
  /// FixedCsr backend).
  DegradationLevel Degradation = DegradationLevel::None;
};

/// Algebraic multigrid solver (V-cycle; also usable as a PCG
/// preconditioner through solvePcg).
class AmgSolver {
public:
  /// Builds the hierarchy from \p A and binds the SpMV backend. \p A is
  /// validated up front (the solver is a trust boundary like Smat::tune);
  /// malformed input throws std::invalid_argument with the diagnostic.
  void setup(const CsrMatrix<double> &A, const AmgOptions &Opts);

  /// Non-throwing setup: \returns the violated invariant (structurally
  /// invalid or non-square \p A, Smat backend without a tuner) instead of
  /// throwing. The solver is left untouched on failure.
  Status trySetup(const CsrMatrix<double> &A, const AmgOptions &Opts);

  /// Stationary V-cycle iteration on A*X = B until RelTol or MaxIterations.
  /// \p X is both the initial guess and the result.
  SolveStats solve(const std::vector<double> &B,
                   std::vector<double> &X) const;

  /// Conjugate gradients preconditioned with one V-cycle per application.
  SolveStats solvePcg(const std::vector<double> &B,
                      std::vector<double> &X) const;

  const AmgHierarchy &hierarchy() const { return Hier; }

  /// The formats/kernels chosen for every operator (Smat backend) or the
  /// uniform CSR picture (FixedCsr backend).
  const std::vector<LevelFormatInfo> &formatDecisions() const {
    return Decisions;
  }

  double setupSeconds() const { return SetupTime; }

  /// The plan cache the Smat backend tuned through (the caller's from
  /// AmgOptions::Tune.Cache or AmgOptions::Cache, or the solver-owned one);
  /// null for the FixedCsr backend or before setup().
  const PlanCache *planCache() const {
    if (Options.Tune.Cache)
      return Options.Tune.Cache;
    return Options.Cache ? Options.Cache : OwnedCache.get();
  }

private:
  struct LevelOps {
    SpmvFn ApplyA, ApplyP, ApplyR;
    std::vector<double> InvDiag;
    // Work vectors sized for this level.
    mutable std::vector<double> X, B, Scratch;
  };

  /// The build behind the validated boundary; assumes well-formed input.
  void setupImpl(const CsrMatrix<double> &A, const AmgOptions &Opts);

  void runVcycle(std::size_t L, const double *B, double *X) const;

  AmgHierarchy Hier;
  AmgOptions Options;
  std::vector<LevelOps> Ops;
  /// Tuned operators (Smat backend); pointers into Hier stay valid because
  /// the hierarchy is immutable after setup.
  std::vector<TunedSpmv<double>> Tuned;
  /// Fallback cache when the caller did not supply one (unique_ptr keeps
  /// the solver movable; PlanCache itself holds a mutex).
  std::unique_ptr<PlanCache> OwnedCache;
  std::vector<LevelFormatInfo> Decisions;
  DenseLu CoarseLu;
  bool UseCoarseLu = false;
  double SetupTime = 0.0;
};

} // namespace smat

#endif // SMAT_AMG_AMGSOLVER_H
