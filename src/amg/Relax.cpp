//===- amg/Relax.cpp - Smoothers and dense coarse solve -------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/Relax.h"

#include "support/Compiler.h"

#include <cmath>

using namespace smat;

std::vector<double> smat::extractDiagonal(const CsrMatrix<double> &A) {
  std::vector<double> Diag(static_cast<std::size_t>(A.NumRows), 0.0);
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      if (A.ColIdx[I] == Row)
        Diag[static_cast<std::size_t>(Row)] = A.Values[I];
  return Diag;
}

void smat::jacobiSweep(const SpmvFn &Spmv, const std::vector<double> &InvDiag,
                       const double *B, double *X, double *Scratch, index_t N,
                       double Omega) {
  Spmv(X, Scratch); // Scratch = A*X
  for (index_t I = 0; I < N; ++I)
    X[I] += Omega * InvDiag[static_cast<std::size_t>(I)] * (B[I] - Scratch[I]);
}

void smat::gaussSeidelSweep(const CsrMatrix<double> &A, const double *B,
                            double *X) {
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    double Sum = B[Row];
    double Diag = 1.0;
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
      index_t Col = A.ColIdx[I];
      if (Col == Row) {
        Diag = A.Values[I];
        continue;
      }
      Sum -= A.Values[I] * X[Col];
    }
    X[Row] = Sum / Diag;
  }
}

void smat::residual(const SpmvFn &Spmv, const double *B, const double *X,
                    double *R, index_t N) {
  Spmv(X, R); // R = A*X
  for (index_t I = 0; I < N; ++I)
    R[I] = B[I] - R[I];
}

void DenseLu::factor(const CsrMatrix<double> &A) {
  assert(A.NumRows == A.NumCols && "dense LU needs a square matrix");
  N = A.NumRows;
  Lu.assign(static_cast<std::size_t>(N) * static_cast<std::size_t>(N), 0.0);
  Perm.resize(static_cast<std::size_t>(N));
  for (index_t Row = 0; Row < N; ++Row) {
    Perm[static_cast<std::size_t>(Row)] = Row;
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      Lu[static_cast<std::size_t>(Row) * N + A.ColIdx[I]] = A.Values[I];
  }

  for (index_t K = 0; K < N; ++K) {
    // Partial pivoting.
    index_t Pivot = K;
    double Best = std::abs(Lu[static_cast<std::size_t>(K) * N + K]);
    for (index_t Row = K + 1; Row < N; ++Row) {
      double Cand = std::abs(Lu[static_cast<std::size_t>(Row) * N + K]);
      if (Cand > Best) {
        Best = Cand;
        Pivot = Row;
      }
    }
    if (Pivot != K) {
      for (index_t Col = 0; Col < N; ++Col)
        std::swap(Lu[static_cast<std::size_t>(K) * N + Col],
                  Lu[static_cast<std::size_t>(Pivot) * N + Col]);
      std::swap(Perm[static_cast<std::size_t>(K)],
                Perm[static_cast<std::size_t>(Pivot)]);
    }
    double Diag = Lu[static_cast<std::size_t>(K) * N + K];
    if (Diag == 0.0)
      continue; // Singular block; the V-cycle still contracts elsewhere.
    for (index_t Row = K + 1; Row < N; ++Row) {
      double Factor = Lu[static_cast<std::size_t>(Row) * N + K] / Diag;
      Lu[static_cast<std::size_t>(Row) * N + K] = Factor;
      if (Factor == 0.0)
        continue;
      for (index_t Col = K + 1; Col < N; ++Col)
        Lu[static_cast<std::size_t>(Row) * N + Col] -=
            Factor * Lu[static_cast<std::size_t>(K) * N + Col];
    }
  }
}

void DenseLu::solve(double *X) const {
  // Apply the row permutation.
  std::vector<double> B(static_cast<std::size_t>(N));
  for (index_t I = 0; I < N; ++I)
    B[static_cast<std::size_t>(I)] = X[Perm[static_cast<std::size_t>(I)]];
  // Forward substitution (unit lower triangle).
  for (index_t Row = 0; Row < N; ++Row) {
    double Sum = B[static_cast<std::size_t>(Row)];
    for (index_t Col = 0; Col < Row; ++Col)
      Sum -= Lu[static_cast<std::size_t>(Row) * N + Col] *
             B[static_cast<std::size_t>(Col)];
    B[static_cast<std::size_t>(Row)] = Sum;
  }
  // Back substitution.
  for (index_t Row = N - 1; Row >= 0; --Row) {
    double Sum = B[static_cast<std::size_t>(Row)];
    for (index_t Col = Row + 1; Col < N; ++Col)
      Sum -= Lu[static_cast<std::size_t>(Row) * N + Col] *
             B[static_cast<std::size_t>(Col)];
    double Diag = Lu[static_cast<std::size_t>(Row) * N + Row];
    B[static_cast<std::size_t>(Row)] = Diag != 0.0 ? Sum / Diag : 0.0;
  }
  for (index_t I = 0; I < N; ++I)
    X[I] = B[static_cast<std::size_t>(I)];
}
