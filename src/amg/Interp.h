//===- amg/Interp.h - Direct interpolation ----------------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classical direct interpolation: C points inject, F points interpolate
/// from their strong C neighbours with weights
///   w_ij = -alpha_i * a_ij / a_ii,
///   alpha_i = (sum of all off-diagonal a_ik) / (sum over strong C a_ik),
/// which preserves constant vectors for M-matrix-like operators.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_AMG_INTERP_H
#define SMAT_AMG_INTERP_H

#include "amg/Coarsen.h"

namespace smat {

/// Builds the prolongation operator P (NumRows x NumCoarse) from operator
/// \p A, strength graph \p S and splitting \p Split.
CsrMatrix<double> directInterpolation(const CsrMatrix<double> &A,
                                      const CsrMatrix<double> &S,
                                      const std::vector<CfPoint> &Split);

} // namespace smat

#endif // SMAT_AMG_INTERP_H
