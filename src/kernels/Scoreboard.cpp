//===- kernels/Scoreboard.cpp - Kernel search (paper Sec. 5.2) ------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "kernels/Scoreboard.h"

#include "matrix/FormatConvert.h"
#include "matrix/Generators.h"
#include "support/Compiler.h"

#include <bit>

using namespace smat;

ScoreboardResult smat::runScoreboard(const std::vector<KernelMeasurement> &Table,
                                     double NoEffectGap) {
  ScoreboardResult Result;
  Result.KernelScores.assign(Table.size(), 0);
  if (Table.empty())
    return Result;

  // Locate the basic implementation.
  int BasicIdx = -1;
  for (std::size_t I = 0; I != Table.size(); ++I)
    if (Table[I].Flags == OptNone)
      BasicIdx = static_cast<int>(I);
  assert(BasicIdx >= 0 && "scoreboard needs a basic (flag-free) entry");

  // Finds the entry with exactly the given flag set; -1 when absent.
  auto FindFlags = [&Table](unsigned Flags) -> int {
    for (std::size_t I = 0; I != Table.size(); ++I)
      if (Table[I].Flags == Flags)
        return static_cast<int>(I);
    return -1;
  };

  // Vote accumulation. Each (implementation, strategy) comparison against the
  // implementation with one less strategy contributes +1, -1, or nothing
  // (gap below the neglect threshold).
  std::array<int, NumOptStrategies> Votes{};
  std::array<bool, NumOptStrategies> SawEffect{};
  for (std::size_t I = 0; I != Table.size(); ++I) {
    unsigned Flags = Table[I].Flags;
    int Bits = std::popcount(Flags);
    if (Bits == 0)
      continue;
    for (unsigned Bit = 0; Bit < NumOptStrategies; ++Bit) {
      if (!(Flags & (1u << Bit)))
        continue;
      unsigned Reduced = Flags & ~(1u << Bit);
      int Reference = Bits == 1 ? BasicIdx : FindFlags(Reduced);
      if (Reference < 0)
        continue; // No one-less-strategy partner in the library.
      double Diff =
          Table[I].Gflops - Table[static_cast<std::size_t>(Reference)].Gflops;
      if (Diff > NoEffectGap) {
        ++Votes[Bit];
        SawEffect[Bit] = true;
      } else if (Diff < -NoEffectGap) {
        --Votes[Bit];
        SawEffect[Bit] = true;
      }
      // else: below the gap — "no effect on this architecture", neglected.
    }
  }
  Result.StrategyScores = Votes;
  for (unsigned Bit = 0; Bit < NumOptStrategies; ++Bit)
    Result.Neglected[Bit] = !SawEffect[Bit];

  // Implementation score: sum of its strategies' scores.
  for (std::size_t I = 0; I != Table.size(); ++I) {
    int Score = 0;
    for (unsigned Bit = 0; Bit < NumOptStrategies; ++Bit)
      if (Table[I].Flags & (1u << Bit))
        Score += Votes[Bit];
    Result.KernelScores[I] = Score;
  }

  // Highest score wins; measured GFLOPS breaks ties. An entry recorded at
  // zero GFLOPS was never successfully measured (precondition violation,
  // fault/watchdog abort, or an expired budget — a real measurement cannot
  // produce exactly zero): it is unselectable no matter how well its
  // strategy bits scored elsewhere, otherwise a partially measured table
  // can crown a kernel that never ran. When nothing measured at all the
  // basic entry stays selected — binding it is always safe.
  int Best = BasicIdx;
  for (std::size_t I = 0; I != Table.size(); ++I) {
    if (Table[I].Gflops <= 0.0)
      continue;
    if (Table[static_cast<std::size_t>(Best)].Gflops <= 0.0) {
      Best = static_cast<int>(I);
      continue;
    }
    int BestScore = Result.KernelScores[static_cast<std::size_t>(Best)];
    if (Result.KernelScores[I] > BestScore ||
        (Result.KernelScores[I] == BestScore &&
         Table[I].Gflops > Table[static_cast<std::size_t>(Best)].Gflops))
      Best = static_cast<int>(I);
  }
  Result.BestIndex = Best;
  return Result;
}

template <typename T>
KernelSelection smat::searchOptimalKernels(double MinSeconds,
                                           double BudgetSeconds) {
  KernelSelection Selection;
  const KernelTable<T> &Kernels = kernelTable<T>();
  // Split the overall budget evenly across the per-format searches (five
  // formats, the skewed CSR pass, and one share per SpMM batch width) so a
  // slow early format cannot starve the later ones completely.
  double FormatBudget =
      BudgetSeconds > 0.0
          ? BudgetSeconds / (NumFormats + 1 + NumSpmmWidths)
          : 0.0;

  // Format-friendly probe structures, all sized to overflow L2 a little so
  // the memory system participates in the measurement.
  CsrMatrix<double> CsrProbeD = blockFem(120, 24, 4.0, 42);
  CsrMatrix<double> CooProbeD = powerLawGraph(20000, 2.2, 1, 64, 43);
  CsrMatrix<double> DiaProbeD = banded(30000, 4);
  CsrMatrix<double> EllProbeD = boundedDegreeRandom(20000, 20000, 6, 6, 44);
  CsrMatrix<double> BsrProbeD = blockFem(1500, 4, 0.0, 45);

  CsrMatrix<T> CsrProbe = convertValueType<T>(CsrProbeD);
  CooMatrix<T> CooProbe = csrToCoo(convertValueType<T>(CooProbeD));
  DiaMatrix<T> DiaProbe;
  bool DiaOk = csrToDia(convertValueType<T>(DiaProbeD), DiaProbe);
  EllMatrix<T> EllProbe;
  bool EllOk = csrToEll(convertValueType<T>(EllProbeD), EllProbe);
  BsrMatrix<T> BsrProbe;
  bool BsrOk = csrToBsr(convertValueType<T>(BsrProbeD), BsrProbe, 4);
  assert(DiaOk && EllOk && BsrOk && "probe matrices must convert losslessly");
  (void)DiaOk;
  (void)EllOk;
  (void)BsrOk;

  auto Pick = [&](FormatKind Kind, auto &KernelList, const auto &Probe) {
    auto Measurements =
        measureKernelTable<T>(KernelList, Probe, MinSeconds, FormatBudget);
    ScoreboardResult Result = runScoreboard(Measurements);
    int Idx = static_cast<int>(Kind);
    Selection.BestKernel[Idx] = Result.BestIndex;
    Selection.BestKernelName[Idx] =
        Measurements[static_cast<std::size_t>(Result.BestIndex)].Name;
  };

  Pick(FormatKind::CSR, Kernels.Csr, CsrProbe);
  Pick(FormatKind::COO, Kernels.Coo, CooProbe);
  Pick(FormatKind::DIA, Kernels.Dia, DiaProbe);
  Pick(FormatKind::ELL, Kernels.Ell, EllProbe);
  Pick(FormatKind::BSR, Kernels.Bsr, BsrProbe);

  // Second CSR pass on a heavily skewed (power-law, row CV > 2) probe: the
  // balanced FEM probe above cannot distinguish the load-balance strategy
  // from plain row-split threading, so the skew-bound kernel gets its own
  // scoreboard where long rows actually exist.
  CsrMatrix<double> SkewProbeD = powerLawGraph(30000, 1.8, 1, 3000, 46);
  CsrMatrix<T> SkewProbe = convertValueType<T>(SkewProbeD);
  {
    auto Measurements =
        measureKernelTable<T>(Kernels.Csr, SkewProbe, MinSeconds, FormatBudget);
    ScoreboardResult Result = runScoreboard(Measurements);
    Selection.BestSkewCsrKernel = Result.BestIndex;
    Selection.BestSkewCsrKernelName =
        Measurements[static_cast<std::size_t>(Result.BestIndex)].Name;
  }

  // SpMM pass: one scoreboard per (format, batch width) over the same
  // format-friendly probes. Register-tile payoff is width-dependent (wider
  // tiles raise arithmetic intensity but also register pressure), so each
  // width gets its own pick. Each width's budget share is split across the
  // four SpMM families.
  for (int W = 0; W < NumSpmmWidths; ++W) {
    const index_t Width = SpmmSearchWidths[static_cast<std::size_t>(W)];
    const double FamilyBudget = FormatBudget > 0.0 ? FormatBudget / 4 : 0.0;
    auto PickSpmm = [&](FormatKind Kind, auto &KernelList,
                        const auto &Probe) {
      auto Measurements = measureSpmmKernelTable<T>(KernelList, Probe, Width,
                                                    MinSeconds, FamilyBudget);
      ScoreboardResult Result = runScoreboard(Measurements);
      std::size_t Idx = static_cast<std::size_t>(Kind);
      Selection.BestSpmmKernel[Idx][static_cast<std::size_t>(W)] =
          Result.BestIndex;
      Selection.BestSpmmKernelName[Idx][static_cast<std::size_t>(W)] =
          Measurements[static_cast<std::size_t>(Result.BestIndex)].Name;
    };
    PickSpmm(FormatKind::CSR, Kernels.CsrSpmm, CsrProbe);
    PickSpmm(FormatKind::COO, Kernels.CooSpmm, CooProbe);
    PickSpmm(FormatKind::DIA, Kernels.DiaSpmm, DiaProbe);
    PickSpmm(FormatKind::ELL, Kernels.EllSpmm, EllProbe);
  }
  return Selection;
}

template KernelSelection smat::searchOptimalKernels<float>(double, double);
template KernelSelection smat::searchOptimalKernels<double>(double, double);
