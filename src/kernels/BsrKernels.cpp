//===- kernels/BsrKernels.cpp - BSR SpMV kernel variants ------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// BSR y := A*x variants (the extension format). Dense blocks amortize index
// loads over BlockSize^2 values and keep register-level reuse of X; the
// fixed-size specializations (2x2 / 4x4 / 8x8) let the compiler fully
// unroll the block multiply — the register-blocking effect OSKI exploits.
//
// Edge blocks of matrices whose dimensions are not multiples of BlockSize
// are padded with explicit zeros, so the fast paths multiply them blindly;
// only X/Y accesses are clamped.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "support/Compiler.h"

#include <algorithm>

namespace smat {
namespace {

/// Generic block multiply with full edge clamping; correct for any
/// BlockSize. All other variants fall back to this for edge blocks.
template <typename T>
void bsrBasic(const BsrMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  index_t B = A.BlockSize;
  for (index_t Br = 0; Br < A.numBlockRows(); ++Br) {
    index_t RowBase = Br * B;
    index_t RowsHere = std::min(B, A.NumRows - RowBase);
    for (index_t R = 0; R < RowsHere; ++R)
      Y[RowBase + R] = T(0);
    for (index_t I = A.RowPtr[Br]; I < A.RowPtr[Br + 1]; ++I) {
      index_t ColBase = A.ColIdx[I] * B;
      index_t ColsHere = std::min(B, A.NumCols - ColBase);
      const T *SMAT_RESTRICT Block =
          A.Values.data() + static_cast<std::size_t>(I) * B * B;
      for (index_t R = 0; R < RowsHere; ++R) {
        T Sum = T(0);
        for (index_t C = 0; C < ColsHere; ++C)
          Sum += Block[R * B + C] * X[ColBase + C];
        Y[RowBase + R] += Sum;
      }
    }
  }
}

/// Compile-time block size: the block multiply fully unrolls and X values
/// stay in registers across the block's rows.
template <typename T, int B>
void bsrFixed(const BsrMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  assert(A.BlockSize == B && "fixed-size kernel bound to wrong matrix");
  index_t BlockRows = A.numBlockRows();
  index_t FullRows = A.NumRows / B; // Block rows with no row clamping.
  for (index_t Br = 0; Br < BlockRows; ++Br) {
    index_t RowBase = Br * B;
    bool EdgeRow = Br >= FullRows;
    T Acc[B];
    for (int R = 0; R < B; ++R)
      Acc[R] = T(0);
    for (index_t I = A.RowPtr[Br]; I < A.RowPtr[Br + 1]; ++I) {
      index_t ColBase = A.ColIdx[I] * B;
      const T *SMAT_RESTRICT Block =
          A.Values.data() + static_cast<std::size_t>(I) * B * B;
      if (SMAT_LIKELY(ColBase + B <= A.NumCols)) {
        for (int R = 0; R < B; ++R) {
          T Sum = T(0);
          for (int C = 0; C < B; ++C)
            Sum += Block[R * B + C] * X[ColBase + C];
          Acc[R] += Sum;
        }
      } else {
        index_t ColsHere = A.NumCols - ColBase;
        for (int R = 0; R < B; ++R) {
          T Sum = T(0);
          for (index_t C = 0; C < ColsHere; ++C)
            Sum += Block[R * B + C] * X[ColBase + C];
          Acc[R] += Sum;
        }
      }
    }
    if (SMAT_LIKELY(!EdgeRow)) {
      for (int R = 0; R < B; ++R)
        Y[RowBase + R] = Acc[R];
    } else {
      index_t RowsHere = A.NumRows - RowBase;
      for (index_t R = 0; R < RowsHere; ++R)
        Y[RowBase + R] = Acc[R];
    }
  }
}

/// Dispatches to the unrolled kernel when the block size matches one of the
/// supported specializations; generic otherwise.
template <typename T>
void bsrUnrolled(const BsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  switch (A.BlockSize) {
  case 2:
    bsrFixed<T, 2>(A, X, Y);
    return;
  case 4:
    bsrFixed<T, 4>(A, X, Y);
    return;
  case 8:
    bsrFixed<T, 8>(A, X, Y);
    return;
  default:
    bsrBasic(A, X, Y);
    return;
  }
}

/// SIMD-annotated block rows (vectorizes the inner block multiply).
template <typename T>
void bsrSimd(const BsrMatrix<T> &A, const T *SMAT_RESTRICT X,
             T *SMAT_RESTRICT Y) {
  index_t B = A.BlockSize;
  for (index_t Br = 0; Br < A.numBlockRows(); ++Br) {
    index_t RowBase = Br * B;
    index_t RowsHere = std::min(B, A.NumRows - RowBase);
    for (index_t R = 0; R < RowsHere; ++R)
      Y[RowBase + R] = T(0);
    for (index_t I = A.RowPtr[Br]; I < A.RowPtr[Br + 1]; ++I) {
      index_t ColBase = A.ColIdx[I] * B;
      index_t ColsHere = std::min(B, A.NumCols - ColBase);
      const T *SMAT_RESTRICT Block =
          A.Values.data() + static_cast<std::size_t>(I) * B * B;
      for (index_t R = 0; R < RowsHere; ++R) {
        T Sum = T(0);
#pragma omp simd reduction(+ : Sum)
        for (index_t C = 0; C < ColsHere; ++C)
          Sum += Block[R * B + C] * X[ColBase + C];
        Y[RowBase + R] += Sum;
      }
    }
  }
}

/// Threaded over block rows (disjoint Y ranges).
template <typename T>
void bsrOmp(const BsrMatrix<T> &A, const T *SMAT_RESTRICT X,
            T *SMAT_RESTRICT Y) {
  index_t B = A.BlockSize;
  index_t BlockRows = A.numBlockRows();
#pragma omp parallel for schedule(static)
  for (index_t Br = 0; Br < BlockRows; ++Br) {
    index_t RowBase = Br * B;
    index_t RowsHere = std::min(B, A.NumRows - RowBase);
    for (index_t R = 0; R < RowsHere; ++R)
      Y[RowBase + R] = T(0);
    for (index_t I = A.RowPtr[Br]; I < A.RowPtr[Br + 1]; ++I) {
      index_t ColBase = A.ColIdx[I] * B;
      index_t ColsHere = std::min(B, A.NumCols - ColBase);
      const T *SMAT_RESTRICT Block =
          A.Values.data() + static_cast<std::size_t>(I) * B * B;
      for (index_t R = 0; R < RowsHere; ++R) {
        T Sum = T(0);
        for (index_t C = 0; C < ColsHere; ++C)
          Sum += Block[R * B + C] * X[ColBase + C];
        Y[RowBase + R] += Sum;
      }
    }
  }
}

/// Generic loop with software prefetch of the next blocks' values and X
/// slices.
template <typename T>
void bsrPrefetch(const BsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  index_t B = A.BlockSize;
  std::int64_t Blocks = A.numBlocks();
  for (index_t Br = 0; Br < A.numBlockRows(); ++Br) {
    index_t RowBase = Br * B;
    index_t RowsHere = std::min(B, A.NumRows - RowBase);
    for (index_t R = 0; R < RowsHere; ++R)
      Y[RowBase + R] = T(0);
    for (index_t I = A.RowPtr[Br]; I < A.RowPtr[Br + 1]; ++I) {
      if (I + 2 < Blocks) {
        __builtin_prefetch(
            A.Values.data() + static_cast<std::size_t>(I + 2) * B * B, 0, 0);
        __builtin_prefetch(&X[A.ColIdx[I + 2] * B], 0, 0);
      }
      index_t ColBase = A.ColIdx[I] * B;
      index_t ColsHere = std::min(B, A.NumCols - ColBase);
      const T *SMAT_RESTRICT Block =
          A.Values.data() + static_cast<std::size_t>(I) * B * B;
      for (index_t R = 0; R < RowsHere; ++R) {
        T Sum = T(0);
        for (index_t C = 0; C < ColsHere; ++C)
          Sum += Block[R * B + C] * X[ColBase + C];
        Y[RowBase + R] += Sum;
      }
    }
  }
}

} // namespace
} // namespace smat

template <typename T>
std::vector<smat::Kernel<smat::BsrKernelFn<T>>> smat::makeBsrKernels() {
  return {
      {"bsr_basic", OptNone, &bsrBasic<T>},
      {"bsr_unrolled", OptUnroll, &bsrUnrolled<T>},
      {"bsr_simd", OptSimd, &bsrSimd<T>},
      {"bsr_omp", OptThreads, &bsrOmp<T>},
      {"bsr_prefetch", OptPrefetch, &bsrPrefetch<T>},
  };
}

template std::vector<smat::Kernel<smat::BsrKernelFn<float>>>
smat::makeBsrKernels<float>();
template std::vector<smat::Kernel<smat::BsrKernelFn<double>>>
smat::makeBsrKernels<double>();
