//===- kernels/KernelRegistry.cpp - SpMV kernel library -------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"

#include "support/Compiler.h"

using namespace smat;

const char *smat::optStrategyName(unsigned Bit) {
  switch (Bit) {
  case 0:
    return "unroll";
  case 1:
    return "simd";
  case 2:
    return "prefetch";
  case 3:
    return "branchfree";
  case 4:
    return "threads";
  case 5:
    return "dynsched";
  case 6:
    return "interchange";
  case 7:
    return "loadbalance";
  }
  smatUnreachable("invalid optimization strategy bit");
}

std::string smat::optFlagsString(unsigned Flags) {
  if (Flags == OptNone)
    return "basic";
  std::string Out;
  for (unsigned Bit = 0; Bit < NumOptStrategies; ++Bit) {
    if (!(Flags & (1u << Bit)))
      continue;
    if (!Out.empty())
      Out += '+';
    Out += optStrategyName(Bit);
  }
  return Out;
}

template <typename T> const KernelTable<T> &smat::kernelTable() {
  static const KernelTable<T> Table = [] {
    KernelTable<T> Built;
    Built.Csr = makeCsrKernels<T>();
    Built.Coo = makeCooKernels<T>();
    Built.Dia = makeDiaKernels<T>();
    Built.Ell = makeEllKernels<T>();
    Built.Bsr = makeBsrKernels<T>();
    Built.CsrSpmm = makeCsrSpmmKernels<T>();
    Built.CooSpmm = makeCooSpmmKernels<T>();
    Built.DiaSpmm = makeDiaSpmmKernels<T>();
    Built.EllSpmm = makeEllSpmmKernels<T>();
    return Built;
  }();
  return Table;
}

template const KernelTable<float> &smat::kernelTable<float>();
template const KernelTable<double> &smat::kernelTable<double>();
