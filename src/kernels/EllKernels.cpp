//===- kernels/EllKernels.cpp - ELL SpMV kernel variants ------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// ELL y := A*x variants. The basic loop is the paper's Figure 2(d):
// column-of-the-packed-matrix outer loop, row inner loop. Padding entries
// are (value 0, column 0), so they can be multiplied unconditionally.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

namespace smat {
namespace {

template <typename T>
void ellZero(T *SMAT_RESTRICT Y, index_t N) {
  std::memset(Y, 0, sizeof(T) * static_cast<std::size_t>(N));
}

template <typename T>
void ellBasic(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  for (index_t C = 0; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data[Row] * X[Idx[Row]];
  }
}

/// Explicit vectorization of the column-major pass (contiguous loads from
/// Data/Indices, gather from X).
template <typename T>
void ellSimd(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
             T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  for (index_t C = 0; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
#pragma omp simd
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data[Row] * X[Idx[Row]];
  }
}

/// Loop interchange: per-row accumulation (one Y store per row, strided
/// loads from the packed matrix).
template <typename T>
void ellRowMajor(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t C = 0; C < A.Width; ++C) {
      std::size_t I = static_cast<std::size_t>(C) * A.NumRows + Row;
      Sum += A.Data[I] * X[A.Indices[I]];
    }
    Y[Row] = Sum;
  }
}

/// Column-major pass with two packed columns per sweep: halves Y traffic.
template <typename T>
void ellUnroll2(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  index_t C = 0;
  for (; C + 1 < A.Width; C += 2) {
    const T *SMAT_RESTRICT Data0 =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const T *SMAT_RESTRICT Data1 = Data0 + A.NumRows;
    const index_t *SMAT_RESTRICT Idx0 =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx1 = Idx0 + A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data0[Row] * X[Idx0[Row]] + Data1[Row] * X[Idx1[Row]];
  }
  for (; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data[Row] * X[Idx[Row]];
  }
}

/// Row-partitioned threading over the interchange (row-major) loop.
template <typename T>
void ellOmpRows(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
#pragma omp parallel for schedule(static)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t C = 0; C < A.Width; ++C) {
      std::size_t I = static_cast<std::size_t>(C) * A.NumRows + Row;
      Sum += A.Data[I] * X[A.Indices[I]];
    }
    Y[Row] = Sum;
  }
}

/// SIMD + unrolled column-major combination.
template <typename T>
void ellSimdUnroll2(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                    T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  index_t C = 0;
  for (; C + 1 < A.Width; C += 2) {
    const T *SMAT_RESTRICT Data0 =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const T *SMAT_RESTRICT Data1 = Data0 + A.NumRows;
    const index_t *SMAT_RESTRICT Idx0 =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx1 = Idx0 + A.NumRows;
#pragma omp simd
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data0[Row] * X[Idx0[Row]] + Data1[Row] * X[Idx1[Row]];
  }
  for (; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
#pragma omp simd
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data[Row] * X[Idx[Row]];
  }
}

/// Row slice size of the sliced (load-balanced) kernels: big enough to keep
/// the column-major access pattern streaming, small enough that one long row
/// only pads its own slice.
constexpr index_t EllSliceRows = 64;

/// Sliced ELL (SELL-style): rows are processed in slices of EllSliceRows;
/// each slice sweeps only up to its own longest row (from the RowLen
/// sidecar, PrecondRowLengths) instead of the global padded Width, so a few
/// long rows no longer drag every slice through their padding columns.
template <typename T>
void ellSliced(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
               T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT RowLen = A.RowLen.data();
  for (index_t SliceBegin = 0; SliceBegin < A.NumRows;
       SliceBegin += EllSliceRows) {
    index_t SliceEnd = std::min<index_t>(SliceBegin + EllSliceRows, A.NumRows);
    index_t SliceWidth = 0;
    for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
      SliceWidth = std::max(SliceWidth, RowLen[Row]);
    for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
      Y[Row] = T(0);
    for (index_t C = 0; C < SliceWidth; ++C) {
      const T *SMAT_RESTRICT Data =
          A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
      const index_t *SMAT_RESTRICT Idx =
          A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
      for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
        Y[Row] += Data[Row] * X[Idx[Row]];
    }
  }
}

/// Threaded sliced ELL: slices are independent and their work is bounded by
/// their own width, so dynamic scheduling balances skewed row lengths.
template <typename T>
void ellSlicedOmp(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT RowLen = A.RowLen.data();
  index_t NumSlices = (A.NumRows + EllSliceRows - 1) / EllSliceRows;
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t Slice = 0; Slice < NumSlices; ++Slice) {
    index_t SliceBegin = Slice * EllSliceRows;
    index_t SliceEnd = std::min<index_t>(SliceBegin + EllSliceRows, A.NumRows);
    index_t SliceWidth = 0;
    for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
      SliceWidth = std::max(SliceWidth, RowLen[Row]);
    for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
      Y[Row] = T(0);
    for (index_t C = 0; C < SliceWidth; ++C) {
      const T *SMAT_RESTRICT Data =
          A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
      const index_t *SMAT_RESTRICT Idx =
          A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
      for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
        Y[Row] += Data[Row] * X[Idx[Row]];
    }
  }
}

/// Column-major pass with gather prefetch on the X stream.
template <typename T>
void ellPrefetch(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  constexpr index_t Distance = 64;
  for (index_t C = 0; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row) {
      if (Row + Distance < A.NumRows)
        __builtin_prefetch(&X[Idx[Row + Distance]], 0, 0);
      Y[Row] += Data[Row] * X[Idx[Row]];
    }
  }
}

//===----------------------------------------------------------------------===//
// SpMM (multi-RHS) kernels: X row-major NumCols x K, Y row-major NumRows x K.
//===----------------------------------------------------------------------===//

/// Strategy-free batched ELL: column-major packed sweep, runtime-K inner
/// loop, mirroring ellBasic. Padding entries multiply by zero harmlessly.
template <typename T>
void ellSpmmBasic(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y, index_t K) {
  std::memset(Y, 0,
              sizeof(T) * static_cast<std::size_t>(A.NumRows) *
                  static_cast<std::size_t>(K));
  for (index_t C = 0; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row) {
      const T V = Data[Row];
      const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Idx[Row]) * K;
      T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Row) * K;
      for (index_t J = 0; J < K; ++J)
        Yr[J] += V * Xr[J];
    }
  }
}

/// Register-tiled row-major (interchanged) pass over rows [RowBegin,
/// RowEnd): each row's K-wide accumulator lives in registers across the
/// packed width, with one Y store per row. \p Width bounds the packed
/// columns swept per row (the global padded width, or the row's own length
/// when the RowLen sidecar is present).
template <typename T, int K, typename WidthFn>
void ellSpmmRowsTiled(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                      T *SMAT_RESTRICT Y, index_t RowBegin, index_t RowEnd,
                      WidthFn Width) {
  const T *SMAT_RESTRICT Data = A.Data.data();
  const index_t *SMAT_RESTRICT Idx = A.Indices.data();
  for (index_t Row = RowBegin; Row < RowEnd; ++Row) {
    T Acc[K] = {};
    const index_t W = Width(Row);
    for (index_t C = 0; C < W; ++C) {
      const std::size_t I = static_cast<std::size_t>(C) * A.NumRows + Row;
      const T V = Data[I];
      const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Idx[I]) * K;
      for (int J = 0; J < K; ++J)
        Acc[J] += V * Xr[J];
    }
    T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Row) * K;
    for (int J = 0; J < K; ++J)
      Yr[J] = Acc[J];
  }
}

/// Runtime-K tail of the row-major pass.
template <typename T, typename WidthFn>
void ellSpmmRowsGeneric(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                        T *SMAT_RESTRICT Y, index_t K, index_t RowBegin,
                        index_t RowEnd, WidthFn Width) {
  const T *SMAT_RESTRICT Data = A.Data.data();
  const index_t *SMAT_RESTRICT Idx = A.Indices.data();
  for (index_t Row = RowBegin; Row < RowEnd; ++Row) {
    T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Row) * K;
    for (index_t J = 0; J < K; ++J)
      Yr[J] = T(0);
    const index_t W = Width(Row);
    for (index_t C = 0; C < W; ++C) {
      const std::size_t I = static_cast<std::size_t>(C) * A.NumRows + Row;
      const T V = Data[I];
      const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Idx[I]) * K;
      for (index_t J = 0; J < K; ++J)
        Yr[J] += V * Xr[J];
    }
  }
}

template <typename T, typename WidthFn>
void ellSpmmRowRange(const EllMatrix<T> &A, const T *X, T *Y, index_t K,
                     index_t RowBegin, index_t RowEnd, WidthFn Width) {
  switch (K) {
  case 2:
    return ellSpmmRowsTiled<T, 2>(A, X, Y, RowBegin, RowEnd, Width);
  case 4:
    return ellSpmmRowsTiled<T, 4>(A, X, Y, RowBegin, RowEnd, Width);
  case 8:
    return ellSpmmRowsTiled<T, 8>(A, X, Y, RowBegin, RowEnd, Width);
  case 16:
    return ellSpmmRowsTiled<T, 16>(A, X, Y, RowBegin, RowEnd, Width);
  default:
    return ellSpmmRowsGeneric(A, X, Y, K, RowBegin, RowEnd, Width);
  }
}

template <typename T>
void ellSpmmTiled(const EllMatrix<T> &A, const T *X, T *Y, index_t K) {
  ellSpmmRowRange(A, X, Y, K, 0, A.NumRows,
                  [&](index_t) { return A.Width; });
}

/// Row-blocked threading over the register-tiled row pass.
template <typename T>
void ellSpmmOmpRows(const EllMatrix<T> &A, const T *X, T *Y, index_t K) {
  constexpr index_t BlockRows = 128;
  const index_t M = A.NumRows;
  const index_t NumBlocks = (M + BlockRows - 1) / BlockRows;
#pragma omp parallel for schedule(static)
  for (index_t B = 0; B < NumBlocks; ++B)
    ellSpmmRowRange(A, X, Y, K, B * BlockRows,
                    std::min<index_t>(M, (B + 1) * BlockRows),
                    [&](index_t) { return A.Width; });
}

/// Sliced batched ELL: each row sweeps only its own length from the RowLen
/// sidecar (PrecondRowLengths), so skewed rows do not drag the whole block
/// through padding columns.
template <typename T>
void ellSpmmSliced(const EllMatrix<T> &A, const T *X, T *Y, index_t K) {
  const index_t *SMAT_RESTRICT RowLen = A.RowLen.data();
  ellSpmmRowRange(A, X, Y, K, 0, A.NumRows,
                  [RowLen](index_t Row) { return RowLen[Row]; });
}

/// Threaded sliced batched ELL: dynamic slice scheduling balances skewed
/// row lengths.
template <typename T>
void ellSpmmSlicedOmp(const EllMatrix<T> &A, const T *X, T *Y, index_t K) {
  const index_t *SMAT_RESTRICT RowLen = A.RowLen.data();
  const index_t NumSlices = (A.NumRows + EllSliceRows - 1) / EllSliceRows;
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t Slice = 0; Slice < NumSlices; ++Slice) {
    const index_t SliceBegin = Slice * EllSliceRows;
    const index_t SliceEnd =
        std::min<index_t>(SliceBegin + EllSliceRows, A.NumRows);
    ellSpmmRowRange(A, X, Y, K, SliceBegin, SliceEnd,
                    [RowLen](index_t Row) { return RowLen[Row]; });
  }
}

} // namespace
} // namespace smat

template <typename T>
std::vector<smat::Kernel<smat::EllKernelFn<T>>> smat::makeEllKernels() {
  return {
      {"ell_basic", OptNone, &ellBasic<T>},
      {"ell_simd", OptSimd, &ellSimd<T>},
      {"ell_rowmajor", OptInterchange, &ellRowMajor<T>},
      {"ell_unroll2", OptUnroll, &ellUnroll2<T>},
      {"ell_omp_rows", OptThreads | OptInterchange, &ellOmpRows<T>},
      {"ell_simd_unroll2", OptSimd | OptUnroll, &ellSimdUnroll2<T>},
      {"ell_prefetch", OptPrefetch, &ellPrefetch<T>},
      {"ell_sliced", OptLoadBalance, &ellSliced<T>, PrecondRowLengths},
      {"ell_sliced_omp", OptThreads | OptLoadBalance, &ellSlicedOmp<T>,
       PrecondRowLengths},
  };
}

template std::vector<smat::Kernel<smat::EllKernelFn<float>>>
smat::makeEllKernels<float>();
template std::vector<smat::Kernel<smat::EllKernelFn<double>>>
smat::makeEllKernels<double>();

template <typename T>
std::vector<smat::Kernel<smat::EllSpmmFn<T>>> smat::makeEllSpmmKernels() {
  return {
      {"ell_spmm_basic", OptNone, &ellSpmmBasic<T>},
      {"ell_spmm_tiled", OptUnroll | OptInterchange, &ellSpmmTiled<T>},
      {"ell_spmm_omp_rows", OptThreads | OptUnroll | OptInterchange,
       &ellSpmmOmpRows<T>},
      {"ell_spmm_sliced", OptUnroll | OptLoadBalance, &ellSpmmSliced<T>,
       PrecondRowLengths},
      {"ell_spmm_sliced_omp", OptThreads | OptUnroll | OptLoadBalance,
       &ellSpmmSlicedOmp<T>, PrecondRowLengths},
  };
}

template std::vector<smat::Kernel<smat::EllSpmmFn<float>>>
smat::makeEllSpmmKernels<float>();
template std::vector<smat::Kernel<smat::EllSpmmFn<double>>>
smat::makeEllSpmmKernels<double>();
