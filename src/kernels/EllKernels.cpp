//===- kernels/EllKernels.cpp - ELL SpMV kernel variants ------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// ELL y := A*x variants. The basic loop is the paper's Figure 2(d):
// column-of-the-packed-matrix outer loop, row inner loop. Padding entries
// are (value 0, column 0), so they can be multiplied unconditionally.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

namespace smat {
namespace {

template <typename T>
void ellZero(T *SMAT_RESTRICT Y, index_t N) {
  std::memset(Y, 0, sizeof(T) * static_cast<std::size_t>(N));
}

template <typename T>
void ellBasic(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  for (index_t C = 0; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data[Row] * X[Idx[Row]];
  }
}

/// Explicit vectorization of the column-major pass (contiguous loads from
/// Data/Indices, gather from X).
template <typename T>
void ellSimd(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
             T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  for (index_t C = 0; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
#pragma omp simd
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data[Row] * X[Idx[Row]];
  }
}

/// Loop interchange: per-row accumulation (one Y store per row, strided
/// loads from the packed matrix).
template <typename T>
void ellRowMajor(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t C = 0; C < A.Width; ++C) {
      std::size_t I = static_cast<std::size_t>(C) * A.NumRows + Row;
      Sum += A.Data[I] * X[A.Indices[I]];
    }
    Y[Row] = Sum;
  }
}

/// Column-major pass with two packed columns per sweep: halves Y traffic.
template <typename T>
void ellUnroll2(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  index_t C = 0;
  for (; C + 1 < A.Width; C += 2) {
    const T *SMAT_RESTRICT Data0 =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const T *SMAT_RESTRICT Data1 = Data0 + A.NumRows;
    const index_t *SMAT_RESTRICT Idx0 =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx1 = Idx0 + A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data0[Row] * X[Idx0[Row]] + Data1[Row] * X[Idx1[Row]];
  }
  for (; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data[Row] * X[Idx[Row]];
  }
}

/// Row-partitioned threading over the interchange (row-major) loop.
template <typename T>
void ellOmpRows(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
#pragma omp parallel for schedule(static)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t C = 0; C < A.Width; ++C) {
      std::size_t I = static_cast<std::size_t>(C) * A.NumRows + Row;
      Sum += A.Data[I] * X[A.Indices[I]];
    }
    Y[Row] = Sum;
  }
}

/// SIMD + unrolled column-major combination.
template <typename T>
void ellSimdUnroll2(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                    T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  index_t C = 0;
  for (; C + 1 < A.Width; C += 2) {
    const T *SMAT_RESTRICT Data0 =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const T *SMAT_RESTRICT Data1 = Data0 + A.NumRows;
    const index_t *SMAT_RESTRICT Idx0 =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx1 = Idx0 + A.NumRows;
#pragma omp simd
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data0[Row] * X[Idx0[Row]] + Data1[Row] * X[Idx1[Row]];
  }
  for (; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
#pragma omp simd
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      Y[Row] += Data[Row] * X[Idx[Row]];
  }
}

/// Row slice size of the sliced (load-balanced) kernels: big enough to keep
/// the column-major access pattern streaming, small enough that one long row
/// only pads its own slice.
constexpr index_t EllSliceRows = 64;

/// Sliced ELL (SELL-style): rows are processed in slices of EllSliceRows;
/// each slice sweeps only up to its own longest row (from the RowLen
/// sidecar, PrecondRowLengths) instead of the global padded Width, so a few
/// long rows no longer drag every slice through their padding columns.
template <typename T>
void ellSliced(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
               T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT RowLen = A.RowLen.data();
  for (index_t SliceBegin = 0; SliceBegin < A.NumRows;
       SliceBegin += EllSliceRows) {
    index_t SliceEnd = std::min<index_t>(SliceBegin + EllSliceRows, A.NumRows);
    index_t SliceWidth = 0;
    for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
      SliceWidth = std::max(SliceWidth, RowLen[Row]);
    for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
      Y[Row] = T(0);
    for (index_t C = 0; C < SliceWidth; ++C) {
      const T *SMAT_RESTRICT Data =
          A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
      const index_t *SMAT_RESTRICT Idx =
          A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
      for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
        Y[Row] += Data[Row] * X[Idx[Row]];
    }
  }
}

/// Threaded sliced ELL: slices are independent and their work is bounded by
/// their own width, so dynamic scheduling balances skewed row lengths.
template <typename T>
void ellSlicedOmp(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT RowLen = A.RowLen.data();
  index_t NumSlices = (A.NumRows + EllSliceRows - 1) / EllSliceRows;
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t Slice = 0; Slice < NumSlices; ++Slice) {
    index_t SliceBegin = Slice * EllSliceRows;
    index_t SliceEnd = std::min<index_t>(SliceBegin + EllSliceRows, A.NumRows);
    index_t SliceWidth = 0;
    for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
      SliceWidth = std::max(SliceWidth, RowLen[Row]);
    for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
      Y[Row] = T(0);
    for (index_t C = 0; C < SliceWidth; ++C) {
      const T *SMAT_RESTRICT Data =
          A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
      const index_t *SMAT_RESTRICT Idx =
          A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
      for (index_t Row = SliceBegin; Row < SliceEnd; ++Row)
        Y[Row] += Data[Row] * X[Idx[Row]];
    }
  }
}

/// Column-major pass with gather prefetch on the X stream.
template <typename T>
void ellPrefetch(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  ellZero(Y, A.NumRows);
  constexpr index_t Distance = 64;
  for (index_t C = 0; C < A.Width; ++C) {
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(C) * A.NumRows;
    const index_t *SMAT_RESTRICT Idx =
        A.Indices.data() + static_cast<std::size_t>(C) * A.NumRows;
    for (index_t Row = 0; Row < A.NumRows; ++Row) {
      if (Row + Distance < A.NumRows)
        __builtin_prefetch(&X[Idx[Row + Distance]], 0, 0);
      Y[Row] += Data[Row] * X[Idx[Row]];
    }
  }
}

} // namespace
} // namespace smat

template <typename T>
std::vector<smat::Kernel<smat::EllKernelFn<T>>> smat::makeEllKernels() {
  return {
      {"ell_basic", OptNone, &ellBasic<T>},
      {"ell_simd", OptSimd, &ellSimd<T>},
      {"ell_rowmajor", OptInterchange, &ellRowMajor<T>},
      {"ell_unroll2", OptUnroll, &ellUnroll2<T>},
      {"ell_omp_rows", OptThreads | OptInterchange, &ellOmpRows<T>},
      {"ell_simd_unroll2", OptSimd | OptUnroll, &ellSimdUnroll2<T>},
      {"ell_prefetch", OptPrefetch, &ellPrefetch<T>},
      {"ell_sliced", OptLoadBalance, &ellSliced<T>, PrecondRowLengths},
      {"ell_sliced_omp", OptThreads | OptLoadBalance, &ellSlicedOmp<T>,
       PrecondRowLengths},
  };
}

template std::vector<smat::Kernel<smat::EllKernelFn<float>>>
smat::makeEllKernels<float>();
template std::vector<smat::Kernel<smat::EllKernelFn<double>>>
smat::makeEllKernels<double>();
