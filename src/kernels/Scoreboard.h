//===- kernels/Scoreboard.h - Kernel search (paper Sec. 5.2) ----*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scoreboard kernel search of paper Section 5.2: all implementations of
/// a format are run on a probe matrix and recorded in a performance table;
/// each optimization strategy is scored +1/-1 (or neglected when the gap is
/// below 0.01 GFLOPS) by comparing implementations that differ in exactly
/// that strategy; the implementation whose strategy-score sum is highest is
/// selected as the format's optimal kernel on this architecture.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_KERNELS_SCOREBOARD_H
#define SMAT_KERNELS_SCOREBOARD_H

#include "kernels/KernelRegistry.h"
#include "matrix/Format.h"
#include "support/AlignedAlloc.h"
#include "support/Timer.h"

#include <array>
#include <string>
#include <vector>

namespace smat {

/// One row of the scoreboard's performance record table.
struct KernelMeasurement {
  std::string Name;
  unsigned Flags = 0;
  double Gflops = 0.0;
};

/// Output of the scoreboard algorithm for one format.
struct ScoreboardResult {
  /// Summed votes per optimization strategy bit.
  std::array<int, NumOptStrategies> StrategyScores{};
  /// Strategy bits whose measured effect never exceeded the neglect gap.
  std::array<bool, NumOptStrategies> Neglected{};
  /// Per-implementation score (sum of its strategies' scores).
  std::vector<int> KernelScores;
  /// Index of the selected implementation in the measurement list. Entries
  /// recorded at zero GFLOPS (unmeasured: precondition violation, fault or
  /// watchdog abort, expired budget) are never selected; when the whole
  /// table is unmeasured this stays the basic entry.
  int BestIndex = 0;
};

/// Runs the scoreboard algorithm over a measured performance table.
/// \p NoEffectGap is the paper's 0.01 (GFLOPS) neglect threshold.
/// The table must contain exactly one basic (Flags == 0) entry.
ScoreboardResult runScoreboard(const std::vector<KernelMeasurement> &Table,
                               double NoEffectGap = 0.01);

/// Measures every kernel of one format on one matrix and returns the
/// performance record table. MatrixT/FnT pairs are (CsrMatrix, CsrKernelFn)
/// and so on.
///
/// Resilience: a kernel that throws during measurement is recorded at zero
/// GFLOPS (never selectable) instead of aborting the search, and once
/// \p BudgetSeconds (0 = unlimited) of wall clock is spent the remaining
/// kernels are recorded unmeasured at zero GFLOPS. Indices always stay
/// aligned with the kernel list.
template <typename T, typename MatrixT, typename FnT>
std::vector<KernelMeasurement>
measureKernelTable(const std::vector<Kernel<FnT>> &Kernels, const MatrixT &A,
                   double MinSeconds = 2e-3, double BudgetSeconds = 0.0) {
  AlignedVector<T> X(static_cast<std::size_t>(A.NumCols), T(1));
  AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows), T(0));
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = T(0.01) * static_cast<T>(I % 100) - T(0.5);

  WallTimer Budget;
  std::vector<KernelMeasurement> Table;
  Table.reserve(Kernels.size());
  for (const Kernel<FnT> &K : Kernels) {
    // A kernel whose declared precondition the probe violates is never run:
    // it is recorded at zero GFLOPS (indices must stay aligned with the
    // kernel list) so the scoreboard cannot select it for this input.
    if (!kernelPrecondsHold(K.Preconds, A)) {
      Table.push_back({K.Name, K.Flags, 0.0});
      continue;
    }
    if (BudgetSeconds > 0.0 && Budget.seconds() >= BudgetSeconds) {
      Table.push_back({K.Name, K.Flags, 0.0});
      continue;
    }
    try {
      double Seconds = measureSecondsPerCall(
          [&] {
            fault::injectKernelFault("scoreboard.kernel");
            K.Fn(A, X.data(), Y.data());
          },
          MinSeconds);
      Table.push_back({K.Name, K.Flags,
                       spmvGflops(static_cast<std::uint64_t>(A.nnz()),
                                  Seconds)});
    } catch (...) {
      // A throwing kernel scores zero; the scoreboard will not pick it.
      Table.push_back({K.Name, K.Flags, 0.0});
    }
  }
  return Table;
}

/// Measures every SpMM kernel of one format on one matrix at batch width
/// \p Width and returns the performance record table. GFLOPS are effective:
/// 2 * nnz * Width flops per call. Same resilience contract as
/// measureKernelTable.
template <typename T, typename MatrixT, typename FnT>
std::vector<KernelMeasurement>
measureSpmmKernelTable(const std::vector<Kernel<FnT>> &Kernels,
                       const MatrixT &A, index_t Width,
                       double MinSeconds = 2e-3, double BudgetSeconds = 0.0) {
  AlignedVector<T> X(static_cast<std::size_t>(A.NumCols) *
                         static_cast<std::size_t>(Width),
                     T(1));
  AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows) *
                         static_cast<std::size_t>(Width),
                     T(0));
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = T(0.01) * static_cast<T>(I % 100) - T(0.5);

  WallTimer Budget;
  std::vector<KernelMeasurement> Table;
  Table.reserve(Kernels.size());
  for (const Kernel<FnT> &K : Kernels) {
    if (!kernelPrecondsHold(K.Preconds, A)) {
      Table.push_back({K.Name, K.Flags, 0.0});
      continue;
    }
    if (BudgetSeconds > 0.0 && Budget.seconds() >= BudgetSeconds) {
      Table.push_back({K.Name, K.Flags, 0.0});
      continue;
    }
    try {
      double Seconds = measureSecondsPerCall(
          [&] {
            fault::injectKernelFault("scoreboard.kernel");
            K.Fn(A, X.data(), Y.data(), Width);
          },
          MinSeconds);
      Table.push_back({K.Name, K.Flags,
                       spmvGflops(static_cast<std::uint64_t>(A.nnz()) *
                                      static_cast<std::uint64_t>(Width),
                                  Seconds)});
    } catch (...) {
      Table.push_back({K.Name, K.Flags, 0.0});
    }
  }
  return Table;
}

/// Row-length coefficient of variation (sqrt(var_RD)/aver_RD) above which
/// the runtime considers a matrix skewed and binds the skew-selected CSR
/// kernel (KernelSelection::BestSkewCsrKernel) instead of the general one.
inline constexpr double SkewRowCvThreshold = 1.0;

/// The register-tile widths the SpMM scoreboard searches. Other batch
/// widths route to a bucket via spmmWidthIndex.
inline constexpr std::array<index_t, 4> SpmmSearchWidths = {2, 4, 8, 16};
inline constexpr int NumSpmmWidths =
    static_cast<int>(SpmmSearchWidths.size());

/// Index into SpmmSearchWidths of the bucket serving batch width \p K:
/// the smallest searched width >= K, saturating at the widest tile.
inline int spmmWidthIndex(index_t K) {
  for (int W = 0; W < NumSpmmWidths; ++W)
    if (K <= SpmmSearchWidths[static_cast<std::size_t>(W)])
      return W;
  return NumSpmmWidths - 1;
}

/// The per-format kernels selected by the scoreboard on this machine.
struct KernelSelection {
  std::array<int, NumFormats> BestKernel{}; ///< Indexed by FormatKind.
  std::array<std::string, NumFormats> BestKernelName{};
  /// CSR kernel for heavily skewed row-length distributions, selected by a
  /// second scoreboard pass on a power-law probe (where the load-balance
  /// strategy can actually score). -1 = not searched; the runtime then uses
  /// BestKernel[CSR] everywhere.
  int BestSkewCsrKernel = -1;
  std::string BestSkewCsrKernelName;

  /// Per-width SpMM kernel picks, indexed [FormatKind][SpmmSearchWidths
  /// slot]. -1 = that width was not searched; the runtime then binds the
  /// basic SpMM kernel of the format. BSR has no SpMM family, so its row
  /// stays unsearched.
  std::array<std::array<int, NumSpmmWidths>, NumFormats> BestSpmmKernel = {
      {{{-1, -1, -1, -1}},
       {{-1, -1, -1, -1}},
       {{-1, -1, -1, -1}},
       {{-1, -1, -1, -1}},
       {{-1, -1, -1, -1}}}};
  std::array<std::array<std::string, NumSpmmWidths>, NumFormats>
      BestSpmmKernelName{};

  /// The CSR kernel index to bind for a matrix with row-length coefficient
  /// of variation \p RowCv.
  int csrKernelFor(double RowCv) const {
    int Base = BestKernel[static_cast<int>(FormatKind::CSR)];
    return (BestSkewCsrKernel >= 0 && RowCv > SkewRowCvThreshold)
               ? BestSkewCsrKernel
               : Base;
  }

  /// The SpMM kernel index (into the format's SpMM list) to bind for batch
  /// width \p K, or -1 when that width bucket was never searched.
  int spmmKernelFor(FormatKind Kind, index_t K) const {
    return BestSpmmKernel[static_cast<std::size_t>(Kind)]
                         [static_cast<std::size_t>(spmmWidthIndex(K))];
  }
};

/// Runs the full off-line kernel search: builds one format-friendly probe
/// matrix per format, measures every implementation, and applies the
/// scoreboard. Deterministic probes; \p MinSeconds controls measurement
/// cost. \p BudgetSeconds (0 = unlimited) bounds the whole search: the
/// budget is split evenly across the five formats, and a format whose share
/// expires keeps its basic kernel.
template <typename T>
KernelSelection searchOptimalKernels(double MinSeconds = 2e-3,
                                     double BudgetSeconds = 0.0);

extern template KernelSelection searchOptimalKernels<float>(double, double);
extern template KernelSelection searchOptimalKernels<double>(double, double);

} // namespace smat

#endif // SMAT_KERNELS_SCOREBOARD_H
