//===- kernels/KernelRegistry.h - SpMV kernel library -----------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SpMV kernel library (paper Figure 4, "Kernel Library"). Every format
/// has multiple implementations, each tagged with the set of optimization
/// strategies it applies. The scoreboard search (Scoreboard.h) scores the
/// strategies on the target architecture and picks the per-format optimal
/// kernel.
///
/// Kernel semantics: every kernel computes y := A * x (y is overwritten).
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_KERNELS_KERNELREGISTRY_H
#define SMAT_KERNELS_KERNELREGISTRY_H

#include "matrix/BsrMatrix.h"
#include "matrix/CooMatrix.h"
#include "matrix/CsrMatrix.h"
#include "matrix/DiaMatrix.h"
#include "matrix/EllMatrix.h"

#include <string>
#include <vector>

namespace smat {

/// Optimization strategies the kernel library explores (paper Section 5.2:
/// blocking/unrolling, SIMDization, software prefetching, branch
/// optimization, multi-threading and threading policy).
enum OptStrategy : unsigned {
  OptNone = 0,
  OptUnroll = 1u << 0,      ///< Inner-loop unrolling / multiple accumulators.
  OptSimd = 1u << 1,        ///< Explicit or pragma-driven vectorization.
  OptPrefetch = 1u << 2,    ///< Software prefetching of index/value streams.
  OptBranchFree = 1u << 3,  ///< Branch elimination / store deferral.
  OptThreads = 1u << 4,     ///< OpenMP multi-threading.
  OptDynSchedule = 1u << 5, ///< Dynamic (load-balanced) thread schedule.
  OptInterchange = 1u << 6, ///< Loop-order interchange (ELL row-major).
  OptLoadBalance = 1u << 7, ///< Nnz-balanced work partition (merge-path CSR
                            ///< split, sliced ELL) for skewed row lengths.
};

/// Number of distinct strategy bits above.
inline constexpr unsigned NumOptStrategies = 8;

/// Structural preconditions a kernel demands of its input beyond the
/// format's base invariants. Declared at registration so the binding layer
/// (and the scoreboard) can check them instead of trusting an assert.
enum KernelPrecond : unsigned {
  PrecondNone = 0,
  /// Row indices must be non-decreasing (COO row-split threading relies on
  /// binary search over Rows and disjoint per-thread output slices).
  PrecondMonotoneRows = 1u << 0,
  /// ELL storage must carry the optional per-row length sidecar
  /// (EllMatrix::RowLen); the sliced kernels use it to compute per-slice
  /// effective widths instead of sweeping the global padded width.
  PrecondRowLengths = 1u << 1,
};

/// Whether \p A satisfies the precondition set \p Preconds. The generic
/// overload accepts everything; formats with declared preconditions
/// specialize.
template <typename MatrixT>
inline bool kernelPrecondsHold(unsigned Preconds, const MatrixT &) {
  return Preconds == PrecondNone;
}

template <typename T>
inline bool kernelPrecondsHold(unsigned Preconds, const CooMatrix<T> &A) {
  if (Preconds & PrecondMonotoneRows)
    return A.hasMonotoneRows();
  return true;
}

template <typename T>
inline bool kernelPrecondsHold(unsigned Preconds, const EllMatrix<T> &A) {
  if (Preconds & PrecondRowLengths)
    return A.hasRowLengths();
  return true;
}

/// \returns a short name for strategy bit \p Bit (0-based).
const char *optStrategyName(unsigned Bit);

/// \returns a "+"-joined list of the strategies in \p Flags, or "basic".
std::string optFlagsString(unsigned Flags);

template <typename T>
using CsrKernelFn = void (*)(const CsrMatrix<T> &, const T *, T *);
template <typename T>
using CooKernelFn = void (*)(const CooMatrix<T> &, const T *, T *);
template <typename T>
using DiaKernelFn = void (*)(const DiaMatrix<T> &, const T *, T *);
template <typename T>
using EllKernelFn = void (*)(const EllMatrix<T> &, const T *, T *);
template <typename T>
using BsrKernelFn = void (*)(const BsrMatrix<T> &, const T *, T *);

/// Batched (multi-RHS) SpMM kernels: Y := A * X where X is a row-major
/// dense block of K right-hand sides (NumCols x K) and Y is the row-major
/// result block (NumRows x K). Keeping the K values of one matrix row
/// contiguous is what lets the register-tiled variants hold the whole tile
/// in registers while the matrix is streamed once.
template <typename T>
using CsrSpmmFn = void (*)(const CsrMatrix<T> &, const T *, T *, index_t);
template <typename T>
using CooSpmmFn = void (*)(const CooMatrix<T> &, const T *, T *, index_t);
template <typename T>
using DiaSpmmFn = void (*)(const DiaMatrix<T> &, const T *, T *, index_t);
template <typename T>
using EllSpmmFn = void (*)(const EllMatrix<T> &, const T *, T *, index_t);

/// One kernel-library entry: an implementation plus its strategy tag set
/// and any structural preconditions it demands of the input.
template <typename FnT> struct Kernel {
  const char *Name;
  unsigned Flags;
  FnT Fn;
  unsigned Preconds = PrecondNone;
};

/// Builders defined by the per-format kernel translation units. Index 0 is
/// always the basic (strategy-free) implementation the scoreboard compares
/// against.
template <typename T> std::vector<Kernel<CsrKernelFn<T>>> makeCsrKernels();
template <typename T> std::vector<Kernel<CooKernelFn<T>>> makeCooKernels();
template <typename T> std::vector<Kernel<DiaKernelFn<T>>> makeDiaKernels();
template <typename T> std::vector<Kernel<EllKernelFn<T>>> makeEllKernels();
template <typename T> std::vector<Kernel<BsrKernelFn<T>>> makeBsrKernels();

/// SpMM (batched) kernel builders. Same index-0-is-basic convention.
template <typename T> std::vector<Kernel<CsrSpmmFn<T>>> makeCsrSpmmKernels();
template <typename T> std::vector<Kernel<CooSpmmFn<T>>> makeCooSpmmKernels();
template <typename T> std::vector<Kernel<DiaSpmmFn<T>>> makeDiaSpmmKernels();
template <typename T> std::vector<Kernel<EllSpmmFn<T>>> makeEllSpmmKernels();

/// The full kernel library for one value type.
template <typename T> struct KernelTable {
  std::vector<Kernel<CsrKernelFn<T>>> Csr;
  std::vector<Kernel<CooKernelFn<T>>> Coo;
  std::vector<Kernel<DiaKernelFn<T>>> Dia;
  std::vector<Kernel<EllKernelFn<T>>> Ell;
  std::vector<Kernel<BsrKernelFn<T>>> Bsr;

  /// Batched (SpMM) implementations. BSR has no dedicated SpMM family; the
  /// binding layer falls back to column-at-a-time SpMV there.
  std::vector<Kernel<CsrSpmmFn<T>>> CsrSpmm;
  std::vector<Kernel<CooSpmmFn<T>>> CooSpmm;
  std::vector<Kernel<DiaSpmmFn<T>>> DiaSpmm;
  std::vector<Kernel<EllSpmmFn<T>>> EllSpmm;

  /// Total number of implementations across all formats.
  std::size_t size() const {
    return Csr.size() + Coo.size() + Dia.size() + Ell.size() + Bsr.size() +
           CsrSpmm.size() + CooSpmm.size() + DiaSpmm.size() + EllSpmm.size();
  }
};

/// \returns the process-wide kernel table for \p T (float or double);
/// constructed once on first use.
template <typename T> const KernelTable<T> &kernelTable();

/// \returns the basic (strategy-free) CSR kernel, index 0 of the CSR list.
/// This is the degradation ladder's BasicKernel rung: it has no structural
/// preconditions and works on any validated CSR matrix.
template <typename T> const Kernel<CsrKernelFn<T>> &basicCsrKernel() {
  return kernelTable<T>().Csr.front();
}

/// \returns the basic (strategy-free) CSR SpMM kernel, index 0 of the CSR
/// SpMM list. Precondition-free, so it is always bindable.
template <typename T> const Kernel<CsrSpmmFn<T>> &basicCsrSpmmKernel() {
  return kernelTable<T>().CsrSpmm.front();
}

extern template const KernelTable<float> &kernelTable<float>();
extern template const KernelTable<double> &kernelTable<double>();

} // namespace smat

#endif // SMAT_KERNELS_KERNELREGISTRY_H
