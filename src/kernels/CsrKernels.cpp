//===- kernels/CsrKernels.cpp - CSR SpMV kernel variants ------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// CSR y := A*x variants. The basic loop is the paper's Figure 2(a); the
// variants cross the optimization strategies the scoreboard scores.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "support/Compiler.h"

#include <type_traits>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace smat {
namespace {

template <typename T>
void csrBasic(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += A.Values[I] * X[A.ColIdx[I]];
    Y[Row] = Sum;
  }
}

/// Four independent accumulators hide the FMA latency chain.
template <typename T>
void csrUnroll4(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    T S0 = T(0), S1 = T(0), S2 = T(0), S3 = T(0);
    for (; I + 3 < E; I += 4) {
      S0 += Val[I + 0] * X[Col[I + 0]];
      S1 += Val[I + 1] * X[Col[I + 1]];
      S2 += Val[I + 2] * X[Col[I + 2]];
      S3 += Val[I + 3] * X[Col[I + 3]];
    }
    for (; I < E; ++I)
      S0 += Val[I] * X[Col[I]];
    Y[Row] = (S0 + S1) + (S2 + S3);
  }
}

/// Software-prefetches the column/value streams a fixed distance ahead.
template <typename T>
void csrPrefetch(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  constexpr index_t Distance = 64;
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  index_t Nnz = static_cast<index_t>(A.nnz());
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I) {
      if (I + Distance < Nnz) {
        __builtin_prefetch(&Val[I + Distance], 0, 0);
        __builtin_prefetch(&Col[I + Distance], 0, 0);
        __builtin_prefetch(&X[Col[I + Distance]], 0, 0);
      }
      Sum += Val[I] * X[Col[I]];
    }
    Y[Row] = Sum;
  }
}

/// Compiler-driven vectorization of the row reduction.
template <typename T>
void csrSimd(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
             T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    index_t Begin = A.RowPtr[Row], End = A.RowPtr[Row + 1];
#pragma omp simd reduction(+ : Sum)
    for (index_t I = Begin; I < End; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

#if defined(__AVX2__)
/// AVX2 gather kernel, double precision: 4-wide FMA over the row.
void csrAvx2D(const CsrMatrix<double> &A, const double *SMAT_RESTRICT X,
              double *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const double *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    __m256d Acc = _mm256_setzero_pd();
    for (; I + 3 < E; I += 4) {
      __m128i Idx = _mm_loadu_si128(reinterpret_cast<const __m128i *>(&Col[I]));
      __m256d Xs = _mm256_i32gather_pd(X, Idx, 8);
      __m256d Vs = _mm256_loadu_pd(&Val[I]);
      Acc = _mm256_fmadd_pd(Vs, Xs, Acc);
    }
    alignas(32) double Lanes[4];
    _mm256_store_pd(Lanes, Acc);
    double Sum = (Lanes[0] + Lanes[1]) + (Lanes[2] + Lanes[3]);
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// AVX2 gather kernel, single precision: 8-wide FMA over the row.
void csrAvx2F(const CsrMatrix<float> &A, const float *SMAT_RESTRICT X,
              float *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const float *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    __m256 Acc = _mm256_setzero_ps();
    for (; I + 7 < E; I += 8) {
      __m256i Idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(&Col[I]));
      __m256 Xs = _mm256_i32gather_ps(X, Idx, 4);
      __m256 Vs = _mm256_loadu_ps(&Val[I]);
      Acc = _mm256_fmadd_ps(Vs, Xs, Acc);
    }
    alignas(32) float Lanes[8];
    _mm256_store_ps(Lanes, Acc);
    float Sum = ((Lanes[0] + Lanes[1]) + (Lanes[2] + Lanes[3])) +
                ((Lanes[4] + Lanes[5]) + (Lanes[6] + Lanes[7]));
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}
#endif // __AVX2__

#if defined(__AVX512F__)
/// AVX-512 gather kernel, double precision: 8-wide FMA over the row.
void csrAvx512D(const CsrMatrix<double> &A, const double *SMAT_RESTRICT X,
                double *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const double *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    __m512d Acc = _mm512_setzero_pd();
    for (; I + 7 < E; I += 8) {
      __m256i Idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(&Col[I]));
      __m512d Xs = _mm512_i32gather_pd(Idx, X, 8);
      __m512d Vs = _mm512_loadu_pd(&Val[I]);
      Acc = _mm512_fmadd_pd(Vs, Xs, Acc);
    }
    double Sum = _mm512_reduce_add_pd(Acc);
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// AVX-512 gather kernel, single precision: 16-wide FMA over the row.
void csrAvx512F(const CsrMatrix<float> &A, const float *SMAT_RESTRICT X,
                float *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const float *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    __m512 Acc = _mm512_setzero_ps();
    for (; I + 15 < E; I += 16) {
      __m512i Idx =
          _mm512_loadu_si512(reinterpret_cast<const void *>(&Col[I]));
      __m512 Xs = _mm512_i32gather_ps(Idx, X, 4);
      __m512 Vs = _mm512_loadu_ps(&Val[I]);
      Acc = _mm512_fmadd_ps(Vs, Xs, Acc);
    }
    float Sum = _mm512_reduce_add_ps(Acc);
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}
#endif // __AVX512F__

/// Guided scheduling: a third threading policy for skewed degree mixes.
template <typename T>
void csrOmpGuided(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel for schedule(guided)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// Static row partitioning across threads.
template <typename T>
void csrOmpStatic(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel for schedule(static)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// Dynamic chunked scheduling: tolerates skewed row degrees.
template <typename T>
void csrOmpDynamic(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                   T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel for schedule(dynamic, 256)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// Threads + unrolled accumulators.
template <typename T>
void csrOmpUnroll(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel for schedule(static)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    T S0 = T(0), S1 = T(0), S2 = T(0), S3 = T(0);
    for (; I + 3 < E; I += 4) {
      S0 += Val[I + 0] * X[Col[I + 0]];
      S1 += Val[I + 1] * X[Col[I + 1]];
      S2 += Val[I + 2] * X[Col[I + 2]];
      S3 += Val[I + 3] * X[Col[I + 3]];
    }
    for (; I < E; ++I)
      S0 += Val[I] * X[Col[I]];
    Y[Row] = (S0 + S1) + (S2 + S3);
  }
}

} // namespace
} // namespace smat

template <typename T>
std::vector<smat::Kernel<smat::CsrKernelFn<T>>> smat::makeCsrKernels() {
  std::vector<Kernel<CsrKernelFn<T>>> Kernels = {
      {"csr_basic", OptNone, &csrBasic<T>},
      {"csr_unroll4", OptUnroll, &csrUnroll4<T>},
      {"csr_simd", OptSimd, &csrSimd<T>},
      {"csr_prefetch", OptPrefetch, &csrPrefetch<T>},
      {"csr_omp_static", OptThreads, &csrOmpStatic<T>},
      {"csr_omp_dynamic", OptThreads | OptDynSchedule, &csrOmpDynamic<T>},
      {"csr_omp_guided", OptThreads | OptDynSchedule, &csrOmpGuided<T>},
      {"csr_omp_unroll", OptThreads | OptUnroll, &csrOmpUnroll<T>},
  };
#if defined(__AVX2__)
  if constexpr (std::is_same_v<T, double>)
    Kernels.push_back({"csr_avx2", OptSimd | OptUnroll, &csrAvx2D});
  else if constexpr (std::is_same_v<T, float>)
    Kernels.push_back({"csr_avx2", OptSimd | OptUnroll, &csrAvx2F});
#endif
#if defined(__AVX512F__)
  if constexpr (std::is_same_v<T, double>)
    Kernels.push_back({"csr_avx512", OptSimd | OptUnroll, &csrAvx512D});
  else if constexpr (std::is_same_v<T, float>)
    Kernels.push_back({"csr_avx512", OptSimd | OptUnroll, &csrAvx512F});
#endif
  return Kernels;
}

template std::vector<smat::Kernel<smat::CsrKernelFn<float>>>
smat::makeCsrKernels<float>();
template std::vector<smat::Kernel<smat::CsrKernelFn<double>>>
smat::makeCsrKernels<double>();
