//===- kernels/CsrKernels.cpp - CSR SpMV kernel variants ------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// CSR y := A*x variants. The basic loop is the paper's Figure 2(a); the
// variants cross the optimization strategies the scoreboard scores.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "support/Compiler.h"

#include <algorithm>
#include <type_traits>
#include <vector>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#ifdef _OPENMP
#include <omp.h>
#endif

namespace smat {
namespace {

template <typename T>
void csrBasic(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += A.Values[I] * X[A.ColIdx[I]];
    Y[Row] = Sum;
  }
}

/// Four independent accumulators hide the FMA latency chain.
template <typename T>
void csrUnroll4(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    T S0 = T(0), S1 = T(0), S2 = T(0), S3 = T(0);
    for (; I + 3 < E; I += 4) {
      S0 += Val[I + 0] * X[Col[I + 0]];
      S1 += Val[I + 1] * X[Col[I + 1]];
      S2 += Val[I + 2] * X[Col[I + 2]];
      S3 += Val[I + 3] * X[Col[I + 3]];
    }
    for (; I < E; ++I)
      S0 += Val[I] * X[Col[I]];
    Y[Row] = (S0 + S1) + (S2 + S3);
  }
}

/// Software-prefetches the column/value streams a fixed distance ahead.
/// Entries at I >= Nnz - Distance have no in-bounds prefetch target, so each
/// row is split at that point into a prefetching main loop and a plain tail
/// instead of paying a bounds check on every nonzero.
template <typename T>
void csrPrefetch(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  constexpr index_t Distance = 64;
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  index_t Nnz = static_cast<index_t>(A.nnz());
  const index_t PrefetchEnd = Nnz > Distance ? Nnz - Distance : 0;
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    index_t I = A.RowPtr[Row];
    const index_t E = A.RowPtr[Row + 1];
    for (index_t P = std::min(E, PrefetchEnd); I < P; ++I) {
      __builtin_prefetch(&Val[I + Distance], 0, 0);
      __builtin_prefetch(&Col[I + Distance], 0, 0);
      __builtin_prefetch(&X[Col[I + Distance]], 0, 0);
      Sum += Val[I] * X[Col[I]];
    }
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// Compiler-driven vectorization of the row reduction.
template <typename T>
void csrSimd(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
             T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    index_t Begin = A.RowPtr[Row], End = A.RowPtr[Row + 1];
#pragma omp simd reduction(+ : Sum)
    for (index_t I = Begin; I < End; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

#if defined(__AVX2__)
/// AVX2 gather kernel, double precision: 4-wide FMA over the row.
void csrAvx2D(const CsrMatrix<double> &A, const double *SMAT_RESTRICT X,
              double *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const double *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    __m256d Acc = _mm256_setzero_pd();
    for (; I + 3 < E; I += 4) {
      __m128i Idx = _mm_loadu_si128(reinterpret_cast<const __m128i *>(&Col[I]));
      __m256d Xs = _mm256_i32gather_pd(X, Idx, 8);
      __m256d Vs = _mm256_loadu_pd(&Val[I]);
      Acc = _mm256_fmadd_pd(Vs, Xs, Acc);
    }
    alignas(32) double Lanes[4];
    _mm256_store_pd(Lanes, Acc);
    double Sum = (Lanes[0] + Lanes[1]) + (Lanes[2] + Lanes[3]);
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// AVX2 gather kernel, single precision: 8-wide FMA over the row.
void csrAvx2F(const CsrMatrix<float> &A, const float *SMAT_RESTRICT X,
              float *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const float *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    __m256 Acc = _mm256_setzero_ps();
    for (; I + 7 < E; I += 8) {
      __m256i Idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(&Col[I]));
      __m256 Xs = _mm256_i32gather_ps(X, Idx, 4);
      __m256 Vs = _mm256_loadu_ps(&Val[I]);
      Acc = _mm256_fmadd_ps(Vs, Xs, Acc);
    }
    alignas(32) float Lanes[8];
    _mm256_store_ps(Lanes, Acc);
    float Sum = ((Lanes[0] + Lanes[1]) + (Lanes[2] + Lanes[3])) +
                ((Lanes[4] + Lanes[5]) + (Lanes[6] + Lanes[7]));
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}
#endif // __AVX2__

#if defined(__AVX512F__)
/// AVX-512 gather kernel, double precision: 8-wide FMA over the row.
void csrAvx512D(const CsrMatrix<double> &A, const double *SMAT_RESTRICT X,
                double *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const double *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    __m512d Acc = _mm512_setzero_pd();
    for (; I + 7 < E; I += 8) {
      __m256i Idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(&Col[I]));
      __m512d Xs = _mm512_i32gather_pd(Idx, X, 8);
      __m512d Vs = _mm512_loadu_pd(&Val[I]);
      Acc = _mm512_fmadd_pd(Vs, Xs, Acc);
    }
    double Sum = _mm512_reduce_add_pd(Acc);
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// AVX-512 gather kernel, single precision: 16-wide FMA over the row.
void csrAvx512F(const CsrMatrix<float> &A, const float *SMAT_RESTRICT X,
                float *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const float *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    __m512 Acc = _mm512_setzero_ps();
    for (; I + 15 < E; I += 16) {
      __m512i Idx =
          _mm512_loadu_si512(reinterpret_cast<const void *>(&Col[I]));
      __m512 Xs = _mm512_i32gather_ps(Idx, X, 4);
      __m512 Vs = _mm512_loadu_ps(&Val[I]);
      Acc = _mm512_fmadd_ps(Vs, Xs, Acc);
    }
    float Sum = _mm512_reduce_add_ps(Acc);
    for (; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}
#endif // __AVX512F__

/// Guided scheduling: a third threading policy for skewed degree mixes.
template <typename T>
void csrOmpGuided(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel for schedule(guided)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// Static row partitioning across threads.
template <typename T>
void csrOmpStatic(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel for schedule(static)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// Dynamic chunked scheduling: tolerates skewed row degrees.
template <typename T>
void csrOmpDynamic(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                   T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel for schedule(dynamic, 256)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += Val[I] * X[Col[I]];
    Y[Row] = Sum;
  }
}

/// Threads + unrolled accumulators.
template <typename T>
void csrOmpUnroll(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel for schedule(static)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1];
    T S0 = T(0), S1 = T(0), S2 = T(0), S3 = T(0);
    for (; I + 3 < E; I += 4) {
      S0 += Val[I + 0] * X[Col[I + 0]];
      S1 += Val[I + 1] * X[Col[I + 1]];
      S2 += Val[I + 2] * X[Col[I + 2]];
      S3 += Val[I + 3] * X[Col[I + 3]];
    }
    for (; I < E; ++I)
      S0 += Val[I] * X[Col[I]];
    Y[Row] = (S0 + S1) + (S2 + S3);
  }
}

inline int csrMaxThreads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Nnz-balanced (merge-path-style) parallel CSR. The row-split OpenMP
/// kernels above assign rows to threads, so one dense row among short ones
/// serializes the whole SpMV on the unlucky thread. This kernel splits the
/// *entry* stream into equal chunks instead: chunk boundaries B_t = t*nnz/T
/// are located in RowPtr by binary search, giving each thread a row range
/// whose nonzero count is balanced by construction; a long row crossing a
/// boundary is split, each trespassing thread computing a partial sum
/// ("carry") that is combined serially after the parallel region.
template <typename T>
void csrNnzSplit(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  const index_t *SMAT_RESTRICT RowPtr = A.RowPtr.data();
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  const index_t M = A.NumRows;
  const std::int64_t Nnz = A.nnz();
  if (M == 0)
    return;

  // Keep at least ~512 entries per chunk so tiny matrices do not pay the
  // carry machinery for nothing.
  constexpr std::int64_t MinEntriesPerChunk = 512;
  std::int64_t Chunks =
      std::min<std::int64_t>(csrMaxThreads(),
                             std::max<std::int64_t>(
                                 1, Nnz / MinEntriesPerChunk));
  if (Chunks <= 1) {
    for (index_t Row = 0; Row < M; ++Row) {
      T Sum = T(0);
      for (index_t I = RowPtr[Row], E = RowPtr[Row + 1]; I < E; ++I)
        Sum += Val[I] * X[Col[I]];
      Y[Row] = Sum;
    }
    return;
  }

  // Chunk t owns entries [Begin[t], Begin[t+1]) and rows [Split[t],
  // Split[t+1]): Split[t] is the row containing entry Begin[t] (the last
  // row starting at or before it when empty rows pile up on the boundary).
  // Endpoints are forced to [0, M] so leading/trailing empty rows are owned
  // (and zeroed) too.
  std::vector<std::int64_t> Begin(static_cast<std::size_t>(Chunks) + 1);
  std::vector<index_t> Split(static_cast<std::size_t>(Chunks) + 1);
  Begin[0] = 0;
  Split[0] = 0;
  Begin[static_cast<std::size_t>(Chunks)] = Nnz;
  Split[static_cast<std::size_t>(Chunks)] = M;
  for (std::int64_t C = 1; C < Chunks; ++C) {
    std::int64_t B = Nnz * C / Chunks;
    Begin[static_cast<std::size_t>(C)] = B;
    Split[static_cast<std::size_t>(C)] = static_cast<index_t>(
        std::upper_bound(RowPtr, RowPtr + M + 1, static_cast<index_t>(B)) -
        RowPtr - 1);
  }

  // Carry[t]: chunk t's partial sum for row Split[t+1], whose tail lies in
  // a later chunk. At most one carry per chunk.
  std::vector<T> Carry(static_cast<std::size_t>(Chunks), T(0));

#pragma omp parallel for schedule(static, 1)
  for (std::int64_t C = 0; C < Chunks; ++C) {
    const std::int64_t ChunkBegin = Begin[static_cast<std::size_t>(C)];
    const std::int64_t ChunkEnd = Begin[static_cast<std::size_t>(C) + 1];
    const index_t RowBegin = Split[static_cast<std::size_t>(C)];
    const index_t RowEnd = Split[static_cast<std::size_t>(C) + 1];

    // Owned rows: rows strictly inside the chunk are complete; the first
    // row's head (if any) arrives later as earlier chunks' carries.
    for (index_t Row = RowBegin; Row < RowEnd; ++Row) {
      std::int64_t I = std::max<std::int64_t>(RowPtr[Row], ChunkBegin);
      const std::int64_t E = RowPtr[Row + 1];
      T Sum = T(0);
      for (; I < E; ++I)
        Sum += Val[I] * X[Col[I]];
      Y[Row] = Sum;
    }

    // Boundary row RowEnd: the head inside this chunk is a carry for the
    // chunk that owns the row's end. The last chunk has RowEnd == M.
    if (RowEnd < M) {
      std::int64_t I = std::max<std::int64_t>(RowPtr[RowEnd], ChunkBegin);
      T Sum = T(0);
      for (; I < ChunkEnd; ++I)
        Sum += Val[I] * X[Col[I]];
      Carry[static_cast<std::size_t>(C)] = Sum;
    }
  }

  // Serial carry combine: owners have already written Y[Row] = partial, so
  // the boundary-row heads just accumulate on top.
  for (std::int64_t C = 0; C < Chunks; ++C) {
    const index_t Row = Split[static_cast<std::size_t>(C) + 1];
    if (Row < M)
      Y[Row] += Carry[static_cast<std::size_t>(C)];
  }
}

//===----------------------------------------------------------------------===//
// SpMM (multi-RHS) kernels: Y := A * X with X row-major NumCols x K and Y
// row-major NumRows x K. The K values of one X/Y row are contiguous, so a
// compile-time K keeps the whole accumulator tile in registers while the
// matrix streams once for all K vectors.
//===----------------------------------------------------------------------===//

/// Accumulates entries [I, E) into a K-wide register tile and stores it to
/// \p Out (which must hold K values).
template <typename T, int K>
inline void csrSpmmPartialTiled(const index_t *SMAT_RESTRICT Col,
                                const T *SMAT_RESTRICT Val, std::int64_t I,
                                std::int64_t E, const T *SMAT_RESTRICT X,
                                T *SMAT_RESTRICT Out) {
  T Acc[K] = {};
  for (; I < E; ++I) {
    const T V = Val[I];
    const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Col[I]) * K;
    for (int J = 0; J < K; ++J)
      Acc[J] += V * Xr[J];
  }
  for (int J = 0; J < K; ++J)
    Out[J] = Acc[J];
}

/// Runtime-K tail path for widths outside the tiled set {2, 4, 8, 16}.
template <typename T>
inline void csrSpmmPartialGeneric(const index_t *SMAT_RESTRICT Col,
                                  const T *SMAT_RESTRICT Val, std::int64_t I,
                                  std::int64_t E, const T *SMAT_RESTRICT X,
                                  T *SMAT_RESTRICT Out, index_t K) {
  for (index_t J = 0; J < K; ++J)
    Out[J] = T(0);
  for (; I < E; ++I) {
    const T V = Val[I];
    const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Col[I]) * K;
    for (index_t J = 0; J < K; ++J)
      Out[J] += V * Xr[J];
  }
}

template <typename T>
inline void csrSpmmPartial(const index_t *SMAT_RESTRICT Col,
                           const T *SMAT_RESTRICT Val, std::int64_t I,
                           std::int64_t E, const T *SMAT_RESTRICT X,
                           T *SMAT_RESTRICT Out, index_t K) {
  switch (K) {
  case 2:
    return csrSpmmPartialTiled<T, 2>(Col, Val, I, E, X, Out);
  case 4:
    return csrSpmmPartialTiled<T, 4>(Col, Val, I, E, X, Out);
  case 8:
    return csrSpmmPartialTiled<T, 8>(Col, Val, I, E, X, Out);
  case 16:
    return csrSpmmPartialTiled<T, 16>(Col, Val, I, E, X, Out);
  default:
    return csrSpmmPartialGeneric(Col, Val, I, E, X, Out, K);
  }
}

template <typename T, int K>
void csrSpmmRowRangeTiled(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                          T *SMAT_RESTRICT Y, index_t RowBegin,
                          index_t RowEnd) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = RowBegin; Row < RowEnd; ++Row)
    csrSpmmPartialTiled<T, K>(Col, Val, A.RowPtr[Row], A.RowPtr[Row + 1], X,
                              Y + static_cast<std::size_t>(Row) * K);
}

template <typename T>
void csrSpmmRowRangeGeneric(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                            T *SMAT_RESTRICT Y, index_t K, index_t RowBegin,
                            index_t RowEnd) {
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (index_t Row = RowBegin; Row < RowEnd; ++Row)
    csrSpmmPartialGeneric(Col, Val, A.RowPtr[Row], A.RowPtr[Row + 1], X,
                          Y + static_cast<std::size_t>(Row) * K, K);
}

/// Width dispatch hoisted to the row-range level so short rows do not pay a
/// per-row switch.
template <typename T>
void csrSpmmRowRange(const CsrMatrix<T> &A, const T *X, T *Y, index_t K,
                     index_t RowBegin, index_t RowEnd) {
  switch (K) {
  case 2:
    return csrSpmmRowRangeTiled<T, 2>(A, X, Y, RowBegin, RowEnd);
  case 4:
    return csrSpmmRowRangeTiled<T, 4>(A, X, Y, RowBegin, RowEnd);
  case 8:
    return csrSpmmRowRangeTiled<T, 8>(A, X, Y, RowBegin, RowEnd);
  case 16:
    return csrSpmmRowRangeTiled<T, 16>(A, X, Y, RowBegin, RowEnd);
  default:
    return csrSpmmRowRangeGeneric(A, X, Y, K, RowBegin, RowEnd);
  }
}

/// Strategy-free reference: runtime-K inner loop, serial rows.
template <typename T>
void csrSpmmBasic(const CsrMatrix<T> &A, const T *X, T *Y, index_t K) {
  csrSpmmRowRangeGeneric(A, X, Y, K, 0, A.NumRows);
}

/// Serial register-tiled variant.
template <typename T>
void csrSpmmTiled(const CsrMatrix<T> &A, const T *X, T *Y, index_t K) {
  csrSpmmRowRange(A, X, Y, K, 0, A.NumRows);
}

/// Row-split threading over fixed-size row blocks; each block runs the
/// register-tiled range kernel. Collapses to a serial block loop without
/// OpenMP.
template <typename T>
void csrSpmmOmpRowSplit(const CsrMatrix<T> &A, const T *X, T *Y, index_t K) {
  constexpr index_t BlockRows = 64;
  const index_t M = A.NumRows;
  const index_t NumBlocks = (M + BlockRows - 1) / BlockRows;
#pragma omp parallel for schedule(static)
  for (index_t B = 0; B < NumBlocks; ++B)
    csrSpmmRowRange(A, X, Y, K, B * BlockRows,
                    std::min<index_t>(M, (B + 1) * BlockRows));
}

/// Nnz-balanced SpMM: same merge-path chunk/carry partition as csrNnzSplit,
/// but each carry is a K-wide partial tile instead of a scalar.
template <typename T>
void csrSpmmNnzSplit(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
                     T *SMAT_RESTRICT Y, index_t K) {
  const index_t *SMAT_RESTRICT RowPtr = A.RowPtr.data();
  const index_t *SMAT_RESTRICT Col = A.ColIdx.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  const index_t M = A.NumRows;
  const std::int64_t Nnz = A.nnz();
  if (M == 0)
    return;

  constexpr std::int64_t MinEntriesPerChunk = 512;
  std::int64_t Chunks = std::min<std::int64_t>(
      csrMaxThreads(),
      std::max<std::int64_t>(1, Nnz / MinEntriesPerChunk));
  if (Chunks <= 1) {
    csrSpmmRowRange(A, X, Y, K, 0, M);
    return;
  }

  std::vector<std::int64_t> Begin(static_cast<std::size_t>(Chunks) + 1);
  std::vector<index_t> Split(static_cast<std::size_t>(Chunks) + 1);
  Begin[0] = 0;
  Split[0] = 0;
  Begin[static_cast<std::size_t>(Chunks)] = Nnz;
  Split[static_cast<std::size_t>(Chunks)] = M;
  for (std::int64_t C = 1; C < Chunks; ++C) {
    std::int64_t B = Nnz * C / Chunks;
    Begin[static_cast<std::size_t>(C)] = B;
    Split[static_cast<std::size_t>(C)] = static_cast<index_t>(
        std::upper_bound(RowPtr, RowPtr + M + 1, static_cast<index_t>(B)) -
        RowPtr - 1);
  }

  // Carry[C*K .. C*K+K): chunk C's partial tile for boundary row
  // Split[C+1].
  std::vector<T> Carry(static_cast<std::size_t>(Chunks) * K, T(0));

#pragma omp parallel for schedule(static, 1)
  for (std::int64_t C = 0; C < Chunks; ++C) {
    const std::int64_t ChunkBegin = Begin[static_cast<std::size_t>(C)];
    const std::int64_t ChunkEnd = Begin[static_cast<std::size_t>(C) + 1];
    const index_t RowBegin = Split[static_cast<std::size_t>(C)];
    const index_t RowEnd = Split[static_cast<std::size_t>(C) + 1];

    for (index_t Row = RowBegin; Row < RowEnd; ++Row) {
      const std::int64_t I = std::max<std::int64_t>(RowPtr[Row], ChunkBegin);
      csrSpmmPartial(Col, Val, I, RowPtr[Row + 1], X,
                     Y + static_cast<std::size_t>(Row) * K, K);
    }

    if (RowEnd < M) {
      const std::int64_t I =
          std::max<std::int64_t>(RowPtr[RowEnd], ChunkBegin);
      csrSpmmPartial(Col, Val, I, ChunkEnd, X,
                     Carry.data() + static_cast<std::size_t>(C) * K, K);
    }
  }

  for (std::int64_t C = 0; C < Chunks; ++C) {
    const index_t Row = Split[static_cast<std::size_t>(C) + 1];
    if (Row < M) {
      const T *SMAT_RESTRICT Part =
          Carry.data() + static_cast<std::size_t>(C) * K;
      T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Row) * K;
      for (index_t J = 0; J < K; ++J)
        Yr[J] += Part[J];
    }
  }
}

} // namespace
} // namespace smat

template <typename T>
std::vector<smat::Kernel<smat::CsrKernelFn<T>>> smat::makeCsrKernels() {
  std::vector<Kernel<CsrKernelFn<T>>> Kernels = {
      {"csr_basic", OptNone, &csrBasic<T>},
      {"csr_unroll4", OptUnroll, &csrUnroll4<T>},
      {"csr_simd", OptSimd, &csrSimd<T>},
      {"csr_prefetch", OptPrefetch, &csrPrefetch<T>},
      {"csr_omp_static", OptThreads, &csrOmpStatic<T>},
      {"csr_omp_dynamic", OptThreads | OptDynSchedule, &csrOmpDynamic<T>},
      {"csr_omp_guided", OptThreads | OptDynSchedule, &csrOmpGuided<T>},
      {"csr_omp_unroll", OptThreads | OptUnroll, &csrOmpUnroll<T>},
      {"csr_nnzsplit", OptThreads | OptLoadBalance, &csrNnzSplit<T>},
  };
#if defined(__AVX2__)
  if constexpr (std::is_same_v<T, double>)
    Kernels.push_back({"csr_avx2", OptSimd | OptUnroll, &csrAvx2D});
  else if constexpr (std::is_same_v<T, float>)
    Kernels.push_back({"csr_avx2", OptSimd | OptUnroll, &csrAvx2F});
#endif
#if defined(__AVX512F__)
  if constexpr (std::is_same_v<T, double>)
    Kernels.push_back({"csr_avx512", OptSimd | OptUnroll, &csrAvx512D});
  else if constexpr (std::is_same_v<T, float>)
    Kernels.push_back({"csr_avx512", OptSimd | OptUnroll, &csrAvx512F});
#endif
  return Kernels;
}

template std::vector<smat::Kernel<smat::CsrKernelFn<float>>>
smat::makeCsrKernels<float>();
template std::vector<smat::Kernel<smat::CsrKernelFn<double>>>
smat::makeCsrKernels<double>();

template <typename T>
std::vector<smat::Kernel<smat::CsrSpmmFn<T>>> smat::makeCsrSpmmKernels() {
  return {
      {"csr_spmm_basic", OptNone, &csrSpmmBasic<T>},
      {"csr_spmm_tiled", OptUnroll, &csrSpmmTiled<T>},
      {"csr_spmm_omp_rowsplit", OptThreads | OptUnroll, &csrSpmmOmpRowSplit<T>},
      {"csr_spmm_nnzsplit", OptThreads | OptLoadBalance | OptUnroll,
       &csrSpmmNnzSplit<T>},
  };
}

template std::vector<smat::Kernel<smat::CsrSpmmFn<float>>>
smat::makeCsrSpmmKernels<float>();
template std::vector<smat::Kernel<smat::CsrSpmmFn<double>>>
smat::makeCsrSpmmKernels<double>();
