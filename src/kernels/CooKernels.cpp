//===- kernels/CooKernels.cpp - COO SpMV kernel variants ------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// COO y := A*x variants. The basic loop is the paper's Figure 2(b). All
// builders in this library emit row-major sorted COO, which the segmented
// and threaded variants exploit (runs of equal row index are contiguous).
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace smat {
namespace {

template <typename T>
void zeroOut(T *SMAT_RESTRICT Y, index_t N) {
  std::memset(Y, 0, sizeof(T) * static_cast<std::size_t>(N));
}

template <typename T>
void zeroOutBlock(T *SMAT_RESTRICT Y, index_t NumRows, index_t K) {
  std::memset(Y, 0,
              sizeof(T) * static_cast<std::size_t>(NumRows) *
                  static_cast<std::size_t>(K));
}

template <typename T>
void cooBasic(const CooMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  zeroOut(Y, A.NumRows);
  std::int64_t Nnz = A.nnz();
  const index_t *SMAT_RESTRICT Rows = A.Rows.data();
  const index_t *SMAT_RESTRICT Cols = A.Cols.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (std::int64_t I = 0; I < Nnz; ++I)
    Y[Rows[I]] += Val[I] * X[Cols[I]];
}

template <typename T>
void cooUnroll4(const CooMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  zeroOut(Y, A.NumRows);
  std::int64_t Nnz = A.nnz();
  const index_t *SMAT_RESTRICT Rows = A.Rows.data();
  const index_t *SMAT_RESTRICT Cols = A.Cols.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  std::int64_t I = 0;
  for (; I + 3 < Nnz; I += 4) {
    Y[Rows[I + 0]] += Val[I + 0] * X[Cols[I + 0]];
    Y[Rows[I + 1]] += Val[I + 1] * X[Cols[I + 1]];
    Y[Rows[I + 2]] += Val[I + 2] * X[Cols[I + 2]];
    Y[Rows[I + 3]] += Val[I + 3] * X[Cols[I + 3]];
  }
  for (; I < Nnz; ++I)
    Y[Rows[I]] += Val[I] * X[Cols[I]];
}

/// Defers the store until the row index changes: turns the per-nonzero
/// read-modify-write of Y into one store per row run (branch optimization).
template <typename T>
void cooSegmented(const CooMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y) {
  zeroOut(Y, A.NumRows);
  std::int64_t Nnz = A.nnz();
  if (Nnz == 0)
    return;
  const index_t *SMAT_RESTRICT Rows = A.Rows.data();
  const index_t *SMAT_RESTRICT Cols = A.Cols.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  index_t Current = Rows[0];
  T Sum = T(0);
  for (std::int64_t I = 0; I < Nnz; ++I) {
    index_t Row = Rows[I];
    if (Row != Current) {
      Y[Current] += Sum;
      Current = Row;
      Sum = T(0);
    }
    Sum += Val[I] * X[Cols[I]];
  }
  Y[Current] += Sum;
}

/// Prefetches the X gather stream.
template <typename T>
void cooPrefetch(const CooMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  zeroOut(Y, A.NumRows);
  std::int64_t Nnz = A.nnz();
  constexpr std::int64_t Distance = 64;
  const index_t *SMAT_RESTRICT Rows = A.Rows.data();
  const index_t *SMAT_RESTRICT Cols = A.Cols.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (std::int64_t I = 0; I < Nnz; ++I) {
    if (I + Distance < Nnz)
      __builtin_prefetch(&X[Cols[I + Distance]], 0, 0);
    Y[Rows[I]] += Val[I] * X[Cols[I]];
  }
}

/// Splits the nonzero stream into per-thread chunks whose boundaries are
/// snapped to row transitions, so every thread writes a disjoint Y range.
/// Requires monotone row indices (declared as PrecondMonotoneRows at
/// registration; the binding layer falls back to the basic kernel when the
/// input does not satisfy it).
template <typename T>
void cooOmpRowSplit(const CooMatrix<T> &A, const T *SMAT_RESTRICT X,
                    T *SMAT_RESTRICT Y) {
  std::int64_t Nnz = A.nnz();
  const index_t *SMAT_RESTRICT Rows = A.Rows.data();
  const index_t *SMAT_RESTRICT Cols = A.Cols.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
#pragma omp parallel
  {
#ifdef _OPENMP
    int ThreadCount = omp_get_num_threads();
    int ThreadId = omp_get_thread_num();
#else
    int ThreadCount = 1;
    int ThreadId = 0;
#endif
    // Zero this thread's row slice.
    index_t RowsPerThread = (A.NumRows + ThreadCount - 1) / ThreadCount;
    index_t RowBegin = std::min<index_t>(A.NumRows, ThreadId * RowsPerThread);
    index_t RowEnd =
        std::min<index_t>(A.NumRows, (ThreadId + 1) * RowsPerThread);
    for (index_t Row = RowBegin; Row < RowEnd; ++Row)
      Y[Row] = T(0);
#pragma omp barrier
    // Process exactly the nonzeros whose row falls in this thread's slice.
    const index_t *First = std::lower_bound(Rows, Rows + Nnz, RowBegin);
    const index_t *Last = std::lower_bound(Rows, Rows + Nnz, RowEnd);
    for (std::int64_t I = First - Rows, E = Last - Rows; I < E; ++I)
      Y[Rows[I]] += Val[I] * X[Cols[I]];
  }
}

//===----------------------------------------------------------------------===//
// SpMM (multi-RHS) kernels: X row-major NumCols x K, Y row-major NumRows x K.
//===----------------------------------------------------------------------===//

/// Strategy-free batched COO: per-entry accumulate with a runtime-K inner
/// loop. Order-independent, so it has no structural preconditions.
template <typename T>
void cooSpmmBasic(const CooMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y, index_t K) {
  zeroOutBlock(Y, A.NumRows, K);
  std::int64_t Nnz = A.nnz();
  const index_t *SMAT_RESTRICT Rows = A.Rows.data();
  const index_t *SMAT_RESTRICT Cols = A.Cols.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  for (std::int64_t I = 0; I < Nnz; ++I) {
    const T V = Val[I];
    const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Cols[I]) * K;
    T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Rows[I]) * K;
    for (index_t J = 0; J < K; ++J)
      Yr[J] += V * Xr[J];
  }
}

/// Register-tiled batched COO with deferred row stores: the K-wide tile is
/// accumulated in registers across a run of equal row indices and flushed
/// (with +=, so unsorted inputs stay correct) when the row changes.
template <typename T, int K>
void cooSpmmSegmentedTiled(const CooMatrix<T> &A, const T *SMAT_RESTRICT X,
                           T *SMAT_RESTRICT Y) {
  zeroOutBlock(Y, A.NumRows, K);
  std::int64_t Nnz = A.nnz();
  if (Nnz == 0)
    return;
  const index_t *SMAT_RESTRICT Rows = A.Rows.data();
  const index_t *SMAT_RESTRICT Cols = A.Cols.data();
  const T *SMAT_RESTRICT Val = A.Values.data();
  index_t Current = Rows[0];
  T Acc[K] = {};
  for (std::int64_t I = 0; I < Nnz; ++I) {
    const index_t Row = Rows[I];
    if (Row != Current) {
      T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Current) * K;
      for (int J = 0; J < K; ++J) {
        Yr[J] += Acc[J];
        Acc[J] = T(0);
      }
      Current = Row;
    }
    const T V = Val[I];
    const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Cols[I]) * K;
    for (int J = 0; J < K; ++J)
      Acc[J] += V * Xr[J];
  }
  T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Current) * K;
  for (int J = 0; J < K; ++J)
    Yr[J] += Acc[J];
}

template <typename T>
void cooSpmmTiled(const CooMatrix<T> &A, const T *X, T *Y, index_t K) {
  switch (K) {
  case 2:
    return cooSpmmSegmentedTiled<T, 2>(A, X, Y);
  case 4:
    return cooSpmmSegmentedTiled<T, 4>(A, X, Y);
  case 8:
    return cooSpmmSegmentedTiled<T, 8>(A, X, Y);
  case 16:
    return cooSpmmSegmentedTiled<T, 16>(A, X, Y);
  default:
    return cooSpmmBasic(A, X, Y, K);
  }
}

} // namespace
} // namespace smat

template <typename T>
std::vector<smat::Kernel<smat::CooKernelFn<T>>> smat::makeCooKernels() {
  return {
      {"coo_basic", OptNone, &cooBasic<T>},
      {"coo_unroll4", OptUnroll, &cooUnroll4<T>},
      {"coo_segmented", OptBranchFree, &cooSegmented<T>},
      {"coo_prefetch", OptPrefetch, &cooPrefetch<T>},
      {"coo_omp_rowsplit", OptThreads, &cooOmpRowSplit<T>,
       PrecondMonotoneRows},
  };
}

template std::vector<smat::Kernel<smat::CooKernelFn<float>>>
smat::makeCooKernels<float>();
template std::vector<smat::Kernel<smat::CooKernelFn<double>>>
smat::makeCooKernels<double>();

template <typename T>
std::vector<smat::Kernel<smat::CooSpmmFn<T>>> smat::makeCooSpmmKernels() {
  return {
      {"coo_spmm_basic", OptNone, &cooSpmmBasic<T>},
      {"coo_spmm_tiled", OptUnroll | OptBranchFree, &cooSpmmTiled<T>},
  };
}

template std::vector<smat::Kernel<smat::CooSpmmFn<float>>>
smat::makeCooSpmmKernels<float>();
template std::vector<smat::Kernel<smat::CooSpmmFn<double>>>
smat::makeCooSpmmKernels<double>();
