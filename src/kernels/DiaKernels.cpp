//===- kernels/DiaKernels.cpp - DIA SpMV kernel variants ------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// DIA y := A*x variants. The basic loop is the paper's Figure 2(c):
// per-diagonal contiguous streaming over X and Y, the access pattern that
// makes DIA the fastest format when the structure is truly diagonal.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

namespace smat {
namespace {

template <typename T>
void diaZero(T *SMAT_RESTRICT Y, index_t N) {
  std::memset(Y, 0, sizeof(T) * static_cast<std::size_t>(N));
}

template <typename T>
void diaBasic(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  index_t Stride = A.stride();
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t IStart = std::max(index_t(0), -K);
    index_t JStart = std::max(index_t(0), K);
    index_t N = std::min(A.NumRows - IStart, A.NumCols - JStart);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride + IStart;
    const T *SMAT_RESTRICT Xs = X + JStart;
    T *SMAT_RESTRICT Ys = Y + IStart;
    for (index_t I = 0; I < N; ++I)
      Ys[I] += Data[I] * Xs[I];
  }
}

/// Explicit vectorization request on the contiguous inner loop.
template <typename T>
void diaSimd(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
             T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  index_t Stride = A.stride();
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t IStart = std::max(index_t(0), -K);
    index_t JStart = std::max(index_t(0), K);
    index_t N = std::min(A.NumRows - IStart, A.NumCols - JStart);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride + IStart;
    const T *SMAT_RESTRICT Xs = X + JStart;
    T *SMAT_RESTRICT Ys = Y + IStart;
#pragma omp simd
    for (index_t I = 0; I < N; ++I)
      Ys[I] += Data[I] * Xs[I];
  }
}

/// Processes two diagonals per pass so each Y element is loaded/stored half
/// as often.
template <typename T>
void diaUnroll2(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  index_t Stride = A.stride();
  index_t D = 0;
  for (; D + 1 < A.numDiags(); D += 2) {
    index_t K0 = A.Offsets[D], K1 = A.Offsets[D + 1];
    // Row range where *both* diagonals are in-bounds.
    index_t IStart = std::max({index_t(0), -K0, -K1});
    index_t IEnd = std::min({A.NumRows, A.NumCols - K0, A.NumCols - K1});
    const T *SMAT_RESTRICT Data0 =
        A.Data.data() + static_cast<std::size_t>(D) * Stride;
    const T *SMAT_RESTRICT Data1 =
        A.Data.data() + static_cast<std::size_t>(D + 1) * Stride;
    for (index_t I = IStart; I < IEnd; ++I)
      Y[I] += Data0[I] * X[I + K0] + Data1[I] * X[I + K1];
    // Head/tail rows where only one of the two diagonals is valid.
    auto Edge = [&](index_t K, const T *SMAT_RESTRICT Data) {
      index_t Lo = std::max(index_t(0), -K);
      index_t Hi = std::min(A.NumRows, A.NumCols - K);
      for (index_t I = Lo; I < std::min(IStart, Hi); ++I)
        Y[I] += Data[I] * X[I + K];
      for (index_t I = std::max(IEnd, Lo); I < Hi; ++I)
        Y[I] += Data[I] * X[I + K];
    };
    Edge(K0, Data0);
    Edge(K1, Data1);
  }
  for (; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t Lo = std::max(index_t(0), -K);
    index_t Hi = std::min(A.NumRows, A.NumCols - K);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride;
    for (index_t I = Lo; I < Hi; ++I)
      Y[I] += Data[I] * X[I + K];
  }
}

/// Row-blocked threading: each thread owns a contiguous row range and walks
/// all diagonals inside it, so Y writes are disjoint.
template <typename T>
void diaOmpRows(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  index_t Stride = A.stride();
  index_t NumDiags = A.numDiags();
#pragma omp parallel for schedule(static)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t D = 0; D < NumDiags; ++D) {
      index_t Col = Row + A.Offsets[D];
      if (Col >= 0 && Col < A.NumCols)
        Sum += A.Data[static_cast<std::size_t>(D) * Stride + Row] * X[Col];
    }
    Y[Row] = Sum;
  }
}

/// SIMD + unroll combination.
template <typename T>
void diaSimdUnroll2(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                    T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  index_t Stride = A.stride();
  index_t D = 0;
  for (; D + 1 < A.numDiags(); D += 2) {
    index_t K0 = A.Offsets[D], K1 = A.Offsets[D + 1];
    index_t IStart = std::max({index_t(0), -K0, -K1});
    index_t IEnd = std::min({A.NumRows, A.NumCols - K0, A.NumCols - K1});
    const T *SMAT_RESTRICT Data0 =
        A.Data.data() + static_cast<std::size_t>(D) * Stride;
    const T *SMAT_RESTRICT Data1 =
        A.Data.data() + static_cast<std::size_t>(D + 1) * Stride;
#pragma omp simd
    for (index_t I = IStart; I < IEnd; ++I)
      Y[I] += Data0[I] * X[I + K0] + Data1[I] * X[I + K1];
    auto Edge = [&](index_t K, const T *SMAT_RESTRICT Data) {
      index_t Lo = std::max(index_t(0), -K);
      index_t Hi = std::min(A.NumRows, A.NumCols - K);
      for (index_t I = Lo; I < std::min(IStart, Hi); ++I)
        Y[I] += Data[I] * X[I + K];
      for (index_t I = std::max(IEnd, Lo); I < Hi; ++I)
        Y[I] += Data[I] * X[I + K];
    };
    Edge(K0, Data0);
    Edge(K1, Data1);
  }
  for (; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t Lo = std::max(index_t(0), -K);
    index_t Hi = std::min(A.NumRows, A.NumCols - K);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride;
#pragma omp simd
    for (index_t I = Lo; I < Hi; ++I)
      Y[I] += Data[I] * X[I + K];
  }
}

/// Prefetches the diagonal data and X streams a fixed distance ahead.
template <typename T>
void diaPrefetch(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  constexpr index_t Distance = 64;
  index_t Stride = A.stride();
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t IStart = std::max(index_t(0), -K);
    index_t JStart = std::max(index_t(0), K);
    index_t N = std::min(A.NumRows - IStart, A.NumCols - JStart);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride + IStart;
    const T *SMAT_RESTRICT Xs = X + JStart;
    T *SMAT_RESTRICT Ys = Y + IStart;
    for (index_t I = 0; I < N; ++I) {
      if (I + Distance < N) {
        __builtin_prefetch(&Data[I + Distance], 0, 0);
        __builtin_prefetch(&Xs[I + Distance], 0, 0);
      }
      Ys[I] += Data[I] * Xs[I];
    }
  }
}

//===----------------------------------------------------------------------===//
// SpMM (multi-RHS) kernels: X row-major NumCols x K, Y row-major NumRows x K.
//===----------------------------------------------------------------------===//

/// Strategy-free batched DIA: diagonal-major streaming with a runtime-K
/// inner loop, mirroring diaBasic.
template <typename T>
void diaSpmmBasic(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                  T *SMAT_RESTRICT Y, index_t K) {
  std::memset(Y, 0,
              sizeof(T) * static_cast<std::size_t>(A.NumRows) *
                  static_cast<std::size_t>(K));
  index_t Stride = A.stride();
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t Off = A.Offsets[D];
    index_t IStart = std::max(index_t(0), -Off);
    index_t JStart = std::max(index_t(0), Off);
    index_t N = std::min(A.NumRows - IStart, A.NumCols - JStart);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride + IStart;
    const T *SMAT_RESTRICT Xs = X + static_cast<std::size_t>(JStart) * K;
    T *SMAT_RESTRICT Ys = Y + static_cast<std::size_t>(IStart) * K;
    for (index_t I = 0; I < N; ++I) {
      const T V = Data[I];
      const T *SMAT_RESTRICT Xr = Xs + static_cast<std::size_t>(I) * K;
      T *SMAT_RESTRICT Yr = Ys + static_cast<std::size_t>(I) * K;
      for (index_t J = 0; J < K; ++J)
        Yr[J] += V * Xr[J];
    }
  }
}

/// Loop-interchanged register tile: each row's K-wide accumulator stays in
/// registers across all diagonals, so Y is written exactly once per row.
template <typename T, int K>
void diaSpmmRowsTiled(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                      T *SMAT_RESTRICT Y, index_t RowBegin, index_t RowEnd) {
  const index_t Stride = A.stride();
  const index_t NumDiags = A.numDiags();
  const index_t *SMAT_RESTRICT Off = A.Offsets.data();
  const T *SMAT_RESTRICT Data = A.Data.data();
  for (index_t Row = RowBegin; Row < RowEnd; ++Row) {
    T Acc[K] = {};
    for (index_t D = 0; D < NumDiags; ++D) {
      index_t Col = Row + Off[D];
      if (Col >= 0 && Col < A.NumCols) {
        const T V = Data[static_cast<std::size_t>(D) * Stride + Row];
        const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Col) * K;
        for (int J = 0; J < K; ++J)
          Acc[J] += V * Xr[J];
      }
    }
    T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Row) * K;
    for (int J = 0; J < K; ++J)
      Yr[J] = Acc[J];
  }
}

template <typename T>
void diaSpmmRowRange(const DiaMatrix<T> &A, const T *X, T *Y, index_t K,
                     index_t RowBegin, index_t RowEnd) {
  switch (K) {
  case 2:
    return diaSpmmRowsTiled<T, 2>(A, X, Y, RowBegin, RowEnd);
  case 4:
    return diaSpmmRowsTiled<T, 4>(A, X, Y, RowBegin, RowEnd);
  case 8:
    return diaSpmmRowsTiled<T, 8>(A, X, Y, RowBegin, RowEnd);
  case 16:
    return diaSpmmRowsTiled<T, 16>(A, X, Y, RowBegin, RowEnd);
  default:
    break;
  }
  // Generic-K tail: row-major with a runtime-K tile in the Y row.
  const index_t Stride = A.stride();
  const index_t NumDiags = A.numDiags();
  const index_t *SMAT_RESTRICT Off = A.Offsets.data();
  const T *SMAT_RESTRICT Data = A.Data.data();
  for (index_t Row = RowBegin; Row < RowEnd; ++Row) {
    T *SMAT_RESTRICT Yr = Y + static_cast<std::size_t>(Row) * K;
    for (index_t J = 0; J < K; ++J)
      Yr[J] = T(0);
    for (index_t D = 0; D < NumDiags; ++D) {
      index_t Col = Row + Off[D];
      if (Col >= 0 && Col < A.NumCols) {
        const T V = Data[static_cast<std::size_t>(D) * Stride + Row];
        const T *SMAT_RESTRICT Xr = X + static_cast<std::size_t>(Col) * K;
        for (index_t J = 0; J < K; ++J)
          Yr[J] += V * Xr[J];
      }
    }
  }
}

template <typename T>
void diaSpmmTiled(const DiaMatrix<T> &A, const T *X, T *Y, index_t K) {
  diaSpmmRowRange(A, X, Y, K, 0, A.NumRows);
}

/// Row-blocked threading over the register-tiled row kernel.
template <typename T>
void diaSpmmOmpRows(const DiaMatrix<T> &A, const T *X, T *Y, index_t K) {
  constexpr index_t BlockRows = 256;
  const index_t M = A.NumRows;
  const index_t NumBlocks = (M + BlockRows - 1) / BlockRows;
#pragma omp parallel for schedule(static)
  for (index_t B = 0; B < NumBlocks; ++B)
    diaSpmmRowRange(A, X, Y, K, B * BlockRows,
                    std::min<index_t>(M, (B + 1) * BlockRows));
}

} // namespace
} // namespace smat

template <typename T>
std::vector<smat::Kernel<smat::DiaKernelFn<T>>> smat::makeDiaKernels() {
  return {
      {"dia_basic", OptNone, &diaBasic<T>},
      {"dia_simd", OptSimd, &diaSimd<T>},
      {"dia_unroll2", OptUnroll, &diaUnroll2<T>},
      {"dia_omp_rows", OptThreads, &diaOmpRows<T>},
      {"dia_simd_unroll2", OptSimd | OptUnroll, &diaSimdUnroll2<T>},
      {"dia_prefetch", OptPrefetch, &diaPrefetch<T>},
  };
}

template std::vector<smat::Kernel<smat::DiaKernelFn<float>>>
smat::makeDiaKernels<float>();
template std::vector<smat::Kernel<smat::DiaKernelFn<double>>>
smat::makeDiaKernels<double>();

template <typename T>
std::vector<smat::Kernel<smat::DiaSpmmFn<T>>> smat::makeDiaSpmmKernels() {
  return {
      {"dia_spmm_basic", OptNone, &diaSpmmBasic<T>},
      {"dia_spmm_tiled", OptUnroll | OptInterchange, &diaSpmmTiled<T>},
      {"dia_spmm_omp_rows", OptThreads | OptUnroll | OptInterchange,
       &diaSpmmOmpRows<T>},
  };
}

template std::vector<smat::Kernel<smat::DiaSpmmFn<float>>>
smat::makeDiaSpmmKernels<float>();
template std::vector<smat::Kernel<smat::DiaSpmmFn<double>>>
smat::makeDiaSpmmKernels<double>();
