//===- kernels/DiaKernels.cpp - DIA SpMV kernel variants ------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// DIA y := A*x variants. The basic loop is the paper's Figure 2(c):
// per-diagonal contiguous streaming over X and Y, the access pattern that
// makes DIA the fastest format when the structure is truly diagonal.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

namespace smat {
namespace {

template <typename T>
void diaZero(T *SMAT_RESTRICT Y, index_t N) {
  std::memset(Y, 0, sizeof(T) * static_cast<std::size_t>(N));
}

template <typename T>
void diaBasic(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
              T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  index_t Stride = A.stride();
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t IStart = std::max(index_t(0), -K);
    index_t JStart = std::max(index_t(0), K);
    index_t N = std::min(A.NumRows - IStart, A.NumCols - JStart);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride + IStart;
    const T *SMAT_RESTRICT Xs = X + JStart;
    T *SMAT_RESTRICT Ys = Y + IStart;
    for (index_t I = 0; I < N; ++I)
      Ys[I] += Data[I] * Xs[I];
  }
}

/// Explicit vectorization request on the contiguous inner loop.
template <typename T>
void diaSimd(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
             T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  index_t Stride = A.stride();
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t IStart = std::max(index_t(0), -K);
    index_t JStart = std::max(index_t(0), K);
    index_t N = std::min(A.NumRows - IStart, A.NumCols - JStart);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride + IStart;
    const T *SMAT_RESTRICT Xs = X + JStart;
    T *SMAT_RESTRICT Ys = Y + IStart;
#pragma omp simd
    for (index_t I = 0; I < N; ++I)
      Ys[I] += Data[I] * Xs[I];
  }
}

/// Processes two diagonals per pass so each Y element is loaded/stored half
/// as often.
template <typename T>
void diaUnroll2(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  index_t Stride = A.stride();
  index_t D = 0;
  for (; D + 1 < A.numDiags(); D += 2) {
    index_t K0 = A.Offsets[D], K1 = A.Offsets[D + 1];
    // Row range where *both* diagonals are in-bounds.
    index_t IStart = std::max({index_t(0), -K0, -K1});
    index_t IEnd = std::min({A.NumRows, A.NumCols - K0, A.NumCols - K1});
    const T *SMAT_RESTRICT Data0 =
        A.Data.data() + static_cast<std::size_t>(D) * Stride;
    const T *SMAT_RESTRICT Data1 =
        A.Data.data() + static_cast<std::size_t>(D + 1) * Stride;
    for (index_t I = IStart; I < IEnd; ++I)
      Y[I] += Data0[I] * X[I + K0] + Data1[I] * X[I + K1];
    // Head/tail rows where only one of the two diagonals is valid.
    auto Edge = [&](index_t K, const T *SMAT_RESTRICT Data) {
      index_t Lo = std::max(index_t(0), -K);
      index_t Hi = std::min(A.NumRows, A.NumCols - K);
      for (index_t I = Lo; I < std::min(IStart, Hi); ++I)
        Y[I] += Data[I] * X[I + K];
      for (index_t I = std::max(IEnd, Lo); I < Hi; ++I)
        Y[I] += Data[I] * X[I + K];
    };
    Edge(K0, Data0);
    Edge(K1, Data1);
  }
  for (; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t Lo = std::max(index_t(0), -K);
    index_t Hi = std::min(A.NumRows, A.NumCols - K);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride;
    for (index_t I = Lo; I < Hi; ++I)
      Y[I] += Data[I] * X[I + K];
  }
}

/// Row-blocked threading: each thread owns a contiguous row range and walks
/// all diagonals inside it, so Y writes are disjoint.
template <typename T>
void diaOmpRows(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                T *SMAT_RESTRICT Y) {
  index_t Stride = A.stride();
  index_t NumDiags = A.numDiags();
#pragma omp parallel for schedule(static)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t D = 0; D < NumDiags; ++D) {
      index_t Col = Row + A.Offsets[D];
      if (Col >= 0 && Col < A.NumCols)
        Sum += A.Data[static_cast<std::size_t>(D) * Stride + Row] * X[Col];
    }
    Y[Row] = Sum;
  }
}

/// SIMD + unroll combination.
template <typename T>
void diaSimdUnroll2(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                    T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  index_t Stride = A.stride();
  index_t D = 0;
  for (; D + 1 < A.numDiags(); D += 2) {
    index_t K0 = A.Offsets[D], K1 = A.Offsets[D + 1];
    index_t IStart = std::max({index_t(0), -K0, -K1});
    index_t IEnd = std::min({A.NumRows, A.NumCols - K0, A.NumCols - K1});
    const T *SMAT_RESTRICT Data0 =
        A.Data.data() + static_cast<std::size_t>(D) * Stride;
    const T *SMAT_RESTRICT Data1 =
        A.Data.data() + static_cast<std::size_t>(D + 1) * Stride;
#pragma omp simd
    for (index_t I = IStart; I < IEnd; ++I)
      Y[I] += Data0[I] * X[I + K0] + Data1[I] * X[I + K1];
    auto Edge = [&](index_t K, const T *SMAT_RESTRICT Data) {
      index_t Lo = std::max(index_t(0), -K);
      index_t Hi = std::min(A.NumRows, A.NumCols - K);
      for (index_t I = Lo; I < std::min(IStart, Hi); ++I)
        Y[I] += Data[I] * X[I + K];
      for (index_t I = std::max(IEnd, Lo); I < Hi; ++I)
        Y[I] += Data[I] * X[I + K];
    };
    Edge(K0, Data0);
    Edge(K1, Data1);
  }
  for (; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t Lo = std::max(index_t(0), -K);
    index_t Hi = std::min(A.NumRows, A.NumCols - K);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride;
#pragma omp simd
    for (index_t I = Lo; I < Hi; ++I)
      Y[I] += Data[I] * X[I + K];
  }
}

/// Prefetches the diagonal data and X streams a fixed distance ahead.
template <typename T>
void diaPrefetch(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
                 T *SMAT_RESTRICT Y) {
  diaZero(Y, A.NumRows);
  constexpr index_t Distance = 64;
  index_t Stride = A.stride();
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t IStart = std::max(index_t(0), -K);
    index_t JStart = std::max(index_t(0), K);
    index_t N = std::min(A.NumRows - IStart, A.NumCols - JStart);
    const T *SMAT_RESTRICT Data =
        A.Data.data() + static_cast<std::size_t>(D) * Stride + IStart;
    const T *SMAT_RESTRICT Xs = X + JStart;
    T *SMAT_RESTRICT Ys = Y + IStart;
    for (index_t I = 0; I < N; ++I) {
      if (I + Distance < N) {
        __builtin_prefetch(&Data[I + Distance], 0, 0);
        __builtin_prefetch(&Xs[I + Distance], 0, 0);
      }
      Ys[I] += Data[I] * Xs[I];
    }
  }
}

} // namespace
} // namespace smat

template <typename T>
std::vector<smat::Kernel<smat::DiaKernelFn<T>>> smat::makeDiaKernels() {
  return {
      {"dia_basic", OptNone, &diaBasic<T>},
      {"dia_simd", OptSimd, &diaSimd<T>},
      {"dia_unroll2", OptUnroll, &diaUnroll2<T>},
      {"dia_omp_rows", OptThreads, &diaOmpRows<T>},
      {"dia_simd_unroll2", OptSimd | OptUnroll, &diaSimdUnroll2<T>},
      {"dia_prefetch", OptPrefetch, &diaPrefetch<T>},
  };
}

template std::vector<smat::Kernel<smat::DiaKernelFn<float>>>
smat::makeDiaKernels<float>();
template std::vector<smat::Kernel<smat::DiaKernelFn<double>>>
smat::makeDiaKernels<double>();
