//===- ref/RefSpmv.cpp - Fixed-interface baseline SpMV library ------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ref/RefSpmv.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cstring>

using namespace smat;

namespace {

template <typename T>
void csrRef(const CsrMatrix<T> &A, const T *SMAT_RESTRICT X,
            T *SMAT_RESTRICT Y) {
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    T Sum = T(0);
    for (index_t I = A.RowPtr[Row], E = A.RowPtr[Row + 1]; I < E; ++I)
      Sum += A.Values[I] * X[A.ColIdx[I]];
    Y[Row] = Sum;
  }
}

template <typename T>
void cooRef(const CooMatrix<T> &A, const T *SMAT_RESTRICT X,
            T *SMAT_RESTRICT Y) {
  std::memset(Y, 0, sizeof(T) * static_cast<std::size_t>(A.NumRows));
  std::int64_t Nnz = A.nnz();
  for (std::int64_t I = 0; I < Nnz; ++I)
    Y[A.Rows[I]] += A.Values[I] * X[A.Cols[I]];
}

template <typename T>
void diaRef(const DiaMatrix<T> &A, const T *SMAT_RESTRICT X,
            T *SMAT_RESTRICT Y) {
  std::memset(Y, 0, sizeof(T) * static_cast<std::size_t>(A.NumRows));
  index_t Stride = A.stride();
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t K = A.Offsets[D];
    index_t IStart = std::max(index_t(0), -K);
    index_t JStart = std::max(index_t(0), K);
    index_t N = std::min(A.NumRows - IStart, A.NumCols - JStart);
    for (index_t I = 0; I < N; ++I)
      Y[IStart + I] +=
          A.Data[static_cast<std::size_t>(D) * Stride + IStart + I] *
          X[JStart + I];
  }
}

template <typename T>
void ellRef(const EllMatrix<T> &A, const T *SMAT_RESTRICT X,
            T *SMAT_RESTRICT Y) {
  std::memset(Y, 0, sizeof(T) * static_cast<std::size_t>(A.NumRows));
  for (index_t C = 0; C < A.Width; ++C)
    for (index_t Row = 0; Row < A.NumRows; ++Row) {
      std::size_t I = static_cast<std::size_t>(C) * A.NumRows + Row;
      Y[Row] += A.Data[I] * X[A.Indices[I]];
    }
}

} // namespace

void smat::ref_scsrgemv(const CsrMatrix<float> &A, const float *X, float *Y) {
  csrRef(A, X, Y);
}
void smat::ref_scoogemv(const CooMatrix<float> &A, const float *X, float *Y) {
  cooRef(A, X, Y);
}
void smat::ref_sdiagemv(const DiaMatrix<float> &A, const float *X, float *Y) {
  diaRef(A, X, Y);
}
void smat::ref_sellgemv(const EllMatrix<float> &A, const float *X, float *Y) {
  ellRef(A, X, Y);
}

void smat::ref_dcsrgemv(const CsrMatrix<double> &A, const double *X,
                        double *Y) {
  csrRef(A, X, Y);
}
void smat::ref_dcoogemv(const CooMatrix<double> &A, const double *X,
                        double *Y) {
  cooRef(A, X, Y);
}
void smat::ref_ddiagemv(const DiaMatrix<double> &A, const double *X,
                        double *Y) {
  diaRef(A, X, Y);
}
void smat::ref_dellgemv(const EllMatrix<double> &A, const double *X,
                        double *Y) {
  ellRef(A, X, Y);
}

template <typename T>
void smat::refCsrSpmv(const CsrMatrix<T> &A, const T *X, T *Y) {
  csrRef(A, X, Y);
}
template <typename T>
void smat::refCooSpmv(const CooMatrix<T> &A, const T *X, T *Y) {
  cooRef(A, X, Y);
}
template <typename T>
void smat::refDiaSpmv(const DiaMatrix<T> &A, const T *X, T *Y) {
  diaRef(A, X, Y);
}
template <typename T>
void smat::refEllSpmv(const EllMatrix<T> &A, const T *X, T *Y) {
  ellRef(A, X, Y);
}

template void smat::refCsrSpmv(const CsrMatrix<float> &, const float *,
                               float *);
template void smat::refCsrSpmv(const CsrMatrix<double> &, const double *,
                               double *);
template void smat::refCooSpmv(const CooMatrix<float> &, const float *,
                               float *);
template void smat::refCooSpmv(const CooMatrix<double> &, const double *,
                               double *);
template void smat::refDiaSpmv(const DiaMatrix<float> &, const float *,
                               float *);
template void smat::refDiaSpmv(const DiaMatrix<double> &, const double *,
                               double *);
template void smat::refEllSpmv(const EllMatrix<float> &, const float *,
                               float *);
template void smat::refEllSpmv(const EllMatrix<double> &, const double *,
                               double *);
