//===- ref/RefSpmv.h - Fixed-interface baseline SpMV library ----*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline: an MKL-style sparse BLAS facade with one entry
/// point per storage format (paper Figure 5 contrasts MKL's six per-format
/// calls with SMAT's single CSR call). Functions follow MKL's naming scheme
/// `ref_<x><format>gemv` where <x> is s/d for single/double precision.
///
/// Each function computes y := A * x with a straightforward implementation;
/// the burden of choosing the right format rests entirely on the caller —
/// which is precisely the productivity problem SMAT removes.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_REF_REFSPMV_H
#define SMAT_REF_REFSPMV_H

#include "matrix/CooMatrix.h"
#include "matrix/CsrMatrix.h"
#include "matrix/DiaMatrix.h"
#include "matrix/EllMatrix.h"

namespace smat {

// Single precision.
void ref_scsrgemv(const CsrMatrix<float> &A, const float *X, float *Y);
void ref_scoogemv(const CooMatrix<float> &A, const float *X, float *Y);
void ref_sdiagemv(const DiaMatrix<float> &A, const float *X, float *Y);
void ref_sellgemv(const EllMatrix<float> &A, const float *X, float *Y);

// Double precision.
void ref_dcsrgemv(const CsrMatrix<double> &A, const double *X, double *Y);
void ref_dcoogemv(const CooMatrix<double> &A, const double *X, double *Y);
void ref_ddiagemv(const DiaMatrix<double> &A, const double *X, double *Y);
void ref_dellgemv(const EllMatrix<double> &A, const double *X, double *Y);

/// Precision-generic dispatchers for templated benchmark/test code.
template <typename T>
void refCsrSpmv(const CsrMatrix<T> &A, const T *X, T *Y);
template <typename T>
void refCooSpmv(const CooMatrix<T> &A, const T *X, T *Y);
template <typename T>
void refDiaSpmv(const DiaMatrix<T> &A, const T *X, T *Y);
template <typename T>
void refEllSpmv(const EllMatrix<T> &A, const T *X, T *Y);

extern template void refCsrSpmv(const CsrMatrix<float> &, const float *,
                                float *);
extern template void refCsrSpmv(const CsrMatrix<double> &, const double *,
                                double *);
extern template void refCooSpmv(const CooMatrix<float> &, const float *,
                                float *);
extern template void refCooSpmv(const CooMatrix<double> &, const double *,
                                double *);
extern template void refDiaSpmv(const DiaMatrix<float> &, const float *,
                                float *);
extern template void refDiaSpmv(const DiaMatrix<double> &, const double *,
                                double *);
extern template void refEllSpmv(const EllMatrix<float> &, const float *,
                                float *);
extern template void refEllSpmv(const EllMatrix<double> &, const double *,
                                double *);

} // namespace smat

#endif // SMAT_REF_REFSPMV_H
