//===- support/Stats.h - Small statistics helpers ---------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / variance / geometric-mean helpers shared by feature extraction and
/// the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_STATS_H
#define SMAT_SUPPORT_STATS_H

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace smat {

/// Arithmetic mean; 0 for an empty range.
inline double mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

/// Population variance; 0 for an empty range.
inline double variance(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Mu = mean(Xs);
  double Sum = 0.0;
  for (double X : Xs)
    Sum += (X - Mu) * (X - Mu);
  return Sum / static_cast<double>(Xs.size());
}

/// Geometric mean of strictly positive values; 0 if any value is <= 0.
inline double geometricMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double X : Xs) {
    if (X <= 0.0)
      return 0.0;
    LogSum += std::log(X);
  }
  return std::exp(LogSum / static_cast<double>(Xs.size()));
}

/// Smallest value; 0 for an empty range.
inline double minValue(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Min = Xs.front();
  for (double X : Xs)
    Min = std::min(Min, X);
  return Min;
}

/// Largest value; 0 for an empty range.
inline double maxValue(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Max = Xs.front();
  for (double X : Xs)
    Max = std::max(Max, X);
  return Max;
}

/// Relative spread (max - min) / min of a sample set; used by the robust
/// measurement loop to decide whether timing samples agree well enough to
/// trust. \returns 0 for fewer than two samples and +inf when the smallest
/// sample is not strictly positive (degenerate timings are never trusted).
inline double relativeSpread(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0.0;
  double Min = minValue(Xs);
  if (Min <= 0.0)
    return std::numeric_limits<double>::infinity();
  return (maxValue(Xs) - Min) / Min;
}

/// Ordinary least-squares fit Y = Slope * X + Intercept.
/// \returns false when fewer than two points are supplied or X is constant.
inline bool leastSquaresFit(const std::vector<double> &X,
                            const std::vector<double> &Y, double &Slope,
                            double &Intercept) {
  assert(X.size() == Y.size() && "mismatched fit inputs");
  std::size_t N = X.size();
  if (N < 2)
    return false;
  double Sx = 0, Sy = 0, Sxx = 0, Sxy = 0;
  for (std::size_t I = 0; I != N; ++I) {
    Sx += X[I];
    Sy += Y[I];
    Sxx += X[I] * X[I];
    Sxy += X[I] * Y[I];
  }
  double Denominator = static_cast<double>(N) * Sxx - Sx * Sx;
  if (std::abs(Denominator) < 1e-12)
    return false;
  Slope = (static_cast<double>(N) * Sxy - Sx * Sy) / Denominator;
  Intercept = (Sy - Slope * Sx) / static_cast<double>(N);
  return true;
}

} // namespace smat

#endif // SMAT_SUPPORT_STATS_H
