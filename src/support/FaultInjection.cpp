//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#if SMAT_FAULT_INJECTION

#include "support/Rng.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <new>
#include <set>

namespace smat {
namespace fault {
namespace {

/// All mutable injection state lives behind one mutex; the hooks only take
/// it when Armed is set, so an unconfigured fault-injection build still has
/// a cheap (one relaxed atomic load) fast path.
struct InjectionState {
  std::mutex Lock;
  FaultConfig Config;
  Rng Generator{1};
  std::set<std::string> Sites;
  std::uint64_t Injected = 0;
};

InjectionState &state() {
  static InjectionState S;
  return S;
}

std::atomic<bool> Armed{false};

/// Decides whether the hook at \p Site fires under the current schedule and
/// does the shared bookkeeping (site recording, injection counting).
/// Callers hold no lock; this takes it.
bool shouldFire(const char *Site) {
  if (!Armed.load(std::memory_order_relaxed))
    return false;
  InjectionState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  if (S.Config.RecordSites)
    S.Sites.insert(Site);
  bool Fire = false;
  for (const std::string &Always : S.Config.AlwaysSites) {
    if (Always == Site) {
      Fire = true;
      break;
    }
  }
  if (!Fire && S.Config.Probability > 0.0)
    Fire = S.Generator.uniform() < S.Config.Probability;
  if (Fire)
    ++S.Injected;
  return Fire;
}

/// Burns real wall-clock time; sleep would be invisible to a busy-wait
/// watchdog test under heavy sanitizer scheduling, and real tuning stalls
/// (a loaded core) are busy too.
void busyWait(double Seconds) {
  if (Seconds <= 0.0)
    return;
  WallTimer Timer;
  while (Timer.seconds() < Seconds) {
  }
}

} // namespace

void configure(const FaultConfig &Config) {
  InjectionState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  S.Config = Config;
  S.Generator = Rng(Config.Seed);
  S.Sites.clear();
  S.Injected = 0;
  Armed.store(Config.Probability > 0.0 || !Config.AlwaysSites.empty() ||
                  Config.RecordSites,
              std::memory_order_relaxed);
}

void reset() {
  InjectionState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  S.Config = FaultConfig();
  S.Config.Probability = 0.0;
  S.Config.AlwaysSites.clear();
  S.Config.RecordSites = false;
  S.Generator = Rng(1);
  S.Sites.clear();
  S.Injected = 0;
  Armed.store(false, std::memory_order_relaxed);
}

std::uint64_t injectedCount() {
  InjectionState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  return S.Injected;
}

std::vector<std::string> observedSites() {
  InjectionState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  return std::vector<std::string>(S.Sites.begin(), S.Sites.end());
}

bool injectFailure(const char *Site) { return shouldFire(Site); }

void injectAllocFailure(const char *Site) {
  if (shouldFire(Site))
    throw std::bad_alloc();
}

void injectKernelFault(const char *Site) {
  if (shouldFire(Site))
    throw InjectedFault(Site);
}

double injectTimerSample(const char *Site, double Seconds) {
  if (!shouldFire(Site))
    return Seconds;
  double NoiseFactor = 1.0;
  double Stall = 0.0;
  {
    InjectionState &S = state();
    std::lock_guard<std::mutex> Guard(S.Lock);
    if (S.Config.TimerNoiseFactor > 0.0)
      NoiseFactor = 1.0 + S.Config.TimerNoiseFactor * S.Generator.uniform();
    Stall = S.Config.StallSeconds;
  }
  busyWait(Stall);
  return Seconds * NoiseFactor + Stall;
}

} // namespace fault
} // namespace smat

#endif // SMAT_FAULT_INJECTION
