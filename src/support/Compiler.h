//===- support/Compiler.h - Compiler abstraction macros ---------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler abstraction macros used throughout the library.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_COMPILER_H
#define SMAT_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define SMAT_RESTRICT __restrict__
#define SMAT_ALWAYS_INLINE inline __attribute__((always_inline))
#define SMAT_LIKELY(X) __builtin_expect(!!(X), 1)
#define SMAT_UNLIKELY(X) __builtin_expect(!!(X), 0)
#else
#define SMAT_RESTRICT
#define SMAT_ALWAYS_INLINE inline
#define SMAT_LIKELY(X) (X)
#define SMAT_UNLIKELY(X) (X)
#endif

namespace smat {

/// Marks a point in code that must never be reached. Aborts in all build
/// modes; \p Msg is kept for assertion messages in debug builds.
[[noreturn]] inline void smatUnreachable(const char *Msg) {
  assert(false && Msg);
  (void)Msg;
  std::abort();
}

} // namespace smat

#endif // SMAT_SUPPORT_COMPILER_H
