//===- support/Status.h - Recoverable-error result types --------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable-error layer of the library: a `Status` carrying an error
/// code plus a human-readable diagnostic, and an `Expected<T>` holding either
/// a value or the `Status` explaining its absence.
///
/// Contract (see DESIGN.md section 11): every trust boundary — `Smat::tune`
/// and `tryTune`, the `SMAT_xCSR_SpMV` entry points, the format converters,
/// `AmgSolver::setup`, and `readMatrixMarket*` — validates its input and
/// reports malformed data through these types (or a `std::invalid_argument`
/// carrying the same diagnostic, for the throwing compatibility API). Code
/// behind a validated boundary assumes well-formed input and guards its
/// invariants with debug-only `assert`s.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_STATUS_H
#define SMAT_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace smat {

/// Coarse failure classification; the diagnostic message carries the
/// specifics (which row, which invariant, which line).
enum class ErrorCode : int {
  Ok = 0,
  /// A sparse structure violates a representation invariant (non-monotone
  /// RowPtr, out-of-range index, array size mismatch, negative dimension).
  InvalidMatrix,
  /// A non-matrix argument is unusable (null tuner, bad option value).
  InvalidArgument,
  /// A format conversion was rejected by a fill/overflow guard; binding as
  /// CSR is the documented recovery.
  ConversionRejected,
  /// Malformed external text (MatrixMarket, model files).
  ParseError,
  /// The operation would exceed a resource cap (hostile expansion ratios).
  ResourceExhausted,
};

/// \returns the stable lower-case name of \p Code (for logs and tests).
inline const char *errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidMatrix:
    return "invalid_matrix";
  case ErrorCode::InvalidArgument:
    return "invalid_argument";
  case ErrorCode::ConversionRejected:
    return "conversion_rejected";
  case ErrorCode::ParseError:
    return "parse_error";
  case ErrorCode::ResourceExhausted:
    return "resource_exhausted";
  }
  return "?";
}

/// An error code plus a descriptive diagnostic. Default-constructed Status
/// is success; error states always carry a non-empty message.
class Status {
public:
  Status() = default;

  static Status success() { return Status(); }

  static Status error(ErrorCode Code, std::string Message) {
    assert(Code != ErrorCode::Ok && "error() requires a failure code");
    Status S;
    S.Code = Code;
    S.Message = std::move(Message);
    return S;
  }

  bool ok() const { return Code == ErrorCode::Ok; }
  explicit operator bool() const { return ok(); }

  ErrorCode code() const { return Code; }

  /// The diagnostic; empty exactly when ok().
  const std::string &message() const { return Message; }

  /// "code: message" for logs; "ok" on success.
  std::string toString() const {
    return ok() ? std::string(errorCodeName(Code))
                : std::string(errorCodeName(Code)) + ": " + Message;
  }

private:
  ErrorCode Code = ErrorCode::Ok;
  std::string Message;
};

/// Either a value or the Status explaining why there is none. Deliberately
/// minimal (no exceptions, no heap indirection): the library's recoverable
/// paths return this by value.
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}

  /*implicit*/ Expected(Status Err) : Err(std::move(Err)) {
    assert(!this->Err.ok() && "Expected from a success Status has no value");
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The failure (Ok status when a value is present).
  const Status &status() const { return Err; }

  T &value() {
    assert(ok() && "value() on a failed Expected");
    return *Value;
  }
  const T &value() const {
    assert(ok() && "value() on a failed Expected");
    return *Value;
  }

  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace smat

#endif // SMAT_SUPPORT_STATUS_H
