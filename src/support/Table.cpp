//===- support/Table.cpp - ASCII table printer ----------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>

using namespace smat;

AsciiTable::AsciiTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void AsciiTable::addRow(std::vector<std::string> Row) {
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

void AsciiTable::print(std::FILE *Stream) const {
  std::vector<std::size_t> Widths(Header.size());
  for (std::size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (std::size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (std::size_t C = 0; C != Row.size(); ++C)
      std::fprintf(Stream, "%s%-*s", C ? "  " : "",
                   static_cast<int>(Widths[C]), Row[C].c_str());
    std::fprintf(Stream, "\n");
  };

  PrintRow(Header);
  std::size_t Total = 0;
  for (std::size_t C = 0; C != Widths.size(); ++C)
    Total += Widths[C] + (C ? 2 : 0);
  std::string Rule(Total, '-');
  std::fprintf(Stream, "%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string AsciiTable::toCsv() const {
  std::string Out;
  auto AppendRow = [&Out](const std::vector<std::string> &Row) {
    for (std::size_t C = 0; C != Row.size(); ++C) {
      if (C)
        Out += ',';
      Out += Row[C];
    }
    Out += '\n';
  };
  AppendRow(Header);
  for (const auto &Row : Rows)
    AppendRow(Row);
  return Out;
}
