//===- support/Table.h - ASCII table printer --------------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned ASCII table used by every benchmark binary to print the
/// paper's tables and figure series in a uniform, diffable layout.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_TABLE_H
#define SMAT_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace smat {

/// Collects rows of strings and prints them with per-column alignment.
class AsciiTable {
public:
  explicit AsciiTable(std::vector<std::string> Header);

  /// Appends one row; the row is padded with empty cells if shorter than the
  /// header and truncated otherwise.
  void addRow(std::vector<std::string> Row);

  /// Renders the table to \p Stream (stdout by default).
  void print(std::FILE *Stream = stdout) const;

  /// Renders the table as comma separated values.
  std::string toCsv() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace smat

#endif // SMAT_SUPPORT_TABLE_H
