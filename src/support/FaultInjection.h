//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, site-keyed fault-injection framework for the resilience
/// tests (DESIGN.md section 12). Production code marks its failure-prone
/// points with named *sites* — conversion allocations, conversion-cap
/// checks, kernel invocations during measurement, timing samples — by
/// calling the hooks below. A test arms a seeded `FaultConfig`, and the
/// hooks then fail deterministically: an armed allocation site throws
/// `std::bad_alloc`, an armed kernel site throws `InjectedFault`, an armed
/// cap site reports a forced rejection, and an armed timer site perturbs
/// (and optionally stalls) the measured sample.
///
/// The whole framework compiles in only under `SMAT_FAULT_INJECTION`
/// (CMake option of the same name). In the default build every hook is an
/// inline no-op that constant-folds away, so hot paths pay nothing.
///
/// Typical test usage:
/// \code
///   fault::FaultConfig Cfg;
///   Cfg.RecordSites = true;                 // discovery pass
///   fault::configure(Cfg);
///   (void)Tuner.tryTune(A, Opts);
///   for (const std::string &Site : fault::observedSites()) {
///     fault::FaultConfig Hit;
///     Hit.AlwaysSites = {Site};             // fail this site every time
///     fault::configure(Hit);
///     auto Result = Tuner.tryTune(A, Opts); // must degrade, never fail
///     ...
///   }
///   fault::reset();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_FAULTINJECTION_H
#define SMAT_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace smat {
namespace fault {

/// Thrown by an armed kernel site to simulate an exception escaping a
/// kernel or pipeline stage mid-tune.
class InjectedFault : public std::exception {
public:
  explicit InjectedFault(const char *Site)
      : Message(std::string("injected fault at site '") + Site + "'") {}

  const char *what() const noexcept override { return Message.c_str(); }

private:
  std::string Message;
};

/// One deterministic injection schedule. A hook at site S "fires" when S is
/// listed in AlwaysSites, or when the seeded generator draws below
/// Probability. All decisions derive from Seed, so a schedule replays
/// identically across runs.
struct FaultConfig {
  std::uint64_t Seed = 1;
  /// Chance in [0, 1] that any hook invocation fires.
  double Probability = 0.0;
  /// Sites that fire on every invocation (exact string match).
  std::vector<std::string> AlwaysSites;
  /// Observe and record visited sites without firing anything; used by the
  /// discovery pass of the every-site sweep.
  bool RecordSites = false;
  /// When a timer site fires, the sample is scaled by a factor drawn from
  /// [1, 1 + TimerNoiseFactor] (simulates a loaded machine's jitter).
  double TimerNoiseFactor = 1.0;
  /// When a timer site fires, this many seconds of real wall-clock stall
  /// are injected (busy-wait) and added to the sample — exercises the
  /// measurement watchdog's budget and rep caps.
  double StallSeconds = 0.0;
};

#if SMAT_FAULT_INJECTION

/// True in builds that compile the hooks in.
inline constexpr bool CompiledIn = true;

/// Installs \p Config and arms the hooks. Thread-safe.
void configure(const FaultConfig &Config);

/// Disarms every hook and clears counters and the observed-site record.
void reset();

/// Total number of faults injected since the last configure()/reset().
std::uint64_t injectedCount();

/// Sites visited (armed runs only), sorted and deduplicated.
std::vector<std::string> observedSites();

/// Cap-style hook: \returns true when the site fires, which the caller
/// treats as a forced guard rejection (e.g. a conversion cap hit).
bool injectFailure(const char *Site);

/// Allocation hook: throws std::bad_alloc when the site fires.
void injectAllocFailure(const char *Site);

/// Kernel hook: throws InjectedFault when the site fires.
void injectKernelFault(const char *Site);

/// Timer hook: \returns \p Seconds, perturbed (noise factor, stall) when
/// the site fires. The stall busy-waits real wall-clock time so budget
/// watchdogs observe it.
double injectTimerSample(const char *Site, double Seconds);

#else

inline constexpr bool CompiledIn = false;

inline void configure(const FaultConfig &) {}
inline void reset() {}
inline std::uint64_t injectedCount() { return 0; }
inline std::vector<std::string> observedSites() { return {}; }
inline bool injectFailure(const char *) { return false; }
inline void injectAllocFailure(const char *) {}
inline void injectKernelFault(const char *) {}
inline double injectTimerSample(const char *, double Seconds) {
  return Seconds;
}

#endif // SMAT_FAULT_INJECTION

} // namespace fault
} // namespace smat

#endif // SMAT_SUPPORT_FAULTINJECTION_H
