//===- support/Rng.h - Deterministic random number generation ---*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 / xoshiro256** pseudo random generators. Every generator in the
/// synthetic corpus is seeded explicitly so the whole training pipeline is
/// bit-reproducible across runs.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_RNG_H
#define SMAT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace smat {

/// SplitMix64; used for seeding and for cheap one-shot hashes.
inline std::uint64_t splitMix64(std::uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  std::uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t Seed = 0x5eed5eedULL) {
    std::uint64_t S = Seed;
    for (auto &Word : State)
      Word = splitMix64(S);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
    std::uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  std::uint64_t bounded(std::uint64_t Bound) {
    assert(Bound > 0 && "bounded() requires a positive bound");
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used here (all far below 2^32).
    unsigned __int128 Product =
        static_cast<unsigned __int128>((*this)()) * Bound;
    return static_cast<std::uint64_t>(Product >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  std::int64_t range(std::int64_t Lo, std::int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(Hi - Lo + 1)));
  }

private:
  static std::uint64_t rotl(std::uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  std::uint64_t State[4];
};

} // namespace smat

#endif // SMAT_SUPPORT_RNG_H
