//===- support/Str.cpp - String utilities ---------------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Str.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace smat;

std::string_view smat::trim(std::string_view S) {
  std::size_t Begin = 0;
  while (Begin < S.size() &&
         std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  std::size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string> smat::split(std::string_view S, char Sep,
                                     bool KeepEmpty) {
  std::vector<std::string> Pieces;
  std::size_t Begin = 0;
  while (Begin <= S.size()) {
    std::size_t End = S.find(Sep, Begin);
    if (End == std::string_view::npos)
      End = S.size();
    std::string_view Piece = S.substr(Begin, End - Begin);
    if (KeepEmpty || !Piece.empty())
      Pieces.emplace_back(Piece);
    Begin = End + 1;
    if (End == S.size())
      break;
  }
  return Pieces;
}

std::vector<std::string> smat::splitWhitespace(std::string_view S) {
  std::vector<std::string> Pieces;
  std::size_t I = 0;
  while (I < S.size()) {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
    std::size_t Begin = I;
    while (I < S.size() && !std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
    if (I > Begin)
      Pieces.emplace_back(S.substr(Begin, I - Begin));
  }
  return Pieces;
}

bool smat::equalsIgnoreCase(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (std::size_t I = 0; I != A.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

bool smat::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::string smat::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<std::size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
