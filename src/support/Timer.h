//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timer and a repetition-controlled measurement helper used by
/// the scoreboard search, the trainer, and all benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_TIMER_H
#define SMAT_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace smat {

/// A simple steady-clock stopwatch.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p Fn repeatedly until at least \p MinSeconds have elapsed (and at
/// least \p MinReps repetitions have run) and returns the mean seconds per
/// call. Used everywhere a per-kernel time is needed so that very fast
/// kernels are still measured with acceptable resolution.
template <typename Callable>
double measureSecondsPerCall(Callable &&Fn, double MinSeconds = 2e-3,
                             std::uint64_t MinReps = 3) {
  // One warm-up call so first-touch page faults and cache cold misses do not
  // pollute the measurement.
  Fn();
  std::uint64_t Reps = 0;
  WallTimer Timer;
  double Elapsed = 0.0;
  do {
    Fn();
    ++Reps;
    Elapsed = Timer.seconds();
  } while (Elapsed < MinSeconds || Reps < MinReps);
  return Elapsed / static_cast<double>(Reps);
}

/// Converts a per-call SpMV time into GFLOPS given the nonzero count.
/// Each nonzero contributes one multiply and one add.
inline double spmvGflops(std::uint64_t Nnz, double SecondsPerCall) {
  if (SecondsPerCall <= 0.0)
    return 0.0;
  return 2.0 * static_cast<double>(Nnz) / SecondsPerCall * 1e-9;
}

} // namespace smat

#endif // SMAT_SUPPORT_TIMER_H
