//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timer and a repetition-controlled measurement helper used by
/// the scoreboard search, the trainer, and all benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_TIMER_H
#define SMAT_SUPPORT_TIMER_H

#include "support/FaultInjection.h"
#include "support/Stats.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace smat {

/// A simple steady-clock stopwatch.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Upper bound on repetitions in measureSecondsPerCall. Generous enough to
/// never bind for a real kernel (even a 30 ns call hits a 2 ms MinSeconds
/// floor in ~70k reps), but it stops the loop from spinning forever when a
/// stalled or hostile clock keeps Elapsed below MinSeconds.
inline constexpr std::uint64_t DefaultMaxMeasureReps = 1ull << 26;

/// Runs \p Fn repeatedly until at least \p MinSeconds have elapsed (and at
/// least \p MinReps repetitions have run) and returns the mean seconds per
/// call. Used everywhere a per-kernel time is needed so that very fast
/// kernels are still measured with acceptable resolution.
///
/// Hostile inputs are clamped rather than trusted: MinReps has a floor of
/// one so the rep count can never be zero at the division, \p MaxReps caps
/// the loop so an injected timer stall (or a clock that stops advancing)
/// cannot spin forever, and a non-positive elapsed reading is floored to
/// one nanosecond so MinSeconds=0 never produces a 0/0 or a zero per-call
/// time that downstream GFLOPS math would discard.
template <typename Callable>
double measureSecondsPerCall(Callable &&Fn, double MinSeconds = 2e-3,
                             std::uint64_t MinReps = 3,
                             std::uint64_t MaxReps = DefaultMaxMeasureReps) {
  // One warm-up call so first-touch page faults and cache cold misses do not
  // pollute the measurement.
  Fn();
  MinReps = std::max<std::uint64_t>(MinReps, 1);
  MaxReps = std::max(MaxReps, MinReps);
  std::uint64_t Reps = 0;
  WallTimer Timer;
  double Elapsed = 0.0;
  do {
    Fn();
    ++Reps;
    Elapsed = Timer.seconds();
  } while ((Elapsed < MinSeconds || Reps < MinReps) && Reps < MaxReps);
  if (!(Elapsed > 0.0))
    Elapsed = 1e-9;
  return Elapsed / static_cast<double>(Reps);
}

/// Controls for robustMeasureSecondsPerCall.
struct RobustMeasureOptions {
  /// Per-sample measurement floor (passed through to measureSecondsPerCall).
  double MinSeconds = 2e-3;
  /// Per-sample repetition floor.
  std::uint64_t MinReps = 3;
  /// Per-sample repetition cap.
  std::uint64_t MaxReps = DefaultMaxMeasureReps;
  /// Samples taken per attempt; the reported time is their minimum.
  int Samples = 3;
  /// A sample set whose relativeSpread() exceeds this is considered noisy
  /// and retried.
  double MaxRelativeSpread = 0.25;
  /// Noisy-sample retries. Each retry doubles MinSeconds (capped exponential
  /// backoff): longer windows average out scheduling jitter.
  int MaxRetries = 2;
  /// Wall-clock budget in seconds for this whole measurement; 0 = unlimited.
  /// Checked between samples, so one sample may overshoot slightly.
  double BudgetSeconds = 0.0;
};

/// Outcome of robustMeasureSecondsPerCall.
struct RobustMeasureResult {
  /// Minimum per-call seconds across the accepted sample set.
  double SecondsPerCall = 0.0;
  /// The final sample set still exceeded MaxRelativeSpread.
  bool Noisy = false;
  /// Sampling stopped early because BudgetSeconds ran out.
  bool BudgetHit = false;
  /// Backoff retries performed.
  int Retries = 0;
  /// Total samples measured across all attempts.
  int SamplesTaken = 0;
};

/// Outlier-robust wrapper around measureSecondsPerCall: takes min-of-k
/// samples, checks their relative spread, and retries noisy sets with a
/// doubled measurement window (capped exponential backoff). The minimum is
/// the right summary for wall-clock timing — interference only ever adds
/// time — and the spread check tells the caller how trustworthy it is.
/// Always returns a usable positive time, even when the budget expires
/// after the first sample.
template <typename Callable>
RobustMeasureResult
robustMeasureSecondsPerCall(Callable &&Fn,
                            const RobustMeasureOptions &Opts = {}) {
  RobustMeasureResult Result;
  WallTimer Budget;
  double MinSeconds = Opts.MinSeconds;
  int Samples = std::max(Opts.Samples, 1);
  std::vector<double> Set;
  Set.reserve(static_cast<std::size_t>(Samples));
  for (int Attempt = 0;; ++Attempt) {
    Set.clear();
    for (int I = 0; I != Samples; ++I) {
      // The first sample is unconditional so there is always a result; after
      // that, stop sampling once the budget is spent.
      if (I > 0 && Opts.BudgetSeconds > 0.0 &&
          Budget.seconds() >= Opts.BudgetSeconds) {
        Result.BudgetHit = true;
        break;
      }
      double Sample =
          measureSecondsPerCall(Fn, MinSeconds, Opts.MinReps, Opts.MaxReps);
      Sample = fault::injectTimerSample("measure.timer", Sample);
      Set.push_back(Sample);
      ++Result.SamplesTaken;
    }
    Result.SecondsPerCall = std::max(minValue(Set), 1e-12);
    Result.Noisy = relativeSpread(Set) > Opts.MaxRelativeSpread;
    if (!Result.Noisy || Result.BudgetHit || Attempt >= Opts.MaxRetries)
      return Result;
    if (Opts.BudgetSeconds > 0.0 && Budget.seconds() >= Opts.BudgetSeconds) {
      Result.BudgetHit = true;
      return Result;
    }
    ++Result.Retries;
    MinSeconds *= 2.0;
  }
}

/// Converts a per-call SpMV time into GFLOPS given the nonzero count.
/// Each nonzero contributes one multiply and one add.
inline double spmvGflops(std::uint64_t Nnz, double SecondsPerCall) {
  if (SecondsPerCall <= 0.0)
    return 0.0;
  return 2.0 * static_cast<double>(Nnz) / SecondsPerCall * 1e-9;
}

} // namespace smat

#endif // SMAT_SUPPORT_TIMER_H
