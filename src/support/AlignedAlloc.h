//===- support/AlignedAlloc.h - Cache-line aligned storage ------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An STL allocator producing 64-byte aligned storage, plus the AlignedVector
/// alias used for all kernel-visible arrays so SIMD loads never straddle
/// cache lines at the buffer start.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_ALIGNEDALLOC_H
#define SMAT_SUPPORT_ALIGNEDALLOC_H

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace smat {

/// STL-compatible allocator that hands out \p Alignment-aligned blocks.
template <typename T, std::size_t Alignment = 64> class AlignedAllocator {
public:
  using value_type = T;

  AlignedAllocator() noexcept = default;

  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept {}

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T *allocate(std::size_t N) {
    if (N == 0)
      return nullptr;
    // std::aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t Bytes = N * sizeof(T);
    std::size_t Rounded = (Bytes + Alignment - 1) / Alignment * Alignment;
    void *P = std::aligned_alloc(Alignment, Rounded);
    if (!P)
      throw std::bad_alloc();
    return static_cast<T *>(P);
  }

  void deallocate(T *P, std::size_t) noexcept { std::free(P); }

  friend bool operator==(const AlignedAllocator &, const AlignedAllocator &) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &, const AlignedAllocator &) {
    return false;
  }
};

/// The vector type used for all numeric payload arrays in the library.
template <typename T> using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace smat

#endif // SMAT_SUPPORT_ALIGNEDALLOC_H
