//===- support/AlignedAlloc.h - Cache-line aligned storage ------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An STL allocator producing 64-byte aligned storage, plus the AlignedVector
/// alias used for all kernel-visible arrays so SIMD loads never straddle
/// cache lines at the buffer start.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_ALIGNEDALLOC_H
#define SMAT_SUPPORT_ALIGNEDALLOC_H

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace smat {

/// STL-compatible allocator that hands out \p Alignment-aligned blocks.
template <typename T, std::size_t Alignment = 64> class AlignedAllocator {
public:
  using value_type = T;

  AlignedAllocator() noexcept = default;

  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept {}

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T *allocate(std::size_t N) {
    if (N == 0)
      return nullptr;
    // N * sizeof(T) (and the alignment round-up below) must not wrap; a
    // wrapped size would allocate a tiny block for a huge request.
    if (N > (static_cast<std::size_t>(-1) - (Alignment - 1)) / sizeof(T))
      throw std::bad_alloc();
    // std::aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t Bytes = N * sizeof(T);
    std::size_t Rounded = (Bytes + Alignment - 1) / Alignment * Alignment;
    void *P = std::aligned_alloc(Alignment, Rounded);
    if (!P)
      throw std::bad_alloc();
    return static_cast<T *>(P);
  }

  void deallocate(T *P, std::size_t) noexcept { std::free(P); }
};

// Cross-type comparisons (the allocator requirements compare rebound
// allocators, e.g. AlignedAllocator<int> against a node allocator). Hidden
// same-type friends would be ambiguous here: the converting constructor
// makes both operands convertible to either side.
template <typename T, typename U, std::size_t Alignment>
bool operator==(const AlignedAllocator<T, Alignment> &,
                const AlignedAllocator<U, Alignment> &) noexcept {
  return true;
}
template <typename T, typename U, std::size_t Alignment>
bool operator!=(const AlignedAllocator<T, Alignment> &,
                const AlignedAllocator<U, Alignment> &) noexcept {
  return false;
}

/// The vector type used for all numeric payload arrays in the library.
template <typename T> using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace smat

#endif // SMAT_SUPPORT_ALIGNEDALLOC_H
