//===- support/Str.h - String utilities -------------------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny string helpers used by MatrixMarket parsing, model (de)serialization,
/// and CSV emission.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_STR_H
#define SMAT_SUPPORT_STR_H

#include <string>
#include <string_view>
#include <vector>

namespace smat {

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, dropping empty pieces when \p KeepEmpty is false.
std::vector<std::string> split(std::string_view S, char Sep,
                               bool KeepEmpty = false);

/// Splits \p S on runs of whitespace.
std::vector<std::string> splitWhitespace(std::string_view S);

/// Case-insensitive equality for ASCII strings.
bool equalsIgnoreCase(std::string_view A, std::string_view B);

/// \returns true when \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace smat

#endif // SMAT_SUPPORT_STR_H
