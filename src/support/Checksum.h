//===- support/Checksum.h - Content checksums for snapshots -----*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a content hashing for crash-safe snapshot files (PlanCache
/// persistence). Not cryptographic: the goal is detecting truncation, bit
/// rot, and partial writes, so a corrupt snapshot cold-starts instead of
/// poisoning the plan cache.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_SUPPORT_CHECKSUM_H
#define SMAT_SUPPORT_CHECKSUM_H

#include <cstdint>
#include <string_view>

namespace smat {

/// 64-bit FNV-1a over \p Bytes.
inline std::uint64_t fnv1a64(std::string_view Bytes) {
  std::uint64_t Hash = 1469598103934665603ull;
  for (char C : Bytes) {
    Hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(C));
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace smat

#endif // SMAT_SUPPORT_CHECKSUM_H
