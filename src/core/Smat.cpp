//===- core/Smat.cpp - The SMAT runtime auto-tuner ------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Smat.h"

#include "support/Compiler.h"
#include "support/Timer.h"

#include <stdexcept>

using namespace smat;

namespace {

/// Cheap structural plausibility of a DIA/ELL conversion, computed from the
/// already-extracted features so no conversion is attempted for hopeless
/// candidates during execute-and-measure.
bool diaPlausible(const FeatureVector &F) {
  if (F.Ndiags <= 0 || F.Ndiags > DefaultMaxDiags)
    return false;
  return F.ErDia * DefaultMaxFillRatio >= 1.0;
}

bool ellPlausible(const FeatureVector &F) {
  if (F.MaxRd <= 0)
    return false;
  return F.ErEll * DefaultMaxFillRatio >= 1.0;
}

/// BSR candidacy from the 4x4 block fill-efficiency feature; the runtime
/// uses the same strict guard as training (padding inflates flops).
bool bsrPlausible(const FeatureVector &F) {
  constexpr double BsrMaxFillRatio = 1.5;
  return F.ErBsr * BsrMaxFillRatio >= 1.0;
}

} // namespace

template <typename T> void TunedSpmv<T>::apply(const T *X, T *Y) const {
  switch (Report.ChosenFormat) {
  case FormatKind::CSR:
    CsrFn(*Csr, X, Y);
    return;
  case FormatKind::COO:
    CooFn(*Coo, X, Y);
    return;
  case FormatKind::DIA:
    DiaFn(*Dia, X, Y);
    return;
  case FormatKind::ELL:
    EllFn(*Ell, X, Y);
    return;
  case FormatKind::BSR:
    BsrFn(*Bsr, X, Y);
    return;
  }
  smatUnreachable("invalid chosen format");
}

template <typename T> Smat<T> Smat<T>::fromFile(const std::string &Path) {
  LearningModel Model;
  std::string Error;
  if (!loadModelFile(Path, Model, Error))
    throw std::runtime_error("SMAT model load failed: " + Error);
  return Smat(std::move(Model));
}

template <typename T>
TunedSpmv<T> Smat<T>::tune(const CsrMatrix<T> &A,
                           const TuneOptions &Opts) const {
  assert(A.isValid() && "tune() requires a structurally valid CSR matrix");
  const KernelTable<T> &Kernels = kernelTable<T>();
  WallTimer TuneTimer;

  TunedSpmv<T> Op;
  Op.NumRows = A.NumRows;
  Op.NumCols = A.NumCols;
  Op.Nnz = A.nnz();
  TuningReport &Report = Op.Report;

  // --- Feature extraction, step 1 (everything but R). ---------------------
  Report.Features = extractStructureFeatures(A);

  // --- Rule-group walk with lazy R (feature extraction step 2). -----------
  // Groups are visited in DIA -> ELL -> CSR -> COO order; R is computed the
  // first time a group whose rules reference it comes up (COO always does in
  // spirit: its signature feature is the power-law exponent).
  bool HaveR = false;
  auto EnsureR = [&] {
    if (HaveR)
      return;
    extractPowerLawFeature(A, Report.Features);
    HaveR = true;
  };

  Report.ModelConfident = false;
  Report.ModelPrediction = Model.Rules.DefaultFormat;
  Report.ModelConfidence = 0.0;
  {
    auto X = Report.Features.values();
    for (FormatKind Kind : RuleGroupOrder) {
      if (Kind == FormatKind::BSR && !Model.BsrEnabled)
        continue;
      if (Model.GroupUsesR[static_cast<int>(Kind)] ||
          Kind == FormatKind::COO) {
        EnsureR();
        X = Report.Features.values();
      }
      double Confidence = Model.Rules.groupConfidence(Kind, X);
      if (Confidence > Model.ConfidenceThreshold) {
        Report.ModelPrediction = Kind;
        Report.ModelConfidence = Confidence;
        Report.ModelConfident = true;
        break;
      }
    }
    if (!Report.ModelConfident) {
      EnsureR();
      RulePrediction P = Model.Rules.classify(Report.Features.values());
      Report.ModelPrediction = P.Format;
      Report.ModelConfidence = P.Confidence;
      Report.ModelConfident = P.Confidence > Model.ConfidenceThreshold;
    }
  }

  // --- Decide the format. --------------------------------------------------
  FormatKind Chosen = Report.ModelPrediction;
  bool Measure =
      Opts.ForceMeasure || (!Report.ModelConfident && Opts.AllowMeasure);
  if (Measure) {
    // Execute-and-measure over the plausible candidates (paper Figure 7's
    // below-threshold path; Table 3 shows e.g. "CSR+COO" executions).
    AlignedVector<T> X(static_cast<std::size_t>(A.NumCols), T(1));
    AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows), T(0));

    auto Consider = [&](FormatKind Kind, auto &&RunOnce) {
      double Seconds =
          measureSecondsPerCall(RunOnce, Opts.MeasureMinSeconds);
      Report.MeasuredGflops.emplace_back(
          Kind, spmvGflops(static_cast<std::uint64_t>(A.nnz()), Seconds));
    };

    auto BestIdx = [this](FormatKind Kind) {
      return static_cast<std::size_t>(
          Model.Kernels.BestKernel[static_cast<int>(Kind)]);
    };

    Consider(FormatKind::CSR, [&] {
      Kernels.Csr[BestIdx(FormatKind::CSR)].Fn(A, X.data(), Y.data());
    });
    {
      CooMatrix<T> Coo = csrToCoo(A);
      Consider(FormatKind::COO, [&] {
        Kernels.Coo[BestIdx(FormatKind::COO)].Fn(Coo, X.data(), Y.data());
      });
    }
    if (diaPlausible(Report.Features)) {
      DiaMatrix<T> Dia;
      if (csrToDia(A, Dia))
        Consider(FormatKind::DIA, [&] {
          Kernels.Dia[BestIdx(FormatKind::DIA)].Fn(Dia, X.data(), Y.data());
        });
    }
    if (ellPlausible(Report.Features)) {
      EllMatrix<T> Ell;
      if (csrToEll(A, Ell))
        Consider(FormatKind::ELL, [&] {
          Kernels.Ell[BestIdx(FormatKind::ELL)].Fn(Ell, X.data(), Y.data());
        });
    }
    if (Model.BsrEnabled && bsrPlausible(Report.Features)) {
      index_t BlockSize = chooseBsrBlockSize(A);
      BsrMatrix<T> Bsr;
      if (BlockSize > 0 && csrToBsr(A, Bsr, BlockSize))
        Consider(FormatKind::BSR, [&] {
          Kernels.Bsr[BestIdx(FormatKind::BSR)].Fn(Bsr, X.data(), Y.data());
        });
    }

    double BestGflops = -1.0;
    for (const auto &[Kind, Gflops] : Report.MeasuredGflops)
      if (Gflops > BestGflops) {
        BestGflops = Gflops;
        Chosen = Kind;
      }
  }

  // --- Convert and bind the optimal kernel. --------------------------------
  // A DIA/ELL conversion can still fail here when the model predicted it
  // confidently but the guards disagree; CSR is the safe fallback.
  Report.ChosenFormat = Chosen;
  auto BestIdx = [this](FormatKind Kind) {
    return static_cast<std::size_t>(
        Model.Kernels.BestKernel[static_cast<int>(Kind)]);
  };
  switch (Chosen) {
  case FormatKind::COO:
    Op.Coo = std::make_unique<CooMatrix<T>>(csrToCoo(A));
    break;
  case FormatKind::DIA: {
    auto Dia = std::make_unique<DiaMatrix<T>>();
    if (csrToDia(A, *Dia))
      Op.Dia = std::move(Dia);
    else
      Report.ChosenFormat = FormatKind::CSR;
    break;
  }
  case FormatKind::ELL: {
    auto Ell = std::make_unique<EllMatrix<T>>();
    if (csrToEll(A, *Ell))
      Op.Ell = std::move(Ell);
    else
      Report.ChosenFormat = FormatKind::CSR;
    break;
  }
  case FormatKind::BSR: {
    auto Bsr = std::make_unique<BsrMatrix<T>>();
    index_t BlockSize = chooseBsrBlockSize(A);
    if (BlockSize > 0 && csrToBsr(A, *Bsr, BlockSize))
      Op.Bsr = std::move(Bsr);
    else
      Report.ChosenFormat = FormatKind::CSR;
    break;
  }
  case FormatKind::CSR:
    break;
  }

  switch (Report.ChosenFormat) {
  case FormatKind::CSR: {
    Op.Csr = &A;
    const auto &K = Kernels.Csr[BestIdx(FormatKind::CSR)];
    Op.CsrFn = K.Fn;
    Report.KernelName = K.Name;
    break;
  }
  case FormatKind::COO: {
    const auto &K = Kernels.Coo[BestIdx(FormatKind::COO)];
    Op.CooFn = K.Fn;
    Report.KernelName = K.Name;
    break;
  }
  case FormatKind::DIA: {
    const auto &K = Kernels.Dia[BestIdx(FormatKind::DIA)];
    Op.DiaFn = K.Fn;
    Report.KernelName = K.Name;
    break;
  }
  case FormatKind::ELL: {
    const auto &K = Kernels.Ell[BestIdx(FormatKind::ELL)];
    Op.EllFn = K.Fn;
    Report.KernelName = K.Name;
    break;
  }
  case FormatKind::BSR: {
    const auto &K = Kernels.Bsr[BestIdx(FormatKind::BSR)];
    Op.BsrFn = K.Fn;
    Report.KernelName = K.Name;
    break;
  }
  }

  Report.TuneSeconds = TuneTimer.seconds();

  // Overhead unit: one basic CSR SpMV on this matrix (Table 3's metric).
  {
    AlignedVector<T> X(static_cast<std::size_t>(A.NumCols), T(1));
    AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows), T(0));
    Report.CsrSpmvSeconds = measureSecondsPerCall(
        [&] { Kernels.Csr[0].Fn(A, X.data(), Y.data()); }, 1e-4, 2);
  }
  return Op;
}

TunedSpmv<double> smat::SMAT_dCSR_SpMV(const Smat<double> &Tuner,
                                       const CsrMatrix<double> &A) {
  return Tuner.tune(A);
}

TunedSpmv<float> smat::SMAT_sCSR_SpMV(const Smat<float> &Tuner,
                                      const CsrMatrix<float> &A) {
  return Tuner.tune(A);
}

namespace smat {
template class TunedSpmv<float>;
template class TunedSpmv<double>;
template class Smat<float>;
template class Smat<double>;
} // namespace smat
