//===- core/Smat.cpp - The SMAT runtime auto-tuner ------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Smat.h"

#include "support/Timer.h"

#include <cmath>
#include <stdexcept>

using namespace smat;

template <typename T> Smat<T> Smat<T>::fromFile(const std::string &Path) {
  LearningModel Model;
  std::string Error;
  if (!loadModelFile(Path, Model, Error))
    throw std::runtime_error("SMAT model load failed for '" + Path +
                             "': " + Error);
  return Smat(std::move(Model));
}

template <typename T>
std::optional<Smat<T>> Smat<T>::tryFromFile(const std::string &Path,
                                            std::string *Error) {
  LearningModel Model;
  std::string Reason;
  if (!loadModelFile(Path, Model, Reason)) {
    if (Error)
      *Error = "SMAT model load failed for '" + Path + "': " + Reason;
    return std::nullopt;
  }
  return Smat(std::move(Model));
}

template <typename T>
Status Smat<T>::validateTuneInput(const CsrMatrix<T> &A,
                                  const TuneOptions &Opts) {
  if (Status S = validateCsr(A); !S.ok())
    return S;
  if (!(Opts.MeasureMinSeconds >= 0.0) ||
      !std::isfinite(Opts.MeasureMinSeconds))
    return Status::error(
        ErrorCode::InvalidArgument,
        formatString("TuneOptions: MeasureMinSeconds must be finite and "
                     "non-negative (got %g)",
                     Opts.MeasureMinSeconds));
  return Status::success();
}

template <typename T>
TunedSpmv<T> Smat<T>::tune(const CsrMatrix<T> &A,
                           const TuneOptions &Opts) const {
  if (Status S = validateTuneInput(A, Opts); !S.ok())
    throw std::invalid_argument("SMAT tune rejected input: " + S.message());
  return tuneImpl(A, Opts, nullptr);
}

template <typename T>
TunedSpmv<T> Smat<T>::tune(CsrMatrix<T> &&A, TuneOptions Opts) const {
  if (Status S = validateTuneInput(A, Opts); !S.ok())
    throw std::invalid_argument("SMAT tune rejected input: " + S.message());
  Opts.CsrMode = CsrStorage::Owned;
  return tuneImpl(A, Opts, &A);
}

template <typename T>
Expected<TunedSpmv<T>> Smat<T>::tryTune(const CsrMatrix<T> &A,
                                        const TuneOptions &Opts) const {
  if (Status S = validateTuneInput(A, Opts); !S.ok())
    return S;
  return tuneImpl(A, Opts, nullptr);
}

template <typename T>
Expected<TunedSpmv<T>> Smat<T>::tryTune(CsrMatrix<T> &&A,
                                        TuneOptions Opts) const {
  if (Status S = validateTuneInput(A, Opts); !S.ok())
    return S;
  Opts.CsrMode = CsrStorage::Owned;
  return tuneImpl(A, Opts, &A);
}

template <typename T>
TunedSpmv<T> Smat<T>::tuneImpl(const CsrMatrix<T> &A, const TuneOptions &Opts,
                               CsrMatrix<T> *MoveSource) const {
  // Every public entry point has already run validateTuneInput; interior
  // stages assume a well-formed matrix from here on.
  assert(A.isValid() && "tuneImpl behind an unvalidated boundary");
  WallTimer TuneTimer;

  TunedSpmv<T> Op;
  Op.NumRows = A.NumRows;
  Op.NumCols = A.NumCols;
  Op.Nnz = A.nnz();
  TuningReport &Report = Op.Report;

  TuningContext<T> Ctx{A, Model, Opts, MoveSource};

  // Stage 1: feature extraction (step 1; R stays lazy inside PredictStage).
  FeatureStageResult Features = FeatureStage::run(Ctx);
  Report.FeatureSeconds = Features.Seconds;

  // Plan-cache probe. The fingerprint needs only step-1 features, so a hit
  // costs one extraction + one hash lookup and skips everything up to the
  // bind. ForceMeasure bypasses the lookup (the caller wants ground truth)
  // but the freshly tuned plan is still inserted below.
  FormatKind Chosen = FormatKind::CSR;
  bool Decided = false;
  PlanFingerprint Fp;
  if (Opts.Cache) {
    Fp = fingerprintFeatures(Features.Features);
    CachedPlan Plan;
    if (!Opts.ForceMeasure && Opts.Cache->lookup(Fp, Plan)) {
      Chosen = Plan.Format;
      Report.CsrSpmvSeconds = Plan.CsrSpmvSeconds;
      Report.PlanCacheHit = true;
      Decided = true;
    }
  }

  // The overhead-baseline measurement is excluded from TuneSeconds (it is
  // the unit of Table 3's metric, not part of tuning); track it so it can be
  // subtracted from the wall clock at the end.
  double BaselineSeconds = 0.0;

  if (!Decided) {
    // Stage 2: confidence-gated prediction.
    PredictStageResult Prediction = PredictStage::run(Ctx, Features);
    Report.ModelPrediction = Prediction.Prediction;
    Report.ModelConfidence = Prediction.Confidence;
    Report.ModelConfident = Prediction.Confident;
    Report.PredictSeconds = Prediction.Seconds;
    Chosen = Prediction.Prediction;

    // Stage 3: execute-and-measure when forced or unconfident.
    if (MeasureStage::shouldRun(Opts, Prediction)) {
      MeasureStageResult Measured =
          MeasureStage::run(Ctx, Features, Prediction.Prediction);
      Report.MeasuredGflops = std::move(Measured.MeasuredGflops);
      Report.MeasureSeconds = Measured.Seconds;
      Chosen = Measured.Best;
    }

    // Overhead unit: one basic CSR SpMV on this matrix (Table 3's metric).
    // Measured before the bind because an rvalue-path bind may move A away.
    {
      WallTimer BaselineTimer;
      const KernelTable<T> &Kernels = kernelTable<T>();
      AlignedVector<T> X(static_cast<std::size_t>(A.NumCols), T(1));
      AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows), T(0));
      Report.CsrSpmvSeconds = measureSecondsPerCall(
          [&] { Kernels.Csr[0].Fn(A, X.data(), Y.data()); }, 1e-4, 2);
      BaselineSeconds = BaselineTimer.seconds();
    }
  }

  // Stage 4: conversion + kernel binding. The bound format can fall back to
  // CSR when a conversion guard rejects a confident prediction (or a stale
  // cached plan); the report and the cache both record what was bound.
  BindStageResult<T> Bound = BindStage::run(Ctx, Chosen);
  Report.ChosenFormat = Bound.BoundFormat;
  Report.KernelName = std::move(Bound.KernelName);
  Report.BindSeconds = Bound.Seconds;
  Op.Op = std::move(Bound.Op);

  if (Opts.Cache && !Report.PlanCacheHit)
    Opts.Cache->insert(Fp, {Report.ChosenFormat, Report.CsrSpmvSeconds});

  Report.Features = Features.Features;
  Report.TuneSeconds = std::max(0.0, TuneTimer.seconds() - BaselineSeconds);
  return Op;
}

TunedSpmv<double> smat::SMAT_dCSR_SpMV(const Smat<double> &Tuner,
                                       const CsrMatrix<double> &A,
                                       const TuneOptions &Opts) {
  return Tuner.tune(A, Opts);
}

TunedSpmv<float> smat::SMAT_sCSR_SpMV(const Smat<float> &Tuner,
                                      const CsrMatrix<float> &A,
                                      const TuneOptions &Opts) {
  return Tuner.tune(A, Opts);
}

namespace {

template <typename T>
ErrorCode trySpmvEntry(const Smat<T> &Tuner, const CsrMatrix<T> &A,
                       TunedSpmv<T> &Out, std::string *ErrorMessage,
                       const TuneOptions &Opts) {
  Expected<TunedSpmv<T>> Result = Tuner.tryTune(A, Opts);
  if (!Result.ok()) {
    if (ErrorMessage)
      *ErrorMessage = Result.status().message();
    return Result.status().code();
  }
  Out = std::move(*Result);
  return ErrorCode::Ok;
}

} // namespace

ErrorCode smat::SMAT_dCSR_SpMV_try(const Smat<double> &Tuner,
                                   const CsrMatrix<double> &A,
                                   TunedSpmv<double> &Out,
                                   std::string *ErrorMessage,
                                   const TuneOptions &Opts) {
  return trySpmvEntry(Tuner, A, Out, ErrorMessage, Opts);
}

ErrorCode smat::SMAT_sCSR_SpMV_try(const Smat<float> &Tuner,
                                   const CsrMatrix<float> &A,
                                   TunedSpmv<float> &Out,
                                   std::string *ErrorMessage,
                                   const TuneOptions &Opts) {
  return trySpmvEntry(Tuner, A, Out, ErrorMessage, Opts);
}

namespace smat {
template class TunedSpmv<float>;
template class TunedSpmv<double>;
template class Smat<float>;
template class Smat<double>;
} // namespace smat
