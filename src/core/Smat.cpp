//===- core/Smat.cpp - The SMAT runtime auto-tuner ------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Smat.h"

#include "support/FaultInjection.h"
#include "support/Timer.h"

#include <cmath>
#include <limits>
#include <stdexcept>

using namespace smat;

namespace {

/// Rungs are ordered; a tune reports the deepest one it touched.
DegradationLevel maxLevel(DegradationLevel A, DegradationLevel B) {
  return static_cast<int>(A) >= static_cast<int>(B) ? A : B;
}

} // namespace

template <typename T> Smat<T> Smat<T>::fromFile(const std::string &Path) {
  LearningModel Model;
  std::string Error;
  if (!loadModelFile(Path, Model, Error))
    throw std::runtime_error("SMAT model load failed for '" + Path +
                             "': " + Error);
  return Smat(std::move(Model));
}

template <typename T>
std::optional<Smat<T>> Smat<T>::tryFromFile(const std::string &Path,
                                            std::string *Error) {
  LearningModel Model;
  std::string Reason;
  if (!loadModelFile(Path, Model, Reason)) {
    if (Error)
      *Error = "SMAT model load failed for '" + Path + "': " + Reason;
    return std::nullopt;
  }
  return Smat(std::move(Model));
}

template <typename T>
Status Smat<T>::validateTuneInput(const CsrMatrix<T> &A,
                                  const TuneOptions &Opts) {
  if (Status S = validateCsr(A); !S.ok())
    return S;
  return validateTuneOptions(Opts);
}

template <typename T>
Status Smat<T>::validateTuneOptions(const TuneOptions &Opts) {
  if (!(Opts.MeasureMinSeconds >= 0.0) ||
      !std::isfinite(Opts.MeasureMinSeconds))
    return Status::error(
        ErrorCode::InvalidArgument,
        formatString("TuneOptions: MeasureMinSeconds must be finite and "
                     "non-negative (got %g)",
                     Opts.MeasureMinSeconds));
  if (!(Opts.MeasureBudgetSeconds >= 0.0) ||
      !std::isfinite(Opts.MeasureBudgetSeconds))
    return Status::error(
        ErrorCode::InvalidArgument,
        formatString("TuneOptions: MeasureBudgetSeconds must be finite and "
                     "non-negative (got %g)",
                     Opts.MeasureBudgetSeconds));
  if (!(Opts.TuneBudgetSeconds >= 0.0) || !std::isfinite(Opts.TuneBudgetSeconds))
    return Status::error(
        ErrorCode::InvalidArgument,
        formatString("TuneOptions: TuneBudgetSeconds must be finite and "
                     "non-negative (got %g)",
                     Opts.TuneBudgetSeconds));
  if (Opts.BatchWidth < 1)
    return Status::error(
        ErrorCode::InvalidArgument,
        formatString("TuneOptions: BatchWidth must be at least 1 (got %d)",
                     static_cast<int>(Opts.BatchWidth)));
  // Guard the dense-block size computations (NumCols * BatchWidth and the
  // 2*nnz*K flop count) against overflow from absurd widths.
  constexpr index_t MaxBatchWidth = 65536;
  if (Opts.BatchWidth > MaxBatchWidth)
    return Status::error(
        ErrorCode::InvalidArgument,
        formatString("TuneOptions: BatchWidth must be at most %d (got %d)",
                     static_cast<int>(MaxBatchWidth),
                     static_cast<int>(Opts.BatchWidth)));
  return Status::success();
}

template <typename T>
TunedSpmv<T> Smat<T>::tune(const CsrMatrix<T> &A,
                           const TuneOptions &Opts) const {
  if (Status S = validateTuneInput(A, Opts); !S.ok())
    throw std::invalid_argument("SMAT tune rejected input: " + S.message());
  return tuneImpl(A, Opts, nullptr);
}

template <typename T>
TunedSpmv<T> Smat<T>::tune(CsrMatrix<T> &&A, TuneOptions Opts) const {
  if (Status S = validateTuneInput(A, Opts); !S.ok())
    throw std::invalid_argument("SMAT tune rejected input: " + S.message());
  Opts.CsrMode = CsrStorage::Owned;
  return tuneImpl(A, Opts, &A);
}

template <typename T>
Expected<TunedSpmv<T>> Smat<T>::tryTune(const CsrMatrix<T> &A,
                                        const TuneOptions &Opts) const {
  if (Status S = validateTuneInput(A, Opts); !S.ok())
    return S;
  return tuneImpl(A, Opts, nullptr);
}

template <typename T>
Expected<TunedSpmv<T>> Smat<T>::tryTune(CsrMatrix<T> &&A,
                                        TuneOptions Opts) const {
  if (Status S = validateTuneInput(A, Opts); !S.ok())
    return S;
  Opts.CsrMode = CsrStorage::Owned;
  return tuneImpl(A, Opts, &A);
}

template <typename T>
TunedSpmv<T> Smat<T>::tuneImpl(const CsrMatrix<T> &A, const TuneOptions &Opts,
                               CsrMatrix<T> *MoveSource) const {
  // Every public entry point has already run validateTuneInput; interior
  // stages assume a well-formed matrix from here on.
  assert(A.isValid() && "tuneImpl behind an unvalidated boundary");
  WallTimer TuneTimer;

  TunedSpmv<T> Op;
  Op.NumRows = A.NumRows;
  Op.NumCols = A.NumCols;
  Op.Nnz = A.nnz();
  TuningReport &Report = Op.Report;

  TuningContext<T> Ctx{A, Model, Opts, MoveSource,
                       Opts.TuneBudgetSeconds > 0.0 ? &TuneTimer : nullptr};

  // Seconds of whole-tune budget left; +inf when unlimited.
  auto TuneRemaining = [&]() -> double {
    if (Opts.TuneBudgetSeconds <= 0.0)
      return std::numeric_limits<double>::infinity();
    return Opts.TuneBudgetSeconds - TuneTimer.seconds();
  };

  // Stage 1: feature extraction (step 1; R stays lazy inside PredictStage).
  // A matrix that passed validation cannot fail to tune: a throwing stage
  // is dropped and the tune continues with what remains (DESIGN.md section
  // 12). Without features there is no fingerprint and no rule walk, so the
  // decision collapses straight to CSR.
  FeatureStageResult Features;
  bool HaveFeatures = true;
  try {
    Features = FeatureStage::run(Ctx);
  } catch (...) {
    HaveFeatures = false;
    Features = FeatureStageResult();
    ++Report.DroppedCandidates;
  }
  Report.FeatureSeconds = Features.Seconds;

  // Analytic bottleneck classification (CostModel.h): computed from step-1
  // features only, so it is available before the cache probe (the class is
  // part of the fingerprint) and costs no extra matrix traversal. Pruning is
  // only applied to the execute-and-measure race, and never under
  // ForceMeasure (the caller asked for ground truth over the full set).
  CostModelDecision CostDecision;
  bool HaveCost = false;
  if (HaveFeatures) {
    CostDecision = classifyBottleneck(Features.Features, Model.Cost);
    Report.Bottleneck = CostDecision.Class;
    HaveCost = Opts.CostModelPrune && !Opts.ForceMeasure;
    Report.CostModelApplied = HaveCost;
  }

  // Plan-cache probe. The fingerprint needs only step-1 features, so a hit
  // costs one extraction + one hash lookup and skips everything up to the
  // bind. The probe is a singleflight: a miss whose fingerprint another
  // thread is already tuning waits for that thread's published plan instead
  // of measuring the same structure twice. ForceMeasure bypasses the lookup
  // (the caller wants ground truth) but the freshly tuned plan is still
  // inserted below.
  FormatKind Chosen = FormatKind::CSR;
  bool Decided = !HaveFeatures;
  // The guardrail's decision to bind the untuned basic-CSR plan: set when
  // the baseline wins the race, when the cached plan recorded an engaged
  // guardrail, or by the post-bind verification below.
  bool ForceBasic = false;
  // Whether execute-and-measure actually raced candidates this tune; the
  // post-bind verification only runs when it did not (the race already
  // compared the baseline as a first-class candidate).
  bool RanRace = false;
  PlanFingerprint Fp;
  PlanCache *Cache = HaveFeatures ? Opts.Cache : nullptr;
  bool Leading = false;
  if (Cache) {
    Fp = fingerprintFeatures(Features.Features);
    // The batch width is a tuning input, not a matrix feature, so it is
    // stamped onto the fingerprint here rather than in fingerprintFeatures:
    // the same structure tuned at k=1 and k=8 may bind different plans, and
    // a warm tune at a new width must miss only the width bucket. The
    // bottleneck class is stamped for the same reason in reverse: it changes
    // which candidates raced, so plans from pruned and unpruned tunes must
    // not alias.
    Fp.WidthBucket =
        Opts.BatchWidth > 1
            ? static_cast<std::int16_t>(1 + spmmWidthIndex(Opts.BatchWidth))
            : std::int16_t(0);
    Fp.ClassBucket =
        HaveCost ? static_cast<std::int16_t>(
                       1 + static_cast<int>(CostDecision.Class))
                 : std::int16_t(0);
    // Hot-reload invalidation: plans tuned under an older model generation
    // stop matching once the service bumps the counter (PlanCache.h).
    Fp.ModelGeneration = static_cast<std::int32_t>(Opts.ModelGeneration);
    if (!Opts.ForceMeasure) {
      PlanProbe Probe = Cache->lookupOrLead(Fp);
      if (Probe.Hit) {
        Chosen = Probe.Plan.Format;
        Report.CsrSpmvSeconds = Probe.Plan.CsrSpmvSeconds;
        Report.PlanCacheHit = true;
        Report.PlanShared = Probe.Shared;
        // A cached guardrail engagement replays the guarded bind: the class
        // was already shown to be fastest untuned, so the warm tune binds
        // the basic plan directly instead of re-deriving that verdict.
        Report.GuardrailEngaged = Probe.Plan.GuardrailEngaged;
        ForceBasic = Probe.Plan.GuardrailEngaged;
        Decided = true;
      } else {
        Leading = true;
      }
    }
  }

  // While leading, every exit path must release the lease or the threads
  // waiting on this fingerprint block forever; the guard abandons it unless
  // the normal path publishes first.
  struct LeaseGuard {
    PlanCache *Cache;
    const PlanFingerprint *Fp;
    bool Active;
    ~LeaseGuard() {
      if (Active)
        Cache->abandon(*Fp);
    }
  } Lease{Cache, &Fp, Leading};

  // The overhead-baseline measurement is excluded from TuneSeconds (it is
  // the unit of Table 3's metric, not part of tuning); track it so it can be
  // subtracted from the wall clock at the end.
  double BaselineSeconds = 0.0;

  // The guardrail is a measurement: with AllowMeasure false (and no
  // ForceMeasure) the caller asked for the model's deterministic answer,
  // and a timing-dependent override would break that contract.
  const bool GuardrailActive =
      Opts.Guardrail && (Opts.AllowMeasure || Opts.ForceMeasure);

  if (!Decided) {
    // Overhead unit and guardrail baseline: one basic CSR SpMV on this
    // matrix (Table 3's metric), measured up front — before the bind can
    // move A away, and before the race so the untuned plan can compete in
    // it as a first-class candidate. A batched tune additionally times the
    // basic CSR SpMM at the requested width: the guardrail must compare
    // like units (effective GFLOPS at that width), and a k-wide SpMM is not
    // k SpMVs. Skipped when the tune budget is already spent; the report
    // then has no overhead unit (overheadRatio() returns 0) and the
    // guardrail is inactive (BaselineGflops stays 0).
    if (TuneRemaining() > 0.0) {
      try {
        WallTimer BaselineTimer;
        const KernelTable<T> &Kernels = kernelTable<T>();
        const index_t Width = std::max<index_t>(index_t(1), Opts.BatchWidth);
        AlignedVector<T> X(static_cast<std::size_t>(A.NumCols) *
                               static_cast<std::size_t>(Width),
                           T(1));
        AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows) *
                               static_cast<std::size_t>(Width),
                           T(0));
        // Min-of-k quick sampling, not a single shot: the baseline feeds a
        // selection comparison, and a one-shot timing inflated by a
        // scheduling spike would let the guardrail spuriously override a
        // good plan. The minimum is robust — interference only adds time.
        RobustMeasureOptions BOpts;
        BOpts.MinSeconds = 1e-4;
        BOpts.MinReps = 2;
        BOpts.MaxRetries = 1;
        RobustMeasureResult BM = robustMeasureSecondsPerCall(
            [&] {
              fault::injectKernelFault("measure.baseline");
              Kernels.Csr[0].Fn(A, X.data(), Y.data());
            },
            BOpts);
        Report.CsrSpmvSeconds = BM.SecondsPerCall;
        Report.NoisyTimings = Report.NoisyTimings || BM.Noisy;
        if (GuardrailActive) {
          if (Width > 1) {
            RobustMeasureResult MM = robustMeasureSecondsPerCall(
                [&] {
                  fault::injectKernelFault("measure.baseline");
                  Kernels.CsrSpmm[0].Fn(A, X.data(), Y.data(), Width);
                },
                BOpts);
            Report.BaselineGflops =
                spmvGflops(static_cast<std::uint64_t>(A.nnz()) *
                               static_cast<std::uint64_t>(Width),
                           MM.SecondsPerCall);
            Report.NoisyTimings = Report.NoisyTimings || MM.Noisy;
          } else {
            Report.BaselineGflops = spmvGflops(
                static_cast<std::uint64_t>(A.nnz()), Report.CsrSpmvSeconds);
          }
        }
        BaselineSeconds = BaselineTimer.seconds();
      } catch (...) {
        Report.CsrSpmvSeconds = 0.0;
        Report.BaselineGflops = 0.0;
        ++Report.DroppedCandidates;
      }
    } else {
      Report.BudgetExhausted = true;
    }

    // Stage 2: confidence-gated prediction. A throwing predictor is dropped;
    // the default-constructed (unconfident) result lets execute-and-measure
    // recover the decision when allowed.
    PredictStageResult Prediction;
    try {
      Prediction = PredictStage::run(Ctx, Features);
    } catch (...) {
      Prediction = PredictStageResult();
      ++Report.DroppedCandidates;
    }
    Report.ModelPrediction = Prediction.Prediction;
    Report.ModelConfidence = Prediction.Confidence;
    Report.ModelConfident = Prediction.Confident;
    Report.PredictSeconds = Prediction.Seconds;
    Chosen = Prediction.Prediction;

    // Stage 3: execute-and-measure when forced or unconfident. The stage
    // handles per-candidate failures and budgets itself; this catch only
    // covers its shared setup (vector allocation). The cost model prunes
    // the candidate set it races; the baseline enters the race and wins it
    // when no tuned candidate beats not tuning.
    if (MeasureStage::shouldRun(Opts, Prediction) && TuneRemaining() > 0.0) {
      try {
        MeasureStageResult Measured = MeasureStage::run(
            Ctx, Features, Prediction.Prediction,
            HaveCost ? &CostDecision : nullptr,
            Opts.Guardrail ? Report.BaselineGflops : 0.0);
        Report.MeasuredGflops = std::move(Measured.MeasuredGflops);
        Report.MeasuredCandidates = std::move(Measured.Candidates);
        Report.MeasureSeconds = Measured.Seconds;
        Report.NoisyTimings = Report.NoisyTimings || Measured.NoisyTimings;
        Report.BudgetExhausted = Measured.BudgetExhausted;
        Report.DroppedCandidates += Measured.DroppedCandidates;
        if (!Measured.MeasuredGflops.empty() || Measured.BaselineWon)
          Chosen = Measured.Best;
        if (Measured.BaselineWon) {
          ForceBasic = true;
          Report.GuardrailEngaged = true;
        }
        RanRace = true;
      } catch (...) {
        ++Report.DroppedCandidates;
      }
    } else if (MeasureStage::shouldRun(Opts, Prediction)) {
      Report.BudgetExhausted = true;
    }
  }

  // Stage 4: conversion + kernel binding through the degradation ladder —
  // full bind, then the basic CSR kernel, then the CSR reference plan. The
  // stage cannot fail; it reports the rung it had to take. The long-standing
  // conversion-guard fallback to CSR inside the full bind stays rung 0: the
  // report and the cache both record what was actually bound.
  // Features (when extraction survived) make the bind skew-aware: the CSR
  // kernel choice follows the row-length CV even on a plan-cache hit, since
  // the cache stores only the format and the kernel is re-bound per tune.
  BindStageResult<T> Bound = BindStage::run(
      Ctx, Chosen, HaveFeatures ? &Features.Features : nullptr, ForceBasic);
  Report.ChosenFormat = Bound.BoundFormat;
  Report.KernelName = std::move(Bound.KernelName);
  Report.BindSeconds = Bound.Seconds;
  Report.Degradation = Bound.Degradation;
  Op.Op = std::move(Bound.Op);

  // Post-bind guardrail verification: on the confident-prediction path the
  // race never ran, so nothing has compared the predicted plan against not
  // tuning — the exact hole the powerlaw mispick fell through. Quick-time
  // the bound operator and rebind the basic CSR plan when the measured
  // baseline beats it beyond the noise floor (quick one-shot timings are
  // noisier than the race's robust measurements, hence the margin).
  // Skipped when: the race already included the baseline; the bound plan is
  // already basic CSR (nothing to fall back to); the rvalue tune path
  // moved the caller's matrix into a CSR operator (re-binding would read a
  // moved-from matrix); or the analytic classifier independently endorses
  // the bound format — two selectors with uncorrelated failure modes
  // agreeing on the plan is the cheap certificate, and measurement only
  // arbitrates when they disagree (the historical powerlaw mispick bound a
  // format its bottleneck class rules out, exactly the disagreement case).
  const bool CostEndorsed =
      HaveCost && CostDecision.allows(Report.ChosenFormat);
  if (GuardrailActive && !Decided && !RanRace && !CostEndorsed &&
      Report.BaselineGflops > 0.0 && Op.Op) {
    const index_t Width = std::max<index_t>(index_t(1), Opts.BatchWidth);
    const KernelTable<T> &Kernels = kernelTable<T>();
    const bool AlreadyBasic =
        Report.ChosenFormat == FormatKind::CSR &&
        (Report.KernelName == Kernels.Csr[0].Name ||
         Report.KernelName == Kernels.CsrSpmm[0].Name);
    const bool SourceConsumed = MoveSource != nullptr &&
                                Opts.CsrMode == CsrStorage::Owned &&
                                Report.ChosenFormat == FormatKind::CSR;
    if (!AlreadyBasic && !SourceConsumed && TuneRemaining() > 0.0) {
      WallTimer GuardTimer;
      try {
        AlignedVector<T> X(static_cast<std::size_t>(A.NumCols) *
                               static_cast<std::size_t>(Width),
                           T(1));
        AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows) *
                               static_cast<std::size_t>(Width),
                           T(0));
        RobustMeasureOptions VOpts;
        VOpts.MinSeconds = 1e-4;
        VOpts.MinReps = 2;
        VOpts.MaxRetries = 1;
        RobustMeasureResult VM = robustMeasureSecondsPerCall(
            [&] {
              fault::injectKernelFault("guardrail.verify");
              if (Width > 1)
                Op.Op->multiply(X.data(), Y.data(), Width);
              else
                Op.Op->apply(X.data(), Y.data());
            },
            VOpts);
        double BoundGflops =
            spmvGflops(static_cast<std::uint64_t>(A.nnz()) *
                           static_cast<std::uint64_t>(Width),
                       VM.SecondsPerCall);
        Report.NoisyTimings = Report.NoisyTimings || VM.Noisy;
        Report.MeasuredCandidates.push_back(
            {FormatKind::CSR,
             Width > 1 ? Kernels.CsrSpmm[0].Name : Kernels.Csr[0].Name,
             Report.BaselineGflops, true});
        Report.MeasuredCandidates.push_back(
            {Report.ChosenFormat, Report.KernelName, BoundGflops, false});
        if (Report.BaselineGflops >
            BoundGflops * (1.0 + GuardrailNoiseFloor)) {
          Report.GuardrailEngaged = true;
          BindStageResult<T> Guarded = BindStage::run(
              Ctx, FormatKind::CSR,
              HaveFeatures ? &Features.Features : nullptr, true);
          Report.ChosenFormat = Guarded.BoundFormat;
          Report.KernelName = std::move(Guarded.KernelName);
          Report.BindSeconds += Guarded.Seconds;
          Report.Degradation =
              maxLevel(Report.Degradation, Guarded.Degradation);
          Op.Op = std::move(Guarded.Op);
        }
      } catch (...) {
        // A faulted verification leaves the bound plan in place: the
        // guardrail refines the decision, it must never break a good bind.
        ++Report.DroppedCandidates;
      }
      Report.GuardrailSeconds = GuardTimer.seconds();
    }
  }

  if (Report.DroppedCandidates > 0)
    Report.Degradation =
        maxLevel(Report.Degradation, DegradationLevel::CandidateDropped);

  if (Cache && !Report.PlanCacheHit) {
    CachedPlan Plan{Report.ChosenFormat, Report.CsrSpmvSeconds,
                    Report.GuardrailEngaged};
    if (Leading) {
      Cache->publish(Fp, Plan);
      Lease.Active = false;
    } else {
      Cache->insert(Fp, Plan);
    }
  }

  Report.Features = Features.Features;
  // The baseline measurement is nested inside the tune wall clock, so the
  // difference cannot go negative; reporting BaselineSeconds separately
  // (instead of clamping) keeps budget overruns during the baseline visible.
  Report.BaselineSeconds = BaselineSeconds;
  Report.TuneSeconds = TuneTimer.seconds() - BaselineSeconds;

  // Publish this tune's whole counter delta as one seqlock write section,
  // so a concurrent resilienceCounters() reader (e.g. a monitoring thread
  // sampling while the async service's worker is mid-tune) never observes a
  // torn snapshot where only half the delta has landed — every snapshot
  // satisfies the invariants (each flag counter <= Tunes).
  {
    ResilienceState &RS = *Resilience;
    std::lock_guard<std::mutex> WriteLock(RS.WriteLock);
    RS.Seq.fetch_add(1, std::memory_order_release); // now odd: write open
    RS.Tunes.fetch_add(1, std::memory_order_relaxed);
    RS.CandidatesDropped.fetch_add(
        static_cast<std::uint64_t>(Report.DroppedCandidates),
        std::memory_order_relaxed);
    if (Report.NoisyTimings)
      RS.NoisyTunes.fetch_add(1, std::memory_order_relaxed);
    if (Report.BudgetExhausted)
      RS.BudgetExhaustedTunes.fetch_add(1, std::memory_order_relaxed);
    if (Report.Degradation == DegradationLevel::BasicKernel)
      RS.BasicKernelFallbacks.fetch_add(1, std::memory_order_relaxed);
    if (Report.Degradation == DegradationLevel::ReferenceCsr)
      RS.ReferenceFallbacks.fetch_add(1, std::memory_order_relaxed);
    if (Report.PlanShared)
      RS.PlanShares.fetch_add(1, std::memory_order_relaxed);
    if (Report.GuardrailEngaged)
      RS.GuardrailEngagements.fetch_add(1, std::memory_order_relaxed);
    RS.Seq.fetch_add(1, std::memory_order_release); // even again: closed
  }
  return Op;
}

template <typename T>
SmatResilienceCounters Smat<T>::resilienceCounters() const {
  const ResilienceState &RS = *Resilience;
  SmatResilienceCounters Out;
  // Seqlock read: retry whenever the snapshot straddled a write section
  // (sequence odd, or changed across the reads). Loads are acquire-paired
  // with the writer's release increments; the counter fields themselves are
  // atomic, so the optimistic reads are data-race-free.
  for (;;) {
    std::uint64_t Before = RS.Seq.load(std::memory_order_acquire);
    if (Before & 1)
      continue; // a write is open right now
    Out.Tunes = RS.Tunes.load(std::memory_order_relaxed);
    Out.CandidatesDropped =
        RS.CandidatesDropped.load(std::memory_order_relaxed);
    Out.NoisyTunes = RS.NoisyTunes.load(std::memory_order_relaxed);
    Out.BudgetExhaustedTunes =
        RS.BudgetExhaustedTunes.load(std::memory_order_relaxed);
    Out.BasicKernelFallbacks =
        RS.BasicKernelFallbacks.load(std::memory_order_relaxed);
    Out.ReferenceFallbacks =
        RS.ReferenceFallbacks.load(std::memory_order_relaxed);
    Out.PlanShares = RS.PlanShares.load(std::memory_order_relaxed);
    Out.GuardrailEngagements =
        RS.GuardrailEngagements.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (RS.Seq.load(std::memory_order_relaxed) == Before)
      return Out;
  }
}

TunedSpmv<double> smat::SMAT_dCSR_SpMV(const Smat<double> &Tuner,
                                       const CsrMatrix<double> &A,
                                       const TuneOptions &Opts) {
  return Tuner.tune(A, Opts);
}

TunedSpmv<float> smat::SMAT_sCSR_SpMV(const Smat<float> &Tuner,
                                      const CsrMatrix<float> &A,
                                      const TuneOptions &Opts) {
  return Tuner.tune(A, Opts);
}

TunedSpmv<double> smat::SMAT_dCSR_SpMM(const Smat<double> &Tuner,
                                       const CsrMatrix<double> &A,
                                       index_t BatchWidth, TuneOptions Opts) {
  Opts.BatchWidth = BatchWidth;
  return Tuner.tune(A, Opts);
}

TunedSpmv<float> smat::SMAT_sCSR_SpMM(const Smat<float> &Tuner,
                                      const CsrMatrix<float> &A,
                                      index_t BatchWidth, TuneOptions Opts) {
  Opts.BatchWidth = BatchWidth;
  return Tuner.tune(A, Opts);
}

namespace {

template <typename T>
ErrorCode trySpmvEntry(const Smat<T> &Tuner, const CsrMatrix<T> &A,
                       TunedSpmv<T> &Out, std::string *ErrorMessage,
                       const TuneOptions &Opts) {
  Expected<TunedSpmv<T>> Result = Tuner.tryTune(A, Opts);
  if (!Result.ok()) {
    if (ErrorMessage)
      *ErrorMessage = Result.status().message();
    return Result.status().code();
  }
  Out = std::move(*Result);
  return ErrorCode::Ok;
}

} // namespace

ErrorCode smat::SMAT_dCSR_SpMV_try(const Smat<double> &Tuner,
                                   const CsrMatrix<double> &A,
                                   TunedSpmv<double> &Out,
                                   std::string *ErrorMessage,
                                   const TuneOptions &Opts) {
  return trySpmvEntry(Tuner, A, Out, ErrorMessage, Opts);
}

ErrorCode smat::SMAT_sCSR_SpMV_try(const Smat<float> &Tuner,
                                   const CsrMatrix<float> &A,
                                   TunedSpmv<float> &Out,
                                   std::string *ErrorMessage,
                                   const TuneOptions &Opts) {
  return trySpmvEntry(Tuner, A, Out, ErrorMessage, Opts);
}

ErrorCode smat::SMAT_dCSR_SpMM_try(const Smat<double> &Tuner,
                                   const CsrMatrix<double> &A,
                                   index_t BatchWidth, TunedSpmv<double> &Out,
                                   std::string *ErrorMessage,
                                   TuneOptions Opts) {
  Opts.BatchWidth = BatchWidth;
  return trySpmvEntry(Tuner, A, Out, ErrorMessage, Opts);
}

ErrorCode smat::SMAT_sCSR_SpMM_try(const Smat<float> &Tuner,
                                   const CsrMatrix<float> &A,
                                   index_t BatchWidth, TunedSpmv<float> &Out,
                                   std::string *ErrorMessage,
                                   TuneOptions Opts) {
  Opts.BatchWidth = BatchWidth;
  return trySpmvEntry(Tuner, A, Out, ErrorMessage, Opts);
}

namespace smat {
template class TunedSpmv<float>;
template class TunedSpmv<double>;
template class Smat<float>;
template class Smat<double>;
} // namespace smat
