//===- core/TuningPipeline.h - Staged on-line tuning pipeline ---*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline layer of the tuning runtime: paper Figure 7's linear
/// procedure split into four named, individually testable stages, each
/// returning a typed result with its own wall-clock accounting:
///
///   FeatureStage  — Table-2 feature extraction (step 1 eagerly, the
///                   power-law step 2 lazily on demand);
///   PredictStage  — confidence-gated rule-group walk over the trained
///                   ruleset;
///   MeasureStage  — execute-and-measure fallback over the plausible
///                   candidate formats;
///   BindStage     — format conversion (with guard fallback to CSR) and
///                   optimal-kernel binding through `FormatOperator`.
///
/// `Smat::tune` composes these stages — and consults the optional
/// `PlanCache` between FeatureStage and PredictStage — but each stage is a
/// plain function of its typed inputs, so tests and ablations can run any
/// stage in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_TUNINGPIPELINE_H
#define SMAT_CORE_TUNINGPIPELINE_H

#include "core/CostModel.h"
#include "core/FormatOperator.h"
#include "core/LearningModel.h"
#include "features/FeatureExtractor.h"
#include "support/Timer.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace smat {

class PlanCache;

/// How far down the degradation ladder a tune had to go (DESIGN.md section
/// 12). Once a matrix passes validation the runtime never fails a tune; it
/// takes the highest rung that still works and reports it here.
enum class DegradationLevel {
  /// Everything the tune attempted succeeded.
  None = 0,
  /// At least one candidate format or pipeline stage failed and was dropped;
  /// the plan was built from the survivors.
  CandidateDropped,
  /// Binding the chosen plan failed; the basic (strategy-free) CSR kernel
  /// was bound instead.
  BasicKernel,
  /// Even the basic-kernel bind failed; the fixed-interface CSR reference
  /// kernel was bound. Nothing below this rung exists.
  ReferenceCsr,
};

/// \returns a short stable name for \p Level ("none", "candidate_dropped",
/// "basic_kernel", "reference_csr").
const char *degradationLevelName(DegradationLevel Level);

/// Tuning knobs for one tune() call.
struct TuneOptions {
  /// Permit the execute-and-measure fallback (paper Figure 7's
  /// "< threshold" path). When false, low-confidence predictions are used
  /// as-is.
  bool AllowMeasure = true;
  /// Force execute-and-measure even for confident predictions (used by the
  /// accuracy analysis to recover the ground-truth best format). Also
  /// bypasses PlanCache lookups: forced measurement means the caller wants
  /// fresh ground truth, not a reused plan.
  bool ForceMeasure = false;
  /// Measurement floor per candidate during execute-and-measure.
  double MeasureMinSeconds = 5e-4;
  /// Whether a CSR-bound operator borrows the caller's matrix (default) or
  /// owns a copy. The rvalue `Smat::tune` overload forces Owned and moves
  /// the storage instead of copying.
  CsrStorage CsrMode = CsrStorage::Borrowed;
  /// Optional plan cache shared across tune() calls. A fingerprint hit
  /// skips PredictStage, MeasureStage, and the overhead-baseline
  /// measurement entirely; a miss inserts the bound plan afterwards. When
  /// several threads tune the same structure concurrently, singleflight
  /// deduplication lets one of them measure while the rest wait for the
  /// published plan.
  PlanCache *Cache = nullptr;
  /// Wall-clock budget in seconds for measuring a single candidate format
  /// (0 = unlimited). A candidate that exhausts its budget keeps its best
  /// sample so far; retries and extra samples are skipped.
  double MeasureBudgetSeconds = 0.0;
  /// Wall-clock budget in seconds for the whole tune (0 = unlimited). When
  /// it expires, remaining candidates are skipped and the tune completes
  /// from what was measured — degrading rather than failing. The budget is
  /// checked between candidates, so a tune finishes within roughly 2x the
  /// budget in the worst case.
  double TuneBudgetSeconds = 0.0;
  /// Number of right-hand sides the tune optimizes for (>= 1). Widths above
  /// 1 make MeasureStage time the batched (SpMM) kernels — so the format
  /// choice reflects batched performance — key the plan cache on the
  /// register-tile width bucket, and bind the scoreboard's per-width SpMM
  /// pick. 1 is the classic single-vector SpMV tune. Every bound operator
  /// supports multiply() at any width regardless of this value; the width
  /// only steers which plan is considered optimal.
  index_t BatchWidth = 1;
  /// Never-slower guardrail (DESIGN.md section 15): the measured basic-CSR
  /// baseline enters the execute-and-measure race as a first-class
  /// candidate, and a confident prediction's bound plan is quick-verified
  /// against the baseline after the bind — either way, a tune that would
  /// end up slower than not tuning binds the untuned basic CSR plan
  /// instead and reports GuardrailEngaged. Needs measurement: with
  /// AllowMeasure false (and no ForceMeasure) the guardrail cannot run.
  bool Guardrail = true;
  /// Analytic candidate pruning (CostModel.h): classify the matrix's
  /// bottleneck from the extracted features and race only the formats that
  /// can address it, instead of the full menu. Ignored under ForceMeasure
  /// (ground-truth sweeps must stay exhaustive).
  bool CostModelPrune = true;
  /// Generation stamp of the learned model that produced this tune, mixed
  /// into the plan-cache fingerprint. Layers that hot-reload model files at
  /// runtime (TuningService) bump this on every reload so plans cached
  /// under the previous model stop matching and age out by LRU instead of
  /// being served stale. Callers that never reload leave it at 0.
  std::uint32_t ModelGeneration = 0;
};

/// Everything the stages read; one per tune() call.
template <typename T> struct TuningContext {
  const CsrMatrix<T> &A;
  const LearningModel &Model;
  const TuneOptions &Opts;
  /// Non-null only on the rvalue tune path: the same matrix as A, mutable,
  /// so an Owned CSR bind can move the storage instead of copying it.
  CsrMatrix<T> *MoveSource = nullptr;
  /// Wall clock of the whole tune, set by Smat::tuneImpl when
  /// Opts.TuneBudgetSeconds > 0 so stages can check the remaining budget.
  const WallTimer *TuneClock = nullptr;
};

/// Result of FeatureStage. Seconds covers step 1 only; a lazily triggered
/// step 2 (power-law R) is accounted to the stage that demanded it.
struct FeatureStageResult {
  FeatureVector Features;
  /// Whether step 2 (the power-law R) has been computed.
  bool HaveR = false;
  double Seconds = 0.0;
};

/// Result of PredictStage.
struct PredictStageResult {
  FormatKind Prediction = FormatKind::CSR;
  double Confidence = 0.0;
  /// True when some rule group cleared the model's confidence threshold.
  bool Confident = false;
  double Seconds = 0.0;
};

/// One entry of the selection race: a measured candidate plan. The untuned
/// basic-CSR baseline participates as a first-class candidate (IsBaseline)
/// so a tuned plan structurally cannot lose to not tuning.
struct MeasuredCandidate {
  FormatKind Format = FormatKind::CSR;
  std::string Kernel;
  double Gflops = 0.0;
  /// True for the untuned basic-CSR guardrail entry.
  bool IsBaseline = false;
};

/// Result of MeasureStage.
struct MeasureStageResult {
  /// (format, GFLOPS) per measured candidate, in measurement order. Tuned
  /// candidates only; the baseline appears in Candidates.
  std::vector<std::pair<FormatKind, double>> MeasuredGflops;
  /// The full race in measurement order, with kernel names (baseline entry
  /// included when a baseline throughput was supplied).
  std::vector<MeasuredCandidate> Candidates;
  /// The supplied basic-CSR baseline beat every tuned candidate: Best is
  /// CSR and the caller must bind the untuned basic plan (the guardrail).
  bool BaselineWon = false;
  /// The measured winner (or the fallback passed in when nothing ran).
  FormatKind Best = FormatKind::CSR;
  double Seconds = 0.0;
  /// Some candidate's timing samples disagreed beyond the robust-measure
  /// spread threshold even after backoff retries.
  bool NoisyTimings = false;
  /// A measurement or tune budget expired before every candidate ran.
  bool BudgetExhausted = false;
  /// Candidates skipped because their conversion or kernel threw.
  int DroppedCandidates = 0;
};

/// Result of BindStage.
template <typename T> struct BindStageResult {
  std::unique_ptr<FormatOperator<T>> Op;
  /// The format actually bound: the requested one, or CSR when a
  /// conversion guard rejected it.
  FormatKind BoundFormat = FormatKind::CSR;
  std::string KernelName;
  double Seconds = 0.0;
  /// The ladder rung the bind itself had to take (None, BasicKernel, or
  /// ReferenceCsr — binding never reports CandidateDropped).
  DegradationLevel Degradation = DegradationLevel::None;
};

/// Stage 1: Table-2 feature extraction (paper Section 6's two-step split).
class FeatureStage {
public:
  /// Runs step 1 (one matrix traversal, everything but R).
  template <typename T>
  static FeatureStageResult run(const TuningContext<T> &Ctx);

  /// Runs step 2 (power-law R) if it has not run yet; idempotent.
  template <typename T>
  static void ensurePowerLaw(const TuningContext<T> &Ctx,
                             FeatureStageResult &Features);
};

/// Stage 2: the confidence-gated rule-group walk (DIA -> ELL -> [BSR] ->
/// CSR -> COO), computing R lazily the first time a group needs it.
class PredictStage {
public:
  template <typename T>
  static PredictStageResult run(const TuningContext<T> &Ctx,
                                FeatureStageResult &Features);
};

/// Stage 3: execute-and-measure over the plausible candidates.
class MeasureStage {
public:
  /// The Figure-7 gate: forced, or unconfident with measurement allowed.
  static bool shouldRun(const TuneOptions &Opts,
                        const PredictStageResult &Prediction);

  /// Measures every candidate that passes its structural plausibility
  /// guard; \p Fallback is returned as Best when nothing is measured.
  /// \p Allowed, when non-null, restricts the race to the cost model's
  /// candidate mask (CSR is always raced). \p BaselineGflops, when
  /// positive, enters the untuned basic-CSR baseline as a first-class
  /// candidate: if it beats every tuned measurement, Best is CSR and
  /// BaselineWon tells the caller to bind the untuned basic plan.
  template <typename T>
  static MeasureStageResult run(const TuningContext<T> &Ctx,
                                const FeatureStageResult &Features,
                                FormatKind Fallback,
                                const CostModelDecision *Allowed = nullptr,
                                double BaselineGflops = 0.0);
};

/// Stage 4: conversion + kernel binding through the operator layer.
class BindStage {
public:
  /// \p Features, when non-null, enables skew-aware CSR kernel selection:
  /// a row-length CV above SkewRowCvThreshold binds the scoreboard's
  /// skew-pass pick (KernelSelection::BestSkewCsrKernel) instead of the
  /// general CSR kernel. Null keeps the historical behavior.
  /// \p ForceBasicCsr binds the untuned plan directly — the basic
  /// (strategy-free) CSR SpMV and SpMM kernels with no conversion — used
  /// when the never-slower guardrail decided tuning does not pay. It is a
  /// deliberate decision, not a failure: Degradation stays None.
  template <typename T>
  static BindStageResult<T> run(const TuningContext<T> &Ctx,
                                FormatKind Requested,
                                const FeatureVector *Features = nullptr,
                                bool ForceBasicCsr = false);
};

extern template FeatureStageResult
FeatureStage::run(const TuningContext<float> &);
extern template FeatureStageResult
FeatureStage::run(const TuningContext<double> &);
extern template void FeatureStage::ensurePowerLaw(const TuningContext<float> &,
                                                  FeatureStageResult &);
extern template void
FeatureStage::ensurePowerLaw(const TuningContext<double> &,
                             FeatureStageResult &);
extern template PredictStageResult
PredictStage::run(const TuningContext<float> &, FeatureStageResult &);
extern template PredictStageResult
PredictStage::run(const TuningContext<double> &, FeatureStageResult &);
extern template MeasureStageResult
MeasureStage::run(const TuningContext<float> &, const FeatureStageResult &,
                  FormatKind, const CostModelDecision *, double);
extern template MeasureStageResult
MeasureStage::run(const TuningContext<double> &, const FeatureStageResult &,
                  FormatKind, const CostModelDecision *, double);
extern template BindStageResult<float>
BindStage::run(const TuningContext<float> &, FormatKind,
               const FeatureVector *, bool);
extern template BindStageResult<double>
BindStage::run(const TuningContext<double> &, FormatKind,
               const FeatureVector *, bool);

} // namespace smat

#endif // SMAT_CORE_TUNINGPIPELINE_H
