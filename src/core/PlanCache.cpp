//===- core/PlanCache.cpp - Feature-fingerprint tuning-plan cache ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/PlanCache.h"

#include "support/Checksum.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace smat;

namespace {

/// floor(log2(X + 1)) for non-negative feature values; 0 for degenerate
/// inputs so empty matrices still fingerprint deterministically.
std::int16_t log2Bucket(double X) {
  if (!(X > 0.0))
    return 0;
  return static_cast<std::int16_t>(std::floor(std::log2(X + 1.0)));
}

/// A ratio in [0, 1] quantized to eighth steps (bucket 0..8).
std::int16_t eighthBucket(double Ratio) {
  double Clamped = std::clamp(Ratio, 0.0, 1.0);
  return static_cast<std::int16_t>(std::floor(Clamped * 8.0));
}

/// Shard count policy: tiny caches keep one shard so eviction order is the
/// exact global LRU order (observable, and relied on by the unit tests);
/// service-sized caches spread contention across a fixed small power of two.
std::size_t shardCountFor(std::size_t Capacity) {
  return Capacity >= 64 ? 8 : 1;
}

} // namespace

std::size_t
PlanFingerprintHash::operator()(const PlanFingerprint &Fp) const {
  const std::int16_t Buckets[] = {
      Fp.RowsLog2,   Fp.ColsLog2,      Fp.DensityBucket, Fp.DispersionBucket,
      Fp.MaxRdLog2,  Fp.NdiagsLog2,    Fp.NTdiagsBucket, Fp.DiaFillBucket,
      Fp.EllFillBucket, Fp.BsrFillBucket, Fp.WidthBucket, Fp.ClassBucket};
  std::uint64_t Hash = 1469598103934665603ull;
  for (std::int16_t B : Buckets) {
    Hash ^= static_cast<std::uint64_t>(static_cast<std::uint16_t>(B));
    Hash *= 1099511628211ull;
  }
  Hash ^= static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(Fp.ModelGeneration));
  Hash *= 1099511628211ull;
  return static_cast<std::size_t>(Hash);
}

PlanFingerprint smat::fingerprintFeatures(const FeatureVector &F) {
  PlanFingerprint Fp;
  Fp.RowsLog2 = log2Bucket(F.M);
  Fp.ColsLog2 = log2Bucket(F.N);
  // Density as nonzeros per row, half-log2 resolution.
  Fp.DensityBucket = static_cast<std::int16_t>(2 * log2Bucket(F.AverRd));
  // Dispersion: coefficient of variation of the row degrees (scale-free
  // inputs land in high buckets, stencils in bucket 0).
  double Cv = F.AverRd > 0.0 ? std::sqrt(std::max(0.0, F.VarRd)) / F.AverRd
                             : 0.0;
  Fp.DispersionBucket = static_cast<std::int16_t>(
      std::floor(2.0 * std::log2(1.0 + Cv)));
  Fp.MaxRdLog2 = log2Bucket(F.MaxRd);
  Fp.NdiagsLog2 = log2Bucket(F.Ndiags);
  Fp.NTdiagsBucket = eighthBucket(F.NTdiagsRatio);
  Fp.DiaFillBucket = eighthBucket(F.ErDia);
  Fp.EllFillBucket = eighthBucket(F.ErEll);
  Fp.BsrFillBucket = eighthBucket(F.ErBsr);
  return Fp;
}

PlanCache::PlanCache(std::size_t Capacity)
    : Capacity(std::max<std::size_t>(1, Capacity)) {
  std::size_t NumShards = shardCountFor(this->Capacity);
  Shards.reserve(NumShards);
  for (std::size_t I = 0; I < NumShards; ++I) {
    auto S = std::make_unique<Shard>();
    // Spread the capacity across shards, rounding up so the total never
    // shrinks below the requested capacity.
    S->Capacity = (this->Capacity + NumShards - 1) / NumShards;
    Shards.push_back(std::move(S));
  }
}

PlanCache::Shard &PlanCache::shardFor(const PlanFingerprint &Fp) {
  return *Shards[PlanFingerprintHash{}(Fp) % Shards.size()];
}

const PlanCache::Shard &PlanCache::shardFor(const PlanFingerprint &Fp) const {
  return *Shards[PlanFingerprintHash{}(Fp) % Shards.size()];
}

bool PlanCache::lookup(const PlanFingerprint &Fp, CachedPlan &Plan) {
  Shard &S = shardFor(Fp);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(Fp);
  if (It == S.Index.end()) {
    ++S.Counters.Misses;
    return false;
  }
  ++S.Counters.Hits;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Plan = It->second->second;
  return true;
}

PlanProbe PlanCache::lookupOrLead(const PlanFingerprint &Fp) {
  Shard &S = shardFor(Fp);
  std::unique_lock<std::mutex> Lock(S.Mutex);
  PlanProbe Probe;
  bool Waited = false;
  for (;;) {
    auto It = S.Index.find(Fp);
    if (It != S.Index.end()) {
      ++S.Counters.Hits;
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      Probe.Hit = true;
      Probe.Shared = Waited;
      Probe.Plan = It->second->second;
      return Probe;
    }
    if (S.InFlight.find(Fp) == S.InFlight.end()) {
      // No plan and nobody tuning it: this caller leads. A waiter landing
      // here inherited an abandoned lease, which still counts as the miss
      // it is about to pay for.
      ++S.Counters.Misses;
      S.InFlight.insert(Fp);
      Probe.Lead = true;
      return Probe;
    }
    if (!Waited) {
      ++S.Counters.SingleflightWaits;
      Waited = true;
    }
    S.InFlightCv.wait(Lock);
  }
}

void PlanCache::publish(const PlanFingerprint &Fp, const CachedPlan &Plan) {
  Shard &S = shardFor(Fp);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    insertLocked(S, Fp, Plan);
    S.InFlight.erase(Fp);
  }
  S.InFlightCv.notify_all();
}

void PlanCache::abandon(const PlanFingerprint &Fp) {
  Shard &S = shardFor(Fp);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.InFlight.erase(Fp);
  }
  S.InFlightCv.notify_all();
}

void PlanCache::insert(const PlanFingerprint &Fp, const CachedPlan &Plan) {
  Shard &S = shardFor(Fp);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  insertLocked(S, Fp, Plan);
}

void PlanCache::insertLocked(Shard &S, const PlanFingerprint &Fp,
                             const CachedPlan &Plan) {
  auto It = S.Index.find(Fp);
  if (It != S.Index.end()) {
    It->second->second = Plan;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    ++S.Counters.Inserts;
    return;
  }
  if (S.Lru.size() >= S.Capacity) {
    S.Index.erase(S.Lru.back().first);
    S.Lru.pop_back();
    ++S.Counters.Evictions;
  }
  S.Lru.emplace_front(Fp, Plan);
  S.Index.emplace(Fp, S.Lru.begin());
  ++S.Counters.Inserts;
}

void PlanCache::clear() {
  for (auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Lru.clear();
    S->Index.clear();
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats Total;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total.Hits += S->Counters.Hits;
    Total.Misses += S->Counters.Misses;
    Total.Inserts += S->Counters.Inserts;
    Total.Evictions += S->Counters.Evictions;
    Total.SingleflightWaits += S->Counters.SingleflightWaits;
  }
  Total.SnapshotSaves = SnapshotSaves.load(std::memory_order_relaxed);
  Total.SnapshotLoads = SnapshotLoads.load(std::memory_order_relaxed);
  Total.SnapshotLoadFailures =
      SnapshotLoadFailures.load(std::memory_order_relaxed);
  return Total;
}

std::size_t PlanCache::size() const {
  std::size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Lru.size();
  }
  return Total;
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//
//
// Snapshot file layout (text, line-oriented; DESIGN.md section 16):
//
//   smat-plancache-v1
//   entries <N>
//   plan <12 bucket ints> <model-gen> <format int> <csr-seconds> <guard 0|1>
//   ... (N plan lines)
//   checksum <16 hex digits>
//
// The checksum is FNV-1a over every byte preceding the checksum line, so
// any truncation, bit flip, or partial write is caught before a single
// entry is believed.

namespace {

/// One snapshot line per cached plan, fixed field order matching parsePlan.
void formatPlan(std::ostream &Os, const PlanFingerprint &Fp,
                const CachedPlan &Plan) {
  char Secs[64];
  std::snprintf(Secs, sizeof(Secs), "%.17g", Plan.CsrSpmvSeconds);
  Os << "plan " << Fp.RowsLog2 << ' ' << Fp.ColsLog2 << ' '
     << Fp.DensityBucket << ' ' << Fp.DispersionBucket << ' ' << Fp.MaxRdLog2
     << ' ' << Fp.NdiagsLog2 << ' ' << Fp.NTdiagsBucket << ' '
     << Fp.DiaFillBucket << ' ' << Fp.EllFillBucket << ' ' << Fp.BsrFillBucket
     << ' ' << Fp.WidthBucket << ' ' << Fp.ClassBucket << ' '
     << Fp.ModelGeneration << ' ' << static_cast<int>(Plan.Format) << ' '
     << Secs << ' ' << (Plan.GuardrailEngaged ? 1 : 0) << '\n';
}

/// Parses one "plan ..." line; returns false on any malformed or
/// out-of-range field (the caller treats that as snapshot corruption).
bool parsePlan(const std::string &Line, PlanFingerprint &Fp,
               CachedPlan &Plan) {
  std::istringstream Is(Line);
  std::string Tag;
  long Buckets[12];
  long Gen = 0, Format = 0, Guard = 0;
  double Secs = 0.0;
  Is >> Tag;
  if (Tag != "plan")
    return false;
  for (long &B : Buckets) {
    Is >> B;
    if (!Is || B < INT16_MIN || B > INT16_MAX)
      return false;
  }
  Is >> Gen >> Format >> Secs >> Guard;
  if (!Is)
    return false;
  if (Gen < INT32_MIN || Gen > INT32_MAX)
    return false;
  if (Format < 0 || Format >= static_cast<long>(NumFormats))
    return false;
  if (Guard != 0 && Guard != 1)
    return false;
  if (!std::isfinite(Secs) || Secs < 0.0)
    return false;
  std::string Extra;
  if (Is >> Extra)
    return false;
  Fp.RowsLog2 = static_cast<std::int16_t>(Buckets[0]);
  Fp.ColsLog2 = static_cast<std::int16_t>(Buckets[1]);
  Fp.DensityBucket = static_cast<std::int16_t>(Buckets[2]);
  Fp.DispersionBucket = static_cast<std::int16_t>(Buckets[3]);
  Fp.MaxRdLog2 = static_cast<std::int16_t>(Buckets[4]);
  Fp.NdiagsLog2 = static_cast<std::int16_t>(Buckets[5]);
  Fp.NTdiagsBucket = static_cast<std::int16_t>(Buckets[6]);
  Fp.DiaFillBucket = static_cast<std::int16_t>(Buckets[7]);
  Fp.EllFillBucket = static_cast<std::int16_t>(Buckets[8]);
  Fp.BsrFillBucket = static_cast<std::int16_t>(Buckets[9]);
  Fp.WidthBucket = static_cast<std::int16_t>(Buckets[10]);
  Fp.ClassBucket = static_cast<std::int16_t>(Buckets[11]);
  Fp.ModelGeneration = static_cast<std::int32_t>(Gen);
  Plan.Format = static_cast<FormatKind>(Format);
  Plan.CsrSpmvSeconds = Secs;
  Plan.GuardrailEngaged = Guard == 1;
  return true;
}

} // namespace

bool PlanCache::saveSnapshot(const std::string &Path,
                             std::string *Error) const {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why;
    return false;
  };

  // Snapshot the entries under the shard locks (one shard at a time; a plan
  // inserted concurrently into an already-walked shard simply misses this
  // snapshot, which is fine — snapshots are best-effort warm-start state).
  std::vector<Entry> Entries;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    // Walk LRU back-to-front so reloading (which inserts in file order,
    // each insert becoming most-recent) reproduces the recency order.
    for (auto It = S->Lru.rbegin(); It != S->Lru.rend(); ++It)
      Entries.push_back(*It);
  }

  std::ostringstream Payload;
  Payload << SnapshotVersion << '\n';
  Payload << "entries " << Entries.size() << '\n';
  for (const Entry &E : Entries)
    formatPlan(Payload, E.first, E.second);
  std::string Body = Payload.str();

  char Checksum[32];
  std::snprintf(Checksum, sizeof(Checksum), "checksum %016" PRIx64 "\n",
                fnv1a64(Body));

  if (fault::injectFailure("async.snapshot.save"))
    return Fail("injected snapshot save failure");

  std::string TmpPath = Path + ".tmp";
  {
    std::ofstream Os(TmpPath, std::ios::binary | std::ios::trunc);
    if (!Os)
      return Fail("cannot open temp snapshot file '" + TmpPath + "'");
    Os << Body << Checksum;
    Os.flush();
    if (!Os)
      return Fail("write to temp snapshot file '" + TmpPath + "' failed");
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::string Why = std::strerror(errno);
    std::remove(TmpPath.c_str());
    return Fail("rename '" + TmpPath + "' -> '" + Path + "' failed: " + Why);
  }
  SnapshotSaves.fetch_add(1, std::memory_order_relaxed);
  return true;
}

SnapshotLoadResult PlanCache::loadSnapshot(const std::string &Path,
                                           std::size_t *LoadedCount,
                                           std::string *Warning) {
  if (LoadedCount)
    *LoadedCount = 0;

  auto Corrupt = [&](const std::string &Why) {
    std::string Message =
        "smat: plan-cache snapshot '" + Path + "' rejected (" + Why +
        "); cold-starting with an empty plan cache";
    if (Warning)
      *Warning = Message;
    std::fprintf(stderr, "warning: %s\n", Message.c_str());
    SnapshotLoadFailures.fetch_add(1, std::memory_order_relaxed);
    return SnapshotLoadResult::Corrupt;
  };

  std::ifstream Is(Path, std::ios::binary);
  if (!Is)
    return SnapshotLoadResult::Missing;

  if (fault::injectFailure("async.snapshot.load"))
    return Corrupt("injected snapshot load failure");

  std::ostringstream Buf;
  Buf << Is.rdbuf();
  std::string Content = Buf.str();

  // Split off the trailing checksum line and verify it over everything
  // before it. Do this before parsing so a bit flip anywhere is caught
  // even if it happens to still parse.
  std::size_t LastLineStart = Content.rfind("checksum ");
  if (LastLineStart == std::string::npos ||
      (LastLineStart != 0 && Content[LastLineStart - 1] != '\n'))
    return Corrupt("missing checksum trailer");
  std::string Body = Content.substr(0, LastLineStart);
  // The trailer must be byte-exact — "checksum " + 16 hex digits + newline
  // — and must terminate the file. Anything looser (a truncated final
  // newline, trailing bytes after the trailer) is not a file saveSnapshot
  // wrote, so treat it as the corruption it is.
  std::string Trailer = Content.substr(LastLineStart);
  constexpr std::size_t TrailerSize = 9 + 16 + 1;
  std::uint64_t Stored = 0;
  if (Trailer.size() != TrailerSize || Trailer.back() != '\n' ||
      std::sscanf(Trailer.c_str(), "checksum %16" SCNx64, &Stored) != 1)
    return Corrupt("malformed checksum trailer");
  if (Trailer.find_first_not_of("0123456789abcdef", 9) != TrailerSize - 1)
    return Corrupt("malformed checksum trailer");
  if (fnv1a64(Body) != Stored)
    return Corrupt("checksum mismatch");

  // Parse everything into a staging vector first; nothing touches the
  // cache until the whole snapshot is proven well-formed.
  std::istringstream BodyIs(Body);
  std::string Line;
  if (!std::getline(BodyIs, Line) || Line != SnapshotVersion)
    return Corrupt("version mismatch (expected '" +
                   std::string(SnapshotVersion) + "', got '" + Line + "')");
  if (!std::getline(BodyIs, Line))
    return Corrupt("truncated header");
  std::size_t Declared = 0;
  {
    std::istringstream HeaderIs(Line);
    std::string HeaderTag;
    HeaderIs >> HeaderTag >> Declared;
    if (!HeaderIs || HeaderTag != "entries")
      return Corrupt("malformed entry-count header");
  }
  std::vector<Entry> Staged;
  Staged.reserve(Declared);
  while (std::getline(BodyIs, Line)) {
    if (Line.empty())
      continue;
    PlanFingerprint Fp;
    CachedPlan Plan;
    if (!parsePlan(Line, Fp, Plan))
      return Corrupt("malformed plan entry");
    Staged.emplace_back(Fp, Plan);
  }
  if (Staged.size() != Declared)
    return Corrupt("entry count mismatch (declared " +
                   std::to_string(Declared) + ", found " +
                   std::to_string(Staged.size()) + ")");

  for (const Entry &E : Staged)
    insert(E.first, E.second);
  if (LoadedCount)
    *LoadedCount = Staged.size();
  SnapshotLoads.fetch_add(1, std::memory_order_relaxed);
  return SnapshotLoadResult::Loaded;
}
