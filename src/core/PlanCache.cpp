//===- core/PlanCache.cpp - Feature-fingerprint tuning-plan cache ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/PlanCache.h"

#include <algorithm>
#include <cmath>

using namespace smat;

namespace {

/// floor(log2(X + 1)) for non-negative feature values; 0 for degenerate
/// inputs so empty matrices still fingerprint deterministically.
std::int16_t log2Bucket(double X) {
  if (!(X > 0.0))
    return 0;
  return static_cast<std::int16_t>(std::floor(std::log2(X + 1.0)));
}

/// A ratio in [0, 1] quantized to eighth steps (bucket 0..8).
std::int16_t eighthBucket(double Ratio) {
  double Clamped = std::clamp(Ratio, 0.0, 1.0);
  return static_cast<std::int16_t>(std::floor(Clamped * 8.0));
}

} // namespace

std::size_t
PlanFingerprintHash::operator()(const PlanFingerprint &Fp) const {
  const std::int16_t Buckets[] = {
      Fp.RowsLog2,   Fp.ColsLog2,      Fp.DensityBucket, Fp.DispersionBucket,
      Fp.MaxRdLog2,  Fp.NdiagsLog2,    Fp.NTdiagsBucket, Fp.DiaFillBucket,
      Fp.EllFillBucket, Fp.BsrFillBucket, Fp.WidthBucket, Fp.ClassBucket};
  std::uint64_t Hash = 1469598103934665603ull;
  for (std::int16_t B : Buckets) {
    Hash ^= static_cast<std::uint64_t>(static_cast<std::uint16_t>(B));
    Hash *= 1099511628211ull;
  }
  return static_cast<std::size_t>(Hash);
}

PlanFingerprint smat::fingerprintFeatures(const FeatureVector &F) {
  PlanFingerprint Fp;
  Fp.RowsLog2 = log2Bucket(F.M);
  Fp.ColsLog2 = log2Bucket(F.N);
  // Density as nonzeros per row, half-log2 resolution.
  Fp.DensityBucket = static_cast<std::int16_t>(2 * log2Bucket(F.AverRd));
  // Dispersion: coefficient of variation of the row degrees (scale-free
  // inputs land in high buckets, stencils in bucket 0).
  double Cv = F.AverRd > 0.0 ? std::sqrt(std::max(0.0, F.VarRd)) / F.AverRd
                             : 0.0;
  Fp.DispersionBucket = static_cast<std::int16_t>(
      std::floor(2.0 * std::log2(1.0 + Cv)));
  Fp.MaxRdLog2 = log2Bucket(F.MaxRd);
  Fp.NdiagsLog2 = log2Bucket(F.Ndiags);
  Fp.NTdiagsBucket = eighthBucket(F.NTdiagsRatio);
  Fp.DiaFillBucket = eighthBucket(F.ErDia);
  Fp.EllFillBucket = eighthBucket(F.ErEll);
  Fp.BsrFillBucket = eighthBucket(F.ErBsr);
  return Fp;
}

PlanCache::PlanCache(std::size_t Capacity)
    : Capacity(std::max<std::size_t>(1, Capacity)) {}

bool PlanCache::lookup(const PlanFingerprint &Fp, CachedPlan &Plan) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Fp);
  if (It == Index.end()) {
    ++Counters.Misses;
    return false;
  }
  ++Counters.Hits;
  Lru.splice(Lru.begin(), Lru, It->second);
  Plan = It->second->second;
  return true;
}

PlanProbe PlanCache::lookupOrLead(const PlanFingerprint &Fp) {
  std::unique_lock<std::mutex> Lock(Mutex);
  PlanProbe Probe;
  bool Waited = false;
  for (;;) {
    auto It = Index.find(Fp);
    if (It != Index.end()) {
      ++Counters.Hits;
      Lru.splice(Lru.begin(), Lru, It->second);
      Probe.Hit = true;
      Probe.Shared = Waited;
      Probe.Plan = It->second->second;
      return Probe;
    }
    if (InFlight.find(Fp) == InFlight.end()) {
      // No plan and nobody tuning it: this caller leads. A waiter landing
      // here inherited an abandoned lease, which still counts as the miss
      // it is about to pay for.
      ++Counters.Misses;
      InFlight.insert(Fp);
      Probe.Lead = true;
      return Probe;
    }
    if (!Waited) {
      ++Counters.SingleflightWaits;
      Waited = true;
    }
    InFlightCv.wait(Lock);
  }
}

void PlanCache::publish(const PlanFingerprint &Fp, const CachedPlan &Plan) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    insertLocked(Fp, Plan);
    InFlight.erase(Fp);
  }
  InFlightCv.notify_all();
}

void PlanCache::abandon(const PlanFingerprint &Fp) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    InFlight.erase(Fp);
  }
  InFlightCv.notify_all();
}

void PlanCache::insert(const PlanFingerprint &Fp, const CachedPlan &Plan) {
  std::lock_guard<std::mutex> Lock(Mutex);
  insertLocked(Fp, Plan);
}

void PlanCache::insertLocked(const PlanFingerprint &Fp,
                             const CachedPlan &Plan) {
  auto It = Index.find(Fp);
  if (It != Index.end()) {
    It->second->second = Plan;
    Lru.splice(Lru.begin(), Lru, It->second);
    ++Counters.Inserts;
    return;
  }
  if (Lru.size() >= Capacity) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
    ++Counters.Evictions;
  }
  Lru.emplace_front(Fp, Plan);
  Index.emplace(Fp, Lru.begin());
  ++Counters.Inserts;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Lru.clear();
  Index.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Lru.size();
}
