//===- core/TuningPipeline.cpp - Staged on-line tuning pipeline -----------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/TuningPipeline.h"

#include "support/Timer.h"

using namespace smat;

namespace {

/// Cheap structural plausibility of a DIA/ELL conversion, computed from the
/// already-extracted features so no conversion is attempted for hopeless
/// candidates during execute-and-measure.
bool diaPlausible(const FeatureVector &F) {
  if (F.Ndiags <= 0 || F.Ndiags > DefaultMaxDiags)
    return false;
  return F.ErDia * DefaultMaxFillRatio >= 1.0;
}

bool ellPlausible(const FeatureVector &F) {
  if (F.MaxRd <= 0)
    return false;
  return F.ErEll * DefaultMaxFillRatio >= 1.0;
}

/// BSR candidacy from the 4x4 block fill-efficiency feature; the runtime
/// uses the same strict guard as training (padding inflates flops).
bool bsrPlausible(const FeatureVector &F) {
  constexpr double BsrMaxFillRatio = 1.5;
  return F.ErBsr * BsrMaxFillRatio >= 1.0;
}

} // namespace

// --- FeatureStage -----------------------------------------------------------

template <typename T>
FeatureStageResult FeatureStage::run(const TuningContext<T> &Ctx) {
  WallTimer Timer;
  FeatureStageResult Result;
  Result.Features = extractStructureFeatures(Ctx.A);
  Result.Seconds = Timer.seconds();
  return Result;
}

template <typename T>
void FeatureStage::ensurePowerLaw(const TuningContext<T> &Ctx,
                                  FeatureStageResult &Features) {
  if (Features.HaveR)
    return;
  extractPowerLawFeature(Ctx.A, Features.Features);
  Features.HaveR = true;
}

// --- PredictStage -----------------------------------------------------------

template <typename T>
PredictStageResult PredictStage::run(const TuningContext<T> &Ctx,
                                     FeatureStageResult &Features) {
  WallTimer Timer;
  const LearningModel &Model = Ctx.Model;
  PredictStageResult Result;
  Result.Prediction = Model.Rules.DefaultFormat;

  // Rule-group walk with lazy R (feature extraction step 2). Groups are
  // visited in DIA -> ELL -> [BSR] -> CSR -> COO order; R is computed the
  // first time a group whose rules reference it comes up (COO always does in
  // spirit: its signature feature is the power-law exponent).
  auto X = Features.Features.values();
  for (FormatKind Kind : RuleGroupOrder) {
    if (Kind == FormatKind::BSR && !Model.BsrEnabled)
      continue;
    if (Model.GroupUsesR[static_cast<int>(Kind)] || Kind == FormatKind::COO) {
      FeatureStage::ensurePowerLaw(Ctx, Features);
      X = Features.Features.values();
    }
    double Confidence = Model.Rules.groupConfidence(Kind, X);
    if (Confidence > Model.ConfidenceThreshold) {
      Result.Prediction = Kind;
      Result.Confidence = Confidence;
      Result.Confident = true;
      break;
    }
  }
  if (!Result.Confident) {
    FeatureStage::ensurePowerLaw(Ctx, Features);
    RulePrediction P = Model.Rules.classify(Features.Features.values());
    Result.Prediction = P.Format;
    Result.Confidence = P.Confidence;
    Result.Confident = P.Confidence > Model.ConfidenceThreshold;
  }
  Result.Seconds = Timer.seconds();
  return Result;
}

// --- MeasureStage -----------------------------------------------------------

bool MeasureStage::shouldRun(const TuneOptions &Opts,
                             const PredictStageResult &Prediction) {
  return Opts.ForceMeasure || (!Prediction.Confident && Opts.AllowMeasure);
}

template <typename T>
MeasureStageResult MeasureStage::run(const TuningContext<T> &Ctx,
                                     const FeatureStageResult &Features,
                                     FormatKind Fallback) {
  WallTimer Timer;
  const CsrMatrix<T> &A = Ctx.A;
  const LearningModel &Model = Ctx.Model;
  const KernelTable<T> &Kernels = kernelTable<T>();
  MeasureStageResult Result;
  Result.Best = Fallback;

  // Execute-and-measure over the plausible candidates (paper Figure 7's
  // below-threshold path; Table 3 shows e.g. "CSR+COO" executions).
  AlignedVector<T> X(static_cast<std::size_t>(A.NumCols), T(1));
  AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows), T(0));

  auto Consider = [&](FormatKind Kind, auto &&RunOnce) {
    double Seconds =
        measureSecondsPerCall(RunOnce, Ctx.Opts.MeasureMinSeconds);
    Result.MeasuredGflops.emplace_back(
        Kind, spmvGflops(static_cast<std::uint64_t>(A.nnz()), Seconds));
  };

  auto BestIdx = [&Model](FormatKind Kind) {
    return static_cast<std::size_t>(
        Model.Kernels.BestKernel[static_cast<int>(Kind)]);
  };

  Consider(FormatKind::CSR, [&] {
    Kernels.Csr[BestIdx(FormatKind::CSR)].Fn(A, X.data(), Y.data());
  });
  {
    CooMatrix<T> Coo = csrToCoo(A);
    // Respect declared kernel preconditions (csrToCoo output always has
    // monotone rows, but the registration is the contract, not the builder).
    std::size_t CooIdx = BestIdx(FormatKind::COO);
    if (!kernelPrecondsHold(Kernels.Coo[CooIdx].Preconds, Coo))
      CooIdx = 0;
    Consider(FormatKind::COO, [&] {
      Kernels.Coo[CooIdx].Fn(Coo, X.data(), Y.data());
    });
  }
  if (diaPlausible(Features.Features)) {
    DiaMatrix<T> Dia;
    if (csrToDia(A, Dia))
      Consider(FormatKind::DIA, [&] {
        Kernels.Dia[BestIdx(FormatKind::DIA)].Fn(Dia, X.data(), Y.data());
      });
  }
  if (ellPlausible(Features.Features)) {
    EllMatrix<T> Ell;
    if (csrToEll(A, Ell))
      Consider(FormatKind::ELL, [&] {
        Kernels.Ell[BestIdx(FormatKind::ELL)].Fn(Ell, X.data(), Y.data());
      });
  }
  if (Model.BsrEnabled && bsrPlausible(Features.Features)) {
    index_t BlockSize = chooseBsrBlockSize(A);
    BsrMatrix<T> Bsr;
    if (BlockSize > 0 && csrToBsr(A, Bsr, BlockSize))
      Consider(FormatKind::BSR, [&] {
        Kernels.Bsr[BestIdx(FormatKind::BSR)].Fn(Bsr, X.data(), Y.data());
      });
  }

  double BestGflops = -1.0;
  for (const auto &[Kind, Gflops] : Result.MeasuredGflops)
    if (Gflops > BestGflops) {
      BestGflops = Gflops;
      Result.Best = Kind;
    }
  Result.Seconds = Timer.seconds();
  return Result;
}

// --- BindStage --------------------------------------------------------------

template <typename T>
BindStageResult<T> BindStage::run(const TuningContext<T> &Ctx,
                                  FormatKind Requested) {
  WallTimer Timer;
  BindStageResult<T> Result;
  Result.Op = bindFormatOperator(Ctx.A, Requested, Ctx.Model.Kernels,
                                 Ctx.Opts.CsrMode, Ctx.MoveSource);
  Result.BoundFormat = Result.Op->kind();
  Result.KernelName = Result.Op->kernelName();
  Result.Seconds = Timer.seconds();
  return Result;
}

// --- Explicit instantiations ------------------------------------------------

namespace smat {
template FeatureStageResult FeatureStage::run(const TuningContext<float> &);
template FeatureStageResult FeatureStage::run(const TuningContext<double> &);
template void FeatureStage::ensurePowerLaw(const TuningContext<float> &,
                                           FeatureStageResult &);
template void FeatureStage::ensurePowerLaw(const TuningContext<double> &,
                                           FeatureStageResult &);
template PredictStageResult PredictStage::run(const TuningContext<float> &,
                                              FeatureStageResult &);
template PredictStageResult PredictStage::run(const TuningContext<double> &,
                                              FeatureStageResult &);
template MeasureStageResult MeasureStage::run(const TuningContext<float> &,
                                              const FeatureStageResult &,
                                              FormatKind);
template MeasureStageResult MeasureStage::run(const TuningContext<double> &,
                                              const FeatureStageResult &,
                                              FormatKind);
template BindStageResult<float> BindStage::run(const TuningContext<float> &,
                                               FormatKind);
template BindStageResult<double> BindStage::run(const TuningContext<double> &,
                                                FormatKind);
} // namespace smat
