//===- core/TuningPipeline.cpp - Staged on-line tuning pipeline -----------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/TuningPipeline.h"

#include "support/FaultInjection.h"
#include "support/Timer.h"

#include <limits>

using namespace smat;

const char *smat::degradationLevelName(DegradationLevel Level) {
  switch (Level) {
  case DegradationLevel::None:
    return "none";
  case DegradationLevel::CandidateDropped:
    return "candidate_dropped";
  case DegradationLevel::BasicKernel:
    return "basic_kernel";
  case DegradationLevel::ReferenceCsr:
    return "reference_csr";
  }
  return "unknown";
}

namespace {

/// Cheap structural plausibility of a DIA/ELL conversion, computed from the
/// already-extracted features so no conversion is attempted for hopeless
/// candidates during execute-and-measure.
bool diaPlausible(const FeatureVector &F) {
  if (F.Ndiags <= 0 || F.Ndiags > DefaultMaxDiags)
    return false;
  return F.ErDia * DefaultMaxFillRatio >= 1.0;
}

bool ellPlausible(const FeatureVector &F) {
  if (F.MaxRd <= 0)
    return false;
  return F.ErEll * DefaultMaxFillRatio >= 1.0;
}

/// BSR candidacy from the 4x4 block fill-efficiency feature; the runtime
/// uses the same strict guard as training (padding inflates flops).
bool bsrPlausible(const FeatureVector &F) {
  constexpr double BsrMaxFillRatio = 1.5;
  return F.ErBsr * BsrMaxFillRatio >= 1.0;
}

} // namespace

// --- FeatureStage -----------------------------------------------------------

template <typename T>
FeatureStageResult FeatureStage::run(const TuningContext<T> &Ctx) {
  WallTimer Timer;
  FeatureStageResult Result;
  fault::injectKernelFault("feature.extract");
  Result.Features = extractStructureFeatures(Ctx.A);
  Result.Seconds = Timer.seconds();
  return Result;
}

template <typename T>
void FeatureStage::ensurePowerLaw(const TuningContext<T> &Ctx,
                                  FeatureStageResult &Features) {
  if (Features.HaveR)
    return;
  extractPowerLawFeature(Ctx.A, Features.Features);
  Features.HaveR = true;
}

// --- PredictStage -----------------------------------------------------------

template <typename T>
PredictStageResult PredictStage::run(const TuningContext<T> &Ctx,
                                     FeatureStageResult &Features) {
  WallTimer Timer;
  const LearningModel &Model = Ctx.Model;
  PredictStageResult Result;
  fault::injectKernelFault("predict.classify");
  Result.Prediction = Model.Rules.DefaultFormat;

  // Rule-group walk with lazy R (feature extraction step 2). Groups are
  // visited in DIA -> ELL -> [BSR] -> CSR -> COO order; R is computed the
  // first time a group whose rules reference it comes up (COO always does in
  // spirit: its signature feature is the power-law exponent).
  auto X = Features.Features.values();
  for (FormatKind Kind : RuleGroupOrder) {
    if (Kind == FormatKind::BSR && !Model.BsrEnabled)
      continue;
    if (Model.GroupUsesR[static_cast<int>(Kind)] || Kind == FormatKind::COO) {
      FeatureStage::ensurePowerLaw(Ctx, Features);
      X = Features.Features.values();
    }
    double Confidence = Model.Rules.groupConfidence(Kind, X);
    if (Confidence > Model.ConfidenceThreshold) {
      Result.Prediction = Kind;
      Result.Confidence = Confidence;
      Result.Confident = true;
      break;
    }
  }
  if (!Result.Confident) {
    FeatureStage::ensurePowerLaw(Ctx, Features);
    RulePrediction P = Model.Rules.classify(Features.Features.values());
    Result.Prediction = P.Format;
    Result.Confidence = P.Confidence;
    Result.Confident = P.Confidence > Model.ConfidenceThreshold;
  }
  Result.Seconds = Timer.seconds();
  return Result;
}

// --- MeasureStage -----------------------------------------------------------

bool MeasureStage::shouldRun(const TuneOptions &Opts,
                             const PredictStageResult &Prediction) {
  return Opts.ForceMeasure || (!Prediction.Confident && Opts.AllowMeasure);
}

template <typename T>
MeasureStageResult MeasureStage::run(const TuningContext<T> &Ctx,
                                     const FeatureStageResult &Features,
                                     FormatKind Fallback,
                                     const CostModelDecision *Allowed,
                                     double BaselineGflops) {
  WallTimer Timer;
  const CsrMatrix<T> &A = Ctx.A;
  const LearningModel &Model = Ctx.Model;
  const KernelTable<T> &Kernels = kernelTable<T>();
  MeasureStageResult Result;
  Result.Best = Fallback;

  // Execute-and-measure over the plausible candidates (paper Figure 7's
  // below-threshold path; Table 3 shows e.g. "CSR+COO" executions). A
  // batched tune (BatchWidth > 1) times the SpMM kernels over a Width-wide
  // dense block instead, so the format choice reflects batched performance.
  const index_t Width = std::max<index_t>(index_t(1), Ctx.Opts.BatchWidth);
  const bool Batched = Width > 1;
  AlignedVector<T> X(static_cast<std::size_t>(A.NumCols) *
                         static_cast<std::size_t>(Width),
                     T(1));
  AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows) *
                         static_cast<std::size_t>(Width),
                     T(0));

  // Seconds of tune budget left; +inf when unlimited.
  auto TuneRemaining = [&]() -> double {
    if (Ctx.Opts.TuneBudgetSeconds <= 0.0 || !Ctx.TuneClock)
      return std::numeric_limits<double>::infinity();
    return Ctx.Opts.TuneBudgetSeconds - Ctx.TuneClock->seconds();
  };

  // Analytic pre-filter: with a cost-model decision in hand, only the
  // formats that can address the classified bottleneck are raced. CSR is
  // never pruned (it is the substrate and the guardrail's plan). A pruned
  // format is not a dropped candidate — it was excluded by design, not
  // lost to a failure.
  auto FormatAllowed = [Allowed](FormatKind Kind) {
    return Kind == FormatKind::CSR || !Allowed || Allowed->allows(Kind);
  };

  // Measurement watchdog around one candidate: robust (min-of-k, spread
  // checked, backoff-retried) timing under the tighter of the per-candidate
  // and remaining whole-tune budgets; a candidate whose kernel throws is
  // dropped and the sweep continues.
  auto Consider = [&](FormatKind Kind, const std::string &Kernel,
                      const char *Site, auto &&RunOnce) {
    double Remaining = TuneRemaining();
    if (Remaining <= 0.0) {
      Result.BudgetExhausted = true;
      return;
    }
    RobustMeasureOptions MOpts;
    MOpts.MinSeconds = Ctx.Opts.MeasureMinSeconds;
    MOpts.BudgetSeconds = Ctx.Opts.MeasureBudgetSeconds;
    if (Remaining != std::numeric_limits<double>::infinity() &&
        (MOpts.BudgetSeconds <= 0.0 || Remaining < MOpts.BudgetSeconds))
      MOpts.BudgetSeconds = Remaining;
    try {
      RobustMeasureResult M = robustMeasureSecondsPerCall(
          [&] {
            fault::injectKernelFault(Site);
            RunOnce();
          },
          MOpts);
      Result.NoisyTimings = Result.NoisyTimings || M.Noisy;
      Result.BudgetExhausted = Result.BudgetExhausted || M.BudgetHit;
      double Gflops = spmvGflops(static_cast<std::uint64_t>(A.nnz()) *
                                     static_cast<std::uint64_t>(Width),
                                 M.SecondsPerCall);
      Result.MeasuredGflops.emplace_back(Kind, Gflops);
      Result.Candidates.push_back({Kind, Kernel, Gflops, false});
    } catch (...) {
      ++Result.DroppedCandidates;
    }
  };

  auto BestIdx = [&Model](FormatKind Kind) {
    return static_cast<std::size_t>(
        Model.Kernels.BestKernel[static_cast<int>(Kind)]);
  };

  // The scoreboard's per-width SpMM pick, with the same bounds/precondition
  // fallback to the basic entry the bind uses.
  auto BestSpmmIdx = [&Model, Width](FormatKind Kind, const auto &List,
                                     const auto &Mat) -> std::size_t {
    int Idx = Model.Kernels.spmmKernelFor(Kind, Width);
    if (Idx < 0 || static_cast<std::size_t>(Idx) >= List.size())
      return 0;
    if (!kernelPrecondsHold(List[static_cast<std::size_t>(Idx)].Preconds, Mat))
      return 0;
    return static_cast<std::size_t>(Idx);
  };

  // The CSR candidate is measured with the kernel the bind would actually
  // choose, including the skew-aware load-balanced pick for matrices with a
  // high row-length CV — otherwise the measurement could crown CSR with a
  // kernel the plan never binds (or vice versa).
  if (Batched) {
    std::size_t I = BestSpmmIdx(FormatKind::CSR, Kernels.CsrSpmm, A);
    Consider(FormatKind::CSR, Kernels.CsrSpmm[I].Name, "measure.kernel.CSR",
             [&, I] { Kernels.CsrSpmm[I].Fn(A, X.data(), Y.data(), Width); });
  } else {
    std::size_t CsrIdx = static_cast<std::size_t>(
        Model.Kernels.csrKernelFor(Features.Features.rowCv()));
    if (CsrIdx >= Kernels.Csr.size())
      CsrIdx = BestIdx(FormatKind::CSR);
    Consider(FormatKind::CSR, Kernels.Csr[CsrIdx].Name, "measure.kernel.CSR",
             [&, CsrIdx] { Kernels.Csr[CsrIdx].Fn(A, X.data(), Y.data()); });
  }
  try {
    if (FormatAllowed(FormatKind::COO)) {
      CooMatrix<T> Coo = csrToCoo(A);
      // Respect declared kernel preconditions (csrToCoo output always has
      // monotone rows, but the registration is the contract, not the
      // builder).
      if (Batched) {
        std::size_t I = BestSpmmIdx(FormatKind::COO, Kernels.CooSpmm, Coo);
        Consider(FormatKind::COO, Kernels.CooSpmm[I].Name,
                 "measure.kernel.COO", [&, I] {
                   Kernels.CooSpmm[I].Fn(Coo, X.data(), Y.data(), Width);
                 });
      } else {
        std::size_t CooIdx = BestIdx(FormatKind::COO);
        if (!kernelPrecondsHold(Kernels.Coo[CooIdx].Preconds, Coo))
          CooIdx = 0;
        Consider(FormatKind::COO, Kernels.Coo[CooIdx].Name,
                 "measure.kernel.COO", [&, CooIdx] {
                   Kernels.Coo[CooIdx].Fn(Coo, X.data(), Y.data());
                 });
      }
    }
  } catch (...) {
    ++Result.DroppedCandidates; // COO conversion failed; CSR already ran.
  }
  try {
    if (FormatAllowed(FormatKind::DIA) && diaPlausible(Features.Features)) {
      DiaMatrix<T> Dia;
      if (csrToDia(A, Dia)) {
        if (Batched) {
          std::size_t I = BestSpmmIdx(FormatKind::DIA, Kernels.DiaSpmm, Dia);
          Consider(FormatKind::DIA, Kernels.DiaSpmm[I].Name,
                   "measure.kernel.DIA", [&, I] {
                     Kernels.DiaSpmm[I].Fn(Dia, X.data(), Y.data(), Width);
                   });
        } else {
          std::size_t DiaIdx = BestIdx(FormatKind::DIA);
          Consider(FormatKind::DIA, Kernels.Dia[DiaIdx].Name,
                   "measure.kernel.DIA", [&, DiaIdx] {
                     Kernels.Dia[DiaIdx].Fn(Dia, X.data(), Y.data());
                   });
        }
      }
    }
  } catch (...) {
    ++Result.DroppedCandidates;
  }
  try {
    if (FormatAllowed(FormatKind::ELL) && ellPlausible(Features.Features)) {
      EllMatrix<T> Ell;
      if (csrToEll(A, Ell)) {
        // Same precondition contract as COO: a selected sliced kernel needs
        // the RowLen sidecar or falls back to the basic kernel.
        if (Batched) {
          std::size_t I = BestSpmmIdx(FormatKind::ELL, Kernels.EllSpmm, Ell);
          Consider(FormatKind::ELL, Kernels.EllSpmm[I].Name,
                   "measure.kernel.ELL", [&, I] {
                     Kernels.EllSpmm[I].Fn(Ell, X.data(), Y.data(), Width);
                   });
        } else {
          std::size_t EllIdx = BestIdx(FormatKind::ELL);
          if (!kernelPrecondsHold(Kernels.Ell[EllIdx].Preconds, Ell))
            EllIdx = 0;
          Consider(FormatKind::ELL, Kernels.Ell[EllIdx].Name,
                   "measure.kernel.ELL", [&, EllIdx] {
                     Kernels.Ell[EllIdx].Fn(Ell, X.data(), Y.data());
                   });
        }
      }
    }
  } catch (...) {
    ++Result.DroppedCandidates;
  }
  try {
    if (FormatAllowed(FormatKind::BSR) && Model.BsrEnabled &&
        bsrPlausible(Features.Features)) {
      index_t BlockSize = chooseBsrBlockSize(A);
      BsrMatrix<T> Bsr;
      if (BlockSize > 0 && csrToBsr(A, Bsr, BlockSize)) {
        // BSR has no batched kernel family; its multiply() degrades to
        // column-at-a-time applies, so the batched candidate runs the SpMV
        // kernel Width times to model that honestly.
        std::size_t BsrIdx = BestIdx(FormatKind::BSR);
        Consider(FormatKind::BSR, Kernels.Bsr[BsrIdx].Name,
                 "measure.kernel.BSR", [&, BsrIdx] {
                   for (index_t J = 0; J < Width; ++J)
                     Kernels.Bsr[BsrIdx].Fn(Bsr, X.data(), Y.data());
                 });
      }
    }
  } catch (...) {
    ++Result.DroppedCandidates;
  }

  double BestGflops = -1.0;
  for (const auto &[Kind, Gflops] : Result.MeasuredGflops)
    if (Gflops > BestGflops) {
      BestGflops = Gflops;
      Result.Best = Kind;
    }

  // The never-slower guardrail: the untuned basic-CSR baseline is a
  // first-class candidate. When it beats every tuned measurement (or
  // nothing was measured at all), the race's answer is "do not tune" — the
  // caller binds the basic CSR plan.
  if (BaselineGflops > 0.0) {
    Result.Candidates.push_back({FormatKind::CSR,
                                 Batched ? basicCsrSpmmKernel<T>().Name
                                         : basicCsrKernel<T>().Name,
                                 BaselineGflops, true});
    if (BaselineGflops > BestGflops) {
      Result.BaselineWon = true;
      Result.Best = FormatKind::CSR;
    }
  }
  Result.Seconds = Timer.seconds();
  return Result;
}

// --- BindStage --------------------------------------------------------------

template <typename T>
BindStageResult<T> BindStage::run(const TuningContext<T> &Ctx,
                                  FormatKind Requested,
                                  const FeatureVector *Features,
                                  bool ForceBasicCsr) {
  WallTimer Timer;
  BindStageResult<T> Result;

  // Skew-aware CSR kernel choice: with features in hand, a heavily skewed
  // row-length distribution binds the scoreboard's skew-pass pick.
  int CsrOverride =
      Features ? Ctx.Model.Kernels.csrKernelFor(Features->rowCv()) : -1;

  // Rung 0: the full bind — conversion plus the scoreboard-selected kernel
  // (with the long-standing guard fallback to CSR inside). When the caller
  // forces the basic-CSR plan (the never-slower guardrail decided tuning
  // does not pay), this rung is skipped entirely: the basic bind below is
  // the requested plan, not a degradation, so Degradation stays None.
  if (!ForceBasicCsr) {
    try {
      fault::injectKernelFault("bind.operator");
      Result.Op = bindFormatOperator(Ctx.A, Requested, Ctx.Model.Kernels,
                                     Ctx.Opts.CsrMode, Ctx.MoveSource,
                                     CsrOverride, Ctx.Opts.BatchWidth);
    } catch (...) {
      Result.Op = nullptr;
    }
  }

  // Rung BasicKernel: the strategy-free CSR kernel, no conversion and no
  // scoreboard lookup. On the Owned path the operator node (the only
  // throwing step) is allocated with an empty matrix first and the real
  // storage adopted afterwards (noexcept), so a failure here leaves a
  // MoveSource intact for the final rung.
  if (!Result.Op) {
    if (!ForceBasicCsr)
      Result.Degradation = DegradationLevel::BasicKernel;
    try {
      fault::injectKernelFault("bind.basic_csr");
      const auto &K = basicCsrKernel<T>();
      const auto &KM = basicCsrSpmmKernel<T>();
      if (Ctx.Opts.CsrMode == CsrStorage::Owned) {
        auto Owning = std::make_unique<CsrOwningOperator<T>>(
            CsrMatrix<T>(), K.Fn, K.Name, KM.Fn, KM.Name);
        if (Ctx.MoveSource)
          Owning->adoptMatrix(std::move(*Ctx.MoveSource));
        else
          Owning->adoptMatrix(CsrMatrix<T>(Ctx.A));
        Result.Op = std::move(Owning);
      } else {
        Result.Op = std::make_unique<CsrBorrowedOperator<T>>(Ctx.A, K.Fn,
                                                             K.Name, KM.Fn,
                                                             KM.Name);
      }
    } catch (...) {
      Result.Op = nullptr;
    }
  }

  // Final rung: the CSR reference kernel. Once the node exists nothing can
  // fail. The rvalue tune path moves its matrix in (the caller's temporary
  // is about to die); the lvalue path borrows — if Owned was requested but
  // its copy failed above, borrowing is the honest remainder, and
  // ownsStorage() reports it.
  if (!Result.Op) {
    Result.Degradation = DegradationLevel::ReferenceCsr;
    auto Ref = std::make_unique<CsrReferenceOperator<T>>(Ctx.A);
    if (Ctx.Opts.CsrMode == CsrStorage::Owned && Ctx.MoveSource)
      Ref->adoptMatrix(std::move(*Ctx.MoveSource));
    Result.Op = std::move(Ref);
  }

  Result.BoundFormat = Result.Op->kind();
  Result.KernelName = Result.Op->kernelName();
  Result.Seconds = Timer.seconds();
  return Result;
}

// --- Explicit instantiations ------------------------------------------------

namespace smat {
template FeatureStageResult FeatureStage::run(const TuningContext<float> &);
template FeatureStageResult FeatureStage::run(const TuningContext<double> &);
template void FeatureStage::ensurePowerLaw(const TuningContext<float> &,
                                           FeatureStageResult &);
template void FeatureStage::ensurePowerLaw(const TuningContext<double> &,
                                           FeatureStageResult &);
template PredictStageResult PredictStage::run(const TuningContext<float> &,
                                              FeatureStageResult &);
template PredictStageResult PredictStage::run(const TuningContext<double> &,
                                              FeatureStageResult &);
template MeasureStageResult MeasureStage::run(const TuningContext<float> &,
                                              const FeatureStageResult &,
                                              FormatKind,
                                              const CostModelDecision *,
                                              double);
template MeasureStageResult MeasureStage::run(const TuningContext<double> &,
                                              const FeatureStageResult &,
                                              FormatKind,
                                              const CostModelDecision *,
                                              double);
template BindStageResult<float>
BindStage::run(const TuningContext<float> &, FormatKind,
               const FeatureVector *, bool);
template BindStageResult<double>
BindStage::run(const TuningContext<double> &, FormatKind,
               const FeatureVector *, bool);
} // namespace smat
