//===- core/PlanCache.h - Feature-fingerprint tuning-plan cache -*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reuse layer of the tuning runtime. Tuning cost is dominated by the
/// execute-and-measure fallback and the overhead baseline measurement; a
/// production service tuning many matrices (or an AMG hierarchy whose
/// coarse-grid operators repeat structure level after level) pays that cost
/// again and again for structurally equivalent inputs. `PlanCache` maps a
/// quantized structural fingerprint of the feature vector to the previously
/// chosen format, so a matrix that lands in an already-tuned equivalence
/// class skips prediction and measurement and goes straight to conversion +
/// kernel binding.
///
/// The fingerprint buckets are deliberately coarse (log2 dimension buckets,
/// log-scale density/dispersion, eighth-steps for the fill ratios): two
/// matrices in the same bucket have feature vectors any learned rule treats
/// near-identically, so reusing the decision does not change what the model
/// would have answered — only what it costs.
///
/// Concurrency: the cache is sharded (DESIGN.md section 16). A fingerprint
/// hashes to one shard, each with its own mutex, LRU list, and singleflight
/// lease set, so a service whose worker threads tune unrelated structures
/// do not serialize on one global lock. Tiny caches (capacity < 64) stay
/// single-sharded so their LRU eviction order is exact and globally
/// observable, which the unit tests rely on.
///
/// Persistence: `saveSnapshot` writes a versioned, checksummed snapshot
/// atomically (temp file + rename) and `loadSnapshot` restores it, so a
/// fleet warm-starts its plan cache across process restarts. A corrupt,
/// truncated, or version-mismatched snapshot logs a warning and cold-starts
/// — it never throws, never crashes, and never half-loads.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_PLANCACHE_H
#define SMAT_CORE_PLANCACHE_H

#include "features/FeatureExtractor.h"
#include "matrix/Format.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace smat {

/// Quantized structural equivalence class of a feature vector. All fields
/// are small bucket indices; equality means "tune decisions transfer".
struct PlanFingerprint {
  std::int16_t RowsLog2 = 0;        ///< floor(log2(M + 1)).
  std::int16_t ColsLog2 = 0;        ///< floor(log2(N + 1)).
  std::int16_t DensityBucket = 0;   ///< Half-log2 buckets of aver_RD.
  std::int16_t DispersionBucket = 0;///< Log buckets of the row-degree CV.
  std::int16_t MaxRdLog2 = 0;       ///< floor(log2(max_RD + 1)).
  std::int16_t NdiagsLog2 = 0;      ///< floor(log2(Ndiags + 1)).
  std::int16_t NTdiagsBucket = 0;   ///< NTdiags_ratio in eighth steps.
  std::int16_t DiaFillBucket = 0;   ///< ER_DIA in eighth steps.
  std::int16_t EllFillBucket = 0;   ///< ER_ELL in eighth steps.
  std::int16_t BsrFillBucket = 0;   ///< ER_BSR in eighth steps.
  /// Batch-width bucket (0 for single-vector SpMV; SpMM tunes key on the
  /// register-tile bucket serving the requested width). Width is a tuning
  /// input, not a matrix feature: the same structure tuned at k=1 and k=8
  /// can legitimately bind different formats and kernels, so the buckets
  /// must not collide.
  std::int16_t WidthBucket = 0;
  /// Analytic bottleneck class the cost model assigned (1 + BottleneckClass)
  /// or 0 when the cost model did not run. Part of the key so plans tuned
  /// under a pruned candidate race are never reused by a tune that raced the
  /// full candidate set (and vice versa).
  std::int16_t ClassBucket = 0;
  /// Model-generation stamp (TuneOptions::ModelGeneration). Runtime layers
  /// that hot-reload model files (TuningService) bump a generation counter
  /// on every reload; plans tuned under an older model then stop matching
  /// and age out by LRU instead of being served stale. 0 for callers that
  /// never reload.
  std::int32_t ModelGeneration = 0;

  friend bool operator==(const PlanFingerprint &,
                         const PlanFingerprint &) = default;
};

/// FNV-1a over the fingerprint buckets.
struct PlanFingerprintHash {
  std::size_t operator()(const PlanFingerprint &Fp) const;
};

/// Computes the structural fingerprint of \p F. Uses only step-1 features
/// (the power-law R is never required), so a fingerprint is available right
/// after `FeatureStage` with no extra matrix traversal.
PlanFingerprint fingerprintFeatures(const FeatureVector &F);

/// What the cache remembers per equivalence class.
struct CachedPlan {
  /// The format the pipeline actually bound (post conversion-guard
  /// fallback), not merely predicted.
  FormatKind Format = FormatKind::CSR;
  /// The overhead baseline (seconds of one basic CSR SpMV) measured when
  /// the class was first tuned; reused so warm tunes skip re-measuring it.
  double CsrSpmvSeconds = 0.0;
  /// The never-slower guardrail fired when this class was tuned: the plan
  /// IS the basic-CSR baseline. Warm hits replay the guarded bind (basic
  /// kernel, no conversion) instead of re-deriving it.
  bool GuardrailEngaged = false;
};

/// Monotonic hit/miss/insert/eviction counters.
struct PlanCacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Inserts = 0;
  std::uint64_t Evictions = 0;
  /// lookupOrLead calls that blocked behind another thread's in-flight tune
  /// of the same fingerprint instead of measuring themselves.
  std::uint64_t SingleflightWaits = 0;
  /// Persistence counters: successful snapshot saves and loads, and loads
  /// that found a corrupt/mismatched snapshot and cold-started instead.
  std::uint64_t SnapshotSaves = 0;
  std::uint64_t SnapshotLoads = 0;
  std::uint64_t SnapshotLoadFailures = 0;
};

/// Outcome of PlanCache::lookupOrLead (the singleflight probe).
struct PlanProbe {
  /// A plan was found: immediately cached, or published by the in-flight
  /// tune this call waited for.
  bool Hit = false;
  /// This caller holds the measurement lease for the fingerprint and MUST
  /// call publish() or abandon() for it exactly once — other threads
  /// probing the same fingerprint are blocked until it does.
  bool Lead = false;
  /// The hit was satisfied by another thread's publication after a wait
  /// (as opposed to an immediate cache hit).
  bool Shared = false;
  CachedPlan Plan;
};

/// Outcome of PlanCache::loadSnapshot.
enum class SnapshotLoadResult {
  /// The snapshot parsed, its checksum verified, and every entry was
  /// inserted.
  Loaded,
  /// No snapshot file exists at the path (a normal cold boot; not logged).
  Missing,
  /// The file exists but is corrupt, truncated, or version-mismatched: a
  /// warning was logged, the cache was left untouched, and the caller
  /// cold-starts.
  Corrupt,
};

/// A bounded, thread-safe, sharded LRU cache of tuning plans keyed by
/// structural fingerprint. Share one instance across every matrix a process
/// tunes (or across an AMG hierarchy's levels) to amortize tuning cost.
class PlanCache {
public:
  /// Snapshot-file format version tag (first line of every snapshot).
  static constexpr const char *SnapshotVersion = "smat-plancache-v1";

  explicit PlanCache(std::size_t Capacity = 1024);

  /// Looks up \p Fp; on a hit copies the plan into \p Plan, refreshes its
  /// LRU position, and returns true. Counts a hit or a miss either way.
  bool lookup(const PlanFingerprint &Fp, CachedPlan &Plan);

  /// Singleflight probe: like lookup, but a miss whose fingerprint another
  /// thread is already tuning blocks until that tune publishes (a shared
  /// hit) or abandons (this caller inherits the lease). A miss with no tune
  /// in flight returns Lead = true; the leader must publish() or abandon()
  /// the fingerprint exactly once (Smat uses an RAII guard). Concurrent
  /// tunes of the same structure therefore measure once.
  PlanProbe lookupOrLead(const PlanFingerprint &Fp);

  /// Publishes the leader's plan for \p Fp, releases the lease, and wakes
  /// every thread waiting on the fingerprint.
  void publish(const PlanFingerprint &Fp, const CachedPlan &Plan);

  /// Releases the lease for \p Fp without publishing (the leading tune
  /// degraded to a plan not worth caching, or failed to insert). One waiter
  /// wakes and inherits the lease.
  void abandon(const PlanFingerprint &Fp);

  /// Inserts or overwrites the plan for \p Fp, evicting the least recently
  /// used entry of its shard when at capacity.
  void insert(const PlanFingerprint &Fp, const CachedPlan &Plan);

  /// Drops every entry (counters are preserved; they are monotonic).
  /// In-flight singleflight leases are untouched: their leaders still hold
  /// them and will publish or abandon as usual.
  void clear();

  /// Writes a versioned, checksummed snapshot of every cached plan to
  /// \p Path, atomically: the payload goes to a temp file in the same
  /// directory which is then renamed over \p Path, so a crash mid-write
  /// leaves either the old snapshot or none — never a torn one. Thread-safe
  /// against concurrent cache use (shards are walked one at a time).
  /// \returns false with the reason in \p Error (when non-null) on I/O
  /// failure; the cache itself is unaffected either way.
  bool saveSnapshot(const std::string &Path, std::string *Error = nullptr) const;

  /// Restores a snapshot written by saveSnapshot, inserting every entry
  /// (existing entries with the same fingerprint are overwritten; LRU
  /// eviction applies as usual). The file is fully parsed and its checksum
  /// verified BEFORE anything is inserted: a corrupt, truncated, or
  /// version-mismatched snapshot logs one warning to stderr, leaves the
  /// cache exactly as it was, and returns Corrupt — the process cold-starts
  /// instead of crashing or loading poisoned plans. A missing file returns
  /// Missing silently (first boot is not an error).
  SnapshotLoadResult loadSnapshot(const std::string &Path,
                                  std::size_t *LoadedCount = nullptr,
                                  std::string *Warning = nullptr);

  PlanCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return Capacity; }
  /// Number of lock shards (1 for tiny caches, where exact global LRU
  /// order matters more than lock spread).
  std::size_t shards() const { return Shards.size(); }

private:
  using Entry = std::pair<PlanFingerprint, CachedPlan>;

  /// One lock domain: a slice of the capacity with its own LRU order and
  /// singleflight lease set. A fingerprint always hashes to the same shard,
  /// so per-fingerprint semantics (singleflight, LRU refresh, eviction
  /// pressure) are unchanged from the unsharded cache.
  struct Shard {
    mutable std::mutex Mutex;
    std::size_t Capacity = 1;
    /// Most recently used at the front.
    std::list<Entry> Lru;
    std::unordered_map<PlanFingerprint, std::list<Entry>::iterator,
                       PlanFingerprintHash>
        Index;
    /// Fingerprints whose tune is in flight under a singleflight lease.
    std::unordered_set<PlanFingerprint, PlanFingerprintHash> InFlight;
    /// Signalled on publish()/abandon() so lookupOrLead waiters re-probe.
    std::condition_variable InFlightCv;
    PlanCacheStats Counters;
  };

  Shard &shardFor(const PlanFingerprint &Fp);
  const Shard &shardFor(const PlanFingerprint &Fp) const;

  /// insert() with the shard mutex already held.
  static void insertLocked(Shard &S, const PlanFingerprint &Fp,
                           const CachedPlan &Plan);

  std::size_t Capacity;
  /// unique_ptr because Shard holds a mutex and must not move.
  std::vector<std::unique_ptr<Shard>> Shards;
  /// Cache-global persistence counters (snapshots span every shard).
  mutable std::atomic<std::uint64_t> SnapshotSaves{0};
  mutable std::atomic<std::uint64_t> SnapshotLoads{0};
  mutable std::atomic<std::uint64_t> SnapshotLoadFailures{0};
};

} // namespace smat

#endif // SMAT_CORE_PLANCACHE_H
