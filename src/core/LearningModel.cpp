//===- core/LearningModel.cpp - The trained SMAT model --------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/LearningModel.h"

#include "ml/ModelIO.h"
#include "support/Str.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace smat;

void LearningModel::refreshRuleMetadata() {
  GroupUsesR.fill(false);
  for (const Rule &R : Rules.Rules)
    for (const Condition &C : R.Conditions)
      if (C.Feature == FeatR)
        GroupUsesR[static_cast<int>(R.Format)] = true;
}

std::string smat::serializeModel(const LearningModel &Model) {
  std::string Out = "SMAT-MODEL v1\n";
  Out += formatString("threshold %.17g\n", Model.ConfidenceThreshold);
  Out += formatString("bsr %d\n", Model.BsrEnabled ? 1 : 0);
  for (int K = 0; K < NumFormats; ++K)
    Out += formatString(
        "kernel %s %d %s\n",
        std::string(formatName(static_cast<FormatKind>(K))).c_str(),
        Model.Kernels.BestKernel[static_cast<std::size_t>(K)],
        Model.Kernels.BestKernelName[static_cast<std::size_t>(K)].c_str());
  // Optional skew-pass CSR kernel (v1-compatible: old parsers that reach the
  // ruleset reader treat an unknown leading line as ruleset text, and the
  // line is only written when the search actually produced a skew pick).
  if (Model.Kernels.BestSkewCsrKernel >= 0)
    Out += formatString("kernel_skew CSR %d %s\n",
                        Model.Kernels.BestSkewCsrKernel,
                        Model.Kernels.BestSkewCsrKernelName.c_str());
  // Optional per-width SpMM picks (same v1 compatibility contract as
  // kernel_skew: only searched entries are written, and a parser that does
  // not know the tag treats the first non-matching line as ruleset text).
  for (int K = 0; K < NumFormats; ++K)
    for (int W = 0; W < NumSpmmWidths; ++W)
      if (Model.Kernels.BestSpmmKernel[static_cast<std::size_t>(K)]
                                      [static_cast<std::size_t>(W)] >= 0)
        Out += formatString(
            "kernel_spmm %d %s %d %s\n",
            static_cast<int>(SpmmSearchWidths[static_cast<std::size_t>(W)]),
            std::string(formatName(static_cast<FormatKind>(K))).c_str(),
            Model.Kernels.BestSpmmKernel[static_cast<std::size_t>(K)]
                                        [static_cast<std::size_t>(W)],
            Model.Kernels.BestSpmmKernelName[static_cast<std::size_t>(K)]
                                            [static_cast<std::size_t>(W)]
                .c_str());
  // Optional analytic-classifier thresholds (same v1 compatibility contract
  // as kernel_skew: a parser that predates the tag treats the first
  // non-matching line as ruleset text, and a file without the lines parses
  // with the CostModelThresholds defaults).
  Out += formatString("costmodel imbalance_rowcv %.17g\n",
                      Model.Cost.ImbalanceRowCv);
  Out += formatString("costmodel dia_fill %.17g\n", Model.Cost.DiaFillMin);
  Out += formatString("costmodel ell_fill %.17g\n", Model.Cost.EllFillMin);
  Out += serializeRuleSet(Model.Rules);
  return Out;
}

bool smat::parseModel(const std::string &Text, LearningModel &Model,
                      std::string &Error) {
  Model = LearningModel();
  std::istringstream In(Text);
  std::string Line;

  if (!std::getline(In, Line) || trim(Line) != "SMAT-MODEL v1") {
    Error = "missing SMAT-MODEL v1 header";
    return false;
  }
  if (!std::getline(In, Line)) {
    Error = "missing threshold line";
    return false;
  }
  auto ThresholdParts = splitWhitespace(Line);
  if (ThresholdParts.size() != 2 || ThresholdParts[0] != "threshold") {
    Error = "malformed threshold line: '" + Line + "'";
    return false;
  }
  Model.ConfidenceThreshold = std::strtod(ThresholdParts[1].c_str(), nullptr);

  if (!std::getline(In, Line)) {
    Error = "missing bsr line";
    return false;
  }
  auto BsrParts = splitWhitespace(Line);
  if (BsrParts.size() != 2 || BsrParts[0] != "bsr") {
    Error = "malformed bsr line: '" + Line + "'";
    return false;
  }
  Model.BsrEnabled = BsrParts[1] == "1";

  for (int K = 0; K < NumFormats; ++K) {
    if (!std::getline(In, Line)) {
      Error = "missing kernel line";
      return false;
    }
    auto KernelParts = splitWhitespace(Line);
    FormatKind Kind;
    if (KernelParts.size() != 4 || KernelParts[0] != "kernel" ||
        !parseFormatName(KernelParts[1], Kind)) {
      Error = "malformed kernel line: '" + Line + "'";
      return false;
    }
    int Idx = static_cast<int>(Kind);
    Model.Kernels.BestKernel[static_cast<std::size_t>(Idx)] =
        static_cast<int>(std::strtol(KernelParts[2].c_str(), nullptr, 10));
    Model.Kernels.BestKernelName[static_cast<std::size_t>(Idx)] =
        KernelParts[3];
  }

  // Optional lines (absent in models trained before the features existed):
  // kernel_skew (skew-pass CSR kernel; BestSkewCsrKernel stays -1 without
  // it) and kernel_spmm (per-width batched picks; the affected width bucket
  // stays unsearched without them). Lookahead loop: the first consumed line
  // matching neither tag belongs to the ruleset.
  std::string RulesetPrefix;
  while (std::getline(In, Line)) {
    auto Parts = splitWhitespace(Line);
    if (Parts.size() == 4 && Parts[0] == "kernel_skew") {
      if (Parts[1] != "CSR") {
        Error = "malformed kernel_skew line: '" + Line + "'";
        return false;
      }
      Model.Kernels.BestSkewCsrKernel =
          static_cast<int>(std::strtol(Parts[2].c_str(), nullptr, 10));
      Model.Kernels.BestSkewCsrKernelName = Parts[3];
      continue;
    }
    if (Parts.size() == 5 && Parts[0] == "kernel_spmm") {
      FormatKind Kind;
      index_t Width =
          static_cast<index_t>(std::strtol(Parts[1].c_str(), nullptr, 10));
      if (!parseFormatName(Parts[2], Kind) || Width < 2 ||
          Width != SpmmSearchWidths[static_cast<std::size_t>(
                       spmmWidthIndex(Width))]) {
        Error = "malformed kernel_spmm line: '" + Line + "'";
        return false;
      }
      std::size_t F = static_cast<std::size_t>(Kind);
      std::size_t W = static_cast<std::size_t>(spmmWidthIndex(Width));
      Model.Kernels.BestSpmmKernel[F][W] =
          static_cast<int>(std::strtol(Parts[3].c_str(), nullptr, 10));
      Model.Kernels.BestSpmmKernelName[F][W] = Parts[4];
      continue;
    }
    if (Parts.size() == 3 && Parts[0] == "costmodel") {
      double Value = std::strtod(Parts[2].c_str(), nullptr);
      if (Parts[1] == "imbalance_rowcv")
        Model.Cost.ImbalanceRowCv = Value;
      else if (Parts[1] == "dia_fill")
        Model.Cost.DiaFillMin = Value;
      else if (Parts[1] == "ell_fill")
        Model.Cost.EllFillMin = Value;
      else {
        Error = "malformed costmodel line: '" + Line + "'";
        return false;
      }
      continue;
    }
    RulesetPrefix = Line + "\n";
    break;
  }

  // The remainder of the stream is the ruleset.
  std::ostringstream Rest;
  Rest << In.rdbuf();
  if (!parseRuleSet(RulesetPrefix + Rest.str(), Model.Rules, Error))
    return false;
  Model.refreshRuleMetadata();
  return true;
}

bool smat::saveModelFile(const std::string &Path, const LearningModel &Model) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << serializeModel(Model);
  return static_cast<bool>(Out);
}

bool smat::loadModelFile(const std::string &Path, LearningModel &Model,
                         std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open file '" + Path + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseModel(Buffer.str(), Model, Error);
}
