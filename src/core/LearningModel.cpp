//===- core/LearningModel.cpp - The trained SMAT model --------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/LearningModel.h"

#include "ml/ModelIO.h"
#include "support/Str.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace smat;

void LearningModel::refreshRuleMetadata() {
  GroupUsesR.fill(false);
  for (const Rule &R : Rules.Rules)
    for (const Condition &C : R.Conditions)
      if (C.Feature == FeatR)
        GroupUsesR[static_cast<int>(R.Format)] = true;
}

std::string smat::serializeModel(const LearningModel &Model) {
  std::string Out = "SMAT-MODEL v1\n";
  Out += formatString("threshold %.17g\n", Model.ConfidenceThreshold);
  Out += formatString("bsr %d\n", Model.BsrEnabled ? 1 : 0);
  for (int K = 0; K < NumFormats; ++K)
    Out += formatString(
        "kernel %s %d %s\n",
        std::string(formatName(static_cast<FormatKind>(K))).c_str(),
        Model.Kernels.BestKernel[static_cast<std::size_t>(K)],
        Model.Kernels.BestKernelName[static_cast<std::size_t>(K)].c_str());
  // Optional skew-pass CSR kernel (v1-compatible: old parsers that reach the
  // ruleset reader treat an unknown leading line as ruleset text, and the
  // line is only written when the search actually produced a skew pick).
  if (Model.Kernels.BestSkewCsrKernel >= 0)
    Out += formatString("kernel_skew CSR %d %s\n",
                        Model.Kernels.BestSkewCsrKernel,
                        Model.Kernels.BestSkewCsrKernelName.c_str());
  Out += serializeRuleSet(Model.Rules);
  return Out;
}

bool smat::parseModel(const std::string &Text, LearningModel &Model,
                      std::string &Error) {
  Model = LearningModel();
  std::istringstream In(Text);
  std::string Line;

  if (!std::getline(In, Line) || trim(Line) != "SMAT-MODEL v1") {
    Error = "missing SMAT-MODEL v1 header";
    return false;
  }
  if (!std::getline(In, Line)) {
    Error = "missing threshold line";
    return false;
  }
  auto ThresholdParts = splitWhitespace(Line);
  if (ThresholdParts.size() != 2 || ThresholdParts[0] != "threshold") {
    Error = "malformed threshold line: '" + Line + "'";
    return false;
  }
  Model.ConfidenceThreshold = std::strtod(ThresholdParts[1].c_str(), nullptr);

  if (!std::getline(In, Line)) {
    Error = "missing bsr line";
    return false;
  }
  auto BsrParts = splitWhitespace(Line);
  if (BsrParts.size() != 2 || BsrParts[0] != "bsr") {
    Error = "malformed bsr line: '" + Line + "'";
    return false;
  }
  Model.BsrEnabled = BsrParts[1] == "1";

  for (int K = 0; K < NumFormats; ++K) {
    if (!std::getline(In, Line)) {
      Error = "missing kernel line";
      return false;
    }
    auto KernelParts = splitWhitespace(Line);
    FormatKind Kind;
    if (KernelParts.size() != 4 || KernelParts[0] != "kernel" ||
        !parseFormatName(KernelParts[1], Kind)) {
      Error = "malformed kernel line: '" + Line + "'";
      return false;
    }
    int Idx = static_cast<int>(Kind);
    Model.Kernels.BestKernel[static_cast<std::size_t>(Idx)] =
        static_cast<int>(std::strtol(KernelParts[2].c_str(), nullptr, 10));
    Model.Kernels.BestKernelName[static_cast<std::size_t>(Idx)] =
        KernelParts[3];
  }

  // Optional skew-pass CSR kernel line (absent in models trained before the
  // load-balanced kernels existed: BestSkewCsrKernel then stays -1 and the
  // runtime binds the general CSR pick everywhere). Lookahead: a consumed
  // line that is not kernel_skew belongs to the ruleset.
  std::string RulesetPrefix;
  if (std::getline(In, Line)) {
    auto SkewParts = splitWhitespace(Line);
    if (SkewParts.size() == 4 && SkewParts[0] == "kernel_skew") {
      if (SkewParts[1] != "CSR") {
        Error = "malformed kernel_skew line: '" + Line + "'";
        return false;
      }
      Model.Kernels.BestSkewCsrKernel =
          static_cast<int>(std::strtol(SkewParts[2].c_str(), nullptr, 10));
      Model.Kernels.BestSkewCsrKernelName = SkewParts[3];
    } else {
      RulesetPrefix = Line + "\n";
    }
  }

  // The remainder of the stream is the ruleset.
  std::ostringstream Rest;
  Rest << In.rdbuf();
  if (!parseRuleSet(RulesetPrefix + Rest.str(), Model.Rules, Error))
    return false;
  Model.refreshRuleMetadata();
  return true;
}

bool smat::saveModelFile(const std::string &Path, const LearningModel &Model) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << serializeModel(Model);
  return static_cast<bool>(Out);
}

bool smat::loadModelFile(const std::string &Path, LearningModel &Model,
                         std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open file '" + Path + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseModel(Buffer.str(), Model, Error);
}
