//===- core/TuningService.h - Async tuning-as-a-service runtime -*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuning-as-a-service layer (DESIGN.md section 16, ROADMAP north
/// star): SMAT's adaptive selection without ever making a caller wait for
/// it. A blocking cold `Smat::tune` costs ~14 ms median on the bench corpus
/// — three orders of magnitude more than the SpMV it optimizes — which is
/// unacceptable on a traffic-serving path. `TuningService::tuneAsync`
/// instead returns a servable `AsyncSpmv` handle in O(1): the handle
/// multiplies on the basic (strategy-free) CSR kernel from call #1, while a
/// background worker thread runs the full Feature/Predict/Measure/Bind
/// pipeline and atomically swaps the tuned `FormatOperator` into the handle
/// at completion. Callers never observe the swap except as a throughput
/// improvement; per the amortization analysis in PAPERS.md (arXiv
/// 2407.00019), tuning then pays for itself without a pay-up-front window.
///
/// Robustness contract (the PR 7 ladder, extended off-thread):
///  - Every worker failure — injected fault, watchdog budget expiry,
///    exception out of any pipeline stage — parks the handle in the Failed
///    state still serving basic CSR. Correct results, never a crash, never
///    slower than not tuning (the never-slower guardrail also rides along
///    in the worker's TuneOptions).
///  - Publication is a release-store of an immutable plan pointer
///    (TSan-clean, no refcount traffic on the multiply hot path): in-flight
///    multiplies finish on the plan they loaded while new calls see the
///    tuned plan; the job owns both plans, so neither dies before the
///    last handle does.
///  - Plans persist: the shared PlanCache snapshots to a versioned,
///    checksummed file (crash-safe temp+rename) so a restarted process
///    warm-starts — its first tunes of known structure skip measurement.
///  - Model files hot-reload without restart: `reloadModelFile` atomically
///    swaps the tuner and bumps a generation counter that is part of the
///    plan-cache fingerprint, so plans tuned under the old model go stale
///    by construction instead of being served forever.
///
/// Typical usage:
/// \code
///   smat::TuningService<double> Service(smat::Smat<double>::fromFile(P));
///   smat::AsyncSpmv<double> Op = Service.tuneAsync(A);   // O(1), servable
///   Op.multiply(X.data(), Y.data(), 1);                  // basic CSR now,
///                                                        // tuned kernel
///                                                        // once ready
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_TUNINGSERVICE_H
#define SMAT_CORE_TUNINGSERVICE_H

#include "core/Smat.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace smat {

/// Where an async tune currently stands. The handle is servable in every
/// state; the state only says which plan multiplies run on.
enum class AsyncTuneState : int {
  /// Queued behind other jobs; serving the bootstrap basic-CSR plan.
  Pending = 0,
  /// The worker is running the pipeline; still serving basic CSR.
  Tuning = 1,
  /// The tuned plan has been swapped in and is serving.
  Tuned = 2,
  /// The tune failed (fault, budget, rejection); the bootstrap basic-CSR
  /// plan serves permanently. error() carries the reason.
  Failed = 3,
};

/// Monotonic counters describing a service instance's history.
struct TuningServiceStats {
  std::uint64_t Submitted = 0;   ///< tuneAsync/tryTuneAsync accepted jobs.
  std::uint64_t Tuned = 0;       ///< Jobs whose tuned plan was published.
  std::uint64_t Failed = 0;      ///< Jobs parked on the bootstrap plan.
  std::uint64_t ModelReloads = 0;///< Successful hot reloads.
};

namespace detail {

/// An immutable published plan: the operator plus the report describing how
/// it was chosen. Handles swap between AsyncPlans via an atomic pointer
/// whose targets the owning job keeps alive.
template <typename T> struct AsyncPlan {
  std::unique_ptr<FormatOperator<T>> Op;
  TuningReport Report;
  /// False for the bootstrap basic-CSR plan, true once tuned.
  bool Tuned = false;
};

/// Shared state of one async job. The handle and the worker each hold a
/// shared_ptr, so the matrix (which the plans' CSR operators borrow)
/// outlives every plan regardless of which side finishes last.
template <typename T> struct AsyncJob {
  /// The service's own copy of the input; operators borrow it, so it must
  /// be immutable for the job's lifetime.
  CsrMatrix<T> Matrix;
  /// The bootstrap basic-CSR plan, bound at submit time. Never null, never
  /// replaced: it keeps serving forever when the tune fails.
  std::shared_ptr<const AsyncPlan<T>> Bootstrap;
  /// The tuned plan. Written exactly once by the worker before it publishes
  /// the pointer below; no other thread touches this member.
  std::shared_ptr<const AsyncPlan<T>> TunedPlan;
  /// The serving plan: Bootstrap.get() from construction, TunedPlan.get()
  /// after the worker's release-store publish. Both plans are immutable
  /// once published and owned by the job itself, so readers take no
  /// refcount traffic on the multiply hot path and an in-flight multiply
  /// can never outlive the plan it loaded (the handle pins the job).
  std::atomic<const AsyncPlan<T> *> Plan{nullptr};
  std::atomic<int> State{static_cast<int>(AsyncTuneState::Pending)};
  /// Completion latch for waitTuned().
  std::mutex DoneMutex;
  std::condition_variable DoneCv;
  bool Done = false;
  /// Failure reason, written by the worker before Done (read after).
  std::string Error;
};

} // namespace detail

/// The servable handle returned by TuningService::tuneAsync. Cheap to copy
/// (two shared_ptr-sized members); all copies observe the same tune.
///
/// Thread safety: multiply()/apply() may race freely with the worker's plan
/// swap and with each other. Accessors (state, format, report, ...) are
/// likewise safe at any time.
template <typename T> class AsyncSpmv {
public:
  AsyncSpmv() = default;

  /// Computes y := A*x on the currently published plan (basic CSR until
  /// the tuned swap lands).
  void apply(const T *X, T *Y) const {
    assert(Job && "apply() on a default-constructed AsyncSpmv");
    Job->Plan.load(std::memory_order_acquire)->Op->apply(X, Y);
  }

  /// Computes Y := A*X for \p K row-major right-hand sides.
  void multiply(const T *X, T *Y, index_t K) const {
    assert(Job && "multiply() on a default-constructed AsyncSpmv");
    Job->Plan.load(std::memory_order_acquire)->Op->multiply(X, Y, K);
  }

  AsyncTuneState state() const {
    assert(Job && "state() on a default-constructed AsyncSpmv");
    return static_cast<AsyncTuneState>(
        Job->State.load(std::memory_order_acquire));
  }

  /// True once the tuned plan is serving.
  bool tuned() const { return state() == AsyncTuneState::Tuned; }

  /// Blocks until the tune completes (Tuned or Failed). \returns true when
  /// the tuned plan was published; false on failure or when \p TimeoutSeconds
  /// (0 = wait forever) expires first.
  bool waitTuned(double TimeoutSeconds = 0.0) const;

  /// \returns the failure reason after state() == Failed ("" otherwise).
  std::string error() const;

  /// The report of the currently serving plan: the bootstrap's synthetic
  /// basic-CSR report until the swap, the full pipeline trace after.
  TuningReport report() const {
    assert(Job && "report() on a default-constructed AsyncSpmv");
    return Job->Plan.load(std::memory_order_acquire)->Report;
  }

  FormatKind format() const { return report().ChosenFormat; }

  index_t numRows() const { return Job->Matrix.NumRows; }
  index_t numCols() const { return Job->Matrix.NumCols; }
  std::int64_t nnz() const { return Job->Matrix.nnz(); }

  /// False only for a default-constructed handle.
  explicit operator bool() const { return Job != nullptr; }

private:
  template <typename U> friend class TuningService;

  explicit AsyncSpmv(std::shared_ptr<detail::AsyncJob<T>> JobIn)
      : Job(std::move(JobIn)) {}

  std::shared_ptr<detail::AsyncJob<T>> Job;
};

/// The async tuning service: one background worker thread, a shared
/// sharded PlanCache with optional disk persistence, and a hot-reloadable
/// model. One instance serves many matrices; destruction stops the worker
/// (the running job finishes, queued jobs park on their bootstrap plans)
/// and snapshots the plan cache when a snapshot path is configured.
template <typename T> class TuningService {
public:
  struct Options {
    /// Per-job tuning options. Cache and ModelGeneration are managed by the
    /// service (any values set here are overwritten); CsrMode is forced to
    /// Borrowed against the job's owned matrix copy. The watchdog budgets
    /// default ON for the service — a background tune that stalls must
    /// degrade, not wedge the worker — and are inherited by every job.
    TuneOptions Tune = defaultTuneOptions();
    /// Plan-cache capacity (entries across all shards).
    std::size_t CacheCapacity = 1024;
    /// Snapshot file for plan persistence; empty disables persistence.
    /// When set, the constructor warm-starts from it (a corrupt or
    /// version-mismatched file logs a warning and cold-starts) and the
    /// destructor saves back to it.
    std::string SnapshotPath;

    static TuneOptions defaultTuneOptions() {
      TuneOptions O;
      O.TuneBudgetSeconds = 5.0;
      O.MeasureBudgetSeconds = 1.0;
      return O;
    }
  };

  explicit TuningService(Smat<T> Tuner, Options Opts = Options());
  ~TuningService();

  TuningService(const TuningService &) = delete;
  TuningService &operator=(const TuningService &) = delete;

  /// Submits \p A for background tuning and \returns a handle that serves
  /// basic-CSR SpMV immediately (O(nnz) copy + O(1) bind; no measurement,
  /// no conversion). Throws std::invalid_argument on a structurally invalid
  /// matrix or bad options — validation is synchronous so the error
  /// surfaces at the call site, not in a worker log.
  AsyncSpmv<T> tuneAsync(const CsrMatrix<T> &A);
  /// Rvalue overload: moves the matrix into the service instead of copying.
  AsyncSpmv<T> tuneAsync(CsrMatrix<T> &&A);

  /// Non-throwing variants.
  Expected<AsyncSpmv<T>> tryTuneAsync(const CsrMatrix<T> &A);
  Expected<AsyncSpmv<T>> tryTuneAsync(CsrMatrix<T> &&A);

  /// Atomically replaces the model with \p Tuner and bumps the model
  /// generation: in-flight jobs finish under the model they started with,
  /// later jobs use the new model, and cached plans from earlier
  /// generations stop matching (their fingerprints carry the old stamp) and
  /// age out of the LRU. No restart, no draining.
  void reloadModel(Smat<T> Tuner);

  /// Hot-reloads the model from \p Path. On parse failure the current
  /// model keeps serving and the error is returned — a bad file on disk
  /// must never take down a serving process.
  Status reloadModelFile(const std::string &Path);

  /// Generation counter of the serving model (starts at 0, +1 per reload).
  std::uint32_t modelGeneration() const {
    return Generation.load(std::memory_order_acquire);
  }

  /// Saves the plan cache to the configured snapshot path now (also done
  /// by the destructor). No-op returning success when persistence is off.
  Status savePlans() const;

  /// The shared plan cache (stats; warm-hit-rate reporting).
  const PlanCache &planCache() const { return Cache; }

  /// How the constructor's warm-start went (Missing when persistence is
  /// off or the file did not exist), and how many plans it restored.
  SnapshotLoadResult warmStartResult() const { return WarmStart; }
  std::size_t warmStartPlans() const { return WarmStartCount; }

  TuningServiceStats stats() const;

  /// Aggregated resilience counters of the serving tuner (consistent even
  /// while the worker is mid-tune; see Smat::resilienceCounters).
  SmatResilienceCounters resilienceCounters() const {
    return loadModel()->resilienceCounters();
  }

private:
  std::shared_ptr<detail::AsyncJob<T>> makeJob(CsrMatrix<T> &&A) const;
  Expected<AsyncSpmv<T>> submit(CsrMatrix<T> &&A);
  void workerLoop();
  void runJob(detail::AsyncJob<T> &Job);
  static void finishJob(detail::AsyncJob<T> &Job, AsyncTuneState Final,
                        std::string Error);

  /// \returns a strong reference to the serving model. A mutex rather than
  /// an atomic shared_ptr: the load is once per tune job (never on the
  /// multiply hot path), and the plain mutex is portable and TSan-clean.
  std::shared_ptr<const Smat<T>> loadModel() const {
    std::lock_guard<std::mutex> Lock(ModelMutex);
    return Model;
  }

  Options Opts;
  /// Hot-swappable tuner; guarded by ModelMutex, accessed via loadModel().
  mutable std::mutex ModelMutex;
  std::shared_ptr<const Smat<T>> Model;
  std::atomic<std::uint32_t> Generation{0};
  PlanCache Cache;
  SnapshotLoadResult WarmStart = SnapshotLoadResult::Missing;
  std::size_t WarmStartCount = 0;

  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<std::shared_ptr<detail::AsyncJob<T>>> Queue;
  bool Stopping = false;
  std::thread Worker;

  std::atomic<std::uint64_t> NumSubmitted{0};
  std::atomic<std::uint64_t> NumTuned{0};
  std::atomic<std::uint64_t> NumFailed{0};
  std::atomic<std::uint64_t> NumReloads{0};
};

extern template class AsyncSpmv<float>;
extern template class AsyncSpmv<double>;
extern template class TuningService<float>;
extern template class TuningService<double>;

/// Unified-interface spellings of the async entry points (paper Figure 5
/// naming, async flavor): CSR in, instantly servable handle out.
AsyncSpmv<double> SMAT_dCSR_SpMV_async(TuningService<double> &Service,
                                       const CsrMatrix<double> &A);
AsyncSpmv<float> SMAT_sCSR_SpMV_async(TuningService<float> &Service,
                                      const CsrMatrix<float> &A);

} // namespace smat

#endif // SMAT_CORE_TUNINGSERVICE_H
