//===- core/FormatOperator.h - Polymorphic tuned SpMV operators -*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operator layer of the tuning runtime: one `FormatOperator<T>`
/// implementation per storage format, each owning its converted storage and
/// the scoreboard-selected kernel it dispatches to. `TunedSpmv::apply` goes
/// through this interface instead of a format switch, so adding a format
/// (paper contribution 3) means adding one class here plus its converter —
/// the runtime pipeline itself is format-agnostic.
///
/// CSR is special: because it is the unified input format, the operator can
/// either borrow the caller's matrix (zero-copy, the tune-once/apply-in-loop
/// pattern) or own a copied/moved-in CSR when the caller cannot guarantee
/// the input outlives the operator. See `CsrStorage`.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_FORMATOPERATOR_H
#define SMAT_CORE_FORMATOPERATOR_H

#include "kernels/KernelRegistry.h"
#include "kernels/Scoreboard.h"
#include "matrix/FormatConvert.h"
#include "ref/RefSpmv.h"

#include <memory>
#include <utility>

namespace smat {

/// How a CSR-bound operator holds the input matrix.
enum class CsrStorage {
  /// Reference the caller's matrix; it must outlive the operator. This is
  /// the default (zero conversion cost, zero memory cost) and matches the
  /// paper's usage pattern.
  Borrowed,
  /// Copy (or, through the rvalue `Smat::tune` overload, move) the matrix
  /// into the operator, which is then self-contained.
  Owned,
};

/// A tuned SpMV operator bound to one (format, kernel) pair. Implementations
/// own their converted storage; `apply` computes y := A*x and `multiply`
/// computes the batched Y := A*X over a row-major block of K right-hand
/// sides.
template <typename T> class FormatOperator {
public:
  virtual ~FormatOperator() = default;

  /// Computes y := A*x with the bound kernel.
  virtual void apply(const T *X, T *Y) const = 0;

  /// Computes Y := A*X for a row-major block of K right-hand sides
  /// (X: numCols() x K, Y: numRows() x K). The base implementation runs
  /// apply() column by column through staging buffers, so every operator —
  /// including BSR and the reference rung, which have no SpMM kernel family
  /// — supports batching; operators with a bound SpMM kernel override it.
  virtual void multiply(const T *X, T *Y, index_t K) const {
    if (K == 1) {
      apply(X, Y);
      return;
    }
    const index_t Rows = numRows(), Cols = numCols();
    AlignedVector<T> Xc(static_cast<std::size_t>(Cols));
    AlignedVector<T> Yc(static_cast<std::size_t>(Rows));
    for (index_t J = 0; J < K; ++J) {
      for (index_t I = 0; I < Cols; ++I)
        Xc[static_cast<std::size_t>(I)] =
            X[static_cast<std::size_t>(I) * K + J];
      apply(Xc.data(), Yc.data());
      for (index_t I = 0; I < Rows; ++I)
        Y[static_cast<std::size_t>(I) * K + J] =
            Yc[static_cast<std::size_t>(I)];
    }
  }

  /// \returns the storage format this operator executes in.
  virtual FormatKind kind() const = 0;

  /// \returns the bound kernel's registry name.
  virtual const char *kernelName() const = 0;

  /// \returns the bound SpMM kernel's registry name, or the SpMV kernel
  /// name when multiply() runs through the column-at-a-time fallback.
  virtual const char *spmmKernelName() const { return kernelName(); }

  /// Dimensions of the bound matrix (needed by the batched fallback).
  virtual index_t numRows() const = 0;
  virtual index_t numCols() const = 0;

  /// \returns false only for the borrowed-CSR operator, whose storage is the
  /// caller's matrix.
  virtual bool ownsStorage() const { return true; }
};

/// CSR operator referencing the caller's matrix (no copy; the matrix must
/// outlive the operator).
template <typename T> class CsrBorrowedOperator final : public FormatOperator<T> {
public:
  CsrBorrowedOperator(const CsrMatrix<T> &A, CsrKernelFn<T> Fn,
                      const char *Name, CsrSpmmFn<T> SpmmFn = nullptr,
                      const char *SpmmName = nullptr)
      : A(&A), Fn(Fn), SpmmFn(SpmmFn), Name(Name), SpmmName(SpmmName) {}

  void apply(const T *X, T *Y) const override { Fn(*A, X, Y); }
  void multiply(const T *X, T *Y, index_t K) const override {
    if (SpmmFn)
      SpmmFn(*A, X, Y, K);
    else
      FormatOperator<T>::multiply(X, Y, K);
  }
  FormatKind kind() const override { return FormatKind::CSR; }
  const char *kernelName() const override { return Name; }
  const char *spmmKernelName() const override {
    return SpmmName ? SpmmName : Name;
  }
  index_t numRows() const override { return A->NumRows; }
  index_t numCols() const override { return A->NumCols; }
  bool ownsStorage() const override { return false; }

private:
  const CsrMatrix<T> *A;
  CsrKernelFn<T> Fn;
  CsrSpmmFn<T> SpmmFn;
  const char *Name;
  const char *SpmmName;
};

/// CSR operator owning its matrix (copied or moved in).
template <typename T> class CsrOwningOperator final : public FormatOperator<T> {
public:
  CsrOwningOperator(CsrMatrix<T> A, CsrKernelFn<T> Fn, const char *Name,
                    CsrSpmmFn<T> SpmmFn = nullptr,
                    const char *SpmmName = nullptr)
      : A(std::move(A)), Fn(Fn), SpmmFn(SpmmFn), Name(Name),
        SpmmName(SpmmName) {}

  void apply(const T *X, T *Y) const override { Fn(A, X, Y); }
  void multiply(const T *X, T *Y, index_t K) const override {
    if (SpmmFn)
      SpmmFn(A, X, Y, K);
    else
      FormatOperator<T>::multiply(X, Y, K);
  }
  FormatKind kind() const override { return FormatKind::CSR; }
  const char *kernelName() const override { return Name; }
  const char *spmmKernelName() const override {
    return SpmmName ? SpmmName : Name;
  }
  index_t numRows() const override { return A.NumRows; }
  index_t numCols() const override { return A.NumCols; }

  /// Replaces the owned matrix. noexcept, so the degradation ladder can run
  /// the one throwing step (allocating this node, with an empty matrix)
  /// first and only then move a precious move-source matrix in — if the
  /// allocation throws, the source is still intact for the next rung.
  void adoptMatrix(CsrMatrix<T> &&M) noexcept { A = std::move(M); }

private:
  CsrMatrix<T> A;
  CsrKernelFn<T> Fn;
  CsrSpmmFn<T> SpmmFn;
  const char *Name;
  const char *SpmmName;
};

/// The degradation ladder's last rung: CSR bound to the fixed-interface
/// reference kernel (ref/RefSpmv.h). No conversion, no kernel table, no
/// scoreboard selection — nothing left that can fail after the node exists.
/// Borrows the caller's matrix by default; adoptMatrix makes it
/// self-contained for the rvalue tune path.
template <typename T>
class CsrReferenceOperator final : public FormatOperator<T> {
public:
  /// Borrowing: \p A must outlive the operator.
  explicit CsrReferenceOperator(const CsrMatrix<T> &A) : Bound(&A) {}

  void apply(const T *X, T *Y) const override { refCsrSpmv(*Bound, X, Y); }
  FormatKind kind() const override { return FormatKind::CSR; }
  const char *kernelName() const override { return "csr_reference"; }
  index_t numRows() const override { return Bound->NumRows; }
  index_t numCols() const override { return Bound->NumCols; }
  bool ownsStorage() const override { return Bound == &Owned; }

  /// Moves \p M in, making the operator self-contained. noexcept for the
  /// same allocate-then-adopt reason as CsrOwningOperator::adoptMatrix.
  void adoptMatrix(CsrMatrix<T> &&M) noexcept {
    Owned = std::move(M);
    Bound = &Owned;
  }

private:
  CsrMatrix<T> Owned;
  const CsrMatrix<T> *Bound;
};

template <typename T> class CooOperator final : public FormatOperator<T> {
public:
  CooOperator(CooMatrix<T> A, CooKernelFn<T> Fn, const char *Name,
              CooSpmmFn<T> SpmmFn = nullptr, const char *SpmmName = nullptr)
      : A(std::move(A)), Fn(Fn), SpmmFn(SpmmFn), Name(Name),
        SpmmName(SpmmName) {}

  void apply(const T *X, T *Y) const override { Fn(A, X, Y); }
  void multiply(const T *X, T *Y, index_t K) const override {
    if (SpmmFn)
      SpmmFn(A, X, Y, K);
    else
      FormatOperator<T>::multiply(X, Y, K);
  }
  FormatKind kind() const override { return FormatKind::COO; }
  const char *kernelName() const override { return Name; }
  const char *spmmKernelName() const override {
    return SpmmName ? SpmmName : Name;
  }
  index_t numRows() const override { return A.NumRows; }
  index_t numCols() const override { return A.NumCols; }

private:
  CooMatrix<T> A;
  CooKernelFn<T> Fn;
  CooSpmmFn<T> SpmmFn;
  const char *Name;
  const char *SpmmName;
};

template <typename T> class DiaOperator final : public FormatOperator<T> {
public:
  DiaOperator(DiaMatrix<T> A, DiaKernelFn<T> Fn, const char *Name,
              DiaSpmmFn<T> SpmmFn = nullptr, const char *SpmmName = nullptr)
      : A(std::move(A)), Fn(Fn), SpmmFn(SpmmFn), Name(Name),
        SpmmName(SpmmName) {}

  void apply(const T *X, T *Y) const override { Fn(A, X, Y); }
  void multiply(const T *X, T *Y, index_t K) const override {
    if (SpmmFn)
      SpmmFn(A, X, Y, K);
    else
      FormatOperator<T>::multiply(X, Y, K);
  }
  FormatKind kind() const override { return FormatKind::DIA; }
  const char *kernelName() const override { return Name; }
  const char *spmmKernelName() const override {
    return SpmmName ? SpmmName : Name;
  }
  index_t numRows() const override { return A.NumRows; }
  index_t numCols() const override { return A.NumCols; }

private:
  DiaMatrix<T> A;
  DiaKernelFn<T> Fn;
  DiaSpmmFn<T> SpmmFn;
  const char *Name;
  const char *SpmmName;
};

template <typename T> class EllOperator final : public FormatOperator<T> {
public:
  EllOperator(EllMatrix<T> A, EllKernelFn<T> Fn, const char *Name,
              EllSpmmFn<T> SpmmFn = nullptr, const char *SpmmName = nullptr)
      : A(std::move(A)), Fn(Fn), SpmmFn(SpmmFn), Name(Name),
        SpmmName(SpmmName) {}

  void apply(const T *X, T *Y) const override { Fn(A, X, Y); }
  void multiply(const T *X, T *Y, index_t K) const override {
    if (SpmmFn)
      SpmmFn(A, X, Y, K);
    else
      FormatOperator<T>::multiply(X, Y, K);
  }
  FormatKind kind() const override { return FormatKind::ELL; }
  const char *kernelName() const override { return Name; }
  const char *spmmKernelName() const override {
    return SpmmName ? SpmmName : Name;
  }
  index_t numRows() const override { return A.NumRows; }
  index_t numCols() const override { return A.NumCols; }

private:
  EllMatrix<T> A;
  EllKernelFn<T> Fn;
  EllSpmmFn<T> SpmmFn;
  const char *Name;
  const char *SpmmName;
};

/// BSR has no SpMM kernel family; multiply() uses the base class's
/// column-at-a-time fallback.
template <typename T> class BsrOperator final : public FormatOperator<T> {
public:
  BsrOperator(BsrMatrix<T> A, BsrKernelFn<T> Fn, const char *Name)
      : A(std::move(A)), Fn(Fn), Name(Name) {}

  void apply(const T *X, T *Y) const override { Fn(A, X, Y); }
  FormatKind kind() const override { return FormatKind::BSR; }
  const char *kernelName() const override { return Name; }
  index_t numRows() const override { return A.NumRows; }
  index_t numCols() const override { return A.NumCols; }

private:
  BsrMatrix<T> A;
  BsrKernelFn<T> Fn;
  const char *Name;
};

/// Converts \p A to \p Requested and binds the scoreboard-selected kernel
/// from \p Sel. A DIA/ELL/BSR conversion can be rejected by its fill guards
/// even when the model predicted the format confidently; the fallback is
/// always CSR (honoring \p Storage). \p MoveSource, when non-null, is the
/// same matrix as \p A but mutable: an Owned CSR bind moves its storage
/// instead of copying (the rvalue tune path). \p CsrKernelOverride, when in
/// range, replaces the scoreboard's general CSR pick — the skew-aware bind
/// path passes Sel.csrKernelFor(rowCv) here so heavily skewed matrices get
/// the load-balanced kernel. \p BatchWidth selects which per-width SpMM
/// pick (KernelSelection::BestSpmmKernel) the operator binds for
/// multiply(); an unsearched width binds the format's basic SpMM kernel, so
/// multiply() is batched for CSR/COO/DIA/ELL regardless of tuning width.
template <typename T>
std::unique_ptr<FormatOperator<T>>
bindFormatOperator(const CsrMatrix<T> &A, FormatKind Requested,
                   const KernelSelection &Sel,
                   CsrStorage Storage = CsrStorage::Borrowed,
                   CsrMatrix<T> *MoveSource = nullptr,
                   int CsrKernelOverride = -1, index_t BatchWidth = 1) {
  const KernelTable<T> &Kernels = kernelTable<T>();
  auto Best = [&Sel](FormatKind Kind) {
    return static_cast<std::size_t>(Sel.BestKernel[static_cast<int>(Kind)]);
  };
  // The scoreboard's SpMM pick for this width bucket, index-0 (basic) when
  // the width was never searched, demoted to basic when the converted
  // matrix violates the pick's structural precondition.
  auto BestSpmm = [&Sel, BatchWidth](FormatKind Kind, const auto &List,
                                     const auto &Converted) -> std::size_t {
    int Idx = Sel.spmmKernelFor(Kind, BatchWidth);
    if (Idx < 0 || static_cast<std::size_t>(Idx) >= List.size())
      return 0;
    if (!kernelPrecondsHold(List[static_cast<std::size_t>(Idx)].Preconds,
                            Converted))
      return 0;
    return static_cast<std::size_t>(Idx);
  };

  switch (Requested) {
  case FormatKind::COO: {
    CooMatrix<T> Coo = csrToCoo(A);
    // Honor the kernel's declared structural precondition: if the selected
    // implementation demands monotone rows the converted matrix lacks (it
    // never does for csrToCoo output, but the registration is the contract),
    // bind the precondition-free basic kernel instead.
    std::size_t Idx = Best(FormatKind::COO);
    if (!kernelPrecondsHold(Kernels.Coo[Idx].Preconds, Coo))
      Idx = 0;
    const auto &K = Kernels.Coo[Idx];
    const auto &M =
        Kernels.CooSpmm[BestSpmm(FormatKind::COO, Kernels.CooSpmm, Coo)];
    return std::make_unique<CooOperator<T>>(std::move(Coo), K.Fn, K.Name,
                                            M.Fn, M.Name);
  }
  case FormatKind::DIA: {
    DiaMatrix<T> Dia;
    if (csrToDia(A, Dia)) {
      const auto &K = Kernels.Dia[Best(FormatKind::DIA)];
      const auto &M =
          Kernels.DiaSpmm[BestSpmm(FormatKind::DIA, Kernels.DiaSpmm, Dia)];
      return std::make_unique<DiaOperator<T>>(std::move(Dia), K.Fn, K.Name,
                                              M.Fn, M.Name);
    }
    break;
  }
  case FormatKind::ELL: {
    EllMatrix<T> Ell;
    if (csrToEll(A, Ell)) {
      // Same precondition contract as COO: a selected kernel that needs the
      // RowLen sidecar (the sliced variants) falls back to the basic kernel
      // when the converted matrix lacks it.
      std::size_t Idx = Best(FormatKind::ELL);
      if (!kernelPrecondsHold(Kernels.Ell[Idx].Preconds, Ell))
        Idx = 0;
      const auto &K = Kernels.Ell[Idx];
      const auto &M =
          Kernels.EllSpmm[BestSpmm(FormatKind::ELL, Kernels.EllSpmm, Ell)];
      return std::make_unique<EllOperator<T>>(std::move(Ell), K.Fn, K.Name,
                                              M.Fn, M.Name);
    }
    break;
  }
  case FormatKind::BSR: {
    index_t BlockSize = chooseBsrBlockSize(A);
    BsrMatrix<T> Bsr;
    if (BlockSize > 0 && csrToBsr(A, Bsr, BlockSize)) {
      const auto &K = Kernels.Bsr[Best(FormatKind::BSR)];
      return std::make_unique<BsrOperator<T>>(std::move(Bsr), K.Fn, K.Name);
    }
    break;
  }
  case FormatKind::CSR:
    break;
  }

  std::size_t CsrIdx = Best(FormatKind::CSR);
  if (CsrKernelOverride >= 0 &&
      static_cast<std::size_t>(CsrKernelOverride) < Kernels.Csr.size())
    CsrIdx = static_cast<std::size_t>(CsrKernelOverride);
  const auto &K = Kernels.Csr[CsrIdx];
  const auto &M =
      Kernels.CsrSpmm[BestSpmm(FormatKind::CSR, Kernels.CsrSpmm, A)];
  if (Storage == CsrStorage::Owned) {
    // Allocate the node (the only throwing step) with an empty matrix, then
    // adopt the real storage noexcept: if the allocation throws, a
    // MoveSource matrix is still intact for the caller's degradation ladder.
    auto Op = std::make_unique<CsrOwningOperator<T>>(CsrMatrix<T>(), K.Fn,
                                                     K.Name, M.Fn, M.Name);
    if (MoveSource)
      Op->adoptMatrix(std::move(*MoveSource));
    else
      Op->adoptMatrix(CsrMatrix<T>(A));
    return Op;
  }
  return std::make_unique<CsrBorrowedOperator<T>>(A, K.Fn, K.Name, M.Fn,
                                                  M.Name);
}

} // namespace smat

#endif // SMAT_CORE_FORMATOPERATOR_H
