//===- core/Smat.h - The SMAT runtime auto-tuner ----------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-line stage of SMAT (paper Section 6 / Figure 7) and the unified
/// programming interface (paper Figure 5): the user hands over a CSR matrix
/// and receives a tuned SpMV — feature extraction, confidence-gated ruleset
/// prediction, optional execute-and-measure fallback, format conversion, and
/// optimal-kernel binding all happen behind `SMAT_xCSR_SpMV`.
///
/// Typical usage:
/// \code
///   smat::Smat<double> Tuner(Model);            // model trained off-line
///   smat::TunedSpmv<double> Op = Tuner.tune(A); // A: CsrMatrix<double>
///   Op.apply(X.data(), Y.data());               // y := A*x, tuned kernel
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_SMAT_H
#define SMAT_CORE_SMAT_H

#include "core/LearningModel.h"
#include "matrix/FormatConvert.h"

#include <memory>
#include <string>
#include <vector>

namespace smat {

/// What the tuner did for one matrix: the Table-3 trace columns.
struct TuningReport {
  FeatureVector Features;
  /// Ruleset outcome.
  FormatKind ModelPrediction = FormatKind::CSR;
  double ModelConfidence = 0.0;
  bool ModelConfident = false;
  /// Execute-and-measure outcome (empty when the model was confident).
  std::vector<std::pair<FormatKind, double>> MeasuredGflops;
  /// Final decision.
  FormatKind ChosenFormat = FormatKind::CSR;
  std::string KernelName;
  /// Overhead accounting: total tuning seconds and the equivalent number of
  /// basic CSR-SpMV executions (the paper's "times of CSR-SpMV" metric).
  double TuneSeconds = 0.0;
  double CsrSpmvSeconds = 0.0;

  double overheadRatio() const {
    return CsrSpmvSeconds > 0 ? TuneSeconds / CsrSpmvSeconds : 0.0;
  }
};

/// Tuning knobs for one tune() call.
struct TuneOptions {
  /// Permit the execute-and-measure fallback (paper Figure 7's
  /// "< threshold" path). When false, low-confidence predictions are used
  /// as-is.
  bool AllowMeasure = true;
  /// Force execute-and-measure even for confident predictions (used by the
  /// accuracy analysis to recover the ground-truth best format).
  bool ForceMeasure = false;
  /// Measurement floor per candidate during execute-and-measure.
  double MeasureMinSeconds = 5e-4;
};

/// A tuned SpMV operator bound to one matrix.
///
/// Owns the converted COO/DIA/ELL storage. When the chosen format is CSR the
/// operator references the caller's matrix instead of copying it, so the
/// input CsrMatrix must outlive the TunedSpmv (the usual pattern: tune once,
/// apply in a solver loop, drop both together).
template <typename T> class TunedSpmv {
public:
  /// \returns the chosen storage format.
  FormatKind format() const { return Report.ChosenFormat; }

  /// \returns the bound kernel's name.
  const std::string &kernelName() const { return Report.KernelName; }

  /// \returns the full tuning trace.
  const TuningReport &report() const { return Report; }

  /// Computes y := A*x with the tuned (format, kernel) pair.
  /// \p X must have numCols() elements, \p Y numRows().
  void apply(const T *X, T *Y) const;

  index_t numRows() const { return NumRows; }
  index_t numCols() const { return NumCols; }
  std::int64_t nnz() const { return Nnz; }

private:
  template <typename U> friend class Smat;

  TuningReport Report;
  index_t NumRows = 0, NumCols = 0;
  std::int64_t Nnz = 0;

  // Exactly one of these is active, per Report.ChosenFormat.
  const CsrMatrix<T> *Csr = nullptr; ///< Borrowed from the caller.
  std::unique_ptr<CooMatrix<T>> Coo;
  std::unique_ptr<DiaMatrix<T>> Dia;
  std::unique_ptr<EllMatrix<T>> Ell;
  std::unique_ptr<BsrMatrix<T>> Bsr;

  CsrKernelFn<T> CsrFn = nullptr;
  CooKernelFn<T> CooFn = nullptr;
  DiaKernelFn<T> DiaFn = nullptr;
  EllKernelFn<T> EllFn = nullptr;
  BsrKernelFn<T> BsrFn = nullptr;
};

/// The SMAT auto-tuner: one instance per trained model (reused across
/// matrices, the paper's reusability property).
template <typename T> class Smat {
public:
  explicit Smat(LearningModel ModelIn) : Model(std::move(ModelIn)) {
    Model.refreshRuleMetadata();
  }

  /// Loads a model file produced by saveModelFile.
  static Smat fromFile(const std::string &Path);

  const LearningModel &model() const { return Model; }

  /// Tunes SpMV for \p A: the complete runtime procedure of paper Figure 7.
  /// \p A must outlive the returned operator (see TunedSpmv).
  TunedSpmv<T> tune(const CsrMatrix<T> &A,
                    const TuneOptions &Opts = TuneOptions()) const;

private:
  LearningModel Model;
};

extern template class TunedSpmv<float>;
extern template class TunedSpmv<double>;
extern template class Smat<float>;
extern template class Smat<double>;

/// The paper's unified C-style interface (Figure 5): one call, CSR in,
/// tuned SpMV out. 'd'/'s' select double/single precision.
TunedSpmv<double> SMAT_dCSR_SpMV(const Smat<double> &Tuner,
                                 const CsrMatrix<double> &A);
TunedSpmv<float> SMAT_sCSR_SpMV(const Smat<float> &Tuner,
                                const CsrMatrix<float> &A);

} // namespace smat

#endif // SMAT_CORE_SMAT_H
