//===- core/Smat.h - The SMAT runtime auto-tuner ----------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-line stage of SMAT (paper Section 6 / Figure 7) and the unified
/// programming interface (paper Figure 5): the user hands over a CSR matrix
/// and receives a tuned SpMV. The runtime is a staged pipeline
/// (FeatureStage -> PredictStage -> MeasureStage -> BindStage, see
/// TuningPipeline.h) with an optional feature-fingerprint PlanCache that
/// lets structurally equivalent matrices skip prediction and measurement.
///
/// Typical usage:
/// \code
///   smat::Smat<double> Tuner(Model);            // model trained off-line
///   smat::TunedSpmv<double> Op = Tuner.tune(A); // A: CsrMatrix<double>
///   Op.apply(X.data(), Y.data());               // y := A*x, tuned kernel
///
///   // Tuning many structurally similar matrices? Share a plan cache so
///   // repeated structure pays the full tuning cost only once:
///   smat::PlanCache Cache;
///   smat::TuneOptions Opts;
///   Opts.Cache = &Cache;
///   for (const auto &M : Matrices)
///     Ops.push_back(Tuner.tune(M, Opts));       // warm tunes skip measure
///
///   // Input cannot outlive the operator? Request an owning CSR bind:
///   Opts.CsrMode = smat::CsrStorage::Owned;
///   smat::TunedSpmv<double> SelfContained = Tuner.tune(Temporary, Opts);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_SMAT_H
#define SMAT_CORE_SMAT_H

#include "core/CostModel.h"
#include "core/LearningModel.h"
#include "core/PlanCache.h"
#include "core/TuningPipeline.h"
#include "matrix/FormatConvert.h"
#include "matrix/Validate.h"
#include "support/Status.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace smat {

/// Relative margin the measured baseline must win by before the never-slower
/// guardrail overrides a confidently predicted plan post-bind (the race path
/// needs no margin: there both numbers come from the same robust-measurement
/// discipline). 0.10 = the 10% noise floor of the quick one-shot timings the
/// verification uses.
inline constexpr double GuardrailNoiseFloor = 0.10;

/// What the tuner did for one matrix: the Table-3 trace columns plus
/// per-stage wall-clock accounting.
struct TuningReport {
  FeatureVector Features;
  /// Ruleset outcome. Meaningless (left at defaults) when PlanCacheHit is
  /// set: a cache hit skips PredictStage entirely.
  FormatKind ModelPrediction = FormatKind::CSR;
  double ModelConfidence = 0.0;
  bool ModelConfident = false;
  /// Execute-and-measure outcome (empty when the model was confident or the
  /// plan came from the cache). Tuned candidates only; see
  /// MeasuredCandidates for the full race including the baseline.
  std::vector<std::pair<FormatKind, double>> MeasuredGflops;
  /// Every plan that entered the selection race, including the untuned
  /// basic-CSR baseline (IsBaseline) and, on the confident-prediction path,
  /// the post-bind guardrail verification of the bound plan. Empty on a
  /// plan-cache hit or when measurement was disallowed.
  std::vector<MeasuredCandidate> MeasuredCandidates;
  /// The never-slower guardrail fired: the measured basic-CSR baseline beat
  /// every tuned candidate (or the bound plan's verification), so the
  /// untuned basic CSR plan was bound instead.
  bool GuardrailEngaged = false;
  /// Analytic bottleneck classification (CostModel.h) of this matrix; only
  /// meaningful when CostModelApplied is set (features survived and the
  /// classifier ran).
  BottleneckClass Bottleneck = BottleneckClass::IrregularityBound;
  bool CostModelApplied = false;
  /// Final decision.
  FormatKind ChosenFormat = FormatKind::CSR;
  std::string KernelName;
  /// True when the decision was reused from a PlanCache fingerprint hit
  /// (PredictStage, MeasureStage, and the baseline measurement were
  /// skipped).
  bool PlanCacheHit = false;
  /// Overhead accounting: total tuning seconds and the equivalent number of
  /// basic CSR-SpMV executions (the paper's "times of CSR-SpMV" metric).
  /// TuneSeconds excludes the baseline measurement itself; BaselineSeconds
  /// reports that wall clock separately instead of hiding it in a clamped
  /// subtraction, so budget overruns during the baseline stay visible.
  double TuneSeconds = 0.0;
  double BaselineSeconds = 0.0;
  double CsrSpmvSeconds = 0.0;
  /// Measured throughput of the untuned baseline the guardrail compares
  /// against: one basic CSR SpMV for single-vector tunes, one basic CSR
  /// SpMM at the requested width for batched tunes. 0 when the baseline
  /// could not be measured (budget expired or the measurement faulted) —
  /// the guardrail is then inactive for this tune.
  double BaselineGflops = 0.0;
  /// Per-stage wall-clock accounting. FeatureSeconds covers extraction
  /// step 1; a lazily triggered step 2 (power-law R) is included in
  /// PredictSeconds, which demanded it.
  double FeatureSeconds = 0.0;
  double PredictSeconds = 0.0;
  double MeasureSeconds = 0.0;
  double BindSeconds = 0.0;
  /// Wall clock of the post-bind guardrail verification (confident
  /// predictions only; 0 when the race already compared the baseline).
  double GuardrailSeconds = 0.0;
  /// Resilience trace (DESIGN.md section 12). The rung of the degradation
  /// ladder this tune had to take; None when everything succeeded.
  DegradationLevel Degradation = DegradationLevel::None;
  /// Candidates (or pipeline stages) dropped mid-tune because a conversion
  /// or kernel failed; the plan was built from the survivors.
  int DroppedCandidates = 0;
  /// Some candidate's timing samples stayed noisier than the robust-measure
  /// spread threshold even after backoff retries.
  bool NoisyTimings = false;
  /// A MeasureBudgetSeconds/TuneBudgetSeconds budget expired mid-tune and
  /// the remaining work was skipped.
  bool BudgetExhausted = false;
  /// The plan came from another thread's concurrent tune of the same
  /// fingerprint (singleflight wait), not this thread's own measurement.
  /// Implies PlanCacheHit.
  bool PlanShared = false;

  double overheadRatio() const {
    return CsrSpmvSeconds > 0 ? TuneSeconds / CsrSpmvSeconds : 0.0;
  }
};

/// Snapshot of one Smat instance's monotonic resilience counters, aggregated
/// across every tune it has run (thread-safe; see Smat::resilienceCounters).
struct SmatResilienceCounters {
  std::uint64_t Tunes = 0;              ///< Tunes completed.
  std::uint64_t CandidatesDropped = 0;  ///< Candidates/stages dropped.
  std::uint64_t NoisyTunes = 0;         ///< Tunes with NoisyTimings.
  std::uint64_t BudgetExhaustedTunes = 0; ///< Tunes with BudgetExhausted.
  std::uint64_t BasicKernelFallbacks = 0; ///< Tunes that bound the basic rung.
  std::uint64_t ReferenceFallbacks = 0;   ///< Tunes that bound the last rung.
  std::uint64_t PlanShares = 0; ///< Tunes served by a singleflight wait.
  std::uint64_t GuardrailEngagements = 0; ///< Tunes bound to the untuned
                                          ///< baseline by the guardrail.
};

/// A tuned SpMV operator bound to one matrix.
///
/// Dispatch goes through the polymorphic `FormatOperator`, which owns the
/// converted COO/DIA/ELL/BSR storage. When the chosen format is CSR the
/// default (`CsrStorage::Borrowed`) operator references the caller's matrix
/// instead of copying it, so the input CsrMatrix must outlive the TunedSpmv
/// (the usual pattern: tune once, apply in a solver loop, drop both
/// together); `ownsStorage()` reports whether that constraint applies.
/// Request `TuneOptions::CsrMode = CsrStorage::Owned` (or tune from an
/// rvalue matrix) for a self-contained operator.
template <typename T> class TunedSpmv {
public:
  /// \returns the chosen storage format.
  FormatKind format() const { return Report.ChosenFormat; }

  /// \returns the bound kernel's name.
  const std::string &kernelName() const { return Report.KernelName; }

  /// \returns the full tuning trace.
  const TuningReport &report() const { return Report; }

  /// Computes y := A*x with the tuned (format, kernel) pair.
  /// \p X must have numCols() elements, \p Y numRows().
  void apply(const T *X, T *Y) const {
    assert(Op && "apply() on a default or moved-from TunedSpmv");
    Op->apply(X, Y);
  }

  /// Computes Y := A*X for a row-major block of \p K right-hand sides:
  /// \p X holds numCols() rows of K contiguous values each, \p Y numRows()
  /// rows of K. Dispatches to the bound register-tiled SpMM kernel (K = 1
  /// falls back to apply()). Any K >= 1 is supported regardless of the
  /// TuneOptions::BatchWidth the tune optimized for — the width only
  /// steers which kernel was considered optimal.
  void multiply(const T *X, T *Y, index_t K) const {
    assert(Op && "multiply() on a default or moved-from TunedSpmv");
    assert(K >= 1 && "batch width must be at least 1");
    Op->multiply(X, Y, K);
  }

  /// \returns the bound batched (SpMM) kernel's name; for operators without
  /// a dedicated SpMM kernel this is the SpMV kernel driving the
  /// column-at-a-time fallback.
  const char *spmmKernelName() const {
    assert(Op && "no operator bound");
    return Op->spmmKernelName();
  }

  /// \returns the bound operator (for storage/ownership introspection).
  const FormatOperator<T> &formatOperator() const {
    assert(Op && "no operator bound");
    return *Op;
  }

  /// \returns false when the operator borrows the caller's CSR matrix,
  /// which must then outlive this object.
  bool ownsStorage() const { return Op && Op->ownsStorage(); }

  /// Releases ownership of the bound operator, leaving this TunedSpmv in
  /// the moved-from state (apply() asserts). Used by runtime layers that
  /// re-publish the operator under their own lifetime discipline — the
  /// async TuningService swaps it into a handle's atomic plan slot.
  std::unique_ptr<FormatOperator<T>> takeOperator() {
    return std::move(Op);
  }

  index_t numRows() const { return NumRows; }
  index_t numCols() const { return NumCols; }
  std::int64_t nnz() const { return Nnz; }

private:
  template <typename U> friend class Smat;

  TuningReport Report;
  index_t NumRows = 0, NumCols = 0;
  std::int64_t Nnz = 0;
  std::unique_ptr<FormatOperator<T>> Op;
};

/// The SMAT auto-tuner: one instance per trained model (reused across
/// matrices, the paper's reusability property).
template <typename T> class Smat {
public:
  explicit Smat(LearningModel ModelIn)
      : Model(std::move(ModelIn)),
        Resilience(std::make_unique<ResilienceState>()) {
    Model.refreshRuleMetadata();
  }

  /// Copying a tuner copies the model but starts fresh resilience counters
  /// (they describe an instance's history, not the model).
  Smat(const Smat &Other)
      : Model(Other.Model), Resilience(std::make_unique<ResilienceState>()) {}
  Smat &operator=(const Smat &Other) {
    Model = Other.Model;
    Resilience = std::make_unique<ResilienceState>();
    return *this;
  }
  Smat(Smat &&) noexcept = default;
  Smat &operator=(Smat &&) noexcept = default;

  /// Loads a model file produced by saveModelFile. Throws std::runtime_error
  /// (with the path and parse error in the message) on failure.
  static Smat fromFile(const std::string &Path);

  /// Non-throwing variant of fromFile: \returns the tuner, or std::nullopt
  /// with the failure reason written to \p Error (when non-null).
  static std::optional<Smat> tryFromFile(const std::string &Path,
                                         std::string *Error = nullptr);

  const LearningModel &model() const { return Model; }

  /// Tunes SpMV for \p A: the staged pipeline of paper Figure 7. With the
  /// default `CsrStorage::Borrowed`, \p A must outlive the returned operator
  /// (see TunedSpmv). \p A is validated up front; a structurally invalid
  /// matrix throws std::invalid_argument carrying the diagnostic (which row,
  /// which invariant). Callers that must not throw use tryTune.
  TunedSpmv<T> tune(const CsrMatrix<T> &A,
                    const TuneOptions &Opts = TuneOptions()) const;

  /// Rvalue overload: consumes \p A and returns a self-contained operator
  /// (a CSR bind moves the storage in; other formats convert and drop it).
  TunedSpmv<T> tune(CsrMatrix<T> &&A,
                    TuneOptions Opts = TuneOptions()) const;

  /// Non-throwing tune: validates \p A and \p Opts and returns either the
  /// tuned operator or the Status naming the violated invariant. A failed
  /// tryTune leaves every side channel untouched — in particular it never
  /// inserts a plan into Opts.Cache.
  Expected<TunedSpmv<T>> tryTune(const CsrMatrix<T> &A,
                                 const TuneOptions &Opts = TuneOptions()) const;

  /// Non-throwing rvalue tune; consumes \p A only on success.
  Expected<TunedSpmv<T>> tryTune(CsrMatrix<T> &&A,
                                 TuneOptions Opts = TuneOptions()) const;

  /// \returns a snapshot of this instance's resilience counters: how many
  /// tunes ran, and how often they dropped candidates, hit noisy timings,
  /// exhausted budgets, fell down the degradation ladder, or were served by
  /// a concurrent tune's singleflight publication. Thread-safe.
  SmatResilienceCounters resilienceCounters() const;

  /// Validates the option struct alone (budgets, batch width, flag
  /// combinations) without a matrix. Public so layers that defer the tune —
  /// the async TuningService validates options at submit time, before the
  /// worker ever sees the job — can reject bad options synchronously with
  /// the same diagnostics tune() would produce.
  static Status validateTuneOptions(const TuneOptions &Opts);

private:
  /// Validation shared by every public entry point (matrix and options).
  static Status validateTuneInput(const CsrMatrix<T> &A,
                                  const TuneOptions &Opts);

  TunedSpmv<T> tuneImpl(const CsrMatrix<T> &A, const TuneOptions &Opts,
                        CsrMatrix<T> *MoveSource) const;

  /// Atomic counter block behind a pointer so the tuner stays movable (and
  /// tuneImpl, which is const, can count). Writers publish a tune's whole
  /// counter delta inside a seqlock write section (WriteLock + odd/even
  /// Seq), and resilienceCounters() retries its read until it straddles no
  /// write — so a snapshot taken while a background worker is mid-update
  /// never shows a torn state (e.g. GuardrailEngagements > Tunes). The
  /// fields stay individually atomic so the seqlock's racing reads are
  /// data-race-free under TSan.
  struct ResilienceState {
    std::mutex WriteLock;
    std::atomic<std::uint64_t> Seq{0};
    std::atomic<std::uint64_t> Tunes{0};
    std::atomic<std::uint64_t> CandidatesDropped{0};
    std::atomic<std::uint64_t> NoisyTunes{0};
    std::atomic<std::uint64_t> BudgetExhaustedTunes{0};
    std::atomic<std::uint64_t> BasicKernelFallbacks{0};
    std::atomic<std::uint64_t> ReferenceFallbacks{0};
    std::atomic<std::uint64_t> PlanShares{0};
    std::atomic<std::uint64_t> GuardrailEngagements{0};
  };

  LearningModel Model;
  std::unique_ptr<ResilienceState> Resilience;
};

extern template class TunedSpmv<float>;
extern template class TunedSpmv<double>;
extern template class Smat<float>;
extern template class Smat<double>;

/// The paper's unified C-style interface (Figure 5): one call, CSR in,
/// tuned SpMV out. 'd'/'s' select double/single precision. The optional
/// \p Opts carries the production knobs (plan cache, CSR ownership).
/// Malformed input throws std::invalid_argument with the diagnostic; the
/// _try variants below report the same failures as error codes instead.
TunedSpmv<double> SMAT_dCSR_SpMV(const Smat<double> &Tuner,
                                 const CsrMatrix<double> &A,
                                 const TuneOptions &Opts = TuneOptions());
TunedSpmv<float> SMAT_sCSR_SpMV(const Smat<float> &Tuner,
                                const CsrMatrix<float> &A,
                                const TuneOptions &Opts = TuneOptions());

/// Batched (multi-RHS) variants: tune for \p BatchWidth right-hand sides
/// and return an operator whose multiply(X, Y, K) runs the register-tiled
/// SpMM kernel the scoreboard picked for that width bucket. \p BatchWidth
/// overrides Opts.BatchWidth; everything else in \p Opts applies as usual.
TunedSpmv<double> SMAT_dCSR_SpMM(const Smat<double> &Tuner,
                                 const CsrMatrix<double> &A,
                                 index_t BatchWidth,
                                 TuneOptions Opts = TuneOptions());
TunedSpmv<float> SMAT_sCSR_SpMM(const Smat<float> &Tuner,
                                const CsrMatrix<float> &A, index_t BatchWidth,
                                TuneOptions Opts = TuneOptions());

/// Error-code variants of the unified interface for callers that cannot
/// unwind: validates \p A, fills \p Out on success, and \returns
/// ErrorCode::Ok — or the failure code, with the full diagnostic copied to
/// \p ErrorMessage when non-null. \p Out is untouched on failure.
ErrorCode SMAT_dCSR_SpMV_try(const Smat<double> &Tuner,
                             const CsrMatrix<double> &A,
                             TunedSpmv<double> &Out,
                             std::string *ErrorMessage = nullptr,
                             const TuneOptions &Opts = TuneOptions());
ErrorCode SMAT_sCSR_SpMV_try(const Smat<float> &Tuner,
                             const CsrMatrix<float> &A, TunedSpmv<float> &Out,
                             std::string *ErrorMessage = nullptr,
                             const TuneOptions &Opts = TuneOptions());
ErrorCode SMAT_dCSR_SpMM_try(const Smat<double> &Tuner,
                             const CsrMatrix<double> &A, index_t BatchWidth,
                             TunedSpmv<double> &Out,
                             std::string *ErrorMessage = nullptr,
                             TuneOptions Opts = TuneOptions());
ErrorCode SMAT_sCSR_SpMM_try(const Smat<float> &Tuner,
                             const CsrMatrix<float> &A, index_t BatchWidth,
                             TunedSpmv<float> &Out,
                             std::string *ErrorMessage = nullptr,
                             TuneOptions Opts = TuneOptions());

} // namespace smat

#endif // SMAT_CORE_SMAT_H
