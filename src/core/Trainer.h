//===- core/Trainer.h - SMAT off-line training pipeline ---------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The off-line stage of paper Figure 4: kernel search on the target
/// architecture, per-corpus-matrix feature extraction and exhaustive
/// per-format measurement (labeling "Best_Format"), feature database
/// assembly, decision-tree learning, and ruleset ordering + tailoring.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_TRAINER_H
#define SMAT_CORE_TRAINER_H

#include "core/FeatureDatabase.h"
#include "core/LearningModel.h"
#include "matrix/Corpus.h"
#include "matrix/FormatConvert.h"

namespace smat {

/// Knobs of the training pipeline.
struct TrainingOptions {
  /// Per-kernel measurement floor; larger is more accurate, slower.
  double MeasureMinSeconds = 1e-3;
  /// DIA/ELL fill guards used when attempting conversions.
  double DiaMaxFillRatio = DefaultMaxFillRatio;
  index_t DiaMaxDiags = DefaultMaxDiags;
  double EllMaxFillRatio = DefaultMaxFillRatio;
  /// The BSR extension format. Off by default so the paper's four-format
  /// experiments reproduce unchanged; the ext_bsr_extension bench turns it
  /// on to demonstrate the framework's extensibility (contribution 3).
  bool EnableBsr = false;
  /// BSR padding also inflates the flop count, so its guard is strict.
  double BsrMaxFillRatio = 1.5;
  /// Tree learner configuration.
  TreeConfig Tree;
  /// Rule tailoring tolerance (paper: 1% accuracy gap).
  double TailorAccuracyLoss = 0.01;
  /// Runtime confidence threshold stored into the model.
  double ConfidenceThreshold = DefaultConfidenceThreshold;
  /// Skip the scoreboard (use basic kernels); for fast unit tests.
  bool SkipKernelSearch = false;
};

/// Measures the best-kernel GFLOPS of matrix \p A in all four formats
/// using the kernels chosen in \p Selection. Returns FormatKind-indexed
/// GFLOPS; formats rejected by the fill guards get -1.
template <typename T>
std::array<double, NumFormats>
measureAllFormats(const CsrMatrix<T> &A, const KernelSelection &Selection,
                  const TrainingOptions &Opts = TrainingOptions());

/// Builds the feature record of one corpus entry: features + measured
/// per-format GFLOPS + best-format label.
template <typename T>
FeatureRecord buildRecord(const CorpusEntry &Entry,
                          const KernelSelection &Selection,
                          const TrainingOptions &Opts = TrainingOptions());

/// Everything the off-line stage produces (model plus introspection data
/// for the benches/ablations).
struct TrainResult {
  LearningModel Model;
  FeatureDatabase Database;
  RuleSet FullRules;      ///< Before tailoring (for the ablation bench).
  double TreeAccuracy = 0; ///< Training accuracy of the pruned tree.
  double FullRuleAccuracy = 0;
  double TailoredRuleAccuracy = 0;
  double TrainSeconds = 0;
};

/// Runs the complete off-line pipeline on \p Training.
template <typename T>
TrainResult trainSmat(const std::vector<const CorpusEntry *> &Training,
                      const TrainingOptions &Opts = TrainingOptions());

extern template std::array<double, NumFormats>
measureAllFormats(const CsrMatrix<float> &, const KernelSelection &,
                  const TrainingOptions &);
extern template std::array<double, NumFormats>
measureAllFormats(const CsrMatrix<double> &, const KernelSelection &,
                  const TrainingOptions &);
extern template FeatureRecord buildRecord<float>(const CorpusEntry &,
                                                 const KernelSelection &,
                                                 const TrainingOptions &);
extern template FeatureRecord buildRecord<double>(const CorpusEntry &,
                                                  const KernelSelection &,
                                                  const TrainingOptions &);
extern template TrainResult
trainSmat<float>(const std::vector<const CorpusEntry *> &,
                 const TrainingOptions &);
extern template TrainResult
trainSmat<double>(const std::vector<const CorpusEntry *> &,
                  const TrainingOptions &);

} // namespace smat

#endif // SMAT_CORE_TRAINER_H
