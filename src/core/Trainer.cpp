//===- core/Trainer.cpp - SMAT off-line training pipeline -----------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Trainer.h"

#include "support/Timer.h"

#include <algorithm>

using namespace smat;

namespace {

/// Measures one bound kernel on (A-format, X, Y).
template <typename T, typename MatrixT, typename FnT>
double measureOne(FnT Fn, const MatrixT &A, const AlignedVector<T> &X,
                  AlignedVector<T> &Y, double MinSeconds) {
  double Seconds = measureSecondsPerCall(
      [&] { Fn(A, X.data(), Y.data()); }, MinSeconds);
  return spmvGflops(static_cast<std::uint64_t>(A.nnz()), Seconds);
}

} // namespace

template <typename T>
std::array<double, NumFormats>
smat::measureAllFormats(const CsrMatrix<T> &A, const KernelSelection &Selection,
                        const TrainingOptions &Opts) {
  const KernelTable<T> &Kernels = kernelTable<T>();
  AlignedVector<T> X(static_cast<std::size_t>(A.NumCols));
  AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows), T(0));
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = T(0.01) * static_cast<T>(I % 100) - T(0.5);

  std::array<double, NumFormats> Gflops;
  Gflops.fill(-1.0);
  auto Best = [&Selection](FormatKind Kind) {
    return static_cast<std::size_t>(
        Selection.BestKernel[static_cast<int>(Kind)]);
  };

  // CSR: measured directly on the input. The label must reflect the best
  // CSR plan the runtime can actually bind — the basic kernel (the
  // guardrail's plan), the scoreboard's general pick, and the skew-pass
  // pick are all candidates at run time — so the CSR entry is the max over
  // them. Labeling with the general pick alone teaches the tree that CSR
  // loses on matrices where binding a different CSR kernel (or simply not
  // tuning) wins, which is exactly the powerlaw mispick.
  {
    double CsrBest = measureOne<T>(Kernels.Csr[Best(FormatKind::CSR)].Fn, A,
                                   X, Y, Opts.MeasureMinSeconds);
    if (Best(FormatKind::CSR) != 0)
      CsrBest = std::max(CsrBest, measureOne<T>(Kernels.Csr[0].Fn, A, X, Y,
                                                Opts.MeasureMinSeconds));
    int Skew = Selection.BestSkewCsrKernel;
    if (Skew >= 0 && static_cast<std::size_t>(Skew) < Kernels.Csr.size() &&
        static_cast<std::size_t>(Skew) != Best(FormatKind::CSR) && Skew != 0)
      CsrBest = std::max(
          CsrBest, measureOne<T>(Kernels.Csr[static_cast<std::size_t>(Skew)].Fn,
                                 A, X, Y, Opts.MeasureMinSeconds));
    Gflops[static_cast<int>(FormatKind::CSR)] = CsrBest;
  }

  // COO: always representable.
  {
    CooMatrix<T> Coo = csrToCoo(A);
    Gflops[static_cast<int>(FormatKind::COO)] =
        measureOne<T>(Kernels.Coo[Best(FormatKind::COO)].Fn, Coo, X, Y,
                      Opts.MeasureMinSeconds);
  }

  // DIA: only when the fill guards admit it.
  {
    DiaMatrix<T> Dia;
    if (csrToDia(A, Dia, Opts.DiaMaxFillRatio, Opts.DiaMaxDiags))
      Gflops[static_cast<int>(FormatKind::DIA)] =
          measureOne<T>(Kernels.Dia[Best(FormatKind::DIA)].Fn, Dia, X, Y,
                        Opts.MeasureMinSeconds);
  }

  // ELL: only when the fill guard admits it.
  {
    EllMatrix<T> Ell;
    if (csrToEll(A, Ell, Opts.EllMaxFillRatio))
      Gflops[static_cast<int>(FormatKind::ELL)] =
          measureOne<T>(Kernels.Ell[Best(FormatKind::ELL)].Fn, Ell, X, Y,
                        Opts.MeasureMinSeconds);
  }

  // BSR: extension format, only when enabled and a block size passes the
  // fill guard (OSKI-style block-size selection).
  if (Opts.EnableBsr) {
    index_t BlockSize =
        chooseBsrBlockSize(A, {8, 4, 2}, Opts.BsrMaxFillRatio);
    BsrMatrix<T> Bsr;
    if (BlockSize > 0 && csrToBsr(A, Bsr, BlockSize, Opts.BsrMaxFillRatio))
      Gflops[static_cast<int>(FormatKind::BSR)] =
          measureOne<T>(Kernels.Bsr[Best(FormatKind::BSR)].Fn, Bsr, X, Y,
                        Opts.MeasureMinSeconds);
  }
  return Gflops;
}

template <typename T>
FeatureRecord smat::buildRecord(const CorpusEntry &Entry,
                                const KernelSelection &Selection,
                                const TrainingOptions &Opts) {
  FeatureRecord Record;
  Record.Name = Entry.Name;
  Record.Domain = Entry.Domain;

  CsrMatrix<T> A = convertValueType<T>(Entry.Matrix);
  Record.Features = extractAllFeatures(A);
  Record.Gflops = measureAllFormats(A, Selection, Opts);

  int Best = static_cast<int>(FormatKind::CSR);
  for (int K = 0; K < NumFormats; ++K)
    if (Record.Gflops[static_cast<std::size_t>(K)] >
        Record.Gflops[static_cast<std::size_t>(Best)])
      Best = K;
  Record.BestFormat = static_cast<FormatKind>(Best);
  return Record;
}

template <typename T>
TrainResult smat::trainSmat(const std::vector<const CorpusEntry *> &Training,
                            const TrainingOptions &Opts) {
  WallTimer Timer;
  TrainResult Result;

  // Stage 1: kernel search (paper Section 5.2). The scoreboard quantizes
  // the architecture through kernel performance, so the learning stage
  // below trains against the kernels that will actually run.
  if (Opts.SkipKernelSearch) {
    Result.Model.Kernels = KernelSelection();
    const KernelTable<T> &Kernels = kernelTable<T>();
    Result.Model.Kernels.BestKernelName = {
        Kernels.Csr[0].Name, Kernels.Coo[0].Name, Kernels.Dia[0].Name,
        Kernels.Ell[0].Name, Kernels.Bsr[0].Name};
  } else {
    Result.Model.Kernels =
        searchOptimalKernels<T>(Opts.MeasureMinSeconds);
  }

  // Stage 2: feature database (paper Section 4).
  Result.Database.Records.reserve(Training.size());
  for (const CorpusEntry *Entry : Training)
    Result.Database.Records.push_back(
        buildRecord<T>(*Entry, Result.Model.Kernels, Opts));

  // Stage 3: data mining (paper Section 5.1).
  Dataset Data = Result.Database.toDataset();
  DecisionTree Tree;
  Tree.build(Data, Opts.Tree);
  Result.TreeAccuracy = Tree.accuracy(Data);

  RuleSet Rules = RuleSet::fromTree(Tree, Data);
  Rules.orderByContribution(Data);
  Result.FullRules = Rules;
  Result.FullRuleAccuracy = Rules.accuracy(Data);

  // Stage 4: rule tailoring and grouping (paper Section 6).
  Result.Model.Rules = Rules.tailored(Data, Opts.TailorAccuracyLoss);
  Result.TailoredRuleAccuracy = Result.Model.Rules.accuracy(Data);
  Result.Model.ConfidenceThreshold = Opts.ConfidenceThreshold;
  Result.Model.BsrEnabled = Opts.EnableBsr;
  Result.Model.refreshRuleMetadata();

  Result.TrainSeconds = Timer.seconds();
  return Result;
}

template std::array<double, smat::NumFormats>
smat::measureAllFormats(const CsrMatrix<float> &, const KernelSelection &,
                        const TrainingOptions &);
template std::array<double, smat::NumFormats>
smat::measureAllFormats(const CsrMatrix<double> &, const KernelSelection &,
                        const TrainingOptions &);
template smat::FeatureRecord
smat::buildRecord<float>(const CorpusEntry &, const KernelSelection &,
                         const TrainingOptions &);
template smat::FeatureRecord
smat::buildRecord<double>(const CorpusEntry &, const KernelSelection &,
                          const TrainingOptions &);
template smat::TrainResult
smat::trainSmat<float>(const std::vector<const CorpusEntry *> &,
                       const TrainingOptions &);
template smat::TrainResult
smat::trainSmat<double>(const std::vector<const CorpusEntry *> &,
                        const TrainingOptions &);
