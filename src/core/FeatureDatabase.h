//===- core/FeatureDatabase.h - Trained feature records ---------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The matrix feature database (paper Figure 4): one record per training
/// matrix holding its feature parameter values, the measured per-format
/// GFLOPS, and the winning "Best_Format" label. The data mining stage turns
/// this database into the learning model.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_FEATUREDATABASE_H
#define SMAT_CORE_FEATUREDATABASE_H

#include "features/FeatureExtractor.h"
#include "ml/Dataset.h"

#include <array>
#include <string>
#include <vector>

namespace smat {

/// One trained record (the paper's example: matrix t2d_q9 has the record
/// {9801, 9801, 9, 1.0, 87025, 9, 0.35, 0.99, 0.99, inf, DIA}).
struct FeatureRecord {
  std::string Name;
  std::string Domain;
  FeatureVector Features;
  /// Best-kernel GFLOPS per format (FormatKind-indexed); negative when the
  /// format was rejected by its fill guard or disabled in training.
  std::array<double, NumFormats> Gflops = [] {
    std::array<double, NumFormats> Init;
    Init.fill(-1.0);
    return Init;
  }();
  FormatKind BestFormat = FormatKind::CSR;
};

/// The collected records plus conversions to learner input and CSV.
struct FeatureDatabase {
  std::vector<FeatureRecord> Records;

  std::size_t size() const { return Records.size(); }

  /// Projects the records onto the learner's (attributes, label) form.
  Dataset toDataset() const;

  /// Per-format counts of winning records (Table 1's bottom row).
  std::array<std::size_t, NumFormats> formatDistribution() const;

  /// CSV rendering: one row per record, feature columns then GFLOPS then
  /// label. Round-trips through parseCsv.
  std::string toCsv() const;

  /// Parses toCsv output. \returns true on success.
  static bool parseCsv(const std::string &Text, FeatureDatabase &Db,
                       std::string &Error);

  bool saveCsvFile(const std::string &Path) const;
  static bool loadCsvFile(const std::string &Path, FeatureDatabase &Db,
                          std::string &Error);
};

} // namespace smat

#endif // SMAT_CORE_FEATUREDATABASE_H
