//===- core/FeatureDatabase.cpp - Trained feature records -----------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/FeatureDatabase.h"

#include "support/Str.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace smat;

Dataset FeatureDatabase::toDataset() const {
  Dataset Data;
  Data.Samples.reserve(Records.size());
  for (const FeatureRecord &R : Records) {
    Sample S;
    S.X = R.Features.values();
    S.Label = R.BestFormat;
    S.Name = R.Name;
    Data.Samples.push_back(std::move(S));
  }
  return Data;
}

std::array<std::size_t, NumFormats> FeatureDatabase::formatDistribution() const {
  std::array<std::size_t, NumFormats> Counts{};
  for (const FeatureRecord &R : Records)
    ++Counts[static_cast<int>(R.BestFormat)];
  return Counts;
}

std::string FeatureDatabase::toCsv() const {
  std::string Out = "name,domain";
  for (int F = 0; F < NumFeatures; ++F)
    Out += formatString(",%s", featureName(F));
  for (int K = 0; K < NumFormats; ++K)
    Out += formatString(",gflops_%s",
                        std::string(formatName(static_cast<FormatKind>(K)))
                            .c_str());
  Out += ",best_format\n";

  for (const FeatureRecord &R : Records) {
    Out += R.Name + "," + R.Domain;
    for (double V : R.Features.values())
      Out += formatString(",%.17g", V);
    for (double G : R.Gflops)
      Out += formatString(",%.17g", G);
    Out += "," + std::string(formatName(R.BestFormat)) + "\n";
  }
  return Out;
}

bool FeatureDatabase::parseCsv(const std::string &Text, FeatureDatabase &Db,
                               std::string &Error) {
  Db.Records.clear();
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line)) {
    Error = "empty CSV";
    return false;
  }
  constexpr std::size_t ExpectedColumns = 2 + NumFeatures + NumFormats + 1;
  while (std::getline(In, Line)) {
    if (trim(Line).empty())
      continue;
    auto Cells = split(Line, ',', /*KeepEmpty=*/true);
    if (Cells.size() != ExpectedColumns) {
      Error = "bad column count in row: '" + Line + "'";
      return false;
    }
    FeatureRecord R;
    R.Name = Cells[0];
    R.Domain = Cells[1];
    std::array<double, NumFeatures> Values{};
    for (int F = 0; F < NumFeatures; ++F)
      Values[static_cast<std::size_t>(F)] =
          std::strtod(Cells[2 + static_cast<std::size_t>(F)].c_str(), nullptr);
    R.Features.M = Values[FeatM];
    R.Features.N = Values[FeatN];
    R.Features.Ndiags = Values[FeatNdiags];
    R.Features.NTdiagsRatio = Values[FeatNTdiagsRatio];
    R.Features.Nnz = Values[FeatNnz];
    R.Features.MaxRd = Values[FeatMaxRd];
    R.Features.AverRd = Values[FeatAverRd];
    R.Features.VarRd = Values[FeatVarRd];
    R.Features.ErDia = Values[FeatErDia];
    R.Features.ErEll = Values[FeatErEll];
    R.Features.ErBsr = Values[FeatErBsr];
    R.Features.R = Values[FeatR];
    for (int K = 0; K < NumFormats; ++K)
      R.Gflops[static_cast<std::size_t>(K)] = std::strtod(
          Cells[2 + NumFeatures + static_cast<std::size_t>(K)].c_str(),
          nullptr);
    if (!parseFormatName(Cells.back(), R.BestFormat)) {
      Error = "bad best_format in row: '" + Line + "'";
      return false;
    }
    Db.Records.push_back(std::move(R));
  }
  return true;
}

bool FeatureDatabase::saveCsvFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << toCsv();
  return static_cast<bool>(Out);
}

bool FeatureDatabase::loadCsvFile(const std::string &Path, FeatureDatabase &Db,
                                  std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open file '" + Path + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseCsv(Buffer.str(), Db, Error);
}
