//===- core/LearningModel.h - The trained SMAT model ------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The artifact of the off-line stage (paper Figure 4): the tailored ruleset
/// with confidence factors, the scoreboard-selected per-format kernels, and
/// the runtime confidence threshold. Serializable so one training run
/// serves every subsequent process on the same architecture.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_LEARNINGMODEL_H
#define SMAT_CORE_LEARNINGMODEL_H

#include "core/CostModel.h"
#include "kernels/Scoreboard.h"
#include "ml/RuleSet.h"

#include <string>

namespace smat {

/// Default runtime confidence threshold. Group confidences above this let
/// the model decide directly; below it the execute-and-measure path runs.
inline constexpr double DefaultConfidenceThreshold = 0.85;

/// The complete trained model.
struct LearningModel {
  RuleSet Rules;
  KernelSelection Kernels;
  double ConfidenceThreshold = DefaultConfidenceThreshold;
  /// Whether the model was trained with the BSR extension format; gates the
  /// runtime's BSR candidacy (prediction and execute-and-measure).
  bool BsrEnabled = false;
  /// Routing thresholds of the analytic bottleneck classifier (CostModel.h)
  /// that pre-filters the execute-and-measure candidate menu. Serialized as
  /// optional `costmodel` lines; legacy model files without them parse and
  /// keep the defaults.
  CostModelThresholds Cost;

  /// Per-group flags: whether any rule of the group tests the power-law R
  /// attribute. Lets the runtime skip the (comparatively expensive) R
  /// computation until a group actually needs it (paper Section 6's
  /// two-step feature extraction).
  std::array<bool, NumFormats> GroupUsesR{};

  /// Recomputes GroupUsesR from Rules; call after any rule edit.
  void refreshRuleMetadata();
};

/// Serializes the model (threshold + kernel selection + ruleset).
std::string serializeModel(const LearningModel &Model);

/// Parses serializeModel output. \returns true on success.
bool parseModel(const std::string &Text, LearningModel &Model,
                std::string &Error);

bool saveModelFile(const std::string &Path, const LearningModel &Model);
bool loadModelFile(const std::string &Path, LearningModel &Model,
                   std::string &Error);

} // namespace smat

#endif // SMAT_CORE_LEARNINGMODEL_H
