//===- core/CostModel.h - Analytic bottleneck classification ----*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiling-free pre-filtering of the execute-and-measure candidate menu
/// (DESIGN.md section 15). Following the bottleneck taxonomy of Elafrou et
/// al. (arXiv 1711.05487), every matrix is classified from the
/// already-extracted step-1 features — no extra traversal — as
///
///   bandwidth-bound    regular structure; streaming memory traffic
///                      dominates, so the dense-stream formats (DIA, ELL)
///                      are the candidates worth racing;
///   imbalance-bound    heavily skewed row lengths; thread/work imbalance
///                      dominates and the load-balanced CSR kernels are the
///                      answer, so format conversion buys nothing;
///   irregularity-bound scattered accesses with no exploitable structure;
///                      CSR and COO are the only sensible plans.
///
/// The classification prunes the candidate set MeasureStage races when the
/// ruleset is unconfident: most tunes then measure one or two formats
/// instead of the full menu. It is a pre-filter, not an oracle — the
/// never-slower guardrail (basic CSR as a first-class race candidate)
/// bounds the cost of a misclassification.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_CORE_COSTMODEL_H
#define SMAT_CORE_COSTMODEL_H

#include "features/FeatureExtractor.h"
#include "matrix/Format.h"

#include <array>

namespace smat {

/// The performance-bottleneck taxonomy (Elafrou et al.).
enum class BottleneckClass {
  BandwidthBound = 0,
  ImbalanceBound,
  IrregularityBound,
};

inline constexpr int NumBottleneckClasses = 3;

/// \returns a short stable name for \p Class ("bandwidth", "imbalance",
/// "irregularity").
const char *bottleneckClassName(BottleneckClass Class);

/// Tunable routing thresholds of the analytic classifier. Serialized with
/// the trained model (optional `costmodel` lines, see LearningModel) so one
/// architecture's calibration serves every process; absent lines keep these
/// defaults, which is also how models trained before the classifier existed
/// stay loadable.
struct CostModelThresholds {
  /// Row-length coefficient of variation above which the matrix counts as
  /// imbalance-bound. Matches SkewRowCvThreshold so the classifier and the
  /// skew-aware CSR kernel bind agree on what "skewed" means.
  double ImbalanceRowCv = 1.0;
  /// Minimum DIA fill efficiency (ER_DIA) for the diagonal format to be a
  /// bandwidth-bound candidate (0.5 = at most 2x padding).
  double DiaFillMin = 0.5;
  /// Minimum ELL fill efficiency (ER_ELL) for the padded-rows format to be
  /// a bandwidth-bound candidate.
  double EllFillMin = 0.6;

  friend bool operator==(const CostModelThresholds &,
                         const CostModelThresholds &) = default;
};

/// Outcome of the analytic classification: the bottleneck class and the
/// format candidates worth measuring for it. CSR is always allowed — it is
/// the substrate format and the guardrail's comparison plan.
struct CostModelDecision {
  BottleneckClass Class = BottleneckClass::IrregularityBound;
  std::array<bool, NumFormats> Allowed{};

  bool allows(FormatKind Kind) const {
    return Allowed[static_cast<std::size_t>(Kind)];
  }
  int numAllowed() const {
    int N = 0;
    for (bool A : Allowed)
      N += A ? 1 : 0;
    return N;
  }
};

/// Classifies \p F into its bottleneck class and candidate-format mask.
/// Uses only step-1 features (never the lazy power-law R), so it can run
/// right after FeatureStage at zero additional traversal cost.
CostModelDecision classifyBottleneck(const FeatureVector &F,
                                     const CostModelThresholds &Thresholds =
                                         CostModelThresholds());

} // namespace smat

#endif // SMAT_CORE_COSTMODEL_H
