//===- core/CostModel.cpp - Analytic bottleneck classification ------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"

#include "matrix/FormatConvert.h"

using namespace smat;

const char *smat::bottleneckClassName(BottleneckClass Class) {
  switch (Class) {
  case BottleneckClass::BandwidthBound:
    return "bandwidth";
  case BottleneckClass::ImbalanceBound:
    return "imbalance";
  case BottleneckClass::IrregularityBound:
    return "irregularity";
  }
  return "unknown";
}

CostModelDecision
smat::classifyBottleneck(const FeatureVector &F,
                         const CostModelThresholds &Thresholds) {
  CostModelDecision D;
  // CSR is always a candidate: it is the substrate the tuner starts from
  // and the plan the never-slower guardrail falls back to.
  D.Allowed[static_cast<std::size_t>(FormatKind::CSR)] = true;

  // Imbalance first: a heavily skewed row-length distribution makes work
  // imbalance the dominant cost regardless of any fill efficiency, and the
  // cure is a load-balanced (nnz-partitioned) CSR kernel, not a format
  // conversion. Racing conversions here wastes the latency the pre-filter
  // exists to save.
  if (F.rowCv() > Thresholds.ImbalanceRowCv) {
    D.Class = BottleneckClass::ImbalanceBound;
    return D;
  }

  // Bandwidth-bound, diagonal flavor: enough occupied-diagonal fill that
  // DIA's branch-free streaming pays. DIA strictly dominates ELL on this
  // structure, so the menu stays at two candidates.
  const bool DiaStructure = F.Ndiags > 0 &&
                            F.Ndiags <= static_cast<double>(DefaultMaxDiags) &&
                            F.ErDia >= Thresholds.DiaFillMin;
  if (DiaStructure) {
    D.Class = BottleneckClass::BandwidthBound;
    D.Allowed[static_cast<std::size_t>(FormatKind::DIA)] = true;
    return D;
  }

  // Bandwidth-bound, padded-rows flavor: near-uniform row lengths with
  // little padding waste stream well through ELL (and BSR when the 4x4
  // block fill is dense enough to beat its padding flops).
  if (F.MaxRd > 0 && F.ErEll >= Thresholds.EllFillMin) {
    D.Class = BottleneckClass::BandwidthBound;
    D.Allowed[static_cast<std::size_t>(FormatKind::ELL)] = true;
    if (F.ErBsr * 1.5 >= 1.0)
      D.Allowed[static_cast<std::size_t>(FormatKind::BSR)] = true;
    return D;
  }

  // Irregularity-bound remainder: scattered structure with moderate
  // balance. COO's flat nonzero stream is the only alternative worth
  // racing against CSR.
  D.Class = BottleneckClass::IrregularityBound;
  D.Allowed[static_cast<std::size_t>(FormatKind::COO)] = true;
  if (F.ErBsr * 1.5 >= 1.0)
    D.Allowed[static_cast<std::size_t>(FormatKind::BSR)] = true;
  return D;
}
