//===- core/TuningService.cpp - Async tuning-as-a-service runtime ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/TuningService.h"

#include "kernels/KernelRegistry.h"
#include "matrix/Validate.h"
#include "support/FaultInjection.h"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

using namespace smat;

//===----------------------------------------------------------------------===//
// AsyncSpmv
//===----------------------------------------------------------------------===//

template <typename T>
bool AsyncSpmv<T>::waitTuned(double TimeoutSeconds) const {
  assert(Job && "waitTuned() on a default-constructed AsyncSpmv");
  std::unique_lock<std::mutex> Lock(Job->DoneMutex);
  if (TimeoutSeconds > 0.0) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::duration<double>(TimeoutSeconds));
    if (!Job->DoneCv.wait_until(Lock, Deadline, [&] { return Job->Done; }))
      return false;
  } else {
    Job->DoneCv.wait(Lock, [&] { return Job->Done; });
  }
  return Job->State.load(std::memory_order_acquire) ==
         static_cast<int>(AsyncTuneState::Tuned);
}

template <typename T> std::string AsyncSpmv<T>::error() const {
  assert(Job && "error() on a default-constructed AsyncSpmv");
  std::lock_guard<std::mutex> Lock(Job->DoneMutex);
  return Job->Error;
}

//===----------------------------------------------------------------------===//
// TuningService
//===----------------------------------------------------------------------===//

template <typename T>
TuningService<T>::TuningService(Smat<T> Tuner, Options OptsIn)
    : Opts(std::move(OptsIn)),
      Model(std::make_shared<const Smat<T>>(std::move(Tuner))),
      Cache(Opts.CacheCapacity) {
  if (!Opts.SnapshotPath.empty())
    WarmStart = Cache.loadSnapshot(Opts.SnapshotPath, &WarmStartCount);
  Worker = std::thread([this] { workerLoop(); });
}

template <typename T> TuningService<T>::~TuningService() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  if (Worker.joinable())
    Worker.join();
  // Jobs still queued at shutdown park on their bootstrap plans: the
  // handles keep serving basic CSR, they just never get tuned.
  std::deque<std::shared_ptr<detail::AsyncJob<T>>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Remaining.swap(Queue);
  }
  for (auto &Job : Remaining) {
    NumFailed.fetch_add(1, std::memory_order_relaxed);
    finishJob(*Job, AsyncTuneState::Failed, "tuning service shut down");
  }
  if (!Opts.SnapshotPath.empty())
    (void)savePlans(); // best-effort: shutdown must not throw
}

template <typename T>
std::shared_ptr<detail::AsyncJob<T>>
TuningService<T>::makeJob(CsrMatrix<T> &&A) const {
  auto Job = std::make_shared<detail::AsyncJob<T>>();
  Job->Matrix = std::move(A);
  // The bootstrap plan: the basic (strategy-free) CSR kernels borrowed
  // against the job's own matrix copy. Precondition-free, O(1) to bind —
  // this is what makes the handle servable before the worker ever runs.
  auto Boot = std::make_shared<detail::AsyncPlan<T>>();
  const auto &K = basicCsrKernel<T>();
  const auto &M = basicCsrSpmmKernel<T>();
  Boot->Op = std::make_unique<CsrBorrowedOperator<T>>(Job->Matrix, K.Fn,
                                                      K.Name, M.Fn, M.Name);
  Boot->Report.ChosenFormat = FormatKind::CSR;
  Boot->Report.KernelName = K.Name;
  Boot->Tuned = false;
  Job->Bootstrap = std::move(Boot);
  Job->Plan.store(Job->Bootstrap.get(), std::memory_order_release);
  return Job;
}

template <typename T>
Expected<AsyncSpmv<T>> TuningService<T>::submit(CsrMatrix<T> &&A) {
  // Validation is synchronous: a malformed matrix or option set must fail
  // at the call site with the same diagnostics the blocking API produces,
  // not in a worker log after the caller already holds a handle.
  if (Status S = validateCsr(A); !S.ok())
    return S;
  if (Status S = Smat<T>::validateTuneOptions(Opts.Tune); !S.ok())
    return S;

  auto Job = makeJob(std::move(A));
  NumSubmitted.fetch_add(1, std::memory_order_relaxed);

  // Fault site: the enqueue itself fails (queue allocation, service
  // tear-down race). The handle is already servable on its bootstrap plan,
  // so the degradation is "never tuned", not an error the caller sees.
  if (fault::injectFailure("async.submit")) {
    NumFailed.fetch_add(1, std::memory_order_relaxed);
    finishJob(*Job, AsyncTuneState::Failed, "injected submit failure");
    return AsyncSpmv<T>(std::move(Job));
  }

  bool Rejected = false;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping)
      Rejected = true;
    else
      Queue.push_back(Job);
  }
  if (Rejected) {
    NumFailed.fetch_add(1, std::memory_order_relaxed);
    finishJob(*Job, AsyncTuneState::Failed, "tuning service shut down");
  } else {
    QueueCv.notify_one();
  }
  return AsyncSpmv<T>(std::move(Job));
}

template <typename T>
AsyncSpmv<T> TuningService<T>::tuneAsync(const CsrMatrix<T> &A) {
  return tuneAsync(CsrMatrix<T>(A));
}

template <typename T> AsyncSpmv<T> TuningService<T>::tuneAsync(CsrMatrix<T> &&A) {
  Expected<AsyncSpmv<T>> Result = submit(std::move(A));
  if (!Result.ok())
    throw std::invalid_argument("SMAT async tune rejected input: " +
                                Result.status().message());
  return std::move(Result.value());
}

template <typename T>
Expected<AsyncSpmv<T>> TuningService<T>::tryTuneAsync(const CsrMatrix<T> &A) {
  return submit(CsrMatrix<T>(A));
}

template <typename T>
Expected<AsyncSpmv<T>> TuningService<T>::tryTuneAsync(CsrMatrix<T> &&A) {
  return submit(std::move(A));
}

template <typename T> void TuningService<T>::workerLoop() {
  for (;;) {
    std::shared_ptr<detail::AsyncJob<T>> Job;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Stopping)
        return; // leftover jobs are parked by the destructor
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    runJob(*Job);
  }
}

template <typename T> void TuningService<T>::runJob(detail::AsyncJob<T> &Job) {
  Job.State.store(static_cast<int>(AsyncTuneState::Tuning),
                  std::memory_order_release);
  std::string Error;
  try {
    // Fault site: the worker dies before the pipeline starts (thread-local
    // init failure, scheduler kill). Must park the handle on basic CSR.
    fault::injectKernelFault("async.worker.start");

    TuneOptions JobOpts = Opts.Tune;
    JobOpts.Cache = &Cache;
    JobOpts.CsrMode = CsrStorage::Borrowed;
    JobOpts.ModelGeneration = Generation.load(std::memory_order_acquire);
    std::shared_ptr<const Smat<T>> Tuner = loadModel();

    Expected<TunedSpmv<T>> Result = Tuner->tryTune(Job.Matrix, JobOpts);
    if (!Result.ok()) {
      Error = Result.status().message();
    } else {
      auto Plan = std::make_shared<detail::AsyncPlan<T>>();
      Plan->Report = Result.value().report();
      Plan->Op = Result.value().takeOperator();
      Plan->Tuned = true;
      if (!Plan->Op) {
        Error = "tune returned no operator";
      } else if (fault::injectFailure("async.worker.publish")) {
        // Fault site: the swap itself fails. The bootstrap plan keeps
        // serving; the tuned plan (and its converted storage) is dropped.
        Error = "injected publish failure";
      } else {
        // TunedPlan is worker-private until this release-store makes it
        // reachable; the job owns it from here on, so readers can serve
        // from the raw pointer without refcount traffic.
        Job.TunedPlan = std::move(Plan);
        Job.Plan.store(Job.TunedPlan.get(), std::memory_order_release);
        NumTuned.fetch_add(1, std::memory_order_relaxed);
        finishJob(Job, AsyncTuneState::Tuned, "");
        return;
      }
    }
  } catch (const std::exception &E) {
    Error = E.what();
  } catch (...) {
    Error = "unknown exception in async tuning worker";
  }
  // Every failure path lands here: the handle stays on its bootstrap
  // basic-CSR plan — correct results, degraded performance, no crash.
  NumFailed.fetch_add(1, std::memory_order_relaxed);
  finishJob(Job, AsyncTuneState::Failed, std::move(Error));
}

template <typename T>
void TuningService<T>::finishJob(detail::AsyncJob<T> &Job,
                                 AsyncTuneState Final, std::string Error) {
  Job.State.store(static_cast<int>(Final), std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(Job.DoneMutex);
    Job.Done = true;
    Job.Error = std::move(Error);
  }
  Job.DoneCv.notify_all();
}

template <typename T> void TuningService<T>::reloadModel(Smat<T> Tuner) {
  auto Fresh = std::make_shared<const Smat<T>>(std::move(Tuner));
  {
    std::lock_guard<std::mutex> Lock(ModelMutex);
    Model.swap(Fresh);
  }
  // `Fresh` now holds the outgoing model; it dies here (outside the lock)
  // unless a worker mid-job still holds a strong reference.
  // Bumped after the model swap: a worker racing the reload may pair the
  // new model with the old generation for one job, which only means that
  // job's plan is cached under the outgoing stamp and ages out — never
  // that a stale plan is served as fresh.
  Generation.fetch_add(1, std::memory_order_acq_rel);
  NumReloads.fetch_add(1, std::memory_order_relaxed);
}

template <typename T>
Status TuningService<T>::reloadModelFile(const std::string &Path) {
  std::string Error;
  std::optional<Smat<T>> Loaded = Smat<T>::tryFromFile(Path, &Error);
  if (!Loaded)
    return Status::error(ErrorCode::ParseError, Error);
  reloadModel(std::move(*Loaded));
  return Status::success();
}

template <typename T> Status TuningService<T>::savePlans() const {
  if (Opts.SnapshotPath.empty())
    return Status::success();
  std::string Error;
  if (!Cache.saveSnapshot(Opts.SnapshotPath, &Error))
    return Status::error(ErrorCode::ResourceExhausted,
                         "plan-cache snapshot save failed: " + Error);
  return Status::success();
}

template <typename T> TuningServiceStats TuningService<T>::stats() const {
  TuningServiceStats Out;
  Out.Submitted = NumSubmitted.load(std::memory_order_relaxed);
  Out.Tuned = NumTuned.load(std::memory_order_relaxed);
  Out.Failed = NumFailed.load(std::memory_order_relaxed);
  Out.ModelReloads = NumReloads.load(std::memory_order_relaxed);
  return Out;
}

namespace smat {
template class AsyncSpmv<float>;
template class AsyncSpmv<double>;
template class TuningService<float>;
template class TuningService<double>;
} // namespace smat

AsyncSpmv<double> smat::SMAT_dCSR_SpMV_async(TuningService<double> &Service,
                                             const CsrMatrix<double> &A) {
  return Service.tuneAsync(A);
}

AsyncSpmv<float> smat::SMAT_sCSR_SpMV_async(TuningService<float> &Service,
                                            const CsrMatrix<float> &A) {
  return Service.tuneAsync(A);
}
