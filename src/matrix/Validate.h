//===- matrix/Validate.h - Trust-boundary structure validation --*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full O(nnz) structural validation for the sparse containers, with
/// diagnostics naming the violated invariant and the offending row/entry.
/// These checks run once at every trust boundary (tune, the C entry points,
/// format conversion, AMG setup, MatrixMarket ingestion); interior code then
/// assumes validated input and keeps only debug `assert`s. The boolean
/// `isValid()` members remain as the cheap yes/no form; these functions are
/// the diagnostic form the error path reports to callers.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_VALIDATE_H
#define SMAT_MATRIX_VALIDATE_H

#include "matrix/CooMatrix.h"
#include "matrix/CsrMatrix.h"
#include "support/Status.h"
#include "support/Str.h"

namespace smat {

/// Validates every CSR invariant of \p A: non-negative dimensions, RowPtr
/// size/anchor/monotonicity, ColIdx/Values sized to RowPtr.back(), and all
/// column indices in [0, NumCols). \returns the first violation found.
template <typename T> Status validateCsr(const CsrMatrix<T> &A) {
  if (A.NumRows < 0 || A.NumCols < 0)
    return Status::error(ErrorCode::InvalidMatrix,
                         formatString("CSR: negative dimension (%d x %d)",
                                      A.NumRows, A.NumCols));
  if (A.RowPtr.size() != static_cast<std::size_t>(A.NumRows) + 1)
    return Status::error(
        ErrorCode::InvalidMatrix,
        formatString("CSR: RowPtr has %zu entries, expected NumRows + 1 = %d",
                     A.RowPtr.size(), A.NumRows + 1));
  if (A.RowPtr.front() != 0)
    return Status::error(
        ErrorCode::InvalidMatrix,
        formatString("CSR: RowPtr[0] = %d, expected 0", A.RowPtr.front()));
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    if (A.RowPtr[Row] > A.RowPtr[Row + 1])
      return Status::error(
          ErrorCode::InvalidMatrix,
          formatString("CSR: RowPtr not monotone at row %d "
                       "(RowPtr[%d] = %d > RowPtr[%d] = %d)",
                       Row, Row, A.RowPtr[Row], Row + 1, A.RowPtr[Row + 1]));
  std::size_t Nnz = static_cast<std::size_t>(A.RowPtr.back());
  if (A.ColIdx.size() != Nnz)
    return Status::error(
        ErrorCode::InvalidMatrix,
        formatString("CSR: ColIdx has %zu entries but RowPtr.back() = %zu",
                     A.ColIdx.size(), Nnz));
  if (A.Values.size() != Nnz)
    return Status::error(
        ErrorCode::InvalidMatrix,
        formatString("CSR: Values has %zu entries but RowPtr.back() = %zu",
                     A.Values.size(), Nnz));
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      if (A.ColIdx[I] < 0 || A.ColIdx[I] >= A.NumCols)
        return Status::error(
            ErrorCode::InvalidMatrix,
            formatString("CSR: column index %d out of range [0, %d) "
                         "at row %d, entry %d",
                         A.ColIdx[I], A.NumCols, Row, I));
  return Status::success();
}

/// Validates every COO invariant of \p A: non-negative dimensions, equal
/// Rows/Cols/Values lengths, and all coordinates in range.
template <typename T> Status validateCoo(const CooMatrix<T> &A) {
  if (A.NumRows < 0 || A.NumCols < 0)
    return Status::error(ErrorCode::InvalidMatrix,
                         formatString("COO: negative dimension (%d x %d)",
                                      A.NumRows, A.NumCols));
  if (A.Rows.size() != A.Values.size() || A.Cols.size() != A.Values.size())
    return Status::error(
        ErrorCode::InvalidMatrix,
        formatString("COO: array lengths disagree "
                     "(Rows %zu, Cols %zu, Values %zu)",
                     A.Rows.size(), A.Cols.size(), A.Values.size()));
  for (std::size_t I = 0; I != A.Rows.size(); ++I)
    if (A.Rows[I] < 0 || A.Rows[I] >= A.NumRows || A.Cols[I] < 0 ||
        A.Cols[I] >= A.NumCols)
      return Status::error(
          ErrorCode::InvalidMatrix,
          formatString("COO: coordinate (%d, %d) out of range %d x %d "
                       "at entry %zu",
                       A.Rows[I], A.Cols[I], A.NumRows, A.NumCols, I));
  return Status::success();
}

/// Validates a triplet list against the target shape (the csrFromTriplets
/// contract): equal lengths and every coordinate in range.
template <typename T>
Status validateTriplets(index_t NumRows, index_t NumCols,
                        const std::vector<index_t> &Rows,
                        const std::vector<index_t> &Cols,
                        const std::vector<T> &Vals) {
  if (NumRows < 0 || NumCols < 0)
    return Status::error(
        ErrorCode::InvalidMatrix,
        formatString("triplets: negative dimension (%d x %d)", NumRows,
                     NumCols));
  if (Rows.size() != Vals.size() || Cols.size() != Vals.size())
    return Status::error(
        ErrorCode::InvalidMatrix,
        formatString("triplets: array lengths disagree "
                     "(rows %zu, cols %zu, values %zu)",
                     Rows.size(), Cols.size(), Vals.size()));
  for (std::size_t I = 0; I != Rows.size(); ++I)
    if (Rows[I] < 0 || Rows[I] >= NumRows || Cols[I] < 0 ||
        Cols[I] >= NumCols)
      return Status::error(
          ErrorCode::InvalidMatrix,
          formatString("triplets: coordinate (%d, %d) out of range %d x %d "
                       "at entry %zu",
                       Rows[I], Cols[I], NumRows, NumCols, I));
  return Status::success();
}

} // namespace smat

#endif // SMAT_MATRIX_VALIDATE_H
