//===- matrix/BsrMatrix.h - Block compressed sparse row matrix --*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BSR (block compressed sparse row) storage: the BCSR blocking variant the
/// paper lists in Section 2.1 and OSKI builds on, implemented here as
/// SMAT's extension format (contribution 3: "users can add not only new
/// formats and novel implementations ..."). The matrix is tiled into
/// BlockSize x BlockSize dense blocks; occupied blocks are stored densely
/// (row-major within the block) under a CSR-like block-row index.
///
/// Matrices whose dimensions are not multiples of BlockSize are padded
/// *logically*: edge blocks are stored in full with explicit zeros, and the
/// kernels clamp their row/column loops so no out-of-bounds X/Y access ever
/// happens.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_BSRMATRIX_H
#define SMAT_MATRIX_BSRMATRIX_H

#include "matrix/Format.h"
#include "support/AlignedAlloc.h"

#include <cassert>
#include <cstdint>

namespace smat {

/// A sparse matrix in BSR format.
template <typename T> struct BsrMatrix {
  index_t NumRows = 0;       ///< Scalar rows.
  index_t NumCols = 0;       ///< Scalar columns.
  index_t BlockSize = 1;     ///< Block edge length (square blocks).
  std::int64_t TrueNnz = 0;  ///< Scalar nonzeros before zero-fill.
  AlignedVector<index_t> RowPtr; ///< Size numBlockRows() + 1.
  AlignedVector<index_t> ColIdx; ///< Block-column index per stored block.
  AlignedVector<T> Values; ///< BlockSize^2 values per block, row-major.

  /// \returns the number of block rows (ceil division).
  index_t numBlockRows() const {
    return BlockSize > 0 ? (NumRows + BlockSize - 1) / BlockSize : 0;
  }

  /// \returns the number of block columns (ceil division).
  index_t numBlockCols() const {
    return BlockSize > 0 ? (NumCols + BlockSize - 1) / BlockSize : 0;
  }

  /// \returns the number of stored blocks.
  std::int64_t numBlocks() const {
    return RowPtr.empty() ? 0 : static_cast<std::int64_t>(RowPtr.back());
  }

  /// \returns the number of *structural* nonzeros (excluding block padding).
  std::int64_t nnz() const { return TrueNnz; }

  /// \returns total stored scalar elements, block padding included.
  std::int64_t storedElements() const {
    return numBlocks() * BlockSize * BlockSize;
  }

  /// Structural validity check; O(blocks).
  bool isValid() const {
    if (NumRows < 0 || NumCols < 0 || BlockSize < 1 || TrueNnz < 0)
      return false;
    if (RowPtr.size() != static_cast<std::size_t>(numBlockRows()) + 1)
      return false;
    if (!RowPtr.empty() && RowPtr.front() != 0)
      return false;
    for (std::size_t I = 1; I < RowPtr.size(); ++I)
      if (RowPtr[I - 1] > RowPtr[I])
        return false;
    std::size_t Blocks = static_cast<std::size_t>(numBlocks());
    if (ColIdx.size() != Blocks)
      return false;
    if (Values.size() != Blocks * static_cast<std::size_t>(BlockSize) *
                             static_cast<std::size_t>(BlockSize))
      return false;
    for (index_t Col : ColIdx)
      if (Col < 0 || Col >= numBlockCols())
        return false;
    return true;
  }
};

} // namespace smat

#endif // SMAT_MATRIX_BSRMATRIX_H
