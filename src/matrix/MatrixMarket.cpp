//===- matrix/MatrixMarket.cpp - MatrixMarket file I/O --------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "matrix/MatrixMarket.h"

#include "matrix/FormatConvert.h"
#include "support/Str.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace smat;

namespace {

enum class FieldKind { Real, Integer, Pattern };
enum class SymmetryKind { General, Symmetric, SkewSymmetric };

MatrixMarketResult fail(ErrorCode Code, const std::string &Why) {
  MatrixMarketResult R;
  R.Code = Code;
  R.Error = Why;
  return R;
}

/// Parse failure anchored to a 1-based input line (the reader is a trust
/// boundary; diagnostics must let the operator find the broken line).
MatrixMarketResult failAt(long long LineNo, const std::string &Why) {
  return fail(ErrorCode::ParseError,
              formatString("line %lld: ", LineNo) + Why);
}

} // namespace

MatrixMarketResult smat::readMatrixMarketString(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  long long LineNo = 0;
  auto NextLine = [&]() -> bool {
    if (!std::getline(In, Line))
      return false;
    ++LineNo;
    return true;
  };

  if (!NextLine())
    return fail(ErrorCode::ParseError, "empty input");
  auto Banner = splitWhitespace(Line);
  if (Banner.size() < 5 || !startsWith(Banner[0], "%%MatrixMarket"))
    return failAt(LineNo, "missing %%MatrixMarket banner");
  if (!equalsIgnoreCase(Banner[1], "matrix"))
    return failAt(LineNo, "only 'matrix' objects are supported");
  if (!equalsIgnoreCase(Banner[2], "coordinate"))
    return failAt(LineNo, "only 'coordinate' (sparse) layout is supported");

  FieldKind Field;
  if (equalsIgnoreCase(Banner[3], "real"))
    Field = FieldKind::Real;
  else if (equalsIgnoreCase(Banner[3], "integer"))
    Field = FieldKind::Integer;
  else if (equalsIgnoreCase(Banner[3], "pattern"))
    Field = FieldKind::Pattern;
  else
    return failAt(LineNo,
                  "unsupported field '" + Banner[3] +
                      "' (complex matrices are excluded, as in the paper)");

  SymmetryKind Symmetry;
  if (equalsIgnoreCase(Banner[4], "general"))
    Symmetry = SymmetryKind::General;
  else if (equalsIgnoreCase(Banner[4], "symmetric"))
    Symmetry = SymmetryKind::Symmetric;
  else if (equalsIgnoreCase(Banner[4], "skew-symmetric"))
    Symmetry = SymmetryKind::SkewSymmetric;
  else
    return failAt(LineNo, "unsupported symmetry '" + Banner[4] + "'");

  // Skip comments and blank lines, then read the size line.
  long long NumRows = -1, NumCols = -1, NumEntries = -1;
  bool SawSizeLine = false;
  while (NextLine()) {
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed[0] == '%')
      continue;
    if (std::sscanf(std::string(Trimmed).c_str(), "%lld %lld %lld", &NumRows,
                    &NumCols, &NumEntries) != 3)
      return failAt(LineNo,
                    "malformed size line: '" + std::string(Trimmed) + "'");
    SawSizeLine = true;
    break;
  }
  if (!SawSizeLine)
    return fail(ErrorCode::ParseError, "missing size line");
  if (NumRows < 0 || NumCols < 0)
    return failAt(LineNo, formatString("negative matrix dimension (%lld x "
                                       "%lld)",
                                       NumRows, NumCols));
  if (NumEntries < 0)
    return failAt(LineNo,
                  formatString("negative entry count (%lld)", NumEntries));
  if (NumRows > (1LL << 31) - 2 || NumCols > (1LL << 31) - 2)
    return failAt(LineNo, "matrix dimensions exceed 32-bit index range");
  if (NumEntries > NumRows * NumCols)
    return failAt(LineNo,
                  formatString("entry count %lld exceeds matrix capacity "
                               "%lld x %lld",
                               NumEntries, NumRows, NumCols));
  if (Symmetry != SymmetryKind::General && NumRows != NumCols)
    return failAt(LineNo,
                  formatString("%s symmetry requires a square matrix, got "
                               "%lld x %lld",
                               Symmetry == SymmetryKind::Symmetric
                                   ? "symmetric"
                                   : "skew-symmetric",
                               NumRows, NumCols));

  std::vector<index_t> Rows, Cols;
  std::vector<double> Vals;
  // Cap the up-front reservation: a corrupt size line must not trigger a
  // huge allocation before the (short) entry list runs out.
  std::size_t Reserve = static_cast<std::size_t>(
      std::min<long long>(NumEntries, 1 << 20));
  Rows.reserve(Reserve);
  Cols.reserve(Reserve);
  Vals.reserve(Reserve);

  long long Seen = 0;
  while (Seen < NumEntries && NextLine()) {
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed[0] == '%')
      continue;
    long long Row = 0, Col = 0;
    double Val = 1.0;
    std::string Owned(Trimmed);
    int Matched;
    if (Field == FieldKind::Pattern)
      Matched = std::sscanf(Owned.c_str(), "%lld %lld", &Row, &Col);
    else
      Matched = std::sscanf(Owned.c_str(), "%lld %lld %lf", &Row, &Col, &Val);
    int Expected = Field == FieldKind::Pattern ? 2 : 3;
    if (Matched != Expected)
      return failAt(LineNo, "malformed entry line: '" + Owned + "'");
    if (Row < 1 || Row > NumRows || Col < 1 || Col > NumCols)
      return failAt(LineNo, "entry index out of range: '" + Owned + "'");
    ++Seen;

    index_t R = static_cast<index_t>(Row - 1);
    index_t C = static_cast<index_t>(Col - 1);
    Rows.push_back(R);
    Cols.push_back(C);
    Vals.push_back(Val);
    if (Symmetry != SymmetryKind::General && R != C) {
      Rows.push_back(C);
      Cols.push_back(R);
      Vals.push_back(Symmetry == SymmetryKind::SkewSymmetric ? -Val : Val);
    }
  }
  if (Seen != NumEntries)
    return failAt(LineNo,
                  formatString("file ended after %lld of %lld entries", Seen,
                               NumEntries));
  // Anything but comments and blank lines after the declared entries means
  // the size line undercounts the file.
  while (NextLine()) {
    std::string_view Trimmed = trim(Line);
    if (!Trimmed.empty() && Trimmed[0] != '%')
      return failAt(LineNo, formatString("trailing data after the declared "
                                         "%lld entries",
                                         NumEntries));
  }
  // The capacity check above ran before mirroring; symmetric/skew files
  // whose off-diagonal entries were mirrored can only exceed capacity now if
  // the file stored duplicates of both triangles.
  long long Mirrored = static_cast<long long>(Rows.size());
  if (Mirrored > NumRows * NumCols)
    return fail(ErrorCode::ParseError,
                formatString("symmetric mirroring produced %lld entries, "
                             "exceeding matrix capacity %lld x %lld",
                             Mirrored, NumRows, NumCols));

  Expected<CsrMatrix<double>> Built = tryCsrFromTriplets<double>(
      static_cast<index_t>(NumRows), static_cast<index_t>(NumCols),
      std::move(Rows), std::move(Cols), std::move(Vals));
  if (!Built.ok())
    return fail(Built.status().code(), Built.status().message());

  MatrixMarketResult Result;
  Result.Ok = true;
  Result.Matrix = std::move(*Built);
  return Result;
}

MatrixMarketResult smat::readMatrixMarketFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(ErrorCode::InvalidArgument,
                "cannot open file '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return readMatrixMarketString(Buffer.str());
}

std::string smat::writeMatrixMarketString(const CsrMatrix<double> &A) {
  std::string Out = "%%MatrixMarket matrix coordinate real general\n";
  Out += formatString("%d %d %lld\n", A.NumRows, A.NumCols,
                      static_cast<long long>(A.nnz()));
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      Out += formatString("%d %d %.17g\n", Row + 1, A.ColIdx[I] + 1,
                          A.Values[I]);
  return Out;
}

bool smat::writeMatrixMarketFile(const std::string &Path,
                                 const CsrMatrix<double> &A) {
  std::ofstream OutFile(Path, std::ios::binary);
  if (!OutFile)
    return false;
  OutFile << writeMatrixMarketString(A);
  return static_cast<bool>(OutFile);
}
