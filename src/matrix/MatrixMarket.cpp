//===- matrix/MatrixMarket.cpp - MatrixMarket file I/O --------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "matrix/MatrixMarket.h"

#include "matrix/FormatConvert.h"
#include "support/Str.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace smat;

namespace {

enum class FieldKind { Real, Integer, Pattern };
enum class SymmetryKind { General, Symmetric, SkewSymmetric };

MatrixMarketResult fail(const std::string &Why) {
  MatrixMarketResult R;
  R.Error = Why;
  return R;
}

} // namespace

MatrixMarketResult smat::readMatrixMarketString(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;

  if (!std::getline(In, Line))
    return fail("empty input");
  auto Banner = splitWhitespace(Line);
  if (Banner.size() < 5 || !startsWith(Banner[0], "%%MatrixMarket"))
    return fail("missing %%MatrixMarket banner");
  if (!equalsIgnoreCase(Banner[1], "matrix"))
    return fail("only 'matrix' objects are supported");
  if (!equalsIgnoreCase(Banner[2], "coordinate"))
    return fail("only 'coordinate' (sparse) layout is supported");

  FieldKind Field;
  if (equalsIgnoreCase(Banner[3], "real"))
    Field = FieldKind::Real;
  else if (equalsIgnoreCase(Banner[3], "integer"))
    Field = FieldKind::Integer;
  else if (equalsIgnoreCase(Banner[3], "pattern"))
    Field = FieldKind::Pattern;
  else
    return fail("unsupported field '" + Banner[3] +
                "' (complex matrices are excluded, as in the paper)");

  SymmetryKind Symmetry;
  if (equalsIgnoreCase(Banner[4], "general"))
    Symmetry = SymmetryKind::General;
  else if (equalsIgnoreCase(Banner[4], "symmetric"))
    Symmetry = SymmetryKind::Symmetric;
  else if (equalsIgnoreCase(Banner[4], "skew-symmetric"))
    Symmetry = SymmetryKind::SkewSymmetric;
  else
    return fail("unsupported symmetry '" + Banner[4] + "'");

  // Skip comments and blank lines, then read the size line.
  long long NumRows = -1, NumCols = -1, NumEntries = -1;
  while (std::getline(In, Line)) {
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed[0] == '%')
      continue;
    if (std::sscanf(std::string(Trimmed).c_str(), "%lld %lld %lld", &NumRows,
                    &NumCols, &NumEntries) != 3)
      return fail("malformed size line: '" + std::string(Trimmed) + "'");
    break;
  }
  if (NumRows < 0 || NumCols < 0 || NumEntries < 0)
    return fail("missing size line");
  if (NumRows > (1LL << 31) - 2 || NumCols > (1LL << 31) - 2)
    return fail("matrix dimensions exceed 32-bit index range");
  if (NumEntries > NumRows * NumCols)
    return fail("entry count exceeds matrix capacity");

  std::vector<index_t> Rows, Cols;
  std::vector<double> Vals;
  // Cap the up-front reservation: a corrupt size line must not trigger a
  // huge allocation before the (short) entry list runs out.
  std::size_t Reserve = static_cast<std::size_t>(
      std::min<long long>(NumEntries, 1 << 20));
  Rows.reserve(Reserve);
  Cols.reserve(Reserve);
  Vals.reserve(Reserve);

  long long Seen = 0;
  while (Seen < NumEntries && std::getline(In, Line)) {
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed[0] == '%')
      continue;
    long long Row = 0, Col = 0;
    double Val = 1.0;
    std::string Owned(Trimmed);
    int Matched;
    if (Field == FieldKind::Pattern)
      Matched = std::sscanf(Owned.c_str(), "%lld %lld", &Row, &Col);
    else
      Matched = std::sscanf(Owned.c_str(), "%lld %lld %lf", &Row, &Col, &Val);
    int Expected = Field == FieldKind::Pattern ? 2 : 3;
    if (Matched != Expected)
      return fail("malformed entry line: '" + Owned + "'");
    if (Row < 1 || Row > NumRows || Col < 1 || Col > NumCols)
      return fail("entry index out of range: '" + Owned + "'");
    ++Seen;

    index_t R = static_cast<index_t>(Row - 1);
    index_t C = static_cast<index_t>(Col - 1);
    Rows.push_back(R);
    Cols.push_back(C);
    Vals.push_back(Val);
    if (Symmetry != SymmetryKind::General && R != C) {
      Rows.push_back(C);
      Cols.push_back(R);
      Vals.push_back(Symmetry == SymmetryKind::SkewSymmetric ? -Val : Val);
    }
  }
  if (Seen != NumEntries)
    return fail("file ended before all entries were read");

  MatrixMarketResult Result;
  Result.Ok = true;
  Result.Matrix = csrFromTriplets<double>(
      static_cast<index_t>(NumRows), static_cast<index_t>(NumCols),
      std::move(Rows), std::move(Cols), std::move(Vals));
  return Result;
}

MatrixMarketResult smat::readMatrixMarketFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail("cannot open file '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return readMatrixMarketString(Buffer.str());
}

std::string smat::writeMatrixMarketString(const CsrMatrix<double> &A) {
  std::string Out = "%%MatrixMarket matrix coordinate real general\n";
  Out += formatString("%d %d %lld\n", A.NumRows, A.NumCols,
                      static_cast<long long>(A.nnz()));
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      Out += formatString("%d %d %.17g\n", Row + 1, A.ColIdx[I] + 1,
                          A.Values[I]);
  return Out;
}

bool smat::writeMatrixMarketFile(const std::string &Path,
                                 const CsrMatrix<double> &A) {
  std::ofstream OutFile(Path, std::ios::binary);
  if (!OutFile)
    return false;
  OutFile << writeMatrixMarketString(A);
  return static_cast<bool>(OutFile);
}
