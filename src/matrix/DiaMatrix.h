//===- matrix/DiaMatrix.h - Diagonal format matrix --------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DIA (diagonal) storage (paper Figure 2c): nonzeros are stored by the order
/// of diagonals, with "Offsets" recording each diagonal's offset from the
/// principal one. Rows with no entry on a stored diagonal are zero-padded,
/// which is exactly the fill overhead the ER_DIA / NTdiags_ratio features
/// quantify.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_DIAMATRIX_H
#define SMAT_MATRIX_DIAMATRIX_H

#include "matrix/Format.h"
#include "support/AlignedAlloc.h"

#include <cassert>
#include <cstdint>

namespace smat {

/// A sparse matrix in DIA format.
///
/// Data layout matches the paper's kernel: element of diagonal \p D at row
/// \p Row lives at Data[D * Stride + Row], where Stride == NumRows. Only the
/// rows intersecting the matrix for the given offset are meaningful; the rest
/// is zero padding.
template <typename T> struct DiaMatrix {
  index_t NumRows = 0;
  index_t NumCols = 0;
  std::int64_t TrueNnz = 0;        ///< Nonzeros before zero-fill.
  AlignedVector<index_t> Offsets;  ///< Diagonal offsets (Col - Row), ascending.
  AlignedVector<T> Data;           ///< Size Offsets.size() * NumRows.

  /// \returns the number of stored diagonals.
  index_t numDiags() const { return static_cast<index_t>(Offsets.size()); }

  /// \returns the leading dimension of Data (one diagonal's storage length).
  index_t stride() const { return NumRows; }

  /// \returns the number of *structural* nonzeros (excluding padding).
  std::int64_t nnz() const { return TrueNnz; }

  /// \returns total stored elements, padding included.
  std::int64_t storedElements() const {
    return static_cast<std::int64_t>(Offsets.size()) * NumRows;
  }

  /// Structural validity check; O(numDiags).
  bool isValid() const {
    if (NumRows < 0 || NumCols < 0 || TrueNnz < 0)
      return false;
    if (Data.size() !=
        static_cast<std::size_t>(Offsets.size()) * static_cast<std::size_t>(NumRows))
      return false;
    for (std::size_t I = 0; I != Offsets.size(); ++I) {
      if (Offsets[I] <= -NumRows || Offsets[I] >= NumCols)
        return false;
      if (I > 0 && Offsets[I - 1] >= Offsets[I])
        return false;
    }
    return true;
  }
};

} // namespace smat

#endif // SMAT_MATRIX_DIAMATRIX_H
