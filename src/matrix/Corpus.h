//===- matrix/Corpus.h - Training/evaluation matrix corpus ------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The labeled matrix corpus used for SMAT's off-line training and all
/// evaluation benches. It substitutes for the UF sparse matrix collection
/// (paper Table 1): 20+ "application domain" families, each a parameterized
/// mixture of the generators in Generators.h, plus the 16 representative
/// matrices of paper Figure 8 (scaled to this machine).
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_CORPUS_H
#define SMAT_MATRIX_CORPUS_H

#include "matrix/CsrMatrix.h"

#include <string>
#include <vector>

namespace smat {

/// One corpus matrix with its provenance labels.
struct CorpusEntry {
  std::string Name;
  std::string Domain;
  CsrMatrix<double> Matrix;
};

/// Controls corpus matrix sizes and per-domain replication.
enum class CorpusScale {
  Tiny,  ///< ~2 per domain, few-hundred-row matrices; unit tests.
  Small, ///< ~12 per domain; fast training (default for most benches).
  Full,  ///< ~90 per domain, >2000 matrices; mirrors the paper's 2386.
};

/// \returns the list of application-domain names (Table 1 rows).
const std::vector<std::string> &corpusDomains();

/// Builds the deterministic corpus at the given scale. The same
/// (Scale, Seed) always produces the same matrices.
std::vector<CorpusEntry> buildCorpus(CorpusScale Scale,
                                     std::uint64_t Seed = 20130616);

/// Splits \p Corpus into training and held-out evaluation subsets with the
/// paper's proportions (2055 : 331 ~= 6 : 1). Every 7th entry is held out.
void splitCorpus(const std::vector<CorpusEntry> &Corpus,
                 std::vector<const CorpusEntry *> &Training,
                 std::vector<const CorpusEntry *> &Evaluation);

/// The 16 representative matrices of paper Figure 8, reproduced as synthetic
/// structural analogues (same format-affinity roles, sizes scaled to a
/// single-core machine). Order matches the paper's numbering 1-16.
std::vector<CorpusEntry> representativeMatrices(bool Large = false);

} // namespace smat

#endif // SMAT_MATRIX_CORPUS_H
