//===- matrix/Generators.cpp - Synthetic sparse matrix generators ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "matrix/Generators.h"

#include "matrix/FormatConvert.h"
#include "support/Rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

using namespace smat;

namespace {

/// Shared triplet accumulator for the stencil generators.
struct TripletBuilder {
  index_t NumRows, NumCols;
  std::vector<index_t> Rows, Cols;
  std::vector<double> Vals;

  TripletBuilder(index_t NumRows, index_t NumCols)
      : NumRows(NumRows), NumCols(NumCols) {}

  void add(index_t Row, index_t Col, double Val) {
    Rows.push_back(Row);
    Cols.push_back(Col);
    Vals.push_back(Val);
  }

  CsrMatrix<double> build() {
    return csrFromTriplets<double>(NumRows, NumCols, std::move(Rows),
                                   std::move(Cols), std::move(Vals));
  }
};

/// Draws \p Deg distinct column indices in [0, Cols) into \p Out.
void sampleDistinctColumns(index_t Cols, index_t Deg, Rng &Rng,
                           std::vector<index_t> &Out) {
  Out.clear();
  assert(Deg <= Cols && "cannot draw more distinct columns than exist");
  if (Deg > Cols / 2) {
    // Dense case: Floyd's algorithm degenerates; take a partial shuffle.
    std::vector<index_t> All(Cols);
    for (index_t I = 0; I < Cols; ++I)
      All[I] = I;
    for (index_t I = 0; I < Deg; ++I) {
      index_t J = I + static_cast<index_t>(Rng.bounded(Cols - I));
      std::swap(All[I], All[J]);
      Out.push_back(All[I]);
    }
    return;
  }
  std::unordered_set<index_t> Seen;
  while (static_cast<index_t>(Out.size()) < Deg) {
    index_t Col = static_cast<index_t>(Rng.bounded(Cols));
    if (Seen.insert(Col).second)
      Out.push_back(Col);
  }
}

} // namespace

CsrMatrix<double> smat::laplace2d5pt(index_t Nx, index_t Ny) {
  TripletBuilder B(Nx * Ny, Nx * Ny);
  for (index_t Y = 0; Y < Ny; ++Y)
    for (index_t X = 0; X < Nx; ++X) {
      index_t Row = Y * Nx + X;
      B.add(Row, Row, 4.0);
      if (X > 0)
        B.add(Row, Row - 1, -1.0);
      if (X + 1 < Nx)
        B.add(Row, Row + 1, -1.0);
      if (Y > 0)
        B.add(Row, Row - Nx, -1.0);
      if (Y + 1 < Ny)
        B.add(Row, Row + Nx, -1.0);
    }
  return B.build();
}

CsrMatrix<double> smat::laplace2d9pt(index_t Nx, index_t Ny) {
  TripletBuilder B(Nx * Ny, Nx * Ny);
  for (index_t Y = 0; Y < Ny; ++Y)
    for (index_t X = 0; X < Nx; ++X) {
      index_t Row = Y * Nx + X;
      for (index_t Dy = -1; Dy <= 1; ++Dy)
        for (index_t Dx = -1; Dx <= 1; ++Dx) {
          index_t Xn = X + Dx, Yn = Y + Dy;
          if (Xn < 0 || Xn >= Nx || Yn < 0 || Yn >= Ny)
            continue;
          index_t Col = Yn * Nx + Xn;
          B.add(Row, Col, Row == Col ? 8.0 : -1.0);
        }
    }
  return B.build();
}

CsrMatrix<double> smat::laplace3d7pt(index_t Nx, index_t Ny, index_t Nz) {
  TripletBuilder B(Nx * Ny * Nz, Nx * Ny * Nz);
  for (index_t Z = 0; Z < Nz; ++Z)
    for (index_t Y = 0; Y < Ny; ++Y)
      for (index_t X = 0; X < Nx; ++X) {
        index_t Row = (Z * Ny + Y) * Nx + X;
        B.add(Row, Row, 6.0);
        if (X > 0)
          B.add(Row, Row - 1, -1.0);
        if (X + 1 < Nx)
          B.add(Row, Row + 1, -1.0);
        if (Y > 0)
          B.add(Row, Row - Nx, -1.0);
        if (Y + 1 < Ny)
          B.add(Row, Row + Nx, -1.0);
        if (Z > 0)
          B.add(Row, Row - Nx * Ny, -1.0);
        if (Z + 1 < Nz)
          B.add(Row, Row + Nx * Ny, -1.0);
      }
  return B.build();
}

CsrMatrix<double> smat::laplace3d27pt(index_t Nx, index_t Ny, index_t Nz) {
  TripletBuilder B(Nx * Ny * Nz, Nx * Ny * Nz);
  for (index_t Z = 0; Z < Nz; ++Z)
    for (index_t Y = 0; Y < Ny; ++Y)
      for (index_t X = 0; X < Nx; ++X) {
        index_t Row = (Z * Ny + Y) * Nx + X;
        for (index_t Dz = -1; Dz <= 1; ++Dz)
          for (index_t Dy = -1; Dy <= 1; ++Dy)
            for (index_t Dx = -1; Dx <= 1; ++Dx) {
              index_t Xn = X + Dx, Yn = Y + Dy, Zn = Z + Dz;
              if (Xn < 0 || Xn >= Nx || Yn < 0 || Yn >= Ny || Zn < 0 ||
                  Zn >= Nz)
                continue;
              index_t Col = (Zn * Ny + Yn) * Nx + Xn;
              B.add(Row, Col, Row == Col ? 26.0 : -1.0);
            }
      }
  return B.build();
}

CsrMatrix<double> smat::tridiagonal(index_t N) {
  return multiDiagonal(N, {-1, 0, 1});
}

CsrMatrix<double> smat::banded(index_t N, index_t HalfBand) {
  std::vector<index_t> Offsets;
  for (index_t D = -HalfBand; D <= HalfBand; ++D)
    Offsets.push_back(D);
  return multiDiagonal(N, Offsets);
}

CsrMatrix<double> smat::multiDiagonal(index_t N,
                                      const std::vector<index_t> &Offsets) {
  TripletBuilder B(N, N);
  for (index_t Offset : Offsets) {
    assert(Offset > -N && Offset < N && "diagonal offset out of range");
    index_t RowBegin = std::max(index_t(0), -Offset);
    index_t RowEnd = std::min(N, N - Offset);
    for (index_t Row = RowBegin; Row < RowEnd; ++Row)
      B.add(Row, Row + Offset,
            Offset == 0 ? 2.0 * static_cast<double>(Offsets.size()) : -1.0);
  }
  return B.build();
}

CsrMatrix<double> smat::brokenDiagonals(index_t N,
                                        const std::vector<index_t> &Offsets,
                                        double Occupancy, std::uint64_t Seed) {
  Rng Rng(Seed);
  TripletBuilder B(N, N);
  for (index_t Offset : Offsets) {
    index_t RowBegin = std::max(index_t(0), -Offset);
    index_t RowEnd = std::min(N, N - Offset);
    for (index_t Row = RowBegin; Row < RowEnd; ++Row) {
      // Keep the main diagonal intact so the matrix stays usable in solvers.
      if (Offset != 0 && Rng.uniform() >= Occupancy)
        continue;
      B.add(Row, Row + Offset, Offset == 0 ? 4.0 : -Rng.uniform(0.1, 1.0));
    }
  }
  return B.build();
}

CsrMatrix<double> smat::boundedDegreeRandom(index_t Rows, index_t Cols,
                                            index_t MinDeg, index_t MaxDeg,
                                            std::uint64_t Seed) {
  assert(MinDeg <= MaxDeg && MaxDeg <= Cols && "bad degree bounds");
  Rng Rng(Seed);
  TripletBuilder B(Rows, Cols);
  std::vector<index_t> RowCols;
  for (index_t Row = 0; Row < Rows; ++Row) {
    index_t Deg = static_cast<index_t>(Rng.range(MinDeg, MaxDeg));
    sampleDistinctColumns(Cols, Deg, Rng, RowCols);
    for (index_t Col : RowCols)
      B.add(Row, Col, Rng.uniform(-1.0, 1.0));
  }
  return B.build();
}

CsrMatrix<double> smat::erdosRenyi(index_t Rows, index_t Cols, double AvgDeg,
                                   std::uint64_t Seed) {
  Rng Rng(Seed);
  TripletBuilder B(Rows, Cols);
  std::vector<index_t> RowCols;
  for (index_t Row = 0; Row < Rows; ++Row) {
    // Poisson-ish degree via a geometric accumulation of uniforms.
    index_t Deg = 0;
    double Product = Rng.uniform();
    double Threshold = std::exp(-AvgDeg);
    while (Product > Threshold && Deg < Cols) {
      ++Deg;
      Product *= Rng.uniform();
    }
    sampleDistinctColumns(Cols, Deg, Rng, RowCols);
    for (index_t Col : RowCols)
      B.add(Row, Col, Rng.uniform(-1.0, 1.0));
  }
  return B.build();
}

CsrMatrix<double> smat::powerLawGraph(index_t N, double Exponent,
                                      index_t MinDeg, index_t MaxDeg,
                                      std::uint64_t Seed) {
  assert(Exponent > 0 && "power-law exponent must be positive");
  assert(MinDeg >= 1 && MinDeg <= MaxDeg && MaxDeg <= N && "bad degree range");
  Rng Rng(Seed);
  TripletBuilder B(N, N);
  std::vector<index_t> RowCols;
  // Inverse-CDF sampling of P(k) ~ k^-Exponent on [MinDeg, MaxDeg].
  double OneMinusExp = 1.0 - Exponent;
  double LoPow = std::pow(static_cast<double>(MinDeg), OneMinusExp);
  double HiPow = std::pow(static_cast<double>(MaxDeg) + 1.0, OneMinusExp);
  for (index_t Row = 0; Row < N; ++Row) {
    double U = Rng.uniform();
    double K;
    if (std::abs(OneMinusExp) < 1e-9)
      K = static_cast<double>(MinDeg) *
          std::pow(static_cast<double>(MaxDeg + 1) / MinDeg, U);
    else
      K = std::pow(LoPow + U * (HiPow - LoPow), 1.0 / OneMinusExp);
    index_t Deg = std::clamp(static_cast<index_t>(K), MinDeg, MaxDeg);
    sampleDistinctColumns(N, Deg, Rng, RowCols);
    for (index_t Col : RowCols)
      B.add(Row, Col, 1.0);
  }
  return B.build();
}

CsrMatrix<double> smat::barabasiAlbert(index_t N, index_t EdgesPerNode,
                                       std::uint64_t Seed) {
  assert(EdgesPerNode >= 1 && N > EdgesPerNode && "bad BA parameters");
  Rng Rng(Seed);
  // Target list implements preferential attachment: every endpoint of every
  // edge appears once, so sampling uniformly from it is degree-proportional.
  std::vector<index_t> Endpoints;
  std::vector<index_t> SrcRows, SrcCols;
  auto AddEdge = [&](index_t U, index_t V) {
    SrcRows.push_back(U);
    SrcCols.push_back(V);
    SrcRows.push_back(V);
    SrcCols.push_back(U);
    Endpoints.push_back(U);
    Endpoints.push_back(V);
  };
  // Seed clique over the first EdgesPerNode + 1 vertices.
  for (index_t U = 0; U <= EdgesPerNode; ++U)
    for (index_t V = U + 1; V <= EdgesPerNode; ++V)
      AddEdge(U, V);
  for (index_t U = EdgesPerNode + 1; U < N; ++U) {
    std::unordered_set<index_t> Chosen;
    while (static_cast<index_t>(Chosen.size()) < EdgesPerNode) {
      index_t V = Endpoints[Rng.bounded(Endpoints.size())];
      if (V != U)
        Chosen.insert(V);
    }
    for (index_t V : Chosen)
      AddEdge(U, V);
  }
  std::vector<double> Vals(SrcRows.size(), 1.0);
  return csrFromTriplets<double>(N, N, std::move(SrcRows), std::move(SrcCols),
                                 std::move(Vals));
}

CsrMatrix<double> smat::blockFem(index_t NumBlocks, index_t BlockSize,
                                 double CouplingPerRow, std::uint64_t Seed) {
  Rng Rng(Seed);
  index_t N = NumBlocks * BlockSize;
  TripletBuilder B(N, N);
  for (index_t Block = 0; Block < NumBlocks; ++Block) {
    index_t Base = Block * BlockSize;
    for (index_t I = 0; I < BlockSize; ++I)
      for (index_t J = 0; J < BlockSize; ++J)
        B.add(Base + I, Base + J,
              I == J ? static_cast<double>(BlockSize) : Rng.uniform(-1, 1));
  }
  // Sparse random coupling between blocks.
  std::int64_t Couplings =
      static_cast<std::int64_t>(CouplingPerRow * static_cast<double>(N));
  for (std::int64_t K = 0; K < Couplings; ++K) {
    index_t Row = static_cast<index_t>(Rng.bounded(N));
    index_t Col = static_cast<index_t>(Rng.bounded(N));
    if (Row / BlockSize != Col / BlockSize)
      B.add(Row, Col, Rng.uniform(-0.1, 0.1));
  }
  return B.build();
}

CsrMatrix<double> smat::circuitLike(index_t N, index_t NumDenseRows,
                                    double DenseRowFill, std::uint64_t Seed) {
  Rng Rng(Seed);
  TripletBuilder B(N, N);
  for (index_t Row = 0; Row < N; ++Row) {
    B.add(Row, Row, 4.0);
    // A couple of near-diagonal couplings.
    if (Row + 1 < N && Rng.uniform() < 0.6)
      B.add(Row, Row + 1, -1.0);
    if (Row > 0 && Rng.uniform() < 0.6)
      B.add(Row, Row - 1, -1.0);
  }
  std::vector<index_t> RowCols;
  for (index_t K = 0; K < NumDenseRows; ++K) {
    index_t Row = static_cast<index_t>(Rng.bounded(N));
    index_t Deg = std::max<index_t>(
        2, static_cast<index_t>(DenseRowFill * static_cast<double>(N)));
    Deg = std::min(Deg, N);
    sampleDistinctColumns(N, Deg, Rng, RowCols);
    for (index_t Col : RowCols) {
      B.add(Row, Col, Rng.uniform(-1.0, 1.0)); // dense row
      B.add(Col, Row, Rng.uniform(-1.0, 1.0)); // dense column
    }
  }
  return B.build();
}

CsrMatrix<double> smat::lpRectangular(index_t Rows, index_t Cols, index_t Deg,
                                      std::uint64_t Seed) {
  Rng Rng(Seed);
  TripletBuilder B(Rows, Cols);
  std::vector<index_t> RowCols;
  index_t Effective = std::min(Deg, Cols);
  for (index_t Row = 0; Row < Rows; ++Row) {
    sampleDistinctColumns(Cols, Effective, Rng, RowCols);
    for (index_t Col : RowCols)
      B.add(Row, Col, Rng.uniform() < 0.5 ? 1.0 : -1.0);
  }
  return B.build();
}

CsrMatrix<double> smat::transferOperator(index_t FineRows, index_t Ratio,
                                         std::uint64_t Seed) {
  assert(Ratio >= 2 && "transfer operator needs a coarsening ratio >= 2");
  Rng Rng(Seed);
  index_t CoarseCols = std::max<index_t>(1, FineRows / Ratio);
  TripletBuilder B(FineRows, CoarseCols);
  for (index_t Row = 0; Row < FineRows; ++Row) {
    index_t Home = std::min<index_t>(CoarseCols - 1, Row / Ratio);
    if (Row % Ratio == 0) {
      // C point: injection.
      B.add(Row, Home, 1.0);
      continue;
    }
    // F point: 2-4 interpolation weights on nearby coarse points.
    index_t Deg = static_cast<index_t>(Rng.range(2, 4));
    for (index_t K = 0; K < Deg; ++K) {
      index_t Col = Home + static_cast<index_t>(Rng.range(-1, 1));
      Col = std::clamp<index_t>(Col, 0, CoarseCols - 1);
      B.add(Row, Col, Rng.uniform(0.1, 0.5));
    }
  }
  return B.build();
}

CsrMatrix<double> smat::spikedRows(index_t N, index_t BaseDeg, index_t SpikeDeg,
                                   double SpikeFraction, std::uint64_t Seed) {
  Rng Rng(Seed);
  TripletBuilder B(N, N);
  std::vector<index_t> RowCols;
  for (index_t Row = 0; Row < N; ++Row) {
    index_t Deg = Rng.uniform() < SpikeFraction ? SpikeDeg : BaseDeg;
    Deg = std::min(Deg, N);
    sampleDistinctColumns(N, Deg, Rng, RowCols);
    for (index_t Col : RowCols)
      B.add(Row, Col, Rng.uniform(-1.0, 1.0));
  }
  return B.build();
}

void smat::randomizeValues(CsrMatrix<double> &A, std::uint64_t Seed) {
  Rng Rng(Seed);
  for (double &Val : A.Values)
    Val = Rng.uniform(-1.0, 1.0);
}
