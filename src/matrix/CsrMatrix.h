//===- matrix/CsrMatrix.h - Compressed sparse row matrix --------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSR (compressed sparse row) storage: the unified input format of SMAT
/// (paper Figure 2a). "RowPtr" stores the beginning position of each row in
/// "ColIdx"/"Values".
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_CSRMATRIX_H
#define SMAT_MATRIX_CSRMATRIX_H

#include "matrix/Format.h"
#include "support/AlignedAlloc.h"

#include <cassert>
#include <cstdint>

namespace smat {

/// A sparse matrix in CSR format with \p T-typed values.
///
/// Invariants (checked by isValid()): RowPtr has NumRows+1 monotonically
/// non-decreasing entries starting at 0; ColIdx/Values have RowPtr.back()
/// entries; all column indices lie in [0, NumCols). Column indices within a
/// row are expected (and produced by all builders here) in ascending order.
template <typename T> struct CsrMatrix {
  index_t NumRows = 0;
  index_t NumCols = 0;
  AlignedVector<index_t> RowPtr; ///< Size NumRows + 1.
  AlignedVector<index_t> ColIdx; ///< Size nnz().
  AlignedVector<T> Values;       ///< Size nnz().

  CsrMatrix() = default;

  /// Creates an empty matrix with the given shape (all-zero rows).
  CsrMatrix(index_t Rows, index_t Cols)
      : NumRows(Rows), NumCols(Cols),
        RowPtr(static_cast<std::size_t>(Rows) + 1, 0) {
    assert(Rows >= 0 && Cols >= 0 && "negative matrix dimension");
  }

  /// \returns the number of stored nonzero entries.
  std::int64_t nnz() const {
    return RowPtr.empty() ? 0 : static_cast<std::int64_t>(RowPtr.back());
  }

  /// \returns the number of stored entries in row \p Row.
  index_t rowDegree(index_t Row) const {
    assert(Row >= 0 && Row < NumRows && "row out of range");
    return RowPtr[Row + 1] - RowPtr[Row];
  }

  /// Structural validity check; O(nnz).
  bool isValid() const {
    if (NumRows < 0 || NumCols < 0)
      return false;
    if (RowPtr.size() != static_cast<std::size_t>(NumRows) + 1)
      return false;
    if (!RowPtr.empty() && RowPtr.front() != 0)
      return false;
    for (index_t Row = 0; Row < NumRows; ++Row)
      if (RowPtr[Row] > RowPtr[Row + 1])
        return false;
    std::size_t Nnz = RowPtr.empty() ? 0 : static_cast<std::size_t>(RowPtr.back());
    if (ColIdx.size() != Nnz || Values.size() != Nnz)
      return false;
    for (index_t Col : ColIdx)
      if (Col < 0 || Col >= NumCols)
        return false;
    return true;
  }

  /// \returns true when column indices are strictly ascending in every row.
  bool hasSortedRows() const {
    for (index_t Row = 0; Row < NumRows; ++Row)
      for (index_t I = RowPtr[Row] + 1; I < RowPtr[Row + 1]; ++I)
        if (ColIdx[I - 1] >= ColIdx[I])
          return false;
    return true;
  }

  /// \returns the stored value at (Row, Col), or zero if not stored.
  /// O(rowDegree); intended for tests and small matrices.
  T at(index_t Row, index_t Col) const {
    assert(Row >= 0 && Row < NumRows && Col >= 0 && Col < NumCols &&
           "index out of range");
    for (index_t I = RowPtr[Row]; I < RowPtr[Row + 1]; ++I)
      if (ColIdx[I] == Col)
        return Values[I];
    return T(0);
  }
};

} // namespace smat

#endif // SMAT_MATRIX_CSRMATRIX_H
