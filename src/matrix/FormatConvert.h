//===- matrix/FormatConvert.h - Conversions between formats -----*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conversions between the four basic storage formats. CSR is the canonical
/// source format (it is SMAT's unified interface); DIA and ELL conversions
/// take explicit fill guards because their zero-padding can explode memory
/// for unsuitable structures — the paper's runtime only attempts them when
/// the fill stays sane.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_FORMATCONVERT_H
#define SMAT_MATRIX_FORMATCONVERT_H

#include "matrix/BsrMatrix.h"
#include "matrix/CooMatrix.h"
#include "matrix/CsrMatrix.h"
#include "matrix/DiaMatrix.h"
#include "matrix/EllMatrix.h"
#include "matrix/Validate.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace smat {

/// Default guards used by the runtime when considering a DIA or ELL
/// conversion: stored elements (incl. padding) may not exceed
/// DefaultMaxFillRatio * nnz, and DIA may not need more than
/// DefaultMaxDiags diagonals.
inline constexpr double DefaultMaxFillRatio = 20.0;
inline constexpr index_t DefaultMaxDiags = 1024;

/// Absolute ceiling on the padded element count any conversion may
/// allocate, applied even when the relative fill guards are disabled: a
/// hostile structure whose Ndiags*M (or Width*M, or Blocks*b^2) product
/// explodes must be rejected — the runtime then binds as CSR — instead of
/// attempting a multi-terabyte allocation.
inline constexpr std::int64_t MaxConvertedElements = std::int64_t(1) << 31;

/// Nonzero count below which the converters stay serial: forking a team for
/// a matrix this small costs more than the scan itself, and the serial path
/// keeps small-matrix conversions bit-for-bit reproducible across thread
/// counts (plan-cache fingerprints hash converted features).
inline constexpr std::int64_t ParallelConvertGrain = std::int64_t(1) << 15;

/// Builds a CSR matrix from (possibly unsorted, possibly duplicated)
/// triplets. Duplicate coordinates are summed, matching MatrixMarket
/// semantics.
template <typename T>
CsrMatrix<T> csrFromTriplets(index_t NumRows, index_t NumCols,
                             std::vector<index_t> Rows,
                             std::vector<index_t> Cols, std::vector<T> Vals) {
  assert(Rows.size() == Cols.size() && Rows.size() == Vals.size() &&
         "triplet arrays must have equal length");

  std::vector<std::size_t> Order(Rows.size());
  std::iota(Order.begin(), Order.end(), std::size_t{0});
  std::sort(Order.begin(), Order.end(), [&](std::size_t A, std::size_t B) {
    if (Rows[A] != Rows[B])
      return Rows[A] < Rows[B];
    return Cols[A] < Cols[B];
  });

  CsrMatrix<T> M(NumRows, NumCols);
  M.ColIdx.reserve(Rows.size());
  M.Values.reserve(Rows.size());
  index_t PrevRow = -1, PrevCol = -1;
  for (std::size_t K : Order) {
    index_t Row = Rows[K], Col = Cols[K];
    assert(Row >= 0 && Row < NumRows && Col >= 0 && Col < NumCols &&
           "triplet out of range");
    if (Row == PrevRow && Col == PrevCol) {
      M.Values.back() += Vals[K];
      continue;
    }
    M.ColIdx.push_back(Col);
    M.Values.push_back(Vals[K]);
    ++M.RowPtr[Row + 1];
    PrevRow = Row;
    PrevCol = Col;
  }
  for (index_t Row = 0; Row < NumRows; ++Row)
    M.RowPtr[Row + 1] += M.RowPtr[Row];
  return M;
}

/// CSR -> COO; entries come out with monotone (non-decreasing) row indices
/// by construction, so the threaded COO kernels' row-split precondition
/// holds for every COO matrix this function produces.
template <typename T> CooMatrix<T> csrToCoo(const CsrMatrix<T> &A) {
  assert(A.isValid() && "csrToCoo requires a structurally valid CSR matrix");
  fault::injectAllocFailure("convert.coo.alloc");
  CooMatrix<T> B;
  B.NumRows = A.NumRows;
  B.NumCols = A.NumCols;
  std::size_t Nnz = static_cast<std::size_t>(A.nnz());
  B.Rows.resize(Nnz);
  B.Cols.assign(A.ColIdx.begin(), A.ColIdx.end());
  B.Values.assign(A.Values.begin(), A.Values.end());
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      B.Rows[static_cast<std::size_t>(I)] = Row;
  return B;
}

/// COO -> CSR; sorts and sums duplicates. Precondition: \p A is valid
/// (asserted); untrusted COO goes through tryCooToCsr.
template <typename T> CsrMatrix<T> cooToCsr(const CooMatrix<T> &A) {
  assert(A.isValid() && "cooToCsr requires a structurally valid COO matrix");
  return csrFromTriplets<T>(
      A.NumRows, A.NumCols, std::vector<index_t>(A.Rows.begin(), A.Rows.end()),
      std::vector<index_t>(A.Cols.begin(), A.Cols.end()),
      std::vector<T>(A.Values.begin(), A.Values.end()));
}

/// Validating COO -> CSR for untrusted input: \returns the converted matrix,
/// or the diagnostic naming the violated COO invariant.
template <typename T> Expected<CsrMatrix<T>> tryCooToCsr(const CooMatrix<T> &A) {
  if (Status S = validateCoo(A); !S.ok())
    return S;
  return cooToCsr(A);
}

/// Validating triplet builder for untrusted input: \returns the CSR matrix,
/// or the diagnostic naming the offending triplet.
template <typename T>
Expected<CsrMatrix<T>>
tryCsrFromTriplets(index_t NumRows, index_t NumCols, std::vector<index_t> Rows,
                   std::vector<index_t> Cols, std::vector<T> Vals) {
  if (Status S = validateTriplets(NumRows, NumCols, Rows, Cols, Vals); !S.ok())
    return S;
  return csrFromTriplets<T>(NumRows, NumCols, std::move(Rows), std::move(Cols),
                            std::move(Vals));
}

/// Sorts \p A into canonical row-major order in place (stable within equal
/// coordinates). Establishes the threaded kernels' precondition for COO that
/// arrived from outside the library's own builders.
template <typename T> void sortCooRowMajor(CooMatrix<T> &A) {
  if (A.isSortedRowMajor())
    return;
  std::vector<std::size_t> Order(A.Values.size());
  std::iota(Order.begin(), Order.end(), std::size_t{0});
  std::stable_sort(Order.begin(), Order.end(),
                   [&A](std::size_t I, std::size_t J) {
                     if (A.Rows[I] != A.Rows[J])
                       return A.Rows[I] < A.Rows[J];
                     return A.Cols[I] < A.Cols[J];
                   });
  CooMatrix<T> Sorted;
  Sorted.NumRows = A.NumRows;
  Sorted.NumCols = A.NumCols;
  Sorted.Rows.reserve(Order.size());
  Sorted.Cols.reserve(Order.size());
  Sorted.Values.reserve(Order.size());
  for (std::size_t K : Order) {
    Sorted.Rows.push_back(A.Rows[K]);
    Sorted.Cols.push_back(A.Cols[K]);
    Sorted.Values.push_back(A.Values[K]);
  }
  A = std::move(Sorted);
}

/// CSR -> DIA.
///
/// \param MaxFillRatio reject when padded storage exceeds this multiple of
/// nnz (values <= 0 disable the guard).
/// \param MaxDiags reject when more than this many diagonals are occupied
/// (values <= 0 disable the guard).
/// \returns true and fills \p B on success; false when a guard rejects.
template <typename T>
bool csrToDia(const CsrMatrix<T> &A, DiaMatrix<T> &B,
              double MaxFillRatio = DefaultMaxFillRatio,
              index_t MaxDiags = DefaultMaxDiags) {
  if (!A.isValid())
    return false;
  // Mark the occupied diagonals. Offset index Col - Row + (NumRows - 1) is in
  // [0, NumRows + NumCols - 2]. Threads may mark the same diagonal; the
  // atomic write keeps the racing stores of the same value well-defined.
  std::vector<char> Occupied(
      static_cast<std::size_t>(A.NumRows) + A.NumCols, 0);
  if (A.nnz() <= ParallelConvertGrain) {
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
        Occupied[static_cast<std::size_t>(A.ColIdx[I]) - Row + A.NumRows - 1] =
            1;
  } else {
#pragma omp parallel for schedule(static)
    for (index_t Row = 0; Row < A.NumRows; ++Row)
      for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
        char &Flag =
            Occupied[static_cast<std::size_t>(A.ColIdx[I]) - Row + A.NumRows -
                     1];
#pragma omp atomic write
        Flag = 1;
      }
  }

  index_t NumDiags = 0;
  for (char Flag : Occupied)
    NumDiags += Flag;
  if (MaxDiags > 0 && NumDiags > MaxDiags)
    return false;
  if (static_cast<std::int64_t>(NumDiags) * A.NumRows > MaxConvertedElements)
    return false;
  double Stored = static_cast<double>(NumDiags) * A.NumRows;
  if (MaxFillRatio > 0 && A.nnz() > 0 &&
      Stored > MaxFillRatio * static_cast<double>(A.nnz()))
    return false;
  if (fault::injectFailure("convert.dia.cap"))
    return false;
  fault::injectAllocFailure("convert.dia.alloc");

  B = DiaMatrix<T>();
  B.NumRows = A.NumRows;
  B.NumCols = A.NumCols;
  B.TrueNnz = A.nnz();
  B.Offsets.reserve(NumDiags);
  // Map offset index -> dense diagonal slot.
  std::vector<index_t> Slot(Occupied.size(), -1);
  for (std::size_t I = 0; I != Occupied.size(); ++I) {
    if (!Occupied[I])
      continue;
    Slot[I] = B.numDiags();
    B.Offsets.push_back(static_cast<index_t>(I) - (A.NumRows - 1));
  }
  B.Data.assign(static_cast<std::size_t>(NumDiags) *
                    static_cast<std::size_t>(A.NumRows),
                T(0));
  // Scatter fill: each entry owns a distinct (diagonal, row) slot, so rows
  // can be processed concurrently without synchronization.
#pragma omp parallel for schedule(static) if (A.nnz() > ParallelConvertGrain)
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
      index_t D = Slot[static_cast<std::size_t>(A.ColIdx[I]) - Row +
                       A.NumRows - 1];
      B.Data[static_cast<std::size_t>(D) * A.NumRows + Row] = A.Values[I];
    }
  return true;
}

/// CSR -> ELL.
///
/// \param MaxFillRatio reject when padded storage exceeds this multiple of
/// nnz (values <= 0 disable the guard).
/// \returns true and fills \p B on success; false when the guard rejects.
template <typename T>
bool csrToEll(const CsrMatrix<T> &A, EllMatrix<T> &B,
              double MaxFillRatio = DefaultMaxFillRatio) {
  if (!A.isValid())
    return false;
  index_t Width = 0;
#pragma omp parallel for schedule(static) reduction(max : Width)             \
    if (A.nnz() > ParallelConvertGrain)
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    Width = std::max(Width, A.rowDegree(Row));
  if (static_cast<std::int64_t>(Width) * A.NumRows > MaxConvertedElements)
    return false;
  double Stored = static_cast<double>(Width) * A.NumRows;
  if (MaxFillRatio > 0 && A.nnz() > 0 &&
      Stored > MaxFillRatio * static_cast<double>(A.nnz()))
    return false;
  if (fault::injectFailure("convert.ell.cap"))
    return false;
  fault::injectAllocFailure("convert.ell.alloc");

  B = EllMatrix<T>();
  B.NumRows = A.NumRows;
  B.NumCols = A.NumCols;
  B.Width = Width;
  B.TrueNnz = A.nnz();
  std::size_t Elements = static_cast<std::size_t>(Width) *
                         static_cast<std::size_t>(A.NumRows);
  B.Indices.assign(Elements, 0);
  B.Data.assign(Elements, T(0));
  B.RowLen.resize(static_cast<std::size_t>(A.NumRows));
  // Rows write disjoint column-major slots, so the packing loop is safely
  // row-parallel.
#pragma omp parallel for schedule(static) if (A.nnz() > ParallelConvertGrain)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    B.RowLen[static_cast<std::size_t>(Row)] = A.rowDegree(Row);
    index_t Packed = 0;
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I, ++Packed) {
      std::size_t Dst =
          static_cast<std::size_t>(Packed) * A.NumRows + Row;
      B.Indices[Dst] = A.ColIdx[I];
      B.Data[Dst] = A.Values[I];
    }
  }
  return true;
}

/// DIA -> CSR; padding zeros are dropped (exact zero test, which is correct
/// because the converter wrote exact zeros).
template <typename T> CsrMatrix<T> diaToCsr(const DiaMatrix<T> &A) {
  std::vector<index_t> Rows, Cols;
  std::vector<T> Vals;
  for (index_t D = 0; D < A.numDiags(); ++D) {
    index_t Offset = A.Offsets[D];
    index_t RowBegin = std::max(index_t(0), -Offset);
    index_t RowEnd =
        std::min(A.NumRows, A.NumCols - Offset);
    for (index_t Row = RowBegin; Row < RowEnd; ++Row) {
      T Val = A.Data[static_cast<std::size_t>(D) * A.NumRows + Row];
      if (Val == T(0))
        continue;
      Rows.push_back(Row);
      Cols.push_back(Row + Offset);
      Vals.push_back(Val);
    }
  }
  return csrFromTriplets<T>(A.NumRows, A.NumCols, std::move(Rows),
                            std::move(Cols), std::move(Vals));
}

/// ELL -> CSR; padding (zero value) entries are dropped.
template <typename T> CsrMatrix<T> ellToCsr(const EllMatrix<T> &A) {
  std::vector<index_t> Rows, Cols;
  std::vector<T> Vals;
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t C = 0; C < A.Width; ++C) {
      std::size_t I = static_cast<std::size_t>(C) * A.NumRows + Row;
      if (A.Data[I] == T(0))
        continue;
      Rows.push_back(Row);
      Cols.push_back(A.Indices[I]);
      Vals.push_back(A.Data[I]);
    }
  return csrFromTriplets<T>(A.NumRows, A.NumCols, std::move(Rows),
                            std::move(Cols), std::move(Vals));
}

/// Counts the occupied BlockSize x BlockSize tiles of \p A; the basis of
/// the OSKI-style block-size choice and the ER_BSR feature.
template <typename T>
std::int64_t countOccupiedBlocks(const CsrMatrix<T> &A, index_t BlockSize) {
  assert(BlockSize >= 1 && "block size must be positive");
  index_t BlockCols = (A.NumCols + BlockSize - 1) / BlockSize;
  index_t BlockRows = (A.NumRows + BlockSize - 1) / BlockSize;
  std::int64_t Occupied = 0;
  // Block rows are independent, so each thread dedups with a private marker
  // array (stamped with the block row id) and the counts reduce at the end.
#pragma omp parallel if (A.nnz() > ParallelConvertGrain)
  {
    std::vector<index_t> Stamp(static_cast<std::size_t>(BlockCols), -1);
#pragma omp for schedule(static) reduction(+ : Occupied)
    for (index_t Br = 0; Br < BlockRows; ++Br) {
      index_t RowEnd = std::min(A.NumRows, (Br + 1) * BlockSize);
      for (index_t Row = Br * BlockSize; Row < RowEnd; ++Row)
        for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
          index_t Bc = A.ColIdx[I] / BlockSize;
          if (Stamp[static_cast<std::size_t>(Bc)] != Br) {
            Stamp[static_cast<std::size_t>(Bc)] = Br;
            ++Occupied;
          }
        }
    }
  }
  return Occupied;
}

/// OSKI-style block-size selection: among \p Candidates, picks the block
/// size with the smallest padded storage (fill), requiring the fill ratio
/// (stored / nnz) to stay at or below \p MaxFillRatio. \returns 0 when no
/// candidate qualifies.
template <typename T>
index_t chooseBsrBlockSize(const CsrMatrix<T> &A,
                           std::initializer_list<index_t> Candidates = {8, 4,
                                                                        2},
                           double MaxFillRatio = 1.5) {
  if (A.nnz() == 0)
    return 0;
  index_t Best = 0;
  double BestStored = 0;
  for (index_t B : Candidates) {
    double Stored = static_cast<double>(countOccupiedBlocks(A, B)) *
                    static_cast<double>(B) * static_cast<double>(B);
    if (Stored > MaxFillRatio * static_cast<double>(A.nnz()))
      continue;
    if (Best == 0 || Stored < BestStored ||
        (Stored == BestStored && B > Best)) {
      Best = B;
      BestStored = Stored;
    }
  }
  return Best;
}

/// CSR -> BSR with the given block size.
///
/// \param MaxFillRatio reject when padded storage exceeds this multiple of
/// nnz (values <= 0 disable the guard). BSR's guard default is much
/// stricter than DIA/ELL's because its padding also bloats the *flop*
/// count, not just storage.
/// \returns true and fills \p B on success; false when the guard rejects.
template <typename T>
bool csrToBsr(const CsrMatrix<T> &A, BsrMatrix<T> &B, index_t BlockSize,
              double MaxFillRatio = 1.5) {
  if (BlockSize < 1 || !A.isValid())
    return false;
  std::int64_t Blocks = countOccupiedBlocks(A, BlockSize);
  std::int64_t BlockElems = static_cast<std::int64_t>(BlockSize) * BlockSize;
  if (BlockElems > MaxConvertedElements ||
      Blocks > MaxConvertedElements / BlockElems)
    return false;
  double Stored = static_cast<double>(Blocks) *
                  static_cast<double>(BlockSize) *
                  static_cast<double>(BlockSize);
  if (MaxFillRatio > 0 && A.nnz() > 0 &&
      Stored > MaxFillRatio * static_cast<double>(A.nnz()))
    return false;
  if (fault::injectFailure("convert.bsr.cap"))
    return false;
  fault::injectAllocFailure("convert.bsr.alloc");

  B = BsrMatrix<T>();
  B.NumRows = A.NumRows;
  B.NumCols = A.NumCols;
  B.BlockSize = BlockSize;
  B.TrueNnz = A.nnz();
  index_t BlockRows = B.numBlockRows();
  index_t BlockCols = B.numBlockCols();
  B.RowPtr.assign(static_cast<std::size_t>(BlockRows) + 1, 0);
  B.ColIdx.reserve(static_cast<std::size_t>(Blocks));
  B.Values.assign(static_cast<std::size_t>(Blocks) *
                      static_cast<std::size_t>(BlockSize) *
                      static_cast<std::size_t>(BlockSize),
                  T(0));

  // Pass 1 (serial): discover the sorted block pattern per block row; the
  // cumulative RowPtr/ColIdx emission is inherently sequential.
  std::vector<index_t> Slot(static_cast<std::size_t>(BlockCols), -1);
  std::vector<index_t> Pattern;
  for (index_t Br = 0; Br < BlockRows; ++Br) {
    Pattern.clear();
    index_t RowEnd = std::min(A.NumRows, (Br + 1) * BlockSize);
    for (index_t Row = Br * BlockSize; Row < RowEnd; ++Row)
      for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
        index_t Bc = A.ColIdx[I] / BlockSize;
        if (Slot[static_cast<std::size_t>(Bc)] != Br) {
          Slot[static_cast<std::size_t>(Bc)] = Br;
          Pattern.push_back(Bc);
        }
      }
    std::sort(Pattern.begin(), Pattern.end());
    for (index_t Bc : Pattern)
      B.ColIdx.push_back(Bc);
    B.RowPtr[Br + 1] = static_cast<index_t>(B.ColIdx.size());
  }

  // Pass 2 (parallel): scatter the values. A block row's blocks occupy a
  // disjoint Values slice, so block rows fill concurrently; the dense block
  // of an entry is found by binary search in the sorted per-row pattern.
#pragma omp parallel for schedule(dynamic, 64)                               \
    if (A.nnz() > ParallelConvertGrain)
  for (index_t Br = 0; Br < BlockRows; ++Br) {
    const index_t *First = B.ColIdx.data() + B.RowPtr[Br];
    const index_t *Last = B.ColIdx.data() + B.RowPtr[Br + 1];
    index_t RowEnd = std::min(A.NumRows, (Br + 1) * BlockSize);
    for (index_t Row = Br * BlockSize; Row < RowEnd; ++Row) {
      index_t LocalRow = Row - Br * BlockSize;
      for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
        index_t Bc = A.ColIdx[I] / BlockSize;
        const index_t *It = std::lower_bound(First, Last, Bc);
        assert(It != Last && *It == Bc && "pattern mismatch");
        std::size_t Block =
            static_cast<std::size_t>(B.RowPtr[Br]) +
            static_cast<std::size_t>(It - First);
        index_t LocalCol = A.ColIdx[I] - Bc * BlockSize;
        B.Values[Block * BlockSize * BlockSize +
                 static_cast<std::size_t>(LocalRow) * BlockSize + LocalCol] =
            A.Values[I];
      }
    }
  }
  return true;
}

/// BSR -> CSR; block-padding zeros are dropped.
template <typename T> CsrMatrix<T> bsrToCsr(const BsrMatrix<T> &A) {
  std::vector<index_t> Rows, Cols;
  std::vector<T> Vals;
  index_t B = A.BlockSize;
  for (index_t Br = 0; Br < A.numBlockRows(); ++Br)
    for (index_t I = A.RowPtr[Br]; I < A.RowPtr[Br + 1]; ++I) {
      index_t Bc = A.ColIdx[I];
      const T *Block =
          A.Values.data() + static_cast<std::size_t>(I) * B * B;
      for (index_t R = 0; R < B; ++R)
        for (index_t C = 0; C < B; ++C) {
          T Val = Block[R * B + C];
          if (Val == T(0))
            continue;
          index_t Row = Br * B + R, Col = Bc * B + C;
          assert(Row < A.NumRows && Col < A.NumCols &&
                 "padding must be zero outside the matrix");
          Rows.push_back(Row);
          Cols.push_back(Col);
          Vals.push_back(Val);
        }
    }
  return csrFromTriplets<T>(A.NumRows, A.NumCols, std::move(Rows),
                            std::move(Cols), std::move(Vals));
}

/// \returns A^T in CSR format (used by AMG's Galerkin product and by the
/// rectangular corpus generators).
template <typename T> CsrMatrix<T> transposeCsr(const CsrMatrix<T> &A) {
  CsrMatrix<T> B(A.NumCols, A.NumRows);
  std::size_t Nnz = static_cast<std::size_t>(A.nnz());
  B.ColIdx.resize(Nnz);
  B.Values.resize(Nnz);
  // Count per-column entries.
  for (index_t Col : A.ColIdx)
    ++B.RowPtr[Col + 1];
  for (index_t Col = 0; Col < A.NumCols; ++Col)
    B.RowPtr[Col + 1] += B.RowPtr[Col];
  std::vector<index_t> Cursor(B.RowPtr.begin(), B.RowPtr.end() - 1);
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
      index_t Dst = Cursor[A.ColIdx[I]]++;
      B.ColIdx[Dst] = Row;
      B.Values[Dst] = A.Values[I];
    }
  return B;
}

/// Converts a CSR matrix between value types (e.g. double -> float for the
/// single-precision experiments).
template <typename Dst, typename Src>
CsrMatrix<Dst> convertValueType(const CsrMatrix<Src> &A) {
  CsrMatrix<Dst> B;
  B.NumRows = A.NumRows;
  B.NumCols = A.NumCols;
  B.RowPtr.assign(A.RowPtr.begin(), A.RowPtr.end());
  B.ColIdx.assign(A.ColIdx.begin(), A.ColIdx.end());
  B.Values.assign(A.Values.begin(), A.Values.end());
  return B;
}

} // namespace smat

#endif // SMAT_MATRIX_FORMATCONVERT_H
