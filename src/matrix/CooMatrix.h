//===- matrix/CooMatrix.h - Coordinate format matrix ------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// COO (coordinate) storage: explicit row and column index per nonzero
/// (paper Figure 2b). The paper notes COO usually wins on large scale-free
/// graph matrices.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_COOMATRIX_H
#define SMAT_MATRIX_COOMATRIX_H

#include "matrix/Format.h"
#include "support/AlignedAlloc.h"

#include <cassert>
#include <cstdint>

namespace smat {

/// A sparse matrix in COO format. Entries are kept in row-major order (rows
/// ascending, columns ascending within a row) by every builder in this
/// library; kernels that need that property assert it in tests.
template <typename T> struct CooMatrix {
  index_t NumRows = 0;
  index_t NumCols = 0;
  AlignedVector<index_t> Rows;
  AlignedVector<index_t> Cols;
  AlignedVector<T> Values;

  /// \returns the number of stored nonzero entries.
  std::int64_t nnz() const { return static_cast<std::int64_t>(Values.size()); }

  /// Structural validity check; O(nnz).
  bool isValid() const {
    if (NumRows < 0 || NumCols < 0)
      return false;
    if (Rows.size() != Values.size() || Cols.size() != Values.size())
      return false;
    for (std::size_t I = 0; I != Rows.size(); ++I)
      if (Rows[I] < 0 || Rows[I] >= NumRows || Cols[I] < 0 ||
          Cols[I] >= NumCols)
        return false;
    return true;
  }

  /// \returns true when row indices are non-decreasing — the weaker
  /// precondition the row-split kernels need (column order within a row is
  /// irrelevant to them).
  bool hasMonotoneRows() const {
    for (std::size_t I = 1; I < Rows.size(); ++I)
      if (Rows[I - 1] > Rows[I])
        return false;
    return true;
  }

  /// \returns true when entries are sorted row-major with unique positions.
  bool isSortedRowMajor() const {
    for (std::size_t I = 1; I < Rows.size(); ++I) {
      if (Rows[I - 1] > Rows[I])
        return false;
      if (Rows[I - 1] == Rows[I] && Cols[I - 1] >= Cols[I])
        return false;
    }
    return true;
  }
};

} // namespace smat

#endif // SMAT_MATRIX_COOMATRIX_H
