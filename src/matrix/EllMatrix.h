//===- matrix/EllMatrix.h - ELLPACK format matrix ---------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ELL (ELLPACK) storage (paper Figure 2d): all nonzeros are packed towards
/// the left and the resulting dense NumRows x Width matrix is stored
/// column-major. Short rows are padded, which is what the ER_ELL and var_RD
/// features quantify.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_ELLMATRIX_H
#define SMAT_MATRIX_ELLMATRIX_H

#include "matrix/Format.h"
#include "support/AlignedAlloc.h"

#include <cassert>
#include <cstdint>

namespace smat {

/// A sparse matrix in ELL format.
///
/// Data layout matches the paper's kernel: the \p C-th packed entry of row
/// \p Row lives at Data[C * NumRows + Row] (column-major). Padding entries
/// store value 0 with column index 0, so they are numerically harmless.
template <typename T> struct EllMatrix {
  index_t NumRows = 0;
  index_t NumCols = 0;
  index_t Width = 0;              ///< max_RD: packed row length.
  std::int64_t TrueNnz = 0;       ///< Nonzeros before zero-fill.
  AlignedVector<index_t> Indices; ///< Size Width * NumRows, column-major.
  AlignedVector<T> Data;          ///< Size Width * NumRows, column-major.
  /// Optional per-row packed lengths (size NumRows, or empty). csrToEll
  /// fills it; hand-built ELL may leave it empty, in which case the sliced
  /// load-balanced kernels (PrecondRowLengths) are not eligible.
  AlignedVector<index_t> RowLen;

  /// \returns the number of *structural* nonzeros (excluding padding).
  std::int64_t nnz() const { return TrueNnz; }

  /// Whether the per-row length sidecar is present (PrecondRowLengths).
  bool hasRowLengths() const {
    return RowLen.size() == static_cast<std::size_t>(NumRows);
  }

  /// \returns total stored elements, padding included.
  std::int64_t storedElements() const {
    return static_cast<std::int64_t>(Width) * NumRows;
  }

  /// Structural validity check; O(stored elements).
  bool isValid() const {
    if (NumRows < 0 || NumCols < 0 || Width < 0 || TrueNnz < 0)
      return false;
    std::size_t Expected =
        static_cast<std::size_t>(Width) * static_cast<std::size_t>(NumRows);
    if (Indices.size() != Expected || Data.size() != Expected)
      return false;
    for (index_t Col : Indices)
      if (Col < 0 || Col >= NumCols)
        return false;
    // RowLen is optional, but when present it must cover every row and stay
    // within the packed width.
    if (!RowLen.empty()) {
      if (RowLen.size() != static_cast<std::size_t>(NumRows))
        return false;
      for (index_t Len : RowLen)
        if (Len < 0 || Len > Width)
          return false;
    }
    return true;
  }
};

} // namespace smat

#endif // SMAT_MATRIX_ELLMATRIX_H
