//===- matrix/Generators.h - Synthetic sparse matrix generators -*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized sparse matrix generators. These replace the UF sparse
/// matrix collection (see DESIGN.md, substitution table): each generator
/// exercises one of the structural axes SMAT's feature parameters measure —
/// diagonal density (DIA), bounded/regular row degree (ELL), power-law
/// degree distribution (COO), and irregular general structure (CSR).
///
/// All generators are deterministic given their seed.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_GENERATORS_H
#define SMAT_MATRIX_GENERATORS_H

#include "matrix/CsrMatrix.h"

#include <vector>

namespace smat {

/// 2D 5-point Laplacian on an Nx x Ny grid (N = Nx*Ny rows).
CsrMatrix<double> laplace2d5pt(index_t Nx, index_t Ny);

/// 2D 9-point Laplacian on an Nx x Ny grid (the paper's "9pt" AMG input).
CsrMatrix<double> laplace2d9pt(index_t Nx, index_t Ny);

/// 3D 7-point Laplacian on an Nx x Ny x Nz grid (the paper's "7pt" input).
CsrMatrix<double> laplace3d7pt(index_t Nx, index_t Ny, index_t Nz);

/// 3D 27-point Laplacian on an Nx x Ny x Nz grid.
CsrMatrix<double> laplace3d27pt(index_t Nx, index_t Ny, index_t Nz);

/// Tridiagonal matrix of dimension N.
CsrMatrix<double> tridiagonal(index_t N);

/// Dense band of half-width \p HalfBand around the main diagonal.
CsrMatrix<double> banded(index_t N, index_t HalfBand);

/// Fully-occupied ("true") diagonals at the given offsets; the ideal DIA
/// matrix. Offsets must be unique and in (-N, N).
CsrMatrix<double> multiDiagonal(index_t N, const std::vector<index_t> &Offsets);

/// Diagonals at the given offsets where each element is present with
/// probability \p Occupancy — produces matrices whose NTdiags_ratio and
/// ER_DIA degrade smoothly, the regime Figure 6(c) studies.
CsrMatrix<double> brokenDiagonals(index_t N,
                                  const std::vector<index_t> &Offsets,
                                  double Occupancy, std::uint64_t Seed);

/// Every row has a degree drawn uniformly from [MinDeg, MaxDeg] with
/// distinct random columns: low var_RD, ELL-friendly.
CsrMatrix<double> boundedDegreeRandom(index_t Rows, index_t Cols,
                                      index_t MinDeg, index_t MaxDeg,
                                      std::uint64_t Seed);

/// Erdős–Rényi-style random matrix with expected average degree \p AvgDeg.
CsrMatrix<double> erdosRenyi(index_t Rows, index_t Cols, double AvgDeg,
                             std::uint64_t Seed);

/// Scale-free matrix whose row degrees follow P(k) ~ k^-Exponent for
/// k in [MinDeg, MaxDeg] with uniformly random columns — the small-world
/// structure COO favors (paper Figure 6(e), exponent in [1, 4]).
CsrMatrix<double> powerLawGraph(index_t N, double Exponent, index_t MinDeg,
                                index_t MaxDeg, std::uint64_t Seed);

/// Barabási–Albert preferential-attachment graph (symmetrized adjacency);
/// \p EdgesPerNode new edges per added node.
CsrMatrix<double> barabasiAlbert(index_t N, index_t EdgesPerNode,
                                 std::uint64_t Seed);

/// Block-diagonal dense blocks plus random sparse coupling: FEM/structural
/// style matrices.
CsrMatrix<double> blockFem(index_t NumBlocks, index_t BlockSize,
                           double CouplingPerRow, std::uint64_t Seed);

/// Sparse diagonal plus a few dense rows and columns: circuit-simulation
/// style structure (high max_RD, high var_RD).
CsrMatrix<double> circuitLike(index_t N, index_t NumDenseRows,
                              double DenseRowFill, std::uint64_t Seed);

/// Tall rectangular constraint-matrix style structure (linear programming).
CsrMatrix<double> lpRectangular(index_t Rows, index_t Cols, index_t Deg,
                                std::uint64_t Seed);

/// AMG prolongation-operator structure: FineRows x (FineRows / Ratio) with
/// injection rows (a single unit entry) interleaved with interpolation
/// rows carrying 2-4 weights on nearby coarse points — the P matrices the
/// SMAT-in-AMG experiment tunes (its R operators are the transpose).
CsrMatrix<double> transferOperator(index_t FineRows, index_t Ratio,
                                   std::uint64_t Seed);

/// Mostly-uniform degree with a fraction of very heavy rows — stresses
/// var_RD without a power-law tail.
CsrMatrix<double> spikedRows(index_t N, index_t BaseDeg, index_t SpikeDeg,
                             double SpikeFraction, std::uint64_t Seed);

/// Random assignment of values in [-1, 1] to the pattern of \p A (in place).
/// Useful for turning pattern-style generators into numeric test inputs.
void randomizeValues(CsrMatrix<double> &A, std::uint64_t Seed);

} // namespace smat

#endif // SMAT_MATRIX_GENERATORS_H
