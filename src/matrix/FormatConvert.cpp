//===- matrix/FormatConvert.cpp - Conversions between formats -------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "matrix/FormatConvert.h"

#include "support/Str.h"

using namespace smat;

bool smat::parseFormatName(std::string_view Name, FormatKind &Kind) {
  if (equalsIgnoreCase(Name, "csr")) {
    Kind = FormatKind::CSR;
    return true;
  }
  if (equalsIgnoreCase(Name, "coo")) {
    Kind = FormatKind::COO;
    return true;
  }
  if (equalsIgnoreCase(Name, "dia")) {
    Kind = FormatKind::DIA;
    return true;
  }
  if (equalsIgnoreCase(Name, "ell")) {
    Kind = FormatKind::ELL;
    return true;
  }
  if (equalsIgnoreCase(Name, "bsr")) {
    Kind = FormatKind::BSR;
    return true;
  }
  return false;
}
