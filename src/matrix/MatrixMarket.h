//===- matrix/MatrixMarket.h - MatrixMarket file I/O ------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader/writer for the MatrixMarket coordinate format, the distribution
/// format of the UF sparse matrix collection the paper trains on. Supports
/// real / integer / pattern fields and general / symmetric / skew-symmetric
/// symmetries. Complex matrices are rejected, mirroring the paper's
/// exclusion of complex-valued inputs.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_MATRIXMARKET_H
#define SMAT_MATRIX_MATRIXMARKET_H

#include "matrix/CsrMatrix.h"
#include "support/Status.h"

#include <string>

namespace smat {

/// Result of a MatrixMarket read. Parse failures carry the 1-based line
/// number of the offending input line in the Error text.
struct MatrixMarketResult {
  bool Ok = false;
  ErrorCode Code = ErrorCode::Ok; ///< Failure classification when !Ok.
  std::string Error;              ///< Human-readable reason when !Ok.
  CsrMatrix<double> Matrix;
};

/// Parses MatrixMarket coordinate data from a string.
MatrixMarketResult readMatrixMarketString(const std::string &Text);

/// Reads a MatrixMarket file from disk.
MatrixMarketResult readMatrixMarketFile(const std::string &Path);

/// Serializes \p A as "matrix coordinate real general".
std::string writeMatrixMarketString(const CsrMatrix<double> &A);

/// Writes \p A to \p Path; \returns false on I/O failure.
bool writeMatrixMarketFile(const std::string &Path,
                           const CsrMatrix<double> &A);

} // namespace smat

#endif // SMAT_MATRIX_MATRIXMARKET_H
