//===- matrix/Corpus.cpp - Training/evaluation matrix corpus --------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Each domain family below mixes generator recipes so that the *measured*
// best-format distribution lands in the same regime as paper Table 1: CSR
// favored by the clear majority, COO owning scale-free graphs, DIA owning
// strongly diagonal structures, ELL owning regular bounded-degree rows.
// The labels themselves always come from measurement, never from the recipe.
//
//===----------------------------------------------------------------------===//

#include "matrix/Corpus.h"

#include "matrix/FormatConvert.h"
#include "matrix/Generators.h"
#include "support/Rng.h"
#include "support/Str.h"

#include <cmath>
#include <functional>

using namespace smat;

namespace {

/// A recipe draws one matrix given a per-entry RNG and a size multiplier.
using Recipe = std::function<CsrMatrix<double>(Rng &, double)>;

struct DomainSpec {
  const char *Name;
  std::vector<Recipe> Recipes;
};

index_t scaled(double Base, double Mult, index_t Lo = 64) {
  double V = Base * Mult;
  if (V < static_cast<double>(Lo))
    return Lo;
  return static_cast<index_t>(V);
}

std::vector<index_t> randomOffsets(Rng &Rng, index_t N, index_t Count) {
  std::vector<index_t> Offsets = {0};
  while (static_cast<index_t>(Offsets.size()) < Count) {
    index_t Off = static_cast<index_t>(Rng.range(-(N / 2), N / 2));
    bool Fresh = true;
    for (index_t Existing : Offsets)
      if (Existing == Off)
        Fresh = false;
    if (Fresh && Off > -N && Off < N)
      Offsets.push_back(Off);
  }
  std::sort(Offsets.begin(), Offsets.end());
  return Offsets;
}

std::uint64_t nextSeed(Rng &Rng) { return Rng(); }
// ---------------------------------------------------------------------------
// Calibrated recipe helpers. Each helper is named for the format its output
// *usually* measures fastest in on this class of machine (the label still
// always comes from measurement). Calibration data: bench_cache probes —
// CSR wins on high-variance/irregular rows; COO on low-degree scale-free
// graphs of 8k+ rows; DIA on true-diagonal structure; ELL on regular
// bounded-degree rows.
// ---------------------------------------------------------------------------

index_t atLeast(index_t Floor, index_t V) { return V < Floor ? Floor : V; }

Recipe csrSpiked(double BaseN, index_t DegLo, index_t DegHi) {
  return [=](Rng &R, double M) {
    index_t N = scaled(BaseN, M, 512);
    return spikedRows(N, static_cast<index_t>(R.range(DegLo, DegHi)),
                      std::max<index_t>(64, N / 8), R.uniform(0.01, 0.05),
                      nextSeed(R));
  };
}

Recipe csrCircuit(double BaseN) {
  return [=](Rng &R, double M) {
    return circuitLike(scaled(BaseN, M, 512),
                       static_cast<index_t>(R.range(2, 6)),
                       R.uniform(0.05, 0.2), nextSeed(R));
  };
}

/// Small scale-free graphs stay cache-resident, where CSR's row loop wins.
Recipe csrSmallGraph() {
  return [](Rng &R, double M) {
    return powerLawGraph(scaled(5000, M, 256), R.uniform(1.6, 3.0), 1, 32,
                         nextSeed(R));
  };
}

Recipe cooPowerLaw(double Exponent0, double Exponent1) {
  return [=](Rng &R, double M) {
    return powerLawGraph(atLeast(8000, scaled(60000, M)),
                         R.uniform(Exponent0, Exponent1), 1,
                         static_cast<index_t>(R.range(12, 48)), nextSeed(R));
  };
}

Recipe cooPreferentialAttachment() {
  return [](Rng &R, double M) {
    return barabasiAlbert(atLeast(8000, scaled(50000, M)),
                          static_cast<index_t>(R.range(2, 3)), nextSeed(R));
  };
}

Recipe cooSparseRandom() {
  return [](Rng &R, double M) {
    index_t N = atLeast(10000, scaled(60000, M));
    return erdosRenyi(N, N, R.uniform(1.5, 3.0), nextSeed(R));
  };
}

Recipe diaBanded(double BaseN) {
  return [=](Rng &R, double M) {
    return banded(scaled(BaseN, M, 512),
                  static_cast<index_t>(R.range(2, 16)));
  };
}

Recipe diaScattered(double BaseN) {
  return [=](Rng &R, double M) {
    index_t N = scaled(BaseN, M, 512);
    return multiDiagonal(
        N, randomOffsets(R, N, static_cast<index_t>(R.range(5, 15))));
  };
}

Recipe diaBroken(double BaseN, double OccLo, double OccHi) {
  return [=](Rng &R, double M) {
    index_t N = scaled(BaseN, M, 512);
    return brokenDiagonals(
        N, randomOffsets(R, N, static_cast<index_t>(R.range(5, 11))),
        R.uniform(OccLo, OccHi), nextSeed(R));
  };
}

Recipe diaStencil2d(bool NinePoint) {
  return [=](Rng &R, double M) {
    (void)R;
    index_t Side = scaled(120, std::sqrt(M), 16);
    return NinePoint ? laplace2d9pt(Side, Side) : laplace2d5pt(Side, Side);
  };
}

Recipe diaStencil3d(bool TwentySevenPoint) {
  return [=](Rng &R, double M) {
    (void)R;
    index_t Side = scaled(26, std::cbrt(M), 6);
    return TwentySevenPoint ? laplace3d27pt(Side, Side, Side)
                            : laplace3d7pt(Side, Side, Side);
  };
}

Recipe ellBounded(double BaseN, index_t DegLo, index_t DegHi) {
  return [=](Rng &R, double M) {
    index_t N = scaled(BaseN, M, 512);
    index_t Lo = static_cast<index_t>(R.range(DegLo, DegHi));
    return boundedDegreeRandom(N, N, Lo,
                               Lo + static_cast<index_t>(R.range(0, 2)),
                               nextSeed(R));
  };
}

Recipe ellRectangular(double BaseRows) {
  return [=](Rng &R, double M) {
    index_t Rows = scaled(BaseRows, M, 512);
    return lpRectangular(Rows, std::max<index_t>(64, Rows / 5),
                         static_cast<index_t>(R.range(3, 8)), nextSeed(R));
  };
}

Recipe ellBlockFem() {
  return [](Rng &R, double M) {
    return blockFem(scaled(300, M, 16), static_cast<index_t>(R.range(8, 24)),
                    R.uniform(0.5, 2.0), nextSeed(R));
  };
}

/// AMG transfer operators (P and its transpose R): the rectangular,
/// regular-row matrices the Table-4 experiment tunes inside the solver.
/// UF hosts plenty of such multigrid/graph-partitioning operators.
Recipe amgTransfer(bool Transposed) {
  return [=](Rng &R, double M) {
    CsrMatrix<double> P = transferOperator(
        scaled(60000, M, 2048), static_cast<index_t>(R.range(2, 4)),
        nextSeed(R));
    return Transposed ? transposeCsr(P) : P;
  };
}

/// The Table-1-style domain list. Each domain's recipe mix mirrors its row
/// of paper Table 1 (e.g. circuit simulation leans COO, materials splits
/// CSR/DIA, most domains lean CSR), so the measured whole-corpus
/// distribution lands near the paper's CSR 63% / COO 21% / DIA 9% / ELL 7%.
const std::vector<DomainSpec> &domainCatalog() {
  static const std::vector<DomainSpec> Catalog = [] {
    std::vector<DomainSpec> Domains;

    // Table 1: graph 334 = CSR 187 / COO 114 / DIA 6 / ELL 27.
    Domains.push_back({"graph",
                       {csrSmallGraph(), cooPowerLaw(1.8, 3.2),
                        csrSpiked(10000, 4, 12), cooPreferentialAttachment(),
                        csrCircuit(12000), ellBounded(8000, 2, 4)}});

    // linear programming 327 = CSR 267 / COO 52 / ELL 5.
    Domains.push_back({"linear_programming",
                       {csrSpiked(30000, 6, 20), csrSpiked(50000, 4, 10),
                        csrCircuit(12000), csrSpiked(20000, 10, 30),
                        cooSparseRandom()}});

    // structural 277 = CSR 224 / DIA 35 / COO 14 / ELL 4.
    Domains.push_back({"structural",
                       {csrSpiked(25000, 20, 60), csrSpiked(40000, 10, 40),
                        csrCircuit(9000), csrSpiked(30000, 30, 80),
                        diaBanded(12000)}});

    // combinatorial 266 = CSR 122 / COO 50 / ELL 84 / DIA 10.
    Domains.push_back({"combinatorial",
                       {csrSpiked(25000, 3, 8), cooPowerLaw(1.2, 2.2),
                        ellRectangular(20000), ellBounded(12000, 2, 4),
                        csrCircuit(8000)}});

    // circuit simulation 260 = CSR 110 / COO 149.
    Domains.push_back({"circuit_simulation",
                       {cooPowerLaw(2.0, 3.2), csrCircuit(12000),
                        cooSparseRandom(), csrCircuit(14000)}});

    // CFD 168 = CSR 110 / DIA 47 / COO 8 / ELL 3.
    Domains.push_back({"computational_fluid_dynamics",
                       {csrSpiked(35000, 15, 40), csrCircuit(10000),
                        csrSpiked(50000, 8, 24), diaStencil3d(false),
                        diaBroken(14000, 0.85, 1.0)}});

    // optimization 138 = CSR 113 / COO 15 / DIA 8 / ELL 2.
    Domains.push_back({"optimization",
                       {csrSpiked(25000, 5, 20), csrSpiked(40000, 8, 30),
                        csrCircuit(10000), csrSmallGraph(),
                        cooPowerLaw(2.0, 3.0)}});

    // 2D/3D 121 = CSR 64 / COO 21 / DIA 19 / ELL 17.
    Domains.push_back({"2d_3d",
                       {csrSpiked(30000, 6, 16), diaStencil2d(false),
                        ellBounded(14000, 3, 5), cooPowerLaw(2.2, 3.2),
                        csrCircuit(10000), amgTransfer(false),
                        amgTransfer(true)}});

    // economic 71 = CSR 67 / COO 4.
    Domains.push_back({"economic",
                       {csrSpiked(25000, 3, 12), csrCircuit(12000),
                        csrSpiked(40000, 4, 10)}});

    // chemical process 64 = CSR 47 / COO 14 / DIA 2 / ELL 1.
    Domains.push_back({"chemical_process",
                       {csrCircuit(9000), csrSpiked(20000, 4, 14),
                        csrSmallGraph(), cooSparseRandom()}});

    // power network 61 = CSR 45 / COO 15 / ELL 1.
    Domains.push_back({"power_network",
                       {csrCircuit(12000), csrSpiked(30000, 2, 6),
                        csrSmallGraph(), cooPowerLaw(2.4, 3.4)}});

    // model reduction 60 = CSR 29 / COO 34 / DIA 6 / ELL 1.
    Domains.push_back({"model_reduction",
                       {csrSpiked(25000, 8, 24), cooPowerLaw(1.6, 2.6),
                        diaBanded(10000), cooPreferentialAttachment()}});

    // theoretical/quantum chemistry 47 = CSR 21 / DIA 26.
    Domains.push_back({"quantum_chemistry",
                       {csrSpiked(20000, 20, 60), diaScattered(10000),
                        csrCircuit(8000), diaBanded(8000)}});

    // electromagnetics 33 = CSR 17 / DIA 12 / ELL 3 / COO 1.
    Domains.push_back({"electromagnetics",
                       {csrSpiked(25000, 10, 30), csrCircuit(9000),
                        diaBroken(12000, 0.9, 1.0), ellBlockFem()}});

    // semiconductor device 33 = CSR 28 / DIA 3 / COO 1 / ELL 1.
    Domains.push_back({"semiconductor_device",
                       {csrSpiked(30000, 5, 16), csrCircuit(12000),
                        csrSpiked(20000, 8, 20), diaStencil3d(false)}});

    // thermal 29 = CSR 19 / ELL 4 / DIA 3 / COO 3.
    Domains.push_back({"thermal",
                       {csrSpiked(25000, 6, 14), csrCircuit(10000),
                        diaStencil2d(true), ellBounded(10000, 5, 8)}});

    // materials 26 = CSR 12 / DIA 11 / COO 3.
    Domains.push_back({"materials",
                       {csrSpiked(25000, 15, 50), diaBanded(10000),
                        csrCircuit(8000), diaScattered(12000)}});

    // least squares 21 = CSR 10 / ELL 9 / COO 2.
    Domains.push_back({"least_squares",
                       {csrSpiked(25000, 4, 12), ellRectangular(16000),
                        csrCircuit(8000), ellBounded(10000, 4, 7)}});

    // computer graphics/vision 12 = CSR 8 / ELL 2 / COO 1 / DIA 1.
    Domains.push_back({"computer_graphics_vision",
                       {csrSpiked(20000, 5, 16), csrSmallGraph(),
                        ellBounded(12000, 5, 8)}});

    // statistical/mathematical 10 = ELL 4 / DIA 3 / CSR 2 / COO 1.
    Domains.push_back({"statistical_mathematical",
                       {ellBounded(8000, 3, 6), diaScattered(8000),
                        csrSpiked(20000, 3, 10), cooPowerLaw(2.0, 3.0)}});

    // counter-example 8 = COO 4 / CSR 3 / DIA 1.
    Domains.push_back({"counter_example",
                       {cooPowerLaw(1.2, 4.0), csrSmallGraph(),
                        diaBroken(8000, 0.6, 0.9)}});

    // acoustics 7 = CSR 5 / DIA 2.
    Domains.push_back({"acoustics",
                       {csrSpiked(25000, 8, 20), csrCircuit(8000),
                        diaBroken(10000, 0.7, 1.0)}});

    // robotics 3 = CSR 3.
    Domains.push_back({"robotics", {csrSpiked(15000, 4, 16)}});

    return Domains;
  }();
  return Catalog;
}

} // namespace

const std::vector<std::string> &smat::corpusDomains() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> Result;
    for (const DomainSpec &Domain : domainCatalog())
      Result.push_back(Domain.Name);
    return Result;
  }();
  return Names;
}

std::vector<CorpusEntry> smat::buildCorpus(CorpusScale Scale,
                                           std::uint64_t Seed) {
  int PerDomain = 2;
  double SizeMult = 0.08;
  switch (Scale) {
  case CorpusScale::Tiny:
    PerDomain = 2;
    SizeMult = 0.08;
    break;
  case CorpusScale::Small:
    PerDomain = 12;
    SizeMult = 0.25;
    break;
  case CorpusScale::Full:
    PerDomain = 93; // 23 domains * 93 = 2139 >= the paper's 2055 + 331 / 7.
    SizeMult = 0.25;
    break;
  }

  std::vector<CorpusEntry> Corpus;
  Rng Master(Seed);
  for (const DomainSpec &Domain : domainCatalog()) {
    for (int Rep = 0; Rep < PerDomain; ++Rep) {
      const Recipe &Make = Domain.Recipes[Rep % Domain.Recipes.size()];
      Rng EntryRng(Master());
      // Vary the size a bit so no two replicas are identical in shape.
      double Mult = SizeMult * EntryRng.uniform(0.5, 1.6);
      CorpusEntry Entry;
      Entry.Domain = Domain.Name;
      Entry.Name = formatString("%s_%03d", Domain.Name, Rep);
      Entry.Matrix = Make(EntryRng, Mult);
      Corpus.push_back(std::move(Entry));
    }
  }
  return Corpus;
}

void smat::splitCorpus(const std::vector<CorpusEntry> &Corpus,
                       std::vector<const CorpusEntry *> &Training,
                       std::vector<const CorpusEntry *> &Evaluation) {
  Training.clear();
  Evaluation.clear();
  for (std::size_t I = 0; I != Corpus.size(); ++I) {
    if (I % 7 == 6)
      Evaluation.push_back(&Corpus[I]);
    else
      Training.push_back(&Corpus[I]);
  }
}

std::vector<CorpusEntry> smat::representativeMatrices(bool Large) {
  // Paper Figure 8 roles, scaled to this machine. Index 1-16 order.
  double S = Large ? 2.0 : 1.0;
  auto N = [S](index_t Base) { return static_cast<index_t>(Base * S); };

  std::vector<CorpusEntry> Reps;
  auto Add = [&Reps](const char *Name, const char *Domain,
                     CsrMatrix<double> M) {
    Reps.push_back({Name, Domain, std::move(M)});
  };

  // 1-4: DIA-affine (paper: pcrystk02, denormal, cryg10000, apache1).
  Add("syn_pcrystk02", "materials", banded(N(14000), 17));
  Add("syn_denormal", "counter_example",
      multiDiagonal(N(50000), {-300, -1, 0, 1, 300}));
  Add("syn_cryg10000", "materials",
      brokenDiagonals(N(10000), {-2500, -50, -1, 0, 1, 50, 2500}, 0.97, 101));
  Add("syn_apache1", "structural", laplace3d7pt(N(40), N(40), N(40)));

  // 5-8: ELL-affine (paper: bfly, whitaker3_dual, ch7-9-b3, shar_te2-b2).
  Add("syn_bfly", "graph",
      boundedDegreeRandom(N(49152), N(49152), 2, 2, 102));
  Add("syn_whitaker3_dual", "2d_3d",
      boundedDegreeRandom(N(19190), N(19190), 3, 3, 103));
  Add("syn_ch7_9_b3", "combinatorial",
      boundedDegreeRandom(N(52000), N(9000), 4, 4, 104));
  Add("syn_shar_te2_b2", "combinatorial",
      boundedDegreeRandom(N(60000), N(8500), 3, 3, 105));

  // 9-12: CSR-affine heavyweights (paper: pkustk14, crankseg_2, Ga3As3H12,
  // HV15R). Their defining trait is a heavy mean degree with high variance
  // (dense blocks of very different sizes, a few huge rows), which defeats
  // both DIA (scattered diagonals) and ELL (max_RD far above aver_RD).
  Add("syn_pkustk14", "structural",
      spikedRows(N(30000), 80, 2500, 0.01, 106));
  Add("syn_crankseg_2", "structural",
      spikedRows(N(20000), 180, 5000, 0.01, 107));
  Add("syn_ga3as3h12", "quantum_chemistry",
      spikedRows(N(20000), 40, 1200, 0.01, 108));
  Add("syn_hv15r", "computational_fluid_dynamics",
      spikedRows(N(45000), 60, 1800, 0.015, 109));

  // 13-16: COO-affine graphs (paper: europe_osm, D6-6, dictionary28,
  // roadNet-CA).
  Add("syn_europe_osm", "graph",
      powerLawGraph(N(120000), 2.8, 1, 12, 110));
  Add("syn_d6_6", "combinatorial",
      powerLawGraph(N(60000), 1.8, 1, 40, 111));
  Add("syn_dictionary28", "graph",
      powerLawGraph(N(52652), 2.2, 1, 64, 112));
  Add("syn_roadnet_ca", "graph",
      powerLawGraph(N(100000), 3.2, 1, 8, 113));

  return Reps;
}
