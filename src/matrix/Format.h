//===- matrix/Format.h - Sparse storage format enumeration ------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four basic storage formats SMAT tunes over (paper Section 2.1), and
/// the index type used by every sparse structure in the library.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_MATRIX_FORMAT_H
#define SMAT_MATRIX_FORMAT_H

#include <cstdint>
#include <string_view>

namespace smat {

/// 32-bit indices, matching the paper-era libraries (MKL, OSKI). All corpus
/// matrices fit comfortably; conversions assert on overflow.
using index_t = std::int32_t;

/// The four basic sparse storage formats (paper Figure 2), plus BSR — the
/// blocked-CSR extension format (paper Section 2.1 lists BCSR among the
/// blocking variants; OSKI is built around it). BSR is disabled by default
/// in training so the paper's four-format tables reproduce unchanged; see
/// TrainingOptions::EnableBsr. The underlying values are used as dense
/// array indices throughout, so they must stay contiguous from zero.
enum class FormatKind : std::uint8_t {
  CSR = 0,
  COO = 1,
  DIA = 2,
  ELL = 3,
  BSR = 4,
};

/// Number of FormatKind values; sized for `double Table[NumFormats]` arrays.
inline constexpr int NumFormats = 5;

/// Evaluation order of the runtime rule groups (paper Section 6): DIA first
/// because it is fastest when applicable, then ELL (regular and easy to
/// predict), then BSR (block structure is similarly crisp), then CSR (its
/// parameters are already computed), then COO.
inline constexpr FormatKind RuleGroupOrder[NumFormats] = {
    FormatKind::DIA, FormatKind::ELL, FormatKind::BSR, FormatKind::CSR,
    FormatKind::COO};

/// \returns the canonical upper-case name of \p Kind.
constexpr std::string_view formatName(FormatKind Kind) {
  switch (Kind) {
  case FormatKind::CSR:
    return "CSR";
  case FormatKind::COO:
    return "COO";
  case FormatKind::DIA:
    return "DIA";
  case FormatKind::ELL:
    return "ELL";
  case FormatKind::BSR:
    return "BSR";
  }
  return "?";
}

/// Parses a format name; \returns true on success.
bool parseFormatName(std::string_view Name, FormatKind &Kind);

} // namespace smat

#endif // SMAT_MATRIX_FORMAT_H
