//===- features/FeatureExtractor.cpp - Table-2 feature parameters ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "features/FeatureExtractor.h"

#include "support/Compiler.h"
#include "matrix/FormatConvert.h"
#include "support/Stats.h"
#include "support/Str.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace smat;

const char *smat::featureName(int Index) {
  switch (Index) {
  case FeatM:
    return "M";
  case FeatN:
    return "N";
  case FeatNdiags:
    return "Ndiags";
  case FeatNTdiagsRatio:
    return "NTdiags_ratio";
  case FeatNnz:
    return "NNZ";
  case FeatMaxRd:
    return "max_RD";
  case FeatAverRd:
    return "aver_RD";
  case FeatVarRd:
    return "var_RD";
  case FeatErDia:
    return "ER_DIA";
  case FeatErEll:
    return "ER_ELL";
  case FeatErBsr:
    return "ER_BSR";
  case FeatR:
    return "R";
  }
  smatUnreachable("invalid feature index");
}

std::string FeatureVector::toString() const {
  return formatString(
      "{M=%g N=%g Ndiags=%g NTdiags_ratio=%.3f NNZ=%g max_RD=%g aver_RD=%.3f "
      "var_RD=%.3f ER_DIA=%.3f ER_ELL=%.3f ER_BSR=%.3f R=%s}",
      M, N, Ndiags, NTdiagsRatio, Nnz, MaxRd, AverRd, VarRd, ErDia, ErEll,
      ErBsr, R >= FeatureInf ? "inf" : formatString("%.3f", R).c_str());
}

template <typename T>
FeatureVector smat::extractStructureFeatures(const CsrMatrix<T> &A) {
  FeatureVector F;
  F.M = static_cast<double>(A.NumRows);
  F.N = static_cast<double>(A.NumCols);
  F.Nnz = static_cast<double>(A.nnz());

  if (A.NumRows == 0) {
    F.AverRd = F.MaxRd = F.VarRd = 0;
    return F;
  }

  // Single pass: per-row degrees and the per-diagonal occupancy histogram
  // (the paper counts diagonals and nonzero distribution together to avoid
  // a second traversal). Matrices below ParallelConvertGrain take the serial
  // path so small-matrix features (and the plan-cache fingerprints derived
  // from them) stay bit-identical to the historical serial extraction.
  std::vector<index_t> DiagCount(
      static_cast<std::size_t>(A.NumRows) + static_cast<std::size_t>(A.NumCols),
      0);
  double SumDeg = 0, MaxDeg = 0;
  if (A.nnz() <= ParallelConvertGrain) {
    for (index_t Row = 0; Row < A.NumRows; ++Row) {
      index_t Deg = A.rowDegree(Row);
      SumDeg += Deg;
      MaxDeg = std::max(MaxDeg, static_cast<double>(Deg));
      for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
        ++DiagCount[static_cast<std::size_t>(A.ColIdx[I]) - Row + A.NumRows -
                    1];
    }
  } else {
    // Degree sums are integer-valued doubles (exact in any order); the
    // histogram slots take atomic increments since distinct rows can share a
    // diagonal.
#pragma omp parallel for schedule(static)                                      \
    reduction(+ : SumDeg) reduction(max : MaxDeg)
    for (index_t Row = 0; Row < A.NumRows; ++Row) {
      index_t Deg = A.rowDegree(Row);
      SumDeg += Deg;
      MaxDeg = std::max(MaxDeg, static_cast<double>(Deg));
      for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I) {
        std::size_t Slot =
            static_cast<std::size_t>(A.ColIdx[I]) - Row + A.NumRows - 1;
#pragma omp atomic
        ++DiagCount[Slot];
      }
    }
  }
  F.AverRd = SumDeg / F.M;
  F.MaxRd = MaxDeg;

  double VarSum = 0;
#pragma omp parallel for schedule(static) reduction(+ : VarSum)                \
    if (A.nnz() > ParallelConvertGrain)
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    double Delta = static_cast<double>(A.rowDegree(Row)) - F.AverRd;
    VarSum += Delta * Delta;
  }
  F.VarRd = VarSum / F.M;

  // Diagonal situation: Ndiags and the "true diagonal" ratio. A diagonal is
  // "true" when it is mostly occupied (>= TrueDiagOccupancy of its length).
  index_t Ndiags = 0, TrueDiags = 0;
  for (std::size_t Slot = 0; Slot != DiagCount.size(); ++Slot) {
    if (DiagCount[Slot] == 0)
      continue;
    ++Ndiags;
    index_t Offset =
        static_cast<index_t>(Slot) - (A.NumRows - 1);
    index_t Length = std::min(A.NumRows, A.NumCols - Offset) -
                     std::max(index_t(0), -Offset);
    if (Length > 0 && static_cast<double>(DiagCount[Slot]) >=
                          TrueDiagOccupancy * static_cast<double>(Length))
      ++TrueDiags;
  }
  F.Ndiags = static_cast<double>(Ndiags);
  F.NTdiagsRatio =
      Ndiags > 0 ? static_cast<double>(TrueDiags) / static_cast<double>(Ndiags)
                 : 0.0;

  F.ErDia = (Ndiags > 0 && F.M > 0) ? F.Nnz / (F.Ndiags * F.M) : 0.0;
  F.ErEll = (F.MaxRd > 0 && F.M > 0) ? F.Nnz / (F.MaxRd * F.M) : 0.0;

  // BSR fill efficiency for the canonical 4x4 tiling (the extension
  // format's signature feature; one extra O(nnz) pass).
  if (F.Nnz > 0) {
    std::int64_t Blocks = countOccupiedBlocks(A, 4);
    F.ErBsr = Blocks > 0 ? F.Nnz / (static_cast<double>(Blocks) * 16.0) : 0.0;
  }
  return F;
}

template <typename T>
void smat::extractPowerLawFeature(const CsrMatrix<T> &A,
                                  FeatureVector &Features) {
  Features.R = FeatureInf;
  if (A.NumRows == 0 || A.nnz() == 0)
    return;

  // Degree histogram P(k): count of rows with degree k (k >= 1).
  std::map<index_t, double> Histogram;
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    index_t Deg = A.rowDegree(Row);
    if (Deg >= 1)
      ++Histogram[Deg];
  }
  // A power law needs a spread of degrees; near-regular matrices have no
  // scale-free structure at all -> "inf", exactly like the paper's t2d_q9
  // training record.
  if (Histogram.size() < 3)
    return;

  std::vector<double> LogK, LogP;
  double Rows = static_cast<double>(A.NumRows);
  for (const auto &[Deg, Count] : Histogram) {
    LogK.push_back(std::log(static_cast<double>(Deg)));
    LogP.push_back(std::log(Count / Rows));
  }
  double Slope = 0, Intercept = 0;
  if (!leastSquaresFit(LogK, LogP, Slope, Intercept))
    return;

  // Require the fit to actually explain the distribution (R^2 >= 0.5);
  // otherwise the degree structure is not scale-free.
  double MeanLogP = mean(LogP);
  double SsTot = 0, SsRes = 0;
  for (std::size_t I = 0; I != LogK.size(); ++I) {
    double Fit = Slope * LogK[I] + Intercept;
    SsTot += (LogP[I] - MeanLogP) * (LogP[I] - MeanLogP);
    SsRes += (LogP[I] - Fit) * (LogP[I] - Fit);
  }
  if (SsTot <= 0 || SsRes / SsTot > 0.5)
    return;
  double R = -Slope;
  if (R <= 0) // Degrees growing more frequent with size: not a power law.
    return;
  Features.R = R;
}

template FeatureVector smat::extractStructureFeatures(const CsrMatrix<float> &);
template FeatureVector smat::extractStructureFeatures(const CsrMatrix<double> &);
template void smat::extractPowerLawFeature(const CsrMatrix<float> &,
                                           FeatureVector &);
template void smat::extractPowerLawFeature(const CsrMatrix<double> &,
                                           FeatureVector &);
