//===- features/FeatureExtractor.h - Table-2 feature parameters -*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of the 11 sparse-structure feature parameters of paper
/// Table 2. Per paper Section 6, extraction is split into two independent
/// steps so the runtime can stop early:
///   step 1 — one pass over the matrix computing the DIA/ELL/CSR parameters
///            (dimensions, nonzero distribution, diagonal situation, fill
///            ratios);
///   step 2 — the power-law exponent R for COO, computed lazily because the
///            degree-distribution fit is comparatively expensive.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_FEATURES_FEATUREEXTRACTOR_H
#define SMAT_FEATURES_FEATUREEXTRACTOR_H

#include "matrix/CsrMatrix.h"

#include <array>
#include <cmath>
#include <limits>
#include <string>

namespace smat {

/// Number of learned feature attributes (paper Table 2).
inline constexpr int NumFeatures = 12;

/// Attribute indices into FeatureVector::values(). Order matches the
/// paper's attribute collection {M, N, Ndiags, NTdiags_ratio, NNZ, max_RD,
/// aver_RD, var_RD, ER_DIA, ER_ELL, R}, extended with ER_BSR (block fill
/// efficiency) for the BSR extension format.
enum FeatureIndex : int {
  FeatM = 0,
  FeatN,
  FeatNdiags,
  FeatNTdiagsRatio,
  FeatNnz,
  FeatMaxRd,
  FeatAverRd,
  FeatVarRd,
  FeatErDia,
  FeatErEll,
  FeatErBsr,
  FeatR,
};

/// \returns the canonical attribute name for \p Index.
const char *featureName(int Index);

/// Sentinel for "power-law R not defined" (the paper's "inf": the matrix has
/// no scale-free degree structure). A large finite value so threshold
/// comparisons in learned rules behave naturally.
inline constexpr double FeatureInf = 1e30;

/// The feature parameters of one sparse matrix (paper Table 2).
struct FeatureVector {
  double M = 0;            ///< Number of rows.
  double N = 0;            ///< Number of columns.
  double Ndiags = 0;       ///< Number of occupied diagonals.
  double NTdiagsRatio = 0; ///< "True" diagonals / total occupied diagonals.
  double Nnz = 0;          ///< Number of nonzeros.
  double MaxRd = 0;        ///< Maximum nonzeros per row.
  double AverRd = 0;       ///< Average nonzeros per row.
  double VarRd = 0;        ///< Variance of nonzeros per row.
  double ErDia = 0;        ///< NNZ / (Ndiags * M): DIA fill efficiency.
  double ErEll = 0;        ///< NNZ / (max_RD * M): ELL fill efficiency.
  double ErBsr = 0;        ///< NNZ / (4x4 blocks * 16): BSR fill efficiency.
  double R = FeatureInf;   ///< Power-law exponent, FeatureInf if undefined.

  /// Packs the attributes in FeatureIndex order.
  std::array<double, NumFeatures> values() const {
    return {M, N, Ndiags, NTdiagsRatio, Nnz, MaxRd,
            AverRd, VarRd, ErDia, ErEll, ErBsr, R};
  }

  /// Row-length coefficient of variation sqrt(var_RD)/aver_RD — the
  /// skew signal that steers kernel binding toward the load-balanced
  /// variants (compare SkewRowCvThreshold).
  double rowCv() const { return AverRd > 0 ? std::sqrt(VarRd) / AverRd : 0.0; }

  /// One-line human-readable rendering (for traces and CSV headers).
  std::string toString() const;
};

/// Occupancy fraction above which a diagonal counts as a "true" diagonal
/// (paper Section 4: "occupied mostly with non-zeros").
inline constexpr double TrueDiagOccupancy = 0.6;

/// Step 1: extracts every parameter except R in one matrix traversal.
/// R is left at FeatureInf.
template <typename T>
FeatureVector extractStructureFeatures(const CsrMatrix<T> &A);

/// Step 2: fits the power-law exponent R of the row-degree distribution
/// P(k) ~ k^-R via log-log least squares, writing it into \p Features.
/// Leaves FeatureInf when the matrix has no scale-free degree structure
/// (fewer than 3 distinct degrees, or a poor fit).
template <typename T>
void extractPowerLawFeature(const CsrMatrix<T> &A, FeatureVector &Features);

/// Convenience: both steps.
template <typename T> FeatureVector extractAllFeatures(const CsrMatrix<T> &A) {
  FeatureVector Features = extractStructureFeatures(A);
  extractPowerLawFeature(A, Features);
  return Features;
}

extern template FeatureVector extractStructureFeatures(const CsrMatrix<float> &);
extern template FeatureVector extractStructureFeatures(const CsrMatrix<double> &);
extern template void extractPowerLawFeature(const CsrMatrix<float> &,
                                            FeatureVector &);
extern template void extractPowerLawFeature(const CsrMatrix<double> &,
                                            FeatureVector &);

} // namespace smat

#endif // SMAT_FEATURES_FEATUREEXTRACTOR_H
