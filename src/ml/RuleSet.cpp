//===- ml/RuleSet.cpp - Ruleset classifier with confidence ----------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ml/RuleSet.h"

#include "support/Str.h"

#include <algorithm>

using namespace smat;

std::string Condition::toString() const {
  return formatString("%s %s %g", featureName(Feature), LessEq ? "<=" : ">",
                      Threshold);
}

std::string Rule::toString() const {
  std::string Out = "IF ";
  for (std::size_t I = 0; I != Conditions.size(); ++I) {
    if (I)
      Out += " AND ";
    Out += Conditions[I].toString();
  }
  if (Conditions.empty())
    Out += "TRUE";
  Out += formatString(" THEN %s  [conf %.3f, %g/%g]",
                      std::string(formatName(Format)).c_str(), Confidence,
                      Correct, Covered);
  return Out;
}

namespace {

void collectRules(const TreeNode *Node, std::vector<Condition> &Path,
                  std::vector<Rule> &Rules) {
  if (Node->IsLeaf) {
    Rule R;
    R.Conditions = Path;
    R.Format = Node->Leaf;
    Rules.push_back(std::move(R));
    return;
  }
  Path.push_back({Node->SplitFeature, /*LessEq=*/true, Node->Threshold});
  collectRules(Node->Left.get(), Path, Rules);
  Path.back().LessEq = false;
  collectRules(Node->Right.get(), Path, Rules);
  Path.pop_back();
}

} // namespace

RuleSet RuleSet::fromTree(const DecisionTree &Tree, const Dataset &Data) {
  RuleSet Set;
  std::vector<Condition> Path;
  collectRules(Tree.root(), Path, Set.Rules);

  for (Rule &R : Set.Rules) {
    for (const Sample &S : Data.Samples) {
      if (!R.matches(S.X))
        continue;
      R.Covered += 1;
      if (S.Label == R.Format)
        R.Correct += 1;
    }
    // Laplace correction keeps confidences in (0, 1) and penalizes tiny
    // rules, exactly what the runtime's threshold gate needs.
    R.Confidence = (R.Correct + 1.0) / (R.Covered + 2.0);
  }

  Set.DefaultFormat = Data.majorityClass();
  auto Counts = Data.classCounts();
  double Total = static_cast<double>(Data.size());
  if (Total > 0)
    Set.DefaultConfidence =
        static_cast<double>(Counts[static_cast<int>(Set.DefaultFormat)]) /
        Total;
  return Set;
}

void RuleSet::orderByContribution(const Dataset &Data) {
  // Greedy: repeatedly append the rule that classifies the most additional
  // (not-yet-claimed) samples correctly, net of new errors it introduces.
  std::vector<bool> Claimed(Data.size(), false);
  std::vector<Rule> Ordered;
  std::vector<bool> Used(Rules.size(), false);
  Ordered.reserve(Rules.size());

  for (std::size_t Round = 0; Round != Rules.size(); ++Round) {
    double BestScore = -1e300;
    std::size_t BestRule = 0;
    bool Found = false;
    for (std::size_t R = 0; R != Rules.size(); ++R) {
      if (Used[R])
        continue;
      double Score = 0;
      for (std::size_t S = 0; S != Data.size(); ++S) {
        if (Claimed[S] || !Rules[R].matches(Data.Samples[S].X))
          continue;
        Score += Data.Samples[S].Label == Rules[R].Format ? 1.0 : -1.0;
      }
      // Confidence as tiebreaker keeps reliable rules first among equals.
      Score += Rules[R].Confidence * 0.5;
      if (!Found || Score > BestScore) {
        Found = true;
        BestScore = Score;
        BestRule = R;
      }
    }
    Used[BestRule] = true;
    for (std::size_t S = 0; S != Data.size(); ++S)
      if (!Claimed[S] && Rules[BestRule].matches(Data.Samples[S].X))
        Claimed[S] = true;
    Ordered.push_back(std::move(Rules[BestRule]));
  }
  Rules = std::move(Ordered);
}

RuleSet RuleSet::tailored(const Dataset &Data, double MaxAccuracyLoss) const {
  double FullAccuracy = accuracy(Data);
  RuleSet Prefix;
  Prefix.DefaultFormat = DefaultFormat;
  Prefix.DefaultConfidence = DefaultConfidence;
  for (const Rule &R : Rules) {
    Prefix.Rules.push_back(R);
    if (Prefix.accuracy(Data) + MaxAccuracyLoss >= FullAccuracy)
      return Prefix;
  }
  return Prefix;
}

RulePrediction
RuleSet::classify(const std::array<double, NumFeatures> &X) const {
  for (std::size_t R = 0; R != Rules.size(); ++R)
    if (Rules[R].matches(X))
      return {Rules[R].Format, Rules[R].Confidence, true,
              static_cast<int>(R)};
  return {DefaultFormat, DefaultConfidence, true, -1};
}

double
RuleSet::groupConfidence(FormatKind Format,
                         const std::array<double, NumFeatures> &X) const {
  double Best = 0;
  for (const Rule &R : Rules)
    if (R.Format == Format && R.matches(X))
      Best = std::max(Best, R.Confidence);
  return Best;
}

RulePrediction
RuleSet::predictOptimistic(const std::array<double, NumFeatures> &X,
                           double Threshold) const {
  // Optimistic early exit over the format groups (paper Figure 7). The
  // group order trades prediction latency for performance: DIA first since
  // it wins biggest when it applies.
  for (FormatKind Kind : RuleGroupOrder) {
    double Confidence = groupConfidence(Kind, X);
    if (Confidence > Threshold)
      return {Kind, Confidence, true, 0};
  }
  // No confident group: fall back to first-match, flagged unconfident so the
  // runtime triggers execute-and-measure.
  RulePrediction P = classify(X);
  P.Confident = P.Confidence > Threshold;
  return P;
}

double RuleSet::accuracy(const Dataset &Data) const {
  if (Data.empty())
    return 1.0;
  std::size_t Correct = 0;
  for (const Sample &S : Data.Samples)
    if (classify(S.X).Format == S.Label)
      ++Correct;
  return static_cast<double>(Correct) / static_cast<double>(Data.size());
}
