//===- ml/Dataset.h - Labeled training data for the learner -----*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attribute dataset the C4.5-style learner trains on: one sample per
/// corpus matrix, attributes = the 11 Table-2 features, label = the
/// measured best storage format ("Best_Format" in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_ML_DATASET_H
#define SMAT_ML_DATASET_H

#include "features/FeatureExtractor.h"
#include "matrix/Format.h"

#include <array>
#include <string>
#include <vector>

namespace smat {

/// One training record.
struct Sample {
  std::array<double, NumFeatures> X{};
  FormatKind Label = FormatKind::CSR;
  std::string Name; ///< Matrix name, for traces only.
};

/// A labeled dataset.
struct Dataset {
  std::vector<Sample> Samples;

  std::size_t size() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }

  /// Per-class sample counts, indexed by FormatKind.
  std::array<std::size_t, NumFormats> classCounts() const;

  /// The majority class (CSR on ties, matching the paper's prior).
  FormatKind majorityClass() const;
};

} // namespace smat

#endif // SMAT_ML_DATASET_H
