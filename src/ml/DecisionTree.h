//===- ml/DecisionTree.h - C4.5-style decision tree learner -----*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch C4.5-style decision tree: gain-ratio splits on continuous
/// attributes and pessimistic (confidence-bound) error pruning. This is the
/// open ancestor of the closed-source C5.0 tool the paper uses; see
/// DESIGN.md's substitution table.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_ML_DECISIONTREE_H
#define SMAT_ML_DECISIONTREE_H

#include "ml/Dataset.h"

#include <memory>

namespace smat {

/// Learner configuration.
struct TreeConfig {
  int MaxDepth = 16;
  std::size_t MinSamplesSplit = 4; ///< Don't split nodes smaller than this.
  std::size_t MinSamplesLeaf = 1;  ///< Reject splits creating smaller leaves.
  bool Prune = true;               ///< Pessimistic error pruning.
  double PruneZ = 0.6744898;       ///< z for C4.5's default CF = 0.25.
};

/// One tree node. Interior nodes test X[SplitFeature] <= Threshold (left on
/// true). Every node keeps its training class histogram so rules can carry
/// coverage/confidence data.
struct TreeNode {
  bool IsLeaf = true;
  FormatKind Leaf = FormatKind::CSR;
  int SplitFeature = -1;
  double Threshold = 0.0;
  std::unique_ptr<TreeNode> Left, Right;
  std::array<double, NumFormats> ClassCounts{};

  /// Total training samples reaching this node.
  double total() const {
    double Sum = 0;
    for (double Count : ClassCounts)
      Sum += Count;
    return Sum;
  }

  /// Training errors at this node if it were a leaf of its majority class.
  double leafErrors() const {
    double Max = 0;
    for (double Count : ClassCounts)
      Max = std::max(Max, Count);
    return total() - Max;
  }
};

/// C4.5-style classifier over FeatureVector attributes.
class DecisionTree {
public:
  /// Builds (and optionally prunes) the tree from \p Data.
  void build(const Dataset &Data, const TreeConfig &Config = TreeConfig());

  /// \returns the predicted format for attribute vector \p X.
  FormatKind predict(const std::array<double, NumFeatures> &X) const;

  /// \returns fraction of correctly classified samples in \p Data.
  double accuracy(const Dataset &Data) const;

  const TreeNode *root() const { return Root.get(); }
  std::size_t numLeaves() const;
  std::size_t numNodes() const;

private:
  std::unique_ptr<TreeNode> Root;
};

} // namespace smat

#endif // SMAT_ML_DECISIONTREE_H
