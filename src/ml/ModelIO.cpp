//===- ml/ModelIO.cpp - Ruleset (de)serialization -------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ml/ModelIO.h"

#include "support/Str.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace smat;

namespace {

bool parseFeatureName(std::string_view Name, int &Index) {
  for (int I = 0; I < NumFeatures; ++I)
    if (Name == featureName(I)) {
      Index = I;
      return true;
    }
  return false;
}

} // namespace

std::string smat::serializeRuleSet(const RuleSet &Set) {
  std::string Out = "SMAT-RULESET v1\n";
  Out += formatString("default %s %.17g\n",
                      std::string(formatName(Set.DefaultFormat)).c_str(),
                      Set.DefaultConfidence);
  Out += formatString("rules %zu\n", Set.Rules.size());
  for (const Rule &R : Set.Rules) {
    Out += formatString("rule %s %.17g %.17g %.17g %zu\n",
                        std::string(formatName(R.Format)).c_str(),
                        R.Confidence, R.Covered, R.Correct,
                        R.Conditions.size());
    for (const Condition &C : R.Conditions)
      Out += formatString("  %s %s %.17g\n", featureName(C.Feature),
                          C.LessEq ? "<=" : ">", C.Threshold);
  }
  return Out;
}

bool smat::parseRuleSet(const std::string &Text, RuleSet &Set,
                        std::string &Error) {
  Set = RuleSet();
  std::istringstream In(Text);
  std::string Line;

  auto Fail = [&Error](const std::string &Why) {
    Error = Why;
    return false;
  };

  if (!std::getline(In, Line) || trim(Line) != "SMAT-RULESET v1")
    return Fail("missing SMAT-RULESET v1 header");

  if (!std::getline(In, Line))
    return Fail("missing default line");
  auto DefaultParts = splitWhitespace(Line);
  if (DefaultParts.size() != 3 || DefaultParts[0] != "default" ||
      !parseFormatName(DefaultParts[1], Set.DefaultFormat))
    return Fail("malformed default line: '" + Line + "'");
  Set.DefaultConfidence = std::strtod(DefaultParts[2].c_str(), nullptr);

  if (!std::getline(In, Line))
    return Fail("missing rules count line");
  auto CountParts = splitWhitespace(Line);
  if (CountParts.size() != 2 || CountParts[0] != "rules")
    return Fail("malformed rules count line: '" + Line + "'");
  std::size_t NumRules = std::strtoull(CountParts[1].c_str(), nullptr, 10);

  for (std::size_t R = 0; R != NumRules; ++R) {
    if (!std::getline(In, Line))
      return Fail("unexpected end of input inside rule list");
    auto RuleParts = splitWhitespace(Line);
    if (RuleParts.size() != 6 || RuleParts[0] != "rule")
      return Fail("malformed rule line: '" + Line + "'");
    Rule NewRule;
    if (!parseFormatName(RuleParts[1], NewRule.Format))
      return Fail("unknown format in rule line: '" + Line + "'");
    NewRule.Confidence = std::strtod(RuleParts[2].c_str(), nullptr);
    NewRule.Covered = std::strtod(RuleParts[3].c_str(), nullptr);
    NewRule.Correct = std::strtod(RuleParts[4].c_str(), nullptr);
    std::size_t NumConds = std::strtoull(RuleParts[5].c_str(), nullptr, 10);
    for (std::size_t C = 0; C != NumConds; ++C) {
      if (!std::getline(In, Line))
        return Fail("unexpected end of input inside condition list");
      auto CondParts = splitWhitespace(Line);
      if (CondParts.size() != 3)
        return Fail("malformed condition line: '" + Line + "'");
      Condition Cond;
      if (!parseFeatureName(CondParts[0], Cond.Feature))
        return Fail("unknown feature in condition: '" + Line + "'");
      if (CondParts[1] == "<=")
        Cond.LessEq = true;
      else if (CondParts[1] == ">")
        Cond.LessEq = false;
      else
        return Fail("unknown comparator in condition: '" + Line + "'");
      Cond.Threshold = std::strtod(CondParts[2].c_str(), nullptr);
      NewRule.Conditions.push_back(Cond);
    }
    Set.Rules.push_back(std::move(NewRule));
  }
  return true;
}

bool smat::saveRuleSetFile(const std::string &Path, const RuleSet &Set) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << serializeRuleSet(Set);
  return static_cast<bool>(Out);
}

bool smat::loadRuleSetFile(const std::string &Path, RuleSet &Set,
                           std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open file '" + Path + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseRuleSet(Buffer.str(), Set, Error);
}
