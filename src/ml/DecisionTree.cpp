//===- ml/DecisionTree.cpp - C4.5-style decision tree learner -------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ml/DecisionTree.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace smat;

namespace {

double entropyOf(const std::array<double, NumFormats> &Counts, double Total) {
  if (Total <= 0)
    return 0.0;
  double H = 0.0;
  for (double Count : Counts) {
    if (Count <= 0)
      continue;
    double P = Count / Total;
    H -= P * std::log2(P);
  }
  return H;
}

FormatKind majorityOf(const std::array<double, NumFormats> &Counts) {
  int Best = 0;
  for (int C = 1; C < NumFormats; ++C)
    if (Counts[static_cast<std::size_t>(C)] >
        Counts[static_cast<std::size_t>(Best)])
      Best = C;
  return static_cast<FormatKind>(Best);
}

/// C4.5's pessimistic error: upper confidence bound on the true error rate
/// given \p Errors observed errors in \p Total samples, times Total.
double pessimisticErrors(double Errors, double Total, double Z) {
  if (Total <= 0)
    return 0.0;
  double F = Errors / Total;
  double Z2 = Z * Z;
  double Bound =
      (F + Z2 / (2 * Total) +
       Z * std::sqrt(F / Total - F * F / Total + Z2 / (4 * Total * Total))) /
      (1 + Z2 / Total);
  return Bound * Total;
}

struct Builder {
  const Dataset &Data;
  const TreeConfig &Config;

  std::unique_ptr<TreeNode> grow(std::vector<std::size_t> &Indices,
                                 int Depth) {
    auto Node = std::make_unique<TreeNode>();
    for (std::size_t I : Indices)
      Node->ClassCounts[static_cast<int>(Data.Samples[I].Label)] += 1.0;
    Node->Leaf = majorityOf(Node->ClassCounts);

    if (Depth >= Config.MaxDepth || Indices.size() < Config.MinSamplesSplit ||
        Node->leafErrors() == 0)
      return Node;

    int BestFeature = -1;
    double BestThreshold = 0, BestGainRatio = 0;
    findBestSplit(Indices, Node->ClassCounts, BestFeature, BestThreshold,
                  BestGainRatio);
    if (BestFeature < 0)
      return Node;

    std::vector<std::size_t> LeftIdx, RightIdx;
    for (std::size_t I : Indices) {
      if (Data.Samples[I].X[static_cast<std::size_t>(BestFeature)] <=
          BestThreshold)
        LeftIdx.push_back(I);
      else
        RightIdx.push_back(I);
    }
    if (LeftIdx.size() < Config.MinSamplesLeaf ||
        RightIdx.size() < Config.MinSamplesLeaf)
      return Node;

    Node->IsLeaf = false;
    Node->SplitFeature = BestFeature;
    Node->Threshold = BestThreshold;
    // Free the parent index list's memory pressure before recursing deep.
    Indices.clear();
    Indices.shrink_to_fit();
    Node->Left = grow(LeftIdx, Depth + 1);
    Node->Right = grow(RightIdx, Depth + 1);
    return Node;
  }

  /// Exhaustive threshold search maximizing C4.5's gain ratio, restricted
  /// (as in C4.5) to candidate splits whose information gain is at least the
  /// mean gain of all candidates for the node.
  void findBestSplit(const std::vector<std::size_t> &Indices,
                     const std::array<double, NumFormats> &NodeCounts,
                     int &BestFeature, double &BestThreshold,
                     double &BestGainRatio) {
    double Total = static_cast<double>(Indices.size());
    double NodeEntropy = entropyOf(NodeCounts, Total);
    BestFeature = -1;
    BestGainRatio = 0;

    struct Candidate {
      int Feature;
      double Threshold;
      double Gain;
      double GainRatio;
    };
    std::vector<Candidate> Candidates;

    std::vector<std::pair<double, FormatKind>> Column(Indices.size());
    for (int Feature = 0; Feature < NumFeatures; ++Feature) {
      for (std::size_t K = 0; K != Indices.size(); ++K) {
        const Sample &S = Data.Samples[Indices[K]];
        Column[K] = {S.X[static_cast<std::size_t>(Feature)], S.Label};
      }
      std::sort(Column.begin(), Column.end(),
                [](const auto &A, const auto &B) { return A.first < B.first; });

      std::array<double, NumFormats> LeftCounts{};
      double LeftTotal = 0;
      for (std::size_t K = 0; K + 1 < Column.size(); ++K) {
        LeftCounts[static_cast<int>(Column[K].second)] += 1.0;
        LeftTotal += 1.0;
        // Only between distinct attribute values.
        if (Column[K].first == Column[K + 1].first)
          continue;
        double RightTotal = Total - LeftTotal;
        std::array<double, NumFormats> RightCounts{};
        for (int C = 0; C < NumFormats; ++C)
          RightCounts[static_cast<std::size_t>(C)] =
              NodeCounts[static_cast<std::size_t>(C)] -
              LeftCounts[static_cast<std::size_t>(C)];
        double SplitEntropy =
            (LeftTotal / Total) * entropyOf(LeftCounts, LeftTotal) +
            (RightTotal / Total) * entropyOf(RightCounts, RightTotal);
        double Gain = NodeEntropy - SplitEntropy;
        if (Gain <= 1e-12)
          continue;
        double PLeft = LeftTotal / Total;
        double SplitInfo =
            -(PLeft * std::log2(PLeft) + (1 - PLeft) * std::log2(1 - PLeft));
        if (SplitInfo <= 1e-12)
          continue;
        double Threshold = (Column[K].first + Column[K + 1].first) / 2;
        Candidates.push_back({Feature, Threshold, Gain, Gain / SplitInfo});
      }
    }
    if (Candidates.empty())
      return;

    double MeanGain = 0;
    for (const Candidate &C : Candidates)
      MeanGain += C.Gain;
    MeanGain /= static_cast<double>(Candidates.size());

    for (const Candidate &C : Candidates) {
      if (C.Gain + 1e-12 < MeanGain)
        continue;
      if (C.GainRatio > BestGainRatio) {
        BestGainRatio = C.GainRatio;
        BestFeature = C.Feature;
        BestThreshold = C.Threshold;
      }
    }
  }

  /// Bottom-up pessimistic pruning: replace a subtree by a leaf when the
  /// leaf's estimated error does not exceed the subtree's.
  double pruneNode(TreeNode &Node) {
    if (Node.IsLeaf)
      return pessimisticErrors(Node.leafErrors(), Node.total(), Config.PruneZ);
    double SubtreeEstimate = pruneNode(*Node.Left) + pruneNode(*Node.Right);
    double LeafEstimate =
        pessimisticErrors(Node.leafErrors(), Node.total(), Config.PruneZ);
    if (LeafEstimate <= SubtreeEstimate + 0.1) {
      Node.IsLeaf = true;
      Node.Leaf = majorityOf(Node.ClassCounts);
      Node.Left.reset();
      Node.Right.reset();
      return LeafEstimate;
    }
    return SubtreeEstimate;
  }
};

std::size_t countNodes(const TreeNode *Node, bool LeavesOnly) {
  if (!Node)
    return 0;
  if (Node->IsLeaf)
    return 1;
  std::size_t Below = countNodes(Node->Left.get(), LeavesOnly) +
                      countNodes(Node->Right.get(), LeavesOnly);
  return Below + (LeavesOnly ? 0 : 1);
}

} // namespace

void DecisionTree::build(const Dataset &Data, const TreeConfig &Config) {
  assert(!Data.empty() && "cannot train on an empty dataset");
  std::vector<std::size_t> Indices(Data.size());
  std::iota(Indices.begin(), Indices.end(), std::size_t{0});
  Builder B{Data, Config};
  Root = B.grow(Indices, 0);
  if (Config.Prune)
    B.pruneNode(*Root);
}

FormatKind DecisionTree::predict(
    const std::array<double, NumFeatures> &X) const {
  assert(Root && "predict() before build()");
  const TreeNode *Node = Root.get();
  while (!Node->IsLeaf)
    Node = X[static_cast<std::size_t>(Node->SplitFeature)] <= Node->Threshold
               ? Node->Left.get()
               : Node->Right.get();
  return Node->Leaf;
}

double DecisionTree::accuracy(const Dataset &Data) const {
  if (Data.empty())
    return 1.0;
  std::size_t Correct = 0;
  for (const Sample &S : Data.Samples)
    if (predict(S.X) == S.Label)
      ++Correct;
  return static_cast<double>(Correct) / static_cast<double>(Data.size());
}

std::size_t DecisionTree::numLeaves() const {
  return countNodes(Root.get(), /*LeavesOnly=*/true);
}

std::size_t DecisionTree::numNodes() const {
  return countNodes(Root.get(), /*LeavesOnly=*/false);
}
