//===- ml/CrossValidate.h - k-fold model validation -------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// K-fold cross-validation over the feature database, used to pick and to
/// defend the learner's hyperparameters (tree depth, pruning) without
/// touching the held-out evaluation matrices. The paper tunes C5.0 with its
/// defaults; this utility is how we demonstrate those defaults are sane for
/// the reproduction's C4.5 learner (see bench/ablation_tree).
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_ML_CROSSVALIDATE_H
#define SMAT_ML_CROSSVALIDATE_H

#include "ml/DecisionTree.h"
#include "ml/RuleSet.h"

namespace smat {

/// Outcome of one cross-validation run.
struct CrossValidationResult {
  double MeanTreeAccuracy = 0;    ///< Tree accuracy on validation folds.
  double MeanRulesetAccuracy = 0; ///< Tailored-ruleset accuracy, same folds.
  double MeanLeaves = 0;          ///< Average pruned-tree leaf count.
  int Folds = 0;
};

/// Runs \p Folds-fold cross-validation of the full learning pipeline
/// (tree -> ruleset -> ordering -> tailoring) on \p Data. Folds are taken
/// by sample index stride, matching splitCorpus' style; \p Data must hold
/// at least \p Folds samples.
CrossValidationResult crossValidate(const Dataset &Data,
                                    const TreeConfig &Config, int Folds = 5);

} // namespace smat

#endif // SMAT_ML_CROSSVALIDATE_H
