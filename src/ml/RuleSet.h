//===- ml/RuleSet.h - Ruleset classifier with confidence --------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ruleset learning model (paper Sections 5.1 and 6): rules extracted
/// from the decision tree, each with a confidence factor (ratio of correctly
/// classified to covered training matrices); rules ordered by estimated
/// contribution to training accuracy; the ruleset tailored top-down until
/// the prefix is within 1% of the full set's accuracy; rules grouped per
/// format with the group confidence compared to a threshold at runtime.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_ML_RULESET_H
#define SMAT_ML_RULESET_H

#include "ml/DecisionTree.h"

#include <string>
#include <vector>

namespace smat {

/// One conjunct of a rule: X[Feature] <= Threshold or X[Feature] > Threshold.
struct Condition {
  int Feature = 0;
  bool LessEq = true;
  double Threshold = 0.0;

  bool matches(const std::array<double, NumFeatures> &X) const {
    double V = X[static_cast<std::size_t>(Feature)];
    return LessEq ? V <= Threshold : V > Threshold;
  }

  std::string toString() const;
};

/// An IF-THEN rule with training statistics.
struct Rule {
  std::vector<Condition> Conditions;
  FormatKind Format = FormatKind::CSR;
  double Covered = 0;    ///< Training samples matching the rule.
  double Correct = 0;    ///< Of those, samples whose label == Format.
  double Confidence = 0; ///< Laplace-corrected Correct / Covered, in (0, 1).

  bool matches(const std::array<double, NumFeatures> &X) const {
    for (const Condition &C : Conditions)
      if (!C.matches(X))
        return false;
    return true;
  }

  std::string toString() const;
};

/// Result of a ruleset prediction.
struct RulePrediction {
  FormatKind Format = FormatKind::CSR;
  double Confidence = 0.0;
  bool Confident = false; ///< Group confidence exceeded the threshold.
  int RuleIndex = -1;     ///< Deciding rule; -1 when the default class fired.
};

/// An ordered ruleset classifier.
class RuleSet {
public:
  std::vector<Rule> Rules;
  FormatKind DefaultFormat = FormatKind::CSR;
  /// Confidence attached to the default class (its training accuracy over
  /// samples no rule matches).
  double DefaultConfidence = 0.5;

  /// Extracts one rule per leaf of \p Tree, computing coverage statistics
  /// and Laplace confidence from \p Data.
  static RuleSet fromTree(const DecisionTree &Tree, const Dataset &Data);

  /// Reorders rules by estimated contribution: greedily pick the rule that
  /// corrects the most yet-uncovered training samples (paper Section 6,
  /// "rules reducing error rate the most appear first").
  void orderByContribution(const Dataset &Data);

  /// Tailors top-down: keeps the shortest rule prefix whose training
  /// accuracy is within \p MaxAccuracyLoss of the full set's (paper uses
  /// 1%). \returns the tailored ruleset.
  RuleSet tailored(const Dataset &Data,
                   double MaxAccuracyLoss = 0.01) const;

  /// First-match ordered classification (C5.0 ruleset semantics).
  RulePrediction classify(const std::array<double, NumFeatures> &X) const;

  /// The paper's runtime procedure (Figure 7): walk the format rule groups
  /// in DIA -> ELL -> CSR -> COO order; the first group with a matching rule
  /// whose group confidence exceeds \p Threshold decides. When no group is
  /// confident, falls back to first-match classification with
  /// Confident=false, signalling the execute-and-measure path.
  RulePrediction predictOptimistic(const std::array<double, NumFeatures> &X,
                                   double Threshold) const;

  /// Max confidence among *matching* rules of \p Format; 0 when none match.
  double groupConfidence(FormatKind Format,
                         const std::array<double, NumFeatures> &X) const;

  /// Fraction of \p Data classified correctly by first-match semantics.
  double accuracy(const Dataset &Data) const;

  std::size_t size() const { return Rules.size(); }
};

} // namespace smat

#endif // SMAT_ML_RULESET_H
