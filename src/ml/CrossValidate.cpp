//===- ml/CrossValidate.cpp - k-fold model validation ---------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ml/CrossValidate.h"

#include "support/Rng.h"

#include <numeric>

using namespace smat;

CrossValidationResult smat::crossValidate(const Dataset &Data,
                                          const TreeConfig &Config,
                                          int Folds) {
  assert(Folds >= 2 && "cross-validation needs at least two folds");
  assert(Data.size() >= static_cast<std::size_t>(Folds) &&
         "fewer samples than folds");

  // Deterministic shuffle so fold membership never aliases with any
  // periodic structure of the input ordering.
  std::vector<std::size_t> Order(Data.size());
  std::iota(Order.begin(), Order.end(), std::size_t{0});
  Rng Rng(0xc4a11edULL);
  for (std::size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[Rng.bounded(I)]);

  CrossValidationResult Result;
  Result.Folds = Folds;
  for (int Fold = 0; Fold < Folds; ++Fold) {
    Dataset Train, Validate;
    for (std::size_t K = 0; K != Order.size(); ++K) {
      const Sample &S = Data.Samples[Order[K]];
      if (static_cast<int>(K % static_cast<std::size_t>(Folds)) == Fold)
        Validate.Samples.push_back(S);
      else
        Train.Samples.push_back(S);
    }

    DecisionTree Tree;
    Tree.build(Train, Config);
    Result.MeanTreeAccuracy += Tree.accuracy(Validate);
    Result.MeanLeaves += static_cast<double>(Tree.numLeaves());

    RuleSet Rules = RuleSet::fromTree(Tree, Train);
    Rules.orderByContribution(Train);
    RuleSet Tailored = Rules.tailored(Train, 0.01);
    Result.MeanRulesetAccuracy += Tailored.accuracy(Validate);
  }
  Result.MeanTreeAccuracy /= Folds;
  Result.MeanRulesetAccuracy /= Folds;
  Result.MeanLeaves /= Folds;
  return Result;
}
