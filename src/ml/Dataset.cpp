//===- ml/Dataset.cpp - Labeled training data for the learner -------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"

using namespace smat;

std::array<std::size_t, NumFormats> Dataset::classCounts() const {
  std::array<std::size_t, NumFormats> Counts{};
  for (const Sample &S : Samples)
    ++Counts[static_cast<int>(S.Label)];
  return Counts;
}

FormatKind Dataset::majorityClass() const {
  auto Counts = classCounts();
  // Ties resolve to CSR (index 0), the paper's default format.
  int Best = 0;
  for (int C = 1; C < NumFormats; ++C)
    if (Counts[static_cast<std::size_t>(C)] >
        Counts[static_cast<std::size_t>(Best)])
      Best = C;
  return static_cast<FormatKind>(Best);
}
