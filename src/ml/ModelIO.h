//===- ml/ModelIO.h - Ruleset (de)serialization -----------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text (de)serialization of ruleset models, enabling the paper's "train
/// once off-line, reuse for every input matrix" workflow: the learning
/// model is written to disk after training and reloaded by later runs.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_ML_MODELIO_H
#define SMAT_ML_MODELIO_H

#include "ml/RuleSet.h"

#include <string>

namespace smat {

/// Serializes \p Set into a line-oriented text form (stable, diffable).
std::string serializeRuleSet(const RuleSet &Set);

/// Parses a ruleset produced by serializeRuleSet.
/// \returns true on success; on failure \p Error describes the problem.
bool parseRuleSet(const std::string &Text, RuleSet &Set, std::string &Error);

/// File convenience wrappers.
bool saveRuleSetFile(const std::string &Path, const RuleSet &Set);
bool loadRuleSetFile(const std::string &Path, RuleSet &Set,
                     std::string &Error);

} // namespace smat

#endif // SMAT_ML_MODELIO_H
