//===- examples/quickstart.cpp - SMAT in five minutes ---------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The unified-interface workflow of paper Figure 5: prepare a sparse matrix
// in CSR (the only format the user ever touches), train or load a model,
// call the single SMAT entry point, and run the tuned SpMV.
//
//   ./quickstart [matrix.mtx]
//
// With no argument a demonstration matrix is generated; with a MatrixMarket
// file the tuner runs on your matrix.
//
//===----------------------------------------------------------------------===//

#include "core/Smat.h"
#include "core/Trainer.h"
#include "matrix/Generators.h"
#include "matrix/MatrixMarket.h"

#include <cstdio>

using namespace smat;

int main(int argc, char **argv) {
  // 1. Get a sparse matrix in CSR format. This is all SMAT ever asks of
  //    you — no per-format entry points (compare MKL's mkl_xcsrgemv /
  //    mkl_xdiagemv / mkl_xcoogemv / ... zoo in paper Figure 5).
  CsrMatrix<double> A;
  if (argc > 1) {
    MatrixMarketResult Load = readMatrixMarketFile(argv[1]);
    if (!Load.Ok) {
      std::fprintf(stderr, "error: %s\n", Load.Error.c_str());
      return 1;
    }
    A = std::move(Load.Matrix);
    std::printf("loaded %s: %d x %d, %lld nonzeros\n", argv[1], A.NumRows,
                A.NumCols, static_cast<long long>(A.nnz()));
  } else {
    A = laplace2d9pt(300, 300); // A 9-point stencil: DIA territory.
    std::printf("generated a 9-point Laplacian: %d x %d, %lld nonzeros\n",
                A.NumRows, A.NumCols, static_cast<long long>(A.nnz()));
  }

  // 2. Train the model (off-line stage). Real deployments do this once per
  //    machine and save/load it with saveModelFile / Smat::fromFile.
  std::printf("training the learning model on the synthetic corpus...\n");
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainingOptions Opts;
  Opts.MeasureMinSeconds = 5e-4;
  TrainResult Trained = trainSmat<double>(Training, Opts);
  std::printf("  %zu rules, %.0f%% training accuracy, %.1fs\n",
              Trained.Model.Rules.size(),
              100.0 * Trained.TailoredRuleAccuracy, Trained.TrainSeconds);

  // 3. The unified interface: one call, CSR in, tuned SpMV out.
  const Smat<double> Tuner(Trained.Model);
  TunedSpmv<double> Op = SMAT_dCSR_SpMV(Tuner, A);

  const TuningReport &Report = Op.report();
  std::printf("\nSMAT decision:\n");
  std::printf("  features        %s\n", Report.Features.toString().c_str());
  std::printf("  model predicted %s (confidence %.2f, %s)\n",
              std::string(formatName(Report.ModelPrediction)).c_str(),
              Report.ModelConfidence,
              Report.ModelConfident ? "confident" : "below threshold");
  if (!Report.MeasuredGflops.empty()) {
    std::printf("  execute-and-measure ran:");
    for (const auto &[Kind, Gflops] : Report.MeasuredGflops)
      std::printf(" %s=%.2fGF", std::string(formatName(Kind)).c_str(),
                  Gflops);
    std::printf("\n");
  }
  std::printf("  chosen          %s with kernel '%s'\n",
              std::string(formatName(Op.format())).c_str(),
              Op.kernelName().c_str());
  std::printf("  tuning overhead %.1fx one CSR SpMV\n",
              Report.overheadRatio());

  // 4. Use the tuned operator like any SpMV: y = A*x.
  std::vector<double> X(static_cast<std::size_t>(A.NumCols), 1.0);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
  Op.apply(X.data(), Y.data());

  double Checksum = 0;
  for (double V : Y)
    Checksum += V;
  std::printf("\ny = A*x computed; checksum(y) = %.6g\n", Checksum);
  return 0;
}
