//===- examples/train_model.cpp - The off-line stage as a CLI tool --------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Runs SMAT's complete off-line stage (paper Figure 4, lower half) and
// saves the artifacts for later runs — the "train once, reuse for every
// input matrix" deployment the paper's reusability property describes.
//
//   ./train_model out_model.txt [options] [training.mtx ...]
//
//   --scale tiny|small|full   synthetic corpus size (default small)
//   --precision float|double  value type to tune for (default double)
//   --bsr                     enable the BSR extension format
//   --threshold X             runtime confidence threshold (default 0.85)
//   --database out.csv        also save the measured feature database
//
// Any .mtx files listed are added to the synthetic training corpus, so a
// site can bias the model toward its own workload.
//
//===----------------------------------------------------------------------===//

#include "core/Smat.h"
#include "core/Trainer.h"
#include "matrix/MatrixMarket.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace smat;

namespace {

template <typename T>
int runTraining(const std::string &ModelPath, const std::string &DbPath,
                CorpusScale Scale, bool EnableBsr, double Threshold,
                const std::vector<std::string> &ExtraFiles) {
  auto Corpus = buildCorpus(Scale);
  for (const std::string &Path : ExtraFiles) {
    MatrixMarketResult Load = readMatrixMarketFile(Path);
    if (!Load.Ok) {
      std::fprintf(stderr, "error: %s\n", Load.Error.c_str());
      return 1;
    }
    Corpus.push_back({Path, "user", std::move(Load.Matrix)});
  }
  std::printf("corpus: %zu matrices (%zu user-supplied)\n", Corpus.size(),
              ExtraFiles.size());

  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);

  TrainingOptions Opts;
  Opts.EnableBsr = EnableBsr;
  Opts.ConfidenceThreshold = Threshold;
  std::printf("training on %zu matrices (%zu held out)...\n", Training.size(),
              Evaluation.size());
  TrainResult Result = trainSmat<T>(Training, Opts);

  std::printf("\noff-line stage finished in %.1fs:\n", Result.TrainSeconds);
  std::printf("  kernel search        ");
  for (int K = 0; K < NumFormats; ++K)
    std::printf(" %s=%s",
                std::string(formatName(static_cast<FormatKind>(K))).c_str(),
                Result.Model.Kernels.BestKernelName[static_cast<std::size_t>(K)]
                    .c_str());
  std::printf("\n");
  std::printf("  decision tree        %.1f%% training accuracy\n",
              100.0 * Result.TreeAccuracy);
  std::printf("  ruleset              %zu rules -> %zu after tailoring "
              "(%.1f%% -> %.1f%%)\n",
              Result.FullRules.size(), Result.Model.Rules.size(),
              100.0 * Result.FullRuleAccuracy,
              100.0 * Result.TailoredRuleAccuracy);

  auto Dist = Result.Database.formatDistribution();
  std::printf("  best-format counts   ");
  for (int K = 0; K < NumFormats; ++K)
    std::printf(" %s=%zu",
                std::string(formatName(static_cast<FormatKind>(K))).c_str(),
                Dist[static_cast<std::size_t>(K)]);
  std::printf("\n");

  if (!saveModelFile(ModelPath, Result.Model)) {
    std::fprintf(stderr, "error: cannot write model to %s\n",
                 ModelPath.c_str());
    return 1;
  }
  std::printf("\nmodel saved to %s\n", ModelPath.c_str());
  if (!DbPath.empty()) {
    if (!Result.Database.saveCsvFile(DbPath)) {
      std::fprintf(stderr, "error: cannot write database to %s\n",
                   DbPath.c_str());
      return 1;
    }
    std::printf("feature database saved to %s\n", DbPath.c_str());
  }
  std::printf("\nreload with:  Smat<%s>::fromFile(\"%s\")\n",
              sizeof(T) == sizeof(double) ? "double" : "float",
              ModelPath.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s out_model.txt [--scale tiny|small|full] "
                 "[--precision float|double] [--bsr] [--threshold X] "
                 "[--database out.csv] [training.mtx ...]\n",
                 argv[0]);
    return 2;
  }
  std::string ModelPath = argv[1];
  std::string DbPath;
  CorpusScale Scale = CorpusScale::Small;
  bool EnableBsr = false;
  bool UseFloat = false;
  double Threshold = DefaultConfidenceThreshold;
  std::vector<std::string> ExtraFiles;

  for (int Arg = 2; Arg < argc; ++Arg) {
    std::string Flag = argv[Arg];
    auto NextValue = [&]() -> const char * {
      if (Arg + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag.c_str());
        std::exit(2);
      }
      return argv[++Arg];
    };
    if (Flag == "--scale") {
      std::string V = NextValue();
      if (V == "tiny")
        Scale = CorpusScale::Tiny;
      else if (V == "small")
        Scale = CorpusScale::Small;
      else if (V == "full")
        Scale = CorpusScale::Full;
      else {
        std::fprintf(stderr, "error: unknown scale '%s'\n", V.c_str());
        return 2;
      }
    } else if (Flag == "--precision") {
      std::string V = NextValue();
      if (V == "float")
        UseFloat = true;
      else if (V != "double") {
        std::fprintf(stderr, "error: unknown precision '%s'\n", V.c_str());
        return 2;
      }
    } else if (Flag == "--bsr") {
      EnableBsr = true;
    } else if (Flag == "--threshold") {
      Threshold = std::strtod(NextValue(), nullptr);
    } else if (Flag == "--database") {
      DbPath = NextValue();
    } else if (!Flag.empty() && Flag[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Flag.c_str());
      return 2;
    } else {
      ExtraFiles.push_back(Flag);
    }
  }

  return UseFloat ? runTraining<float>(ModelPath, DbPath, Scale, EnableBsr,
                                       Threshold, ExtraFiles)
                  : runTraining<double>(ModelPath, DbPath, Scale, EnableBsr,
                                        Threshold, ExtraFiles);
}
