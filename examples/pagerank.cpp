//===- examples/pagerank.cpp - SMAT on a graph-analytics workload ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's introduction motivates SMAT with large-scale graph analysis
// (PageRank, HITS): power iterations dominated by SpMV on scale-free
// adjacency matrices — exactly the structure where COO beats CSR (paper
// Table 1, Figure 6(e)). This example runs PageRank over a synthetic
// web-like graph with SMAT choosing the format.
//
//   ./pagerank [num_pages]          (default 100000)
//
//===----------------------------------------------------------------------===//

#include "core/Smat.h"
#include "core/Trainer.h"
#include "matrix/FormatConvert.h"
#include "matrix/Generators.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace smat;

int main(int argc, char **argv) {
  index_t NumPages =
      argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 100000;

  // A scale-free "web graph": out-links follow a power law with exponent
  // 2.1 (the classic web measurement).
  CsrMatrix<double> Links = powerLawGraph(NumPages, 2.1, 1, 200, 2013);
  std::printf("web graph: %d pages, %lld links\n", NumPages,
              static_cast<long long>(Links.nnz()));

  // PageRank iterates x <- d * M^T x + (1-d)/N, where M is the link matrix
  // normalized by out-degree. Build M^T once (column-stochastic transpose).
  for (index_t Page = 0; Page < Links.NumRows; ++Page) {
    index_t OutDegree = Links.rowDegree(Page);
    for (index_t I = Links.RowPtr[Page]; I < Links.RowPtr[Page + 1]; ++I)
      Links.Values[I] = 1.0 / static_cast<double>(OutDegree);
  }
  CsrMatrix<double> Mt = transposeCsr(Links);

  // Train the tuner (or load a saved model in a real deployment).
  std::printf("training SMAT model...\n");
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainingOptions Opts;
  Opts.MeasureMinSeconds = 5e-4;
  TrainResult Trained = trainSmat<double>(Training, Opts);
  const Smat<double> Tuner(Trained.Model);

  TunedSpmv<double> Op = SMAT_dCSR_SpMV(Tuner, Mt);
  std::printf("SMAT chose %s (kernel '%s') for the rank-propagation "
              "matrix\n",
              std::string(formatName(Op.format())).c_str(),
              Op.kernelName().c_str());
  std::printf("  features: %s\n", Op.report().Features.toString().c_str());

  // Power iteration.
  constexpr double Damping = 0.85;
  std::size_t N = static_cast<std::size_t>(NumPages);
  std::vector<double> Rank(N, 1.0 / static_cast<double>(NumPages));
  std::vector<double> Next(N, 0.0);

  WallTimer Timer;
  int Iterations = 0;
  double Delta = 1.0;
  while (Delta > 1e-10 && Iterations < 200) {
    Op.apply(Rank.data(), Next.data());
    double Teleport = (1.0 - Damping) / static_cast<double>(NumPages);
    Delta = 0.0;
    for (std::size_t I = 0; I != N; ++I) {
      double Updated = Damping * Next[I] + Teleport;
      Delta += std::abs(Updated - Rank[I]);
      Rank[I] = Updated;
    }
    ++Iterations;
  }
  double Elapsed = Timer.seconds();
  std::printf("\nconverged in %d iterations, %.0f ms (%.1f us/iteration)\n",
              Iterations, Elapsed * 1e3,
              Elapsed / Iterations * 1e6);

  // Top pages.
  std::vector<index_t> Order(N);
  for (std::size_t I = 0; I != N; ++I)
    Order[I] = static_cast<index_t>(I);
  std::partial_sort(Order.begin(), Order.begin() + 5, Order.end(),
                    [&Rank](index_t A, index_t B) {
                      return Rank[static_cast<std::size_t>(A)] >
                             Rank[static_cast<std::size_t>(B)];
                    });
  std::printf("top pages by rank:\n");
  for (int I = 0; I < 5; ++I)
    std::printf("  page %-8d rank %.6g\n", Order[static_cast<std::size_t>(I)],
                Rank[static_cast<std::size_t>(Order[static_cast<std::size_t>(I)])]);
  return 0;
}
