//===- examples/corpus_explorer.cpp - Inspect matrices like SMAT does -----===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// A diagnostic tool over the public API: for a MatrixMarket file (or each
// of the 16 Figure-8 representatives when run without arguments) it prints
// the Table-2 feature parameters, the per-format measured GFLOPS, and what
// a trained SMAT model decides — the full paper pipeline, one matrix at a
// time, in human-readable form.
//
//   ./corpus_explorer [matrix.mtx ...]
//
//===----------------------------------------------------------------------===//

#include "core/Smat.h"
#include "core/Trainer.h"
#include "matrix/MatrixMarket.h"
#include "support/Table.h"

#include <cstdio>

using namespace smat;

namespace {

void explain(const CorpusEntry &Entry, const Smat<double> &Tuner,
             const KernelSelection &Kernels) {
  const CsrMatrix<double> &A = Entry.Matrix;
  std::printf("== %s (%s): %d x %d, %lld nonzeros\n", Entry.Name.c_str(),
              Entry.Domain.c_str(), A.NumRows, A.NumCols,
              static_cast<long long>(A.nnz()));

  FeatureVector F = extractAllFeatures(A);
  std::printf("   features: %s\n", F.toString().c_str());

  TrainingOptions Measure;
  Measure.MeasureMinSeconds = 2e-3;
  auto Gflops = measureAllFormats(A, Kernels, Measure);
  std::printf("   measured:");
  for (int K = 0; K < NumFormats; ++K) {
    double G = Gflops[static_cast<std::size_t>(K)];
    if (G < 0)
      std::printf(" %s=inadmissible",
                  std::string(formatName(static_cast<FormatKind>(K))).c_str());
    else
      std::printf(" %s=%.2fGF",
                  std::string(formatName(static_cast<FormatKind>(K))).c_str(),
                  G);
  }
  std::printf("\n");

  TunedSpmv<double> Op = Tuner.tune(A);
  const TuningReport &Report = Op.report();
  std::printf("   SMAT: predicted %s (conf %.2f%s), chose %s via '%s', "
              "overhead %.1fx CSR-SpMV\n\n",
              std::string(formatName(Report.ModelPrediction)).c_str(),
              Report.ModelConfidence,
              Report.ModelConfident ? "" : ", below threshold -> measured",
              std::string(formatName(Op.format())).c_str(),
              Op.kernelName().c_str(), Report.overheadRatio());
}

} // namespace

int main(int argc, char **argv) {
  std::printf("training SMAT model (off-line stage)...\n\n");
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainingOptions Opts;
  Opts.MeasureMinSeconds = 5e-4;
  TrainResult Trained = trainSmat<double>(Training, Opts);
  const Smat<double> Tuner(Trained.Model);

  std::printf("learned ruleset (%zu rules after tailoring):\n",
              Trained.Model.Rules.size());
  for (const Rule &R : Trained.Model.Rules.Rules)
    std::printf("  %s\n", R.toString().c_str());
  std::printf("\n");

  if (argc > 1) {
    for (int Arg = 1; Arg < argc; ++Arg) {
      MatrixMarketResult Load = readMatrixMarketFile(argv[Arg]);
      if (!Load.Ok) {
        std::fprintf(stderr, "error reading %s: %s\n", argv[Arg],
                     Load.Error.c_str());
        continue;
      }
      explain({argv[Arg], "user", std::move(Load.Matrix)}, Tuner,
              Trained.Model.Kernels);
    }
    return 0;
  }

  for (const CorpusEntry &Entry : representativeMatrices())
    explain(Entry, Tuner, Trained.Model.Kernels);
  return 0;
}
