//===- examples/amg_laplace.cpp - SMAT inside an AMG solver ---------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's flagship application (Section 7.4): an algebraic multigrid
// solve where every operator's SpMV is swapped from fixed CSR to a
// SMAT-tuned kernel. Solves -Laplace(u) = f on a 3D grid with both
// backends and reports the per-level format choices and the speedup.
//
//   ./amg_laplace [grid_side]       (default 36 -> 46656 unknowns)
//
//===----------------------------------------------------------------------===//

#include "amg/AmgSolver.h"
#include "core/Trainer.h"
#include "matrix/Generators.h"

#include <cstdio>
#include <cstdlib>

using namespace smat;

int main(int argc, char **argv) {
  index_t Side = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 36;
  CsrMatrix<double> A = laplace3d7pt(Side, Side, Side);
  std::printf("3D 7-point Laplacian, %d^3 = %d unknowns, %lld nonzeros\n",
              Side, A.NumRows, static_cast<long long>(A.nnz()));

  // Off-line stage: train once (a production run would load a model file).
  std::printf("training SMAT model...\n");
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainingOptions TrainOpts;
  TrainOpts.MeasureMinSeconds = 5e-4;
  TrainResult Trained = trainSmat<double>(Training, TrainOpts);
  const Smat<double> Tuner(Trained.Model);

  std::vector<double> B(static_cast<std::size_t>(A.NumRows), 1.0);
  std::vector<double> X;

  // Hypre-style baseline: CSR everywhere.
  AmgOptions Opts;
  Opts.RelTol = 1e-8;
  Opts.Backend = SpmvBackendKind::FixedCsr;
  AmgSolver Fixed;
  Fixed.setup(A, Opts);
  SolveStats FixedStats = Fixed.solve(B, X);
  std::printf("\nfixed-CSR AMG : %d iterations, rel.res %.2e, setup %.0f ms, "
              "solve %.0f ms\n",
              FixedStats.Iterations, FixedStats.RelResidual,
              FixedStats.SetupSeconds * 1e3, FixedStats.SolveSeconds * 1e3);

  // The paper's change: "simply replace the SpMV kernel codes with SMAT
  // interfaces with no changes to the original CSR data structure".
  Opts.Backend = SpmvBackendKind::Smat;
  Opts.Tuner = &Tuner;
  AmgSolver Tuned;
  Tuned.setup(A, Opts);
  SolveStats TunedStats = Tuned.solve(B, X);
  std::printf("SMAT AMG      : %d iterations, rel.res %.2e, setup %.0f ms, "
              "solve %.0f ms\n",
              TunedStats.Iterations, TunedStats.RelResidual,
              TunedStats.SetupSeconds * 1e3, TunedStats.SolveSeconds * 1e3);
  if (TunedStats.SolveSeconds > 0)
    std::printf("solve-phase speedup: %.2fx (paper Table 4: 1.22-1.29x)\n",
                FixedStats.SolveSeconds / TunedStats.SolveSeconds);

  std::printf("\nper-operator formats chosen by SMAT:\n");
  std::printf("  %-5s %-3s %10s %12s  %-6s %s\n", "level", "op", "rows",
              "nnz", "format", "kernel");
  for (const LevelFormatInfo &D : Tuned.formatDecisions())
    std::printf("  %-5zu %-3s %10d %12lld  %-6s %s\n", D.Level,
                D.Operator.c_str(), D.Rows, static_cast<long long>(D.Nnz),
                std::string(formatName(D.Format)).c_str(), D.Kernel.c_str());

  std::printf("\n(The paper observes DIA on the fine stencil levels and ELL "
              "on most P operators.)\n");
  return 0;
}
