#!/usr/bin/env python3
"""Compare two perf_suite BENCH JSON files and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [options]

Records are matched on (matrix, role). For each pair the GFLOPS ratio
current/baseline is computed; a drop beyond --max-regression (default 10%)
fails the comparison. Unmatched pairs are printed in both directions:
MISSING (in the baseline but not the current run) and NEW (the reverse).
With --require-coverage, any unmatched pair IN EITHER DIRECTION fails the
comparison even under --report-only: a MISSING pair means the current run
lost a case (a coverage bug, not measurement noise), and a NEW pair means
the current run reports a (matrix, role) the baseline file has no row for
-- the committed baseline is stale and must be regenerated, silently
skipping it would let the new case drift ungated.
The tuned role's tune_ms is checked separately: a blowup beyond
--max-tune-blowup (default 3x) fails even under --report-only, because
tune-time explosions are robustly detectable on noisy shared runners while
raw GFLOPS are not.

With --require-tuned-geq-basic, the never-slower selection guarantee is
gated WITHIN the current run alone: every matrix's tuned GFLOPS must reach
at least (1 - --max-regression) of its basic GFLOPS, and spmm_tuned_k8
likewise against basic_x8 when both are present. Both numbers come from the
same run on the same machine, so the check is meaningful even on noisy
shared runners and fails even under --report-only.

Exit codes: 0 ok, 1 regression found, 2 usage/input error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "smat-bench-v1":
        print(f"bench_compare: {path}: unexpected schema "
              f"{doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    records = {}
    for r in doc.get("results", []):
        for key in ("matrix", "role", "format", "kernel", "gflops", "tune_ms"):
            if key not in r:
                print(f"bench_compare: {path}: record missing {key!r}: {r}",
                      file=sys.stderr)
                sys.exit(2)
        records[(r["matrix"], r["role"])] = r
    return records


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="maximal tolerated fractional GFLOPS drop "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--max-tune-blowup", type=float, default=3.0,
                    help="maximal tolerated tune_ms ratio (default 3x)")
    ap.add_argument("--min-tune-ms", type=float, default=50.0,
                    help="tune_ms floor below which the blowup check is "
                         "skipped (millisecond tunes are noise-dominated; "
                         "default 50)")
    ap.add_argument("--report-only", action="store_true",
                    help="report GFLOPS regressions without failing on them "
                         "(shared-runner mode); tune-time blowups still fail")
    ap.add_argument("--require-coverage", action="store_true",
                    help="fail when the baseline and current runs do not "
                         "cover the same (matrix, role) pairs -- missing OR "
                         "new -- even under --report-only")
    ap.add_argument("--require-tuned-geq-basic", action="store_true",
                    help="fail when any matrix in the CURRENT run has tuned "
                         "GFLOPS below (1 - max-regression) of its basic "
                         "GFLOPS (and spmm_tuned_k8 below basic_x8); "
                         "within-run, so it fails even under --report-only. "
                         "A tuned role whose basic counterpart row is absent "
                         "(or vice versa) fails as a coverage error instead "
                         "of being silently skipped")
    ap.add_argument("--max-first-call-ms", type=float, default=None,
                    help="fail when any time_to_first_call row in the "
                         "CURRENT run took longer than this many "
                         "milliseconds (the serve-from-call-1 guarantee of "
                         "the async tuning service); within-run, so it "
                         "fails even under --report-only")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    gflops_failures = []
    tune_failures = []
    missing = []
    for key in sorted(base):
        if key not in cur:
            print(f"MISSING  {key[0]}/{key[1]}: in baseline but not current")
            missing.append(key)
            continue
        b, c = base[key], cur[key]
        if b["gflops"] > 0:
            ratio = c["gflops"] / b["gflops"]
            drop = 1.0 - ratio
            status = "OK"
            if drop > args.max_regression:
                status = "REGRESS"
                gflops_failures.append(key)
            print(f"{status:8} {key[0]}/{key[1]}: "
                  f"{b['gflops']:.3f} -> {c['gflops']:.3f} GFLOPS "
                  f"({ratio:.2%})")
        if (key[1] == "tuned" and b["tune_ms"] > 0
                and c["tune_ms"] > args.min_tune_ms):
            tune_ratio = c["tune_ms"] / b["tune_ms"]
            if tune_ratio > args.max_tune_blowup:
                tune_failures.append(key)
                print(f"TUNEBLOW {key[0]}: tune {b['tune_ms']:.3f} -> "
                      f"{c['tune_ms']:.3f} ms ({tune_ratio:.2f}x)")

    new = sorted(set(cur) - set(base))
    for key in new:
        suffix = "" if args.require_coverage else " (ignored)"
        print(f"NEW      {key[0]}/{key[1]}: current run reports it but the "
              f"baseline has no such row{suffix}")

    never_slower_failures = []
    coverage_errors = []
    if args.require_tuned_geq_basic:
        floor = 1.0 - args.max_regression
        pairs = [("basic", "tuned"), ("basic_x8", "spmm_tuned_k8")]
        matrices = sorted({m for (m, _r) in cur})
        for m in matrices:
            for base_role, tuned_role in pairs:
                b = cur.get((m, base_role))
                t = cur.get((m, tuned_role))
                if b is None and t is None:
                    continue  # this matrix has neither role of the pair
                if b is None or t is None:
                    # Half a pair present: the never-slower guarantee cannot
                    # be checked, which must fail loudly, not pass silently.
                    have = tuned_role if b is None else base_role
                    lack = base_role if b is None else tuned_role
                    coverage_errors.append((m, lack))
                    print(f"NOPAIR   {m}: has role {have!r} but not its "
                          f"counterpart {lack!r}; cannot check the "
                          f"never-slower guarantee")
                    continue
                if b["gflops"] <= 0:
                    continue
                ratio = t["gflops"] / b["gflops"]
                guard = t.get("guardrail")
                note = " [guardrail]" if guard else ""
                if ratio < floor:
                    never_slower_failures.append((m, tuned_role))
                    print(f"SLOWER   {m}/{tuned_role}: {t['gflops']:.3f} vs "
                          f"{base_role} {b['gflops']:.3f} GFLOPS "
                          f"({ratio:.2%}){note}")
                else:
                    print(f"GEQBASIC {m}/{tuned_role}: {t['gflops']:.3f} vs "
                          f"{base_role} {b['gflops']:.3f} GFLOPS "
                          f"({ratio:.2%}){note}")

    first_call_failures = []
    if args.max_first_call_ms is not None:
        rows = [(m, r) for (m, r) in sorted(cur) if r == "time_to_first_call"]
        if not rows:
            print("bench_compare: FAIL: --max-first-call-ms given but the "
                  "current run has no time_to_first_call rows to gate")
            return 1
        for key in rows:
            ms = cur[key]["tune_ms"]
            status = "FIRSTCALL"
            if ms > args.max_first_call_ms:
                status = "SLOWSTART"
                first_call_failures.append(key)
            print(f"{status:8} {key[0]}: first servable call after "
                  f"{ms:.3f} ms (limit {args.max_first_call_ms:.3f})")

    if missing and args.require_coverage:
        print(f"bench_compare: FAIL: {len(missing)} (matrix, role) pair(s) "
              f"in the baseline are missing from the current run")
        return 1
    if new and args.require_coverage:
        print(f"bench_compare: FAIL: {len(new)} (matrix, role) pair(s) in "
              f"the current run have no baseline row; regenerate the "
              f"committed baseline to cover them")
        return 1
    if coverage_errors:
        print(f"bench_compare: FAIL: {len(coverage_errors)} matrix/role "
              f"pair(s) lack the counterpart row the never-slower check "
              f"needs")
        return 1
    if first_call_failures:
        print(f"bench_compare: FAIL: {len(first_call_failures)} "
              f"time_to_first_call row(s) beyond "
              f"{args.max_first_call_ms:.3f} ms (serve-from-call-1 "
              f"guarantee violated)")
        return 1
    if tune_failures:
        print(f"bench_compare: FAIL: {len(tune_failures)} tune-time "
              f"blowup(s) beyond {args.max_tune_blowup:.1f}x")
        return 1
    if never_slower_failures:
        print(f"bench_compare: FAIL: {len(never_slower_failures)} tuned "
              f"result(s) slower than the untuned basic baseline beyond "
              f"{args.max_regression:.0%} (never-slower guarantee violated)")
        return 1
    # Without --require-coverage, missing pairs count as regressions (they
    # respect --report-only like any other GFLOPS failure).
    gflops_failures.extend(missing)
    if gflops_failures:
        msg = (f"{len(gflops_failures)} GFLOPS regression(s) beyond "
               f"{args.max_regression:.0%}")
        if args.report_only:
            print(f"bench_compare: WARN (report-only): {msg}")
            return 0
        print(f"bench_compare: FAIL: {msg}")
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
