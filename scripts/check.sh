#!/usr/bin/env bash
#===- scripts/check.sh - Tier-1 suite, default flags then sanitized -------===#
#
# Part of the SMAT reproduction project.
#
# Runs the tier-1 test suite twice: once with default flags and once with
# SMAT_SANITIZE=ON (ASan + UBSan), so the malformed-input fuzz harness is
# exercised both for observable behavior (errors, never crashes) and for
# silent memory errors the sanitizers surface.
#
# Usage: scripts/check.sh [--fuzz-only]
#   --fuzz-only   restrict both passes to the fuzz-labelled binaries
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."

CTEST_ARGS=(--output-on-failure -j "$(nproc)" -L tier1)
if [[ "${1:-}" == "--fuzz-only" ]]; then
  CTEST_ARGS=(--output-on-failure -j "$(nproc)" -L fuzz)
fi

run_pass() {
  local build_dir="$1"
  shift
  echo "=== configure: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build: ${build_dir} ==="
  cmake --build "${build_dir}" -j "$(nproc)"
  echo "=== ctest: ${build_dir} ==="
  (cd "${build_dir}" && ctest "${CTEST_ARGS[@]}")
}

run_pass build
run_pass build-asan -DSMAT_SANITIZE=ON

echo "=== check.sh: both passes green ==="
