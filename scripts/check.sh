#!/usr/bin/env bash
#===- scripts/check.sh - Tier-1 suite across the hardening builds ---------===#
#
# Part of the SMAT reproduction project.
#
# Runs the tier-1 test suite across five build configurations:
#
#   build        default flags, full tier-1 suite
#   build-asan   SMAT_SANITIZE=ON (ASan + UBSan), full tier-1 suite — the
#                malformed-input fuzz harness under memory-error detection
#   build-tsan   SMAT_SANITIZE=thread, stress-labelled binaries only — the
#                concurrent PlanCache/Smat stress under ThreadSanitizer
#                (OMP_NUM_THREADS=1: the OpenMP runtime is not TSan-
#                instrumented, and the threading under test is std::thread)
#   build-fault  SMAT_FAULT_INJECTION=ON, fault-labelled binaries only —
#                the injection sweeps and degradation-ladder tests, which
#                skip themselves in builds without the hooks
#   build-tsan-fault
#                SMAT_SANITIZE=thread + SMAT_FAULT_INJECTION=ON together,
#                service-labelled binaries — the async tuning service's
#                worker thread and atomic plan swaps race-checked WHILE the
#                fault sites are armed, so the failure paths (worker death,
#                snapshot corruption) run under TSan too
#
# Usage: scripts/check.sh [--fuzz-only]
#   --fuzz-only   restrict the default and ASan passes to the fuzz-labelled
#                 binaries (the TSan and fault passes still run their own
#                 labels)
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."

TIER1_LABEL=tier1
if [[ "${1:-}" == "--fuzz-only" ]]; then
  TIER1_LABEL=fuzz
fi

run_pass() {
  local build_dir="$1"
  local label="$2"
  shift 2
  echo "=== configure: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build: ${build_dir} ==="
  cmake --build "${build_dir}" -j "$(nproc)"
  echo "=== ctest: ${build_dir} (-L ${label}) ==="
  (cd "${build_dir}" &&
   ctest --output-on-failure -j "$(nproc)" -L "${label}")
}

run_pass build "${TIER1_LABEL}"
run_pass build-asan "${TIER1_LABEL}" -DSMAT_SANITIZE=ON
OMP_NUM_THREADS=1 run_pass build-tsan stress -DSMAT_SANITIZE=thread
run_pass build-fault fault -DSMAT_FAULT_INJECTION=ON
OMP_NUM_THREADS=1 run_pass build-tsan-fault service \
  -DSMAT_SANITIZE=thread -DSMAT_FAULT_INJECTION=ON

echo "=== check.sh: all five passes green ==="
