file(REMOVE_RECURSE
  "CMakeFiles/amg_laplace.dir/amg_laplace.cpp.o"
  "CMakeFiles/amg_laplace.dir/amg_laplace.cpp.o.d"
  "amg_laplace"
  "amg_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
