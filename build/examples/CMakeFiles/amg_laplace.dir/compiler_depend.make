# Empty compiler generated dependencies file for amg_laplace.
# This may be replaced when dependencies are built.
