# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(matrix_test "/root/repo/build/tests/matrix_test")
set_tests_properties(matrix_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(generators_test "/root/repo/build/tests/generators_test")
set_tests_properties(generators_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kernels_test "/root/repo/build/tests/kernels_test")
set_tests_properties(kernels_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(features_test "/root/repo/build/tests/features_test")
set_tests_properties(features_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ml_test "/root/repo/build/tests/ml_test")
set_tests_properties(ml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(amg_test "/root/repo/build/tests/amg_test")
set_tests_properties(amg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
