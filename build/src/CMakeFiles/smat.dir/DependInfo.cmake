
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amg/AmgSolver.cpp" "src/CMakeFiles/smat.dir/amg/AmgSolver.cpp.o" "gcc" "src/CMakeFiles/smat.dir/amg/AmgSolver.cpp.o.d"
  "/root/repo/src/amg/Coarsen.cpp" "src/CMakeFiles/smat.dir/amg/Coarsen.cpp.o" "gcc" "src/CMakeFiles/smat.dir/amg/Coarsen.cpp.o.d"
  "/root/repo/src/amg/Hierarchy.cpp" "src/CMakeFiles/smat.dir/amg/Hierarchy.cpp.o" "gcc" "src/CMakeFiles/smat.dir/amg/Hierarchy.cpp.o.d"
  "/root/repo/src/amg/Interp.cpp" "src/CMakeFiles/smat.dir/amg/Interp.cpp.o" "gcc" "src/CMakeFiles/smat.dir/amg/Interp.cpp.o.d"
  "/root/repo/src/amg/Relax.cpp" "src/CMakeFiles/smat.dir/amg/Relax.cpp.o" "gcc" "src/CMakeFiles/smat.dir/amg/Relax.cpp.o.d"
  "/root/repo/src/amg/SpGemm.cpp" "src/CMakeFiles/smat.dir/amg/SpGemm.cpp.o" "gcc" "src/CMakeFiles/smat.dir/amg/SpGemm.cpp.o.d"
  "/root/repo/src/amg/Strength.cpp" "src/CMakeFiles/smat.dir/amg/Strength.cpp.o" "gcc" "src/CMakeFiles/smat.dir/amg/Strength.cpp.o.d"
  "/root/repo/src/core/FeatureDatabase.cpp" "src/CMakeFiles/smat.dir/core/FeatureDatabase.cpp.o" "gcc" "src/CMakeFiles/smat.dir/core/FeatureDatabase.cpp.o.d"
  "/root/repo/src/core/LearningModel.cpp" "src/CMakeFiles/smat.dir/core/LearningModel.cpp.o" "gcc" "src/CMakeFiles/smat.dir/core/LearningModel.cpp.o.d"
  "/root/repo/src/core/Smat.cpp" "src/CMakeFiles/smat.dir/core/Smat.cpp.o" "gcc" "src/CMakeFiles/smat.dir/core/Smat.cpp.o.d"
  "/root/repo/src/core/Trainer.cpp" "src/CMakeFiles/smat.dir/core/Trainer.cpp.o" "gcc" "src/CMakeFiles/smat.dir/core/Trainer.cpp.o.d"
  "/root/repo/src/features/FeatureExtractor.cpp" "src/CMakeFiles/smat.dir/features/FeatureExtractor.cpp.o" "gcc" "src/CMakeFiles/smat.dir/features/FeatureExtractor.cpp.o.d"
  "/root/repo/src/kernels/BsrKernels.cpp" "src/CMakeFiles/smat.dir/kernels/BsrKernels.cpp.o" "gcc" "src/CMakeFiles/smat.dir/kernels/BsrKernels.cpp.o.d"
  "/root/repo/src/kernels/CooKernels.cpp" "src/CMakeFiles/smat.dir/kernels/CooKernels.cpp.o" "gcc" "src/CMakeFiles/smat.dir/kernels/CooKernels.cpp.o.d"
  "/root/repo/src/kernels/CsrKernels.cpp" "src/CMakeFiles/smat.dir/kernels/CsrKernels.cpp.o" "gcc" "src/CMakeFiles/smat.dir/kernels/CsrKernels.cpp.o.d"
  "/root/repo/src/kernels/DiaKernels.cpp" "src/CMakeFiles/smat.dir/kernels/DiaKernels.cpp.o" "gcc" "src/CMakeFiles/smat.dir/kernels/DiaKernels.cpp.o.d"
  "/root/repo/src/kernels/EllKernels.cpp" "src/CMakeFiles/smat.dir/kernels/EllKernels.cpp.o" "gcc" "src/CMakeFiles/smat.dir/kernels/EllKernels.cpp.o.d"
  "/root/repo/src/kernels/KernelRegistry.cpp" "src/CMakeFiles/smat.dir/kernels/KernelRegistry.cpp.o" "gcc" "src/CMakeFiles/smat.dir/kernels/KernelRegistry.cpp.o.d"
  "/root/repo/src/kernels/Scoreboard.cpp" "src/CMakeFiles/smat.dir/kernels/Scoreboard.cpp.o" "gcc" "src/CMakeFiles/smat.dir/kernels/Scoreboard.cpp.o.d"
  "/root/repo/src/matrix/Corpus.cpp" "src/CMakeFiles/smat.dir/matrix/Corpus.cpp.o" "gcc" "src/CMakeFiles/smat.dir/matrix/Corpus.cpp.o.d"
  "/root/repo/src/matrix/FormatConvert.cpp" "src/CMakeFiles/smat.dir/matrix/FormatConvert.cpp.o" "gcc" "src/CMakeFiles/smat.dir/matrix/FormatConvert.cpp.o.d"
  "/root/repo/src/matrix/Generators.cpp" "src/CMakeFiles/smat.dir/matrix/Generators.cpp.o" "gcc" "src/CMakeFiles/smat.dir/matrix/Generators.cpp.o.d"
  "/root/repo/src/matrix/MatrixMarket.cpp" "src/CMakeFiles/smat.dir/matrix/MatrixMarket.cpp.o" "gcc" "src/CMakeFiles/smat.dir/matrix/MatrixMarket.cpp.o.d"
  "/root/repo/src/ml/CrossValidate.cpp" "src/CMakeFiles/smat.dir/ml/CrossValidate.cpp.o" "gcc" "src/CMakeFiles/smat.dir/ml/CrossValidate.cpp.o.d"
  "/root/repo/src/ml/Dataset.cpp" "src/CMakeFiles/smat.dir/ml/Dataset.cpp.o" "gcc" "src/CMakeFiles/smat.dir/ml/Dataset.cpp.o.d"
  "/root/repo/src/ml/DecisionTree.cpp" "src/CMakeFiles/smat.dir/ml/DecisionTree.cpp.o" "gcc" "src/CMakeFiles/smat.dir/ml/DecisionTree.cpp.o.d"
  "/root/repo/src/ml/ModelIO.cpp" "src/CMakeFiles/smat.dir/ml/ModelIO.cpp.o" "gcc" "src/CMakeFiles/smat.dir/ml/ModelIO.cpp.o.d"
  "/root/repo/src/ml/RuleSet.cpp" "src/CMakeFiles/smat.dir/ml/RuleSet.cpp.o" "gcc" "src/CMakeFiles/smat.dir/ml/RuleSet.cpp.o.d"
  "/root/repo/src/ref/RefSpmv.cpp" "src/CMakeFiles/smat.dir/ref/RefSpmv.cpp.o" "gcc" "src/CMakeFiles/smat.dir/ref/RefSpmv.cpp.o.d"
  "/root/repo/src/support/Str.cpp" "src/CMakeFiles/smat.dir/support/Str.cpp.o" "gcc" "src/CMakeFiles/smat.dir/support/Str.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/smat.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/smat.dir/support/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
