file(REMOVE_RECURSE
  "libsmat.a"
)
