# Empty compiler generated dependencies file for smat.
# This may be replaced when dependencies are built.
