# Empty dependencies file for smat.
# This may be replaced when dependencies are built.
