# Empty compiler generated dependencies file for fig10_smat_vs_ref.
# This may be replaced when dependencies are built.
