file(REMOVE_RECURSE
  "CMakeFiles/fig10_smat_vs_ref.dir/fig10_smat_vs_ref.cpp.o"
  "CMakeFiles/fig10_smat_vs_ref.dir/fig10_smat_vs_ref.cpp.o.d"
  "fig10_smat_vs_ref"
  "fig10_smat_vs_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_smat_vs_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
