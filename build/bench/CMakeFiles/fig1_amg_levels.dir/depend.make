# Empty dependencies file for fig1_amg_levels.
# This may be replaced when dependencies are built.
