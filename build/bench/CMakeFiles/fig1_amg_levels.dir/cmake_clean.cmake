file(REMOVE_RECURSE
  "CMakeFiles/fig1_amg_levels.dir/fig1_amg_levels.cpp.o"
  "CMakeFiles/fig1_amg_levels.dir/fig1_amg_levels.cpp.o.d"
  "fig1_amg_levels"
  "fig1_amg_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_amg_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
