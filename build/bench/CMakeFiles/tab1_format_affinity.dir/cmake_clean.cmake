file(REMOVE_RECURSE
  "CMakeFiles/tab1_format_affinity.dir/tab1_format_affinity.cpp.o"
  "CMakeFiles/tab1_format_affinity.dir/tab1_format_affinity.cpp.o.d"
  "tab1_format_affinity"
  "tab1_format_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_format_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
