# Empty compiler generated dependencies file for tab1_format_affinity.
# This may be replaced when dependencies are built.
