file(REMOVE_RECURSE
  "CMakeFiles/ext_bsr_extension.dir/ext_bsr_extension.cpp.o"
  "CMakeFiles/ext_bsr_extension.dir/ext_bsr_extension.cpp.o.d"
  "ext_bsr_extension"
  "ext_bsr_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bsr_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
