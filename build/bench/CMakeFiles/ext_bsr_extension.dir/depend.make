# Empty dependencies file for ext_bsr_extension.
# This may be replaced when dependencies are built.
