file(REMOVE_RECURSE
  "CMakeFiles/fig9_smat_performance.dir/fig9_smat_performance.cpp.o"
  "CMakeFiles/fig9_smat_performance.dir/fig9_smat_performance.cpp.o.d"
  "fig9_smat_performance"
  "fig9_smat_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_smat_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
