# Empty dependencies file for fig9_smat_performance.
# This may be replaced when dependencies are built.
