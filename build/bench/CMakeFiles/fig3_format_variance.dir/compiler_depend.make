# Empty compiler generated dependencies file for fig3_format_variance.
# This may be replaced when dependencies are built.
