file(REMOVE_RECURSE
  "CMakeFiles/fig3_format_variance.dir/fig3_format_variance.cpp.o"
  "CMakeFiles/fig3_format_variance.dir/fig3_format_variance.cpp.o.d"
  "fig3_format_variance"
  "fig3_format_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_format_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
