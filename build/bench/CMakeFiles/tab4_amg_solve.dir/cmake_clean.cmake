file(REMOVE_RECURSE
  "CMakeFiles/tab4_amg_solve.dir/tab4_amg_solve.cpp.o"
  "CMakeFiles/tab4_amg_solve.dir/tab4_amg_solve.cpp.o.d"
  "tab4_amg_solve"
  "tab4_amg_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_amg_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
