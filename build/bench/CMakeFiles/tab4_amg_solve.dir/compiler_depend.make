# Empty compiler generated dependencies file for tab4_amg_solve.
# This may be replaced when dependencies are built.
