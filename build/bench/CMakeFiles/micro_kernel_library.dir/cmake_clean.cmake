file(REMOVE_RECURSE
  "CMakeFiles/micro_kernel_library.dir/micro_kernel_library.cpp.o"
  "CMakeFiles/micro_kernel_library.dir/micro_kernel_library.cpp.o.d"
  "micro_kernel_library"
  "micro_kernel_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kernel_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
