# Empty compiler generated dependencies file for micro_kernel_library.
# This may be replaced when dependencies are built.
