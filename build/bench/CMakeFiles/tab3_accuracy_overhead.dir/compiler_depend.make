# Empty compiler generated dependencies file for tab3_accuracy_overhead.
# This may be replaced when dependencies are built.
