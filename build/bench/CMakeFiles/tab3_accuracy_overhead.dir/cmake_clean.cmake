file(REMOVE_RECURSE
  "CMakeFiles/tab3_accuracy_overhead.dir/tab3_accuracy_overhead.cpp.o"
  "CMakeFiles/tab3_accuracy_overhead.dir/tab3_accuracy_overhead.cpp.o.d"
  "tab3_accuracy_overhead"
  "tab3_accuracy_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_accuracy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
