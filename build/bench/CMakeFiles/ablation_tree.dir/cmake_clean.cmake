file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree.dir/ablation_tree.cpp.o"
  "CMakeFiles/ablation_tree.dir/ablation_tree.cpp.o.d"
  "ablation_tree"
  "ablation_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
