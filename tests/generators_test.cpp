//===- tests/generators_test.cpp - Generator and corpus unit tests --------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "matrix/Corpus.h"
#include "matrix/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace smat;
using namespace smat::test;

// --- Stencils ----------------------------------------------------------------

TEST(StencilTest, Laplace5ptStructure) {
  CsrMatrix<double> A = laplace2d5pt(4, 3);
  ASSERT_TRUE(A.isValid());
  EXPECT_EQ(A.NumRows, 12);
  // Interior point has degree 5; corners 3.
  EXPECT_EQ(A.rowDegree(5), 5);
  EXPECT_EQ(A.rowDegree(0), 3);
  EXPECT_DOUBLE_EQ(A.at(5, 5), 4.0);
  EXPECT_DOUBLE_EQ(A.at(5, 4), -1.0);
  EXPECT_DOUBLE_EQ(A.at(5, 1), -1.0);
}

TEST(StencilTest, Laplace5ptRowSumsZeroInside) {
  CsrMatrix<double> A = laplace2d5pt(5, 5);
  // Interior row sum is 0 (diagonal 4, four -1 neighbours).
  index_t Interior = 2 * 5 + 2;
  double Sum = 0;
  for (index_t I = A.RowPtr[Interior]; I < A.RowPtr[Interior + 1]; ++I)
    Sum += A.Values[I];
  EXPECT_DOUBLE_EQ(Sum, 0.0);
}

TEST(StencilTest, Laplace9ptDegrees) {
  CsrMatrix<double> A = laplace2d9pt(4, 4);
  EXPECT_EQ(A.rowDegree(5), 9);  // Interior.
  EXPECT_EQ(A.rowDegree(0), 4);  // Corner.
  EXPECT_DOUBLE_EQ(A.at(5, 5), 8.0);
}

TEST(StencilTest, Laplace7ptStructure) {
  CsrMatrix<double> A = laplace3d7pt(3, 3, 3);
  EXPECT_EQ(A.NumRows, 27);
  EXPECT_EQ(A.rowDegree(13), 7); // Center of the cube.
  EXPECT_DOUBLE_EQ(A.at(13, 13), 6.0);
}

TEST(StencilTest, Laplace27ptStructure) {
  CsrMatrix<double> A = laplace3d27pt(3, 3, 3);
  EXPECT_EQ(A.rowDegree(13), 27);
  EXPECT_DOUBLE_EQ(A.at(13, 13), 26.0);
}

TEST(StencilTest, StencilsAreSymmetric) {
  for (const CsrMatrix<double> &A :
       {laplace2d5pt(6, 5), laplace2d9pt(5, 4), laplace3d7pt(3, 4, 2)}) {
    CsrMatrix<double> At = transposeCsr(A);
    EXPECT_EQ(toDense(A), toDense(At));
  }
}

// --- Diagonal generators -------------------------------------------------------

TEST(DiagGenTest, TridiagonalShape) {
  CsrMatrix<double> A = tridiagonal(10);
  EXPECT_EQ(A.nnz(), 28); // 10 + 9 + 9.
  EXPECT_EQ(A.rowDegree(0), 2);
  EXPECT_EQ(A.rowDegree(5), 3);
}

TEST(DiagGenTest, BandedFullBand) {
  CsrMatrix<double> A = banded(20, 3);
  EXPECT_EQ(A.rowDegree(10), 7);
  DiaMatrix<double> Dia;
  ASSERT_TRUE(csrToDia(A, Dia));
  EXPECT_EQ(Dia.numDiags(), 7);
}

TEST(DiagGenTest, MultiDiagonalOffsets) {
  CsrMatrix<double> A = multiDiagonal(50, {-7, 0, 13});
  DiaMatrix<double> Dia;
  ASSERT_TRUE(csrToDia(A, Dia));
  std::vector<index_t> Expected = {-7, 0, 13};
  ASSERT_EQ(Dia.Offsets.size(), Expected.size());
  EXPECT_TRUE(std::equal(Expected.begin(), Expected.end(),
                         Dia.Offsets.begin()));
  // Every stored diagonal is fully occupied ("true diagonals").
  EXPECT_EQ(A.nnz(), 50 + 43 + 37);
}

TEST(DiagGenTest, BrokenDiagonalsOccupancy) {
  CsrMatrix<double> Full = multiDiagonal(400, {-5, 0, 5});
  CsrMatrix<double> Broken =
      brokenDiagonals(400, {-5, 0, 5}, /*Occupancy=*/0.5, /*Seed=*/3);
  EXPECT_LT(Broken.nnz(), Full.nnz());
  // The main diagonal is kept intact.
  for (index_t I = 0; I < 400; ++I)
    EXPECT_NE(Broken.at(I, I), 0.0);
}

// --- Random generators ---------------------------------------------------------

TEST(RandomGenTest, BoundedDegreeRespectsBounds) {
  CsrMatrix<double> A = boundedDegreeRandom(200, 100, 3, 6, 17);
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    EXPECT_GE(A.rowDegree(Row), 3);
    EXPECT_LE(A.rowDegree(Row), 6);
  }
  EXPECT_TRUE(A.hasSortedRows());
}

TEST(RandomGenTest, BoundedDegreeColumnsDistinct) {
  CsrMatrix<double> A = boundedDegreeRandom(100, 8, 5, 8, 19);
  // Sorted rows with distinct columns means strictly ascending.
  EXPECT_TRUE(A.hasSortedRows());
}

TEST(RandomGenTest, ErdosRenyiApproximatesDegree) {
  CsrMatrix<double> A = erdosRenyi(2000, 2000, 8.0, 23);
  double AvgDeg = static_cast<double>(A.nnz()) / A.NumRows;
  EXPECT_NEAR(AvgDeg, 8.0, 1.0);
}

TEST(RandomGenTest, PowerLawDegreesInRange) {
  CsrMatrix<double> A = powerLawGraph(500, 2.0, 2, 50, 29);
  index_t MaxDeg = 0, MinDeg = 1 << 30;
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    MaxDeg = std::max(MaxDeg, A.rowDegree(Row));
    MinDeg = std::min(MinDeg, A.rowDegree(Row));
  }
  EXPECT_GE(MinDeg, 2);
  EXPECT_LE(MaxDeg, 50);
}

TEST(RandomGenTest, PowerLawSkewsTowardsLowDegree) {
  CsrMatrix<double> A = powerLawGraph(3000, 2.5, 1, 100, 31);
  index_t LowDeg = 0;
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    LowDeg += A.rowDegree(Row) <= 3 ? 1 : 0;
  // With exponent 2.5 the overwhelming majority of rows are light.
  EXPECT_GT(LowDeg, A.NumRows / 2);
}

TEST(RandomGenTest, BarabasiAlbertIsSymmetricPattern) {
  CsrMatrix<double> A = barabasiAlbert(300, 3, 37);
  EXPECT_EQ(A.NumRows, 300);
  CsrMatrix<double> At = transposeCsr(A);
  EXPECT_EQ(toDense(A), toDense(At));
}

TEST(RandomGenTest, GeneratorsAreDeterministic) {
  CsrMatrix<double> A = powerLawGraph(200, 2.0, 1, 30, 41);
  CsrMatrix<double> B = powerLawGraph(200, 2.0, 1, 30, 41);
  EXPECT_EQ(toDense(A), toDense(B));
  CsrMatrix<double> C = powerLawGraph(200, 2.0, 1, 30, 42);
  EXPECT_NE(toDense(A), toDense(C));
}

TEST(RandomGenTest, BlockFemHasDenseBlocks) {
  CsrMatrix<double> A = blockFem(5, 8, 0.0, 43);
  EXPECT_EQ(A.NumRows, 40);
  // Within-block rows are fully dense (degree >= block size).
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    EXPECT_GE(A.rowDegree(Row), 8);
}

TEST(RandomGenTest, CircuitLikeHasSpikes) {
  CsrMatrix<double> A = circuitLike(500, 3, 0.3, 47);
  index_t MaxDeg = 0;
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    MaxDeg = std::max(MaxDeg, A.rowDegree(Row));
  EXPECT_GE(MaxDeg, 100) << "dense rows should exist";
}

TEST(RandomGenTest, LpRectangularShape) {
  CsrMatrix<double> A = lpRectangular(300, 60, 5, 53);
  EXPECT_EQ(A.NumRows, 300);
  EXPECT_EQ(A.NumCols, 60);
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    EXPECT_EQ(A.rowDegree(Row), 5);
}

TEST(RandomGenTest, SpikedRowsContrast) {
  CsrMatrix<double> A = spikedRows(400, 4, 200, 0.05, 59);
  index_t Spikes = 0;
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    if (A.rowDegree(Row) == 200)
      ++Spikes;
  EXPECT_GT(Spikes, 0);
  EXPECT_LT(Spikes, 80);
}

TEST(RandomGenTest, RandomizeValuesKeepsPattern) {
  CsrMatrix<double> A = tridiagonal(30);
  CsrMatrix<double> B = A;
  randomizeValues(B, 61);
  EXPECT_EQ(A.nnz(), B.nnz());
  EXPECT_TRUE(
      std::equal(A.ColIdx.begin(), A.ColIdx.end(), B.ColIdx.begin()));
  EXPECT_NE(toDense(A), toDense(B));
}

// --- Corpus ---------------------------------------------------------------------

TEST(CorpusTest, TinyCorpusCoversAllDomains) {
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::set<std::string> Domains;
  for (const CorpusEntry &E : Corpus) {
    Domains.insert(E.Domain);
    ASSERT_TRUE(E.Matrix.isValid()) << E.Name;
    EXPECT_GT(E.Matrix.nnz(), 0) << E.Name;
  }
  EXPECT_EQ(Domains.size(), corpusDomains().size());
  EXPECT_GE(Corpus.size(), 2 * corpusDomains().size());
}

TEST(CorpusTest, CorpusIsDeterministic) {
  auto A = buildCorpus(CorpusScale::Tiny, 99);
  auto B = buildCorpus(CorpusScale::Tiny, 99);
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Matrix.nnz(), B[I].Matrix.nnz());
  }
}

TEST(CorpusTest, SplitMatchesPaperProportion) {
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  EXPECT_EQ(Training.size() + Evaluation.size(), Corpus.size());
  // Every 7th held out: evaluation ~ 1/7 of the corpus.
  EXPECT_NEAR(static_cast<double>(Evaluation.size()),
              static_cast<double>(Corpus.size()) / 7.0, 1.0);
}

TEST(CorpusTest, RepresentativesMatchFigure8Roles) {
  auto Reps = representativeMatrices();
  ASSERT_EQ(Reps.size(), 16u);
  for (const CorpusEntry &E : Reps) {
    ASSERT_TRUE(E.Matrix.isValid()) << E.Name;
    EXPECT_GT(E.Matrix.nnz(), 0) << E.Name;
  }
  // 1-4 are DIA-friendly: few diagonals.
  DiaMatrix<double> Dia;
  EXPECT_TRUE(csrToDia(Reps[1].Matrix, Dia));
  // 5-8 are ELL-friendly: tiny constant degree.
  EllMatrix<double> Ell;
  EXPECT_TRUE(csrToEll(Reps[4].Matrix, Ell));
  EXPECT_LE(Ell.Width, 4);
  // 7-8 are rectangular, like ch7-9-b3 / shar_te2-b2.
  EXPECT_GT(Reps[6].Matrix.NumRows, Reps[6].Matrix.NumCols);
}

TEST(CorpusTest, FullCorpusSizeMatchesPaperScale) {
  // Don't build the full corpus here (slow); check the arithmetic instead:
  // 23 domains x 93 replicas >= the paper's 2386-matrix study when split
  // 2055 training / 331 evaluation.
  EXPECT_GE(corpusDomains().size() * 93, 2055u + 84u);
}
