//===- tests/service_test.cpp - Async tuning-as-a-service runtime ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The tuning-as-a-service contract (DESIGN.md section 16): tuneAsync returns
// a handle that serves correct SpMV from call #1 on basic CSR, a background
// worker swaps the tuned plan in atomically, every worker failure parks the
// handle on basic CSR (correct, never a crash), the sharded PlanCache stays
// race-free under singleflight/eviction/persistence contention, snapshots
// round-trip across service instances, and model hot-reload invalidates
// stale cached plans via the generation stamp. The whole suite is run under
// TSan with fault injection armed by the CI "service" leg (scripts/check.sh
// pass 5).
//
//===----------------------------------------------------------------------===//

#include "core/TuningService.h"
#include "matrix/Generators.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace smat;
using namespace smat::test;

namespace {

/// A model that is never confident, so every cold tune in these tests runs
/// the full measurement pipeline off-thread (the interesting path).
LearningModel strictModel() {
  LearningModel Model;
  Model.ConfidenceThreshold = 2.0;
  Model.refreshRuleMetadata();
  return Model;
}

/// Service options tuned for test latency: tight (but not degenerate)
/// measurement floors and watchdog budgets, no persistence unless a test
/// opts in.
typename TuningService<double>::Options fastServiceOptions() {
  typename TuningService<double>::Options Opts;
  Opts.Tune.MeasureMinSeconds = 1e-4;
  Opts.Tune.TuneBudgetSeconds = 30.0;
  Opts.Tune.MeasureBudgetSeconds = 10.0;
  return Opts;
}

/// Wait generously: under TSan on a loaded single-core runner a background
/// tune can take a while; a wedged worker still fails the test via this
/// bound instead of hanging ctest forever.
constexpr double WaitSeconds = 240.0;

/// Asserts the handle computes y = A*x correctly right now, whatever plan
/// is serving.
void expectAsyncSpmvMatches(const AsyncSpmv<double> &Op,
                            const CsrMatrix<double> &A,
                            std::uint64_t Seed = 7) {
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), Seed);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
  Op.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-10);
}

/// Arms a fault schedule for the test body and disarms it on scope exit.
struct FaultScope {
  explicit FaultScope(const fault::FaultConfig &Cfg) { fault::configure(Cfg); }
  ~FaultScope() { fault::reset(); }
};

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + Name;
}

} // namespace

// --- Serve from call #1 -----------------------------------------------------

TEST(TuningServiceTest, ServesCorrectResultsFromCallOne) {
  TuningService<double> Service(Smat<double>(strictModel()),
                                fastServiceOptions());
  CsrMatrix<double> A = banded(400, 2);
  AsyncSpmv<double> Op = Service.tuneAsync(A);

  // Call #1: no waiting, no tuning — the bootstrap basic-CSR plan serves.
  ASSERT_TRUE(Op);
  expectAsyncSpmvMatches(Op, A, 1);
  EXPECT_EQ(Op.format(), FormatKind::CSR);

  // The tuned swap lands later; results stay correct across it.
  ASSERT_TRUE(Op.waitTuned(WaitSeconds)) << Op.error();
  EXPECT_EQ(Op.state(), AsyncTuneState::Tuned);
  expectAsyncSpmvMatches(Op, A, 2);
  EXPECT_GT(Op.report().TuneSeconds, 0.0);

  TuningServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Submitted, 1u);
  EXPECT_EQ(Stats.Tuned, 1u);
  EXPECT_EQ(Stats.Failed, 0u);
}

TEST(TuningServiceTest, FirstCallIsOrdersOfMagnitudeCheaperThanBlockingTune) {
  TuningService<double> Service(Smat<double>(strictModel()),
                                fastServiceOptions());
  CsrMatrix<double> A = banded(600, 3);
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 3);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);

  WallTimer FirstCall;
  AsyncSpmv<double> Op = Service.tuneAsync(A);
  Op.apply(X.data(), Y.data());
  double FirstCallSeconds = FirstCall.seconds();

  // The acceptance bound is < 1 ms on the bench corpus (a Release build on
  // a quiet machine; gated by bench_compare --max-first-call-ms). Here the
  // build may be Debug + TSan on a shared core, so assert a loose absolute
  // ceiling that still rules out "submit secretly runs the pipeline".
  EXPECT_LT(FirstCallSeconds, 0.5)
      << "submit + first apply must not block on tuning";
  ASSERT_TRUE(Op.waitTuned(WaitSeconds)) << Op.error();
  expectVectorsNear(denseSpmv(A, X), Y, 1e-10);
}

TEST(TuningServiceTest, RvalueSubmitMovesAndFloatVariantWorks) {
  TuningService<double> Service(Smat<double>(strictModel()),
                                fastServiceOptions());
  CsrMatrix<double> A = randomCsr(120, 90, 0.08, 17);
  CsrMatrix<double> Copy = A;
  AsyncSpmv<double> Op = Service.tuneAsync(std::move(Copy));
  expectAsyncSpmvMatches(Op, A, 5);
  ASSERT_TRUE(Op.waitTuned(WaitSeconds)) << Op.error();
  expectAsyncSpmvMatches(Op, A, 6);

  // The unified-interface spelling drives the same machinery.
  TuningService<float> FloatService{Smat<float>(strictModel())};
  CsrMatrix<float> Af;
  Af.NumRows = 3;
  Af.NumCols = 3;
  Af.RowPtr = {0, 1, 2, 3};
  Af.ColIdx = {0, 1, 2};
  Af.Values = {1.0f, 2.0f, 3.0f};
  AsyncSpmv<float> Fop = SMAT_sCSR_SpMV_async(FloatService, Af);
  std::vector<float> Xf = {1.0f, 1.0f, 1.0f}, Yf(3, 0.0f);
  Fop.apply(Xf.data(), Yf.data());
  EXPECT_FLOAT_EQ(Yf[0], 1.0f);
  EXPECT_FLOAT_EQ(Yf[1], 2.0f);
  EXPECT_FLOAT_EQ(Yf[2], 3.0f);
  ASSERT_TRUE(Fop.waitTuned(WaitSeconds)) << Fop.error();
}

TEST(TuningServiceTest, InvalidInputFailsSynchronously) {
  TuningService<double> Service(Smat<double>(strictModel()),
                                fastServiceOptions());
  CsrMatrix<double> Bad;
  Bad.NumRows = 2;
  Bad.NumCols = 2;
  Bad.RowPtr = {0, 2, 1}; // non-monotone
  Bad.ColIdx = {0, 1};
  Bad.Values = {1.0, 1.0};

  Expected<AsyncSpmv<double>> Result = Service.tryTuneAsync(Bad);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::InvalidMatrix);
  EXPECT_THROW((void)Service.tuneAsync(Bad), std::invalid_argument);
  // Rejected submissions never reach the worker or the stats.
  EXPECT_EQ(Service.stats().Submitted, 0u);
}

TEST(TuningServiceTest, ManyConcurrentHandlesAllStayCorrect) {
  TuningService<double> Service(Smat<double>(strictModel()),
                                fastServiceOptions());
  std::vector<CsrMatrix<double>> Inputs;
  Inputs.push_back(banded(300, 2));
  Inputs.push_back(powerLawGraph(250, 2.0, 1, 40, 11));
  Inputs.push_back(randomCsr(120, 90, 0.1, 5));
  Inputs.push_back(banded(350, 1));

  // Submit everything up front, then hammer every handle from the caller
  // thread while the single worker drains the queue — applies race the
  // plan swaps by construction.
  std::vector<AsyncSpmv<double>> Handles;
  for (const auto &A : Inputs)
    Handles.push_back(Service.tuneAsync(A));
  for (int Round = 0; Round < 20; ++Round)
    for (std::size_t I = 0; I != Handles.size(); ++I)
      expectAsyncSpmvMatches(Handles[I], Inputs[I],
                             static_cast<std::uint64_t>(Round * 10 + I));
  for (std::size_t I = 0; I != Handles.size(); ++I) {
    ASSERT_TRUE(Handles[I].waitTuned(WaitSeconds)) << Handles[I].error();
    expectAsyncSpmvMatches(Handles[I], Inputs[I], 99 + I);
  }
  EXPECT_EQ(Service.stats().Tuned, Inputs.size());
}

// --- Resilience counters under concurrency ----------------------------------

TEST(TuningServiceTest, ResilienceCountersNeverTearMidTune) {
  TuningService<double> Service(Smat<double>(strictModel()),
                                fastServiceOptions());
  std::atomic<bool> Stop{false};
  // A monitoring thread samples the aggregated counters while the worker is
  // mid-tune. Every snapshot must satisfy the cross-counter invariants —
  // the seqlock publishes a tune's whole delta or none of it.
  std::thread Monitor([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      SmatResilienceCounters C = Service.resilienceCounters();
      ASSERT_LE(C.NoisyTunes, C.Tunes);
      ASSERT_LE(C.BudgetExhaustedTunes, C.Tunes);
      ASSERT_LE(C.BasicKernelFallbacks, C.Tunes);
      ASSERT_LE(C.ReferenceFallbacks, C.Tunes);
      ASSERT_LE(C.PlanShares, C.Tunes);
      ASSERT_LE(C.GuardrailEngagements, C.Tunes);
    }
  });
  std::vector<AsyncSpmv<double>> Handles;
  for (std::uint64_t Seed = 1; Seed <= 6; ++Seed)
    Handles.push_back(
        Service.tuneAsync(powerLawGraph(150, 2.0, 1, 30, Seed)));
  for (auto &H : Handles)
    (void)H.waitTuned(WaitSeconds);
  Stop.store(true, std::memory_order_release);
  Monitor.join();
  EXPECT_EQ(Service.resilienceCounters().Tunes, 6u);
}

// --- Concurrent PlanCache: singleflight vs eviction vs persistence ----------

TEST(PlanCacheConcurrencyTest, ShardCountAdaptsToCapacity) {
  EXPECT_EQ(PlanCache(2).shards(), 1u);   // exact global LRU for tiny caches
  EXPECT_EQ(PlanCache(63).shards(), 1u);
  EXPECT_EQ(PlanCache(64).shards(), 8u);
  EXPECT_EQ(PlanCache(1024).shards(), 8u);
  EXPECT_GE(PlanCache(1024).capacity(), 1024u);
}

TEST(PlanCacheConcurrencyTest, SingleflightRacesLruEviction) {
  // Tiny cache: every insert is an eviction, and all traffic fights over
  // one shard — the worst case for the lease/evict interleaving.
  PlanCache Cache(2);
  constexpr int NumThreads = 4;
  constexpr int NumOps = 400;
  std::atomic<std::uint64_t> Published{0}, HitsSeen{0};
  std::vector<std::thread> Threads;
  for (int Tid = 0; Tid < NumThreads; ++Tid) {
    Threads.emplace_back([&, Tid] {
      for (int I = 0; I < NumOps; ++I) {
        PlanFingerprint Fp;
        Fp.RowsLog2 = static_cast<std::int16_t>((Tid + I) % 5);
        PlanProbe Probe = Cache.lookupOrLead(Fp);
        if (Probe.Lead) {
          CachedPlan Plan;
          Plan.Format = FormatKind::ELL;
          Plan.CsrSpmvSeconds = 1e-6;
          if (I % 7 == 0) {
            Cache.abandon(Fp); // a tune that degraded; lease must free
          } else {
            Cache.publish(Fp, Plan);
            Published.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          ASSERT_TRUE(Probe.Hit);
          ASSERT_EQ(Probe.Plan.Format, FormatKind::ELL);
          HitsSeen.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  EXPECT_LE(Cache.size(), 2u);
  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses,
            static_cast<std::uint64_t>(NumThreads) * NumOps);
  EXPECT_EQ(Stats.Hits, HitsSeen.load());
  EXPECT_GT(Stats.Evictions, 0u);
}

TEST(PlanCacheConcurrencyTest, SingleflightRacesSnapshotSaveAndLoad) {
  const std::string Path = tempPath("plancache_race_snapshot.txt");
  std::remove(Path.c_str());
  PlanCache Cache(128); // sharded
  std::atomic<bool> Stop{false};

  // Persistence thread: continuously snapshot and reload the live cache.
  std::thread Persister([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      std::string Error;
      ASSERT_TRUE(Cache.saveSnapshot(Path, &Error)) << Error;
      ASSERT_NE(Cache.loadSnapshot(Path), SnapshotLoadResult::Corrupt);
    }
  });
  // Mutator threads: singleflight leases, publishes, abandons, and plain
  // inserts racing the walker. 130+ distinct fingerprints force evictions.
  std::vector<std::thread> Threads;
  for (int Tid = 0; Tid < 3; ++Tid) {
    Threads.emplace_back([&, Tid] {
      for (int I = 0; I < 300; ++I) {
        PlanFingerprint Fp;
        Fp.RowsLog2 = static_cast<std::int16_t>(I % 50);
        Fp.ColsLog2 = static_cast<std::int16_t>(Tid);
        PlanProbe Probe = Cache.lookupOrLead(Fp);
        if (Probe.Lead) {
          CachedPlan Plan;
          Plan.Format = FormatKind::DIA;
          if (I % 5 == 0)
            Cache.abandon(Fp);
          else
            Cache.publish(Fp, Plan);
        }
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  Stop.store(true, std::memory_order_release);
  Persister.join();

  // The final snapshot must round-trip into a fresh cache.
  std::string Error;
  ASSERT_TRUE(Cache.saveSnapshot(Path, &Error)) << Error;
  PlanCache Fresh(128);
  std::size_t Loaded = 0;
  EXPECT_EQ(Fresh.loadSnapshot(Path, &Loaded), SnapshotLoadResult::Loaded);
  EXPECT_EQ(Fresh.size(), Loaded);
  EXPECT_GT(Loaded, 0u);
  std::remove(Path.c_str());
}

// --- Persistence: warm starts across service instances ----------------------

TEST(TuningServiceTest, SnapshotRoundTripWarmStartsSecondService) {
  const std::string Path = tempPath("service_warmstart_snapshot.txt");
  std::remove(Path.c_str());
  std::vector<CsrMatrix<double>> Inputs;
  Inputs.push_back(banded(400, 2));
  Inputs.push_back(powerLawGraph(250, 2.0, 1, 40, 11));
  Inputs.push_back(randomCsr(120, 90, 0.1, 5));

  // First process: cold tunes, snapshot written at shutdown.
  {
    auto Opts = fastServiceOptions();
    Opts.SnapshotPath = Path;
    TuningService<double> Service(Smat<double>(strictModel()), Opts);
    EXPECT_EQ(Service.warmStartResult(), SnapshotLoadResult::Missing);
    for (const auto &A : Inputs) {
      AsyncSpmv<double> Op = Service.tuneAsync(A);
      ASSERT_TRUE(Op.waitTuned(WaitSeconds)) << Op.error();
      EXPECT_FALSE(Op.report().PlanCacheHit);
    }
  }

  // Second process: warm-starts from the snapshot; tunes of the same
  // structures hit the cache and skip measurement entirely.
  {
    auto Opts = fastServiceOptions();
    Opts.SnapshotPath = Path;
    TuningService<double> Service(Smat<double>(strictModel()), Opts);
    ASSERT_EQ(Service.warmStartResult(), SnapshotLoadResult::Loaded);
    EXPECT_GT(Service.warmStartPlans(), 0u);
    std::uint64_t WarmHits = 0;
    for (const auto &A : Inputs) {
      AsyncSpmv<double> Op = Service.tuneAsync(A);
      ASSERT_TRUE(Op.waitTuned(WaitSeconds)) << Op.error();
      if (Op.report().PlanCacheHit)
        ++WarmHits;
      expectAsyncSpmvMatches(Op, A, 23);
    }
    // Warm-hit rate: every structure was tuned by the first service, so
    // every second-service tune must be a hit.
    EXPECT_EQ(WarmHits, Inputs.size());
    RecordProperty("warm_hit_rate_percent",
                   static_cast<int>(100 * WarmHits / Inputs.size()));
  }
  std::remove(Path.c_str());
}

// --- Model hot-reload --------------------------------------------------------

TEST(TuningServiceTest, HotReloadBumpsGenerationAndInvalidatesPlans) {
  TuningService<double> Service(Smat<double>(strictModel()),
                                fastServiceOptions());
  CsrMatrix<double> A = banded(400, 2);

  AsyncSpmv<double> Cold = Service.tuneAsync(A);
  ASSERT_TRUE(Cold.waitTuned(WaitSeconds)) << Cold.error();
  EXPECT_FALSE(Cold.report().PlanCacheHit);
  EXPECT_EQ(Service.modelGeneration(), 0u);

  // Same structure again: served from the cache, no re-measurement.
  AsyncSpmv<double> Warm = Service.tuneAsync(A);
  ASSERT_TRUE(Warm.waitTuned(WaitSeconds)) << Warm.error();
  EXPECT_TRUE(Warm.report().PlanCacheHit);

  // Hot reload: the serving model swaps without a restart and the
  // generation stamp makes every cached plan unreachable.
  Service.reloadModel(Smat<double>(strictModel()));
  EXPECT_EQ(Service.modelGeneration(), 1u);
  EXPECT_EQ(Service.stats().ModelReloads, 1u);

  AsyncSpmv<double> PostReload = Service.tuneAsync(A);
  ASSERT_TRUE(PostReload.waitTuned(WaitSeconds)) << PostReload.error();
  EXPECT_FALSE(PostReload.report().PlanCacheHit)
      << "a plan cached under generation 0 must not serve generation 1";
  expectAsyncSpmvMatches(PostReload, A, 31);
}

TEST(TuningServiceTest, ReloadFromBadModelFileKeepsServingModel) {
  TuningService<double> Service(Smat<double>(strictModel()),
                                fastServiceOptions());
  Status S = Service.reloadModelFile(tempPath("no_such_model_file.smat"));
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(Service.modelGeneration(), 0u)
      << "a failed reload must not bump the generation";
  // And the service still tunes.
  CsrMatrix<double> A = banded(200, 1);
  AsyncSpmv<double> Op = Service.tuneAsync(A);
  ASSERT_TRUE(Op.waitTuned(WaitSeconds)) << Op.error();
  expectAsyncSpmvMatches(Op, A, 41);
}

// --- Fault injection: the worker dies, the handle keeps serving -------------

TEST(AsyncFaultTest, KilledWorkerSitesParkHandleOnBasicCsr) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  CsrMatrix<double> A = banded(400, 2);
  for (const char *Site :
       {"async.submit", "async.worker.start", "async.worker.publish"}) {
    SCOPED_TRACE(std::string("always-failing site: ") + Site);
    fault::FaultConfig Kill;
    Kill.AlwaysSites = {Site};
    FaultScope Scope(Kill);

    TuningService<double> Service(Smat<double>(strictModel()),
                                  fastServiceOptions());
    AsyncSpmv<double> Op = Service.tuneAsync(A);
    EXPECT_FALSE(Op.waitTuned(WaitSeconds));
    EXPECT_EQ(Op.state(), AsyncTuneState::Failed);
    EXPECT_FALSE(Op.error().empty());
    // The degradation contract: basic CSR keeps serving, correctly.
    expectAsyncSpmvMatches(Op, A, 51);
    EXPECT_EQ(Op.format(), FormatKind::CSR);
    EXPECT_EQ(Service.stats().Failed, 1u);
  }
}

TEST(AsyncFaultTest, EveryObservedAsyncSiteDegradesToServingHandle) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  const std::string Path = tempPath("async_sweep_snapshot.txt");
  std::remove(Path.c_str());
  CsrMatrix<double> A = banded(400, 2);
  auto OptsWithSnapshot = [&] {
    auto Opts = fastServiceOptions();
    Opts.SnapshotPath = Path;
    return Opts;
  };

  // Seed the snapshot so the load site is reachable, then discover every
  // site a full async tune visits (submit, worker, pipeline, snapshot).
  {
    TuningService<double> Service(Smat<double>(strictModel()),
                                  OptsWithSnapshot());
    AsyncSpmv<double> Op = Service.tuneAsync(A);
    ASSERT_TRUE(Op.waitTuned(WaitSeconds)) << Op.error();
  }
  std::vector<std::string> Sites;
  {
    fault::FaultConfig Discover;
    Discover.RecordSites = true;
    FaultScope Scope(Discover);
    TuningService<double> Service(Smat<double>(strictModel()),
                                  OptsWithSnapshot());
    AsyncSpmv<double> Op = Service.tuneAsync(A);
    ASSERT_TRUE(Op.waitTuned(WaitSeconds)) << Op.error();
    // The destructor's best-effort save runs after observedSites() would be
    // captured, so hit the save path explicitly to put it on the record.
    ASSERT_TRUE(Service.savePlans().ok());
    Sites = fault::observedSites();
  }
  // The async rungs themselves must all be on the discovered path.
  for (const char *Rung : {"async.snapshot.load", "async.snapshot.save",
                           "async.submit", "async.worker.start",
                           "async.worker.publish"})
    EXPECT_NE(std::find(Sites.begin(), Sites.end(), Rung), Sites.end())
        << "site '" << Rung << "' not visited by the async tune";

  // Kill pass: each site fails on every invocation. Whatever rung dies —
  // async machinery, snapshot I/O, or any pipeline stage inherited from the
  // blocking path — the handle must keep producing correct results.
  for (const std::string &Site : Sites) {
    SCOPED_TRACE("always-failing site: " + Site);
    fault::FaultConfig Kill;
    Kill.AlwaysSites = {Site};
    FaultScope Scope(Kill);

    TuningService<double> Service(Smat<double>(strictModel()),
                                  OptsWithSnapshot());
    AsyncSpmv<double> Op = Service.tuneAsync(A);
    (void)Op.waitTuned(WaitSeconds); // Tuned or Failed are both acceptable
    ASSERT_NE(Op.state(), AsyncTuneState::Pending);
    ASSERT_NE(Op.state(), AsyncTuneState::Tuning);
    expectAsyncSpmvMatches(Op, A, 61);
  }
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
}

TEST(AsyncFaultTest, RandomFaultCampaignNeverCrashesOrCorrupts) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  std::vector<CsrMatrix<double>> Inputs;
  Inputs.push_back(banded(300, 2));
  Inputs.push_back(powerLawGraph(250, 2.0, 1, 40, 11));
  Inputs.push_back(randomCsr(120, 90, 0.1, 5));

  for (std::uint64_t Seed = 1; Seed <= 3; ++Seed) {
    fault::FaultConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.Probability = 0.1;
    FaultScope Scope(Cfg);
    TuningService<double> Service(Smat<double>(strictModel()),
                                  fastServiceOptions());
    std::vector<AsyncSpmv<double>> Handles;
    for (const auto &A : Inputs)
      Handles.push_back(Service.tuneAsync(A));
    for (std::size_t I = 0; I != Handles.size(); ++I) {
      (void)Handles[I].waitTuned(WaitSeconds);
      expectAsyncSpmvMatches(Handles[I], Inputs[I], Seed * 10 + I);
    }
  }
}
