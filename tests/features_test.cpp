//===- tests/features_test.cpp - Table-2 feature extraction tests ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "features/FeatureExtractor.h"
#include "matrix/FormatConvert.h"
#include "matrix/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace smat;
using namespace smat::test;

TEST(FeatureTest, IdentityMatrix) {
  CsrMatrix<double> A = multiDiagonal(100, {0});
  FeatureVector F = extractAllFeatures(A);
  EXPECT_DOUBLE_EQ(F.M, 100);
  EXPECT_DOUBLE_EQ(F.N, 100);
  EXPECT_DOUBLE_EQ(F.Nnz, 100);
  EXPECT_DOUBLE_EQ(F.Ndiags, 1);
  EXPECT_DOUBLE_EQ(F.NTdiagsRatio, 1.0);
  EXPECT_DOUBLE_EQ(F.AverRd, 1.0);
  EXPECT_DOUBLE_EQ(F.MaxRd, 1.0);
  EXPECT_DOUBLE_EQ(F.VarRd, 0.0);
  EXPECT_DOUBLE_EQ(F.ErDia, 1.0);
  EXPECT_DOUBLE_EQ(F.ErEll, 1.0);
  EXPECT_GE(F.R, FeatureInf) << "regular degrees: no power law";
}

TEST(FeatureTest, TridiagonalValues) {
  CsrMatrix<double> A = tridiagonal(1000);
  FeatureVector F = extractStructureFeatures(A);
  EXPECT_DOUBLE_EQ(F.Ndiags, 3);
  EXPECT_DOUBLE_EQ(F.NTdiagsRatio, 1.0);
  EXPECT_DOUBLE_EQ(F.MaxRd, 3);
  EXPECT_NEAR(F.AverRd, 2998.0 / 1000.0, 1e-12);
  // ER_DIA = NNZ / (Ndiags * M) = 2998 / 3000.
  EXPECT_NEAR(F.ErDia, 2998.0 / 3000.0, 1e-12);
  EXPECT_NEAR(F.ErEll, 2998.0 / 3000.0, 1e-12);
}

TEST(FeatureTest, PaperT2dQ9StyleRecord) {
  // The paper's example record for t2d_q9: a 9-diagonal stencil matrix has
  // {Ndiags=9, NTdiags_ratio=1.0, ER_DIA~0.99, ER_ELL~0.99, R=inf}.
  CsrMatrix<double> A = laplace2d9pt(99, 99);
  FeatureVector F = extractAllFeatures(A);
  EXPECT_DOUBLE_EQ(F.M, 9801);
  EXPECT_DOUBLE_EQ(F.Ndiags, 9);
  EXPECT_DOUBLE_EQ(F.NTdiagsRatio, 1.0);
  EXPECT_DOUBLE_EQ(F.MaxRd, 9);
  EXPECT_GT(F.ErDia, 0.95);
  EXPECT_GT(F.ErEll, 0.95);
  EXPECT_GE(F.R, FeatureInf);
}

TEST(FeatureTest, DenseRowRaisesMaxAndVariance) {
  // Diagonal plus one dense row.
  std::vector<index_t> R, C;
  std::vector<double> V;
  for (index_t I = 0; I < 64; ++I) {
    R.push_back(I);
    C.push_back(I);
    V.push_back(1.0);
  }
  for (index_t J = 0; J < 64; ++J)
    if (J != 10) {
      R.push_back(10);
      C.push_back(J);
      V.push_back(1.0);
    }
  auto A = csrFromTriplets<double>(64, 64, std::move(R), std::move(C),
                                   std::move(V));
  FeatureVector F = extractStructureFeatures(A);
  EXPECT_DOUBLE_EQ(F.MaxRd, 64);
  EXPECT_GT(F.VarRd, 10.0);
  EXPECT_LT(F.ErEll, 0.05) << "one dense row ruins ELL fill efficiency";
}

TEST(FeatureTest, TrueDiagonalRatioDropsWithBrokenDiagonals) {
  CsrMatrix<double> Full = multiDiagonal(2000, {-3, 0, 3});
  CsrMatrix<double> Broken =
      brokenDiagonals(2000, {-3, 0, 3}, /*Occupancy=*/0.3, /*Seed=*/5);
  FeatureVector Ff = extractStructureFeatures(Full);
  FeatureVector Fb = extractStructureFeatures(Broken);
  EXPECT_DOUBLE_EQ(Ff.NTdiagsRatio, 1.0);
  EXPECT_LT(Fb.NTdiagsRatio, 1.0);
  EXPECT_LT(Fb.ErDia, Ff.ErDia);
}

TEST(FeatureTest, PowerLawExponentRecovered) {
  // Degrees drawn from P(k) ~ k^-2.2: the fitted R should land near 2.2
  // and inside the paper's COO-affinity band [1, 4].
  CsrMatrix<double> A = powerLawGraph(20000, 2.2, 1, 256, 7);
  FeatureVector F = extractAllFeatures(A);
  ASSERT_LT(F.R, FeatureInf);
  EXPECT_NEAR(F.R, 2.2, 0.6);
  EXPECT_GE(F.R, 1.0);
  EXPECT_LE(F.R, 4.0);
}

TEST(FeatureTest, PowerLawUndefinedForRegularDegrees) {
  CsrMatrix<double> A = boundedDegreeRandom(2000, 2000, 4, 4, 9);
  FeatureVector F = extractAllFeatures(A);
  EXPECT_GE(F.R, FeatureInf);
}

TEST(FeatureTest, PowerLawUndefinedForUniformRandom) {
  // Erdős–Rényi degrees are Poisson, not scale-free: the log-log fit's R^2
  // gate should reject it (or at minimum not produce a negative exponent).
  CsrMatrix<double> A = erdosRenyi(5000, 5000, 30.0, 11);
  FeatureVector F = extractAllFeatures(A);
  if (F.R < FeatureInf)
    EXPECT_GT(F.R, 0.0);
}

TEST(FeatureTest, EmptyMatrix) {
  CsrMatrix<double> A(0, 0);
  FeatureVector F = extractAllFeatures(A);
  EXPECT_DOUBLE_EQ(F.M, 0);
  EXPECT_DOUBLE_EQ(F.Nnz, 0);
  EXPECT_GE(F.R, FeatureInf);
}

TEST(FeatureTest, AllZeroMatrix) {
  CsrMatrix<double> A(32, 32);
  FeatureVector F = extractAllFeatures(A);
  EXPECT_DOUBLE_EQ(F.Ndiags, 0);
  EXPECT_DOUBLE_EQ(F.ErDia, 0.0);
  EXPECT_DOUBLE_EQ(F.ErEll, 0.0);
  EXPECT_DOUBLE_EQ(F.VarRd, 0.0);
}

TEST(FeatureTest, RectangularMatrix) {
  CsrMatrix<double> A = lpRectangular(200, 40, 5, 13);
  FeatureVector F = extractStructureFeatures(A);
  EXPECT_DOUBLE_EQ(F.M, 200);
  EXPECT_DOUBLE_EQ(F.N, 40);
  EXPECT_DOUBLE_EQ(F.AverRd, 5.0);
  EXPECT_DOUBLE_EQ(F.VarRd, 0.0);
}

TEST(FeatureTest, StepOneLeavesRUntouched) {
  CsrMatrix<double> A = powerLawGraph(3000, 2.0, 1, 64, 15);
  FeatureVector F = extractStructureFeatures(A);
  EXPECT_GE(F.R, FeatureInf) << "step 1 must not compute R";
  extractPowerLawFeature(A, F);
  EXPECT_LT(F.R, FeatureInf) << "step 2 fills it in";
}

TEST(FeatureTest, ErBsrPerfectOnAlignedBlocks) {
  CsrMatrix<double> A = blockFem(25, 4, 0.0, 17);
  FeatureVector F = extractStructureFeatures(A);
  EXPECT_DOUBLE_EQ(F.ErBsr, 1.0) << "aligned dense 4x4 blocks: no padding";
}

TEST(FeatureTest, ErBsrLowOnDiagonal) {
  CsrMatrix<double> A = multiDiagonal(256, {0});
  FeatureVector F = extractStructureFeatures(A);
  EXPECT_NEAR(F.ErBsr, 0.25, 1e-12)
      << "a diagonal hits 4 of each 16-entry block";
}

TEST(FeatureTest, FeatureNamesMatchPaperTable2) {
  EXPECT_STREQ(featureName(FeatM), "M");
  EXPECT_STREQ(featureName(FeatNTdiagsRatio), "NTdiags_ratio");
  EXPECT_STREQ(featureName(FeatErDia), "ER_DIA");
  EXPECT_STREQ(featureName(FeatErEll), "ER_ELL");
  EXPECT_STREQ(featureName(FeatErBsr), "ER_BSR");
  EXPECT_STREQ(featureName(FeatR), "R");
}

TEST(FeatureTest, ValuesPackInDeclaredOrder) {
  CsrMatrix<double> A = tridiagonal(10);
  FeatureVector F = extractStructureFeatures(A);
  auto V = F.values();
  EXPECT_DOUBLE_EQ(V[FeatM], F.M);
  EXPECT_DOUBLE_EQ(V[FeatNdiags], F.Ndiags);
  EXPECT_DOUBLE_EQ(V[FeatVarRd], F.VarRd);
  EXPECT_DOUBLE_EQ(V[FeatR], F.R);
}

TEST(FeatureTest, ToStringMentionsInf) {
  CsrMatrix<double> A = tridiagonal(10);
  FeatureVector F = extractAllFeatures(A);
  EXPECT_NE(F.toString().find("R=inf"), std::string::npos);
}

// Property-style sweep: invariants hold across a family of random matrices.
class FeatureInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeatureInvariants, StructuralInvariants) {
  std::uint64_t Seed = GetParam();
  CsrMatrix<double> A = randomCsr(60, 45, 0.08, Seed);
  FeatureVector F = extractAllFeatures(A);

  EXPECT_DOUBLE_EQ(F.M, 60);
  EXPECT_DOUBLE_EQ(F.N, 45);
  EXPECT_DOUBLE_EQ(F.Nnz, static_cast<double>(A.nnz()));
  EXPECT_LE(F.AverRd, F.MaxRd);
  EXPECT_GE(F.VarRd, 0.0);
  EXPECT_GE(F.NTdiagsRatio, 0.0);
  EXPECT_LE(F.NTdiagsRatio, 1.0);
  if (F.Nnz > 0) {
    EXPECT_GT(F.ErDia, 0.0);
    EXPECT_LE(F.ErDia, 1.0 + 1e-12);
    EXPECT_GT(F.ErEll, 0.0);
    EXPECT_LE(F.ErEll, 1.0 + 1e-12);
    EXPECT_LE(F.Ndiags, F.M + F.N - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));
