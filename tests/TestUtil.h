//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef SMAT_TESTS_TESTUTIL_H
#define SMAT_TESTS_TESTUTIL_H

#include "matrix/FormatConvert.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace smat {
namespace test {

/// Expands a CSR matrix to a dense row-major array.
template <typename T>
std::vector<T> toDense(const CsrMatrix<T> &A) {
  std::vector<T> Dense(static_cast<std::size_t>(A.NumRows) *
                           static_cast<std::size_t>(A.NumCols),
                       T(0));
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      Dense[static_cast<std::size_t>(Row) * A.NumCols + A.ColIdx[I]] +=
          A.Values[I];
  return Dense;
}

/// Dense reference y = A*x.
template <typename T>
std::vector<T> denseSpmv(const CsrMatrix<T> &A, const std::vector<T> &X) {
  std::vector<T> Y(static_cast<std::size_t>(A.NumRows), T(0));
  for (index_t Row = 0; Row < A.NumRows; ++Row) {
    // Kahan-free double accumulation is fine at test sizes.
    double Sum = 0.0;
    for (index_t I = A.RowPtr[Row]; I < A.RowPtr[Row + 1]; ++I)
      Sum += static_cast<double>(A.Values[I]) *
             static_cast<double>(X[static_cast<std::size_t>(A.ColIdx[I])]);
    Y[static_cast<std::size_t>(Row)] = static_cast<T>(Sum);
  }
  return Y;
}

/// Random test vector in [-1, 1].
template <typename T>
std::vector<T> randomVector(std::size_t N, std::uint64_t Seed) {
  Rng Rng(Seed);
  std::vector<T> X(N);
  for (T &V : X)
    V = static_cast<T>(Rng.uniform(-1.0, 1.0));
  return X;
}

/// Random general CSR matrix (duplicate-free, sorted rows).
inline CsrMatrix<double> randomCsr(index_t Rows, index_t Cols, double Density,
                                   std::uint64_t Seed) {
  Rng Rng(Seed);
  std::vector<index_t> R, C;
  std::vector<double> V;
  for (index_t Row = 0; Row < Rows; ++Row)
    for (index_t Col = 0; Col < Cols; ++Col)
      if (Rng.uniform() < Density) {
        R.push_back(Row);
        C.push_back(Col);
        V.push_back(Rng.uniform(-2.0, 2.0));
      }
  return csrFromTriplets<double>(Rows, Cols, std::move(R), std::move(C),
                                 std::move(V));
}

/// Element-wise near-equality with a relative+absolute mixed tolerance.
template <typename T>
void expectVectorsNear(const std::vector<T> &Expected,
                       const std::vector<T> &Actual, double Tol) {
  ASSERT_EQ(Expected.size(), Actual.size());
  for (std::size_t I = 0; I != Expected.size(); ++I) {
    double Scale = std::max(1.0, std::abs(static_cast<double>(Expected[I])));
    EXPECT_NEAR(static_cast<double>(Expected[I]),
                static_cast<double>(Actual[I]), Tol * Scale)
        << "at index " << I;
  }
}

} // namespace test
} // namespace smat

#endif // SMAT_TESTS_TESTUTIL_H
