//===- tests/errors_test.cpp - Trust-boundary error handling --------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The recoverable-error contract (DESIGN.md section 11): every trust
// boundary rejects malformed input with a descriptive diagnostic instead of
// crashing. Regression tests pin the exact diagnostics; the fuzz suites at
// the bottom hammer every entry point with structurally broken CSR / COO /
// MatrixMarket inputs and assert errors-not-crashes (run them under
// SMAT_SANITIZE=ON to also rule out silent memory errors).
//
//===----------------------------------------------------------------------===//

#include "amg/AmgSolver.h"
#include "core/PlanCache.h"
#include "core/Smat.h"
#include "core/Trainer.h"
#include "kernels/Scoreboard.h"
#include "matrix/FormatConvert.h"
#include "matrix/Generators.h"
#include "matrix/MatrixMarket.h"
#include "matrix/Validate.h"
#include "support/Checksum.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace smat;
using namespace smat::test;

namespace {

TrainingOptions fastOptions() {
  TrainingOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  return Opts;
}

const LearningModel &sharedModel() {
  static const LearningModel Model = [] {
    auto Corpus = buildCorpus(CorpusScale::Tiny);
    std::vector<const CorpusEntry *> Training, Evaluation;
    splitCorpus(Corpus, Training, Evaluation);
    return trainSmat<double>(Training, fastOptions()).Model;
  }();
  return Model;
}

const Smat<double> &sharedTuner() {
  static const Smat<double> Tuner(sharedModel());
  return Tuner;
}

TuneOptions fastTune() {
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  return Opts;
}

/// Measurement-free options: the decision is the (deterministic) model
/// prediction, so repeated tunes of the same matrix must agree exactly.
TuneOptions deterministicTune() {
  TuneOptions Opts = fastTune();
  Opts.AllowMeasure = false;
  return Opts;
}

/// A seeded random matrix whose shape/density also vary with the seed.
CsrMatrix<double> seededMatrix(std::uint64_t Seed) {
  Rng Rng(Seed * 7919 + 3);
  index_t Rows = static_cast<index_t>(Rng.range(8, 120));
  index_t Cols = static_cast<index_t>(Rng.range(8, 120));
  return randomCsr(Rows, Cols, Rng.uniform(0.02, 0.3), Seed);
}

/// A small healthy matrix the breakers below start from.
CsrMatrix<double> validMatrix(std::uint64_t Seed = 3) {
  return randomCsr(10, 8, 0.4, Seed);
}

void expectContains(const std::string &Haystack, const std::string &Needle) {
  EXPECT_NE(Haystack.find(Needle), std::string::npos)
      << "diagnostic \"" << Haystack << "\" should mention \"" << Needle
      << "\"";
}

} // namespace

// --- Status / Expected basics -----------------------------------------------

TEST(StatusTest, SuccessAndErrorStates) {
  Status Ok = Status::success();
  EXPECT_TRUE(Ok.ok());
  EXPECT_TRUE(Ok.message().empty());
  EXPECT_EQ(Ok.toString(), "ok");

  Status Err = Status::error(ErrorCode::InvalidMatrix, "broken row 3");
  EXPECT_FALSE(Err.ok());
  EXPECT_EQ(Err.code(), ErrorCode::InvalidMatrix);
  EXPECT_EQ(Err.toString(), "invalid_matrix: broken row 3");
}

TEST(StatusTest, ExpectedHoldsValueOrStatus) {
  Expected<int> Good(42);
  ASSERT_TRUE(Good.ok());
  EXPECT_EQ(*Good, 42);
  EXPECT_TRUE(Good.status().ok());

  Expected<int> Bad(Status::error(ErrorCode::ParseError, "nope"));
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrorCode::ParseError);
  EXPECT_EQ(Bad.status().message(), "nope");
}

// --- tune / tryTune validation (ISSUE satellite 1 + tentpole) ---------------

TEST(TuneValidationTest, NonMonotoneRowPtrDiagnostic) {
  CsrMatrix<double> A = validMatrix();
  A.RowPtr[3] = A.RowPtr[4] + 2; // Break monotonicity between rows 3 and 4.

  auto Result = sharedTuner().tryTune(A, fastTune());
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::InvalidMatrix);
  expectContains(Result.status().message(), "RowPtr not monotone at row 3");
}

TEST(TuneValidationTest, OutOfRangeColumnDiagnostic) {
  CsrMatrix<double> A = validMatrix();
  ASSERT_GT(A.nnz(), 0);
  A.ColIdx.back() = A.NumCols + 7;

  auto Result = sharedTuner().tryTune(A, fastTune());
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::InvalidMatrix);
  expectContains(Result.status().message(), "column index");
  expectContains(Result.status().message(), "out of range");
}

TEST(TuneValidationTest, NnzArrayMismatchDiagnostic) {
  CsrMatrix<double> A = validMatrix();
  A.ColIdx.pop_back(); // RowPtr.back() no longer matches the arrays.

  auto Result = sharedTuner().tryTune(A, fastTune());
  ASSERT_FALSE(Result.ok());
  expectContains(Result.status().message(), "ColIdx has");
  expectContains(Result.status().message(), "RowPtr.back()");
}

TEST(TuneValidationTest, NegativeDimensionDiagnostic) {
  CsrMatrix<double> A = validMatrix();
  A.NumCols = -5;

  auto Result = sharedTuner().tryTune(A, fastTune());
  ASSERT_FALSE(Result.ok());
  expectContains(Result.status().message(), "negative dimension");
}

TEST(TuneValidationTest, RowPtrSizeDiagnostic) {
  CsrMatrix<double> A = validMatrix();
  A.RowPtr.pop_back();

  auto Result = sharedTuner().tryTune(A, fastTune());
  ASSERT_FALSE(Result.ok());
  expectContains(Result.status().message(), "expected NumRows + 1");
}

TEST(TuneValidationTest, ThrowingTuneCarriesSameDiagnostic) {
  CsrMatrix<double> A = validMatrix();
  A.RowPtr[0] = 1; // Anchor invariant broken.

  try {
    (void)sharedTuner().tune(A, fastTune());
    FAIL() << "tune() must throw on malformed input";
  } catch (const std::invalid_argument &E) {
    expectContains(E.what(), "SMAT tune rejected input");
    expectContains(E.what(), "RowPtr[0] = 1, expected 0");
  }
}

TEST(TuneValidationTest, BadMeasureOptionRejected) {
  CsrMatrix<double> A = validMatrix();
  TuneOptions Opts = fastTune();
  Opts.MeasureMinSeconds = -1.0;

  auto Result = sharedTuner().tryTune(A, Opts);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::InvalidArgument);
  expectContains(Result.status().message(), "MeasureMinSeconds");
}

TEST(TuneValidationTest, TryTuneMatchesThrowingTuneOnValidInput) {
  CsrMatrix<double> A = banded(600, 3);
  TuneOptions Opts = deterministicTune();

  TunedSpmv<double> Reference = sharedTuner().tune(A, Opts);
  auto Result = sharedTuner().tryTune(A, Opts);
  ASSERT_TRUE(Result.ok()) << Result.status().message();

  EXPECT_EQ(Result->format(), Reference.format());
  EXPECT_EQ(Result->kernelName(), Reference.kernelName());

  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 99);
  std::vector<double> Y1(static_cast<std::size_t>(A.NumRows));
  std::vector<double> Y2(static_cast<std::size_t>(A.NumRows));
  Reference.apply(X.data(), Y1.data());
  Result->apply(X.data(), Y2.data());
  EXPECT_EQ(Y1, Y2) << "tryTune must bind the identical tuned operator";
}

// --- C entry points (tentpole) ----------------------------------------------

TEST(CApiTest, TryEntryPointReportsErrorAndLeavesOutUntouched) {
  CsrMatrix<double> A = validMatrix();
  A.ColIdx.front() = -1;

  TunedSpmv<double> Out;
  std::string Message;
  ErrorCode Code =
      SMAT_dCSR_SpMV_try(sharedTuner(), A, Out, &Message, fastTune());
  EXPECT_EQ(Code, ErrorCode::InvalidMatrix);
  expectContains(Message, "out of range");
  EXPECT_EQ(Out.numRows(), 0) << "Out must be untouched on failure";
}

TEST(CApiTest, TryEntryPointMatchesThrowingApiOnValidInput) {
  CsrMatrix<double> A = banded(500, 2);
  TunedSpmv<double> Reference =
      SMAT_dCSR_SpMV(sharedTuner(), A, deterministicTune());

  TunedSpmv<double> Out;
  ErrorCode Code =
      SMAT_dCSR_SpMV_try(sharedTuner(), A, Out, nullptr, deterministicTune());
  ASSERT_EQ(Code, ErrorCode::Ok);
  EXPECT_EQ(Out.format(), Reference.format());
  EXPECT_EQ(Out.kernelName(), Reference.kernelName());
}

TEST(CApiTest, SinglePrecisionTryEntryPoint) {
  static const Smat<float> FloatTuner(sharedModel());
  CsrMatrix<float> A = convertValueType<float>(validMatrix());

  TunedSpmv<float> Out;
  ASSERT_EQ(SMAT_sCSR_SpMV_try(FloatTuner, A, Out, nullptr, fastTune()),
            ErrorCode::Ok);
  EXPECT_EQ(Out.numRows(), A.NumRows);

  A.RowPtr[2] = A.RowPtr[3] + 1;
  TunedSpmv<float> Broken;
  std::string Message;
  EXPECT_EQ(SMAT_sCSR_SpMV_try(FloatTuner, A, Broken, &Message, fastTune()),
            ErrorCode::InvalidMatrix);
  expectContains(Message, "RowPtr not monotone");
}

// --- PlanCache interaction (ISSUE satellite 4) ------------------------------

TEST(PlanCacheErrorTest, FailedTuneNeverInsertsPlan) {
  PlanCache Cache;
  TuneOptions Opts = fastTune();
  Opts.Cache = &Cache;

  CsrMatrix<double> Broken = validMatrix();
  Broken.RowPtr[1] = Broken.RowPtr[2] + 3;
  auto Result = sharedTuner().tryTune(Broken, Opts);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().Inserts, 0u)
      << "a rejected tune must not populate the plan cache";

  // The same cache still works for a healthy matrix afterwards.
  auto Good = sharedTuner().tryTune(validMatrix(), Opts);
  ASSERT_TRUE(Good.ok()) << Good.status().message();
  EXPECT_EQ(Cache.stats().Inserts, 1u);
}

// --- Conversion guards (tentpole) -------------------------------------------

TEST(ConversionGuardTest, ConvertersRejectInvalidMatrices) {
  CsrMatrix<double> A = validMatrix();
  A.ColIdx.back() = A.NumCols + 1;

  DiaMatrix<double> Dia;
  EllMatrix<double> Ell;
  BsrMatrix<double> Bsr;
  EXPECT_FALSE(csrToDia(A, Dia, 0.0, 0));
  EXPECT_FALSE(csrToEll(A, Ell, 0.0));
  EXPECT_FALSE(csrToBsr(A, Bsr, 4, 0.0));
}

TEST(ConversionGuardTest, BsrRejectsNonPositiveBlockSize) {
  CsrMatrix<double> A = validMatrix();
  BsrMatrix<double> Bsr;
  EXPECT_FALSE(csrToBsr(A, Bsr, 0));
  EXPECT_FALSE(csrToBsr(A, Bsr, -3));
}

TEST(ConversionGuardTest, BsrBlockSizeOverflowRejected) {
  CsrMatrix<double> A = validMatrix();
  BsrMatrix<double> Bsr;
  // BlockSize^2 alone exceeds the absolute element cap; the guard must
  // reject without attempting the (overflowing) allocation.
  EXPECT_FALSE(csrToBsr(A, Bsr, index_t(1) << 20, 0.0));
}

TEST(ConversionGuardTest, TryCooToCsrReportsBadCoordinates) {
  CooMatrix<double> Coo;
  Coo.NumRows = 4;
  Coo.NumCols = 4;
  Coo.Rows = {0, 9};
  Coo.Cols = {0, 1};
  Coo.Values = {1.0, 2.0};

  auto Result = tryCooToCsr(Coo);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrorCode::InvalidMatrix);
  expectContains(Result.status().message(), "out of range");

  Coo.Rows[1] = 3;
  auto Fixed = tryCooToCsr(Coo);
  ASSERT_TRUE(Fixed.ok()) << Fixed.status().message();
  EXPECT_EQ(Fixed->nnz(), 2);
}

// --- COO kernel preconditions (ISSUE satellite 2) ---------------------------

TEST(KernelPrecondTest, RowSplitDeclaresMonotoneRows) {
  bool Found = false;
  for (const auto &K : kernelTable<double>().Coo)
    if (std::string(K.Name) == "coo_omp_rowsplit") {
      Found = true;
      EXPECT_TRUE(K.Preconds & PrecondMonotoneRows)
          << "the row-split kernel must declare its sortedness precondition";
    }
  EXPECT_TRUE(Found) << "coo_omp_rowsplit missing from the kernel table";
}

TEST(KernelPrecondTest, PrecondsHoldChecksMonotoneRows) {
  CooMatrix<double> Coo = csrToCoo(validMatrix());
  EXPECT_TRUE(kernelPrecondsHold(PrecondMonotoneRows, Coo))
      << "csrToCoo output is monotone by construction";

  if (Coo.Rows.size() >= 2) {
    std::swap(Coo.Rows.front(), Coo.Rows.back());
    if (!Coo.hasMonotoneRows()) {
      EXPECT_FALSE(kernelPrecondsHold(PrecondMonotoneRows, Coo));
      sortCooRowMajor(Coo);
      EXPECT_TRUE(kernelPrecondsHold(PrecondMonotoneRows, Coo));
    }
  }
}

TEST(KernelPrecondTest, ScoreboardNeverRunsKernelOnViolatedPrecond) {
  // An out-of-order COO probe: the row-split kernel must be recorded at
  // zero GFLOPS (table stays index-aligned) instead of being executed.
  CooMatrix<double> Coo = csrToCoo(randomCsr(30, 30, 0.2, 7));
  ASSERT_GE(Coo.Rows.size(), 2u);
  std::swap(Coo.Rows.front(), Coo.Rows.back());
  std::swap(Coo.Cols.front(), Coo.Cols.back());
  ASSERT_FALSE(Coo.hasMonotoneRows());

  const auto &Kernels = kernelTable<double>().Coo;
  auto Table = measureKernelTable<double>(Kernels, Coo, 1e-5);
  ASSERT_EQ(Table.size(), Kernels.size());
  for (std::size_t I = 0; I != Kernels.size(); ++I) {
    EXPECT_EQ(Table[I].Name, Kernels[I].Name);
    if (Kernels[I].Preconds & PrecondMonotoneRows)
      EXPECT_EQ(Table[I].Gflops, 0.0)
          << Kernels[I].Name << " ran on input violating its precondition";
  }
}

TEST(KernelPrecondTest, TuneBindsRowSplitOnlyWithMonotoneRows) {
  // End to end: a COO-bound tune goes through csrToCoo, so the precondition
  // holds and whatever kernel is bound computes the right answer.
  CsrMatrix<double> A = powerLawGraph(400, 2.2, 1, 50, 5);
  TuneOptions Opts = fastTune();
  auto Result = sharedTuner().tryTune(A, Opts);
  ASSERT_TRUE(Result.ok()) << Result.status().message();

  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 17);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows));
  Result->apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-10);
}

// --- AMG boundary (tentpole) ------------------------------------------------

TEST(AmgBoundaryTest, TrySetupRejectsNonSquare) {
  AmgSolver Solver;
  Status S = Solver.trySetup(randomCsr(6, 9, 0.5, 2), AmgOptions());
  ASSERT_FALSE(S.ok());
  expectContains(S.message(), "square operator");
}

TEST(AmgBoundaryTest, TrySetupRejectsInvalidMatrix) {
  CsrMatrix<double> A = randomCsr(8, 8, 0.5, 2);
  A.RowPtr[4] = A.RowPtr[5] + 1;
  AmgSolver Solver;
  Status S = Solver.trySetup(A, AmgOptions());
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidMatrix);
  expectContains(S.message(), "RowPtr not monotone");
}

TEST(AmgBoundaryTest, SmatBackendRequiresTuner) {
  AmgOptions Opts;
  Opts.Backend = SpmvBackendKind::Smat;
  Opts.Tuner = nullptr;
  AmgSolver Solver;
  Status S = Solver.trySetup(randomCsr(8, 8, 0.5, 2), Opts);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::InvalidArgument);
  expectContains(S.message(), "requires a tuner");
}

TEST(AmgBoundaryTest, ThrowingSetupCarriesDiagnostic) {
  AmgSolver Solver;
  EXPECT_THROW(Solver.setup(randomCsr(4, 7, 0.5, 2), AmgOptions()),
               std::invalid_argument);
}

// --- MatrixMarket boundary (ISSUE satellite 3) ------------------------------

TEST(MatrixMarketErrorTest, TruncatedFileNamesProgress) {
  std::string Text = "%%MatrixMarket matrix coordinate real general\n"
                     "3 3 5\n"
                     "1 1 1.0\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_FALSE(Result.Ok);
  EXPECT_EQ(Result.Code, ErrorCode::ParseError);
  expectContains(Result.Error, "file ended after 1 of 5 entries");
}

TEST(MatrixMarketErrorTest, OversizedEntryCountRejected) {
  std::string Text = "%%MatrixMarket matrix coordinate real general\n"
                     "2 2 5\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_FALSE(Result.Ok);
  expectContains(Result.Error, "line 2:");
  expectContains(Result.Error, "entry count 5 exceeds matrix capacity 2 x 2");
}

TEST(MatrixMarketErrorTest, NegativeDimensionRejected) {
  std::string Text = "%%MatrixMarket matrix coordinate real general\n"
                     "-3 3 1\n"
                     "1 1 1.0\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_FALSE(Result.Ok);
  expectContains(Result.Error, "negative matrix dimension");
}

TEST(MatrixMarketErrorTest, SymmetricRequiresSquare) {
  std::string Text = "%%MatrixMarket matrix coordinate real symmetric\n"
                     "3 4 2\n"
                     "1 1 1.0\n"
                     "2 1 2.0\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_FALSE(Result.Ok);
  expectContains(Result.Error, "symmetric symmetry requires a square matrix");
}

TEST(MatrixMarketErrorTest, MirrorOverCapacityRejected) {
  // Both triangles stored in a symmetric file: capacity holds pre-mirror
  // (4 <= 2x2) but mirroring doubles the off-diagonal entries to 8.
  std::string Text = "%%MatrixMarket matrix coordinate real symmetric\n"
                     "2 2 4\n"
                     "2 1 1.0\n"
                     "2 1 1.0\n"
                     "2 1 1.0\n"
                     "2 1 1.0\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_FALSE(Result.Ok);
  expectContains(Result.Error, "symmetric mirroring produced 8 entries");
}

TEST(MatrixMarketErrorTest, TrailingDataRejected) {
  std::string Text = "%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n"
                     "1 1 1.0\n"
                     "2 2 5.0\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_FALSE(Result.Ok);
  expectContains(Result.Error, "trailing data after the declared 1 entries");
}

TEST(MatrixMarketErrorTest, DiagnosticsCarryLineNumbers) {
  std::string Text = "%%MatrixMarket matrix coordinate real general\n"
                     "% a comment pushes the bad entry to line 4\n"
                     "2 2 1\n"
                     "1 bogus 1.0\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_FALSE(Result.Ok);
  expectContains(Result.Error, "line 4:");
  expectContains(Result.Error, "malformed entry line");
}

TEST(MatrixMarketErrorTest, MissingFileIsInvalidArgument) {
  auto Result = readMatrixMarketFile("/nonexistent/smat_no_such_file.mtx");
  ASSERT_FALSE(Result.Ok);
  EXPECT_EQ(Result.Code, ErrorCode::InvalidArgument);
  expectContains(Result.Error, "cannot open file");
}

// --- Malformed-input fuzz harness (tentpole) --------------------------------
//
// Seeded structural breakers: each mutation produces a CSR matrix violating
// exactly one invariant class. Every trust boundary must answer with a
// diagnostic error — never a crash, never a sanitizer report.

namespace {

enum { NumCsrBreakers = 9 };

CsrMatrix<double> breakCsr(std::uint64_t Seed, int Breaker) {
  Rng Rng(Seed * 2654435761u + static_cast<std::uint64_t>(Breaker));
  CsrMatrix<double> A = randomCsr(4 + static_cast<index_t>(Rng.range(1, 20)),
                                  4 + static_cast<index_t>(Rng.range(1, 20)),
                                  0.35, Seed + 11);
  // Guarantee at least one stored entry so index mutations always apply.
  if (A.nnz() == 0) {
    A.RowPtr.back() = 1;
    for (std::size_t R = A.RowPtr.size() - 1; R-- > 1;)
      A.RowPtr[R] = std::min<index_t>(A.RowPtr[R], 1);
    A.ColIdx.assign(1, 0);
    A.Values.assign(1, 1.0);
  }
  std::size_t Pick = Rng.bounded(A.ColIdx.size());
  switch (Breaker) {
  case 0: // Non-monotone RowPtr.
    A.RowPtr[A.RowPtr.size() / 2] =
        A.RowPtr[A.RowPtr.size() / 2 + (A.NumRows > 0 ? 1 : 0)] + 3;
    break;
  case 1: // Column index past NumCols.
    A.ColIdx[Pick] = A.NumCols + static_cast<index_t>(Rng.range(0, 5));
    break;
  case 2: // Negative column index.
    A.ColIdx[Pick] = -1 - static_cast<index_t>(Rng.range(0, 3));
    break;
  case 3: // ColIdx shorter than RowPtr.back().
    A.ColIdx.pop_back();
    break;
  case 4: // Values longer than RowPtr.back().
    A.Values.push_back(0.5);
    break;
  case 5: // RowPtr missing its final fence.
    A.RowPtr.pop_back();
    break;
  case 6: // Broken anchor.
    A.RowPtr[0] = 1 + static_cast<index_t>(Rng.range(0, 4));
    break;
  case 7: // Negative dimension.
    A.NumRows = -static_cast<index_t>(Rng.range(1, 10));
    break;
  default: // RowPtr.back() overstates nnz.
    A.RowPtr.back() += 4;
    break;
  }
  return A;
}

} // namespace

class MalformedInputFuzz : public ::testing::TestWithParam<std::uint64_t> {
protected:
  // Any assertion failure below reports the seed and the exact rerun
  // command; the trace lives as a member so it covers the whole test body.
  void SetUp() override {
    Trace = std::make_unique<::testing::ScopedTrace>(
        __FILE__, __LINE__,
        "fuzz seed " + std::to_string(GetParam()) + " (rerun with " +
            "SMAT_FUZZ_SEED=" + std::to_string(GetParam()) + ")");
  }

private:
  std::unique_ptr<::testing::ScopedTrace> Trace;
};

TEST_P(MalformedInputFuzz, EveryBoundaryRejectsBrokenCsr) {
  for (int Breaker = 0; Breaker < NumCsrBreakers; ++Breaker) {
    SCOPED_TRACE("breaker " + std::to_string(Breaker));
    CsrMatrix<double> A = breakCsr(GetParam(), Breaker);
    Status Check = validateCsr(A);
    if (Check.ok())
      continue; // A rare mutation may cancel out; nothing to assert.

    // tryTune: diagnostic error, no crash, no partial result.
    auto Tuned = sharedTuner().tryTune(A, fastTune());
    ASSERT_FALSE(Tuned.ok());
    EXPECT_FALSE(Tuned.status().message().empty());
    EXPECT_NE(Tuned.status().code(), ErrorCode::Ok);

    // Throwing tune: std::invalid_argument with the same diagnostic class.
    EXPECT_THROW((void)sharedTuner().tune(A, fastTune()),
                 std::invalid_argument);

    // C entry point: error code out, Out untouched.
    TunedSpmv<double> Out;
    std::string Message;
    EXPECT_NE(SMAT_dCSR_SpMV_try(sharedTuner(), A, Out, &Message, fastTune()),
              ErrorCode::Ok);
    EXPECT_FALSE(Message.empty());
    EXPECT_EQ(Out.numRows(), 0);

    // Converters: defensive rejection (bound-as-CSR is the recovery).
    DiaMatrix<double> Dia;
    EllMatrix<double> Ell;
    BsrMatrix<double> Bsr;
    EXPECT_FALSE(csrToDia(A, Dia, 0.0, 0));
    EXPECT_FALSE(csrToEll(A, Ell, 0.0));
    EXPECT_FALSE(csrToBsr(A, Bsr, 4, 0.0));

    // AMG setup boundary.
    AmgSolver Solver;
    EXPECT_FALSE(Solver.trySetup(A, AmgOptions()).ok());
  }
}

TEST_P(MalformedInputFuzz, BrokenCooAlwaysYieldsErrors) {
  Rng Rng(GetParam() * 977 + 5);
  CooMatrix<double> Coo = csrToCoo(randomCsr(12, 12, 0.3, GetParam() + 40));
  for (int Round = 0; Round < 20; ++Round) {
    CooMatrix<double> Broken = Coo;
    switch (Rng.bounded(4)) {
    case 0:
      if (!Broken.Rows.empty())
        Broken.Rows[Rng.bounded(Broken.Rows.size())] =
            Broken.NumRows + static_cast<index_t>(Rng.range(0, 5));
      break;
    case 1:
      if (!Broken.Cols.empty())
        Broken.Cols[Rng.bounded(Broken.Cols.size())] = -2;
      break;
    case 2:
      Broken.Values.push_back(1.0);
      break;
    default:
      Broken.NumCols = -1;
      break;
    }
    auto Result = tryCooToCsr(Broken);
    if (validateCoo(Broken).ok()) {
      ASSERT_TRUE(Result.ok());
    } else {
      ASSERT_FALSE(Result.ok());
      EXPECT_FALSE(Result.status().message().empty());
      // The precondition probe must also stay crash-free on broken input.
      (void)kernelPrecondsHold(PrecondMonotoneRows, Broken);
    }
  }
}

TEST_P(MalformedInputFuzz, StructuredMatrixMarketMutations) {
  // Line-level (not byte-level: property_test covers that) mutations of a
  // valid file: drop/duplicate/scramble whole lines so the reader's
  // size-line and entry accounting is what gets attacked.
  Rng Rng(GetParam() * 431 + 3);
  std::string Valid =
      writeMatrixMarketString(randomCsr(9, 7, 0.4, GetParam() + 60));
  std::vector<std::string> Lines;
  {
    std::istringstream In(Valid);
    std::string L;
    while (std::getline(In, L))
      Lines.push_back(L);
  }
  for (int Round = 0; Round < 30; ++Round) {
    std::vector<std::string> Mutated = Lines;
    switch (Rng.bounded(4)) {
    case 0: // Drop a line (often an entry: truncation).
      Mutated.erase(Mutated.begin() +
                    static_cast<std::ptrdiff_t>(Rng.bounded(Mutated.size())));
      break;
    case 1: // Duplicate a line (often an entry: trailing data).
      Mutated.push_back(Mutated[Rng.bounded(Mutated.size())]);
      break;
    case 2: // Corrupt the size line.
      Mutated[1] = formatString("%d %d %d", -static_cast<int>(Rng.bounded(5)),
                                static_cast<int>(Rng.bounded(10)),
                                static_cast<int>(Rng.bounded(100)));
      break;
    default: // Scramble an entry line.
      Mutated[1 + Rng.bounded(Mutated.size() - 1)] = "1 x y";
      break;
    }
    std::string Text;
    for (const std::string &L : Mutated)
      Text += L + "\n";
    MatrixMarketResult Result = readMatrixMarketString(Text);
    if (Result.Ok) {
      EXPECT_TRUE(Result.Matrix.isValid());
      EXPECT_EQ(Result.Code, ErrorCode::Ok);
    } else {
      EXPECT_FALSE(Result.Error.empty());
      EXPECT_NE(Result.Code, ErrorCode::Ok);
    }
  }
}

TEST_P(MalformedInputFuzz, ValidInputsKeepIdenticalTunedResults) {
  // The hardening must be behavior-preserving on the happy path: tryTune,
  // tune, and the C entry point agree bit-for-bit on format, kernel, and
  // output vector.
  CsrMatrix<double> A = seededMatrix(GetParam());
  TuneOptions Opts = deterministicTune();

  TunedSpmv<double> Thrown = sharedTuner().tune(A, Opts);
  auto Tried = sharedTuner().tryTune(A, Opts);
  ASSERT_TRUE(Tried.ok()) << Tried.status().message();
  TunedSpmv<double> CApi;
  ASSERT_EQ(SMAT_dCSR_SpMV_try(sharedTuner(), A, CApi, nullptr, Opts),
            ErrorCode::Ok);

  EXPECT_EQ(Tried->format(), Thrown.format());
  EXPECT_EQ(CApi.format(), Thrown.format());
  EXPECT_EQ(Tried->kernelName(), Thrown.kernelName());
  EXPECT_EQ(CApi.kernelName(), Thrown.kernelName());

  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols),
                                GetParam() + 3);
  std::vector<double> Y0(static_cast<std::size_t>(A.NumRows));
  std::vector<double> Y1(static_cast<std::size_t>(A.NumRows));
  std::vector<double> Y2(static_cast<std::size_t>(A.NumRows));
  Thrown.apply(X.data(), Y0.data());
  Tried->apply(X.data(), Y1.data());
  CApi.apply(X.data(), Y2.data());
  EXPECT_EQ(Y0, Y1);
  EXPECT_EQ(Y0, Y2);
}

namespace {

/// The eight fuzz seeds, normally 1..8. Setting SMAT_FUZZ_SEED=<base> shifts
/// the window to base..base+7 so CI (or a developer chasing a failure) can
/// replay or widen the campaign without recompiling. Failures print their
/// seed via SCOPED_TRACE in the fixture below.
std::vector<std::uint64_t> fuzzSeeds() {
  std::uint64_t Base = 1;
  if (const char *Env = std::getenv("SMAT_FUZZ_SEED")) {
    char *End = nullptr;
    unsigned long long Parsed = std::strtoull(Env, &End, 10);
    if (End && *End == '\0' && End != Env)
      Base = static_cast<std::uint64_t>(Parsed);
  }
  std::vector<std::uint64_t> Seeds(8);
  for (std::size_t I = 0; I != Seeds.size(); ++I)
    Seeds[I] = Base + I;
  return Seeds;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(FuzzSeeds, MalformedInputFuzz,
                         ::testing::ValuesIn(fuzzSeeds()));

//===----------------------------------------------------------------------===//
// Plan-cache snapshot corruption (DESIGN.md section 16)
//===----------------------------------------------------------------------===//
//
// The persistence trust boundary: whatever is on disk — truncated by a
// crash, bit-flipped by rot, rewritten by an older/newer build, or plain
// garbage — loadSnapshot must log one warning and cold-start. Never a
// crash, never a partial load, never a poisoned plan.

namespace {

std::string snapshotTestPath(const std::string &Name) {
  return testing::TempDir() + Name;
}

/// A cache with a handful of distinct plans, saved to \p Path; returns the
/// snapshot file contents for mutation.
std::string writeHealthySnapshot(const std::string &Path) {
  PlanCache Cache(16);
  for (int I = 0; I < 5; ++I) {
    PlanFingerprint Fp;
    Fp.RowsLog2 = static_cast<std::int16_t>(I);
    Fp.ModelGeneration = I % 2;
    CachedPlan Plan;
    Plan.Format = static_cast<FormatKind>(I % static_cast<int>(NumFormats));
    Plan.CsrSpmvSeconds = 1e-6 * (I + 1);
    Plan.GuardrailEngaged = I == 3;
    Cache.insert(Fp, Plan);
  }
  std::string Error;
  EXPECT_TRUE(Cache.saveSnapshot(Path, &Error)) << Error;
  std::ifstream Is(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << Is.rdbuf();
  return Buf.str();
}

/// Writes \p Content to \p Path verbatim.
void writeRaw(const std::string &Path, const std::string &Content) {
  std::ofstream Os(Path, std::ios::binary | std::ios::trunc);
  Os << Content;
}

/// Loads \p Path into a fresh cache and asserts the cold-start contract:
/// Corrupt result, a warning naming the file, and an untouched (empty)
/// cache that still works afterwards.
void expectColdStart(const std::string &Path, const std::string &Why) {
  SCOPED_TRACE(Why);
  PlanCache Cache(16);
  std::size_t Loaded = 99;
  std::string Warning;
  EXPECT_EQ(Cache.loadSnapshot(Path, &Loaded, &Warning),
            SnapshotLoadResult::Corrupt);
  EXPECT_EQ(Loaded, 0u) << "a rejected snapshot must load nothing";
  EXPECT_EQ(Cache.size(), 0u) << "a rejected snapshot must not half-load";
  EXPECT_NE(Warning.find(Path), std::string::npos)
      << "the warning must name the offending file: " << Warning;
  EXPECT_EQ(Cache.stats().SnapshotLoadFailures, 1u);
  // Not poisoned: the cache still takes inserts and lookups normally.
  PlanFingerprint Fp;
  Fp.RowsLog2 = 12;
  Cache.insert(Fp, CachedPlan{});
  CachedPlan Out;
  EXPECT_TRUE(Cache.lookup(Fp, Out));
}

} // namespace

TEST(SnapshotCorruptionTest, HealthySnapshotRoundTrips) {
  const std::string Path = snapshotTestPath("snapshot_healthy.txt");
  writeHealthySnapshot(Path);
  PlanCache Cache(16);
  std::size_t Loaded = 0;
  EXPECT_EQ(Cache.loadSnapshot(Path, &Loaded), SnapshotLoadResult::Loaded);
  EXPECT_EQ(Loaded, 5u);
  EXPECT_EQ(Cache.size(), 5u);
  std::remove(Path.c_str());
}

TEST(SnapshotCorruptionTest, MissingFileIsSilentlyCold) {
  PlanCache Cache(16);
  std::string Warning;
  EXPECT_EQ(Cache.loadSnapshot(snapshotTestPath("snapshot_never_written.txt"),
                               nullptr, &Warning),
            SnapshotLoadResult::Missing);
  EXPECT_TRUE(Warning.empty()) << "first boot is not an error";
  EXPECT_EQ(Cache.stats().SnapshotLoadFailures, 0u);
}

TEST(SnapshotCorruptionTest, VersionMismatchColdStarts) {
  const std::string Path = snapshotTestPath("snapshot_version.txt");
  std::string Content = writeHealthySnapshot(Path);
  std::string Mutated = Content;
  Mutated.replace(0, Mutated.find('\n'), "smat-plancache-v999");
  writeRaw(Path, Mutated);
  expectColdStart(Path, "future version tag");
  std::remove(Path.c_str());
}

TEST(SnapshotCorruptionTest, EveryTruncationPointColdStarts) {
  const std::string Path = snapshotTestPath("snapshot_truncated.txt");
  std::string Content = writeHealthySnapshot(Path);
  ASSERT_GT(Content.size(), 16u);
  // Sweep truncation lengths across the whole file (crash mid-write at any
  // byte). Length 0 — an empty file — is a corruption too: it exists but
  // carries no checksummed payload.
  for (std::size_t Len : {std::size_t(0), std::size_t(1), Content.size() / 4,
                          Content.size() / 2, Content.size() - 20,
                          Content.size() - 1}) {
    writeRaw(Path, Content.substr(0, Len));
    expectColdStart(Path, "truncated to " + std::to_string(Len) + " bytes");
  }
  std::remove(Path.c_str());
}

TEST(SnapshotCorruptionTest, RandomBitFlipsColdStart) {
  const std::string Path = snapshotTestPath("snapshot_bitflip.txt");
  std::string Content = writeHealthySnapshot(Path);
  Rng Rng(2024);
  for (int Trial = 0; Trial < 32; ++Trial) {
    std::string Mutated = Content;
    std::size_t Offset = static_cast<std::size_t>(
        Rng.uniform(0.0, static_cast<double>(Mutated.size() - 1)));
    int Bit = static_cast<int>(Rng.uniform(0.0, 7.99));
    Mutated[Offset] = static_cast<char>(Mutated[Offset] ^ (1 << Bit));
    if (Mutated == Content)
      continue;
    writeRaw(Path, Mutated);
    expectColdStart(Path, "bit " + std::to_string(Bit) + " flipped at byte " +
                              std::to_string(Offset));
  }
  std::remove(Path.c_str());
}

TEST(SnapshotCorruptionTest, GarbageAndStrippedChecksumColdStart) {
  const std::string Path = snapshotTestPath("snapshot_garbage.txt");
  writeRaw(Path, "this is not a plan-cache snapshot at all\n");
  expectColdStart(Path, "arbitrary garbage");

  // A well-formed body whose checksum trailer was stripped.
  std::string Content = writeHealthySnapshot(Path);
  std::size_t Trailer = Content.rfind("checksum ");
  ASSERT_NE(Trailer, std::string::npos);
  writeRaw(Path, Content.substr(0, Trailer));
  expectColdStart(Path, "missing checksum trailer");
  std::remove(Path.c_str());
}

TEST(SnapshotCorruptionTest, ValidChecksumBadFieldsStillColdStart) {
  // Craft snapshots that pass the checksum but carry semantically invalid
  // entries — the parse-then-commit layer must reject them field by field.
  const std::string Path = snapshotTestPath("snapshot_badfield.txt");
  auto Sealed = [](const std::string &Body) {
    char Trailer[32];
    std::snprintf(Trailer, sizeof(Trailer), "checksum %016llx\n",
                  static_cast<unsigned long long>(fnv1a64(Body)));
    return Body + Trailer;
  };
  const std::string Header = std::string(PlanCache::SnapshotVersion) + "\n";
  struct Case {
    const char *Why;
    std::string Body;
  } Cases[] = {
      {"format index out of range",
       Header + "entries 1\nplan 0 0 0 0 0 0 0 0 0 0 0 0 0 99 1e-6 0\n"},
      {"negative seconds",
       Header + "entries 1\nplan 0 0 0 0 0 0 0 0 0 0 0 0 0 0 -1.0 0\n"},
      {"non-numeric bucket",
       Header + "entries 1\nplan x 0 0 0 0 0 0 0 0 0 0 0 0 0 1e-6 0\n"},
      {"guard flag out of range",
       Header + "entries 1\nplan 0 0 0 0 0 0 0 0 0 0 0 0 0 0 1e-6 7\n"},
      {"trailing junk on entry",
       Header + "entries 1\nplan 0 0 0 0 0 0 0 0 0 0 0 0 0 0 1e-6 0 junk\n"},
      {"declared count above actual", Header + "entries 3\n"},
      {"declared count below actual",
       Header + "entries 0\nplan 0 0 0 0 0 0 0 0 0 0 0 0 0 0 1e-6 0\n"},
      {"malformed entry header", Header + "entriez 1\n"},
  };
  for (const Case &C : Cases) {
    writeRaw(Path, Sealed(C.Body));
    expectColdStart(Path, C.Why);
  }
  std::remove(Path.c_str());
}
