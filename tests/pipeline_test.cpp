//===- tests/pipeline_test.cpp - Staged pipeline, operators, plan cache ---===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/AmgSolver.h"
#include "core/FormatOperator.h"
#include "core/PlanCache.h"
#include "core/Smat.h"
#include "core/Trainer.h"
#include "core/TuningPipeline.h"
#include "matrix/Generators.h"
#include "ref/RefSpmv.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <memory>

using namespace smat;
using namespace smat::test;

namespace {

TrainingOptions fastOptions() {
  TrainingOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  return Opts;
}

const LearningModel &sharedModel() {
  static const LearningModel Model = [] {
    auto Corpus = buildCorpus(CorpusScale::Tiny);
    std::vector<const CorpusEntry *> Training, Evaluation;
    splitCorpus(Corpus, Training, Evaluation);
    return trainSmat<double>(Training, fastOptions()).Model;
  }();
  return Model;
}

const Smat<double> &sharedTuner() {
  static const Smat<double> Tuner(sharedModel());
  return Tuner;
}

} // namespace

// --- FeatureStage -----------------------------------------------------------

TEST(FeatureStageTest, Step1EagerPowerLawLazy) {
  CsrMatrix<double> A = banded(800, 2);
  TuneOptions Opts;
  TuningContext<double> Ctx{A, sharedModel(), Opts, nullptr};

  FeatureStageResult F = FeatureStage::run(Ctx);
  EXPECT_DOUBLE_EQ(F.Features.M, 800);
  EXPECT_DOUBLE_EQ(F.Features.N, 800);
  EXPECT_FALSE(F.HaveR) << "step 2 (power-law R) must not run eagerly";
  EXPECT_GE(F.Seconds, 0.0);

  FeatureStage::ensurePowerLaw(Ctx, F);
  EXPECT_TRUE(F.HaveR);
  double R = F.Features.R;
  FeatureStage::ensurePowerLaw(Ctx, F);
  EXPECT_DOUBLE_EQ(F.Features.R, R) << "ensurePowerLaw must be idempotent";
}

// --- PredictStage -----------------------------------------------------------

TEST(PredictStageTest, AgreesWithEndToEndTune) {
  const Smat<double> &Tuner = sharedTuner();
  TuneOptions NoMeasure;
  NoMeasure.AllowMeasure = false;

  for (const CsrMatrix<double> &A :
       {banded(2000, 5), powerLawGraph(600, 2.0, 1, 60, 21)}) {
    TuningContext<double> Ctx{A, Tuner.model(), NoMeasure, nullptr};
    FeatureStageResult F = FeatureStage::run(Ctx);
    PredictStageResult P = PredictStage::run(Ctx, F);

    TunedSpmv<double> Op = Tuner.tune(A, NoMeasure);
    EXPECT_EQ(Op.report().ModelPrediction, P.Prediction);
    EXPECT_EQ(Op.report().ModelConfident, P.Confident);
    EXPECT_DOUBLE_EQ(Op.report().ModelConfidence, P.Confidence);
  }
}

// --- MeasureStage -----------------------------------------------------------

TEST(MeasureStageTest, GateHonorsOptionsAndConfidence) {
  TuneOptions Opts;
  PredictStageResult Confident;
  Confident.Confident = true;
  PredictStageResult Unsure;

  EXPECT_FALSE(MeasureStage::shouldRun(Opts, Confident));
  EXPECT_TRUE(MeasureStage::shouldRun(Opts, Unsure));

  Opts.AllowMeasure = false;
  EXPECT_FALSE(MeasureStage::shouldRun(Opts, Unsure));

  Opts.ForceMeasure = true;
  EXPECT_TRUE(MeasureStage::shouldRun(Opts, Confident))
      << "ForceMeasure overrides both confidence and AllowMeasure";
}

TEST(MeasureStageTest, MeasuresPlausibleCandidatesAndPicksMax) {
  CsrMatrix<double> A = banded(1500, 2);
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  TuningContext<double> Ctx{A, sharedModel(), Opts, nullptr};
  FeatureStageResult F = FeatureStage::run(Ctx);

  MeasureStageResult M = MeasureStage::run(Ctx, F, FormatKind::CSR);
  EXPECT_GE(M.MeasuredGflops.size(), 2u)
      << "CSR and COO are always measured; DIA/ELL are plausible on a band";
  double BestGflops = -1.0;
  FormatKind BestKind = FormatKind::CSR;
  for (const auto &[Kind, Gflops] : M.MeasuredGflops) {
    EXPECT_GT(Gflops, 0.0);
    if (Gflops > BestGflops) {
      BestGflops = Gflops;
      BestKind = Kind;
    }
  }
  EXPECT_EQ(M.Best, BestKind);
  EXPECT_GT(M.Seconds, 0.0);
}

TEST(MeasureStageTest, FallbackReturnedWhenNothingPlausibleWins) {
  // The fallback only matters when MeasuredGflops would be empty; with CSR
  // always measured it never is, so Best must come from the measurements.
  // A heavy-tailed graph: one 400-degree row spikes ELL's padding, and the
  // scattered diagonals blow DIA's fill guard.
  CsrMatrix<double> A = powerLawGraph(3000, 2.0, 1, 400, 3);
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  TuningContext<double> Ctx{A, sharedModel(), Opts, nullptr};
  FeatureStageResult F = FeatureStage::run(Ctx);
  MeasureStageResult M = MeasureStage::run(Ctx, F, FormatKind::DIA);
  for (const auto &[Kind, G] : M.MeasuredGflops) {
    EXPECT_NE(Kind, FormatKind::DIA) << "DIA is implausible on a graph";
    EXPECT_NE(Kind, FormatKind::ELL) << "ELL is implausible on a graph";
  }
  EXPECT_NE(M.Best, FormatKind::DIA);
}

// --- BindStage and FormatOperator -------------------------------------------

TEST(BindStageTest, GuardRejectionFallsBackToCsr) {
  CsrMatrix<double> A = powerLawGraph(800, 2.0, 1, 80, 5);
  TuneOptions Opts;
  TuningContext<double> Ctx{A, sharedModel(), Opts, nullptr};

  BindStageResult<double> B = BindStage::run(Ctx, FormatKind::DIA);
  ASSERT_TRUE(B.Op);
  EXPECT_EQ(B.BoundFormat, FormatKind::CSR)
      << "a DIA request must fall back to CSR when the fill guard rejects";
  EXPECT_EQ(B.Op->kind(), FormatKind::CSR);
  EXPECT_FALSE(B.Op->ownsStorage()) << "default CSR binding borrows";
  EXPECT_FALSE(B.KernelName.empty());
}

TEST(BindStageTest, SkewedFeaturesBindLoadBalancedCsrKernel) {
  // With the skew pick populated, features whose row CV clears the
  // threshold must route the CSR bind to the load-balanced kernel; without
  // features (legacy 2-arg call sites) the general pick stays.
  const auto &Csr = kernelTable<double>().Csr;
  int NnzSplit = -1;
  for (std::size_t I = 0; I != Csr.size(); ++I)
    if (std::string(Csr[I].Name) == "csr_nnzsplit")
      NnzSplit = static_cast<int>(I);
  ASSERT_GE(NnzSplit, 0);

  LearningModel Model = sharedModel();
  Model.Kernels.BestSkewCsrKernel = NnzSplit;
  Model.Kernels.BestSkewCsrKernelName = "csr_nnzsplit";

  CsrMatrix<double> A = spikedRows(1500, 2, 500, 0.01, 41);
  TuneOptions Opts;
  TuningContext<double> Ctx{A, Model, Opts, nullptr};
  FeatureStageResult F = FeatureStage::run(Ctx);
  ASSERT_GT(F.Features.rowCv(), SkewRowCvThreshold);

  BindStageResult<double> Skewed = BindStage::run(Ctx, FormatKind::CSR,
                                                  &F.Features);
  ASSERT_TRUE(Skewed.Op);
  EXPECT_EQ(Skewed.KernelName, "csr_nnzsplit");

  BindStageResult<double> Legacy = BindStage::run(Ctx, FormatKind::CSR);
  ASSERT_TRUE(Legacy.Op);
  EXPECT_NE(Legacy.KernelName, "csr_nnzsplit");

  // A balanced matrix stays on the general pick even with features given.
  CsrMatrix<double> B = banded(1500, 2);
  TuningContext<double> CtxB{B, Model, Opts, nullptr};
  FeatureStageResult FB = FeatureStage::run(CtxB);
  ASSERT_LT(FB.Features.rowCv(), SkewRowCvThreshold);
  BindStageResult<double> Balanced = BindStage::run(CtxB, FormatKind::CSR,
                                                    &FB.Features);
  ASSERT_TRUE(Balanced.Op);
  EXPECT_NE(Balanced.KernelName, "csr_nnzsplit");

  // The bound skewed operator computes the right thing.
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 42);
  auto Expected = denseSpmv(A, X);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -1.0);
  Skewed.Op->apply(X.data(), Y.data());
  expectVectorsNear(Expected, Y, 1e-9);
}

TEST(FormatOperatorTest, AllFormatsMatchReferenceSpmv) {
  // A band converts cleanly to every four-format representation; each bound
  // operator must agree with the fixed-interface reference library.
  CsrMatrix<double> A = banded(700, 3);
  KernelSelection Sel; // Basic kernels everywhere.
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 11);
  std::vector<double> Expected(static_cast<std::size_t>(A.NumRows));
  refCsrSpmv(A, X.data(), Expected.data());

  for (FormatKind Kind : {FormatKind::CSR, FormatKind::COO, FormatKind::DIA,
                          FormatKind::ELL}) {
    auto Op = bindFormatOperator(A, Kind, Sel);
    ASSERT_TRUE(Op);
    EXPECT_EQ(Op->kind(), Kind);
    std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -1.0);
    Op->apply(X.data(), Y.data());
    expectVectorsNear(Expected, Y, 1e-12);
  }
}

TEST(FormatOperatorTest, OwnedCsrSurvivesSourceDestruction) {
  KernelSelection Sel;
  auto A = std::make_unique<CsrMatrix<double>>(banded(300, 1));
  auto X = randomVector<double>(300, 13);
  std::vector<double> Expected = denseSpmv(*A, X);

  auto Owned = bindFormatOperator(*A, FormatKind::CSR, Sel, CsrStorage::Owned);
  EXPECT_TRUE(Owned->ownsStorage());
  A.reset();

  std::vector<double> Y(300, -1.0);
  Owned->apply(X.data(), Y.data());
  expectVectorsNear(Expected, Y, 1e-12);
}

TEST(FormatOperatorTest, MoveSourceAvoidsCopyAndStaysCorrect) {
  KernelSelection Sel;
  CsrMatrix<double> Src = banded(300, 1);
  auto X = randomVector<double>(300, 17);
  std::vector<double> Expected = denseSpmv(Src, X);

  auto Op =
      bindFormatOperator(Src, FormatKind::CSR, Sel, CsrStorage::Owned, &Src);
  // The operator took Src's storage; wiping the source must not affect it.
  Src = banded(10, 1);
  std::vector<double> Y(300, -1.0);
  Op->apply(X.data(), Y.data());
  expectVectorsNear(Expected, Y, 1e-12);
}

TEST(SmatRuntimeTest, OwnedModeAndRvalueTuneAreSelfContained) {
  const Smat<double> &Tuner = sharedTuner();

  // Lvalue tune with CsrMode = Owned: the operator must not reference A.
  {
    auto A = std::make_unique<CsrMatrix<double>>(randomCsr(300, 300, 0.02, 9));
    auto X = randomVector<double>(300, 19);
    std::vector<double> Expected = denseSpmv(*A, X);
    TuneOptions Opts;
    Opts.CsrMode = CsrStorage::Owned;
    TunedSpmv<double> Op = Tuner.tune(*A, Opts);
    EXPECT_TRUE(Op.ownsStorage());
    A.reset();
    std::vector<double> Y(300, -1.0);
    Op.apply(X.data(), Y.data());
    expectVectorsNear(Expected, Y, 1e-12);
  }

  // Rvalue tune: forces owned storage, moving when the bind lands on CSR.
  {
    CsrMatrix<double> A = randomCsr(300, 300, 0.02, 23);
    auto X = randomVector<double>(300, 29);
    std::vector<double> Expected = denseSpmv(A, X);
    TunedSpmv<double> Op = Tuner.tune(std::move(A));
    EXPECT_TRUE(Op.ownsStorage());
    std::vector<double> Y(300, -1.0);
    Op.apply(X.data(), Y.data());
    expectVectorsNear(Expected, Y, 1e-12);
  }

  // Default mode on a CSR-bound matrix borrows (documented hazard).
  {
    CsrMatrix<double> A = powerLawGraph(400, 2.0, 1, 40, 31);
    TunedSpmv<double> Op = Tuner.tune(A);
    if (Op.format() == FormatKind::CSR)
      EXPECT_FALSE(Op.ownsStorage());
    else
      EXPECT_TRUE(Op.ownsStorage());
  }
}

// --- PlanCache --------------------------------------------------------------

TEST(PlanCacheTest, HitMissInsertEvictLru) {
  PlanCache Cache(2);
  EXPECT_EQ(Cache.capacity(), 2u);

  PlanFingerprint F1, F2, F3;
  F1.RowsLog2 = 1;
  F2.RowsLog2 = 2;
  F3.RowsLog2 = 3;

  CachedPlan Plan;
  EXPECT_FALSE(Cache.lookup(F1, Plan));
  Cache.insert(F1, {FormatKind::DIA, 0.5});
  ASSERT_TRUE(Cache.lookup(F1, Plan));
  EXPECT_EQ(Plan.Format, FormatKind::DIA);
  EXPECT_DOUBLE_EQ(Plan.CsrSpmvSeconds, 0.5);

  // F1 was just used; inserting F2 then F3 must evict F1's neighbour... not:
  // LRU order is [F1], then [F2, F1], then F3 evicts the back (F1).
  Cache.insert(F2, {FormatKind::ELL, 0.1});
  Cache.insert(F3, {FormatKind::COO, 0.2});
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_FALSE(Cache.lookup(F1, Plan)) << "least recently used must go";
  EXPECT_TRUE(Cache.lookup(F2, Plan));
  EXPECT_TRUE(Cache.lookup(F3, Plan));

  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 3u);
  EXPECT_EQ(Stats.Misses, 2u);
  EXPECT_EQ(Stats.Inserts, 3u);
  EXPECT_EQ(Stats.Evictions, 1u);

  // Overwriting an existing key is an insert, not an eviction.
  Cache.insert(F2, {FormatKind::CSR, 0.3});
  ASSERT_TRUE(Cache.lookup(F2, Plan));
  EXPECT_EQ(Plan.Format, FormatKind::CSR);
  EXPECT_EQ(Cache.stats().Evictions, 1u);

  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().Hits, 4u) << "counters survive clear()";
}

TEST(PlanCacheTest, FingerprintGroupsEquivalentStructure) {
  FeatureVector A = extractStructureFeatures(banded(1000, 2));
  FeatureVector B = extractStructureFeatures(banded(1000, 2));
  EXPECT_EQ(fingerprintFeatures(A), fingerprintFeatures(B));

  // Same shape, same nnz scale, radically different structure.
  FeatureVector C =
      extractStructureFeatures(powerLawGraph(1000, 2.0, 1, 100, 3));
  EXPECT_FALSE(fingerprintFeatures(A) == fingerprintFeatures(C));
}

TEST(SmatCacheTest, WarmTuneReusesPlanAndSkipsMeasurement) {
  const Smat<double> &Tuner = sharedTuner();
  PlanCache Cache;
  TuneOptions Opts;
  Opts.Cache = &Cache;
  Opts.MeasureMinSeconds = 1e-4;

  CsrMatrix<double> A = banded(1500, 3);
  TunedSpmv<double> Cold = Tuner.tune(A, Opts);
  EXPECT_FALSE(Cold.report().PlanCacheHit);

  TunedSpmv<double> Warm = Tuner.tune(A, Opts);
  EXPECT_TRUE(Warm.report().PlanCacheHit);
  EXPECT_TRUE(Warm.report().MeasuredGflops.empty());
  EXPECT_EQ(Warm.format(), Cold.format());
  EXPECT_DOUBLE_EQ(Warm.report().CsrSpmvSeconds,
                   Cold.report().CsrSpmvSeconds)
      << "the cached baseline is reused verbatim";

  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Inserts, 1u);

  // The warm operator is a real, correct operator, not a stale pointer.
  auto X = randomVector<double>(1500, 37);
  std::vector<double> Y(1500, -1.0);
  Warm.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-12);
}

TEST(SmatCacheTest, ForceMeasureBypassesLookupButStillInserts) {
  const Smat<double> &Tuner = sharedTuner();
  PlanCache Cache;
  TuneOptions Opts;
  Opts.Cache = &Cache;
  Opts.MeasureMinSeconds = 1e-4;

  CsrMatrix<double> A = banded(1200, 2);
  (void)Tuner.tune(A, Opts); // Seed the cache.
  std::uint64_t HitsBefore = Cache.stats().Hits;

  TuneOptions Force = Opts;
  Force.ForceMeasure = true;
  TunedSpmv<double> Op = Tuner.tune(A, Force);
  EXPECT_FALSE(Op.report().PlanCacheHit)
      << "forced measurement must not consume a cached plan";
  EXPECT_FALSE(Op.report().MeasuredGflops.empty());
  EXPECT_EQ(Cache.stats().Hits, HitsBefore);
  EXPECT_GE(Cache.stats().Inserts, 2u)
      << "the fresh ground-truth plan refreshes the cache";
}

TEST(SmatCacheTest, BatchWidthBucketsMissIndependently) {
  const Smat<double> &Tuner = sharedTuner();
  PlanCache Cache;
  TuneOptions Opts;
  Opts.Cache = &Cache;
  Opts.MeasureMinSeconds = 1e-4;

  CsrMatrix<double> A = banded(1400, 3);
  // Cold single-vector tune fills the SpMV (width-0) bucket.
  EXPECT_FALSE(Tuner.tune(A, Opts).report().PlanCacheHit);

  // First batched tune at k=8: same structure, new width bucket — a miss
  // that re-measures, not a collision with the SpMV plan.
  TuneOptions Batch8 = Opts;
  Batch8.BatchWidth = 8;
  TunedSpmv<double> Cold8 = Tuner.tune(A, Batch8);
  EXPECT_FALSE(Cold8.report().PlanCacheHit)
      << "a new batch width must miss its own bucket";

  // Warm tune at the same width hits, and the per-stage timings show what a
  // hit skips: prediction and measurement never run, while features (the
  // fingerprint input) and the bind still do.
  TunedSpmv<double> Warm8 = Tuner.tune(A, Batch8);
  EXPECT_TRUE(Warm8.report().PlanCacheHit);
  EXPECT_TRUE(Warm8.report().MeasuredGflops.empty());
  EXPECT_EQ(Warm8.report().PredictSeconds, 0.0);
  EXPECT_EQ(Warm8.report().MeasureSeconds, 0.0);
  EXPECT_GT(Warm8.report().FeatureSeconds, 0.0);
  EXPECT_GT(Warm8.report().BindSeconds, 0.0);
  EXPECT_EQ(Warm8.format(), Cold8.format());

  // k=5 rounds up into the same <=8 register-tile bucket: also a hit.
  TuneOptions Batch5 = Opts;
  Batch5.BatchWidth = 5;
  EXPECT_TRUE(Tuner.tune(A, Batch5).report().PlanCacheHit);

  // k=16 is a different bucket: misses again.
  TuneOptions Batch16 = Opts;
  Batch16.BatchWidth = 16;
  EXPECT_FALSE(Tuner.tune(A, Batch16).report().PlanCacheHit);

  // The original SpMV bucket stayed warm through all of it.
  EXPECT_TRUE(Tuner.tune(A, Opts).report().PlanCacheHit);

  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 3u) << "one per distinct width bucket";
  EXPECT_EQ(Stats.Hits, 3u);
  EXPECT_EQ(Cache.size(), 3u);
}

// --- Stage timing in the report ---------------------------------------------

TEST(ReportTest, StageTimingsPopulatedAndConsistent) {
  const Smat<double> &Tuner = sharedTuner();
  CsrMatrix<double> A = banded(1500, 3);
  TunedSpmv<double> Op = Tuner.tune(A);
  const TuningReport &R = Op.report();

  EXPECT_GT(R.TuneSeconds, 0.0);
  EXPECT_GT(R.CsrSpmvSeconds, 0.0);
  EXPECT_GT(R.FeatureSeconds, 0.0);
  EXPECT_GE(R.PredictSeconds, 0.0);
  EXPECT_GE(R.MeasureSeconds, 0.0);
  EXPECT_GT(R.BindSeconds, 0.0);
  double StageSum = R.FeatureSeconds + R.PredictSeconds + R.MeasureSeconds +
                    R.BindSeconds;
  EXPECT_LE(StageSum, R.TuneSeconds + 1e-3)
      << "stages are sub-intervals of the tune wall clock";
}

// --- Model file loading ------------------------------------------------------

TEST(SmatIoTest, FromFileErrorsCarryThePath) {
  const std::string Bogus = testing::TempDir() + "/no_such_model_file.txt";

  std::string Error;
  auto Missing = Smat<double>::tryFromFile(Bogus, &Error);
  EXPECT_FALSE(Missing.has_value());
  EXPECT_NE(Error.find(Bogus), std::string::npos)
      << "the failure message must name the offending file: " << Error;

  try {
    (void)Smat<double>::fromFile(Bogus);
    FAIL() << "fromFile must throw on a missing file";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what()).find(Bogus), std::string::npos);
  }

  // The happy path still round-trips.
  const std::string Good = testing::TempDir() + "/pipeline_model_ok.txt";
  ASSERT_TRUE(saveModelFile(Good, sharedModel()));
  auto Loaded = Smat<double>::tryFromFile(Good, &Error);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->model().Rules.size(), sharedModel().Rules.size());
}

// --- AMG client: one PlanCache across the hierarchy --------------------------

TEST(AmgCacheTest, HierarchySharesOneCache) {
  CsrMatrix<double> A = laplace2d5pt(40, 40);
  const Smat<double> &Tuner = sharedTuner();

  PlanCache Cache;
  AmgOptions Opts;
  Opts.Backend = SpmvBackendKind::Smat;
  Opts.Tuner = &Tuner;
  Opts.Cache = &Cache;

  AmgSolver Solver;
  Solver.setup(A, Opts);
  EXPECT_EQ(Solver.planCache(), &Cache);

  PlanCacheStats S1 = Cache.stats();
  std::size_t NumOps = Solver.formatDecisions().size();
  EXPECT_EQ(S1.Hits + S1.Misses, NumOps)
      << "every tuned operator goes through the shared cache";
  EXPECT_EQ(S1.Inserts, S1.Misses);

  // A second setup over the same matrix re-tunes the same structures: every
  // single lookup must now hit.
  AmgSolver Solver2;
  Solver2.setup(A, Opts);
  PlanCacheStats S2 = Cache.stats();
  EXPECT_EQ(S2.Hits, S1.Hits + NumOps);
  EXPECT_EQ(S2.Misses, S1.Misses);

  // Cache-tuned operators must still solve correctly.
  auto XTrue = randomVector<double>(static_cast<std::size_t>(A.NumRows), 41);
  std::vector<double> B = denseSpmv(A, XTrue);
  std::vector<double> X;
  SolveStats Stats = Solver2.solve(B, X);
  ASSERT_TRUE(Stats.Converged) << "res " << Stats.RelResidual;
  expectVectorsNear(XTrue, X, 1e-6);
}

TEST(AmgCacheTest, SolverOwnsFallbackCache) {
  CsrMatrix<double> A = laplace2d5pt(30, 30);
  AmgOptions Opts;
  Opts.Backend = SpmvBackendKind::Smat;
  Opts.Tuner = &sharedTuner();

  AmgSolver Solver;
  Solver.setup(A, Opts);
  ASSERT_NE(Solver.planCache(), nullptr)
      << "the Smat backend always tunes through a cache";
  PlanCacheStats Stats = Solver.planCache()->stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses, Solver.formatDecisions().size());
}
