//===- tests/support_test.cpp - Support library unit tests ----------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/AlignedAlloc.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Str.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <type_traits>
#include <utility>

using namespace smat;

// --- Str -------------------------------------------------------------------

TEST(StrTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StrTest, SplitOnSeparator) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StrTest, SplitKeepsEmptyPiecesWhenAsked) {
  auto Parts = split("a,,b,", ',', /*KeepEmpty=*/true);
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[3], "");
}

TEST(StrTest, SplitWhitespaceCollapsesRuns) {
  auto Parts = splitWhitespace("  one \t two\nthree ");
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "one");
  EXPECT_EQ(Parts[2], "three");
}

TEST(StrTest, EqualsIgnoreCase) {
  EXPECT_TRUE(equalsIgnoreCase("CSR", "csr"));
  EXPECT_TRUE(equalsIgnoreCase("", ""));
  EXPECT_FALSE(equalsIgnoreCase("CSR", "CSRX"));
  EXPECT_FALSE(equalsIgnoreCase("abc", "abd"));
}

TEST(StrTest, StartsWith) {
  EXPECT_TRUE(startsWith("%%MatrixMarket matrix", "%%MatrixMarket"));
  EXPECT_FALSE(startsWith("%%", "%%MatrixMarket"));
}

TEST(StrTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("%.2f", 1.5), "1.50");
  EXPECT_EQ(formatString("empty"), "empty");
}

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A(), B());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A() == B() ? 1 : 0;
  EXPECT_LT(Same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.bounded(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng R(11);
  std::set<std::int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    std::int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u) << "all values of a small range should appear";
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng R(13);
  double Sum = 0;
  constexpr int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

// --- Stats -----------------------------------------------------------------

TEST(StatsTest, MeanAndVariance) {
  std::vector<double> Xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(Xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(Xs), 1.25);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4, 1}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({2, 2, 2}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(StatsTest, LeastSquaresRecoversLine) {
  std::vector<double> X = {0, 1, 2, 3, 4};
  std::vector<double> Y;
  for (double V : X)
    Y.push_back(3.0 * V - 1.0);
  double Slope = 0, Intercept = 0;
  ASSERT_TRUE(leastSquaresFit(X, Y, Slope, Intercept));
  EXPECT_NEAR(Slope, 3.0, 1e-12);
  EXPECT_NEAR(Intercept, -1.0, 1e-12);
}

TEST(StatsTest, LeastSquaresRejectsDegenerateInput) {
  double Slope, Intercept;
  EXPECT_FALSE(leastSquaresFit({1.0}, {2.0}, Slope, Intercept));
  EXPECT_FALSE(leastSquaresFit({2, 2, 2}, {1, 2, 3}, Slope, Intercept));
}

// --- AlignedAlloc ----------------------------------------------------------

TEST(AlignedAllocTest, VectorDataIs64ByteAligned) {
  AlignedVector<double> V(1000, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(V.data()) % 64, 0u);
  AlignedVector<float> W(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(W.data()) % 64, 0u);
}

TEST(AlignedAllocTest, GrowsAndKeepsContents) {
  AlignedVector<int> V;
  for (int I = 0; I < 1000; ++I)
    V.push_back(I);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(V[static_cast<std::size_t>(I)], I);
}

TEST(AlignedAllocTest, AlignmentHoldsAcrossElementTypes) {
  // Odd-sized elements stress the round-up path: the rounded byte count is
  // not a multiple of sizeof(T), yet data() must still start on the line.
  struct Odd {
    char C[7];
  };
  AlignedVector<std::uint8_t> Bytes(129);
  AlignedVector<std::int16_t> Shorts(77);
  AlignedVector<Odd> Odds(13);
  AlignedVector<long double> Longs(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Bytes.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Shorts.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Odds.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Longs.data()) % 64, 0u);
}

TEST(AlignedAllocTest, RebindThroughContainersKeepsAlignment) {
  // Node-based containers rebind AlignedAllocator<T> to their node type; the
  // rebound allocator must interoperate (equality) and stay aligned.
  using IntAlloc = AlignedAllocator<int>;
  using NodeAlloc = IntAlloc::rebind<std::pair<const int, double>>::other;
  static_assert(
      std::is_same_v<NodeAlloc, AlignedAllocator<std::pair<const int, double>>>,
      "rebind must preserve the alignment parameter");
  EXPECT_TRUE(IntAlloc() == NodeAlloc()); // Stateless: always interchangeable.

  std::vector<std::vector<double, AlignedAllocator<double>>,
              AlignedAllocator<std::vector<double, AlignedAllocator<double>>>>
      Nested(3);
  for (auto &Inner : Nested) {
    Inner.assign(17, 0.5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Inner.data()) % 64, 0u);
  }
}

TEST(AlignedAllocTest, ZeroSizeAllocateReturnsNull) {
  AlignedAllocator<double> Alloc;
  double *P = Alloc.allocate(0);
  EXPECT_EQ(P, nullptr);
  Alloc.deallocate(P, 0); // free(nullptr) is a no-op; must not crash.
}

TEST(AlignedAllocTest, AllocationSizeOverflowThrowsBadAlloc) {
  // N * sizeof(T) would wrap; the allocator must refuse rather than hand
  // back a tiny block for a huge request.
  AlignedAllocator<double> Alloc;
  const std::size_t Huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(static_cast<void>(Alloc.allocate(Huge)), std::bad_alloc);
  // The largest count that still rounds up past SIZE_MAX must throw too.
  const std::size_t BarelyOver =
      std::numeric_limits<std::size_t>::max() / sizeof(double);
  EXPECT_THROW(static_cast<void>(Alloc.allocate(BarelyOver)), std::bad_alloc);
}

// --- Timer -----------------------------------------------------------------

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer T;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink += I;
  EXPECT_GE(T.seconds(), 0.0);
}

TEST(TimerTest, MeasureSecondsPerCallRunsMinimumReps) {
  int Calls = 0;
  double PerCall = measureSecondsPerCall([&Calls] { ++Calls; }, 1e-6, 5);
  EXPECT_GE(Calls, 6) << "warm-up + at least MinReps";
  EXPECT_GT(PerCall, 0.0);
}

TEST(TimerTest, SpmvGflopsFormula) {
  // 1e9 nonzeros in 2 seconds = 1 GFLOP/s (2 flops per nonzero).
  EXPECT_DOUBLE_EQ(spmvGflops(1000000000ull, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(spmvGflops(100, 0.0), 0.0);
}

// --- AsciiTable --------------------------------------------------------------

TEST(TableTest, CsvRendering) {
  AsciiTable T({"a", "b"});
  T.addRow({"1", "2"});
  T.addRow({"3"}); // Short row padded.
  EXPECT_EQ(T.toCsv(), "a,b\n1,2\n3,\n");
}
