//===- tests/integration_test.cpp - End-to-end pipeline tests -------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Exercises the full paper pipeline in one process: corpus -> training ->
// model -> runtime tuning -> application (AMG), checking cross-module
// contracts rather than single-module behavior.
//
//===----------------------------------------------------------------------===//

#include "amg/AmgSolver.h"
#include "core/Trainer.h"
#include "matrix/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace smat;
using namespace smat::test;

namespace {

const TrainResult &sharedModel() {
  static const TrainResult Result = [] {
    auto Corpus = buildCorpus(CorpusScale::Tiny);
    std::vector<const CorpusEntry *> Training, Evaluation;
    splitCorpus(Corpus, Training, Evaluation);
    TrainingOptions Opts;
    Opts.MeasureMinSeconds = 2e-4;
    return trainSmat<double>(Training, Opts);
  }();
  return Result;
}

} // namespace

TEST(IntegrationTest, HeldOutPredictionBeatsAlwaysCsr) {
  // The learned model's end-to-end decisions (prediction + measurement
  // fallback) must recover more best-formats on held-out matrices than the
  // "always CSR" baseline policy.
  const TrainResult &Training = sharedModel();
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> TrainingSet, Evaluation;
  splitCorpus(Corpus, TrainingSet, Evaluation);

  TrainingOptions MeasureOpts;
  MeasureOpts.MeasureMinSeconds = 2e-4;

  const Smat<double> Tuner(Training.Model);
  int SmatHits = 0, CsrHits = 0, Total = 0;
  for (const CorpusEntry *Entry : Evaluation) {
    FeatureRecord Truth =
        buildRecord<double>(*Entry, Training.Model.Kernels, MeasureOpts);
    TunedSpmv<double> Op = Tuner.tune(Entry->Matrix);
    ++Total;
    SmatHits += Op.format() == Truth.BestFormat ? 1 : 0;
    CsrHits += Truth.BestFormat == FormatKind::CSR ? 1 : 0;
  }
  ASSERT_GT(Total, 0);
  // Timing noise at test speeds makes individual labels jittery; demand a
  // clear directional win, not the paper's exact 82-92%.
  EXPECT_GE(SmatHits, CsrHits)
      << "SMAT decisions (" << SmatHits << "/" << Total
      << ") should match the measured best at least as often as always-CSR ("
      << CsrHits << "/" << Total << ")";
}

TEST(IntegrationTest, TunedOperatorsCorrectOnWholeEvaluationSet) {
  const Smat<double> Tuner(sharedModel().Model);
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> TrainingSet, Evaluation;
  splitCorpus(Corpus, TrainingSet, Evaluation);

  for (const CorpusEntry *Entry : Evaluation) {
    const CsrMatrix<double> &A = Entry->Matrix;
    TunedSpmv<double> Op = Tuner.tune(A);
    auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 7);
    std::vector<double> Y(static_cast<std::size_t>(A.NumRows));
    Op.apply(X.data(), Y.data());
    SCOPED_TRACE(Entry->Name + " chose " +
                 std::string(formatName(Op.format())));
    expectVectorsNear(denseSpmv(A, X), Y, 1e-10);
  }
}

TEST(IntegrationTest, ModelFileRoundTripPreservesDecisions) {
  const TrainResult &Training = sharedModel();
  std::string Path = testing::TempDir() + "/smat_integration_model.txt";
  ASSERT_TRUE(saveModelFile(Path, Training.Model));
  Smat<double> Loaded = Smat<double>::fromFile(Path);
  const Smat<double> Original(Training.Model);

  // Decisions with measurement disabled must be identical (pure model path;
  // the measurement path is timing-dependent by design).
  TuneOptions NoMeasure;
  NoMeasure.AllowMeasure = false;
  for (const CorpusEntry &Entry : representativeMatrices()) {
    CsrMatrix<double> Small = Entry.Matrix; // Tune the real thing; cheap.
    EXPECT_EQ(Original.tune(Small, NoMeasure).format(),
              Loaded.tune(Small, NoMeasure).format())
        << Entry.Name;
  }
}

TEST(IntegrationTest, SmatBackedAmgMatchesFixedCsrSolution) {
  CsrMatrix<double> A = laplace2d9pt(40, 40);
  auto XTrue = randomVector<double>(static_cast<std::size_t>(A.NumRows), 11);
  std::vector<double> B = denseSpmv(A, XTrue);

  AmgOptions Fixed;
  Fixed.Backend = SpmvBackendKind::FixedCsr;
  AmgSolver FixedSolver;
  FixedSolver.setup(A, Fixed);
  std::vector<double> XFixed;
  SolveStats FixedStats = FixedSolver.solve(B, XFixed);
  ASSERT_TRUE(FixedStats.Converged);

  const Smat<double> Tuner(sharedModel().Model);
  AmgOptions WithSmat;
  WithSmat.Backend = SpmvBackendKind::Smat;
  WithSmat.Tuner = &Tuner;
  AmgSolver SmatSolver;
  SmatSolver.setup(A, WithSmat);
  std::vector<double> XSmat;
  SolveStats SmatStats = SmatSolver.solve(B, XSmat);
  ASSERT_TRUE(SmatStats.Converged);

  // Same hierarchy, same numerics (kernels differ only in evaluation
  // order): iteration counts must match exactly, solutions to solver tol.
  EXPECT_EQ(FixedStats.Iterations, SmatStats.Iterations);
  expectVectorsNear(XFixed, XSmat, 1e-8);

  // And the tuned solve must expose per-operator decisions.
  EXPECT_EQ(SmatSolver.formatDecisions().size(),
            3 * SmatSolver.hierarchy().numLevels() - 2);
}

TEST(IntegrationTest, AmgLevelStructureDrifts) {
  // Paper Figure 1's premise: AMG levels have different sparse structure
  // than the input. Verify the feature trajectory actually changes.
  AmgHierarchy H;
  H.build(laplace3d7pt(12, 12, 12), HierarchyOptions());
  ASSERT_GE(H.numLevels(), 2u);
  FeatureVector Fine = extractStructureFeatures(H.level(0).A);
  FeatureVector Coarse =
      extractStructureFeatures(H.level(H.numLevels() - 1).A);
  EXPECT_GT(Coarse.AverRd, Fine.AverRd)
      << "Galerkin coarsening densifies rows";
  EXPECT_LT(Coarse.M, Fine.M);
}

TEST(IntegrationTest, TrainedRulesetIsWellFormed) {
  const TrainResult &Training = sharedModel();
  const RuleSet &Rules = Training.Model.Rules;
  ASSERT_FALSE(Rules.Rules.empty());
  for (const Rule &R : Rules.Rules) {
    EXPECT_GT(R.Confidence, 0.0);
    EXPECT_LT(R.Confidence, 1.0);
    EXPECT_LE(R.Correct, R.Covered);
    EXPECT_GT(R.Covered, 0.0) << "tailored rules must cover something";
    for (const Condition &C : R.Conditions) {
      EXPECT_GE(C.Feature, 0);
      EXPECT_LT(C.Feature, NumFeatures);
    }
  }
  // A 4-format training run must not emit BSR rules.
  for (const Rule &R : Rules.Rules)
    EXPECT_NE(R.Format, FormatKind::BSR);
}

TEST(IntegrationTest, RuleGroupOrderMatchesPaperSection6) {
  // DIA first (fastest when applicable), ELL second (regular), then the
  // BSR extension slot, CSR (parameters already computed), COO last.
  EXPECT_EQ(RuleGroupOrder[0], FormatKind::DIA);
  EXPECT_EQ(RuleGroupOrder[1], FormatKind::ELL);
  EXPECT_EQ(RuleGroupOrder[2], FormatKind::BSR);
  EXPECT_EQ(RuleGroupOrder[3], FormatKind::CSR);
  EXPECT_EQ(RuleGroupOrder[4], FormatKind::COO);
}

TEST(IntegrationTest, DatabaseCsvRoundTripsThroughDisk) {
  const TrainResult &Training = sharedModel();
  std::string Path = testing::TempDir() + "/smat_integration_db.csv";
  ASSERT_TRUE(Training.Database.saveCsvFile(Path));
  FeatureDatabase Loaded;
  std::string Error;
  ASSERT_TRUE(FeatureDatabase::loadCsvFile(Path, Loaded, Error)) << Error;
  ASSERT_EQ(Loaded.size(), Training.Database.size());
  // The reloaded database must train to the same decisions.
  Dataset Original = Training.Database.toDataset();
  Dataset Reloaded = Loaded.toDataset();
  ASSERT_EQ(Original.size(), Reloaded.size());
  for (std::size_t I = 0; I != Original.size(); ++I) {
    EXPECT_EQ(Original.Samples[I].Label, Reloaded.Samples[I].Label);
    EXPECT_EQ(Original.Samples[I].X, Reloaded.Samples[I].X);
  }
}

TEST(IntegrationTest, FloatAndDoubleModelsBothUsable) {
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainingOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;

  TrainResult FloatModel = trainSmat<float>(Training, Opts);
  const Smat<float> Tuner(FloatModel.Model);
  CsrMatrix<float> A = convertValueType<float>(banded(2000, 4));
  TunedSpmv<float> Op = Tuner.tune(A);
  auto X = randomVector<float>(static_cast<std::size_t>(A.NumCols), 13);
  std::vector<float> Y(static_cast<std::size_t>(A.NumRows));
  Op.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-4);
}
