//===- tests/never_slower_test.cpp - Never-slower selection guarantee -----===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The selection guarantee (DESIGN.md section 15): a tuned plan must not lose
// to the untuned basic-CSR baseline. Two mechanisms enforce it -- the
// measured baseline races as a first-class candidate in MeasureStage, and a
// confident prediction's bound plan is quick-verified against the baseline
// after the bind -- and the analytic cost model prunes the race's candidate
// menu without ever pruning CSR. This file tests the structural pieces
// deterministically (baseline candidate, BaselineWon, ForceBasicCsr bind,
// classifier masks, report plumbing) and the end-to-end property over the
// seeded perf-suite smoke corpus for SpMV and width-8 SpMM. Fault-armed
// variants skip themselves unless the build compiled the hooks in
// (SMAT_FAULT_INJECTION=ON; scripts/check.sh's -L fault pass runs them).
//
//===----------------------------------------------------------------------===//

#include "core/CostModel.h"
#include "core/Smat.h"
#include "core/TuningPipeline.h"
#include "kernels/KernelRegistry.h"
#include "kernels/Scoreboard.h"
#include "matrix/Generators.h"
#include "support/AlignedAlloc.h"
#include "support/FaultInjection.h"
#include "support/Timer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace smat;
using namespace smat::test;

namespace {

/// A model that is never confident, so every tune that allows measurement
/// races -- the path on which the guardrail is a first-class candidate.
LearningModel strictModel() {
  LearningModel Model;
  Model.ConfidenceThreshold = 2.0;
  Model.refreshRuleMetadata();
  return Model;
}

TuneOptions fastTune() {
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  return Opts;
}

/// Asserts that \p Op computes y = A*x correctly against the dense
/// reference; works for TunedSpmv and bare FormatOperators alike.
template <typename OpT>
void expectSpmvMatches(const OpT &Op, const CsrMatrix<double> &A,
                       std::uint64_t Seed = 7) {
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), Seed);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
  Op.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-10);
}

/// Arms a fault schedule for the test body and disarms it on scope exit.
struct FaultScope {
  explicit FaultScope(const fault::FaultConfig &Cfg) { fault::configure(Cfg); }
  ~FaultScope() { fault::reset(); }
};

/// The seeded perf-suite smoke corpus (bench/perf_suite.cpp): one matrix per
/// structure family the selection guarantee must hold on, including the
/// power-law skew case whose historical mispick motivated the guardrail.
struct CorpusCase {
  std::string Name;
  CsrMatrix<double> A;
};

std::vector<CorpusCase> smokeCorpus() {
  std::vector<CorpusCase> Cases;
  Cases.push_back({"fem_balanced", blockFem(40, 8, 2.0, 101)});
  Cases.push_back({"powerlaw_skew", powerLawGraph(2000, 1.9, 1, 400, 102)});
  Cases.push_back({"banded_diag", banded(4000, 3)});
  Cases.push_back({"rect_lp", lpRectangular(1500, 3000, 8, 103)});
  for (CorpusCase &C : Cases)
    randomizeValues(C.A, 7);
  return Cases;
}

/// Min-of-samples GFLOPS of \p Fn -- the same robust discipline the runtime
/// uses, so both sides of every comparison share one noise model.
template <typename FnT> double robustGflops(std::uint64_t Flnnz, FnT Fn) {
  RobustMeasureOptions Opts;
  Opts.MinSeconds = 5e-4;
  return spmvGflops(Flnnz, robustMeasureSecondsPerCall(Fn, Opts).SecondsPerCall);
}

/// The end-to-end acceptance floor. The bench gate enforces the tight 10%
/// noise floor on a quiet runner; under a parallel ctest schedule the
/// re-measurement itself can swing further, so the property test asserts
/// the gross bound that the pre-guardrail powerlaw mispick (tuned at 49% of
/// basic) clearly violated while honest picks clearly satisfy.
constexpr double TestNoiseFloor = 0.60;

} // namespace

// --- Analytic cost model (CostModel.h) --------------------------------------

TEST(CostModelTest, CsrIsAlwaysAllowed) {
  for (const CorpusCase &Case : smokeCorpus()) {
    FeatureVector F = extractAllFeatures(Case.A);
    CostModelDecision D = classifyBottleneck(F);
    EXPECT_TRUE(D.allows(FormatKind::CSR))
        << Case.Name << ": CSR is the guardrail's plan and must never be "
        << "pruned";
    EXPECT_GE(D.numAllowed(), 1);
  }
}

TEST(CostModelTest, SkewedRowsClassifyImbalanceBound) {
  // Row CV above the threshold must dominate every fill-efficiency signal:
  // the cure for imbalance is a load-balanced CSR kernel, not a conversion.
  FeatureVector F;
  F.M = F.N = 1000;
  F.Nnz = 5000;
  F.AverRd = 5;
  F.VarRd = 400; // CV = 4
  F.MaxRd = 400;
  F.Ndiags = 3;
  F.ErDia = 1.0; // would otherwise scream DIA
  F.ErEll = 1.0;
  CostModelDecision D = classifyBottleneck(F);
  EXPECT_EQ(D.Class, BottleneckClass::ImbalanceBound);
  EXPECT_EQ(D.numAllowed(), 1) << "imbalance-bound races CSR kernels only";
  EXPECT_TRUE(D.allows(FormatKind::CSR));
}

TEST(CostModelTest, DiagonalStructureClassifiesBandwidthBound) {
  FeatureVector F = extractAllFeatures(banded(4000, 3));
  CostModelDecision D = classifyBottleneck(F);
  EXPECT_EQ(D.Class, BottleneckClass::BandwidthBound);
  EXPECT_TRUE(D.allows(FormatKind::DIA));
  EXPECT_TRUE(D.allows(FormatKind::CSR));
  EXPECT_FALSE(D.allows(FormatKind::COO))
      << "a dense band never wants the flat nonzero stream";
}

TEST(CostModelTest, ScatteredStructureClassifiesIrregularityBound) {
  // Low-degree scattered graph: no diagonal structure, poor ELL fill, mild
  // skew -- the irregularity remainder where COO is the only alternative.
  FeatureVector F;
  F.M = F.N = 10000;
  F.Nnz = 30000;
  F.AverRd = 3;
  F.VarRd = 1; // CV ~ 0.33
  F.MaxRd = 60;
  F.Ndiags = 9000; // blows the DIA guard
  F.ErDia = 0.001;
  F.ErEll = 0.05;
  F.ErBsr = 0.1;
  CostModelDecision D = classifyBottleneck(F);
  EXPECT_EQ(D.Class, BottleneckClass::IrregularityBound);
  EXPECT_TRUE(D.allows(FormatKind::COO));
  EXPECT_FALSE(D.allows(FormatKind::DIA));
  EXPECT_FALSE(D.allows(FormatKind::ELL));
}

TEST(CostModelTest, ThresholdsGateTheClassification) {
  FeatureVector F;
  F.M = F.N = 1000;
  F.Nnz = 5000;
  F.AverRd = 5;
  F.VarRd = 9; // CV = 0.6
  F.Ndiags = 5;
  F.ErDia = 0.55;
  CostModelThresholds Strict;
  Strict.ImbalanceRowCv = 0.5; // now 0.6 counts as skewed
  EXPECT_EQ(classifyBottleneck(F).Class, BottleneckClass::BandwidthBound);
  EXPECT_EQ(classifyBottleneck(F, Strict).Class,
            BottleneckClass::ImbalanceBound);
}

// --- MeasureStage: the baseline as a first-class candidate ------------------

TEST(GuardrailRaceTest, UnbeatableBaselineWinsTheRace) {
  CsrMatrix<double> A = banded(1500, 2);
  LearningModel Model = strictModel();
  TuneOptions Opts = fastTune();
  TuningContext<double> Ctx{A, Model, Opts, nullptr};
  FeatureStageResult F = FeatureStage::run(Ctx);

  // A baseline no real kernel can reach must win and flip BaselineWon.
  MeasureStageResult M =
      MeasureStage::run(Ctx, F, FormatKind::CSR, nullptr, 1e9);
  EXPECT_TRUE(M.BaselineWon);
  EXPECT_EQ(M.Best, FormatKind::CSR);
  bool SawBaseline = false;
  for (const MeasuredCandidate &C : M.Candidates)
    if (C.IsBaseline) {
      SawBaseline = true;
      EXPECT_EQ(C.Format, FormatKind::CSR);
      EXPECT_DOUBLE_EQ(C.Gflops, 1e9);
    }
  EXPECT_TRUE(SawBaseline) << "the baseline must appear in the race record";
}

TEST(GuardrailRaceTest, NegligibleBaselineLosesButIsRecorded) {
  CsrMatrix<double> A = banded(1500, 2);
  LearningModel Model = strictModel();
  TuneOptions Opts = fastTune();
  TuningContext<double> Ctx{A, Model, Opts, nullptr};
  FeatureStageResult F = FeatureStage::run(Ctx);

  MeasureStageResult M =
      MeasureStage::run(Ctx, F, FormatKind::CSR, nullptr, 1e-9);
  EXPECT_FALSE(M.BaselineWon);
  ASSERT_FALSE(M.MeasuredGflops.empty());
  int Baselines = 0;
  for (const MeasuredCandidate &C : M.Candidates)
    Baselines += C.IsBaseline ? 1 : 0;
  EXPECT_EQ(Baselines, 1);
}

TEST(GuardrailRaceTest, CostModelMaskRestrictsTheRaceToCsr) {
  // An imbalance-bound decision admits CSR only; the race must measure no
  // other format even on a band where DIA/ELL are structurally plausible.
  CsrMatrix<double> A = banded(1500, 2);
  LearningModel Model = strictModel();
  TuneOptions Opts = fastTune();
  TuningContext<double> Ctx{A, Model, Opts, nullptr};
  FeatureStageResult F = FeatureStage::run(Ctx);

  CostModelDecision CsrOnly;
  CsrOnly.Class = BottleneckClass::ImbalanceBound;
  CsrOnly.Allowed[static_cast<std::size_t>(FormatKind::CSR)] = true;
  MeasureStageResult M =
      MeasureStage::run(Ctx, F, FormatKind::CSR, &CsrOnly);
  ASSERT_FALSE(M.MeasuredGflops.empty());
  for (const auto &[Kind, Gflops] : M.MeasuredGflops)
    EXPECT_EQ(Kind, FormatKind::CSR);
  EXPECT_EQ(M.Best, FormatKind::CSR);
}

// --- BindStage: the forced untuned plan -------------------------------------

TEST(GuardrailBindTest, ForceBasicCsrBindsTheUntunedPlan) {
  CsrMatrix<double> A = banded(800, 2);
  LearningModel Model = strictModel();
  TuneOptions Opts = fastTune();
  TuningContext<double> Ctx{A, Model, Opts, nullptr};
  FeatureStageResult F = FeatureStage::run(Ctx);

  // Even a DIA request (which the band would happily satisfy) must yield
  // the basic CSR kernels with no conversion and no degradation: binding
  // the untuned plan is the guardrail's decision, not a failure.
  BindStageResult<double> B =
      BindStage::run(Ctx, FormatKind::DIA, &F.Features, /*ForceBasicCsr=*/true);
  ASSERT_TRUE(B.Op);
  EXPECT_EQ(B.BoundFormat, FormatKind::CSR);
  EXPECT_EQ(B.KernelName, kernelTable<double>().Csr[0].Name);
  EXPECT_EQ(B.Degradation, DegradationLevel::None);
  expectSpmvMatches(*B.Op, A);
}

// --- End-to-end report plumbing ---------------------------------------------

TEST(GuardrailReportTest, ColdRaceRecordsBaselineAndCandidates) {
  auto Corpus = smokeCorpus();
  Smat<double> Tuner(strictModel());
  for (const CorpusCase &Case : Corpus) {
    TunedSpmv<double> Op = Tuner.tune(Case.A, fastTune());
    const TuningReport &R = Op.report();
    EXPECT_GT(R.BaselineGflops, 0.0) << Case.Name;
    EXPECT_GT(R.BaselineSeconds, 0.0) << Case.Name;
    EXPECT_GE(R.TuneSeconds, 0.0) << Case.Name;
    int Baselines = 0;
    for (const MeasuredCandidate &C : R.MeasuredCandidates)
      Baselines += C.IsBaseline ? 1 : 0;
    EXPECT_EQ(Baselines, 1)
        << Case.Name << ": exactly one baseline entry per race";
    if (R.GuardrailEngaged) {
      EXPECT_EQ(R.ChosenFormat, FormatKind::CSR) << Case.Name;
      EXPECT_EQ(R.KernelName, kernelTable<double>().Csr[0].Name) << Case.Name;
    }
    EXPECT_TRUE(R.CostModelApplied) << Case.Name;
  }
}

TEST(GuardrailReportTest, NoMeasureTuneKeepsGuardrailInactive) {
  // The guardrail is a measurement; AllowMeasure=false tunes stay fully
  // deterministic, so it must not run there.
  CsrMatrix<double> A = powerLawGraph(800, 2.0, 1, 80, 5);
  Smat<double> Tuner(strictModel());
  TuneOptions Opts = fastTune();
  Opts.AllowMeasure = false;

  TunedSpmv<double> First = Tuner.tune(A, Opts);
  TunedSpmv<double> Second = Tuner.tune(A, Opts);
  EXPECT_DOUBLE_EQ(First.report().BaselineGflops, 0.0);
  EXPECT_FALSE(First.report().GuardrailEngaged);
  EXPECT_TRUE(First.report().MeasuredCandidates.empty());
  EXPECT_EQ(First.report().ChosenFormat, Second.report().ChosenFormat);
  EXPECT_EQ(First.report().KernelName, Second.report().KernelName);
}

TEST(GuardrailReportTest, GuardrailOptOutSkipsTheBaseline) {
  CsrMatrix<double> A = banded(1200, 2);
  Smat<double> Tuner(strictModel());
  TuneOptions Opts = fastTune();
  Opts.Guardrail = false;

  TunedSpmv<double> Op = Tuner.tune(A, Opts);
  const TuningReport &R = Op.report();
  EXPECT_DOUBLE_EQ(R.BaselineGflops, 0.0);
  EXPECT_FALSE(R.GuardrailEngaged);
  for (const MeasuredCandidate &C : R.MeasuredCandidates)
    EXPECT_FALSE(C.IsBaseline);
  expectSpmvMatches(Op, A);
}

TEST(GuardrailReportTest, EngagementCounterMatchesTheReports) {
  auto Corpus = smokeCorpus();
  Smat<double> Tuner(strictModel());
  std::uint64_t Engaged = 0;
  for (const CorpusCase &Case : Corpus) {
    TunedSpmv<double> Op = Tuner.tune(Case.A, fastTune());
    Engaged += Op.report().GuardrailEngaged ? 1 : 0;
  }
  SmatResilienceCounters Counters = Tuner.resilienceCounters();
  EXPECT_EQ(Counters.GuardrailEngagements, Engaged);
  EXPECT_EQ(Counters.Tunes, Corpus.size());
}

// --- The tuned_never_slower property (SpMV and width-8 SpMM) ----------------

TEST(NeverSlowerPropertyTest, TunedSpmvNeverGrosslySlowerThanBasicCsr) {
  auto Corpus = smokeCorpus();
  const KernelTable<double> &Kernels = kernelTable<double>();
  Smat<double> Tuner(strictModel());
  for (const CorpusCase &Case : Corpus) {
    const CsrMatrix<double> &A = Case.A;
    TunedSpmv<double> Op = Tuner.tune(A, fastTune());
    expectSpmvMatches(Op, A);

    AlignedVector<double> X(static_cast<std::size_t>(A.NumCols), 1.0);
    AlignedVector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
    const std::uint64_t Flnnz = static_cast<std::uint64_t>(A.nnz());
    double Basic = robustGflops(
        Flnnz, [&] { Kernels.Csr[0].Fn(A, X.data(), Y.data()); });
    double Tuned =
        robustGflops(Flnnz, [&] { Op.apply(X.data(), Y.data()); });
    EXPECT_GE(Tuned, Basic * TestNoiseFloor)
        << Case.Name << ": tuned " << Tuned << " GFLOPS vs basic " << Basic
        << " GFLOPS (format " << formatName(Op.format()) << ", kernel "
        << Op.kernelName()
        << (Op.report().GuardrailEngaged ? ", guardrail engaged" : "") << ")";
  }
}

TEST(NeverSlowerPropertyTest, TunedSpmmK8NeverGrosslySlowerThanBasicCsr) {
  constexpr index_t K = 8;
  auto Corpus = smokeCorpus();
  const KernelTable<double> &Kernels = kernelTable<double>();
  Smat<double> Tuner(strictModel());
  for (const CorpusCase &Case : Corpus) {
    const CsrMatrix<double> &A = Case.A;
    TunedSpmv<double> Op = SMAT_dCSR_SpMM(Tuner, A, K, fastTune());
    EXPECT_GT(Op.report().BaselineGflops, 0.0)
        << Case.Name << ": batched tunes measure a width-" << K
        << " basic SpMM baseline";

    AlignedVector<double> X(
        static_cast<std::size_t>(A.NumCols) * static_cast<std::size_t>(K),
        1.0);
    AlignedVector<double> Yb(
        static_cast<std::size_t>(A.NumRows) * static_cast<std::size_t>(K),
        0.0);
    AlignedVector<double> Yt(Yb.size(), 0.0);
    Kernels.CsrSpmm[0].Fn(A, X.data(), Yb.data(), K);
    Op.multiply(X.data(), Yt.data(), K);
    expectVectorsNear(std::vector<double>(Yb.begin(), Yb.end()),
                      std::vector<double>(Yt.begin(), Yt.end()), 1e-10);

    const std::uint64_t Flnnz =
        static_cast<std::uint64_t>(A.nnz()) * static_cast<std::uint64_t>(K);
    double Basic = robustGflops(
        Flnnz, [&] { Kernels.CsrSpmm[0].Fn(A, X.data(), Yb.data(), K); });
    double Tuned =
        robustGflops(Flnnz, [&] { Op.multiply(X.data(), Yt.data(), K); });
    EXPECT_GE(Tuned, Basic * TestNoiseFloor)
        << Case.Name << ": tuned " << Tuned << " GFLOPS vs basic_x8 " << Basic
        << " GFLOPS (format " << formatName(Op.format()) << ", kernel "
        << Op.spmmKernelName()
        << (Op.report().GuardrailEngaged ? ", guardrail engaged" : "") << ")";
  }
}

// --- Fault-armed variants (need SMAT_FAULT_INJECTION=ON) --------------------

TEST(NeverSlowerFaultTest, RaceSurvivesCooCandidateFault) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "fault-injection hooks not compiled in";
  CsrMatrix<double> A = powerLawGraph(2000, 1.9, 1, 400, 102);
  randomizeValues(A, 7);
  Smat<double> Tuner(strictModel());

  fault::FaultConfig Cfg;
  Cfg.AlwaysSites = {"measure.kernel.COO"};
  FaultScope Scope(Cfg);
  // The cost model would prune COO from this imbalance-bound race before
  // the fault site is reached; disable it so the faulted path actually runs.
  TuneOptions Opts = fastTune();
  Opts.CostModelPrune = false;
  TunedSpmv<double> Op = Tuner.tune(A, Opts);
  EXPECT_NE(Op.format(), FormatKind::COO)
      << "a candidate whose measurement faults must not be selected";
  EXPECT_GT(Op.report().DroppedCandidates, 0);
  EXPECT_GT(Op.report().BaselineGflops, 0.0)
      << "the guardrail baseline survives an unrelated candidate fault";
  expectSpmvMatches(Op, A);
}

TEST(NeverSlowerFaultTest, BaselineFaultDisablesGuardrailButNotTheTune) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "fault-injection hooks not compiled in";
  CsrMatrix<double> A = banded(1200, 2);
  Smat<double> Tuner(strictModel());

  fault::FaultConfig Cfg;
  Cfg.AlwaysSites = {"measure.baseline"};
  FaultScope Scope(Cfg);
  TunedSpmv<double> Op = Tuner.tune(A, fastTune());
  const TuningReport &R = Op.report();
  EXPECT_DOUBLE_EQ(R.BaselineGflops, 0.0)
      << "a faulted baseline measurement reports an inactive guardrail";
  EXPECT_FALSE(R.GuardrailEngaged);
  for (const MeasuredCandidate &C : R.MeasuredCandidates)
    EXPECT_FALSE(C.IsBaseline);
  expectSpmvMatches(Op, A);
}

TEST(NeverSlowerFaultTest, WhollyFaultedScoreboardKeepsBasicSelected) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "fault-injection hooks not compiled in";
  // Regression for the scoreboard tie-break bug: with every measurement
  // faulted the table is all zero GFLOPS, and score inflation from reduced
  // pairs that never ran must not promote an unmeasured kernel over basic.
  CsrMatrix<double> A = banded(600, 2);
  fault::FaultConfig Cfg;
  Cfg.AlwaysSites = {"scoreboard.kernel"};
  FaultScope Scope(Cfg);

  std::vector<KernelMeasurement> Table =
      measureKernelTable<double>(kernelTable<double>().Csr, A, 1e-4);
  ASSERT_FALSE(Table.empty());
  for (const KernelMeasurement &Row : Table)
    EXPECT_DOUBLE_EQ(Row.Gflops, 0.0);
  ScoreboardResult Result = runScoreboard(Table);
  EXPECT_EQ(Result.BestIndex, 0)
      << "an unmeasured table must keep the basic kernel selected";
}
