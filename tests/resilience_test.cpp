//===- tests/resilience_test.cpp - Fault-tolerant tuning runtime ----------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The resilience contract (DESIGN.md section 12): once a matrix passes
// validation, tune/tryTune cannot fail — they degrade down a ladder (drop
// failing candidates, bind the basic CSR kernel, bind the CSR reference
// plan) and report the rung taken. The measurement watchdog (robust timing,
// budgets, backoff) is covered here too. Tests that need injected faults
// skip themselves unless the build compiled the hooks in (-L fault runs
// them via scripts/check.sh's SMAT_FAULT_INJECTION=ON pass); the timing and
// budget tests run in every tier-1 build.
//
//===----------------------------------------------------------------------===//

#include "amg/AmgSolver.h"
#include "core/Smat.h"
#include "matrix/Generators.h"
#include "support/FaultInjection.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

using namespace smat;
using namespace smat::test;

namespace {

/// A model that is never confident (threshold above any group confidence),
/// so every tune that allows measurement actually measures. Cheap to build:
/// no training, the default ruleset and basic kernels are enough to drive
/// the full pipeline.
LearningModel strictModel() {
  LearningModel Model;
  Model.ConfidenceThreshold = 2.0;
  Model.refreshRuleMetadata();
  return Model;
}

TuneOptions fastTune() {
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  return Opts;
}

/// Asserts that \p Op computes y = A*x correctly against the dense
/// reference — the end-to-end check every degradation rung must pass.
void expectSpmvMatches(const TunedSpmv<double> &Op, const CsrMatrix<double> &A,
                       std::uint64_t Seed = 7) {
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), Seed);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
  Op.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-10);
}

/// Arms a fault schedule for the test body and disarms it on scope exit, so
/// a failing assertion cannot leak an armed configuration into later tests.
struct FaultScope {
  explicit FaultScope(const fault::FaultConfig &Cfg) { fault::configure(Cfg); }
  ~FaultScope() { fault::reset(); }
};

} // namespace

// --- Robust timing (watchdog core; no faults needed) ------------------------

TEST(RobustTimingTest, SpreadStatsBasics) {
  EXPECT_DOUBLE_EQ(minValue({}), 0.0);
  EXPECT_DOUBLE_EQ(maxValue({}), 0.0);
  EXPECT_DOUBLE_EQ(relativeSpread({}), 0.0);
  EXPECT_DOUBLE_EQ(relativeSpread({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(minValue({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(maxValue({3.0, 1.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(relativeSpread({1.0, 1.5}), 0.5);
  EXPECT_TRUE(std::isinf(relativeSpread({0.0, 1.0})))
      << "a non-positive minimum cannot anchor a relative spread";
}

TEST(RobustTimingTest, ZeroMinSecondsStillYieldsPositiveTime) {
  // The historical bug: MinSeconds = 0 with a sub-tick callable could
  // return 0 seconds per call (or divide 0/0), which downstream GFLOPS
  // math treated as an unmeasurable kernel.
  double PerCall = measureSecondsPerCall([] {}, 0.0, 0);
  EXPECT_GT(PerCall, 0.0);
  EXPECT_TRUE(std::isfinite(PerCall));
}

TEST(RobustTimingTest, RepCapBoundsTheLoop) {
  std::uint64_t Calls = 0;
  // MinSeconds of an hour would spin forever without the rep cap.
  (void)measureSecondsPerCall([&] { ++Calls; }, 3600.0, 1, 64);
  EXPECT_LE(Calls, 65u) << "64 measured reps + 1 warm-up call";
  EXPECT_GE(Calls, 2u);
}

TEST(RobustTimingTest, RobustMeasureReturnsMinOfSamples) {
  RobustMeasureOptions Opts;
  Opts.MinSeconds = 1e-5;
  Opts.Samples = 3;
  RobustMeasureResult R = robustMeasureSecondsPerCall([] {}, Opts);
  EXPECT_GT(R.SecondsPerCall, 0.0);
  EXPECT_GE(R.SamplesTaken, 3);
  EXPECT_FALSE(R.BudgetHit);
}

TEST(RobustTimingTest, BudgetStopsSamplingAfterFirstSample) {
  RobustMeasureOptions Opts;
  Opts.MinSeconds = 5e-3;
  Opts.Samples = 5;
  Opts.BudgetSeconds = 1e-4; // Spent inside the (unconditional) first sample.
  RobustMeasureResult R = robustMeasureSecondsPerCall([] {}, Opts);
  EXPECT_EQ(R.SamplesTaken, 1)
      << "the first sample is unconditional; the budget gates the rest";
  EXPECT_TRUE(R.BudgetHit);
  EXPECT_GT(R.SecondsPerCall, 0.0);
  EXPECT_EQ(R.Retries, 0);
}

// --- Budget watchdog end-to-end ---------------------------------------------

TEST(BudgetWatchdogTest, TuneBudgetBoundsWallClock) {
  // A strict model measures every plausible candidate on this band (CSR,
  // COO, DIA, ELL): unbudgeted that is >= 4 candidates x 3 samples x
  // MeasureMinSeconds ~ 1s. The tune budget cuts candidates off between
  // samples, so the whole tune lands within ~2x the budget (+ CI slack).
  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(2000, 3);
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 0.08;
  Opts.TuneBudgetSeconds = 0.2;

  WallTimer Clock;
  auto Result = Tuner.tryTune(A, Opts);
  double Elapsed = Clock.seconds();

  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_LT(Elapsed, 2.0 * Opts.TuneBudgetSeconds + 0.5)
      << "a budgeted tune must not run to the unbudgeted ~1s";
  EXPECT_TRUE(Result->report().BudgetExhausted);
  expectSpmvMatches(*Result, A);

  SmatResilienceCounters C = Tuner.resilienceCounters();
  EXPECT_EQ(C.Tunes, 1u);
  EXPECT_EQ(C.BudgetExhaustedTunes, 1u);
}

TEST(BudgetWatchdogTest, MeasureBudgetCapsEachCandidate) {
  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(1200, 2);
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 0.05;
  Opts.MeasureBudgetSeconds = 0.06; // Roughly one sample per candidate.

  WallTimer Clock;
  auto Result = Tuner.tryTune(A, Opts);
  double Elapsed = Clock.seconds();

  ASSERT_TRUE(Result.ok()) << Result.status().message();
  // Four candidates at ~one budgeted sample each, plus baseline and bind.
  EXPECT_LT(Elapsed, 1.5) << "per-candidate budgets must cap the sweep";
  EXPECT_TRUE(Result->report().BudgetExhausted);
  EXPECT_FALSE(Result->report().MeasuredGflops.empty())
      << "every candidate keeps its first sample even under budget";
  expectSpmvMatches(*Result, A);
}

TEST(BudgetWatchdogTest, UnlimitedBudgetsReportNothing) {
  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(300, 2);
  auto Result = Tuner.tryTune(A, fastTune());
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_FALSE(Result->report().BudgetExhausted);
  EXPECT_EQ(Result->report().Degradation, DegradationLevel::None);
  EXPECT_EQ(Result->report().DroppedCandidates, 0);
}

TEST(BudgetWatchdogTest, NonFiniteBudgetsAreRejectedAtTheBoundary) {
  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(50, 1);
  TuneOptions Opts = fastTune();
  Opts.TuneBudgetSeconds = -1.0;
  EXPECT_FALSE(Tuner.tryTune(A, Opts).ok());
  Opts.TuneBudgetSeconds = std::nan("");
  EXPECT_FALSE(Tuner.tryTune(A, Opts).ok());
  Opts.TuneBudgetSeconds = 0.0;
  Opts.MeasureBudgetSeconds = -0.5;
  EXPECT_FALSE(Tuner.tryTune(A, Opts).ok());
}

// --- Degradation ladder -----------------------------------------------------

TEST(DegradationLadderTest, LevelNamesAreStable) {
  EXPECT_STREQ(degradationLevelName(DegradationLevel::None), "none");
  EXPECT_STREQ(degradationLevelName(DegradationLevel::CandidateDropped),
               "candidate_dropped");
  EXPECT_STREQ(degradationLevelName(DegradationLevel::BasicKernel),
               "basic_kernel");
  EXPECT_STREQ(degradationLevelName(DegradationLevel::ReferenceCsr),
               "reference_csr");
}

TEST(DegradationLadderTest, CandidateDroppedRung) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  // The measured CSR candidate's kernel throws every time: the candidate is
  // dropped, the survivors decide, and the tune still succeeds.
  fault::FaultConfig Cfg;
  Cfg.AlwaysSites = {"measure.kernel.CSR"};
  FaultScope Scope(Cfg);

  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(600, 2);
  auto Result = Tuner.tryTune(A, fastTune());
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_EQ(Result->report().Degradation, DegradationLevel::CandidateDropped);
  EXPECT_GT(Result->report().DroppedCandidates, 0);
  EXPECT_FALSE(Result->report().MeasuredGflops.empty())
      << "the other candidates must survive the CSR drop";
  expectSpmvMatches(*Result, A);

  SmatResilienceCounters C = Tuner.resilienceCounters();
  EXPECT_EQ(C.Tunes, 1u);
  EXPECT_GT(C.CandidatesDropped, 0u);
}

TEST(DegradationLadderTest, BasicKernelRung) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  fault::FaultConfig Cfg;
  Cfg.AlwaysSites = {"bind.operator"};
  FaultScope Scope(Cfg);

  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(400, 2);
  auto Result = Tuner.tryTune(A, fastTune());
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_EQ(Result->report().Degradation, DegradationLevel::BasicKernel);
  EXPECT_EQ(Result->format(), FormatKind::CSR)
      << "the basic rung binds CSR regardless of the chosen plan";
  expectSpmvMatches(*Result, A);

  SmatResilienceCounters C = Tuner.resilienceCounters();
  EXPECT_EQ(C.BasicKernelFallbacks, 1u);
  EXPECT_EQ(C.ReferenceFallbacks, 0u);
}

TEST(DegradationLadderTest, ReferenceCsrRung) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  // Both upper rungs fail ("bind.basic_csr" is reachable only after
  // "bind.operator" already failed, so a discovery sweep never observes it;
  // arm it explicitly): only the reference plan is left, and it must hold.
  fault::FaultConfig Cfg;
  Cfg.AlwaysSites = {"bind.operator", "bind.basic_csr"};
  FaultScope Scope(Cfg);

  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(400, 2);
  auto Result = Tuner.tryTune(A, fastTune());
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_EQ(Result->report().Degradation, DegradationLevel::ReferenceCsr);
  EXPECT_EQ(Result->format(), FormatKind::CSR);
  EXPECT_EQ(Result->kernelName(), "csr_reference");
  expectSpmvMatches(*Result, A);

  EXPECT_EQ(Tuner.resilienceCounters().ReferenceFallbacks, 1u);
}

TEST(DegradationLadderTest, ReferenceRungOwnsMovedStorage) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  // The rvalue tune path must stay self-contained even on the last rung:
  // the failed upper rungs may not consume the move source.
  fault::FaultConfig Cfg;
  Cfg.AlwaysSites = {"bind.operator", "bind.basic_csr"};
  FaultScope Scope(Cfg);

  Smat<double> Tuner(strictModel());
  CsrMatrix<double> Reference = banded(300, 2);
  auto Result = Tuner.tryTune(CsrMatrix<double>(Reference), fastTune());
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_EQ(Result->report().Degradation, DegradationLevel::ReferenceCsr);
  EXPECT_TRUE(Result->ownsStorage());
  expectSpmvMatches(*Result, Reference);
}

TEST(DegradationLadderTest, NoisyTimerInjectionIsReportedNotFatal) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  // Every timing sample is scaled by a seeded factor in [1, 11]: the spread
  // check must flag the samples as noisy (after exhausting its backoff
  // retries) while the tune itself still completes with a usable plan.
  fault::FaultConfig Cfg;
  Cfg.Seed = 3;
  Cfg.AlwaysSites = {"measure.timer"};
  Cfg.TimerNoiseFactor = 10.0;
  FaultScope Scope(Cfg);

  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(500, 2);
  TuneOptions Opts = fastTune();
  // Race the full format menu: each measured candidate is an independent
  // 3-sample spread check, and the noisy verdict is the OR over all of them.
  // The cost model would prune this banded matrix to {DIA, CSR}, leaving too
  // few sample sets for the seeded noise to flag reliably.
  Opts.CostModelPrune = false;
  auto Result = Tuner.tryTune(A, Opts);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_TRUE(Result->report().NoisyTimings);
  expectSpmvMatches(*Result, A);
  EXPECT_EQ(Tuner.resilienceCounters().NoisyTunes, 1u);
}

TEST(DegradationLadderTest, InjectedTimerStallTripsTheBudget) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  // Each timing sample stalls 20 ms of real wall clock; a 30 ms measurement
  // budget therefore expires after the second sample of every candidate.
  fault::FaultConfig Cfg;
  Cfg.AlwaysSites = {"measure.timer"};
  Cfg.TimerNoiseFactor = 0.0;
  Cfg.StallSeconds = 0.02;
  FaultScope Scope(Cfg);

  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(500, 2);
  TuneOptions Opts = fastTune();
  Opts.MeasureBudgetSeconds = 0.03;
  auto Result = Tuner.tryTune(A, Opts);
  ASSERT_TRUE(Result.ok()) << Result.status().message();
  EXPECT_TRUE(Result->report().BudgetExhausted);
  expectSpmvMatches(*Result, A);
}

// --- Every-site sweep -------------------------------------------------------

TEST(FaultSweepTest, EveryObservedSiteDegradesButNeverFails) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  Smat<double> Tuner(strictModel());
  // A band keeps DIA and ELL plausible so their conversion and measurement
  // sites are all on the path.
  CsrMatrix<double> A = banded(500, 2);
  TuneOptions Opts = fastTune();

  // Discovery pass: record every site this tune visits.
  std::vector<std::string> Sites;
  {
    fault::FaultConfig Discover;
    Discover.RecordSites = true;
    FaultScope Scope(Discover);
    auto Probe = Tuner.tryTune(A, Opts);
    ASSERT_TRUE(Probe.ok()) << Probe.status().message();
    Sites = fault::observedSites();
  }
  ASSERT_GE(Sites.size(), 6u) << "the strict-model tune visits at least "
                                 "feature/predict/measure/bind sites";
  // "bind.basic_csr" only executes once "bind.operator" has failed, so the
  // discovery pass cannot see it; cover the rung anyway.
  if (std::find(Sites.begin(), Sites.end(), "bind.basic_csr") == Sites.end())
    Sites.push_back("bind.basic_csr");

  // Kill pass: fail each site on every invocation. The tune must still
  // produce a working operator with the rung visible in the report.
  for (const std::string &Site : Sites) {
    SCOPED_TRACE("always-failing site: " + Site);
    fault::FaultConfig Kill;
    Kill.AlwaysSites = {Site};
    FaultScope Scope(Kill);

    auto Result = Tuner.tryTune(A, Opts);
    ASSERT_TRUE(Result.ok())
        << "site '" << Site << "': " << Result.status().message();
    EXPECT_STRNE(degradationLevelName(Result->report().Degradation),
                 "unknown");
    expectSpmvMatches(*Result, A);
  }
}

TEST(FaultSweepTest, RandomFaultCampaignStaysCorrect) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  // Seeded probabilistic faults across several structures: whatever subset
  // of sites fires, tryTune succeeds and the bound operator is correct.
  Smat<double> Tuner(strictModel());
  std::vector<CsrMatrix<double>> Inputs;
  Inputs.push_back(banded(300, 2));
  Inputs.push_back(powerLawGraph(250, 2.0, 1, 40, 11));
  Inputs.push_back(randomCsr(120, 90, 0.1, 5));

  for (std::uint64_t Seed = 1; Seed <= 4; ++Seed) {
    fault::FaultConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.Probability = 0.1;
    FaultScope Scope(Cfg);
    for (std::size_t I = 0; I != Inputs.size(); ++I) {
      SCOPED_TRACE("seed " + std::to_string(Seed) + ", input " +
                   std::to_string(I));
      auto Result = Tuner.tryTune(Inputs[I], fastTune());
      ASSERT_TRUE(Result.ok()) << Result.status().message();
      expectSpmvMatches(*Result, Inputs[I], Seed + I);
    }
  }
  SmatResilienceCounters C = Tuner.resilienceCounters();
  EXPECT_EQ(C.Tunes, 12u);
}

TEST(FaultSweepTest, InjectionSchedulesReplayDeterministically) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  Smat<double> Tuner(strictModel());
  CsrMatrix<double> A = banded(300, 2);

  auto RunCampaign = [&](std::uint64_t Seed) {
    fault::FaultConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.Probability = 0.15;
    FaultScope Scope(Cfg);
    auto Result = Tuner.tryTune(A, fastTune());
    EXPECT_TRUE(Result.ok());
    return fault::injectedCount();
  };
  EXPECT_EQ(RunCampaign(42), RunCampaign(42))
      << "same seed, same schedule, same injections";
}

// --- AMG under faults -------------------------------------------------------

TEST(AmgResilienceTest, HierarchySetupAndSolveSurviveFaults) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  fault::FaultConfig Cfg;
  Cfg.Seed = 9;
  Cfg.Probability = 0.05;
  FaultScope Scope(Cfg);

  Smat<double> Tuner(strictModel());
  AmgOptions Opts;
  Opts.Backend = SpmvBackendKind::Smat;
  Opts.Tuner = &Tuner;
  Opts.Tune.MeasureMinSeconds = 1e-4;

  CsrMatrix<double> A = laplace2d5pt(24, 24);
  AmgSolver Solver;
  ASSERT_TRUE(Solver.trySetup(A, Opts).ok());
  for (const LevelFormatInfo &Info : Solver.formatDecisions())
    EXPECT_STRNE(degradationLevelName(Info.Degradation), "unknown");

  // Faulty *tuning* may degrade the bound kernels but never their results:
  // the solve still converges like the fault-free baseline.
  std::vector<double> B(static_cast<std::size_t>(A.NumRows), 1.0), X;
  SolveStats Stats = Solver.solve(B, X);
  EXPECT_TRUE(Stats.Converged);
}

TEST(AmgResilienceTest, TuneOptionsForwardToEveryOperator) {
  // No faults required: the AMG path forwards the caller's budgets and
  // respects the Tune.Cache > Cache > owned precedence.
  Smat<double> Tuner(strictModel());
  PlanCache Cache;
  AmgOptions Opts;
  Opts.Backend = SpmvBackendKind::Smat;
  Opts.Tuner = &Tuner;
  Opts.Tune.MeasureMinSeconds = 1e-4;
  Opts.Tune.Cache = &Cache;

  CsrMatrix<double> A = laplace2d5pt(20, 20);
  AmgSolver Solver;
  ASSERT_TRUE(Solver.trySetup(A, Opts).ok());
  EXPECT_EQ(Solver.planCache(), &Cache);
  EXPECT_GT(Cache.stats().Inserts, 0u)
      << "the forwarded cache must see the per-operator tunes";
  for (const LevelFormatInfo &Info : Solver.formatDecisions())
    EXPECT_EQ(Info.Degradation, DegradationLevel::None);
}
