//===- tests/matrix_test.cpp - Format and conversion unit tests -----------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "matrix/FormatConvert.h"
#include "matrix/Generators.h"
#include "matrix/MatrixMarket.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace smat;
using namespace smat::test;

namespace {

/// The paper's Figure 2 example matrix:
///   [1 5 0 0]
///   [0 2 6 0]
///   [8 0 3 7]
///   [0 9 0 4]
CsrMatrix<double> paperExample() {
  return csrFromTriplets<double>(
      4, 4, {0, 0, 1, 1, 2, 2, 2, 3, 3}, {0, 1, 1, 2, 0, 2, 3, 1, 3},
      {1, 5, 2, 6, 8, 3, 7, 9, 4});
}

} // namespace

// --- CSR basics --------------------------------------------------------------

TEST(CsrTest, PaperExampleLayout) {
  CsrMatrix<double> A = paperExample();
  ASSERT_TRUE(A.isValid());
  EXPECT_EQ(A.nnz(), 9);
  // Paper Figure 2(a): ptr [0 2 4 7 9], indices [0 1 1 2 0 2 3 1 3].
  std::vector<index_t> ExpectedPtr = {0, 2, 4, 7, 9};
  std::vector<index_t> ExpectedIdx = {0, 1, 1, 2, 0, 2, 3, 1, 3};
  EXPECT_TRUE(std::equal(ExpectedPtr.begin(), ExpectedPtr.end(),
                         A.RowPtr.begin()));
  EXPECT_TRUE(std::equal(ExpectedIdx.begin(), ExpectedIdx.end(),
                         A.ColIdx.begin()));
  EXPECT_DOUBLE_EQ(A.at(2, 3), 7.0);
  EXPECT_DOUBLE_EQ(A.at(0, 3), 0.0);
  EXPECT_EQ(A.rowDegree(2), 3);
  EXPECT_TRUE(A.hasSortedRows());
}

TEST(CsrTest, EmptyMatrixIsValid) {
  CsrMatrix<double> A(5, 3);
  EXPECT_TRUE(A.isValid());
  EXPECT_EQ(A.nnz(), 0);
  EXPECT_EQ(A.rowDegree(4), 0);
}

TEST(CsrTest, InvalidWhenColumnOutOfRange) {
  CsrMatrix<double> A = paperExample();
  A.ColIdx[0] = 4;
  EXPECT_FALSE(A.isValid());
  A.ColIdx[0] = -1;
  EXPECT_FALSE(A.isValid());
}

TEST(CsrTest, InvalidWhenRowPtrNotMonotone) {
  CsrMatrix<double> A = paperExample();
  A.RowPtr[2] = 5;
  A.RowPtr[3] = 4;
  EXPECT_FALSE(A.isValid());
}

TEST(CsrTest, TripletsSumDuplicates) {
  auto A = csrFromTriplets<double>(2, 2, {0, 0, 1}, {1, 1, 0}, {2.0, 3.0, 1.0});
  EXPECT_EQ(A.nnz(), 2);
  EXPECT_DOUBLE_EQ(A.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), 1.0);
}

TEST(CsrTest, TripletsSortUnorderedInput) {
  auto A = csrFromTriplets<double>(3, 3, {2, 0, 1}, {0, 2, 1}, {3, 1, 2});
  EXPECT_TRUE(A.isValid());
  EXPECT_TRUE(A.hasSortedRows());
  EXPECT_DOUBLE_EQ(A.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(A.at(2, 0), 3.0);
}

// --- COO ---------------------------------------------------------------------

TEST(CooTest, CsrToCooMatchesPaperFigure) {
  CooMatrix<double> B = csrToCoo(paperExample());
  ASSERT_TRUE(B.isValid());
  EXPECT_TRUE(B.isSortedRowMajor());
  // Paper Figure 2(b): rows [0 0 1 1 2 2 2 3 3].
  std::vector<index_t> ExpectedRows = {0, 0, 1, 1, 2, 2, 2, 3, 3};
  ASSERT_EQ(B.Rows.size(), ExpectedRows.size());
  EXPECT_TRUE(std::equal(ExpectedRows.begin(), ExpectedRows.end(),
                         B.Rows.begin()));
}

TEST(CooTest, RoundTripThroughCsr) {
  CsrMatrix<double> A = randomCsr(40, 23, 0.1, 5);
  CsrMatrix<double> Back = cooToCsr(csrToCoo(A));
  EXPECT_EQ(toDense(A), toDense(Back));
}

// --- DIA ---------------------------------------------------------------------

TEST(DiaTest, PaperExampleDiagonals) {
  DiaMatrix<double> B;
  ASSERT_TRUE(csrToDia(paperExample(), B));
  ASSERT_TRUE(B.isValid());
  // Paper Figure 2(c): offsets [-2 0 1].
  std::vector<index_t> ExpectedOffsets = {-2, 0, 1};
  ASSERT_EQ(B.Offsets.size(), ExpectedOffsets.size());
  EXPECT_TRUE(std::equal(ExpectedOffsets.begin(), ExpectedOffsets.end(),
                         B.Offsets.begin()));
  EXPECT_EQ(B.nnz(), 9);
  EXPECT_EQ(B.storedElements(), 12);
}

TEST(DiaTest, RoundTripThroughCsr) {
  CsrMatrix<double> A = randomCsr(30, 30, 0.15, 6);
  DiaMatrix<double> Dia;
  ASSERT_TRUE(csrToDia(A, Dia, /*MaxFillRatio=*/0.0, /*MaxDiags=*/0));
  CsrMatrix<double> Back = diaToCsr(Dia);
  EXPECT_EQ(toDense(A), toDense(Back));
}

TEST(DiaTest, FillGuardRejectsScatteredMatrix) {
  // An anti-diagonal-ish scatter occupies ~N diagonals with one element
  // each: stored = N*N, nnz = N -> fill ratio N.
  std::vector<index_t> R, C;
  std::vector<double> V;
  for (index_t I = 0; I < 32; ++I) {
    R.push_back(I);
    C.push_back((I * 7 + 3) % 32);
    V.push_back(1.0);
  }
  auto A = csrFromTriplets<double>(32, 32, std::move(R), std::move(C),
                                   std::move(V));
  DiaMatrix<double> Dia;
  EXPECT_FALSE(csrToDia(A, Dia, /*MaxFillRatio=*/10.0));
  EXPECT_TRUE(csrToDia(A, Dia, /*MaxFillRatio=*/0.0, /*MaxDiags=*/0));
}

TEST(DiaTest, MaxDiagsGuard) {
  CsrMatrix<double> A = randomCsr(20, 20, 0.5, 7);
  DiaMatrix<double> Dia;
  EXPECT_FALSE(csrToDia(A, Dia, 0.0, /*MaxDiags=*/3));
}

TEST(DiaTest, RectangularMatrix) {
  CsrMatrix<double> A = randomCsr(12, 30, 0.2, 8);
  DiaMatrix<double> Dia;
  ASSERT_TRUE(csrToDia(A, Dia, 0.0, 0));
  EXPECT_EQ(toDense(diaToCsr(Dia)), toDense(A));
}

// --- ELL ---------------------------------------------------------------------

TEST(EllTest, WidthIsMaxRowDegree) {
  EllMatrix<double> B;
  ASSERT_TRUE(csrToEll(paperExample(), B));
  ASSERT_TRUE(B.isValid());
  EXPECT_EQ(B.Width, 3); // Row 2 has 3 entries.
  EXPECT_EQ(B.nnz(), 9);
  EXPECT_EQ(B.storedElements(), 12);
}

TEST(EllTest, ColumnMajorLayout) {
  EllMatrix<double> B;
  ASSERT_TRUE(csrToEll(paperExample(), B));
  // First packed column = first entry of each row: 1, 2, 8, 9.
  EXPECT_DOUBLE_EQ(B.Data[0], 1.0);
  EXPECT_DOUBLE_EQ(B.Data[1], 2.0);
  EXPECT_DOUBLE_EQ(B.Data[2], 8.0);
  EXPECT_DOUBLE_EQ(B.Data[3], 9.0);
}

TEST(EllTest, RoundTripThroughCsr) {
  CsrMatrix<double> A = randomCsr(25, 18, 0.2, 9);
  EllMatrix<double> Ell;
  ASSERT_TRUE(csrToEll(A, Ell, /*MaxFillRatio=*/0.0));
  EXPECT_EQ(toDense(ellToCsr(Ell)), toDense(A));
}

TEST(EllTest, FillGuardRejectsSpikedRow) {
  // One dense row forces Width = N while nnz ~ 2N.
  std::vector<index_t> R, C;
  std::vector<double> V;
  for (index_t I = 0; I < 64; ++I) {
    R.push_back(0);
    C.push_back(I);
    V.push_back(1.0);
  }
  for (index_t I = 1; I < 64; ++I) {
    R.push_back(I);
    C.push_back(I);
    V.push_back(1.0);
  }
  auto A = csrFromTriplets<double>(64, 64, std::move(R), std::move(C),
                                   std::move(V));
  EllMatrix<double> Ell;
  EXPECT_FALSE(csrToEll(A, Ell, /*MaxFillRatio=*/8.0));
  EXPECT_TRUE(csrToEll(A, Ell, /*MaxFillRatio=*/0.0));
}

// --- BSR (extension format) ---------------------------------------------------

TEST(BsrTest, RoundTripThroughCsrExactDims) {
  CsrMatrix<double> A = randomCsr(32, 48, 0.15, 13);
  BsrMatrix<double> B;
  ASSERT_TRUE(csrToBsr(A, B, 4, /*MaxFillRatio=*/0.0));
  ASSERT_TRUE(B.isValid());
  EXPECT_EQ(B.numBlockRows(), 8);
  EXPECT_EQ(B.numBlockCols(), 12);
  EXPECT_EQ(toDense(bsrToCsr(B)), toDense(A));
}

TEST(BsrTest, RoundTripWithRaggedDims) {
  // 33x47 with block size 4: both edges have partial blocks.
  CsrMatrix<double> A = randomCsr(33, 47, 0.2, 14);
  BsrMatrix<double> B;
  ASSERT_TRUE(csrToBsr(A, B, 4, 0.0));
  ASSERT_TRUE(B.isValid());
  EXPECT_EQ(B.numBlockRows(), 9);
  EXPECT_EQ(B.numBlockCols(), 12);
  EXPECT_EQ(toDense(bsrToCsr(B)), toDense(A));
}

TEST(BsrTest, DenseBlockMatrixHasPerfectFill) {
  CsrMatrix<double> A = blockFem(10, 4, 0.0, 15);
  BsrMatrix<double> B;
  ASSERT_TRUE(csrToBsr(A, B, 4, 1.01));
  EXPECT_EQ(B.storedElements(), A.nnz()) << "aligned 4x4 blocks: no padding";
  EXPECT_EQ(B.numBlocks(), 10);
}

TEST(BsrTest, FillGuardRejectsScatter) {
  // A diagonal matrix blocked 4x4 wastes 16x storage.
  CsrMatrix<double> A = multiDiagonal(64, {0});
  BsrMatrix<double> B;
  EXPECT_FALSE(csrToBsr(A, B, 4, 1.5));
  EXPECT_TRUE(csrToBsr(A, B, 4, 0.0));
  EXPECT_EQ(toDense(bsrToCsr(B)), toDense(A));
}

TEST(BsrTest, CountOccupiedBlocks) {
  // Entries at (0,0) and (3,3) share the 4x4 block; (4,0) opens another.
  auto A = csrFromTriplets<double>(8, 8, {0, 3, 4}, {0, 3, 0}, {1, 2, 3});
  EXPECT_EQ(countOccupiedBlocks(A, 4), 2);
  EXPECT_EQ(countOccupiedBlocks(A, 2), 3);
  EXPECT_EQ(countOccupiedBlocks(A, 1), 3);
}

TEST(BsrTest, ChooseBlockSizePrefersLowestFill) {
  // Aligned dense 4x4 blocks: b=4 has zero fill and must win.
  CsrMatrix<double> A = blockFem(20, 4, 0.0, 16);
  EXPECT_EQ(chooseBsrBlockSize(A), 4);
  // Pure diagonal: every candidate blows the 1.5x fill budget.
  EXPECT_EQ(chooseBsrBlockSize(multiDiagonal(64, {0})), 0);
}

TEST(BsrTest, ChooseBlockSizeEight) {
  CsrMatrix<double> A = blockFem(12, 8, 0.0, 17);
  EXPECT_EQ(chooseBsrBlockSize(A), 8);
}

// --- Transpose / value conversion --------------------------------------------

TEST(TransposeTest, TransposeTwiceIsIdentity) {
  CsrMatrix<double> A = randomCsr(17, 29, 0.15, 10);
  CsrMatrix<double> Att = transposeCsr(transposeCsr(A));
  EXPECT_EQ(toDense(A), toDense(Att));
}

TEST(TransposeTest, TransposeSwapsIndices) {
  CsrMatrix<double> A = paperExample();
  CsrMatrix<double> At = transposeCsr(A);
  EXPECT_EQ(At.NumRows, A.NumCols);
  EXPECT_EQ(At.NumCols, A.NumRows);
  for (index_t Row = 0; Row < A.NumRows; ++Row)
    for (index_t Col = 0; Col < A.NumCols; ++Col)
      EXPECT_DOUBLE_EQ(A.at(Row, Col), At.at(Col, Row));
}

TEST(ConvertValueTest, DoubleToFloatAndBack) {
  CsrMatrix<double> A = paperExample();
  CsrMatrix<float> F = convertValueType<float>(A);
  EXPECT_EQ(F.nnz(), A.nnz());
  EXPECT_FLOAT_EQ(F.at(2, 3), 7.0f);
  CsrMatrix<double> D = convertValueType<double>(F);
  EXPECT_EQ(toDense(D), toDense(A));
}

// --- Format names -------------------------------------------------------------

TEST(FormatTest, NamesRoundTrip) {
  for (int K = 0; K < NumFormats; ++K) {
    FormatKind Kind = static_cast<FormatKind>(K);
    FormatKind Parsed;
    ASSERT_TRUE(parseFormatName(formatName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
  FormatKind Unused;
  EXPECT_FALSE(parseFormatName("BCSR", Unused));
}

// --- MatrixMarket -------------------------------------------------------------

TEST(MatrixMarketTest, WriteReadRoundTrip) {
  CsrMatrix<double> A = randomCsr(15, 11, 0.2, 11);
  auto Result = readMatrixMarketString(writeMatrixMarketString(A));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(toDense(Result.Matrix), toDense(A));
}

TEST(MatrixMarketTest, SymmetricExpansion) {
  std::string Text = "%%MatrixMarket matrix coordinate real symmetric\n"
                     "% comment line\n"
                     "3 3 3\n"
                     "1 1 2.0\n"
                     "2 1 -1.0\n"
                     "3 2 -1.0\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.Matrix.nnz(), 5);
  EXPECT_DOUBLE_EQ(Result.Matrix.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(Result.Matrix.at(1, 0), -1.0);
}

TEST(MatrixMarketTest, SkewSymmetricNegatesMirror) {
  std::string Text = "%%MatrixMarket matrix coordinate real skew-symmetric\n"
                     "2 2 1\n"
                     "2 1 3.0\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_DOUBLE_EQ(Result.Matrix.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(Result.Matrix.at(0, 1), -3.0);
}

TEST(MatrixMarketTest, PatternFieldDefaultsToOne) {
  std::string Text = "%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 2\n"
                     "1 1\n"
                     "2 2\n";
  auto Result = readMatrixMarketString(Text);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_DOUBLE_EQ(Result.Matrix.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Result.Matrix.at(1, 1), 1.0);
}

TEST(MatrixMarketTest, RejectsComplexField) {
  std::string Text = "%%MatrixMarket matrix coordinate complex general\n"
                     "1 1 1\n"
                     "1 1 1.0 0.0\n";
  auto Result = readMatrixMarketString(Text);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("complex"), std::string::npos);
}

TEST(MatrixMarketTest, RejectsTruncatedFile) {
  std::string Text = "%%MatrixMarket matrix coordinate real general\n"
                     "3 3 5\n"
                     "1 1 1.0\n";
  EXPECT_FALSE(readMatrixMarketString(Text).Ok);
}

TEST(MatrixMarketTest, RejectsOutOfRangeEntry) {
  std::string Text = "%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n"
                     "3 1 1.0\n";
  EXPECT_FALSE(readMatrixMarketString(Text).Ok);
}

TEST(MatrixMarketTest, RejectsGarbage) {
  EXPECT_FALSE(readMatrixMarketString("").Ok);
  EXPECT_FALSE(readMatrixMarketString("hello world\n").Ok);
  EXPECT_FALSE(
      readMatrixMarketString("%%MatrixMarket matrix array real general\n")
          .Ok);
}

TEST(MatrixMarketTest, FileRoundTrip) {
  CsrMatrix<double> A = randomCsr(8, 8, 0.3, 12);
  std::string Path = testing::TempDir() + "/smat_mm_test.mtx";
  ASSERT_TRUE(writeMatrixMarketFile(Path, A));
  auto Result = readMatrixMarketFile(Path);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(toDense(Result.Matrix), toDense(A));
}
