//===- tests/amg_test.cpp - AMG substrate tests ---------------------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "amg/AmgSolver.h"
#include "amg/Coarsen.h"
#include "amg/Hierarchy.h"
#include "amg/Interp.h"
#include "amg/Relax.h"
#include "amg/SpGemm.h"
#include "amg/Strength.h"
#include "matrix/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace smat;
using namespace smat::test;

namespace {

/// Dense reference product for SpGEMM checks.
std::vector<double> denseMatMul(const CsrMatrix<double> &A,
                                const CsrMatrix<double> &B) {
  auto Da = toDense(A);
  auto Db = toDense(B);
  std::vector<double> C(static_cast<std::size_t>(A.NumRows) *
                            static_cast<std::size_t>(B.NumCols),
                        0.0);
  for (index_t I = 0; I < A.NumRows; ++I)
    for (index_t K = 0; K < A.NumCols; ++K) {
      double Av = Da[static_cast<std::size_t>(I) * A.NumCols + K];
      if (Av == 0.0)
        continue;
      for (index_t J = 0; J < B.NumCols; ++J)
        C[static_cast<std::size_t>(I) * B.NumCols + J] +=
            Av * Db[static_cast<std::size_t>(K) * B.NumCols + J];
    }
  return C;
}

} // namespace

// --- SpGEMM -----------------------------------------------------------------

TEST(SpGemmTest, MatchesDenseProduct) {
  CsrMatrix<double> A = randomCsr(20, 30, 0.2, 1);
  CsrMatrix<double> B = randomCsr(30, 15, 0.2, 2);
  CsrMatrix<double> C = spgemm(A, B);
  ASSERT_TRUE(C.isValid());
  EXPECT_TRUE(C.hasSortedRows());
  auto Expected = denseMatMul(A, B);
  auto Actual = toDense(C);
  ASSERT_EQ(Expected.size(), Actual.size());
  for (std::size_t I = 0; I != Expected.size(); ++I)
    EXPECT_NEAR(Expected[I], Actual[I], 1e-12);
}

TEST(SpGemmTest, IdentityIsNeutral) {
  CsrMatrix<double> A = randomCsr(25, 25, 0.15, 3);
  CsrMatrix<double> I = multiDiagonal(25, {0});
  // multiDiagonal writes 2*len on the diagonal; normalize to 1.
  for (double &V : I.Values)
    V = 1.0;
  EXPECT_EQ(toDense(spgemm(A, I)), toDense(A));
  EXPECT_EQ(toDense(spgemm(I, A)), toDense(A));
}

TEST(SpGemmTest, GalerkinTripleProduct) {
  CsrMatrix<double> A = laplace2d5pt(6, 6);
  CsrMatrix<double> S = strengthGraph(A);
  auto Split = coarsen(S, CoarsenKind::RugeL);
  CsrMatrix<double> P = directInterpolation(A, S, Split);
  CsrMatrix<double> R = transposeCsr(P);
  CsrMatrix<double> Coarse = galerkinProduct(R, A, P);
  EXPECT_EQ(Coarse.NumRows, P.NumCols);
  EXPECT_EQ(Coarse.NumCols, P.NumCols);
  // Galerkin operator of a symmetric A stays symmetric.
  EXPECT_EQ(toDense(Coarse), toDense(transposeCsr(Coarse)));
}

TEST(SpGemmTest, DropSmallEntriesKeepsDiagonal) {
  CsrMatrix<double> A =
      csrFromTriplets<double>(2, 2, {0, 0, 1}, {0, 1, 1}, {1e-12, 5.0, 1e-12});
  CsrMatrix<double> B = dropSmallEntries(A, 1e-8);
  EXPECT_DOUBLE_EQ(B.at(0, 0), 1e-12) << "diagonal is never dropped";
  EXPECT_DOUBLE_EQ(B.at(0, 1), 5.0);
  EXPECT_EQ(B.nnz(), 3) << "only the (1,1) diagonal and kept entries remain";
}

// --- Strength ----------------------------------------------------------------

TEST(StrengthTest, LaplacianAllNeighborsStrong) {
  CsrMatrix<double> A = laplace2d5pt(5, 5);
  CsrMatrix<double> S = strengthGraph(A, 0.25);
  // All off-diagonal entries are -1 = the row max: all strong.
  EXPECT_EQ(S.nnz(), A.nnz() - A.NumRows);
}

TEST(StrengthTest, WeakEntriesFiltered) {
  auto A = csrFromTriplets<double>(2, 2, {0, 0, 1, 1}, {0, 1, 0, 1},
                                   {4.0, -0.01, -2.0, 4.0});
  CsrMatrix<double> S = strengthGraph(A, 0.25);
  EXPECT_EQ(S.rowDegree(0), 1) << "the only off-diag entry is the row max";
  EXPECT_EQ(S.rowDegree(1), 1);
}

TEST(StrengthTest, DiagonalNeverStrong) {
  CsrMatrix<double> A = laplace2d5pt(4, 4);
  CsrMatrix<double> S = strengthGraph(A);
  for (index_t Row = 0; Row < S.NumRows; ++Row)
    for (index_t I = S.RowPtr[Row]; I < S.RowPtr[Row + 1]; ++I)
      EXPECT_NE(S.ColIdx[I], Row);
}

// --- Coarsening ----------------------------------------------------------------

class CoarsenParam : public ::testing::TestWithParam<CoarsenKind> {};

TEST_P(CoarsenParam, SplitsLaplacianSensibly) {
  CsrMatrix<double> A = laplace2d5pt(20, 20);
  CsrMatrix<double> S = strengthGraph(A);
  auto Split = coarsen(S, GetParam());
  index_t NumCoarse = countCoarse(Split);
  // A reasonable 2D coarsening keeps between ~1/5 and ~2/3 of the points.
  EXPECT_GT(NumCoarse, A.NumRows / 8);
  EXPECT_LT(NumCoarse, 3 * A.NumRows / 4);
}

TEST_P(CoarsenParam, EveryConnectedFPointHasCoarseDonor) {
  CsrMatrix<double> A = laplace3d7pt(8, 8, 8);
  CsrMatrix<double> S = strengthGraph(A);
  auto Split = coarsen(S, GetParam());
  for (index_t I = 0; I < S.NumRows; ++I) {
    if (Split[static_cast<std::size_t>(I)] == CfPoint::C ||
        S.rowDegree(I) == 0)
      continue;
    bool HasDonor = false;
    for (index_t J = S.RowPtr[I]; J < S.RowPtr[I + 1]; ++J)
      HasDonor |= Split[static_cast<std::size_t>(S.ColIdx[J])] == CfPoint::C;
    EXPECT_TRUE(HasDonor) << "F point " << I << " has no strong C neighbor";
  }
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, CoarsenParam,
                         ::testing::Values(CoarsenKind::RugeL,
                                           CoarsenKind::Cljp),
                         [](const auto &Info) {
                           return Info.param == CoarsenKind::RugeL ? "rugeL"
                                                                   : "cljp";
                         });

TEST(CoarsenTest, CljpNoAdjacentCoarsePairsDominates) {
  // PMIS-style: C points form (approximately) an independent set; verify no
  // two strongly-coupled C points exist for a 1D chain.
  CsrMatrix<double> A = tridiagonal(100);
  CsrMatrix<double> S = strengthGraph(A);
  auto Split = coarsen(S, CoarsenKind::Cljp);
  int AdjacentPairs = 0;
  for (index_t I = 0; I + 1 < 100; ++I)
    if (Split[static_cast<std::size_t>(I)] == CfPoint::C &&
        Split[static_cast<std::size_t>(I + 1)] == CfPoint::C)
      ++AdjacentPairs;
  // enforceInterpolationCover may promote a handful, but the bulk must be
  // independent.
  EXPECT_LT(AdjacentPairs, 10);
}

// --- Interpolation ---------------------------------------------------------------

TEST(InterpTest, CPointsInject) {
  CsrMatrix<double> A = laplace2d5pt(8, 8);
  CsrMatrix<double> S = strengthGraph(A);
  auto Split = coarsen(S, CoarsenKind::RugeL);
  CsrMatrix<double> P = directInterpolation(A, S, Split);
  for (index_t I = 0; I < A.NumRows; ++I) {
    if (Split[static_cast<std::size_t>(I)] != CfPoint::C)
      continue;
    ASSERT_EQ(P.rowDegree(I), 1);
    EXPECT_DOUBLE_EQ(P.Values[P.RowPtr[I]], 1.0);
  }
}

TEST(InterpTest, RowSumsPreserveConstants) {
  // For a zero-row-sum M-matrix (pure Neumann-like interior rows), direct
  // interpolation weights sum to 1 on F rows whose A-row sums to 0.
  CsrMatrix<double> A = laplace2d5pt(10, 10);
  CsrMatrix<double> S = strengthGraph(A);
  auto Split = coarsen(S, CoarsenKind::RugeL);
  CsrMatrix<double> P = directInterpolation(A, S, Split);
  for (index_t I = 0; I < A.NumRows; ++I) {
    if (Split[static_cast<std::size_t>(I)] == CfPoint::C)
      continue;
    double ARowSum = 0;
    for (index_t J = A.RowPtr[I]; J < A.RowPtr[I + 1]; ++J)
      ARowSum += A.Values[J];
    if (std::abs(ARowSum) > 1e-12)
      continue; // Boundary rows don't preserve constants exactly.
    double PRowSum = 0;
    for (index_t J = P.RowPtr[I]; J < P.RowPtr[I + 1]; ++J)
      PRowSum += P.Values[J];
    EXPECT_NEAR(PRowSum, 1.0, 1e-10);
  }
}

TEST(InterpTest, ShapeMatchesCoarseCount) {
  CsrMatrix<double> A = laplace3d7pt(6, 6, 6);
  CsrMatrix<double> S = strengthGraph(A);
  auto Split = coarsen(S, CoarsenKind::Cljp);
  CsrMatrix<double> P = directInterpolation(A, S, Split);
  EXPECT_EQ(P.NumRows, A.NumRows);
  EXPECT_EQ(P.NumCols, countCoarse(Split));
  EXPECT_TRUE(P.isValid());
}

// --- Relaxation ------------------------------------------------------------------

TEST(RelaxTest, JacobiReducesResidual) {
  CsrMatrix<double> A = laplace2d5pt(10, 10);
  auto Diag = extractDiagonal(A);
  std::vector<double> InvDiag(Diag.size());
  for (std::size_t I = 0; I != Diag.size(); ++I)
    InvDiag[I] = 1.0 / Diag[I];
  SpmvFn Apply = [&A](const double *X, double *Y) {
    kernelTable<double>().Csr.front().Fn(A, X, Y);
  };
  std::size_t N = static_cast<std::size_t>(A.NumRows);
  std::vector<double> B(N, 1.0), X(N, 0.0), Scratch(N), R(N);

  residual(Apply, B.data(), X.data(), R.data(), A.NumRows);
  double R0 = 0;
  for (double V : R)
    R0 += V * V;
  for (int Sweep = 0; Sweep < 20; ++Sweep)
    jacobiSweep(Apply, InvDiag, B.data(), X.data(), Scratch.data(), A.NumRows,
                2.0 / 3.0);
  residual(Apply, B.data(), X.data(), R.data(), A.NumRows);
  double R1 = 0;
  for (double V : R)
    R1 += V * V;
  EXPECT_LT(R1, R0 * 0.5);
}

TEST(RelaxTest, GaussSeidelReducesResidual) {
  CsrMatrix<double> A = laplace2d5pt(10, 10);
  std::size_t N = static_cast<std::size_t>(A.NumRows);
  std::vector<double> B(N, 1.0), X(N, 0.0), R(N);
  SpmvFn Apply = [&A](const double *Xv, double *Yv) {
    kernelTable<double>().Csr.front().Fn(A, Xv, Yv);
  };
  residual(Apply, B.data(), X.data(), R.data(), A.NumRows);
  double R0 = 0;
  for (double V : R)
    R0 += V * V;
  for (int Sweep = 0; Sweep < 10; ++Sweep)
    gaussSeidelSweep(A, B.data(), X.data());
  residual(Apply, B.data(), X.data(), R.data(), A.NumRows);
  double R1 = 0;
  for (double V : R)
    R1 += V * V;
  EXPECT_LT(R1, 0.5 * R0)
      << "ten GS sweeps should cut the residual energy substantially";
}

TEST(RelaxTest, DenseLuSolvesExactly) {
  // Random pattern plus a dominant diagonal so the system is comfortably
  // non-singular.
  CsrMatrix<double> Base = randomCsr(30, 30, 0.4, 7);
  std::vector<index_t> R, C;
  std::vector<double> V;
  for (index_t I = 0; I < 30; ++I)
    for (index_t J = Base.RowPtr[I]; J < Base.RowPtr[I + 1]; ++J) {
      R.push_back(I);
      C.push_back(Base.ColIdx[J]);
      V.push_back(Base.Values[J]);
    }
  for (index_t I = 0; I < 30; ++I) {
    R.push_back(I);
    C.push_back(I);
    V.push_back(50.0);
  }
  CsrMatrix<double> A =
      csrFromTriplets<double>(30, 30, std::move(R), std::move(C), std::move(V));
  DenseLu Lu;
  Lu.factor(A);
  auto XTrue = randomVector<double>(30, 9);
  std::vector<double> B = denseSpmv(A, XTrue);
  Lu.solve(B.data());
  expectVectorsNear(XTrue, B, 1e-8);
}

// --- Hierarchy ---------------------------------------------------------------------

TEST(HierarchyTest, LevelsShrink) {
  AmgHierarchy H;
  HierarchyOptions Opts;
  H.build(laplace2d5pt(40, 40), Opts);
  ASSERT_GE(H.numLevels(), 3u);
  for (std::size_t L = 1; L < H.numLevels(); ++L)
    EXPECT_LT(H.level(L).A.NumRows, H.level(L - 1).A.NumRows);
  EXPECT_LE(H.level(H.numLevels() - 1).A.NumRows, 400);
}

TEST(HierarchyTest, TransferShapesConsistent) {
  AmgHierarchy H;
  H.build(laplace3d7pt(10, 10, 10), HierarchyOptions());
  for (std::size_t L = 0; L + 1 < H.numLevels(); ++L) {
    const AmgLevel &Level = H.level(L);
    EXPECT_EQ(Level.P.NumRows, Level.A.NumRows);
    EXPECT_EQ(Level.P.NumCols, H.level(L + 1).A.NumRows);
    EXPECT_EQ(Level.R.NumRows, H.level(L + 1).A.NumRows);
    EXPECT_EQ(Level.R.NumCols, Level.A.NumRows);
  }
}

TEST(HierarchyTest, OperatorComplexityBounded) {
  AmgHierarchy H;
  H.build(laplace2d9pt(50, 50), HierarchyOptions());
  EXPECT_GT(H.operatorComplexity(), 1.0);
  EXPECT_LT(H.operatorComplexity(), 5.0);
}

// --- Full solver -----------------------------------------------------------------

TEST(AmgSolverTest, SolvesPoisson2D) {
  CsrMatrix<double> A = laplace2d5pt(30, 30);
  AmgSolver Solver;
  AmgOptions Opts;
  Opts.RelTol = 1e-8;
  Solver.setup(A, Opts);

  auto XTrue = randomVector<double>(static_cast<std::size_t>(A.NumRows), 17);
  std::vector<double> B = denseSpmv(A, XTrue);
  std::vector<double> X;
  SolveStats Stats = Solver.solve(B, X);
  ASSERT_TRUE(Stats.Converged)
      << "residual " << Stats.RelResidual << " after " << Stats.Iterations;
  EXPECT_LE(Stats.Iterations, 60);
  expectVectorsNear(XTrue, X, 1e-5);
}

TEST(AmgSolverTest, SolvesPoisson3DWithCljp) {
  CsrMatrix<double> A = laplace3d7pt(10, 10, 10);
  AmgSolver Solver;
  AmgOptions Opts;
  Opts.Hierarchy.Coarsening = CoarsenKind::Cljp;
  Solver.setup(A, Opts);
  auto XTrue = randomVector<double>(static_cast<std::size_t>(A.NumRows), 19);
  std::vector<double> B = denseSpmv(A, XTrue);
  std::vector<double> X;
  SolveStats Stats = Solver.solve(B, X);
  ASSERT_TRUE(Stats.Converged);
  expectVectorsNear(XTrue, X, 1e-5);
}

TEST(AmgSolverTest, PcgConvergesFasterThanStationary) {
  CsrMatrix<double> A = laplace2d9pt(40, 40);
  AmgSolver Solver;
  Solver.setup(A, AmgOptions());
  auto XTrue = randomVector<double>(static_cast<std::size_t>(A.NumRows), 23);
  std::vector<double> B = denseSpmv(A, XTrue);

  std::vector<double> X1, X2;
  SolveStats Stationary = Solver.solve(B, X1);
  SolveStats Pcg = Solver.solvePcg(B, X2);
  ASSERT_TRUE(Stationary.Converged);
  ASSERT_TRUE(Pcg.Converged);
  EXPECT_LE(Pcg.Iterations, Stationary.Iterations);
  expectVectorsNear(XTrue, X2, 1e-5);
}

TEST(AmgSolverTest, SingleLevelFallsBackToDirectSolve) {
  // MaxLevels = 1: the "hierarchy" is just the fine grid; the V-cycle is a
  // dense LU solve, so one iteration converges.
  CsrMatrix<double> A = laplace2d5pt(10, 10); // 100 rows <= DenseCoarseLimit.
  AmgOptions Opts;
  Opts.Hierarchy.MaxLevels = 1;
  AmgSolver Solver;
  Solver.setup(A, Opts);
  EXPECT_EQ(Solver.hierarchy().numLevels(), 1u);

  auto XTrue = randomVector<double>(100, 29);
  std::vector<double> B = denseSpmv(A, XTrue);
  std::vector<double> X;
  SolveStats Stats = Solver.solve(B, X);
  ASSERT_TRUE(Stats.Converged);
  EXPECT_EQ(Stats.Iterations, 1);
  expectVectorsNear(XTrue, X, 1e-8);
}

TEST(AmgSolverTest, NonzeroInitialGuessIsRefined) {
  CsrMatrix<double> A = laplace2d5pt(20, 20);
  AmgSolver Solver;
  Solver.setup(A, AmgOptions());
  auto XTrue = randomVector<double>(static_cast<std::size_t>(A.NumRows), 31);
  std::vector<double> B = denseSpmv(A, XTrue);

  // Start one V-cycle away from the solution: must converge in very few
  // iterations (solve() honors the initial guess).
  std::vector<double> X = XTrue;
  for (double &V : X)
    V += 1e-6;
  SolveStats Stats = Solver.solve(B, X);
  ASSERT_TRUE(Stats.Converged);
  EXPECT_LE(Stats.Iterations, 3);
}

TEST(AmgSolverTest, ZeroRhsConvergesImmediately) {
  CsrMatrix<double> A = laplace2d5pt(15, 15);
  AmgSolver Solver;
  Solver.setup(A, AmgOptions());
  std::vector<double> B(static_cast<std::size_t>(A.NumRows), 0.0);
  std::vector<double> X;
  SolveStats Stats = Solver.solve(B, X);
  EXPECT_TRUE(Stats.Converged);
  for (double V : X)
    EXPECT_NEAR(V, 0.0, 1e-10);
}

TEST(AmgSolverTest, AnisotropicProblemStillConverges) {
  // Strong x-direction coupling: a classic AMG stress test for strength
  // thresholds and semicoarsening behaviour.
  index_t Nx = 30, Ny = 30;
  std::vector<index_t> R, C;
  std::vector<double> V;
  double Eps = 0.01; // Weak y-coupling.
  for (index_t Y = 0; Y < Ny; ++Y)
    for (index_t X = 0; X < Nx; ++X) {
      index_t Row = Y * Nx + X;
      R.push_back(Row);
      C.push_back(Row);
      V.push_back(2.0 + 2.0 * Eps);
      if (X > 0) {
        R.push_back(Row);
        C.push_back(Row - 1);
        V.push_back(-1.0);
      }
      if (X + 1 < Nx) {
        R.push_back(Row);
        C.push_back(Row + 1);
        V.push_back(-1.0);
      }
      if (Y > 0) {
        R.push_back(Row);
        C.push_back(Row - Nx);
        V.push_back(-Eps);
      }
      if (Y + 1 < Ny) {
        R.push_back(Row);
        C.push_back(Row + Nx);
        V.push_back(-Eps);
      }
    }
  CsrMatrix<double> A = csrFromTriplets<double>(Nx * Ny, Nx * Ny,
                                                std::move(R), std::move(C),
                                                std::move(V));
  AmgSolver Solver;
  AmgOptions Opts;
  Opts.MaxIterations = 200;
  Solver.setup(A, Opts);
  auto XTrue = randomVector<double>(static_cast<std::size_t>(A.NumRows), 37);
  std::vector<double> B = denseSpmv(A, XTrue);
  std::vector<double> X;
  SolveStats Stats = Solver.solvePcg(B, X);
  ASSERT_TRUE(Stats.Converged) << "res " << Stats.RelResidual;
  expectVectorsNear(XTrue, X, 1e-4);
}

TEST(HierarchyTest, GalerkinDropToleranceSparsifies) {
  HierarchyOptions Plain;
  AmgHierarchy Dense;
  Dense.build(laplace2d9pt(30, 30), Plain);

  HierarchyOptions Dropping = Plain;
  Dropping.GalerkinDropTol = 1e-3;
  AmgHierarchy Sparser;
  Sparser.build(laplace2d9pt(30, 30), Dropping);

  ASSERT_GE(Dense.numLevels(), 2u);
  ASSERT_GE(Sparser.numLevels(), 2u);
  EXPECT_LE(Sparser.level(1).A.nnz(), Dense.level(1).A.nnz());
}

TEST(AmgSolverTest, FormatDecisionsRecorded) {
  CsrMatrix<double> A = laplace2d5pt(25, 25);
  AmgSolver Solver;
  Solver.setup(A, AmgOptions());
  const auto &Decisions = Solver.formatDecisions();
  // A per level plus P and R per non-coarsest level.
  EXPECT_EQ(Decisions.size(), 3 * Solver.hierarchy().numLevels() - 2);
  for (const LevelFormatInfo &D : Decisions)
    EXPECT_EQ(D.Format, FormatKind::CSR) << "FixedCsr backend is all CSR";
}
