//===- tests/property_test.cpp - Randomized property sweeps ---------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Property-based tests: the same invariants checked over a seeded family of
// random matrices, using parameterized gtest as the sweep driver.
//
//===----------------------------------------------------------------------===//

#include "amg/SpGemm.h"
#include "core/FormatOperator.h"
#include "core/Smat.h"
#include "features/FeatureExtractor.h"
#include "kernels/KernelRegistry.h"
#include "kernels/Scoreboard.h"
#include "matrix/FormatConvert.h"
#include "matrix/Generators.h"
#include "matrix/MatrixMarket.h"
#include "ml/ModelIO.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <array>

using namespace smat;
using namespace smat::test;

namespace {

/// A seeded random matrix whose shape/density also vary with the seed.
CsrMatrix<double> seededMatrix(std::uint64_t Seed) {
  Rng Rng(Seed * 7919 + 3);
  index_t Rows = static_cast<index_t>(Rng.range(1, 120));
  index_t Cols = static_cast<index_t>(Rng.range(1, 120));
  double Density = Rng.uniform(0.005, 0.3);
  return randomCsr(Rows, Cols, Density, Seed);
}

} // namespace

class MatrixProperties : public ::testing::TestWithParam<std::uint64_t> {};

// Conversions are lossless round trips for every representable matrix.
TEST_P(MatrixProperties, FormatRoundTripsAreExact) {
  CsrMatrix<double> A = seededMatrix(GetParam());
  auto Dense = toDense(A);

  EXPECT_EQ(toDense(cooToCsr(csrToCoo(A))), Dense);

  DiaMatrix<double> Dia;
  ASSERT_TRUE(csrToDia(A, Dia, 0.0, 0));
  EXPECT_EQ(toDense(diaToCsr(Dia)), Dense);

  EllMatrix<double> Ell;
  ASSERT_TRUE(csrToEll(A, Ell, 0.0));
  EXPECT_EQ(toDense(ellToCsr(Ell)), Dense);

  for (index_t BlockSize : {2, 3, 5}) {
    BsrMatrix<double> Bsr;
    ASSERT_TRUE(csrToBsr(A, Bsr, BlockSize, 0.0));
    EXPECT_EQ(toDense(bsrToCsr(Bsr)), Dense) << "b=" << BlockSize;
  }
}

// Every kernel of every format agrees with the dense reference.
TEST_P(MatrixProperties, AllKernelsAgree) {
  CsrMatrix<double> A = seededMatrix(GetParam());
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols),
                                GetParam() + 500);
  auto Expected = denseSpmv(A, X);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows));

  for (const auto &K : kernelTable<double>().Csr) {
    K.Fn(A, X.data(), Y.data());
    SCOPED_TRACE(K.Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
  CooMatrix<double> Coo = csrToCoo(A);
  for (const auto &K : kernelTable<double>().Coo) {
    K.Fn(Coo, X.data(), Y.data());
    SCOPED_TRACE(K.Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
  DiaMatrix<double> Dia;
  ASSERT_TRUE(csrToDia(A, Dia, 0.0, 0));
  for (const auto &K : kernelTable<double>().Dia) {
    K.Fn(Dia, X.data(), Y.data());
    SCOPED_TRACE(K.Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
  EllMatrix<double> Ell;
  ASSERT_TRUE(csrToEll(A, Ell, 0.0));
  for (const auto &K : kernelTable<double>().Ell) {
    K.Fn(Ell, X.data(), Y.data());
    SCOPED_TRACE(K.Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
  BsrMatrix<double> Bsr;
  ASSERT_TRUE(csrToBsr(A, Bsr, 4, 0.0));
  for (const auto &K : kernelTable<double>().Bsr) {
    K.Fn(Bsr, X.data(), Y.data());
    SCOPED_TRACE(K.Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
}

// Batched multiply of every format operator equals k independent SpMV
// applies of the same operator, for register-tiled widths (2/4/8/16) and the
// generic-K tail (1/3). The reference path gathers column J of the row-major
// block, runs the operator's own apply(), and compares against column J of
// multiply()'s output — so any disagreement is the SpMM kernel's fault, not
// a kernel-selection difference.
namespace {

constexpr std::array<index_t, 6> BatchTestWidths = {1, 2, 3, 4, 8, 16};

void expectBatchedMatchesApply(const FormatOperator<double> &Op,
                               std::uint64_t Seed, double Tol = 1e-10) {
  const index_t Rows = Op.numRows();
  const index_t Cols = Op.numCols();
  for (index_t K : BatchTestWidths) {
    auto X = randomVector<double>(
        static_cast<std::size_t>(Cols) * static_cast<std::size_t>(K),
        Seed + static_cast<std::uint64_t>(K));
    std::vector<double> Y(
        static_cast<std::size_t>(Rows) * static_cast<std::size_t>(K), -9.0);
    Op.multiply(X.data(), Y.data(), K);

    std::vector<double> Xc(static_cast<std::size_t>(Cols));
    std::vector<double> Yc(static_cast<std::size_t>(Rows));
    std::vector<double> YCol(static_cast<std::size_t>(Rows));
    for (index_t J = 0; J < K; ++J) {
      for (index_t C = 0; C < Cols; ++C)
        Xc[static_cast<std::size_t>(C)] =
            X[static_cast<std::size_t>(C) * static_cast<std::size_t>(K) +
              static_cast<std::size_t>(J)];
      Op.apply(Xc.data(), Yc.data());
      for (index_t R = 0; R < Rows; ++R)
        YCol[static_cast<std::size_t>(R)] =
            Y[static_cast<std::size_t>(R) * static_cast<std::size_t>(K) +
              static_cast<std::size_t>(J)];
      SCOPED_TRACE("k=" + std::to_string(K) + " column " + std::to_string(J));
      expectVectorsNear(Yc, YCol, Tol);
    }
  }
}

} // namespace

TEST_P(MatrixProperties, BatchedMultiplyMatchesRepeatedApply) {
  CsrMatrix<double> A = seededMatrix(GetParam());
  // Point every SpMM pick past the basic entry so the register-tiled
  // variants are what multiply() dispatches to (the bind clamps and falls
  // back to basic when a family has no such member or a precondition fails).
  KernelSelection Sel;
  for (int F = 0; F < NumFormats; ++F)
    for (int W = 0; W < NumSpmmWidths; ++W)
      Sel.BestSpmmKernel[static_cast<std::size_t>(F)]
                        [static_cast<std::size_t>(W)] = 1;
  for (FormatKind Kind : {FormatKind::CSR, FormatKind::COO, FormatKind::DIA,
                          FormatKind::ELL, FormatKind::BSR}) {
    auto Op = bindFormatOperator(A, Kind, Sel, CsrStorage::Borrowed,
                                 static_cast<CsrMatrix<double> *>(nullptr),
                                 /*CsrKernelOverride=*/-1, /*BatchWidth=*/8);
    ASSERT_TRUE(Op);
    SCOPED_TRACE(std::string("requested format ") +
                 std::string(formatName(Kind)) + ", bound " +
                 std::string(formatName(Op->kind())) + ", spmm kernel " +
                 Op->spmmKernelName());
    expectBatchedMatchesApply(*Op, GetParam() * 31 + 800);
  }
}

// The same invariant through the public tune path with BatchWidth set,
// including the shapes the SpMM tier exists for (FEM blocks, skew, empty).
TEST(BatchedTuneTest, TunedMultiplyMatchesIndependentSpmv) {
  LearningModel Model;
  Model.ConfidenceThreshold = 2.0; // Never confident: measurement decides.
  Model.refreshRuleMetadata();
  // Give the width buckets register-tiled picks, as a scoreboard search
  // would (searchOptimalKernels is too slow for a unit test).
  for (int F = 0; F < NumFormats; ++F)
    for (int W = 0; W < NumSpmmWidths; ++W)
      Model.Kernels.BestSpmmKernel[static_cast<std::size_t>(F)]
                                  [static_cast<std::size_t>(W)] = 1;
  const Smat<double> Tuner(Model);

  std::vector<std::pair<std::string, CsrMatrix<double>>> Mats;
  Mats.emplace_back("fem_blocks", blockFem(40, 6, 2.0, 51));
  Mats.emplace_back("banded", banded(300, 3));
  Mats.emplace_back("skewed_hubs", spikedRows(400, 2, 150, 0.02, 52));
  Mats.emplace_back("empty", CsrMatrix<double>(12, 9));

  for (const auto &[Name, A] : Mats) {
    SCOPED_TRACE(Name);
    for (index_t Width : {index_t(2), index_t(8)}) {
      TuneOptions Opts;
      Opts.MeasureMinSeconds = 1e-4;
      Opts.BatchWidth = Width;
      TunedSpmv<double> Op = SMAT_dCSR_SpMM(Tuner, A, Width, Opts);
      SCOPED_TRACE("tuned at width " + std::to_string(Width) + ", format " +
                   std::string(formatName(Op.format())) + ", spmm kernel " +
                   Op.spmmKernelName());
      expectBatchedMatchesApply(Op.formatOperator(), 900 + Width);
    }
  }
}

// Transpose is an involution and preserves nnz.
TEST_P(MatrixProperties, TransposeInvolution) {
  CsrMatrix<double> A = seededMatrix(GetParam());
  CsrMatrix<double> At = transposeCsr(A);
  EXPECT_EQ(At.nnz(), A.nnz());
  EXPECT_EQ(toDense(transposeCsr(At)), toDense(A));
}

// MatrixMarket serialization round-trips bit-exactly (17 significant digits).
TEST_P(MatrixProperties, MatrixMarketRoundTrip) {
  CsrMatrix<double> A = seededMatrix(GetParam());
  auto Result = readMatrixMarketString(writeMatrixMarketString(A));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(toDense(Result.Matrix), toDense(A));
}

// Feature invariants hold for arbitrary structure.
TEST_P(MatrixProperties, FeatureInvariants) {
  CsrMatrix<double> A = seededMatrix(GetParam());
  FeatureVector F = extractAllFeatures(A);
  EXPECT_DOUBLE_EQ(F.Nnz, static_cast<double>(A.nnz()));
  EXPECT_LE(F.AverRd, F.MaxRd + 1e-12);
  EXPECT_GE(F.VarRd, 0.0);
  EXPECT_GE(F.NTdiagsRatio, 0.0);
  EXPECT_LE(F.NTdiagsRatio, 1.0);
  if (A.nnz() > 0) {
    EXPECT_GT(F.ErDia, 0.0);
    EXPECT_GT(F.ErEll, 0.0);
  }
  // ER_DIA definition holds exactly.
  if (F.Ndiags > 0)
    EXPECT_NEAR(F.ErDia, F.Nnz / (F.Ndiags * F.M), 1e-12);
  if (F.MaxRd > 0)
    EXPECT_NEAR(F.ErEll, F.Nnz / (F.MaxRd * F.M), 1e-12);
}

// SpGEMM with the identity is neutral; associativity on small triples.
TEST_P(MatrixProperties, SpgemmAssociativity) {
  std::uint64_t Seed = GetParam();
  Rng Rng(Seed + 17);
  index_t N = static_cast<index_t>(Rng.range(5, 40));
  CsrMatrix<double> A = randomCsr(N, N, 0.2, Seed + 1);
  CsrMatrix<double> B = randomCsr(N, N, 0.2, Seed + 2);
  CsrMatrix<double> C = randomCsr(N, N, 0.2, Seed + 3);
  auto Left = toDense(spgemm(spgemm(A, B), C));
  auto Right = toDense(spgemm(A, spgemm(B, C)));
  ASSERT_EQ(Left.size(), Right.size());
  for (std::size_t I = 0; I != Left.size(); ++I)
    EXPECT_NEAR(Left[I], Right[I], 1e-9);
}

// The scoreboard always returns a valid index, and the winner's measured
// performance is never dominated by an identically-flagged rival.
TEST_P(MatrixProperties, ScoreboardPicksValidKernel) {
  CsrMatrix<double> A = seededMatrix(GetParam());
  if (A.nnz() == 0)
    GTEST_SKIP() << "degenerate empty matrix";
  auto Table = measureKernelTable<double>(kernelTable<double>().Csr, A, 5e-5);
  ScoreboardResult R = runScoreboard(Table);
  ASSERT_GE(R.BestIndex, 0);
  ASSERT_LT(static_cast<std::size_t>(R.BestIndex), Table.size());
  int BestScore = R.KernelScores[static_cast<std::size_t>(R.BestIndex)];
  for (int Score : R.KernelScores)
    EXPECT_LE(Score, BestScore);
}

// Under a skewed measurement table — the load-balanced kernel clearly ahead
// of its one-less-strategy partners, as measured on a power-law matrix with
// long hub rows — the scoreboard must prefer a loadbalance-flagged kernel.
// The table is synthetic and deterministic so the selection property holds
// on any runner, including single-core CI where real parallel measurements
// cannot separate the kernels.
TEST(ScoreboardSkewTest, SkewedTablePrefersLoadBalancedKernel) {
  std::vector<KernelMeasurement> Table = {
      {"csr_basic", OptNone, 1.00},
      {"csr_omp_static", OptThreads, 2.10},
      {"csr_omp_unroll", OptThreads | OptUnroll, 2.25},
      // Row-split threading leaves the hub-row thread as the critical path;
      // the nnz-balanced partition does not.
      {"csr_nnzsplit", OptThreads | OptLoadBalance, 4.80},
  };
  ScoreboardResult R = runScoreboard(Table);
  EXPECT_GT(R.StrategyScores[7], 0); // loadbalance bit voted helpful.
  ASSERT_GE(R.BestIndex, 0);
  EXPECT_TRUE(Table[static_cast<std::size_t>(R.BestIndex)].Flags &
              OptLoadBalance)
      << "scoreboard picked " << Table[static_cast<std::size_t>(R.BestIndex)].Name;
}

// The same property through the real measurement path: on a heavily skewed
// matrix with enough threads for the partition to matter, the skew-pass
// winner should at least be a valid, runnable kernel; on multi-core hosts it
// is expected (not asserted — timing) to be a loadbalance variant.
TEST(ScoreboardSkewTest, SkewProbeMeasurementsAreFiniteAndAligned) {
  CsrMatrix<double> A = spikedRows(3000, 2, 900, 0.01, 31);
  auto Table = measureKernelTable<double>(kernelTable<double>().Csr, A, 5e-5);
  ASSERT_EQ(Table.size(), kernelTable<double>().Csr.size());
  bool SawLoadBalance = false;
  for (std::size_t I = 0; I != Table.size(); ++I) {
    EXPECT_EQ(Table[I].Name, kernelTable<double>().Csr[I].Name);
    EXPECT_GE(Table[I].Gflops, 0.0);
    if (Table[I].Flags & OptLoadBalance) {
      SawLoadBalance = true;
      EXPECT_GT(Table[I].Gflops, 0.0) << "nnz-split kernel failed to run";
    }
  }
  EXPECT_TRUE(SawLoadBalance);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, MatrixProperties,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- Parser robustness: mutated inputs must fail cleanly, never crash. ------

namespace {

std::string mutate(const std::string &Text, Rng &Rng, int Edits) {
  std::string Out = Text;
  for (int E = 0; E < Edits && !Out.empty(); ++E) {
    std::size_t Pos = Rng.bounded(Out.size());
    switch (Rng.bounded(3)) {
    case 0: // Flip a byte.
      Out[Pos] = static_cast<char>(Rng.bounded(256));
      break;
    case 1: // Delete a byte.
      Out.erase(Pos, 1);
      break;
    default: // Truncate.
      Out.resize(Pos);
      break;
    }
  }
  return Out;
}

} // namespace

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MatrixMarketNeverCrashes) {
  Rng Rng(GetParam() * 131 + 7);
  std::string Valid = writeMatrixMarketString(randomCsr(12, 9, 0.3, 1));
  for (int Round = 0; Round < 50; ++Round) {
    std::string Broken = mutate(Valid, Rng, 1 + static_cast<int>(Rng.bounded(8)));
    MatrixMarketResult Result = readMatrixMarketString(Broken);
    if (Result.Ok) // Some mutations stay valid; the matrix must be sane.
      EXPECT_TRUE(Result.Matrix.isValid());
    else
      EXPECT_FALSE(Result.Error.empty());
  }
}

TEST_P(ParserFuzz, RulesetParserNeverCrashes) {
  Rng Rng(GetParam() * 173 + 11);
  RuleSet Set;
  Rule R;
  R.Format = FormatKind::DIA;
  R.Conditions.push_back({FeatNdiags, true, 40.0});
  R.Confidence = 0.9;
  R.Covered = 10;
  R.Correct = 9;
  Set.Rules.push_back(R);
  std::string Valid = serializeRuleSet(Set);
  for (int Round = 0; Round < 50; ++Round) {
    std::string Broken = mutate(Valid, Rng, 1 + static_cast<int>(Rng.bounded(6)));
    RuleSet Parsed;
    std::string Error;
    (void)parseRuleSet(Broken, Parsed, Error); // Must not crash or hang.
  }
}

INSTANTIATE_TEST_SUITE_P(FuzzSeeds, ParserFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));
