//===- tests/stress_test.cpp - Concurrent tuning stress (TSan target) -----===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Thread-stress coverage of the shared-state paths: many threads tuning
// through one Smat instance and one PlanCache. The singleflight probe must
// deduplicate concurrent same-fingerprint tunes down to one measurement,
// the resilience counters must stay consistent under concurrent updates and
// reads, and every thread's operator must stay correct. scripts/check.sh
// runs this binary under ThreadSanitizer (SMAT_SANITIZE=thread, -L stress);
// it is also part of tier 1 so the logic is exercised in every build.
//
//===----------------------------------------------------------------------===//

#include "core/PlanCache.h"
#include "core/Smat.h"
#include "matrix/Generators.h"
#include "support/FaultInjection.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace smat;
using namespace smat::test;

namespace {

constexpr int NumThreads = 8;

/// Never-confident model: every cache miss pays the full execute-and-measure
/// path, which is exactly the work singleflight must deduplicate.
LearningModel strictModel() {
  LearningModel Model;
  Model.ConfidenceThreshold = 2.0;
  Model.refreshRuleMetadata();
  return Model;
}

void expectSpmvMatches(const TunedSpmv<double> &Op, const CsrMatrix<double> &A,
                       std::uint64_t Seed) {
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), Seed);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
  Op.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-10);
}

} // namespace

TEST(StressTest, ConcurrentSameFingerprintTunesMeasureOnce) {
  Smat<double> Tuner(strictModel());
  PlanCache Cache;
  CsrMatrix<double> A = banded(800, 2);
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 2e-3; // Long enough that late arrivals must wait.
  Opts.Cache = &Cache;

  constexpr int TunesPerThread = 4;
  std::atomic<int> Failures{0};
  std::atomic<std::uint64_t> SharedReports{0};
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != TunesPerThread; ++I) {
        auto Result = Tuner.tryTune(A, Opts);
        if (!Result.ok()) {
          ++Failures;
          return;
        }
        if (Result->report().PlanShared) {
          ++SharedReports;
          // A shared plan is still a cache hit by contract.
          if (!Result->report().PlanCacheHit)
            ++Failures;
        }
        expectSpmvMatches(*Result, A, static_cast<std::uint64_t>(T * 31 + I));
      }
    });
  // Concurrent counter reads race against the tuning threads' updates; TSan
  // verifies the atomics make that safe.
  for (int Poll = 0; Poll != 50; ++Poll)
    (void)Tuner.resilienceCounters();
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Failures.load(), 0);
  PlanCacheStats Stats = Cache.stats();
  constexpr std::uint64_t Total = NumThreads * TunesPerThread;
  EXPECT_EQ(Stats.Misses, 1u)
      << "singleflight must collapse every concurrent same-fingerprint tune "
         "onto one measuring leader";
  EXPECT_EQ(Stats.Hits, Total - 1);
  EXPECT_EQ(Stats.SingleflightWaits, SharedReports.load())
      << "every waiter's report is marked PlanShared, nothing else is";

  SmatResilienceCounters C = Tuner.resilienceCounters();
  EXPECT_EQ(C.Tunes, Total);
  EXPECT_EQ(C.PlanShares, SharedReports.load());
}

TEST(StressTest, ConcurrentDistinctStructuresStayIndependent) {
  Smat<double> Tuner(strictModel());
  PlanCache Cache;
  // Sizes a power of two apart land in distinct fingerprint buckets.
  std::vector<CsrMatrix<double>> Inputs;
  Inputs.push_back(banded(200, 2));
  Inputs.push_back(banded(500, 2));
  Inputs.push_back(banded(1100, 2));
  Inputs.push_back(banded(2300, 2));
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  Opts.Cache = &Cache;

  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      const CsrMatrix<double> &A =
          Inputs[static_cast<std::size_t>(T) % Inputs.size()];
      for (int I = 0; I != 3; ++I) {
        auto Result = Tuner.tryTune(A, Opts);
        if (!Result.ok()) {
          ++Failures;
          return;
        }
        expectSpmvMatches(*Result, A, static_cast<std::uint64_t>(T + I));
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Failures.load(), 0);
  PlanCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, Inputs.size())
      << "exactly one measuring tune per structural class";
  EXPECT_EQ(Stats.Hits + Stats.Misses,
            static_cast<std::uint64_t>(NumThreads) * 3);
  EXPECT_EQ(Cache.size(), Inputs.size());
}

TEST(StressTest, ConcurrentTunesUnderRandomFaultsStayCorrect) {
  if (!fault::CompiledIn)
    GTEST_SKIP() << "build with -DSMAT_FAULT_INJECTION=ON";
  // Probabilistic faults while eight threads hammer a shared cache: no
  // tryTune may fail, no waiter may deadlock on an abandoned lease, and
  // every bound operator must stay correct. (A tune whose feature stage
  // faults skips the cache entirely; everything else publishes, so waiters
  // always wake.)
  fault::FaultConfig Cfg;
  Cfg.Seed = 17;
  Cfg.Probability = 0.02;
  fault::configure(Cfg);

  Smat<double> Tuner(strictModel());
  PlanCache Cache;
  std::vector<CsrMatrix<double>> Inputs;
  Inputs.push_back(banded(300, 2));
  Inputs.push_back(powerLawGraph(250, 2.0, 1, 40, 11));
  TuneOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  Opts.Cache = &Cache;

  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != 3; ++I) {
        const CsrMatrix<double> &A =
            Inputs[static_cast<std::size_t>(T + I) % Inputs.size()];
        auto Result = Tuner.tryTune(A, Opts);
        if (!Result.ok()) {
          ++Failures;
          return;
        }
        std::vector<double> X(static_cast<std::size_t>(A.NumCols), 1.0);
        std::vector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
        Result->apply(X.data(), Y.data());
        std::vector<double> Ref = denseSpmv(A, X);
        for (std::size_t J = 0; J != Ref.size(); ++J)
          if (std::abs(Ref[J] - Y[J]) > 1e-9 * std::max(1.0, std::abs(Ref[J]))) {
            ++Failures;
            return;
          }
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  fault::reset();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Tuner.resilienceCounters().Tunes,
            static_cast<std::uint64_t>(NumThreads) * 3);
}
