//===- tests/ml_test.cpp - Decision tree and ruleset tests ----------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ml/DecisionTree.h"
#include "ml/CrossValidate.h"
#include "ml/ModelIO.h"
#include "ml/RuleSet.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace smat;

namespace {

Sample makeSample(double Ndiags, double VarRd, double R, FormatKind Label) {
  Sample S;
  S.X.fill(0.0);
  S.X[FeatM] = 1000;
  S.X[FeatN] = 1000;
  S.X[FeatNdiags] = Ndiags;
  S.X[FeatVarRd] = VarRd;
  S.X[FeatR] = R;
  S.Label = Label;
  return S;
}

/// A cleanly separable synthetic dataset mirroring the paper's Figure-6
/// regimes: few diagonals -> DIA, low row-degree variance -> ELL,
/// power-law R in [1,4] -> COO, everything else CSR.
Dataset syntheticDataset(int PerClass, std::uint64_t Seed) {
  Dataset Data;
  Rng Rng(Seed);
  for (int I = 0; I < PerClass; ++I) {
    Data.Samples.push_back(makeSample(Rng.uniform(1, 20), Rng.uniform(0, 0.2),
                                      FeatureInf, FormatKind::DIA));
    Data.Samples.push_back(makeSample(Rng.uniform(500, 2000),
                                      Rng.uniform(0, 0.3), FeatureInf,
                                      FormatKind::ELL));
    Data.Samples.push_back(makeSample(Rng.uniform(500, 2000),
                                      Rng.uniform(50, 500),
                                      Rng.uniform(1.0, 4.0),
                                      FormatKind::COO));
    Data.Samples.push_back(makeSample(Rng.uniform(500, 2000),
                                      Rng.uniform(50, 500), FeatureInf,
                                      FormatKind::CSR));
  }
  return Data;
}

} // namespace

// --- Dataset ------------------------------------------------------------------

TEST(DatasetTest, ClassCountsAndMajority) {
  Dataset Data;
  Data.Samples.push_back(makeSample(1, 0, FeatureInf, FormatKind::DIA));
  Data.Samples.push_back(makeSample(2, 0, FeatureInf, FormatKind::DIA));
  Data.Samples.push_back(makeSample(900, 9, FeatureInf, FormatKind::CSR));
  auto Counts = Data.classCounts();
  EXPECT_EQ(Counts[static_cast<int>(FormatKind::DIA)], 2u);
  EXPECT_EQ(Counts[static_cast<int>(FormatKind::CSR)], 1u);
  EXPECT_EQ(Data.majorityClass(), FormatKind::DIA);
}

TEST(DatasetTest, MajorityTieGoesToCsr) {
  Dataset Data;
  Data.Samples.push_back(makeSample(900, 9, FeatureInf, FormatKind::CSR));
  Data.Samples.push_back(makeSample(1, 0, FeatureInf, FormatKind::DIA));
  EXPECT_EQ(Data.majorityClass(), FormatKind::CSR);
}

// --- DecisionTree ---------------------------------------------------------------

TEST(DecisionTreeTest, LearnsSeparableData) {
  Dataset Data = syntheticDataset(50, 1);
  DecisionTree Tree;
  Tree.build(Data);
  EXPECT_GE(Tree.accuracy(Data), 0.97);
  EXPECT_GT(Tree.numLeaves(), 2u);
}

TEST(DecisionTreeTest, GeneralizesToHeldOut) {
  DecisionTree Tree;
  Tree.build(syntheticDataset(60, 2));
  Dataset HeldOut = syntheticDataset(20, 999);
  EXPECT_GE(Tree.accuracy(HeldOut), 0.9);
}

TEST(DecisionTreeTest, PredictsMajorityOnPureDataset) {
  Dataset Data;
  for (int I = 0; I < 10; ++I)
    Data.Samples.push_back(makeSample(I, 0, FeatureInf, FormatKind::ELL));
  DecisionTree Tree;
  Tree.build(Data);
  EXPECT_EQ(Tree.numLeaves(), 1u);
  EXPECT_EQ(Tree.predict(Data.Samples[3].X), FormatKind::ELL);
}

TEST(DecisionTreeTest, MaxDepthLimitsTree) {
  Dataset Data = syntheticDataset(50, 3);
  TreeConfig Config;
  Config.MaxDepth = 1;
  Config.Prune = false;
  DecisionTree Tree;
  Tree.build(Data, Config);
  EXPECT_LE(Tree.numLeaves(), 2u);
}

TEST(DecisionTreeTest, PruningNeverGrowsTheTree) {
  Dataset Data = syntheticDataset(40, 4);
  // Add label noise so pruning has something to remove.
  Rng Rng(5);
  for (Sample &S : Data.Samples)
    if (Rng.uniform() < 0.1)
      S.Label = FormatKind::CSR;

  TreeConfig NoPrune;
  NoPrune.Prune = false;
  DecisionTree Unpruned;
  Unpruned.build(Data, NoPrune);

  DecisionTree Pruned;
  Pruned.build(Data, TreeConfig()); // Prune = true by default.
  EXPECT_LE(Pruned.numNodes(), Unpruned.numNodes());
}

TEST(DecisionTreeTest, HandlesInfSentinelSplits) {
  // R = FeatureInf rows must be separable from finite-R rows.
  Dataset Data;
  for (int I = 0; I < 30; ++I) {
    Data.Samples.push_back(
        makeSample(500, 100, 2.0 + 0.01 * I, FormatKind::COO));
    Data.Samples.push_back(makeSample(500, 100, FeatureInf, FormatKind::CSR));
  }
  DecisionTree Tree;
  Tree.build(Data);
  EXPECT_GE(Tree.accuracy(Data), 0.99);
}

// --- RuleSet --------------------------------------------------------------------

TEST(RuleSetTest, ExtractsOneRulePerLeaf) {
  Dataset Data = syntheticDataset(50, 6);
  DecisionTree Tree;
  Tree.build(Data);
  RuleSet Rules = RuleSet::fromTree(Tree, Data);
  EXPECT_EQ(Rules.Rules.size(), Tree.numLeaves());
}

TEST(RuleSetTest, RuleConfidencesInUnitInterval) {
  Dataset Data = syntheticDataset(50, 7);
  DecisionTree Tree;
  Tree.build(Data);
  RuleSet Rules = RuleSet::fromTree(Tree, Data);
  for (const Rule &R : Rules.Rules) {
    EXPECT_GT(R.Confidence, 0.0);
    EXPECT_LT(R.Confidence, 1.0);
    EXPECT_LE(R.Correct, R.Covered);
  }
}

TEST(RuleSetTest, ClassifyMatchesTreeOnTrainingData) {
  Dataset Data = syntheticDataset(40, 8);
  DecisionTree Tree;
  Tree.build(Data);
  RuleSet Rules = RuleSet::fromTree(Tree, Data);
  // Tree-extracted rules partition the space: first match == tree leaf.
  for (const Sample &S : Data.Samples)
    EXPECT_EQ(Rules.classify(S.X).Format, Tree.predict(S.X));
}

TEST(RuleSetTest, OrderingPreservesSetAccuracy) {
  Dataset Data = syntheticDataset(50, 9);
  DecisionTree Tree;
  Tree.build(Data);
  RuleSet Rules = RuleSet::fromTree(Tree, Data);
  double Before = Rules.accuracy(Data);
  Rules.orderByContribution(Data);
  // Rules from a tree are mutually exclusive, so order cannot change
  // first-match accuracy.
  EXPECT_DOUBLE_EQ(Rules.accuracy(Data), Before);
}

TEST(RuleSetTest, TailoringStaysWithinOnePercent) {
  Dataset Data = syntheticDataset(60, 10);
  DecisionTree Tree;
  Tree.build(Data);
  RuleSet Rules = RuleSet::fromTree(Tree, Data);
  Rules.orderByContribution(Data);
  RuleSet Tailored = Rules.tailored(Data, 0.01);
  EXPECT_LE(Tailored.Rules.size(), Rules.Rules.size());
  EXPECT_GE(Tailored.accuracy(Data) + 0.01, Rules.accuracy(Data));
}

TEST(RuleSetTest, GroupConfidenceZeroWhenNoMatch) {
  RuleSet Rules;
  Rule R;
  R.Format = FormatKind::DIA;
  R.Conditions.push_back({FeatNdiags, true, 10.0});
  R.Confidence = 0.9;
  Rules.Rules.push_back(R);

  auto X = makeSample(50, 0, FeatureInf, FormatKind::CSR).X;
  EXPECT_DOUBLE_EQ(Rules.groupConfidence(FormatKind::DIA, X), 0.0);
  X[FeatNdiags] = 5;
  EXPECT_DOUBLE_EQ(Rules.groupConfidence(FormatKind::DIA, X), 0.9);
}

TEST(RuleSetTest, OptimisticPredictionWalksGroupOrder) {
  // Both a DIA and an ELL rule match; DIA must win (group order).
  RuleSet Rules;
  Rule DiaRule;
  DiaRule.Format = FormatKind::DIA;
  DiaRule.Confidence = 0.9;
  Rule EllRule;
  EllRule.Format = FormatKind::ELL;
  EllRule.Confidence = 0.95;
  Rules.Rules = {EllRule, DiaRule}; // Order in the list must not matter.

  auto X = makeSample(5, 0, FeatureInf, FormatKind::DIA).X;
  RulePrediction P = Rules.predictOptimistic(X, 0.85);
  EXPECT_EQ(P.Format, FormatKind::DIA);
  EXPECT_TRUE(P.Confident);
}

TEST(RuleSetTest, LowConfidenceTriggersUnconfidentPrediction) {
  RuleSet Rules;
  Rule R;
  R.Format = FormatKind::ELL;
  R.Confidence = 0.5; // Below threshold.
  Rules.Rules.push_back(R);
  Rules.DefaultFormat = FormatKind::CSR;
  Rules.DefaultConfidence = 0.6;

  auto X = makeSample(100, 1, FeatureInf, FormatKind::CSR).X;
  RulePrediction P = Rules.predictOptimistic(X, 0.85);
  EXPECT_FALSE(P.Confident);
}

TEST(RuleSetTest, EmptyRulesetFallsBackToDefault) {
  RuleSet Rules;
  Rules.DefaultFormat = FormatKind::CSR;
  auto X = makeSample(10, 1, FeatureInf, FormatKind::CSR).X;
  RulePrediction P = Rules.classify(X);
  EXPECT_EQ(P.Format, FormatKind::CSR);
  EXPECT_EQ(P.RuleIndex, -1);
}

TEST(RuleSetTest, RuleToStringIsReadable) {
  Rule R;
  R.Format = FormatKind::DIA;
  R.Conditions.push_back({FeatNdiags, true, 40.0});
  R.Conditions.push_back({FeatNTdiagsRatio, false, 0.6});
  R.Confidence = 0.97;
  std::string S = R.toString();
  EXPECT_NE(S.find("Ndiags <= 40"), std::string::npos);
  EXPECT_NE(S.find("NTdiags_ratio > 0.6"), std::string::npos);
  EXPECT_NE(S.find("THEN DIA"), std::string::npos);
}

// --- CrossValidate ----------------------------------------------------------------

TEST(CrossValidateTest, HighAccuracyOnSeparableData) {
  Dataset Data = syntheticDataset(40, 21);
  CrossValidationResult Cv = crossValidate(Data, TreeConfig(), 5);
  EXPECT_EQ(Cv.Folds, 5);
  EXPECT_GE(Cv.MeanTreeAccuracy, 0.9);
  EXPECT_GE(Cv.MeanRulesetAccuracy, 0.9);
  EXPECT_GE(Cv.MeanLeaves, 2.0);
}

TEST(CrossValidateTest, NoiseLowersValidationAccuracy) {
  Dataset Clean = syntheticDataset(40, 22);
  Dataset Noisy = Clean;
  Rng Rng(23);
  for (Sample &S : Noisy.Samples)
    if (Rng.uniform() < 0.3)
      S.Label = static_cast<FormatKind>(Rng.bounded(4));
  CrossValidationResult CvClean = crossValidate(Clean, TreeConfig(), 5);
  CrossValidationResult CvNoisy = crossValidate(Noisy, TreeConfig(), 5);
  EXPECT_GT(CvClean.MeanTreeAccuracy, CvNoisy.MeanTreeAccuracy);
}

TEST(CrossValidateTest, DepthOneIsWeakerThanDeepTree) {
  Dataset Data = syntheticDataset(40, 24);
  TreeConfig Shallow;
  Shallow.MaxDepth = 1;
  CrossValidationResult CvShallow = crossValidate(Data, Shallow, 4);
  CrossValidationResult CvDeep = crossValidate(Data, TreeConfig(), 4);
  EXPECT_GT(CvDeep.MeanTreeAccuracy, CvShallow.MeanTreeAccuracy);
}

// --- ModelIO --------------------------------------------------------------------

TEST(ModelIoTest, RuleSetRoundTrip) {
  Dataset Data = syntheticDataset(40, 11);
  DecisionTree Tree;
  Tree.build(Data);
  RuleSet Rules = RuleSet::fromTree(Tree, Data);
  Rules.orderByContribution(Data);

  RuleSet Parsed;
  std::string Error;
  ASSERT_TRUE(parseRuleSet(serializeRuleSet(Rules), Parsed, Error)) << Error;
  ASSERT_EQ(Parsed.Rules.size(), Rules.Rules.size());
  EXPECT_EQ(Parsed.DefaultFormat, Rules.DefaultFormat);
  for (std::size_t I = 0; I != Rules.Rules.size(); ++I) {
    EXPECT_EQ(Parsed.Rules[I].Format, Rules.Rules[I].Format);
    EXPECT_DOUBLE_EQ(Parsed.Rules[I].Confidence, Rules.Rules[I].Confidence);
    ASSERT_EQ(Parsed.Rules[I].Conditions.size(),
              Rules.Rules[I].Conditions.size());
  }
  // Same classifications after the round trip.
  for (const Sample &S : Data.Samples)
    EXPECT_EQ(Parsed.classify(S.X).Format, Rules.classify(S.X).Format);
}

TEST(ModelIoTest, RejectsCorruptInput) {
  RuleSet Parsed;
  std::string Error;
  EXPECT_FALSE(parseRuleSet("", Parsed, Error));
  EXPECT_FALSE(parseRuleSet("SMAT-RULESET v1\nbogus\n", Parsed, Error));
  EXPECT_FALSE(parseRuleSet("SMAT-RULESET v1\ndefault CSR 0.5\nrules 1\n",
                            Parsed, Error))
      << "truncated rule list must fail";
}

TEST(ModelIoTest, FileRoundTrip) {
  Dataset Data = syntheticDataset(20, 12);
  DecisionTree Tree;
  Tree.build(Data);
  RuleSet Rules = RuleSet::fromTree(Tree, Data);
  std::string Path = testing::TempDir() + "/smat_ruleset_test.txt";
  ASSERT_TRUE(saveRuleSetFile(Path, Rules));
  RuleSet Loaded;
  std::string Error;
  ASSERT_TRUE(loadRuleSetFile(Path, Loaded, Error)) << Error;
  EXPECT_EQ(Loaded.Rules.size(), Rules.Rules.size());
}
