//===- tests/core_test.cpp - Trainer and runtime tuner tests --------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Smat.h"
#include "core/Trainer.h"
#include "matrix/Generators.h"
#include "ml/ModelIO.h"
#include "support/Str.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace smat;
using namespace smat::test;

namespace {

TrainingOptions fastOptions() {
  TrainingOptions Opts;
  Opts.MeasureMinSeconds = 1e-4;
  return Opts;
}

/// A tiny trained model shared across tests (training is measured, so build
/// it once).
const TrainResult &sharedTrainResult() {
  static const TrainResult Result = [] {
    auto Corpus = buildCorpus(CorpusScale::Tiny);
    std::vector<const CorpusEntry *> Training, Evaluation;
    splitCorpus(Corpus, Training, Evaluation);
    return trainSmat<double>(Training, fastOptions());
  }();
  return Result;
}

} // namespace

// --- FeatureDatabase ------------------------------------------------------------

TEST(FeatureDatabaseTest, CsvRoundTrip) {
  FeatureDatabase Db;
  FeatureRecord R;
  R.Name = "t2d_q9";
  R.Domain = "2d_3d";
  R.Features.M = 9801;
  R.Features.N = 9801;
  R.Features.Ndiags = 9;
  R.Features.NTdiagsRatio = 1.0;
  R.Features.Nnz = 87025;
  R.Features.MaxRd = 9;
  R.Features.VarRd = 0.35;
  R.Features.ErDia = 0.99;
  R.Features.ErEll = 0.99;
  R.Features.R = FeatureInf;
  R.Gflops = {1.0, 0.8, 2.5, 1.9};
  R.BestFormat = FormatKind::DIA;
  Db.Records.push_back(R);

  FeatureDatabase Parsed;
  std::string Error;
  ASSERT_TRUE(FeatureDatabase::parseCsv(Db.toCsv(), Parsed, Error)) << Error;
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_EQ(Parsed.Records[0].Name, "t2d_q9");
  EXPECT_DOUBLE_EQ(Parsed.Records[0].Features.NTdiagsRatio, 1.0);
  EXPECT_DOUBLE_EQ(Parsed.Records[0].Gflops[2], 2.5);
  EXPECT_EQ(Parsed.Records[0].BestFormat, FormatKind::DIA);
}

TEST(FeatureDatabaseTest, DatasetProjection) {
  FeatureDatabase Db;
  FeatureRecord R;
  R.Name = "x";
  R.Features.Ndiags = 3;
  R.BestFormat = FormatKind::ELL;
  Db.Records.push_back(R);
  Dataset Data = Db.toDataset();
  ASSERT_EQ(Data.size(), 1u);
  EXPECT_EQ(Data.Samples[0].Label, FormatKind::ELL);
  EXPECT_DOUBLE_EQ(Data.Samples[0].X[FeatNdiags], 3.0);
}

TEST(FeatureDatabaseTest, FormatDistributionCounts) {
  FeatureDatabase Db;
  for (int I = 0; I < 5; ++I) {
    FeatureRecord R;
    R.BestFormat = I < 3 ? FormatKind::CSR : FormatKind::COO;
    Db.Records.push_back(R);
  }
  auto Dist = Db.formatDistribution();
  EXPECT_EQ(Dist[static_cast<int>(FormatKind::CSR)], 3u);
  EXPECT_EQ(Dist[static_cast<int>(FormatKind::COO)], 2u);
}

// --- Trainer ---------------------------------------------------------------------

TEST(TrainerTest, MeasureAllFormatsRespectsGuards) {
  KernelSelection Sel; // Basic kernels everywhere.
  TrainingOptions Opts = fastOptions();

  // Banded matrix: all four basic formats measurable; BSR stays -1 because
  // the extension format is disabled by default.
  auto Gflops = measureAllFormats(banded(2000, 2), Sel, Opts);
  for (FormatKind Kind : {FormatKind::CSR, FormatKind::COO, FormatKind::DIA,
                          FormatKind::ELL})
    EXPECT_GT(Gflops[static_cast<std::size_t>(static_cast<int>(Kind))], 0.0);
  EXPECT_LT(Gflops[static_cast<int>(FormatKind::BSR)], 0.0);

  // With the extension enabled, a block-structured matrix measures BSR too.
  TrainingOptions BsrOpts = Opts;
  BsrOpts.EnableBsr = true;
  auto Gflops3 = measureAllFormats(blockFem(100, 4, 0.0, 7), Sel, BsrOpts);
  EXPECT_GT(Gflops3[static_cast<int>(FormatKind::BSR)], 0.0);

  // Power-law graph: DIA (scattered diagonals) and ELL (spiked max degree)
  // must be rejected by the guards.
  auto Gflops2 =
      measureAllFormats(powerLawGraph(3000, 2.0, 1, 400, 3), Sel, Opts);
  EXPECT_GT(Gflops2[static_cast<int>(FormatKind::CSR)], 0.0);
  EXPECT_GT(Gflops2[static_cast<int>(FormatKind::COO)], 0.0);
  EXPECT_LT(Gflops2[static_cast<int>(FormatKind::DIA)], 0.0);
  EXPECT_LT(Gflops2[static_cast<int>(FormatKind::ELL)], 0.0);
}

TEST(TrainerTest, BuildRecordLabelsBestFormat) {
  KernelSelection Sel;
  CorpusEntry Entry{"probe", "materials", banded(3000, 3)};
  FeatureRecord Record = buildRecord<double>(Entry, Sel, fastOptions());
  EXPECT_EQ(Record.Name, "probe");
  EXPECT_DOUBLE_EQ(Record.Features.Ndiags, 7);
  double BestGflops = Record.Gflops[static_cast<int>(Record.BestFormat)];
  for (double G : Record.Gflops)
    EXPECT_LE(G, BestGflops);
}

TEST(TrainerTest, TrainProducesUsableModel) {
  const TrainResult &Result = sharedTrainResult();
  EXPECT_FALSE(Result.Model.Rules.Rules.empty());
  EXPECT_GE(Result.TreeAccuracy, 0.6)
      << "the tree should beat the CSR-everywhere prior on training data";
  EXPECT_GE(Result.TailoredRuleAccuracy + 0.011, Result.FullRuleAccuracy);
  EXPECT_LE(Result.Model.Rules.size(), Result.FullRules.size());
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  EXPECT_EQ(Result.Database.size(), Training.size());
}

TEST(TrainerTest, TrainingLabelsCoverMultipleFormats) {
  const TrainResult &Result = sharedTrainResult();
  auto Dist = Result.Database.formatDistribution();
  int NonEmpty = 0;
  for (std::size_t C : Dist)
    NonEmpty += C > 0 ? 1 : 0;
  EXPECT_GE(NonEmpty, 2)
      << "the corpus must not collapse onto a single best format";
}

// --- LearningModel IO -------------------------------------------------------------

TEST(LearningModelTest, SerializeParseRoundTrip) {
  const LearningModel &Model = sharedTrainResult().Model;
  LearningModel Parsed;
  std::string Error;
  ASSERT_TRUE(parseModel(serializeModel(Model), Parsed, Error)) << Error;
  EXPECT_DOUBLE_EQ(Parsed.ConfidenceThreshold, Model.ConfidenceThreshold);
  EXPECT_EQ(Parsed.Rules.size(), Model.Rules.size());
  for (int K = 0; K < NumFormats; ++K) {
    EXPECT_EQ(Parsed.Kernels.BestKernel[static_cast<std::size_t>(K)],
              Model.Kernels.BestKernel[static_cast<std::size_t>(K)]);
    EXPECT_EQ(Parsed.Kernels.BestKernelName[static_cast<std::size_t>(K)],
              Model.Kernels.BestKernelName[static_cast<std::size_t>(K)]);
  }
  EXPECT_EQ(Parsed.Kernels.BestSkewCsrKernel,
            Model.Kernels.BestSkewCsrKernel);
  EXPECT_EQ(Parsed.Kernels.BestSkewCsrKernelName,
            Model.Kernels.BestSkewCsrKernelName);
}

TEST(LearningModelTest, SkewKernelLineRoundTripsAndStaysOptional) {
  // With the skew pick set, serialize/parse preserves it without disturbing
  // the ruleset.
  LearningModel Model = sharedTrainResult().Model;
  Model.Kernels.BestSkewCsrKernel = 8;
  Model.Kernels.BestSkewCsrKernelName = "csr_nnzsplit";
  LearningModel Parsed;
  std::string Error;
  ASSERT_TRUE(parseModel(serializeModel(Model), Parsed, Error)) << Error;
  EXPECT_EQ(Parsed.Kernels.BestSkewCsrKernel, 8);
  EXPECT_EQ(Parsed.Kernels.BestSkewCsrKernelName, "csr_nnzsplit");
  EXPECT_EQ(Parsed.Rules.size(), Model.Rules.size());

  // A pre-skew model text (no kernel_skew line) must parse with the field
  // at its -1 default and the full ruleset intact — backward compatibility
  // with committed bench_cache models.
  Model.Kernels.BestSkewCsrKernel = -1;
  Model.Kernels.BestSkewCsrKernelName.clear();
  std::string Legacy = serializeModel(Model);
  EXPECT_EQ(Legacy.find("kernel_skew"), std::string::npos);
  LearningModel Reparsed;
  ASSERT_TRUE(parseModel(Legacy, Reparsed, Error)) << Error;
  EXPECT_EQ(Reparsed.Kernels.BestSkewCsrKernel, -1);
  EXPECT_EQ(Reparsed.Rules.size(), Model.Rules.size());
}

TEST(LearningModelTest, SpmmKernelLinesRoundTripAndStayOptional) {
  // A partial SpMM search (only some width buckets recorded) round-trips:
  // written buckets come back exactly, unwritten ones stay at the -1
  // "unsearched" default.
  LearningModel Model = sharedTrainResult().Model;
  Model.Kernels.BestSpmmKernel[static_cast<std::size_t>(FormatKind::CSR)][2] =
      3; // width 8
  Model.Kernels
      .BestSpmmKernelName[static_cast<std::size_t>(FormatKind::CSR)][2] =
      "csr_spmm_nnzsplit";
  Model.Kernels.BestSpmmKernel[static_cast<std::size_t>(FormatKind::ELL)][0] =
      1; // width 2
  Model.Kernels
      .BestSpmmKernelName[static_cast<std::size_t>(FormatKind::ELL)][0] =
      "ell_spmm_tiled";
  LearningModel Parsed;
  std::string Error;
  ASSERT_TRUE(parseModel(serializeModel(Model), Parsed, Error)) << Error;
  for (int F = 0; F < NumFormats; ++F)
    for (int W = 0; W < NumSpmmWidths; ++W) {
      SCOPED_TRACE("format " + std::to_string(F) + " width bucket " +
                   std::to_string(W));
      EXPECT_EQ(Parsed.Kernels.BestSpmmKernel[static_cast<std::size_t>(F)]
                                             [static_cast<std::size_t>(W)],
                Model.Kernels.BestSpmmKernel[static_cast<std::size_t>(F)]
                                            [static_cast<std::size_t>(W)]);
      EXPECT_EQ(Parsed.Kernels.BestSpmmKernelName[static_cast<std::size_t>(F)]
                                                 [static_cast<std::size_t>(W)],
                Model.Kernels.BestSpmmKernelName[static_cast<std::size_t>(F)]
                                                [static_cast<std::size_t>(W)]);
    }
  EXPECT_EQ(Parsed.Rules.size(), Model.Rules.size());

  // A pre-SpMM model text has no kernel_spmm lines and parses with every
  // bucket unsearched — backward compatibility with committed models.
  for (int F = 0; F < NumFormats; ++F)
    for (int W = 0; W < NumSpmmWidths; ++W) {
      Model.Kernels.BestSpmmKernel[static_cast<std::size_t>(F)]
                                  [static_cast<std::size_t>(W)] = -1;
      Model.Kernels.BestSpmmKernelName[static_cast<std::size_t>(F)]
                                      [static_cast<std::size_t>(W)]
          .clear();
    }
  std::string Legacy = serializeModel(Model);
  EXPECT_EQ(Legacy.find("kernel_spmm"), std::string::npos);
  LearningModel Reparsed;
  ASSERT_TRUE(parseModel(Legacy, Reparsed, Error)) << Error;
  EXPECT_EQ(
      Reparsed.Kernels.BestSpmmKernel[static_cast<std::size_t>(
          FormatKind::CSR)][2],
      -1);
  EXPECT_EQ(Reparsed.Rules.size(), Model.Rules.size());

  // A kernel_spmm line whose width is not a searched bucket value is
  // malformed, not silently rebucketed. Inserted right before the ruleset,
  // where the optional-line lookahead reads it.
  std::string Bad = serializeModel(Model);
  std::size_t RulesetPos = Bad.find(serializeRuleSet(Model.Rules));
  ASSERT_NE(RulesetPos, std::string::npos);
  Bad.insert(RulesetPos, "kernel_spmm 6 CSR 1 csr_spmm_tiled\n");
  LearningModel Rejected;
  EXPECT_FALSE(parseModel(Bad, Rejected, Error));
}

TEST(LearningModelTest, CostModelLinesRoundTripAndStayOptional) {
  // Calibrated analytic-classifier thresholds survive the round trip.
  LearningModel Model = sharedTrainResult().Model;
  Model.Cost.ImbalanceRowCv = 1.75;
  Model.Cost.DiaFillMin = 0.25;
  Model.Cost.EllFillMin = 0.9;
  LearningModel Parsed;
  std::string Error;
  ASSERT_TRUE(parseModel(serializeModel(Model), Parsed, Error)) << Error;
  EXPECT_EQ(Parsed.Cost, Model.Cost);
  EXPECT_EQ(Parsed.Rules.size(), Model.Rules.size());

  // A pre-classifier model text has no costmodel lines and parses with the
  // CostModelThresholds defaults — backward compatibility with committed
  // bench_cache models.
  std::string Legacy = serializeModel(Model);
  for (std::size_t Pos;
       (Pos = Legacy.find("costmodel ")) != std::string::npos;)
    Legacy.erase(Pos, Legacy.find('\n', Pos) - Pos + 1);
  EXPECT_EQ(Legacy.find("costmodel"), std::string::npos);
  LearningModel Reparsed;
  ASSERT_TRUE(parseModel(Legacy, Reparsed, Error)) << Error;
  EXPECT_EQ(Reparsed.Cost, CostModelThresholds());
  EXPECT_EQ(Reparsed.Rules.size(), Model.Rules.size());

  // A costmodel line with an unknown key is malformed, not skipped.
  std::string Bad = serializeModel(Model);
  std::size_t RulesetPos = Bad.find(serializeRuleSet(Model.Rules));
  ASSERT_NE(RulesetPos, std::string::npos);
  Bad.insert(RulesetPos, "costmodel bogus_key 1.0\n");
  LearningModel Rejected;
  EXPECT_FALSE(parseModel(Bad, Rejected, Error));
}

TEST(LearningModelTest, FileRoundTripAndSmatFromFile) {
  const LearningModel &Model = sharedTrainResult().Model;
  std::string Path = testing::TempDir() + "/smat_model_test.txt";
  ASSERT_TRUE(saveModelFile(Path, Model));
  Smat<double> Tuner = Smat<double>::fromFile(Path);
  EXPECT_EQ(Tuner.model().Rules.size(), Model.Rules.size());
}

TEST(LearningModelTest, RefreshRuleMetadataTracksR) {
  LearningModel Model;
  Rule R;
  R.Format = FormatKind::COO;
  R.Conditions.push_back({FeatR, true, 4.0});
  Model.Rules.Rules.push_back(R);
  Model.refreshRuleMetadata();
  EXPECT_TRUE(Model.GroupUsesR[static_cast<int>(FormatKind::COO)]);
  EXPECT_FALSE(Model.GroupUsesR[static_cast<int>(FormatKind::DIA)]);
}

// --- Smat runtime -------------------------------------------------------------------

TEST(SmatRuntimeTest, TunedResultMatchesReference) {
  const Smat<double> Tuner(sharedTrainResult().Model);
  // Structurally diverse inputs; the tuned operator must be numerically
  // right regardless of which format it picks.
  std::vector<CsrMatrix<double>> Inputs;
  Inputs.push_back(banded(800, 2));
  Inputs.push_back(powerLawGraph(600, 2.0, 1, 60, 21));
  Inputs.push_back(boundedDegreeRandom(500, 500, 4, 4, 22));
  Inputs.push_back(randomCsr(300, 240, 0.05, 23));

  for (const CsrMatrix<double> &A : Inputs) {
    TunedSpmv<double> Op = Tuner.tune(A);
    EXPECT_EQ(Op.numRows(), A.NumRows);
    EXPECT_EQ(Op.numCols(), A.NumCols);
    auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 31);
    std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -1.0);
    Op.apply(X.data(), Y.data());
    expectVectorsNear(denseSpmv(A, X), Y, 1e-12);
  }
}

TEST(SmatRuntimeTest, ReportIsPopulated) {
  const Smat<double> Tuner(sharedTrainResult().Model);
  CsrMatrix<double> A = banded(1500, 3);
  TunedSpmv<double> Op = Tuner.tune(A);
  const TuningReport &Report = Op.report();
  EXPECT_DOUBLE_EQ(Report.Features.M, 1500);
  EXPECT_GT(Report.TuneSeconds, 0.0);
  EXPECT_GT(Report.CsrSpmvSeconds, 0.0);
  EXPECT_GT(Report.overheadRatio(), 0.0);
  EXPECT_FALSE(Report.KernelName.empty());
}

TEST(SmatRuntimeTest, ForceMeasureFindsEmpiricalBest) {
  const Smat<double> Tuner(sharedTrainResult().Model);
  CsrMatrix<double> A = banded(3000, 2);
  TuneOptions Opts;
  Opts.ForceMeasure = true;
  Opts.MeasureMinSeconds = 2e-4;
  TunedSpmv<double> Op = Tuner.tune(A, Opts);
  EXPECT_GE(Op.report().MeasuredGflops.size(), 2u)
      << "CSR and COO are always measured; DIA should also be plausible";
  // The chosen format must be the measured max.
  double BestGflops = -1;
  FormatKind BestKind = FormatKind::CSR;
  for (const auto &[Kind, Gflops] : Op.report().MeasuredGflops)
    if (Gflops > BestGflops) {
      BestGflops = Gflops;
      BestKind = Kind;
    }
  EXPECT_EQ(Op.format(), BestKind);
}

TEST(SmatRuntimeTest, MeasureDisabledUsesPredictionAsIs) {
  const Smat<double> Tuner(sharedTrainResult().Model);
  CsrMatrix<double> A = randomCsr(200, 200, 0.02, 33);
  TuneOptions Opts;
  Opts.AllowMeasure = false;
  TunedSpmv<double> Op = Tuner.tune(A, Opts);
  EXPECT_TRUE(Op.report().MeasuredGflops.empty());
  EXPECT_EQ(Op.format(), Op.report().ChosenFormat);
}

TEST(SmatRuntimeTest, UnifiedInterfaceEntryPoints) {
  const Smat<double> TunerD(sharedTrainResult().Model);
  CsrMatrix<double> Ad = tridiagonal(400);
  TunedSpmv<double> OpD = SMAT_dCSR_SpMV(TunerD, Ad);
  auto Xd = randomVector<double>(400, 41);
  std::vector<double> Yd(400);
  OpD.apply(Xd.data(), Yd.data());
  expectVectorsNear(denseSpmv(Ad, Xd), Yd, 1e-12);

  // Single precision path (trained separately, here reuse double's shape by
  // training a tiny float model).
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainResult FloatResult = trainSmat<float>(Training, fastOptions());
  const Smat<float> TunerS(FloatResult.Model);
  CsrMatrix<float> As = convertValueType<float>(Ad);
  TunedSpmv<float> OpS = SMAT_sCSR_SpMV(TunerS, As);
  auto Xs = randomVector<float>(400, 43);
  std::vector<float> Ys(400);
  OpS.apply(Xs.data(), Ys.data());
  expectVectorsNear(denseSpmv(As, Xs), Ys, 1e-4);
}

TEST(SmatRuntimeTest, BsrExtensionEndToEnd) {
  // Contribution 3 of the paper: new formats can be added to the framework.
  // Train with the BSR extension enabled on a corpus augmented with
  // block-structured matrices and verify the whole pipeline carries it.
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  for (int I = 0; I < 6; ++I)
    Corpus.push_back({formatString("block_%d", I), "structural",
                      blockFem(150 + 30 * I, I % 2 ? 8 : 4, 0.0,
                               static_cast<std::uint64_t>(900 + I))});
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);

  TrainingOptions Opts = fastOptions();
  Opts.EnableBsr = true;
  TrainResult Result = trainSmat<double>(Training, Opts);
  EXPECT_TRUE(Result.Model.BsrEnabled);

  // The database must contain BSR measurements for the block matrices.
  bool SawBsrMeasurement = false;
  for (const FeatureRecord &R : Result.Database.Records)
    SawBsrMeasurement |= R.Gflops[static_cast<int>(FormatKind::BSR)] > 0;
  EXPECT_TRUE(SawBsrMeasurement);

  // Model round-trips with the extension flag.
  LearningModel Parsed;
  std::string Error;
  ASSERT_TRUE(parseModel(serializeModel(Result.Model), Parsed, Error))
      << Error;
  EXPECT_TRUE(Parsed.BsrEnabled);

  // Runtime: a block matrix forced through measurement must consider BSR,
  // and the tuned operator must be numerically correct either way.
  const Smat<double> Tuner(Result.Model);
  CsrMatrix<double> A = blockFem(400, 4, 0.0, 999);
  TuneOptions Force;
  Force.ForceMeasure = true;
  TunedSpmv<double> Op = Tuner.tune(A, Force);
  bool BsrConsidered = false;
  for (const auto &[Kind, G] : Op.report().MeasuredGflops)
    BsrConsidered |= Kind == FormatKind::BSR;
  EXPECT_TRUE(BsrConsidered);

  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 51);
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows));
  Op.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-12);
}

TEST(SmatRuntimeTest, BsrNeverChosenWhenDisabled) {
  // A 4-format model must never propose or measure BSR, even on a
  // perfectly block-structured input.
  const Smat<double> Tuner(sharedTrainResult().Model);
  ASSERT_FALSE(Tuner.model().BsrEnabled);
  CsrMatrix<double> A = blockFem(300, 4, 0.0, 77);
  TuneOptions Force;
  Force.ForceMeasure = true;
  TunedSpmv<double> Op = Tuner.tune(A, Force);
  EXPECT_NE(Op.format(), FormatKind::BSR);
  for (const auto &[Kind, G] : Op.report().MeasuredGflops)
    EXPECT_NE(Kind, FormatKind::BSR);
}

TEST(SmatRuntimeTest, DiaPredictionOnPerfectDiagonalMatrix) {
  // A pristine multi-diagonal matrix is DIA's home turf: whatever path the
  // tuner takes (confident rule or measurement), DIA should usually win.
  // We assert the *mechanism*: the decision is either DIA, or measured.
  const Smat<double> Tuner(sharedTrainResult().Model);
  CsrMatrix<double> A = multiDiagonal(20000, {-500, -1, 0, 1, 500});
  TunedSpmv<double> Op = Tuner.tune(A);
  if (Op.format() != FormatKind::DIA)
    EXPECT_FALSE(Op.report().MeasuredGflops.empty())
        << "non-DIA choice must come from measurement, not a blind guess";
}

TEST(SmatRuntimeTest, DegenerateInputsSurvive) {
  const Smat<double> Tuner(sharedTrainResult().Model);

  // 1x1 matrix.
  {
    auto A = csrFromTriplets<double>(1, 1, {0}, {0}, {3.0});
    TunedSpmv<double> Op = Tuner.tune(A);
    double X = 2.0, Y = 0.0;
    Op.apply(&X, &Y);
    EXPECT_DOUBLE_EQ(Y, 6.0);
  }
  // All-zero matrix (no entries at all).
  {
    CsrMatrix<double> A(8, 8);
    TunedSpmv<double> Op = Tuner.tune(A);
    std::vector<double> X(8, 1.0), Y(8, -1.0);
    Op.apply(X.data(), Y.data());
    for (double V : Y)
      EXPECT_DOUBLE_EQ(V, 0.0);
  }
  // Single dense row.
  {
    CsrMatrix<double> A = randomCsr(1, 64, 0.8, 71);
    TunedSpmv<double> Op = Tuner.tune(A);
    auto X = randomVector<double>(64, 72);
    std::vector<double> Y(1);
    Op.apply(X.data(), Y.data());
    expectVectorsNear(denseSpmv(A, X), Y, 1e-12);
  }
  // Column vector shape with no entries.
  {
    CsrMatrix<double> A(5, 1);
    TunedSpmv<double> Op = Tuner.tune(A);
    double X = 4.0;
    std::vector<double> Y(5, -1.0);
    Op.apply(&X, Y.data());
    for (double V : Y)
      EXPECT_DOUBLE_EQ(V, 0.0);
  }
}

TEST(TrainerTest2, SkipKernelSearchUsesBasicKernels) {
  auto Corpus = buildCorpus(CorpusScale::Tiny);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainingOptions Opts = fastOptions();
  Opts.SkipKernelSearch = true;
  TrainResult Result = trainSmat<double>(Training, Opts);
  for (int K = 0; K < NumFormats; ++K)
    EXPECT_EQ(Result.Model.Kernels.BestKernel[static_cast<std::size_t>(K)],
              0);
  EXPECT_EQ(
      Result.Model.Kernels.BestKernelName[static_cast<int>(FormatKind::CSR)],
      "csr_basic");
  // The model must still work end-to-end.
  const Smat<double> Tuner(Result.Model);
  CsrMatrix<double> A = tridiagonal(500);
  TunedSpmv<double> Op = Tuner.tune(A);
  auto X = randomVector<double>(500, 73);
  std::vector<double> Y(500);
  Op.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-12);
}

TEST(SmatRuntimeTest, RectangularMatrixTunes) {
  const Smat<double> Tuner(sharedTrainResult().Model);
  CsrMatrix<double> A = lpRectangular(900, 120, 4, 75);
  TunedSpmv<double> Op = Tuner.tune(A);
  EXPECT_EQ(Op.numRows(), 900);
  EXPECT_EQ(Op.numCols(), 120);
  auto X = randomVector<double>(120, 76);
  std::vector<double> Y(900);
  Op.apply(X.data(), Y.data());
  expectVectorsNear(denseSpmv(A, X), Y, 1e-12);
}

TEST(SmatRuntimeTest, TuneIsDeterministicWithoutMeasurement) {
  const Smat<double> Tuner(sharedTrainResult().Model);
  CsrMatrix<double> A = banded(2000, 5);
  TuneOptions NoMeasure;
  NoMeasure.AllowMeasure = false;
  FormatKind First = Tuner.tune(A, NoMeasure).format();
  for (int Rep = 0; Rep < 3; ++Rep)
    EXPECT_EQ(Tuner.tune(A, NoMeasure).format(), First);
}
