//===- tests/kernels_test.cpp - Kernel library and scoreboard tests -------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"
#include "kernels/Scoreboard.h"
#include "matrix/Generators.h"
#include "ref/RefSpmv.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace smat;
using namespace smat::test;

namespace {

/// The structural shapes every kernel is checked against.
std::vector<std::pair<std::string, CsrMatrix<double>>> testMatrices() {
  std::vector<std::pair<std::string, CsrMatrix<double>>> Mats;
  Mats.emplace_back("random_square", randomCsr(64, 64, 0.12, 1));
  Mats.emplace_back("rectangular_wide", randomCsr(40, 90, 0.1, 2));
  Mats.emplace_back("rectangular_tall", randomCsr(90, 40, 0.1, 3));
  Mats.emplace_back("banded", banded(80, 2));
  Mats.emplace_back("power_law", powerLawGraph(100, 2.0, 1, 40, 4));
  Mats.emplace_back("bounded_degree", boundedDegreeRandom(70, 70, 3, 3, 5));
  // Matrix with empty rows (row 0 and last row empty).
  {
    auto A = csrFromTriplets<double>(6, 6, {1, 2, 3, 4}, {0, 5, 3, 2},
                                     {1.0, -2.0, 3.0, 0.5});
    Mats.emplace_back("empty_rows", std::move(A));
  }
  // Single row / single column extremes.
  Mats.emplace_back("single_row", randomCsr(1, 50, 0.4, 6));
  Mats.emplace_back("single_col", randomCsr(50, 1, 0.4, 7));
  // All-zero matrix.
  Mats.emplace_back("all_zero", CsrMatrix<double>(10, 10));
  // Adversarially skewed row-length distributions: the shapes the
  // load-balanced (nnz-split CSR, sliced ELL) kernels exist for.
  {
    // One dense row among (almost) empty rows.
    std::vector<index_t> Rows, Cols;
    std::vector<double> Vals;
    for (index_t C = 0; C < 40; ++C) {
      Rows.push_back(5);
      Cols.push_back(C);
      Vals.push_back(0.25 * static_cast<double>(C) - 3.0);
    }
    Rows.push_back(30);
    Cols.push_back(12);
    Vals.push_back(2.5);
    Mats.emplace_back("dense_row_among_empty",
                      csrFromTriplets<double>(40, 40, Rows, Cols, Vals));
  }
  {
    // Arrowhead: full first row, full first column, full diagonal.
    std::vector<index_t> Rows, Cols;
    std::vector<double> Vals;
    for (index_t C = 0; C < 60; ++C) {
      Rows.push_back(0);
      Cols.push_back(C);
      Vals.push_back(1.0 + 0.01 * static_cast<double>(C));
    }
    for (index_t R = 1; R < 60; ++R) {
      Rows.push_back(R);
      Cols.push_back(0);
      Vals.push_back(-0.5);
      Rows.push_back(R);
      Cols.push_back(R);
      Vals.push_back(3.0);
    }
    Mats.emplace_back("arrowhead",
                      csrFromTriplets<double>(60, 60, Rows, Cols, Vals));
  }
  // Power-law tail with spiked hub rows.
  Mats.emplace_back("power_law_spiked", spikedRows(120, 2, 80, 0.05, 9));
  return Mats;
}

} // namespace

// --- Correctness of every kernel against the dense reference, parameterized
// --- over (matrix, kernel index). The fixture enumerates kernels inside so
// --- newly added kernels are covered automatically.

class KernelCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(KernelCorrectness, CsrKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 100);
  auto Expected = denseSpmv(A, X);

  for (const auto &K : kernelTable<double>().Csr) {
    std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -7.0);
    K.Fn(A, X.data(), Y.data());
    SCOPED_TRACE(std::string(K.Name) + " on " + Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
}

TEST_P(KernelCorrectness, CooKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  CooMatrix<double> Coo = csrToCoo(A);
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 101);
  auto Expected = denseSpmv(A, X);

  for (const auto &K : kernelTable<double>().Coo) {
    std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -7.0);
    K.Fn(Coo, X.data(), Y.data());
    SCOPED_TRACE(std::string(K.Name) + " on " + Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
}

TEST_P(KernelCorrectness, DiaKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  DiaMatrix<double> Dia;
  if (!csrToDia(A, Dia, /*MaxFillRatio=*/0.0, /*MaxDiags=*/0))
    GTEST_SKIP() << "not DIA-representable";
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 102);
  auto Expected = denseSpmv(A, X);

  for (const auto &K : kernelTable<double>().Dia) {
    std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -7.0);
    K.Fn(Dia, X.data(), Y.data());
    SCOPED_TRACE(std::string(K.Name) + " on " + Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
}

TEST_P(KernelCorrectness, EllKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  EllMatrix<double> Ell;
  if (!csrToEll(A, Ell, /*MaxFillRatio=*/0.0))
    GTEST_SKIP() << "not ELL-representable";
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 103);
  auto Expected = denseSpmv(A, X);

  for (const auto &K : kernelTable<double>().Ell) {
    std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -7.0);
    K.Fn(Ell, X.data(), Y.data());
    SCOPED_TRACE(std::string(K.Name) + " on " + Name);
    expectVectorsNear(Expected, Y, 1e-12);
  }
}

TEST_P(KernelCorrectness, BsrKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 105);
  auto Expected = denseSpmv(A, X);

  // Every supported block size, including ragged-edge cases.
  for (index_t BlockSize : {2, 3, 4, 8}) {
    BsrMatrix<double> Bsr;
    if (!csrToBsr(A, Bsr, BlockSize, /*MaxFillRatio=*/0.0))
      continue;
    for (const auto &K : kernelTable<double>().Bsr) {
      std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -7.0);
      K.Fn(Bsr, X.data(), Y.data());
      SCOPED_TRACE(std::string(K.Name) + " b=" + std::to_string(BlockSize) +
                   " on " + Name);
      expectVectorsNear(Expected, Y, 1e-12);
    }
  }
}

TEST_P(KernelCorrectness, FloatKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, Ad] = Mats[static_cast<std::size_t>(MatIdx)];
  CsrMatrix<float> A = convertValueType<float>(Ad);
  auto X = randomVector<float>(static_cast<std::size_t>(A.NumCols), 104);
  std::vector<float> Expected = denseSpmv(A, X);

  for (const auto &K : kernelTable<float>().Csr) {
    std::vector<float> Y(static_cast<std::size_t>(A.NumRows), -7.0f);
    K.Fn(A, X.data(), Y.data());
    SCOPED_TRACE(std::string(K.Name) + " on " + Name);
    expectVectorsNear(Expected, Y, 1e-4);
  }
  CooMatrix<float> Coo = csrToCoo(A);
  for (const auto &K : kernelTable<float>().Coo) {
    std::vector<float> Y(static_cast<std::size_t>(A.NumRows), -7.0f);
    K.Fn(Coo, X.data(), Y.data());
    expectVectorsNear(Expected, Y, 1e-4);
  }
}

// --- Batched (SpMM) kernels: every family member against a column-by-column
// --- dense reference, for register-tiled widths (2/4/8/16), the generic-K
// --- tail (1/3/5), and every test shape.

namespace {

constexpr std::array<index_t, 7> SpmmTestWidths = {1, 2, 3, 4, 5, 8, 16};

/// Row-major NumRows x K reference block: column J of the result is one
/// dense SpMV of column J of X.
std::vector<double> denseSpmmBlock(const CsrMatrix<double> &A,
                                   const std::vector<double> &X, index_t K) {
  std::vector<double> Y(
      static_cast<std::size_t>(A.NumRows) * static_cast<std::size_t>(K), 0.0);
  std::vector<double> Xc(static_cast<std::size_t>(A.NumCols));
  for (index_t J = 0; J < K; ++J) {
    for (index_t C = 0; C < A.NumCols; ++C)
      Xc[static_cast<std::size_t>(C)] =
          X[static_cast<std::size_t>(C) * static_cast<std::size_t>(K) +
            static_cast<std::size_t>(J)];
    std::vector<double> Yc = denseSpmv(A, Xc);
    for (index_t R = 0; R < A.NumRows; ++R)
      Y[static_cast<std::size_t>(R) * static_cast<std::size_t>(K) +
        static_cast<std::size_t>(J)] = Yc[static_cast<std::size_t>(R)];
  }
  return Y;
}

} // namespace

TEST_P(KernelCorrectness, CsrSpmmKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  for (index_t K : SpmmTestWidths) {
    auto X = randomVector<double>(
        static_cast<std::size_t>(A.NumCols) * static_cast<std::size_t>(K),
        200 + static_cast<std::uint64_t>(K));
    auto Expected = denseSpmmBlock(A, X, K);
    for (const auto &M : kernelTable<double>().CsrSpmm) {
      std::vector<double> Y(Expected.size(), -7.0);
      M.Fn(A, X.data(), Y.data(), K);
      SCOPED_TRACE(std::string(M.Name) + " k=" + std::to_string(K) + " on " +
                   Name);
      expectVectorsNear(Expected, Y, 1e-12);
    }
  }
}

TEST_P(KernelCorrectness, CooSpmmKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  CooMatrix<double> Coo = csrToCoo(A);
  for (index_t K : SpmmTestWidths) {
    auto X = randomVector<double>(
        static_cast<std::size_t>(A.NumCols) * static_cast<std::size_t>(K),
        210 + static_cast<std::uint64_t>(K));
    auto Expected = denseSpmmBlock(A, X, K);
    for (const auto &M : kernelTable<double>().CooSpmm) {
      std::vector<double> Y(Expected.size(), -7.0);
      M.Fn(Coo, X.data(), Y.data(), K);
      SCOPED_TRACE(std::string(M.Name) + " k=" + std::to_string(K) + " on " +
                   Name);
      expectVectorsNear(Expected, Y, 1e-12);
    }
  }
}

TEST_P(KernelCorrectness, DiaSpmmKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  DiaMatrix<double> Dia;
  if (!csrToDia(A, Dia, /*MaxFillRatio=*/0.0, /*MaxDiags=*/0))
    GTEST_SKIP() << "not DIA-representable";
  for (index_t K : SpmmTestWidths) {
    auto X = randomVector<double>(
        static_cast<std::size_t>(A.NumCols) * static_cast<std::size_t>(K),
        220 + static_cast<std::uint64_t>(K));
    auto Expected = denseSpmmBlock(A, X, K);
    for (const auto &M : kernelTable<double>().DiaSpmm) {
      std::vector<double> Y(Expected.size(), -7.0);
      M.Fn(Dia, X.data(), Y.data(), K);
      SCOPED_TRACE(std::string(M.Name) + " k=" + std::to_string(K) + " on " +
                   Name);
      expectVectorsNear(Expected, Y, 1e-12);
    }
  }
}

TEST_P(KernelCorrectness, EllSpmmKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  EllMatrix<double> Ell;
  if (!csrToEll(A, Ell, /*MaxFillRatio=*/0.0))
    GTEST_SKIP() << "not ELL-representable";
  for (index_t K : SpmmTestWidths) {
    auto X = randomVector<double>(
        static_cast<std::size_t>(A.NumCols) * static_cast<std::size_t>(K),
        230 + static_cast<std::uint64_t>(K));
    auto Expected = denseSpmmBlock(A, X, K);
    for (const auto &M : kernelTable<double>().EllSpmm) {
      if (!kernelPrecondsHold(M.Preconds, Ell))
        continue; // Sliced kernels need the RowLen sidecar.
      std::vector<double> Y(Expected.size(), -7.0);
      M.Fn(Ell, X.data(), Y.data(), K);
      SCOPED_TRACE(std::string(M.Name) + " k=" + std::to_string(K) + " on " +
                   Name);
      expectVectorsNear(Expected, Y, 1e-12);
    }
  }
}

TEST_P(KernelCorrectness, FloatSpmmKernelsMatchReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, Ad] = Mats[static_cast<std::size_t>(MatIdx)];
  CsrMatrix<float> A = convertValueType<float>(Ad);
  const index_t K = 8;
  auto X = randomVector<float>(
      static_cast<std::size_t>(A.NumCols) * static_cast<std::size_t>(K), 240);
  // Per-column float reference.
  std::vector<float> Expected(
      static_cast<std::size_t>(A.NumRows) * static_cast<std::size_t>(K), 0.0f);
  {
    std::vector<float> Xc(static_cast<std::size_t>(A.NumCols));
    for (index_t J = 0; J < K; ++J) {
      for (index_t C = 0; C < A.NumCols; ++C)
        Xc[static_cast<std::size_t>(C)] = X[static_cast<std::size_t>(C * K + J)];
      std::vector<float> Yc = denseSpmv(A, Xc);
      for (index_t R = 0; R < A.NumRows; ++R)
        Expected[static_cast<std::size_t>(R * K + J)] =
            Yc[static_cast<std::size_t>(R)];
    }
  }
  for (const auto &M : kernelTable<float>().CsrSpmm) {
    std::vector<float> Y(Expected.size(), -7.0f);
    M.Fn(A, X.data(), Y.data(), K);
    SCOPED_TRACE(std::string(M.Name) + " on " + Name);
    expectVectorsNear(Expected, Y, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, KernelCorrectness, ::testing::Range(0, 13),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           auto Mats = testMatrices();
                           return Mats[static_cast<std::size_t>(Info.param)]
                               .first;
                         });

// --- Reference (baseline) library ----------------------------------------------

TEST_P(KernelCorrectness, RefLibraryMatchesReference) {
  int MatIdx = GetParam();
  auto Mats = testMatrices();
  const auto &[Name, A] = Mats[static_cast<std::size_t>(MatIdx)];
  SCOPED_TRACE(Name);

  auto Xd = randomVector<double>(static_cast<std::size_t>(A.NumCols), 301);
  auto ExpectedD = denseSpmv(A, Xd);
  std::vector<double> Yd(static_cast<std::size_t>(A.NumRows), -3.0);

  ref_dcsrgemv(A, Xd.data(), Yd.data());
  expectVectorsNear(ExpectedD, Yd, 1e-12);

  CooMatrix<double> Coo = csrToCoo(A);
  ref_dcoogemv(Coo, Xd.data(), Yd.data());
  expectVectorsNear(ExpectedD, Yd, 1e-12);

  DiaMatrix<double> Dia;
  if (csrToDia(A, Dia, 0.0, 0)) {
    ref_ddiagemv(Dia, Xd.data(), Yd.data());
    expectVectorsNear(ExpectedD, Yd, 1e-12);
  }
  EllMatrix<double> Ell;
  if (csrToEll(A, Ell, 0.0)) {
    ref_dellgemv(Ell, Xd.data(), Yd.data());
    expectVectorsNear(ExpectedD, Yd, 1e-12);
  }

  // Single-precision entry points.
  CsrMatrix<float> Af = convertValueType<float>(A);
  auto Xf = randomVector<float>(static_cast<std::size_t>(A.NumCols), 302);
  std::vector<float> ExpectedF = denseSpmv(Af, Xf);
  std::vector<float> Yf(static_cast<std::size_t>(A.NumRows), -3.0f);
  ref_scsrgemv(Af, Xf.data(), Yf.data());
  expectVectorsNear(ExpectedF, Yf, 1e-4);
  CooMatrix<float> CooF = csrToCoo(Af);
  ref_scoogemv(CooF, Xf.data(), Yf.data());
  expectVectorsNear(ExpectedF, Yf, 1e-4);

  // Generic dispatchers agree with the named entry points.
  refCsrSpmv(A, Xd.data(), Yd.data());
  expectVectorsNear(ExpectedD, Yd, 1e-12);
  refCooSpmv(Coo, Xd.data(), Yd.data());
  expectVectorsNear(ExpectedD, Yd, 1e-12);
}

// --- Registry sanity ----------------------------------------------------------

TEST(KernelRegistryTest, EveryFormatHasBasicKernelFirst) {
  const auto &T = kernelTable<double>();
  EXPECT_EQ(T.Csr.front().Flags, OptNone);
  EXPECT_EQ(T.Coo.front().Flags, OptNone);
  EXPECT_EQ(T.Dia.front().Flags, OptNone);
  EXPECT_EQ(T.Ell.front().Flags, OptNone);
  EXPECT_EQ(T.Bsr.front().Flags, OptNone);
  EXPECT_EQ(T.CsrSpmm.front().Flags, OptNone);
  EXPECT_EQ(T.CooSpmm.front().Flags, OptNone);
  EXPECT_EQ(T.DiaSpmm.front().Flags, OptNone);
  EXPECT_EQ(T.EllSpmm.front().Flags, OptNone);
}

TEST(KernelRegistryTest, LibraryHasPaperScaleVariantCount) {
  // The paper mentions "up to 24" implementations in the current system.
  EXPECT_GE(kernelTable<double>().size(), 20u);
  EXPECT_GE(kernelTable<float>().size(), 20u);
}

TEST(KernelRegistryTest, KernelNamesUnique) {
  const auto &T = kernelTable<double>();
  std::set<std::string> Names;
  for (const auto &K : T.Csr)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
  for (const auto &K : T.Coo)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
  for (const auto &K : T.Dia)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
  for (const auto &K : T.Ell)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
  for (const auto &K : T.Bsr)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
  for (const auto &K : T.CsrSpmm)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
  for (const auto &K : T.CooSpmm)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
  for (const auto &K : T.DiaSpmm)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
  for (const auto &K : T.EllSpmm)
    EXPECT_TRUE(Names.insert(K.Name).second) << K.Name;
}

TEST(KernelRegistryTest, FlagStrings) {
  EXPECT_EQ(optFlagsString(OptNone), "basic");
  EXPECT_EQ(optFlagsString(OptUnroll), "unroll");
  EXPECT_EQ(optFlagsString(OptSimd | OptThreads), "simd+threads");
}

// --- Load-balanced kernels (nnz-split CSR, sliced ELL) -------------------------

TEST(LoadBalanceTest, NnzSplitMatchesReferenceUnderForcedChunking) {
  // The nnz-split kernel only partitions when several chunks are worthwhile;
  // force a high thread count so its boundary-row carry logic runs even on a
  // single-core CI runner, and use matrices whose longest row spans multiple
  // chunks.
#ifdef _OPENMP
  int Saved = omp_get_max_threads();
  omp_set_num_threads(8);
#endif
  const CsrKernelFn<double> *NnzSplit = nullptr;
  for (const auto &K : kernelTable<double>().Csr)
    if (std::string(K.Name) == "csr_nnzsplit")
      NnzSplit = &K.Fn;
  ASSERT_NE(NnzSplit, nullptr);

  std::vector<std::pair<std::string, CsrMatrix<double>>> Skewed;
  Skewed.emplace_back("power_law_large",
                      powerLawGraph(3000, 1.8, 1, 1500, 21));
  Skewed.emplace_back("spiked_hubs", spikedRows(2000, 2, 600, 0.02, 22));
  Skewed.emplace_back("circuit_dense_rows", circuitLike(1500, 3, 0.9, 23));
  {
    // A single row holding nearly all nonzeros: the row spans every chunk,
    // so all but one chunk contribute carries.
    std::vector<index_t> Rows, Cols;
    std::vector<double> Vals;
    for (index_t C = 0; C < 4000; ++C) {
      Rows.push_back(17);
      Cols.push_back(C);
      Vals.push_back(0.001 * static_cast<double>(C) - 1.7);
    }
    Skewed.emplace_back("one_giant_row",
                        csrFromTriplets<double>(64, 4000, Rows, Cols, Vals));
  }
  for (const auto &[Name, A] : Skewed) {
    SCOPED_TRACE(Name);
    auto X = randomVector<double>(static_cast<std::size_t>(A.NumCols), 400);
    auto Expected = denseSpmv(A, X);
    std::vector<double> Y(static_cast<std::size_t>(A.NumRows), -7.0);
    (*NnzSplit)(A, X.data(), Y.data());
    expectVectorsNear(Expected, Y, 1e-9);
  }
#ifdef _OPENMP
  omp_set_num_threads(Saved);
#endif
}

TEST(LoadBalanceTest, SlicedEllKernelsDeclareRowLengthPrecond) {
  // csrToEll output carries the RowLen sidecar, so the precondition holds;
  // a hand-built ELL without it must be gated out rather than read past
  // RowLen.data().
  CsrMatrix<double> A = spikedRows(200, 2, 50, 0.05, 24);
  EllMatrix<double> Converted;
  ASSERT_TRUE(csrToEll(A, Converted, /*MaxFillRatio=*/0.0));
  EXPECT_TRUE(Converted.hasRowLengths());

  EllMatrix<double> Bare = Converted;
  Bare.RowLen.clear();
  int SlicedSeen = 0;
  for (const auto &K : kernelTable<double>().Ell) {
    if (!(K.Flags & OptLoadBalance))
      continue;
    ++SlicedSeen;
    EXPECT_EQ(K.Preconds & PrecondRowLengths, PrecondRowLengths) << K.Name;
    EXPECT_TRUE(kernelPrecondsHold(K.Preconds, Converted)) << K.Name;
    EXPECT_FALSE(kernelPrecondsHold(K.Preconds, Bare)) << K.Name;
  }
  EXPECT_GE(SlicedSeen, 2);

  // measureKernelTable applies the same gate: precondition violators are
  // recorded at zero GFLOPS and thus never selectable.
  auto Table = measureKernelTable<double>(kernelTable<double>().Ell, Bare,
                                          /*MinSeconds=*/1e-5);
  for (std::size_t I = 0; I != Table.size(); ++I) {
    if (kernelTable<double>().Ell[I].Preconds & PrecondRowLengths) {
      EXPECT_EQ(Table[I].Gflops, 0.0) << Table[I].Name;
    }
  }
}

// --- Scoreboard (paper Section 5.2) --------------------------------------------

TEST(ScoreboardTest, SingleStrategyVotes) {
  // unroll helps (+1), simd hurts (-1), prefetch below gap (neglected).
  std::vector<KernelMeasurement> Table = {
      {"basic", OptNone, 1.00},
      {"unroll", OptUnroll, 1.50},
      {"simd", OptSimd, 0.60},
      {"prefetch", OptPrefetch, 1.005},
  };
  ScoreboardResult R = runScoreboard(Table);
  EXPECT_EQ(R.StrategyScores[0], 1);  // unroll bit.
  EXPECT_EQ(R.StrategyScores[1], -1); // simd bit.
  EXPECT_EQ(R.StrategyScores[2], 0);  // prefetch bit.
  EXPECT_TRUE(R.Neglected[2]);
  EXPECT_FALSE(R.Neglected[0]);
  EXPECT_EQ(R.BestIndex, 1);
}

TEST(ScoreboardTest, MultiStrategyComparesOneLess) {
  // unroll +1 (vs basic); simd measured only in combination: the pair
  // unroll+simd vs unroll shows simd hurting.
  std::vector<KernelMeasurement> Table = {
      {"basic", OptNone, 1.0},
      {"unroll", OptUnroll, 2.0},
      {"unroll_simd", OptUnroll | OptSimd, 1.4},
  };
  ScoreboardResult R = runScoreboard(Table);
  EXPECT_EQ(R.StrategyScores[0], 1);
  EXPECT_EQ(R.StrategyScores[1], -1);
  // Scores: basic 0, unroll 1, unroll_simd 0 -> unroll wins.
  EXPECT_EQ(R.BestIndex, 1);
}

TEST(ScoreboardTest, BasicWinsWhenEverythingHurts) {
  std::vector<KernelMeasurement> Table = {
      {"basic", OptNone, 2.0},
      {"unroll", OptUnroll, 1.0},
      {"simd", OptSimd, 0.5},
  };
  ScoreboardResult R = runScoreboard(Table);
  EXPECT_EQ(R.BestIndex, 0);
}

TEST(ScoreboardTest, TieBrokenByMeasuredPerformance) {
  // Two single-strategy kernels both +1: the faster one should win.
  std::vector<KernelMeasurement> Table = {
      {"basic", OptNone, 1.0},
      {"unroll", OptUnroll, 1.5},
      {"simd", OptSimd, 1.8},
  };
  ScoreboardResult R = runScoreboard(Table);
  EXPECT_EQ(R.BestIndex, 2);
}

TEST(ScoreboardTest, CombinationAccumulatesStrategyScores) {
  std::vector<KernelMeasurement> Table = {
      {"basic", OptNone, 1.0},
      {"unroll", OptUnroll, 1.5},
      {"simd", OptSimd, 1.4},
      {"both", OptUnroll | OptSimd, 2.2},
  };
  ScoreboardResult R = runScoreboard(Table);
  // unroll: +1 (vs basic) +1 (both vs simd) = 2; simd likewise.
  EXPECT_EQ(R.StrategyScores[0], 2);
  EXPECT_EQ(R.StrategyScores[1], 2);
  EXPECT_EQ(R.KernelScores[3], 4);
  EXPECT_EQ(R.BestIndex, 3);
}

TEST(ScoreboardTest, EmptyTable) {
  ScoreboardResult R = runScoreboard({});
  EXPECT_EQ(R.BestIndex, 0);
  EXPECT_TRUE(R.KernelScores.empty());
}

TEST(ScoreboardTest, UnmeasuredKernelCannotWinOnStrategyScores) {
  // Regression: an entry recorded at 0 GFLOPS (unmeasured — precondition
  // violation, fault, or expired budget) used to be able to win the
  // tie-break. Here "abc" inherits +1 votes from both measured strategies
  // (its 2-bit reduced partners don't exist, so it contributes no negative
  // votes of its own) and scores 2 — higher than any measured entry — while
  // having never run. It must be unselectable.
  std::vector<KernelMeasurement> Table = {
      {"basic", OptNone, 1.0},
      {"a", OptUnroll, 1.5},
      {"b", OptSimd, 1.4},
      {"abc", OptUnroll | OptSimd | OptPrefetch, 0.0},
  };
  ScoreboardResult R = runScoreboard(Table);
  EXPECT_EQ(R.KernelScores[3], 2) << "the synthetic table must reproduce the "
                                     "inflated score for the unmeasured entry";
  EXPECT_EQ(R.BestIndex, 1) << "a (score 1, fastest measured) must win; the "
                               "unmeasured abc must be skipped";
}

TEST(ScoreboardTest, WhollyUnmeasuredTableKeepsBasicSelected) {
  // When nothing measured at all (e.g. the whole budget expired before the
  // first kernel), the basic entry stays selected: binding it is always
  // safe, whereas any other pick would crown a kernel that never ran.
  std::vector<KernelMeasurement> Table = {
      {"basic", OptNone, 0.0},
      {"a", OptUnroll, 0.0},
      {"b", OptSimd, 0.0},
  };
  ScoreboardResult R = runScoreboard(Table);
  EXPECT_EQ(R.BestIndex, 0);
}

TEST(ScoreboardTest, MeasureKernelTableProducesFiniteNumbers) {
  CsrMatrix<double> A = randomCsr(200, 200, 0.05, 8);
  auto Table = measureKernelTable<double>(kernelTable<double>().Csr, A,
                                          /*MinSeconds=*/1e-4);
  ASSERT_EQ(Table.size(), kernelTable<double>().Csr.size());
  for (const auto &M : Table) {
    EXPECT_GT(M.Gflops, 0.0) << M.Name;
    EXPECT_LT(M.Gflops, 1000.0) << M.Name;
  }
}

TEST(ScoreboardTest, SearchOptimalKernelsReturnsValidIndices) {
  KernelSelection S = searchOptimalKernels<double>(/*MinSeconds=*/2e-4);
  const auto &T = kernelTable<double>();
  EXPECT_LT(S.BestKernel[static_cast<int>(FormatKind::CSR)],
            static_cast<int>(T.Csr.size()));
  EXPECT_LT(S.BestKernel[static_cast<int>(FormatKind::COO)],
            static_cast<int>(T.Coo.size()));
  EXPECT_LT(S.BestKernel[static_cast<int>(FormatKind::DIA)],
            static_cast<int>(T.Dia.size()));
  EXPECT_LT(S.BestKernel[static_cast<int>(FormatKind::ELL)],
            static_cast<int>(T.Ell.size()));
  for (int K = 0; K < NumFormats; ++K) {
    EXPECT_GE(S.BestKernel[static_cast<std::size_t>(K)], 0);
    EXPECT_FALSE(S.BestKernelName[static_cast<std::size_t>(K)].empty());
  }
  // The skewed-CSR pass always runs in the unbudgeted search.
  EXPECT_GE(S.BestSkewCsrKernel, 0);
  EXPECT_LT(S.BestSkewCsrKernel, static_cast<int>(T.Csr.size()));
  EXPECT_FALSE(S.BestSkewCsrKernelName.empty());
  // csrKernelFor routes by row CV: below the threshold the general pick,
  // above it the skew pick.
  EXPECT_EQ(S.csrKernelFor(0.0), S.BestKernel[static_cast<int>(FormatKind::CSR)]);
  EXPECT_EQ(S.csrKernelFor(SkewRowCvThreshold + 1.0), S.BestSkewCsrKernel);
}
