//===- bench/ablation_tree.cpp - Learner hyperparameter ablation ----------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the decision-tree learner's configuration (the paper adopts
// C5.0's defaults; this bench defends our C4.5 analogue's defaults). For
// each (max depth, pruning) setting: 5-fold cross-validated tree and
// tailored-ruleset accuracy over the training feature database, plus model
// size — showing pruning's generalization/size tradeoff and the depth knee.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ml/CrossValidate.h"

using namespace smat;
using namespace smat::bench;

int main() {
  std::printf("=== Ablation: decision-tree configuration (5-fold CV) "
              "===\n\n");

  FeatureDatabase Db = getSharedDatabase<double>("double");
  Dataset Data = Db.toDataset();
  std::printf("training database: %zu samples\n\n", Data.size());

  AsciiTable Table({"max depth", "pruning", "CV tree acc", "CV ruleset acc",
                    "mean leaves"});
  for (int Depth : {2, 4, 8, 16}) {
    for (bool Prune : {false, true}) {
      TreeConfig Config;
      Config.MaxDepth = Depth;
      Config.Prune = Prune;
      CrossValidationResult Cv = crossValidate(Data, Config, 5);
      Table.addRow({formatString("%d", Depth), Prune ? "on" : "off",
                    formatString("%.1f%%", 100.0 * Cv.MeanTreeAccuracy),
                    formatString("%.1f%%", 100.0 * Cv.MeanRulesetAccuracy),
                    formatString("%.1f", Cv.MeanLeaves)});
    }
  }
  Table.print();

  std::printf("\nShape check: accuracy saturates by depth ~8 (the knee);\n"
              "pruning trims leaves (smaller rulesets -> cheaper runtime\n"
              "rule evaluation) at equal or better validation accuracy.\n"
              "The library default (depth 16, pruning on) sits past the\n"
              "knee with the pruned model size.\n");
  return 0;
}
