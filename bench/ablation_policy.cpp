//===- bench/ablation_policy.cpp - Decision-policy comparison -------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Quantifies the paper's Section-8 argument against clSpMV's decision
// model: "clSpMV uses the maximum GFLOPS measured in offline stage.
// Unfortunately ... the maximum performance of one format is not
// representative enough to reflect the SpMV performance of all the
// matrices suitable in this format. It is more accurate to use the
// features of each input matrix to determine its own best format."
//
// Four policies decide the format for every held-out matrix; each is
// scored against the measured best:
//
//   always-csr : the Hypre/PETSc status quo (no adaptivity)
//   clSpMV-ish : per-format offline peak GFLOPS + per-matrix padded work
//                estimate; pick the format with the lowest predicted time
//   rules-only : SMAT's ruleset, measurement fallback disabled
//   SMAT       : ruleset + confidence-gated execute-and-measure
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <cmath>

using namespace smat;
using namespace smat::bench;

namespace {

/// Offline per-format peak GFLOPS, the clSpMV-style architecture summary.
std::array<double, NumFormats> offlinePeaks(const FeatureDatabase &Db) {
  std::array<double, NumFormats> Peaks{};
  for (const FeatureRecord &R : Db.Records)
    for (int K = 0; K < NumFormats; ++K)
      Peaks[static_cast<std::size_t>(K)] = std::max(
          Peaks[static_cast<std::size_t>(K)],
          R.Gflops[static_cast<std::size_t>(K)]);
  return Peaks;
}

/// clSpMV-style prediction: estimated time = padded flops / offline peak.
/// Padded flops per format follow from the fill-efficiency features; a
/// format whose fill guard would reject the matrix is skipped.
FormatKind clSpmvPolicy(const FeatureVector &F,
                        const std::array<double, NumFormats> &Peaks) {
  double BestTime = 0;
  FormatKind Best = FormatKind::CSR;
  bool First = true;
  auto Consider = [&](FormatKind Kind, double PaddedFlops) {
    double Peak = Peaks[static_cast<int>(Kind)];
    if (Peak <= 0 || PaddedFlops <= 0)
      return;
    double Time = PaddedFlops / Peak;
    if (First || Time < BestTime) {
      First = false;
      BestTime = Time;
      Best = Kind;
    }
  };
  double Useful = 2.0 * F.Nnz;
  Consider(FormatKind::CSR, Useful);
  Consider(FormatKind::COO, Useful);
  if (F.ErDia > 0 && F.ErDia * DefaultMaxFillRatio >= 1.0 &&
      F.Ndiags <= DefaultMaxDiags)
    Consider(FormatKind::DIA, Useful / F.ErDia);
  if (F.ErEll > 0 && F.ErEll * DefaultMaxFillRatio >= 1.0)
    Consider(FormatKind::ELL, Useful / F.ErEll);
  return Best;
}

} // namespace

int main() {
  std::printf("=== Ablation: format-decision policies (paper Section 8 vs "
              "clSpMV) ===\n\n");

  LearningModel Model = getSharedModel<double>("double");
  FeatureDatabase TrainDb = getSharedDatabase<double>("double");
  auto Peaks = offlinePeaks(TrainDb);
  std::printf("offline per-format peak GFLOPS (the clSpMV summary):");
  for (int K = 0; K < NumFormats; ++K)
    std::printf(" %s=%.2f",
                std::string(formatName(static_cast<FormatKind>(K))).c_str(),
                Peaks[static_cast<std::size_t>(K)]);
  std::printf("\n\n");

  auto Corpus = buildCorpus(corpusScaleFromEnv());
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  const Smat<double> Tuner(Model);
  TrainingOptions Measure = benchTrainingOptions();

  int Total = 0;
  int HitsCsr = 0, HitsClSpmv = 0, HitsRules = 0, HitsSmat = 0;
  for (const CorpusEntry *Entry : Evaluation) {
    FeatureRecord Truth =
        buildRecord<double>(*Entry, Model.Kernels, Measure);
    ++Total;

    HitsCsr += Truth.BestFormat == FormatKind::CSR ? 1 : 0;
    HitsClSpmv +=
        clSpmvPolicy(Truth.Features, Peaks) == Truth.BestFormat ? 1 : 0;

    TuneOptions RulesOnly;
    RulesOnly.AllowMeasure = false;
    HitsRules += Tuner.tune(Entry->Matrix, RulesOnly).format() ==
                         Truth.BestFormat
                     ? 1
                     : 0;
    HitsSmat += Tuner.tune(Entry->Matrix).format() == Truth.BestFormat ? 1
                                                                       : 0;
  }

  AsciiTable Table({"policy", "correct", "accuracy"});
  auto Row = [&](const char *Name, int Hits) {
    Table.addRow({Name, formatString("%d/%d", Hits, Total),
                  formatString("%.1f%%",
                               100.0 * Hits / std::max(1, Total))});
  };
  Row("always-CSR (Hypre/PETSc status quo)", HitsCsr);
  Row("clSpMV-style offline peaks", HitsClSpmv);
  Row("SMAT rules only", HitsRules);
  Row("SMAT rules + measurement", HitsSmat);
  Table.print();

  std::printf("\nShape check: per-matrix features beat the offline-peak\n"
              "policy (the paper's Section-8 claim), and the measurement\n"
              "fallback recovers part of the remaining gap.\n");
  return 0;
}
