//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by all benchmark binaries: a disk-cached trained model
/// (train once, reuse across bench processes), corpus scale selection via
/// the SMAT_FULL environment variable, and tuned-operator measurement.
///
//===----------------------------------------------------------------------===//

#ifndef SMAT_BENCH_BENCHUTIL_H
#define SMAT_BENCH_BENCHUTIL_H

#include "core/Smat.h"
#include "core/Trainer.h"
#include "support/Str.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace smat {
namespace bench {

/// SMAT_FULL=1 selects the paper-scale corpus (2000+ matrices); default is
/// the Small corpus so the whole bench suite finishes in minutes.
inline CorpusScale corpusScaleFromEnv() {
  const char *Env = std::getenv("SMAT_FULL");
  return (Env && Env[0] == '1') ? CorpusScale::Full : CorpusScale::Small;
}

inline const char *corpusScaleName(CorpusScale Scale) {
  switch (Scale) {
  case CorpusScale::Tiny:
    return "tiny";
  case CorpusScale::Small:
    return "small";
  case CorpusScale::Full:
    return "full";
  }
  return "?";
}

/// Cache directory for trained models / databases (created on demand).
inline std::string cacheDir() {
  std::string Dir = "bench_cache";
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  return Dir;
}

/// Training options used by all benches (uniform so cached artifacts are
/// consistent).
inline TrainingOptions benchTrainingOptions() {
  TrainingOptions Opts;
  Opts.MeasureMinSeconds = 1e-3;
  return Opts;
}

/// Returns the trained model for value type \p T, training and caching it on
/// first use. \p Precision is "double" or "float" (cache key).
template <typename T>
LearningModel getSharedModel(const char *Precision) {
  CorpusScale Scale = corpusScaleFromEnv();
  std::string Path = cacheDir() + "/model_" + Precision + "_" +
                     corpusScaleName(Scale) + ".txt";
  LearningModel Model;
  std::string Error;
  if (loadModelFile(Path, Model, Error))
    return Model;

  std::fprintf(stderr,
               "[bench] training %s-precision model on the %s corpus "
               "(cached at %s)...\n",
               Precision, corpusScaleName(Scale), Path.c_str());
  auto Corpus = buildCorpus(Scale);
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainResult Result = trainSmat<T>(Training, benchTrainingOptions());
  std::fprintf(stderr, "[bench] trained in %.1fs (%zu rules, %.1f%% train "
                       "accuracy)\n",
               Result.TrainSeconds, Result.Model.Rules.size(),
               100.0 * Result.TailoredRuleAccuracy);
  saveModelFile(Path, Result.Model);
  // Persist the feature database too; fig6/tab1 reuse it.
  Result.Database.saveCsvFile(cacheDir() + std::string("/db_") + Precision +
                              "_" + corpusScaleName(Scale) + ".csv");
  return Result.Model;
}

/// Returns the measured feature database (features + per-format GFLOPS +
/// best format for every training matrix), training if not cached.
template <typename T>
FeatureDatabase getSharedDatabase(const char *Precision) {
  CorpusScale Scale = corpusScaleFromEnv();
  std::string Path = cacheDir() + std::string("/db_") + Precision + "_" +
                     corpusScaleName(Scale) + ".csv";
  FeatureDatabase Db;
  std::string Error;
  if (FeatureDatabase::loadCsvFile(Path, Db, Error) && Db.size() > 0)
    return Db;
  (void)getSharedModel<T>(Precision); // Trains and writes the DB.
  if (!FeatureDatabase::loadCsvFile(Path, Db, Error)) {
    std::fprintf(stderr, "[bench] cannot load database: %s\n", Error.c_str());
    std::exit(1);
  }
  return Db;
}

/// Steady-state GFLOPS of a tuned operator.
template <typename T>
double measureTunedGflops(const TunedSpmv<T> &Op, double MinSeconds = 5e-3) {
  AlignedVector<T> X(static_cast<std::size_t>(Op.numCols()), T(1));
  AlignedVector<T> Y(static_cast<std::size_t>(Op.numRows()), T(0));
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = T(0.01) * static_cast<T>(I % 100) - T(0.5);
  double Seconds = measureSecondsPerCall(
      [&] { Op.apply(X.data(), Y.data()); }, MinSeconds);
  return spmvGflops(static_cast<std::uint64_t>(Op.nnz()), Seconds);
}

/// Formats a GFLOPS value ("-" when the format was inadmissible).
inline std::string gflopsCell(double G) {
  return G < 0 ? std::string("-") : formatString("%.3f", G);
}

} // namespace bench
} // namespace smat

#endif // SMAT_BENCH_BENCHUTIL_H
