//===- bench/tab1_format_affinity.cpp - Paper Table 1 reproduction --------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Paper Table 1: "Application and distribution of affinity to each format" —
// per application domain, how many matrices measure fastest in CSR / COO /
// DIA / ELL, with the bottom row giving the whole-collection percentages
// (paper: CSR 63%, COO 21%, DIA 9%, ELL 7%).
//
// Set SMAT_FULL=1 for the paper-scale 2000+ matrix corpus.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <map>

using namespace smat;
using namespace smat::bench;

int main() {
  std::printf("=== Table 1: best-format distribution by application domain "
              "===\n\n");

  FeatureDatabase Db = getSharedDatabase<double>("double");

  std::map<std::string, std::array<std::size_t, NumFormats>> PerDomain;
  for (const FeatureRecord &R : Db.Records)
    ++PerDomain[R.Domain][static_cast<int>(R.BestFormat)];

  AsciiTable Table({"application domain", "CSR", "COO", "DIA", "ELL",
                    "total"});
  std::array<std::size_t, NumFormats> Totals{};
  for (const auto &[Domain, Counts] : PerDomain) {
    std::size_t DomainTotal = 0;
    for (int K = 0; K < NumFormats; ++K) {
      Totals[static_cast<std::size_t>(K)] +=
          Counts[static_cast<std::size_t>(K)];
      DomainTotal += Counts[static_cast<std::size_t>(K)];
    }
    Table.addRow({Domain, formatString("%zu", Counts[0]),
                  formatString("%zu", Counts[1]),
                  formatString("%zu", Counts[2]),
                  formatString("%zu", Counts[3]),
                  formatString("%zu", DomainTotal)});
  }
  std::size_t Grand = Totals[0] + Totals[1] + Totals[2] + Totals[3];
  auto Pct = [Grand](std::size_t C) {
    return formatString("%.0f%%",
                        100.0 * static_cast<double>(C) /
                            static_cast<double>(Grand ? Grand : 1));
  };
  Table.addRow({"Percentage", Pct(Totals[0]), Pct(Totals[1]), Pct(Totals[2]),
                Pct(Totals[3]), formatString("%zu", Grand)});
  Table.print();

  std::printf("\nPaper bottom row: CSR 63%%, COO 21%%, DIA 9%%, ELL 7%% over "
              "2386 matrices.\n");
  std::printf("Shape check: CSR the clear majority; COO second; DIA and ELL "
              "structured minorities.\n");
  return 0;
}
