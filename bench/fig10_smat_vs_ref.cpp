//===- bench/fig10_smat_vs_ref.cpp - Paper Figure 10 reproduction ---------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 10: "The performance of SMAT vs MKL" in single and double
// precision. The paper's MKL bar is "the maximum performance number of DIA,
// CSR, and COO SpMV functions" from the fixed-interface library; SMAT won
// by up to 6.1x (SP) / 4.7x (DP) on the 16 representatives and 3.2x / 3.8x
// on average over all 331 evaluation matrices.
//
// Our baseline is the smat::ref library (the MKL stand-in, see DESIGN.md):
// per-format entry points with straightforward kernels; the bar is the best
// of its CSR/COO/DIA calls, exactly as the paper computed MKL's.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ref/RefSpmv.h"
#include "support/Stats.h"

#include <algorithm>

using namespace smat;
using namespace smat::bench;

namespace {

/// Best-of-{CSR, COO, DIA} GFLOPS through the fixed-interface baseline.
template <typename T> double refBestGflops(const CsrMatrix<T> &A) {
  AlignedVector<T> X(static_cast<std::size_t>(A.NumCols), T(1));
  AlignedVector<T> Y(static_cast<std::size_t>(A.NumRows), T(0));
  std::uint64_t Nnz = static_cast<std::uint64_t>(A.nnz());

  double Best = spmvGflops(
      Nnz, measureSecondsPerCall([&] { refCsrSpmv(A, X.data(), Y.data()); },
                                 5e-3));
  {
    CooMatrix<T> Coo = csrToCoo(A);
    Best = std::max(
        Best, spmvGflops(Nnz, measureSecondsPerCall(
                                  [&] { refCooSpmv(Coo, X.data(), Y.data()); },
                                  5e-3)));
  }
  DiaMatrix<T> Dia;
  if (csrToDia(A, Dia))
    Best = std::max(
        Best, spmvGflops(Nnz, measureSecondsPerCall(
                                  [&] { refDiaSpmv(Dia, X.data(), Y.data()); },
                                  5e-3)));
  return Best;
}

template <typename T>
void runPrecision(const char *Precision,
                  const std::vector<CorpusEntry> &Reps) {
  LearningModel Model = getSharedModel<T>(Precision);
  const Smat<T> Tuner(Model);

  std::printf("--- %s precision ---\n", Precision);
  AsciiTable Table({"#", "matrix", "ref best", "SMAT", "speedup", "format"});
  double MaxSpeedup = 0;
  std::vector<double> Speedups;
  for (std::size_t I = 0; I != Reps.size(); ++I) {
    CsrMatrix<T> A = convertValueType<T>(Reps[I].Matrix);
    double Ref = refBestGflops(A);
    TunedSpmv<T> Op = Tuner.tune(A);
    double Tuned = measureTunedGflops(Op);
    double Speedup = Ref > 0 ? Tuned / Ref : 0;
    Speedups.push_back(Speedup);
    MaxSpeedup = std::max(MaxSpeedup, Speedup);
    Table.addRow({formatString("%zu", I + 1), Reps[I].Name,
                  formatString("%.3f", Ref), formatString("%.3f", Tuned),
                  formatString("%.2fx", Speedup),
                  std::string(formatName(Op.format()))});
  }
  Table.print();
  std::printf("max speedup %.2fx, geometric mean %.2fx\n\n", MaxSpeedup,
              geometricMean(Speedups));
}

} // namespace

int main() {
  std::printf("=== Figure 10: SMAT vs fixed-interface baseline (MKL "
              "stand-in) ===\n\n");

  auto Reps = representativeMatrices();
  runPrecision<float>("float", Reps);
  runPrecision<double>("double", Reps);

  // The paper also averages over all 331 held-out matrices; do the same on
  // the held-out slice of the corpus (double precision).
  std::printf("--- held-out evaluation set (double precision) ---\n");
  auto Corpus = buildCorpus(corpusScaleFromEnv());
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  LearningModel Model = getSharedModel<double>("double");
  const Smat<double> Tuner(Model);
  std::vector<double> Speedups;
  for (const CorpusEntry *Entry : Evaluation) {
    double Ref = refBestGflops(Entry->Matrix);
    TunedSpmv<double> Op = Tuner.tune(Entry->Matrix);
    Speedups.push_back(Ref > 0 ? measureTunedGflops(Op) / Ref : 0.0);
  }
  std::printf("%zu matrices, geometric-mean speedup %.2fx "
              "(paper: 3.2x SP / 3.8x DP average over 331)\n",
              Speedups.size(), geometricMean(Speedups));
  std::printf("\nShape check: SMAT >= baseline nearly everywhere; largest\n"
              "wins on DIA/ELL-affine inputs the fixed CSR-centric library\n"
              "cannot exploit.\n");
  return 0;
}
