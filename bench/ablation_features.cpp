//===- bench/ablation_features.cpp - Feature subset ablation --------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the Table-2 feature groups (DESIGN.md's design-choice index).
// The paper motivates each feature family with Figure 6; this bench
// quantifies their value: the model is re-trained on cumulative feature
// subsets and its *pure-model* prediction accuracy (no measurement
// fallback) is evaluated on the held-out set.
//
//   basic      : M, N, NNZ, aver_RD        (the four every format shares)
//   +diagonal  : + Ndiags, NTdiags_ratio   (DIA's signature)
//   +nnz-dist  : + max_RD, var_RD          (ELL's signature)
//   +fill      : + ER_DIA, ER_ELL
//   +powerlaw  : + R                       (COO's signature; full set)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ml/DecisionTree.h"
#include "ml/RuleSet.h"

using namespace smat;
using namespace smat::bench;

namespace {

/// Keeps only the features in \p Mask (others zeroed so they carry no
/// information for splits).
Dataset maskDataset(const Dataset &Data, const std::vector<int> &Kept) {
  Dataset Out = Data;
  for (Sample &S : Out.Samples) {
    std::array<double, NumFeatures> Masked{};
    for (int F : Kept)
      Masked[static_cast<std::size_t>(F)] = S.X[static_cast<std::size_t>(F)];
    S.X = Masked;
  }
  return Out;
}

} // namespace

int main() {
  std::printf("=== Ablation: Table-2 feature groups ===\n\n");

  // Training database (features + measured labels) and a held-out truth set.
  FeatureDatabase TrainDb = getSharedDatabase<double>("double");
  Dataset TrainData = TrainDb.toDataset();

  LearningModel Base = getSharedModel<double>("double");
  auto Corpus = buildCorpus(corpusScaleFromEnv());
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);
  TrainingOptions Measure = benchTrainingOptions();

  Dataset EvalData;
  for (const CorpusEntry *Entry : Evaluation) {
    FeatureRecord R = buildRecord<double>(*Entry, Base.Kernels, Measure);
    Sample S;
    S.X = R.Features.values();
    S.Label = R.BestFormat;
    S.Name = R.Name;
    EvalData.Samples.push_back(std::move(S));
  }

  struct Step {
    const char *Name;
    std::vector<int> Features;
  };
  std::vector<Step> Steps;
  Steps.push_back({"basic", {FeatM, FeatN, FeatNnz, FeatAverRd}});
  Steps.push_back({"+diagonal", {}});
  Steps.push_back({"+nnz-dist", {}});
  Steps.push_back({"+fill", {}});
  Steps.push_back({"+powerlaw", {}});
  Steps[1].Features = Steps[0].Features;
  Steps[1].Features.insert(Steps[1].Features.end(),
                           {FeatNdiags, FeatNTdiagsRatio});
  Steps[2].Features = Steps[1].Features;
  Steps[2].Features.insert(Steps[2].Features.end(), {FeatMaxRd, FeatVarRd});
  Steps[3].Features = Steps[2].Features;
  Steps[3].Features.insert(Steps[3].Features.end(), {FeatErDia, FeatErEll});
  Steps[4].Features = Steps[3].Features;
  Steps[4].Features.push_back(FeatR);

  AsciiTable Table({"feature set", "#features", "train acc", "held-out acc",
                    "rules"});
  for (const Step &S : Steps) {
    Dataset MaskedTrain = maskDataset(TrainData, S.Features);
    Dataset MaskedEval = maskDataset(EvalData, S.Features);

    DecisionTree Tree;
    Tree.build(MaskedTrain);
    RuleSet Rules = RuleSet::fromTree(Tree, MaskedTrain);
    Rules.orderByContribution(MaskedTrain);
    RuleSet Tailored = Rules.tailored(MaskedTrain, 0.01);

    Table.addRow({S.Name, formatString("%zu", S.Features.size()),
                  formatString("%.1f%%", 100.0 * Tailored.accuracy(MaskedTrain)),
                  formatString("%.1f%%", 100.0 * Tailored.accuracy(MaskedEval)),
                  formatString("%zu", Tailored.size())});
  }
  Table.print();

  std::printf("\nShape check: each feature family should add held-out\n"
              "accuracy; the diagonal group unlocks DIA detection, the\n"
              "nonzero-distribution group ELL, the power-law exponent COO\n"
              "(paper Section 4 motivates exactly these additions).\n");
  return 0;
}
