//===- bench/fig9_smat_performance.cpp - Paper Figure 9 reproduction ------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 9: "SMAT performance in single- and double-precision" on the
// 16 representative matrices. The paper reports peaks of 51 GFLOPS (SP) and
// 37 GFLOPS (DP) on a 12-core Xeon X5680 and ~5x performance variation
// across matrices; on this single-core container the absolute numbers are
// far smaller, but the per-matrix ordering (DIA/ELL-affine matrices fastest,
// CSR heavyweights slowest per flop) is the reproducible shape.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>

using namespace smat;
using namespace smat::bench;

namespace {

template <typename T>
std::vector<double> runPrecision(const char *Precision,
                                 const std::vector<CorpusEntry> &Reps) {
  LearningModel Model = getSharedModel<T>(Precision);
  const Smat<T> Tuner(Model);
  std::vector<double> Gflops;
  for (const CorpusEntry &Entry : Reps) {
    CsrMatrix<T> A = convertValueType<T>(Entry.Matrix);
    TunedSpmv<T> Op = Tuner.tune(A);
    Gflops.push_back(measureTunedGflops(Op));
  }
  return Gflops;
}

} // namespace

int main() {
  std::printf("=== Figure 9: SMAT SpMV performance, single and double "
              "precision ===\n\n");

  auto Reps = representativeMatrices();
  std::vector<double> Sp = runPrecision<float>("float", Reps);
  std::vector<double> Dp = runPrecision<double>("double", Reps);

  AsciiTable Table({"#", "matrix", "nnz", "SP GFLOPS", "DP GFLOPS",
                    "SP/DP"});
  for (std::size_t I = 0; I != Reps.size(); ++I)
    Table.addRow(
        {formatString("%zu", I + 1), Reps[I].Name,
         formatString("%lld", static_cast<long long>(Reps[I].Matrix.nnz())),
         formatString("%.3f", Sp[I]), formatString("%.3f", Dp[I]),
         formatString("%.2f", Dp[I] > 0 ? Sp[I] / Dp[I] : 0.0)});
  Table.print();

  double SpPeak = *std::max_element(Sp.begin(), Sp.end());
  double DpPeak = *std::max_element(Dp.begin(), Dp.end());
  double SpMin = *std::min_element(Sp.begin(), Sp.end());
  double DpMin = *std::min_element(Dp.begin(), Dp.end());
  std::printf("\nPeaks: SP %.3f GFLOPS, DP %.3f GFLOPS "
              "(paper, 12-core Xeon: 51 / 37).\n",
              SpPeak, DpPeak);
  std::printf("Across-matrix variation: SP %.1fx, DP %.1fx "
              "(paper: up to ~5x).\n",
              SpMin > 0 ? SpPeak / SpMin : 0.0,
              DpMin > 0 ? DpPeak / DpMin : 0.0);
  std::printf("Shape check: matrices 1-8 and 13-16 (non-CSR affine) run\n"
              "faster than the CSR heavyweights 9-12; SP beats DP "
              "(smaller memory traffic).\n");
  return 0;
}
