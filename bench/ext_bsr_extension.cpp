//===- bench/ext_bsr_extension.cpp - Format-extensibility demonstration ---===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's third contribution: "a flexible and extension-free framework,
// with which users can add not only new formats and novel implementations
// ... but also more features and larger datasets." This bench exercises the
// claim end to end by enabling the BSR (blocked CSR / BCSR, Section 2.1)
// extension format:
//
//   1. the corpus is augmented with block-structured matrices,
//   2. a new feature (ER_BSR, the 4x4 block fill efficiency) feeds the
//      learner,
//   3. the kernel library gains BSR implementations and the scoreboard
//      scores them,
//   4. two models are trained — 4-format (paper baseline) and 5-format —
//      and compared on block-structured inputs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "matrix/Generators.h"
#include "support/Rng.h"
#include "support/Stats.h"

using namespace smat;
using namespace smat::bench;

int main() {
  std::printf("=== Extension: adding the BSR format to SMAT ===\n\n");

  // Corpus: the regular training set plus block-structured matrices
  // (FEM-style aligned dense blocks), which is where BSR earns its keep.
  auto Corpus = buildCorpus(CorpusScale::Small);
  Rng SeedRng(77);
  for (int I = 0; I < 40; ++I) {
    index_t BlockSize = (I % 3 == 0) ? 8 : 4;
    index_t Blocks = static_cast<index_t>(300 + SeedRng.bounded(1200));
    Corpus.push_back({formatString("block_%02d", I), "structural_blocked",
                      blockFem(Blocks, BlockSize, 0.0, SeedRng())});
  }
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);

  TrainingOptions Base = benchTrainingOptions();
  std::fprintf(stderr, "[bench] training 4-format baseline model...\n");
  TrainResult FourFormat = trainSmat<double>(Training, Base);

  TrainingOptions WithBsr = Base;
  WithBsr.EnableBsr = true;
  std::fprintf(stderr, "[bench] training 5-format (BSR-enabled) model...\n");
  TrainResult FiveFormat = trainSmat<double>(Training, WithBsr);

  auto Dist = FiveFormat.Database.formatDistribution();
  std::printf("training-set best-format distribution with BSR enabled:\n");
  for (int K = 0; K < NumFormats; ++K)
    std::printf("  %s %zu",
                std::string(formatName(static_cast<FormatKind>(K))).c_str(),
                Dist[static_cast<std::size_t>(K)]);
  std::printf("\n\n");

  // Head-to-head on block-structured probes of increasing size.
  const Smat<double> TunerFour(FourFormat.Model);
  const Smat<double> TunerFive(FiveFormat.Model);

  AsciiTable Table({"matrix", "nnz", "4-format pick", "GFLOPS",
                    "5-format pick", "GFLOPS", "speedup"});
  std::vector<double> Speedups;
  for (index_t Blocks : {500, 1000, 2000, 4000}) {
    for (index_t BlockSize : {index_t(4), index_t(8)}) {
      CsrMatrix<double> A =
          blockFem(Blocks, BlockSize, 0.0,
                   static_cast<std::uint64_t>(Blocks + BlockSize));
      TunedSpmv<double> OpFour = TunerFour.tune(A);
      TunedSpmv<double> OpFive = TunerFive.tune(A);
      double GFour = measureTunedGflops(OpFour);
      double GFive = measureTunedGflops(OpFive);
      Speedups.push_back(GFour > 0 ? GFive / GFour : 0.0);
      Table.addRow(
          {formatString("blockfem_%dx%d", Blocks, BlockSize),
           formatString("%lld", static_cast<long long>(A.nnz())),
           std::string(formatName(OpFour.format())),
           formatString("%.3f", GFour),
           std::string(formatName(OpFive.format())),
           formatString("%.3f", GFive),
           formatString("%.2fx", Speedups.back())});
    }
  }
  Table.print();

  std::printf("\ngeometric-mean speedup of the 5-format model on blocked "
              "inputs: %.2fx\n",
              geometricMean(Speedups));

  // Sanity: the 5-format model must not regress on non-blocked inputs.
  std::printf("\nnon-blocked regression check (both models, same inputs):\n");
  for (const CorpusEntry &Probe :
       {CorpusEntry{"banded", "materials", banded(20000, 4)},
        CorpusEntry{"powerlaw", "graph",
                    powerLawGraph(30000, 2.5, 1, 32, 5)}}) {
    TunedSpmv<double> OpFour = TunerFour.tune(Probe.Matrix);
    TunedSpmv<double> OpFive = TunerFive.tune(Probe.Matrix);
    std::printf("  %-9s 4-format -> %-3s, 5-format -> %-3s\n",
                Probe.Name.c_str(),
                std::string(formatName(OpFour.format())).c_str(),
                std::string(formatName(OpFive.format())).c_str());
  }

  std::printf("\nShape check: the 5-format model routes aligned block\n"
              "matrices to BSR (register-blocked kernels) and leaves all\n"
              "other structures unchanged -- the extension is additive,\n"
              "exactly as the paper's extensibility claim requires.\n");
  return 0;
}
