//===- bench/ablation_confidence.cpp - Confidence threshold ablation ------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the runtime confidence threshold (DESIGN.md's design-choice
// index). The threshold trades prediction latency against accuracy: at 0 the
// model always decides alone (cheapest, least accurate); at 1 every matrix
// goes through execute-and-measure (most accurate, ~16x CSR-SpMV overhead).
// The paper fixes one threshold; this bench sweeps it and reports, per
// setting: end-to-end accuracy vs the measured best format, the fraction of
// matrices that needed measurement, and the mean tuning overhead.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Stats.h"

#include <algorithm>

using namespace smat;
using namespace smat::bench;

int main() {
  std::printf("=== Ablation: runtime confidence threshold ===\n\n");

  auto Corpus = buildCorpus(corpusScaleFromEnv());
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);

  // Train on a deliberately small slice of the training set so the ruleset
  // is imperfect: the interesting regime for the threshold is a model that
  // sometimes errs, where execute-and-measure buys back accuracy. (With
  // the full training set the model is near-perfect on this corpus and the
  // threshold only adds cost.)
  std::vector<const CorpusEntry *> Slice(
      Training.begin(),
      Training.begin() + std::min<std::size_t>(Training.size(), 46));
  std::fprintf(stderr, "[bench] training a weakened model on %zu matrices\n",
               Slice.size());
  TrainResult Weak = trainSmat<double>(Slice, benchTrainingOptions());
  LearningModel Base = Weak.Model;

  // Ground-truth best formats, measured once.
  TrainingOptions Measure = benchTrainingOptions();
  std::vector<FormatKind> Truth;
  Truth.reserve(Evaluation.size());
  for (const CorpusEntry *Entry : Evaluation)
    Truth.push_back(
        buildRecord<double>(*Entry, Base.Kernels, Measure).BestFormat);

  AsciiTable Table({"threshold", "accuracy", "measured frac",
                    "mean overhead (xCSR)"});
  for (double Threshold : {0.0, 0.5, 0.7, 0.8, 0.85, 0.9, 0.95, 0.999}) {
    LearningModel Model = Base;
    Model.ConfidenceThreshold = Threshold;
    const Smat<double> Tuner(Model);

    int Correct = 0, Measured = 0;
    std::vector<double> Overheads;
    for (std::size_t I = 0; I != Evaluation.size(); ++I) {
      TunedSpmv<double> Op = Tuner.tune(Evaluation[I]->Matrix);
      Correct += Op.format() == Truth[I] ? 1 : 0;
      Measured += Op.report().MeasuredGflops.empty() ? 0 : 1;
      Overheads.push_back(Op.report().overheadRatio());
    }
    Table.addRow(
        {formatString("%.3f", Threshold),
         formatString("%.1f%%", 100.0 * Correct /
                                    static_cast<double>(Evaluation.size())),
         formatString("%.1f%%", 100.0 * Measured /
                                    static_cast<double>(Evaluation.size())),
         formatString("%.1f", mean(Overheads))});
  }
  Table.print();

  std::printf("\nShape check: accuracy and overhead both rise with the\n"
              "threshold; the default (0.85) sits at the knee -- most of\n"
              "the accuracy for a small measured fraction.\n");
  return 0;
}
