//===- bench/tab3_accuracy_overhead.cpp - Paper Table 3 reproduction ------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Paper Table 3: "Analysis of SMAT" — per representative matrix: the model's
// prediction (or "confidence < TH"), which formats the execute-and-measure
// pass ran, SMAT's final format, the exhaustive-search best format, whether
// the model was right, and the tuning overhead in units of one CSR SpMV.
// The paper reports 92%/82% (SP/DP) accuracy on Intel over 331 matrices and
// overheads of ~2-5x (confident path) / ~16x (measured path).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>

using namespace smat;
using namespace smat::bench;

namespace {

template <typename T>
double heldOutAccuracy(const char *Precision) {
  LearningModel Model = getSharedModel<T>(Precision);
  const Smat<T> Tuner(Model);
  auto Corpus = buildCorpus(corpusScaleFromEnv());
  std::vector<const CorpusEntry *> Training, Evaluation;
  splitCorpus(Corpus, Training, Evaluation);

  TrainingOptions Measure = benchTrainingOptions();
  int Correct = 0, Total = 0;
  for (const CorpusEntry *Entry : Evaluation) {
    CsrMatrix<T> A = convertValueType<T>(Entry->Matrix);
    FeatureRecord Truth = buildRecord<T>(*Entry, Model.Kernels, Measure);
    TunedSpmv<T> Op = Tuner.tune(A);
    ++Total;
    Correct += Op.format() == Truth.BestFormat ? 1 : 0;
  }
  return Total ? 100.0 * Correct / Total : 0.0;
}

} // namespace

int main() {
  std::printf("=== Table 3: SMAT decision trace, accuracy, and overhead "
              "===\n\n");

  LearningModel Model = getSharedModel<double>("double");
  const Smat<double> Tuner(Model);
  TrainingOptions Measure = benchTrainingOptions();
  Measure.MeasureMinSeconds = 5e-3;

  auto Reps = representativeMatrices();
  AsciiTable Table({"#", "matrix", "model prediction", "execution",
                    "SMAT format", "best format", "acc", "overhead (xCSR)",
                    "break-even iters"});
  int Right = 0;
  for (std::size_t I = 0; I != Reps.size(); ++I) {
    const CorpusEntry &Entry = Reps[I];

    // Ground truth by exhaustive measurement (the paper's "Best Format").
    FeatureRecord Truth = buildRecord<double>(Entry, Model.Kernels, Measure);

    TunedSpmv<double> Op = Tuner.tune(Entry.Matrix);
    const TuningReport &Report = Op.report();

    // Amortization (the paper's acceptability argument: the overhead "is
    // acceptable when an application executes an SpMV kernel hundreds of
    // times"): iterations until tuning pays for itself against running
    // plain CSR forever.
    double TunedGflops = measureTunedGflops(Op, 2e-3);
    double TunedSeconds =
        2.0 * static_cast<double>(Entry.Matrix.nnz()) * 1e-9 /
        std::max(1e-12, TunedGflops);
    double PerIterGain = Report.CsrSpmvSeconds - TunedSeconds;
    std::string BreakEven =
        PerIterGain > 1e-12
            ? formatString("%.0f", Report.TuneSeconds / PerIterGain)
            : std::string("-");

    std::string Prediction =
        Report.ModelConfident
            ? std::string(formatName(Report.ModelPrediction))
            : std::string("confidence < TH");
    std::string Execution = "-";
    if (!Report.MeasuredGflops.empty()) {
      Execution.clear();
      for (const auto &[Kind, G] : Report.MeasuredGflops) {
        if (!Execution.empty())
          Execution += "+";
        Execution += formatName(Kind);
      }
    }
    bool Correct = Op.format() == Truth.BestFormat;
    Right += Correct ? 1 : 0;
    Table.addRow({formatString("%zu", I + 1), Entry.Name, Prediction,
                  Execution, std::string(formatName(Op.format())),
                  std::string(formatName(Truth.BestFormat)),
                  Correct ? "R" : "W",
                  formatString("%.2f", Report.overheadRatio()), BreakEven});
  }
  Table.print();
  std::printf("\n16-matrix accuracy: %d/16 (paper Table 3: 14/16 right, "
              "wrong only on CSR heavyweights)\n\n",
              Right);

  std::printf("Held-out accuracy (end-to-end SMAT decision vs measured "
              "best):\n");
  double Dp = heldOutAccuracy<double>("double");
  double Sp = heldOutAccuracy<float>("float");
  std::printf("  double precision: %.1f%%   (paper Intel DP: 82%%)\n", Dp);
  std::printf("  single precision: %.1f%%   (paper Intel SP: 92%%)\n", Sp);
  std::printf("\nShape check: confident predictions cost a few CSR-SpMVs\n"
              "(paper 2-5x); execute-and-measure paths cost more\n"
              "(paper ~16x) but stay far below exhaustive conversion search\n"
              "(paper: 40+x).\n");
  return 0;
}
