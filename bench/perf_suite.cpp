//===- bench/perf_suite.cpp - Perf-regression suite (CI gate) -------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The perf-regression suite behind the CI bench-smoke job: a pinned, seeded
// corpus slice (balanced FEM, skewed power-law, banded, rectangular) is run
// through eight roles per matrix --
//
//   basic          the strategy-free csr_basic kernel (the overhead unit),
//   reference      the best of the fixed-interface ref library's CSR/COO/DIA
//                  entry points (the MKL stand-in, as fig10 scores it),
//   tuned          the full Smat tune + bound operator,
//   spmv_x8        the k=1 tuned operator applied 8 times back to back
//                  (effective GFLOPS over the 8-column block),
//   basic_x8       the strategy-free basic CSR SpMM kernel over the same
//                  block (the untuned baseline of the batched tier),
//   spmm_tuned_k8  one width-8 batched tune + register-tiled multiply over
//                  the same block,
//   time_to_first_call
//                  the async tuning service's serve-from-call-1 latency:
//                  tune_ms is the wall time from submitting the matrix to
//                  tuneAsync until the FIRST SpMV call returns (the blocking
//                  path pays the full tune here), gflops the throughput of
//                  that single first call on the bootstrap basic-CSR plan,
//   crossover_ms   tune_ms is the wall time from submit until the background
//                  worker publishes the tuned plan (when the handle crosses
//                  over from basic CSR to the tuned operator), gflops the
//                  post-swap tuned throughput through the handle,
//
// -- each measured with the robust (min-of-k, spread-checked) timer, and the
// results are written as JSON in the stable schema consumed by
// scripts/bench_compare.py:
//
//   {"schema": "smat-bench-v1",
//    "results": [{"matrix", "role", "format", "kernel",
//                 "gflops", "tune_ms"[, "guardrail"]}, ...]}
//
// Tuned roles carry a "guardrail" key reporting whether the never-slower
// guardrail bound the untuned basic-CSR plan for that matrix.
//
// Flags: --smoke  tiny matrices + short samples (CI shared runners);
//        --out F  output path (default BENCH_PR8.json).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/TuningService.h"
#include "matrix/Generators.h"
#include "ref/RefSpmv.h"
#include "support/Timer.h"

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace smat;
using namespace smat::bench;

namespace {

struct SuiteCase {
  std::string Name;
  CsrMatrix<double> A;
};

/// The pinned corpus slice. Seeds are fixed so two runs of the same binary
/// measure identical structures; --smoke shrinks every case so the whole
/// suite finishes in seconds on a shared runner.
std::vector<SuiteCase> suiteCorpus(bool Smoke) {
  std::vector<SuiteCase> Cases;
  if (Smoke) {
    Cases.push_back({"fem_balanced", blockFem(40, 8, 2.0, 101)});
    Cases.push_back({"powerlaw_skew", powerLawGraph(2000, 1.9, 1, 400, 102)});
    Cases.push_back({"banded_diag", banded(4000, 3)});
    Cases.push_back({"rect_lp", lpRectangular(1500, 3000, 8, 103)});
  } else {
    Cases.push_back({"fem_balanced", blockFem(300, 24, 4.0, 101)});
    Cases.push_back({"powerlaw_skew", powerLawGraph(60000, 1.8, 1, 5000, 102)});
    Cases.push_back({"banded_diag", banded(120000, 6)});
    Cases.push_back({"rect_lp", lpRectangular(40000, 80000, 12, 103)});
  }
  for (SuiteCase &C : Cases)
    randomizeValues(C.A, 7);
  return Cases;
}

struct BenchRecord {
  std::string Matrix;
  std::string Role;
  std::string Format;
  std::string Kernel;
  double Gflops = 0.0;
  double TuneMs = 0.0;
  /// Tuned roles only: whether the never-slower guardrail bound the untuned
  /// basic-CSR plan. HasGuardrail gates JSON emission so untuned roles keep
  /// the pre-PR7 record shape.
  bool HasGuardrail = false;
  bool Guardrail = false;
};

/// Robust min-of-k GFLOPS of one y := A*x callable.
template <typename Fn>
double robustGflops(std::uint64_t Nnz, double MinSeconds, Fn &&RunOnce) {
  RobustMeasureOptions Opts;
  Opts.MinSeconds = MinSeconds;
  RobustMeasureResult M = robustMeasureSecondsPerCall(RunOnce, Opts);
  return spmvGflops(Nnz, M.SecondsPerCall);
}

void appendRoles(std::vector<BenchRecord> &Records, const Smat<double> &Tuner,
                 const SuiteCase &Case, double MinSeconds) {
  const CsrMatrix<double> &A = Case.A;
  std::uint64_t Nnz = static_cast<std::uint64_t>(A.nnz());
  AlignedVector<double> X(static_cast<std::size_t>(A.NumCols), 1.0);
  AlignedVector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = 0.01 * static_cast<double>(I % 100) - 0.5;

  // Role 1: the strategy-free basic CSR kernel.
  const KernelTable<double> &Kernels = kernelTable<double>();
  Records.push_back(
      {Case.Name, "basic", "CSR", Kernels.Csr[0].Name,
       robustGflops(Nnz, MinSeconds,
                    [&] { Kernels.Csr[0].Fn(A, X.data(), Y.data()); }),
       0.0});

  // Role 2: best of the fixed-interface reference library (MKL stand-in).
  {
    double Best = robustGflops(
        Nnz, MinSeconds, [&] { refCsrSpmv(A, X.data(), Y.data()); });
    std::string BestFmt = "CSR", BestKernel = "ref_csr";
    CooMatrix<double> Coo = csrToCoo(A);
    double CooG = robustGflops(Nnz, MinSeconds,
                               [&] { refCooSpmv(Coo, X.data(), Y.data()); });
    if (CooG > Best) {
      Best = CooG;
      BestFmt = "COO";
      BestKernel = "ref_coo";
    }
    DiaMatrix<double> Dia;
    if (csrToDia(A, Dia)) {
      double DiaG = robustGflops(Nnz, MinSeconds,
                                 [&] { refDiaSpmv(Dia, X.data(), Y.data()); });
      if (DiaG > Best) {
        Best = DiaG;
        BestFmt = "DIA";
        BestKernel = "ref_dia";
      }
    }
    Records.push_back({Case.Name, "reference", BestFmt, BestKernel, Best, 0.0});
  }

  // Role 3: the tuned operator, with the tune cost reported alongside so
  // bench_compare.py can flag tune-time blowups separately from kernel
  // regressions.
  TunedSpmv<double> Op = Tuner.tune(A);
  {
    double Gflops = robustGflops(Nnz, MinSeconds,
                                 [&] { Op.apply(X.data(), Y.data()); });
    Records.push_back({Case.Name, "tuned", std::string(formatName(Op.format())),
                       Op.kernelName(), Gflops,
                       Op.report().TuneSeconds * 1e3, true,
                       Op.report().GuardrailEngaged});
  }

  // Roles 4/5: the async tuning service. The matrix is copied up front and
  // moved into the service so the submit cost measured is the steady-state
  // O(1) handoff a caller who owns the matrix pays, not an incidental deep
  // copy. time_to_first_call is the serve-from-call-1 guarantee: submit plus
  // the first (bootstrap basic-CSR) SpMV, with that single call's throughput
  // as gflops. crossover_ms is the time until the background worker publishes
  // the tuned plan, with the post-swap tuned throughput as gflops.
  {
    TuningService<double> Service(Tuner);
    CsrMatrix<double> Owned = A;
    WallTimer SinceSubmit;
    AsyncSpmv<double> Async = Service.tuneAsync(std::move(Owned));
    WallTimer FirstCall;
    Async.apply(X.data(), Y.data());
    double FirstCallSecs = FirstCall.seconds();
    double TimeToFirstMs = SinceSubmit.seconds() * 1e3;
    Records.push_back({Case.Name, "time_to_first_call",
                       std::string(formatName(Async.format())),
                       Async.report().KernelName,
                       spmvGflops(Nnz, FirstCallSecs), TimeToFirstMs});

    if (!Async.waitTuned(/*TimeoutSeconds=*/600.0))
      std::fprintf(stderr, "perf_suite: %s: async tune did not finish: %s\n",
                   Case.Name.c_str(), Async.error().c_str());
    double CrossoverMs = SinceSubmit.seconds() * 1e3;
    Records.push_back({Case.Name, "crossover_ms",
                       std::string(formatName(Async.format())),
                       Async.report().KernelName,
                       robustGflops(Nnz, MinSeconds,
                                    [&] { Async.apply(X.data(), Y.data()); }),
                       CrossoverMs, true, Async.report().GuardrailEngaged});
  }

  // Roles 6/7: the batched tier at k = 8. Both roles report effective GFLOPS
  // over the full block (2 * nnz * k flops), so the pair is directly
  // comparable: spmv_x8 sweeps the k=1 tuned operator over the columns of the
  // block (what a caller without the SpMM tier would do), spmm_tuned_k8 is one
  // width-8 tune applied with the register-tiled multiply.
  {
    constexpr index_t K = 8;
    std::uint64_t BlockNnz = Nnz * static_cast<std::uint64_t>(K);
    AlignedVector<double> Xb(static_cast<std::size_t>(A.NumCols) * K);
    AlignedVector<double> Yb(static_cast<std::size_t>(A.NumRows) * K, 0.0);
    for (std::size_t I = 0; I != Xb.size(); ++I)
      Xb[I] = 0.01 * static_cast<double>(I % 100) - 0.5;
    // Columns are pre-extracted so the loop baseline times pure SpMV work --
    // the strictest comparison (a real caller would also pay the gather).
    std::vector<AlignedVector<double>> Cols(
        K, AlignedVector<double>(static_cast<std::size_t>(A.NumCols)));
    for (index_t J = 0; J < K; ++J)
      for (index_t R = 0; R < A.NumCols; ++R)
        Cols[static_cast<std::size_t>(J)][static_cast<std::size_t>(R)] =
            Xb[static_cast<std::size_t>(R) * K + static_cast<std::size_t>(J)];
    AlignedVector<double> ColY(static_cast<std::size_t>(A.NumRows));

    double LoopG = robustGflops(BlockNnz, MinSeconds, [&] {
      for (index_t J = 0; J < K; ++J)
        Op.apply(Cols[static_cast<std::size_t>(J)].data(), ColY.data());
    });
    Records.push_back({Case.Name, "spmv_x8",
                       std::string(formatName(Op.format())), Op.kernelName(),
                       LoopG, 0.0});

    // The batched tier's untuned baseline: the strategy-free basic CSR SpMM
    // kernel over the same block, so the never-slower gate has a like-units
    // anchor for spmm_tuned_k8.
    double BasicSpmmG = robustGflops(BlockNnz, MinSeconds, [&] {
      Kernels.CsrSpmm[0].Fn(A, Xb.data(), Yb.data(), K);
    });
    Records.push_back({Case.Name, "basic_x8", "CSR", Kernels.CsrSpmm[0].Name,
                       BasicSpmmG, 0.0});

    TunedSpmv<double> Op8 = SMAT_dCSR_SpMM(Tuner, A, K);
    double SpmmG = robustGflops(
        BlockNnz, MinSeconds, [&] { Op8.multiply(Xb.data(), Yb.data(), K); });
    Records.push_back({Case.Name, "spmm_tuned_k8",
                       std::string(formatName(Op8.format())),
                       Op8.spmmKernelName(), SpmmG,
                       Op8.report().TuneSeconds * 1e3, true,
                       Op8.report().GuardrailEngaged});
  }
}

void writeJson(const std::string &Path, const std::vector<BenchRecord> &Records,
               bool Smoke) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "perf_suite: cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  Out << "{\n  \"schema\": \"smat-bench-v1\",\n";
  Out << "  \"mode\": \"" << (Smoke ? "smoke" : "full") << "\",\n";
  Out << "  \"results\": [\n";
  for (std::size_t I = 0; I != Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    std::string Extra =
        R.HasGuardrail
            ? formatString(", \"guardrail\": %s", R.Guardrail ? "true" : "false")
            : std::string();
    Out << formatString("    {\"matrix\": \"%s\", \"role\": \"%s\", "
                        "\"format\": \"%s\", \"kernel\": \"%s\", "
                        "\"gflops\": %.6f, \"tune_ms\": %.6f%s}%s\n",
                        R.Matrix.c_str(), R.Role.c_str(), R.Format.c_str(),
                        R.Kernel.c_str(), R.Gflops, R.TuneMs, Extra.c_str(),
                        I + 1 == Records.size() ? "" : ",");
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_PR8.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: perf_suite [--smoke] [--out FILE]\n");
      return 2;
    }
  }

  std::printf("=== perf suite (%s) ===\n", Smoke ? "smoke" : "full");
  LearningModel Model = getSharedModel<double>("double");
  const Smat<double> Tuner(Model);
  double MinSeconds = Smoke ? 2e-3 : 2e-2;

  std::vector<BenchRecord> Records;
  AsciiTable Table({"matrix", "role", "format", "kernel", "GFLOPS", "tune ms"});
  for (const SuiteCase &Case : suiteCorpus(Smoke)) {
    std::size_t First = Records.size();
    appendRoles(Records, Tuner, Case, MinSeconds);
    for (std::size_t I = First; I != Records.size(); ++I)
      Table.addRow({Records[I].Matrix, Records[I].Role, Records[I].Format,
                    Records[I].Kernel, formatString("%.3f", Records[I].Gflops),
                    formatString("%.3f", Records[I].TuneMs)});
  }
  Table.print();

  writeJson(OutPath, Records, Smoke);
  std::printf("wrote %s (%zu records)\n", OutPath.c_str(), Records.size());
  return 0;
}
