//===- bench/tab4_amg_solve.cpp - Paper Table 4 reproduction --------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Paper Table 4: "SMAT-based AMG execution time" — the Hypre AMG solve
// phase with the stock always-CSR SpMV vs the same solve with SMAT-tuned
// kernels swapped in per operator:
//
//   coarsen   input              rows   Hypre AMG  SMAT AMG  speedup
//   cljp      7pt Laplacian 50^3 125K   3034 ms    2487 ms   1.22x
//   rugeL     9pt Laplacian 500^2 250K  388 ms     300 ms    1.29x
//
// We rebuild both rows with our AMG on the same inputs. SMAT chooses DIA
// for the fine-level A-operators and ELL for most P-operators, exactly the
// behaviour the paper describes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "amg/AmgSolver.h"
#include "matrix/Generators.h"

using namespace smat;
using namespace smat::bench;

namespace {

struct CaseSpec {
  const char *Name;
  CoarsenKind Coarsening;
  CsrMatrix<double> A;
  double PaperSpeedup;
};

void runCase(const CaseSpec &Case, const Smat<double> &Tuner,
             AsciiTable &Table) {
  std::vector<double> B(static_cast<std::size_t>(Case.A.NumRows), 1.0);

  AmgOptions Opts;
  Opts.Hierarchy.Coarsening = Case.Coarsening;
  Opts.RelTol = 1e-8;
  Opts.MaxIterations = 100;
  Opts.PreSweeps = 2;
  Opts.PostSweeps = 2;

  // AMG-preconditioned CG, as in Hypre ("AMG is used as a preconditioner
  // such as conjugate gradients", paper Section 7.1). Each backend gets a
  // warm-up solve so first-touch page faults don't pollute the timing.

  // Fixed-CSR (Hypre-style) backend.
  AmgSolver Fixed;
  Opts.Backend = SpmvBackendKind::FixedCsr;
  Fixed.setup(Case.A, Opts);
  std::vector<double> XFixed;
  Fixed.solvePcg(B, XFixed);
  XFixed.clear();
  SolveStats FixedStats = Fixed.solvePcg(B, XFixed);

  // SMAT backend.
  AmgSolver Tuned;
  Opts.Backend = SpmvBackendKind::Smat;
  Opts.Tuner = &Tuner;
  Tuned.setup(Case.A, Opts);
  std::vector<double> XTuned;
  Tuned.solvePcg(B, XTuned);
  XTuned.clear();
  SolveStats TunedStats = Tuned.solvePcg(B, XTuned);

  double Speedup = TunedStats.SolveSeconds > 0
                       ? FixedStats.SolveSeconds / TunedStats.SolveSeconds
                       : 0.0;
  Table.addRow({Case.Name, formatString("%d", Case.A.NumRows),
                formatString("%d", FixedStats.Iterations),
                formatString("%.0f", FixedStats.SolveSeconds * 1e3),
                formatString("%.0f", TunedStats.SolveSeconds * 1e3),
                formatString("%.2fx", Speedup),
                formatString("%.2fx", Case.PaperSpeedup)});

  // Per-operator decisions of the tuned solver (the paper: "SMAT chooses
  // DIA format for A-operators at the first few levels, and ELL format for
  // most P-operators").
  std::printf("  %s per-operator choices:", Case.Name);
  for (const LevelFormatInfo &D : Tuned.formatDecisions())
    std::printf(" L%zu.%s=%s", D.Level, D.Operator.c_str(),
                std::string(formatName(D.Format)).c_str());
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("=== Table 4: AMG solve time, fixed-CSR vs SMAT backend "
              "===\n\n");

  LearningModel Model = getSharedModel<double>("double");
  const Smat<double> Tuner(Model);

  // The paper's grid sizes (125K and 250K rows). Override with SMAT_SMALL=1
  // for a quicker run.
  bool SmallRun = std::getenv("SMAT_SMALL") != nullptr;
  index_t Cube = SmallRun ? 30 : 50;
  index_t Square = SmallRun ? 300 : 500;

  std::vector<CaseSpec> Cases;
  Cases.push_back({"cljp_7pt", CoarsenKind::Cljp,
                   laplace3d7pt(Cube, Cube, Cube), 1.22});
  Cases.push_back({"rugeL_9pt", CoarsenKind::RugeL,
                   laplace2d9pt(Square, Square), 1.29});

  AsciiTable Table({"case", "rows", "iters", "fixed-CSR (ms)", "SMAT (ms)",
                    "speedup", "paper"});
  for (const CaseSpec &Case : Cases)
    runCase(Case, Tuner, Table);
  std::printf("\n");
  Table.print();

  std::printf("\nShape check: same iteration count for both backends (the\n"
              "numerics are identical); SMAT's solve phase is faster because\n"
              "fine-level stencil operators run in DIA/ELL instead of CSR.\n"
              "Paper speedups: 1.22x (cljp 7pt) and 1.29x (rugeL 9pt) on a\n"
              "12-core Xeon, where CSR's index gathers scale worse than\n"
              "DIA's streams; a single-core memory system narrows the gap\n"
              "(see EXPERIMENTS.md).\n");
  return 0;
}
