//===- bench/fig3_format_variance.cpp - Paper Figure 3 reproduction -------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 3: "Performance variance among different storage formats for
// 16 representative matrices" — GFLOPS of CSR/COO/DIA/ELL per matrix, with
// a largest gap of about 6x. Matrices 1-4 are DIA-affine, 5-8 ELL-affine,
// 9-12 CSR-affine, 13-16 COO-affine (paper Figure 8 ordering).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "matrix/Corpus.h"

#include <algorithm>

using namespace smat;
using namespace smat::bench;

int main() {
  std::printf("=== Figure 3: format performance variance, 16 representative "
              "matrices ===\n\n");

  LearningModel Model = getSharedModel<double>("double");
  TrainingOptions Measure = benchTrainingOptions();
  Measure.MeasureMinSeconds = 5e-3;

  auto Reps = representativeMatrices();
  AsciiTable Table({"#", "matrix", "rows", "nnz", "CSR", "COO", "DIA", "ELL",
                    "best", "gap"});
  double LargestGap = 0.0;
  for (std::size_t I = 0; I != Reps.size(); ++I) {
    const CorpusEntry &Entry = Reps[I];
    auto Gflops = measureAllFormats(Entry.Matrix, Model.Kernels, Measure);
    double Best = 0, Worst = 1e300;
    int BestIdx = 0;
    for (int K = 0; K < NumFormats; ++K) {
      double G = Gflops[static_cast<std::size_t>(K)];
      if (G < 0)
        continue; // Inadmissible format: excluded from the gap, as in the
                  // paper's figure (formats that can't hold the matrix).
      if (G > Best) {
        Best = G;
        BestIdx = K;
      }
      Worst = std::min(Worst, G);
    }
    double Gap = Worst > 0 ? Best / Worst : 0;
    LargestGap = std::max(LargestGap, Gap);
    Table.addRow(
        {formatString("%zu", I + 1), Entry.Name,
         formatString("%d", Entry.Matrix.NumRows),
         formatString("%lld", static_cast<long long>(Entry.Matrix.nnz())),
         gflopsCell(Gflops[0]), gflopsCell(Gflops[1]), gflopsCell(Gflops[2]),
         gflopsCell(Gflops[3]),
         std::string(formatName(static_cast<FormatKind>(BestIdx))),
         formatString("%.2fx", Gap)});
  }
  Table.print();

  std::printf("\nLargest admissible-format gap measured: %.2fx "
              "(paper: about 6x).\n",
              LargestGap);
  std::printf("Shape check: groups 1-4 / 5-8 / 9-12 / 13-16 should lean\n"
              "DIA / ELL / CSR / COO respectively.\n");
  return 0;
}
