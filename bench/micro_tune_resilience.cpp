//===- bench/micro_tune_resilience.cpp - Tuning under injected faults -----===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures what resilience costs and what it buys: tuning latency and
// degradation rates for an always-measure deployment under injected fault
// probabilities of 0%, 1%, and 10% per hook invocation, plus a budgeted row
// (TuneBudgetSeconds) showing the watchdog bounding worst-case latency.
// Every tuned operator is validated against the CSR reference kernel — the
// resilience contract is "degrade, never corrupt", and the "spmv ok" column
// is that contract measured.
//
// The fault rows need the hooks compiled in; in a default build they are
// skipped with a note (rebuild with -DSMAT_FAULT_INJECTION=ON).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "matrix/Generators.h"
#include "ref/RefSpmv.h"
#include "support/FaultInjection.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace smat;
using namespace smat::bench;

namespace {

/// The always-measure deployment: no rule clears a threshold above 1, so
/// every tune pays the full execute-and-measure pipeline — the most fault
/// surface a tune can have.
LearningModel strictModel() {
  LearningModel Model;
  Model.ConfidenceThreshold = 2.0;
  Model.refreshRuleMetadata();
  return Model;
}

std::vector<CsrMatrix<double>> buildInputs() {
  std::vector<CsrMatrix<double>> Inputs;
  Inputs.push_back(banded(2000, 3));
  Inputs.push_back(laplace2d5pt(40, 40));
  Inputs.push_back(powerLawGraph(1200, 2.0, 1, 80, 17));
  Inputs.push_back(boundedDegreeRandom(1500, 1500, 4, 8, 23));
  return Inputs;
}

bool spmvMatchesReference(const TunedSpmv<double> &Op,
                          const CsrMatrix<double> &A) {
  std::vector<double> X(static_cast<std::size_t>(A.NumCols));
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = 0.01 * static_cast<double>(I % 100) - 0.5;
  std::vector<double> Y(static_cast<std::size_t>(A.NumRows), 0.0);
  std::vector<double> Ref(static_cast<std::size_t>(A.NumRows), 0.0);
  Op.apply(X.data(), Y.data());
  refCsrSpmv(A, X.data(), Ref.data());
  for (std::size_t I = 0; I != Ref.size(); ++I)
    if (std::abs(Ref[I] - Y[I]) > 1e-9 * std::max(1.0, std::abs(Ref[I])))
      return false;
  return true;
}

void runRow(AsciiTable &Table, const std::string &Config, double Probability,
            const TuneOptions &Opts, int Reps) {
  if (Probability > 0.0) {
    fault::FaultConfig Cfg;
    Cfg.Seed = 1234;
    Cfg.Probability = Probability;
    fault::configure(Cfg);
  } else {
    fault::reset();
  }

  // A fresh tuner per row so the resilience counters are the row's own.
  Smat<double> Tuner(strictModel());
  auto Inputs = buildInputs();

  double TotalSeconds = 0.0, MaxSeconds = 0.0;
  std::uint64_t Tunes = 0, SpmvOk = 0;
  for (int Rep = 0; Rep != Reps; ++Rep)
    for (const CsrMatrix<double> &A : Inputs) {
      WallTimer Timer;
      auto Result = Tuner.tryTune(A, Opts);
      double Seconds = Timer.seconds();
      TotalSeconds += Seconds;
      MaxSeconds = std::max(MaxSeconds, Seconds);
      ++Tunes;
      if (Result.ok() && spmvMatchesReference(*Result, A))
        ++SpmvOk;
    }
  fault::reset();

  SmatResilienceCounters C = Tuner.resilienceCounters();
  auto Pct = [&](std::uint64_t Count) {
    return formatString("%.0f%%", 100.0 * static_cast<double>(Count) /
                                      static_cast<double>(Tunes));
  };
  Table.addRow({Config, formatString("%.0f%%", 100.0 * Probability),
                formatString("%llu", static_cast<unsigned long long>(Tunes)),
                formatString("%.2f", 1e3 * TotalSeconds /
                                         static_cast<double>(Tunes)),
                formatString("%.2f", 1e3 * MaxSeconds),
                formatString("%.2f", static_cast<double>(C.CandidatesDropped) /
                                         static_cast<double>(Tunes)),
                Pct(C.BasicKernelFallbacks), Pct(C.ReferenceFallbacks),
                Pct(C.NoisyTunes), Pct(C.BudgetExhaustedTunes),
                formatString("%llu/%llu",
                             static_cast<unsigned long long>(SpmvOk),
                             static_cast<unsigned long long>(Tunes))});
}

} // namespace

int main() {
  std::printf("=== Tuning resilience micro-benchmark: latency and "
              "degradation under injected faults ===\n\n");
  std::printf("always-measure model; %s build\n\n",
              fault::CompiledIn ? "fault-injection"
                                : "default (fault rows skipped; rebuild with "
                                  "-DSMAT_FAULT_INJECTION=ON)");

  TuneOptions Opts;
  Opts.MeasureMinSeconds = 1e-3;
  const int Reps = 3;

  AsciiTable Table({"config", "p(fault)", "tunes", "mean ms", "max ms",
                    "drops/tune", "basic", "reference", "noisy", "budget",
                    "spmv ok"});

  runRow(Table, "baseline", 0.0, Opts, Reps);
  if (fault::CompiledIn) {
    runRow(Table, "faults", 0.01, Opts, Reps);
    runRow(Table, "faults", 0.10, Opts, Reps);
  }

  // The watchdog row: a whole-tune budget an order of magnitude below the
  // unbudgeted mean. "max ms" is the claim under test — a tune finishes
  // within roughly 2x the budget no matter what fires.
  TuneOptions Budgeted = Opts;
  Budgeted.MeasureMinSeconds = 5e-3;
  Budgeted.TuneBudgetSeconds = 0.01;
  runRow(Table, "budget 10ms", 0.0, Budgeted, Reps);
  if (fault::CompiledIn)
    runRow(Table, "budget 10ms", 0.10, Budgeted, Reps);

  Table.print();
  std::printf("\ncolumns: drops/tune = dropped candidates per tune; basic/"
              "reference = degradation-ladder rung rates; spmv ok = tuned "
              "operators matching the CSR reference kernel.\n");
  return 0;
}
