//===- bench/micro_plan_cache.cpp - Cold vs warm tuning latency -----------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the feature-fingerprint PlanCache buys a workload that tunes
// many structurally similar matrices (a parameter sweep, a time-stepping
// refinement loop, an AMG hierarchy): per-family cold tuning latency
// (no cache), warm latency (every lookup hits), the resulting speedup, and
// the tuning overhead in the paper's "times of one CSR SpMV" unit.
//
// Two deployment regimes are measured, because they differ by an order of
// magnitude in what the cache can save:
//   confident — the trained model as-is; most predictions clear the
//               confidence threshold, so a cold tune costs features +
//               prediction + the overhead-baseline run. The cache saves the
//               baseline run: a modest win.
//   measured  — the threshold raised above every rule's confidence (the
//               paper's low-threshold ablation regime, i.e. a deployment
//               that demands empirical validation): every cold tune pays
//               the execute-and-measure fallback. The cache saves the whole
//               measurement pass: the order-of-magnitude win it exists for.
//
// The decision itself must not drift: a warm tune binds the format the cold
// tune inserted for that fingerprint class.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/PlanCache.h"
#include "matrix/Generators.h"

#include <vector>

using namespace smat;
using namespace smat::bench;

namespace {

struct Family {
  std::string Name;
  std::vector<CsrMatrix<double>> Instances;
};

/// Structurally homogeneous families: instances differ in exact size and
/// seed but stay inside one fingerprint equivalence class (sizes span less
/// than one log2 bucket).
std::vector<Family> buildFamilies() {
  std::vector<Family> Families;
  const int K = 6;

  Family Banded{"banded", {}};
  for (int I = 0; I < K; ++I)
    Banded.Instances.push_back(banded(3000 + 120 * I, 4));
  Families.push_back(std::move(Banded));

  Family Stencil{"2d_stencil", {}};
  for (int I = 0; I < K; ++I)
    Stencil.Instances.push_back(laplace2d5pt(52 + I, 52 + I));
  Families.push_back(std::move(Stencil));

  Family Graph{"power_law", {}};
  for (int I = 0; I < K; ++I)
    Graph.Instances.push_back(powerLawGraph(
        3000 + 120 * I, 2.0, 1, 100, static_cast<std::uint64_t>(1000 + I)));
  Families.push_back(std::move(Graph));

  Family Random{"bounded_random", {}};
  for (int I = 0; I < K; ++I)
    Random.Instances.push_back(
        boundedDegreeRandom(3000 + 120 * I, 3000 + 120 * I, 4, 8,
                            static_cast<std::uint64_t>(2000 + I)));
  Families.push_back(std::move(Random));

  return Families;
}

struct ScenarioTotals {
  double Cold = 0.0;
  double Warm = 0.0;
};

ScenarioTotals runScenario(const char *Scenario, const Smat<double> &Tuner,
                           std::vector<Family> &Families, AsciiTable &Table) {
  ScenarioTotals Totals;
  for (Family &F : Families) {
    std::size_t N = F.Instances.size();

    // Cold: every matrix pays the full pipeline (no cache).
    std::vector<FormatKind> ColdFormats;
    double ColdSeconds = 0.0, ColdOverhead = 0.0;
    for (const CsrMatrix<double> &A : F.Instances) {
      WallTimer Timer;
      TunedSpmv<double> Op = Tuner.tune(A);
      ColdSeconds += Timer.seconds();
      ColdOverhead += Op.report().overheadRatio();
      ColdFormats.push_back(Op.format());
    }

    // Populate (untimed): one shared cache sees every instance once. Later
    // instances may already transfer the plan of an earlier structural twin;
    // that rate is reported as "transfer".
    PlanCache Cache;
    TuneOptions Opts;
    Opts.Cache = &Cache;
    for (const CsrMatrix<double> &A : F.Instances)
      (void)Tuner.tune(A, Opts);
    double TransferRate = static_cast<double>(Cache.stats().Hits) / N;
    std::uint64_t HitsBefore = Cache.stats().Hits;

    // Warm: re-tuning the same workload; every fingerprint is now resident.
    double WarmSeconds = 0.0, WarmOverhead = 0.0;
    std::size_t FormatMatches = 0;
    for (std::size_t I = 0; I != N; ++I) {
      WallTimer Timer;
      TunedSpmv<double> Op = Tuner.tune(F.Instances[I], Opts);
      WarmSeconds += Timer.seconds();
      WarmOverhead += Op.report().overheadRatio();
      FormatMatches += Op.format() == ColdFormats[I] ? 1 : 0;
    }
    double HitRate =
        static_cast<double>(Cache.stats().Hits - HitsBefore) / N;

    Totals.Cold += ColdSeconds;
    Totals.Warm += WarmSeconds;
    Table.addRow(
        {Scenario, F.Name, formatString("%zu", N),
         formatString("%.3f", 1e3 * ColdSeconds / N),
         formatString("%.3f", 1e3 * WarmSeconds / N),
         formatString("%.1fx", ColdSeconds / std::max(1e-12, WarmSeconds)),
         formatString("%.1f", ColdOverhead / N),
         formatString("%.2f", WarmOverhead / N),
         formatString("%.0f%%", 100.0 * HitRate),
         formatString("%.0f%%", 100.0 * TransferRate),
         formatString("%zu/%zu", FormatMatches, N)});
  }
  return Totals;
}

} // namespace

int main() {
  std::printf("=== PlanCache micro-benchmark: cold vs warm tune latency "
              "===\n\n");

  LearningModel Model = getSharedModel<double>("double");
  const Smat<double> Confident(Model);

  // The always-measure deployment: no rule clears a threshold above 1, so
  // every cold tune runs the execute-and-measure fallback.
  LearningModel StrictModel = Model;
  StrictModel.ConfidenceThreshold = 2.0;
  const Smat<double> Measured(StrictModel);

  auto Families = buildFamilies();
  AsciiTable Table({"scenario", "family", "n", "cold ms", "warm ms",
                    "speedup", "cold xCSR", "warm xCSR", "hit rate",
                    "transfer", "fmt match"});
  ScenarioTotals ConfidentTotals =
      runScenario("confident", Confident, Families, Table);
  ScenarioTotals MeasuredTotals =
      runScenario("measured", Measured, Families, Table);
  Table.print();

  double ConfidentSpeedup =
      ConfidentTotals.Cold / std::max(1e-12, ConfidentTotals.Warm);
  double MeasuredSpeedup =
      MeasuredTotals.Cold / std::max(1e-12, MeasuredTotals.Warm);
  std::printf("\nwarm-vs-cold tuning speedup, confident path: %.1fx "
              "(cache skips the baseline run)\n",
              ConfidentSpeedup);
  std::printf("warm-vs-cold tuning speedup, measured path:  %.1fx "
              "(cache skips execute-and-measure)\n",
              MeasuredSpeedup);
  std::printf("\nShape check: warm tunes run only feature extraction and the\n"
              "format bind, so warm overhead sits well under one CSR SpMV\n"
              "equivalent, against the paper's 2-5x (confident) and ~16x\n"
              "(measured) cold overheads; the measured-path speedup should\n"
              "exceed 10x. A fmt-match below n/n only appears where the\n"
              "uncached execute-and-measure pass itself flips between\n"
              "near-tied candidates (e.g. CSR vs COO on power-law graphs);\n"
              "the cache pins one of the tied winners.\n");
  return 0;
}
