//===- bench/micro_kernel_library.cpp - Kernel-variant microbenchmarks ----===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Google-benchmark sweep over every implementation in the kernel library on
// format-friendly probe matrices: the raw performance-record table the
// scoreboard search (paper Section 5.2) consumes. Also prints the
// scoreboard's strategy scores and selections after the timed runs.
//
//===----------------------------------------------------------------------===//

#include "kernels/Scoreboard.h"
#include "matrix/FormatConvert.h"
#include "matrix/Generators.h"
#include "support/AlignedAlloc.h"

#include <benchmark/benchmark.h>

using namespace smat;

namespace {

struct Probes {
  CsrMatrix<double> Csr = blockFem(120, 24, 4.0, 42);
  CooMatrix<double> Coo;
  DiaMatrix<double> Dia;
  EllMatrix<double> Ell;
  BsrMatrix<double> Bsr;
  AlignedVector<double> X, Y;

  Probes() {
    Coo = csrToCoo(powerLawGraph(20000, 2.2, 1, 64, 43));
    bool DiaOk = csrToDia(banded(30000, 4), Dia);
    bool EllOk = csrToEll(boundedDegreeRandom(20000, 20000, 6, 6, 44), Ell);
    bool BsrOk = csrToBsr(blockFem(1500, 4, 0.0, 45), Bsr, 4);
    (void)DiaOk;
    (void)EllOk;
    (void)BsrOk;
    std::size_t MaxCols = 30000, MaxRows = 30000;
    X.assign(MaxCols, 0.5);
    Y.assign(MaxRows, 0.0);
  }
};

Probes &probes() {
  static Probes P;
  return P;
}

template <typename MatrixT, typename FnT>
void runKernelBench(benchmark::State &State, const MatrixT &A, FnT Fn) {
  Probes &P = probes();
  for (auto _ : State) {
    Fn(A, P.X.data(), P.Y.data());
    benchmark::DoNotOptimize(P.Y.data());
  }
  State.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(A.nnz()) *
          static_cast<double>(State.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void registerAll() {
  Probes &P = probes();
  const KernelTable<double> &Kernels = kernelTable<double>();
  for (const auto &K : Kernels.Csr)
    benchmark::RegisterBenchmark(
        (std::string("csr/") + K.Name).c_str(),
        [&P, Fn = K.Fn](benchmark::State &S) { runKernelBench(S, P.Csr, Fn); });
  for (const auto &K : Kernels.Coo)
    benchmark::RegisterBenchmark(
        (std::string("coo/") + K.Name).c_str(),
        [&P, Fn = K.Fn](benchmark::State &S) { runKernelBench(S, P.Coo, Fn); });
  for (const auto &K : Kernels.Dia)
    benchmark::RegisterBenchmark(
        (std::string("dia/") + K.Name).c_str(),
        [&P, Fn = K.Fn](benchmark::State &S) { runKernelBench(S, P.Dia, Fn); });
  for (const auto &K : Kernels.Ell)
    benchmark::RegisterBenchmark(
        (std::string("ell/") + K.Name).c_str(),
        [&P, Fn = K.Fn](benchmark::State &S) { runKernelBench(S, P.Ell, Fn); });
  for (const auto &K : Kernels.Bsr)
    benchmark::RegisterBenchmark(
        (std::string("bsr/") + K.Name).c_str(),
        [&P, Fn = K.Fn](benchmark::State &S) { runKernelBench(S, P.Bsr, Fn); });
}

void printScoreboard() {
  std::printf("\n=== Scoreboard search result (paper Section 5.2) ===\n");
  KernelSelection Selection = searchOptimalKernels<double>(2e-3);
  for (int K = 0; K < NumFormats; ++K)
    std::printf("  %s -> %s (index %d)\n",
                std::string(formatName(static_cast<FormatKind>(K))).c_str(),
                Selection.BestKernelName[static_cast<std::size_t>(K)].c_str(),
                Selection.BestKernel[static_cast<std::size_t>(K)]);
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printScoreboard();
  return 0;
}
