//===- bench/fig6_param_distribution.cpp - Paper Figure 6 reproduction ----===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 6: "The distribution of the beneficial matrices with
// different parameter values" — for each feature parameter, the histogram
// of matrices that benefit from the corresponding format (DIA or ELL, and R
// for COO) across parameter-value intervals. The paper reads five rules off
// these plots:
//   (a) small Ndiags / small max_RD  -> good for DIA / ELL
//   (b) large ER_DIA / ER_ELL        -> good for DIA / ELL
//   (c) large NTdiags_ratio          -> good for DIA (crisper than ER_DIA)
//   (d) small var_RD                 -> good for ELL
//   (e) R in [1, 4]                  -> good for COO
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "features/FeatureExtractor.h"

#include <functional>
#include <vector>

using namespace smat;
using namespace smat::bench;

namespace {

struct IntervalSpec {
  const char *Label;
  std::function<bool(double)> Contains;
};

void printHistogram(const char *Title, const FeatureDatabase &Db,
                    FormatKind Beneficiary,
                    const std::function<double(const FeatureVector &)> &Get,
                    const std::vector<IntervalSpec> &Intervals) {
  std::vector<std::size_t> Counts(Intervals.size(), 0);
  std::size_t Total = 0;
  for (const FeatureRecord &R : Db.Records) {
    if (R.BestFormat != Beneficiary)
      continue;
    ++Total;
    double V = Get(R.Features);
    for (std::size_t I = 0; I != Intervals.size(); ++I)
      if (Intervals[I].Contains(V)) {
        ++Counts[I];
        break;
      }
  }
  std::printf("%s (beneficial = best format is %s; %zu matrices)\n", Title,
              std::string(formatName(Beneficiary)).c_str(), Total);
  for (std::size_t I = 0; I != Intervals.size(); ++I) {
    double Pct = Total ? 100.0 * static_cast<double>(Counts[I]) /
                             static_cast<double>(Total)
                       : 0.0;
    std::printf("  %-12s %5.1f%%  ", Intervals[I].Label, Pct);
    int Bars = static_cast<int>(Pct / 2.0);
    for (int B = 0; B < Bars; ++B)
      std::printf("#");
    std::printf("\n");
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("=== Figure 6: distribution of beneficial matrices vs "
              "parameter intervals ===\n\n");

  FeatureDatabase Db = getSharedDatabase<double>("double");

  auto Lt = [](double Hi) {
    return [Hi](double V) { return V < Hi; };
  };
  auto Between = [](double Lo, double Hi) {
    return [Lo, Hi](double V) { return V >= Lo && V < Hi; };
  };
  auto Ge = [](double Lo) {
    return [Lo](double V) { return V >= Lo; };
  };

  // (a) Ndiags for DIA, max_RD for ELL.
  printHistogram("(a1) Ndiags intervals", Db, FormatKind::DIA,
                 [](const FeatureVector &F) { return F.Ndiags; },
                 {{"[0,16)", Lt(16)},
                  {"[16,64)", Between(16, 64)},
                  {"[64,256)", Between(64, 256)},
                  {">=256", Ge(256)}});
  printHistogram("(a2) max_RD intervals", Db, FormatKind::ELL,
                 [](const FeatureVector &F) { return F.MaxRd; },
                 {{"[0,8)", Lt(8)},
                  {"[8,32)", Between(8, 32)},
                  {"[32,128)", Between(32, 128)},
                  {">=128", Ge(128)}});

  // (b) Fill-efficiency ratios.
  printHistogram("(b1) ER_DIA intervals", Db, FormatKind::DIA,
                 [](const FeatureVector &F) { return F.ErDia; },
                 {{"[0,0.25)", Lt(0.25)},
                  {"[0.25,0.5)", Between(0.25, 0.5)},
                  {"[0.5,0.75)", Between(0.5, 0.75)},
                  {">=0.75", Ge(0.75)}});
  printHistogram("(b2) ER_ELL intervals", Db, FormatKind::ELL,
                 [](const FeatureVector &F) { return F.ErEll; },
                 {{"[0,0.25)", Lt(0.25)},
                  {"[0.25,0.5)", Between(0.25, 0.5)},
                  {"[0.5,0.75)", Between(0.5, 0.75)},
                  {">=0.75", Ge(0.75)}});

  // (c) True-diagonal ratio for DIA.
  printHistogram("(c) NTdiags_ratio intervals", Db, FormatKind::DIA,
                 [](const FeatureVector &F) { return F.NTdiagsRatio; },
                 {{"[0,0.25)", Lt(0.25)},
                  {"[0.25,0.5)", Between(0.25, 0.5)},
                  {"[0.5,0.75)", Between(0.5, 0.75)},
                  {">=0.75", Ge(0.75)}});

  // (d) Row-degree variance for ELL.
  printHistogram("(d) var_RD intervals", Db, FormatKind::ELL,
                 [](const FeatureVector &F) { return F.VarRd; },
                 {{"[0,0.5)", Lt(0.5)},
                  {"[0.5,2)", Between(0.5, 2)},
                  {"[2,10)", Between(2, 10)},
                  {">=10", Ge(10)}});

  // (e) Power-law exponent for COO.
  printHistogram("(e) R intervals", Db, FormatKind::COO,
                 [](const FeatureVector &F) { return F.R; },
                 {{"[0,1)", Lt(1)},
                  {"[1,4)", Between(1, 4)},
                  {"[4,inf)", Between(4, FeatureInf)},
                  {"undefined", Ge(FeatureInf)}});

  std::printf("Shape check vs paper: DIA mass at small Ndiags and large\n"
              "NTdiags_ratio/ER_DIA; ELL mass at small max_RD/var_RD and\n"
              "large ER_ELL; COO mass inside R in [1,4).\n");
  return 0;
}
