//===- bench/fig1_amg_levels.cpp - Paper Figure 1 reproduction ------------===//
//
// Part of the SMAT reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 1: "An example of dynamic sparse matrix structures in AMG
// solver and their SpMV performance using different formats." The Hypre AMG
// setup produces a series of A-operators whose structure drifts level by
// level; the paper shows the best format shifting from DIA/COO-friendly at
// fine levels to CSR at coarse levels (where DIA's zero-filling explodes).
//
// We rebuild the scenario: a 3D 7-point Laplacian hierarchy, and for each
// level's A-operator the measured GFLOPS of all four formats (using the
// scoreboard-selected kernels, as SMAT would run them).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "amg/Hierarchy.h"
#include "features/FeatureExtractor.h"
#include "matrix/Generators.h"

using namespace smat;
using namespace smat::bench;

int main() {
  std::printf("=== Figure 1: dynamic sparse structure across AMG levels "
              "===\n\n");
  std::printf("Paper setup: Hypre AMG on a structured-grid problem; the\n"
              "paper's four panels have nnz 2244004 / 60626 / 38681 / 865,\n"
              "best format DIA or COO at fine levels, CSR at coarse levels.\n"
              "Ours: 3D 7-point Laplacian (40^3 = 64000 rows), Ruge-Stuben\n"
              "coarsening, per-level exhaustive format measurement.\n\n");

  LearningModel Model = getSharedModel<double>("double");

  AmgHierarchy Hierarchy;
  HierarchyOptions Opts;
  Hierarchy.build(laplace3d7pt(40, 40, 40), Opts);

  TrainingOptions Measure = benchTrainingOptions();
  Measure.MeasureMinSeconds = 5e-3;

  AsciiTable Table({"level", "rows", "nnz", "Ndiags", "ER_DIA", "CSR", "COO",
                    "DIA", "ELL", "best"});
  for (std::size_t L = 0; L != Hierarchy.numLevels(); ++L) {
    const CsrMatrix<double> &A = Hierarchy.level(L).A;
    FeatureVector F = extractStructureFeatures(A);
    auto Gflops = measureAllFormats(A, Model.Kernels, Measure);
    int Best = 0;
    for (int K = 1; K < NumFormats; ++K)
      if (Gflops[static_cast<std::size_t>(K)] >
          Gflops[static_cast<std::size_t>(Best)])
        Best = K;
    Table.addRow({formatString("%zu", L), formatString("%d", A.NumRows),
                  formatString("%lld", static_cast<long long>(A.nnz())),
                  formatString("%.0f", F.Ndiags),
                  formatString("%.3f", F.ErDia),
                  gflopsCell(Gflops[0]), gflopsCell(Gflops[1]),
                  gflopsCell(Gflops[2]), gflopsCell(Gflops[3]),
                  std::string(formatName(static_cast<FormatKind>(Best)))});
  }
  Table.print();

  std::printf("\nShape check vs paper: the finest level should favor DIA\n"
              "(true-diagonal stencil), and coarse Galerkin operators -- \n"
              "whose diagonals scatter (Ndiags grows, ER_DIA collapses) --\n"
              "should fall back to CSR/COO.\n");
  return 0;
}
